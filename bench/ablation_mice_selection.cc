// Ablation (paper §6 future work): congestion-aware mice path selection.
//
// The paper notes that Flash "does not consider load balance in its
// design" and points to DCN-style congestion-aware load balancing as
// future work. This bench quantifies that direction: Flash with
// waterfilling mice (probe all m paths, split balance-aware, like Spider)
// versus the paper's trial-and-error. Expected tradeoff: the waterfilling
// variant recovers a success-ratio point or two at the cost of Spider-like
// probing overhead for mice.
//
// Both variants run as cells of one parallel sweep.
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "routing/flash/flash_router.h"
#include "trace/workload.h"

using namespace flash;
using namespace flash::bench;

int main() {
  print_header("Ablation",
               "mice path selection: trial-and-error vs waterfilling "
               "(paper §6 future work)");
  const std::size_t tx = bench_tx();
  const std::size_t runs = bench_runs();
  const WorkloadFactory factory = ripple_factory(tx);

  const std::vector<std::pair<const char*, MiceSelection>> variants = {
      {"trial-and-error", MiceSelection::kTrialAndError},
      {"waterfill", MiceSelection::kWaterfill}};

  std::vector<SweepCell> grid;
  for (const auto& [name, selection] : variants) {
    SweepCell cell;
    cell.label = std::string("Ripple/") + name;
    cell.factory = factory;
    cell.scheme = Scheme::kFlash;
    cell.flash.mice_selection = selection;
    cell.sim.capacity_scale = 10.0;
    cell.runs = runs;
    grid.push_back(std::move(cell));
  }

  const SweepResult result = run_sweep(grid, sweep_options());

  TextTable t;
  t.header({"variant", "succ ratio", "mice ratio", "succ volume",
            "probe msgs"});
  double te_ratio = 0, wf_ratio = 0, te_probes = 0, wf_probes = 0;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& [name, selection] = variants[i];
    const RunSeries& series =
        expect_cell(result, grid, i, std::string("Ripple/") + name);
    const double ratio = series.success_ratio().mean;
    const double mice_ratio =
        series
            .aggregate([](const SimResult& r) { return r.mice_success_ratio(); })
            .mean;
    const double volume = series.success_volume().mean;
    const double probes = series.probe_messages().mean;
    t.row({name, fmt_pct(ratio), fmt_pct(mice_ratio), fmt_sci(volume, 3),
           fmt(probes, 0)});
    if (selection == MiceSelection::kTrialAndError) {
      te_ratio = ratio;
      te_probes = probes;
    } else {
      wf_ratio = ratio;
      wf_probes = probes;
    }
  }
  std::printf("[Ripple] mice selection ablation (%zu tx, scale 10, %zu "
              "runs)\n",
              tx, runs);
  print_table(t);
  claim("waterfilling mice: ratio change", "(extension; no paper value)",
        fmt((wf_ratio - te_ratio) * 100, 2) + " pp");
  claim("waterfilling mice: probing cost", "(extension; no paper value)",
        fmt_ratio(te_probes > 0 ? wf_probes / te_probes : 0, 1) +
            " of trial-and-error");

  report_sweep("ablation_mice_selection", grid, result);
  return 0;
}

// Ablation (paper §6 future work): congestion-aware mice path selection.
//
// The paper notes that Flash "does not consider load balance in its
// design" and points to DCN-style congestion-aware load balancing as
// future work. This bench quantifies that direction: Flash with
// waterfilling mice (probe all m paths, split balance-aware, like Spider)
// versus the paper's trial-and-error. Expected tradeoff: the waterfilling
// variant recovers a success-ratio point or two at the cost of Spider-like
// probing overhead for mice.
#include "bench_common.h"
#include "util/stats.h"
#include "routing/flash/flash_router.h"
#include "sim/experiment.h"
#include "trace/workload.h"

using namespace flash;
using namespace flash::bench;

namespace {

SimResult run_variant(const Workload& w, MiceSelection selection,
                      std::uint64_t seed) {
  FlashConfig config;
  config.elephant_threshold = w.size_quantile(0.9);
  config.seed = seed * 0x9e3779b9ULL + 7;
  config.mice_selection = selection;
  FlashRouter router(w.graph(), w.fees(), config);
  SimConfig sim;
  sim.capacity_scale = 10.0;
  return run_simulation(w, router, sim);
}

}  // namespace

int main() {
  print_header("Ablation",
               "mice path selection: trial-and-error vs waterfilling "
               "(paper §6 future work)");
  const std::size_t tx = bench_tx();
  const std::size_t runs = bench_runs();

  TextTable t;
  t.header({"variant", "succ ratio", "mice ratio", "succ volume",
            "probe msgs"});
  double te_ratio = 0, wf_ratio = 0, te_probes = 0, wf_probes = 0;
  for (const auto& [name, selection] :
       {std::pair{"trial-and-error", MiceSelection::kTrialAndError},
        std::pair{"waterfill", MiceSelection::kWaterfill}}) {
    RunningStat ratio, mice_ratio, volume, probes;
    for (std::size_t run = 0; run < runs; ++run) {
      WorkloadConfig wc;
      wc.num_transactions = tx;
      wc.seed = 1 + run;
      const Workload w = make_ripple_workload(wc);
      const SimResult r = run_variant(w, selection, 1 + run);
      ratio.add(r.success_ratio());
      mice_ratio.add(r.mice_success_ratio());
      volume.add(r.volume_succeeded);
      probes.add(static_cast<double>(r.probe_messages));
    }
    t.row({name, fmt_pct(ratio.mean()), fmt_pct(mice_ratio.mean()),
           fmt_sci(volume.mean(), 3), fmt(probes.mean(), 0)});
    if (selection == MiceSelection::kTrialAndError) {
      te_ratio = ratio.mean();
      te_probes = probes.mean();
    } else {
      wf_ratio = ratio.mean();
      wf_probes = probes.mean();
    }
  }
  std::printf("[Ripple] mice selection ablation (%zu tx, scale 10, %zu "
              "runs)\n",
              tx, runs);
  print_table(t);
  claim("waterfilling mice: ratio change", "(extension; no paper value)",
        fmt((wf_ratio - te_ratio) * 100, 2) + " pp");
  claim("waterfilling mice: probing cost", "(extension; no paper value)",
        fmt_ratio(te_probes > 0 ? wf_probes / te_probes : 0, 1) +
            " of trial-and-error");
  return 0;
}

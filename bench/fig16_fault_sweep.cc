// Figure 16 (extension): graceful degradation under fault injection — the
// HTLC event machine surviving coordinated hub outages, regional channel
// bursts and congestion ramps instead of forbidding them.
//
// Sections:
//   1. Hub-outage grid: the top-k betweenness hubs go offline for a
//      window mid-trace. In-flight payments crossing them fail backward
//      from the break point; the claim is MONOTONE degradation (in-window
//      success falls as k grows) and RECOVERY (post-window success comes
//      back once the hubs return).
//   2. Regional burst: a BFS ball of channels force-closes at once; holds
//      caught under the closes resolve on-chain (settle if the preimage
//      was propagating, refund otherwise) and the channels reopen later.
//   3. Congestion ramp: arrivals inside a window compress by a factor,
//      multiplying in-flight lock contention.
//
// Every run uses invariant_stride = 1: the engine re-checks channel
// conservation (balances + holds == deposits) after EVERY payment and
// throws on a violation, so "the run completed" IS the conservation
// claim. The bench counts violations (expected: 0) and exits non-zero on
// any, and the CI gate asserts the JSON report's `conservation_violations`
// is 0 and `recovered` is true.
//
// Environment knobs: the usual FLASH_BENCH_* set (bench_common.h), plus
// FLASH_BENCH_SMOKE for the 1-run CI mode.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/scenario.h"
#include "trace/workload.h"

using namespace flash;
using namespace flash::bench;

namespace {

struct FaultRow {
  std::string axis;        // "hubs", "burst", "congestion"
  double knob = 0;         // hub count / burst channels / factor
  double success = 0;      // overall success ratio
  double window_success = 0;   // success ratio inside the fault window
  double post_success = 0;     // success ratio after the window
  double recovery_time = 0;    // first post-window success, relative
  double onchain_settled = 0;  // force-settled hops (preimage propagating)
  double onchain_refunded = 0;  // force-refunded hops
  double break_failures = 0;    // payments failed at a break point
  std::size_t window_payments = 0;
  std::size_t post_payments = 0;
};

std::size_t g_conservation_violations = 0;

FaultRow run_cell(const std::string& axis, double knob, std::size_t nodes,
                  std::size_t tx, std::size_t runs,
                  const ScenarioConfig& cfg) {
  FaultRow row;
  row.axis = axis;
  row.knob = knob;
  SimConfig sim;
  sim.capacity_scale = 1.0;
  sim.invariant_stride = 1;  // conservation checked after every payment
  std::size_t window_successes = 0, post_successes = 0;
  for (std::size_t r = 0; r < runs; ++r) {
    const std::uint64_t seed = 1 + r;
    const Workload w = make_toy_workload(nodes, tx, seed);
    ScenarioResult res;
    try {
      res = run_scenario(w, Scheme::kFlash, {}, sim, cfg, seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "conservation/invariant violation: %s\n",
                   e.what());
      ++g_conservation_violations;
      continue;
    }
    row.success += res.sim.success_ratio();
    row.window_payments += res.fault_window_payments;
    window_successes += res.fault_window_successes;
    row.post_payments += res.post_fault_payments;
    post_successes += res.post_fault_successes;
    row.recovery_time += res.fault_recovery_time;
    row.onchain_settled += static_cast<double>(res.htlc_onchain_settled_hops);
    row.onchain_refunded +=
        static_cast<double>(res.htlc_onchain_refunded_hops);
    row.break_failures += static_cast<double>(res.htlc_break_failures);
  }
  const double n = static_cast<double>(runs);
  row.success /= n;
  row.recovery_time /= n;
  row.onchain_settled /= n;
  row.onchain_refunded /= n;
  row.break_failures /= n;
  row.window_success =
      row.window_payments
          ? static_cast<double>(window_successes) /
                static_cast<double>(row.window_payments)
          : 0;
  row.post_success = row.post_payments
                         ? static_cast<double>(post_successes) /
                               static_cast<double>(row.post_payments)
                         : 0;
  return row;
}

void write_json(const std::string& path, const std::vector<FaultRow>& rows,
                bool monotone, bool recovered, std::size_t nodes,
                std::size_t tx, double wall_seconds) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write FLASH_BENCH_JSON=%s\n",
                 path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"fig16_fault_sweep\",\n";
  out << "  \"wall_seconds\": " << wall_seconds << ",\n";
  out << "  \"nodes\": " << nodes << ",\n";
  out << "  \"transactions\": " << tx << ",\n";
  out << "  \"conservation_violations\": " << g_conservation_violations
      << ",\n";
  out << "  \"degradation_monotone\": " << (monotone ? "true" : "false")
      << ",\n";
  out << "  \"recovered\": " << (recovered ? "true" : "false")
      << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FaultRow& r = rows[i];
    out << "    {\"axis\": \"" << r.axis << "\""
        << ", \"knob\": " << r.knob << ", \"success\": " << r.success
        << ", \"window_success\": " << r.window_success
        << ", \"post_success\": " << r.post_success
        << ", \"recovery_time\": " << r.recovery_time
        << ", \"onchain_settled\": " << r.onchain_settled
        << ", \"onchain_refunded\": " << r.onchain_refunded
        << ", \"break_failures\": " << r.break_failures
        << ", \"window_payments\": " << r.window_payments
        << ", \"post_payments\": " << r.post_payments << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("json report: %s\n", path.c_str());
}

}  // namespace

int main() {
  print_header("Figure 16",
               "graceful degradation and recovery under fault injection "
               "(hub outages, channel bursts, congestion)");

  const bool smoke = smoke_mode();
  const bool fast = fast_mode();
  const std::size_t nodes = smoke ? 40 : fast ? 80 : 120;
  const std::size_t tx =
      smoke ? 200 : std::min<std::size_t>(bench_tx(), fast ? 600 : 1000);
  const std::size_t runs = smoke ? 1 : bench_runs();
  // Arrivals land at t = 0..tx-1; the fault window sits mid-trace with
  // room on both sides to measure degradation AND recovery.
  const double horizon = static_cast<double>(tx);
  const double window_start = horizon / 3;
  const double window_len = horizon / 6;

  ScenarioConfig base;
  base.htlc.hop_latency = 1.0;
  base.htlc.timelock_delta = 50.0;
  base.retry.max_retries = 1;
  base.retry.delay = 1.0;

  const auto start = std::chrono::steady_clock::now();
  std::vector<FaultRow> rows;

  // --- Section 1: coordinated hub outages -------------------------------
  const std::vector<std::size_t> hub_counts =
      smoke ? std::vector<std::size_t>{0, 3}
            : std::vector<std::size_t>{0, 1, 3, 6};
  TextTable hubs;
  hubs.header({"hubs down", "success", "in-window", "post-window",
               "recovery t", "break fails"});
  std::vector<double> window_curve;
  double baseline_success = 0;
  for (const std::size_t k : hub_counts) {
    ScenarioConfig cfg = base;
    cfg.fault.hub_count = k;
    if (k > 0) {
      cfg.fault.hub_outage_start = window_start;
      cfg.fault.hub_outage_duration = window_len;
    }
    const FaultRow row = run_cell("hubs", static_cast<double>(k), nodes, tx,
                                  runs, cfg);
    rows.push_back(row);
    if (k == 0) {
      baseline_success = row.success;
      window_curve.push_back(row.success);  // no window: overall ratio
    } else {
      window_curve.push_back(row.window_success);
    }
    hubs.row({std::to_string(k), fmt_pct(row.success),
              k ? fmt_pct(row.window_success) : "-",
              k ? fmt_pct(row.post_success) : "-",
              k ? fmt(row.recovery_time, 1) : "-",
              fmt(row.break_failures, 1)});
  }
  std::printf("hub outage grid (%zu nodes, %zu tx, %zu runs, window "
              "[%.0f, %.0f))\n",
              nodes, tx, runs, window_start, window_start + window_len);
  print_table(hubs);

  bool monotone = true;
  for (std::size_t i = 1; i < window_curve.size(); ++i) {
    if (window_curve[i] > window_curve[i - 1] + 1e-9) monotone = false;
  }
  claim("in-window success falls as more hubs go dark", "monotone",
        monotone ? "monotone" : "NOT monotone");

  bool recovered = true;
  for (const FaultRow& r : rows) {
    if (r.knob == 0) continue;
    // Recovery: payments succeed again after the window, and at a better
    // rate than during it.
    if (r.post_payments == 0 || r.post_success <= 0 ||
        r.post_success + 1e-9 < r.window_success) {
      recovered = false;
    }
  }
  claim("post-window success recovers above the in-window ratio", "true",
        recovered ? "recovered" : "NO recovery");

  // --- Section 2: regional channel-close bursts -------------------------
  const std::vector<std::size_t> burst_sizes =
      smoke ? std::vector<std::size_t>{8}
            : std::vector<std::size_t>{8, 32};
  TextTable burst;
  burst.header({"burst size", "success", "in-window", "post-window",
                "on-chain refunds", "on-chain settles"});
  for (const std::size_t b : burst_sizes) {
    ScenarioConfig cfg = base;
    cfg.fault.burst_channels = b;
    cfg.fault.burst_time = window_start;
    cfg.fault.burst_reopen_after = window_len;
    const FaultRow row = run_cell("burst", static_cast<double>(b), nodes,
                                  tx, runs, cfg);
    rows.push_back(row);
    burst.row({std::to_string(b), fmt_pct(row.success),
               fmt_pct(row.window_success), fmt_pct(row.post_success),
               fmt(row.onchain_refunded, 1), fmt(row.onchain_settled, 1)});
  }
  std::printf("regional close burst (reopen after %.0f)\n", window_len);
  print_table(burst);

  // --- Section 3: congestion-collapse ramp ------------------------------
  const std::vector<double> factors =
      smoke ? std::vector<double>{4} : std::vector<double>{2, 4};
  TextTable cong;
  cong.header({"factor", "success", "in-window", "post-window"});
  for (const double f : factors) {
    ScenarioConfig cfg = base;
    cfg.fault.congestion_factor = f;
    cfg.fault.congestion_start = window_start;
    cfg.fault.congestion_duration = window_len;
    const FaultRow row = run_cell("congestion", f, nodes, tx, runs, cfg);
    rows.push_back(row);
    cong.row({fmt(f, 0), fmt_pct(row.success),
              fmt_pct(row.window_success), fmt_pct(row.post_success)});
  }
  std::printf("congestion ramp (arrivals compressed %sx inside the "
              "window)\n",
              smoke ? "4" : "2-4");
  print_table(cong);

  claim("conservation holds after every payment under every fault", "0",
        std::to_string(g_conservation_violations) + " violations");
  std::printf("fault-free baseline success: %s\n",
              fmt_pct(baseline_success).c_str());

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  std::printf("fault sweep: %zu cells, %.2fs wall\n", rows.size(),
              elapsed.count());
  const char* path = std::getenv("FLASH_BENCH_JSON");
  if (path && *path) {
    write_json(path, rows, monotone, recovered, nodes, tx, elapsed.count());
  }
  return (g_conservation_violations == 0 && recovered) ? 0 : 1;
}

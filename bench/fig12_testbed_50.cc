// Figure 12: testbed experiments on the 50-node Watts-Strogatz network.
#include "testbed_common.h"

int main() {
  flash::bench::run_testbed_figure("Figure 12", 50);
  return 0;
}

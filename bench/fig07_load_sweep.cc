// Figure 7: success ratio and success volume vs number of transactions
// (1000-6000, capacity scale 10) on Ripple-like and Lightning-like
// topologies.
//
// Paper claims: ratios degrade with load for every scheme; Flash's volume
// gain over Spider/SpeedyMurmurs/SP reaches 2.6x / 6.6x / 4.7x and grows
// with load.
//
// The whole (topology x load x scheme) grid runs as one parallel sweep.
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "trace/workload.h"

using namespace flash;
using namespace flash::bench;

int main() {
  print_header("Figure 7", "success ratio & volume vs number of transactions");
  const std::vector<std::size_t> loads =
      fast_mode() ? std::vector<std::size_t>{1000, 3000}
                  : std::vector<std::size_t>{1000, 2000, 3000, 4000, 5000,
                                             6000};
  const std::size_t runs = bench_runs();

  const std::vector<BenchTopo> topos = standard_topos();

  std::vector<SweepCell> grid;
  for (const BenchTopo& topo : topos) {
    for (const std::size_t load : loads) {
      for (const Scheme scheme : all_schemes()) {
        SweepCell cell;
        cell.label = std::string(topo.name) + "/tx=" + std::to_string(load) +
                     "/" + scheme_name(scheme);
        cell.factory = topo.make_factory(load);
        cell.scheme = scheme;
        cell.sim.capacity_scale = 10.0;
        cell.runs = runs;
        grid.push_back(std::move(cell));
      }
    }
  }

  const SweepResult result = run_sweep(grid, sweep_options());

  std::size_t idx = 0;
  for (const BenchTopo& topo : topos) {
    TextTable ratio_table, volume_table;
    std::vector<std::string> header{"#tx"};
    for (Scheme s : all_schemes()) header.push_back(scheme_name(s));
    ratio_table.header(header);
    volume_table.header(header);

    double peak_vs_spider = 0, peak_vs_sm = 0, peak_vs_sp = 0;
    double first_gain = 0, last_gain = 0;

    for (const std::size_t load : loads) {
      std::vector<std::string> ratio_row{std::to_string(load)};
      std::vector<std::string> volume_row{std::to_string(load)};
      std::map<Scheme, double> volume;
      for (const Scheme scheme : all_schemes()) {
        const RunSeries& series =
            expect_cell(result, grid, idx++,
                        std::string(topo.name) + "/tx=" +
                            std::to_string(load) + "/" + scheme_name(scheme));
        ratio_row.push_back(fmt_pct(series.success_ratio().mean));
        volume_row.push_back(fmt_sci(series.success_volume().mean, 3));
        volume[scheme] = series.success_volume().mean;
      }
      ratio_table.row(std::move(ratio_row));
      volume_table.row(std::move(volume_row));
      const double gain =
          volume[Scheme::kSpider] > 0
              ? volume[Scheme::kFlash] / volume[Scheme::kSpider]
              : 0;
      peak_vs_spider = std::max(peak_vs_spider, gain);
      if (volume[Scheme::kSpeedyMurmurs] > 0) {
        peak_vs_sm =
            std::max(peak_vs_sm,
                     volume[Scheme::kFlash] / volume[Scheme::kSpeedyMurmurs]);
      }
      if (volume[Scheme::kShortestPath] > 0) {
        peak_vs_sp =
            std::max(peak_vs_sp,
                     volume[Scheme::kFlash] / volume[Scheme::kShortestPath]);
      }
      if (load == loads.front()) first_gain = gain;
      if (load == loads.back()) last_gain = gain;
    }

    std::printf("[%s] success ratio vs #transactions (scale 10, %zu runs)\n",
                topo.name, runs);
    print_table(ratio_table);
    std::printf("[%s] success volume vs #transactions\n", topo.name);
    print_table(volume_table);

    claim(std::string(topo.name) + ": peak Flash/Spider volume gain",
          "up to 2.6x", fmt_ratio(peak_vs_spider));
    claim(std::string(topo.name) + ": peak Flash/SpeedyMurmurs volume gain",
          "up to 6.6x", fmt_ratio(peak_vs_sm));
    claim(std::string(topo.name) + ": peak Flash/SP volume gain",
          "up to 4.7x", fmt_ratio(peak_vs_sp));
    claim(std::string(topo.name) + ": Flash/Spider gain grows with load",
          "increasing",
          first_gain <= last_gain + 0.2 ? "non-decreasing" : "decreasing");
    std::printf("\n");
  }

  report_sweep("fig07_load_sweep", grid, result);
  return 0;
}

// Microbenchmarks (google-benchmark): per-payment router latency.
//
// Measures the sender-side processing cost of one payment for each scheme
// on the Ripple-like topology — the quantity that the testbed's
// "processing delay" metric aggregates at system level.
#include <benchmark/benchmark.h>

#include "graph/bfs.h"
#include "sim/experiment.h"
#include "trace/workload.h"

namespace flash {
namespace {

const Workload& ripple_workload() {
  static const Workload w = [] {
    WorkloadConfig c;
    c.num_transactions = 4000;
    c.seed = 1;
    return make_ripple_workload(c);
  }();
  return w;
}

void route_loop(benchmark::State& state, Scheme scheme) {
  const Workload& w = ripple_workload();
  const auto router = make_router(scheme, w, {}, 1);
  NetworkState net = w.make_state(10.0);
  std::size_t i = 0;
  const auto& txs = w.transactions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(router->route(txs[i % txs.size()], net));
    ++i;
  }
}

void BM_RouteFlash(benchmark::State& state) {
  route_loop(state, Scheme::kFlash);
}
BENCHMARK(BM_RouteFlash);

void BM_RouteSpider(benchmark::State& state) {
  route_loop(state, Scheme::kSpider);
}
BENCHMARK(BM_RouteSpider);

void BM_RouteSpeedyMurmurs(benchmark::State& state) {
  route_loop(state, Scheme::kSpeedyMurmurs);
}
BENCHMARK(BM_RouteSpeedyMurmurs);

void BM_RouteShortestPath(benchmark::State& state) {
  route_loop(state, Scheme::kShortestPath);
}
BENCHMARK(BM_RouteShortestPath);

void BM_LedgerHoldCommit(benchmark::State& state) {
  const Workload& w = ripple_workload();
  NetworkState net = w.make_state(10.0);
  const Path p = bfs_path(w.graph(), w.transactions()[0].sender,
                          w.transactions()[0].receiver);
  for (auto _ : state) {
    const auto id = net.hold(p, 0.01);
    if (id) net.commit(*id);
  }
}
BENCHMARK(BM_LedgerHoldCommit);

}  // namespace
}  // namespace flash

BENCHMARK_MAIN();

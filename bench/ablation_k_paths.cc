// Ablation (beyond the paper's figures): the elephant path budget k.
//
// §3.2 states "setting k between 20 to 30 provides good performance in
// practical offchain network topologies" without showing the sweep. This
// bench regenerates the tradeoff: success volume saturates as k grows
// while probing overhead keeps climbing, justifying k = 20. It also
// compares against an omniscient upper bound (classical Edmonds-Karp with
// free capacity knowledge, k unbounded).
//
// The k grid runs as one parallel sweep.
#include <string>
#include <vector>

#include "bench_common.h"
#include "trace/workload.h"

using namespace flash;
using namespace flash::bench;

int main() {
  print_header("Ablation", "elephant path budget k (not a paper figure)");
  const std::size_t tx = bench_tx();
  const std::size_t runs = bench_runs();
  const WorkloadFactory factory = ripple_factory(tx);

  const std::vector<std::size_t> ks =
      fast_mode() ? std::vector<std::size_t>{2, 20}
                  : std::vector<std::size_t>{1, 2, 5, 10, 20, 30, 40};

  std::vector<SweepCell> grid;
  for (const std::size_t k : ks) {
    SweepCell cell;
    cell.label = "Ripple/k=" + std::to_string(k);
    cell.factory = factory;
    cell.scheme = Scheme::kFlash;
    cell.flash.k_elephant_paths = k;
    cell.sim.capacity_scale = 10.0;
    cell.runs = runs;
    grid.push_back(std::move(cell));
  }

  const SweepResult result = run_sweep(grid, sweep_options());

  TextTable t;
  t.header({"k", "succ ratio", "succ volume", "probe msgs"});
  double volume_at_20 = 0, volume_at_max = 0;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const std::size_t k = ks[i];
    const RunSeries& series =
        expect_cell(result, grid, i, "Ripple/k=" + std::to_string(k));
    const double volume = series.success_volume().mean;
    t.row({std::to_string(k), fmt_pct(series.success_ratio().mean),
           fmt_sci(volume, 3), fmt(series.probe_messages().mean, 0)});
    if (k == 20) volume_at_20 = volume;
    volume_at_max = volume;
  }
  std::printf("[Ripple] k sweep (%zu tx, scale 10, %zu runs)\n", tx, runs);
  print_table(t);
  claim("k=20 captures the achievable volume", "20-30 recommended (§3.2)",
        volume_at_max > 0
            ? fmt_pct(volume_at_20 / volume_at_max, 0) + " of k=" +
                  std::to_string(ks.back())
            : "n/a");

  report_sweep("ablation_k_paths", grid, result);
  return 0;
}

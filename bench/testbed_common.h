// Shared driver for the testbed figures (12 and 13).
#pragma once

#include <map>
#include <vector>

#include "bench_common.h"
#include "testbed/runner.h"
#include "util/stats.h"

namespace flash::bench {

/// Runs the full Fig. 12/13 matrix for one node count and prints the four
/// panels: success volume, success ratio, normalized overall processing
/// delay, normalized mice processing delay (both normalized by SP's mean,
/// as in the paper; computed over settled payments).
inline void run_testbed_figure(const char* fig, std::size_t nodes) {
  using testbed::TestbedConfig;
  using testbed::TestbedResult;
  using testbed::TestbedScheme;
  using testbed::testbed_scheme_name;

  print_header(fig, "testbed experiments, " + std::to_string(nodes) +
                        "-node Watts-Strogatz network");

  const std::vector<std::pair<Amount, Amount>> ranges{
      {1000, 1500}, {1500, 2000}, {2000, 2500}};
  const std::size_t runs = env_size("FLASH_BENCH_RUNS", 5);
  const std::size_t tx = fast_mode() ? 1000 : 10000;
  const std::vector<TestbedScheme> schemes{TestbedScheme::kFlash,
                                           TestbedScheme::kSpider,
                                           TestbedScheme::kShortestPath};

  struct Cell {
    RunningStat volume, ratio, delay, mice_delay;
  };
  std::map<std::pair<int, int>, Cell> cells;  // (range idx, scheme idx)

  for (std::size_t r = 0; r < ranges.size(); ++r) {
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      for (std::size_t run = 0; run < runs; ++run) {
        TestbedConfig config;
        config.scheme = schemes[s];
        config.nodes = nodes;
        config.cap_lo = ranges[r].first;
        config.cap_hi = ranges[r].second;
        config.num_transactions = tx;
        config.seed = 1 + run;
        const TestbedResult result = testbed::run_testbed(config);
        Cell& cell = cells[{static_cast<int>(r), static_cast<int>(s)}];
        cell.volume.add(result.volume_succeeded);
        cell.ratio.add(result.success_ratio());
        cell.delay.add(result.avg_success_delay_ms());
        cell.mice_delay.add(result.avg_mice_success_delay_ms());
      }
    }
  }

  // Built with append rather than chained operator+ to dodge GCC 12's
  // spurious -Wrestrict at -O3 (GCC PR105329).
  const auto range_name = [&](std::size_t r) {
    std::string name = "[";
    name += fmt(ranges[r].first, 0);
    name += ',';
    name += fmt(ranges[r].second, 0);
    name += ')';
    return name;
  };

  TextTable volume, ratio, delay, mice_delay;
  std::vector<std::string> header{"capacity"};
  for (const auto scheme : schemes) {
    header.push_back(testbed_scheme_name(scheme));
  }
  volume.header(header);
  ratio.header(header);
  delay.header(header);
  mice_delay.header(header);

  double flash_vs_spider_volume = 0, flash_vs_spider_delay = 0;
  double flash_vs_spider_mice_delay = 0, flash_vs_spider_ratio = 0;
  double flash_vs_sp_ratio = 0;
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    std::vector<std::string> vrow{range_name(r)}, rrow{range_name(r)};
    std::vector<std::string> drow{range_name(r)}, mrow{range_name(r)};
    const double sp_delay =
        cells[{static_cast<int>(r), 2}].delay.mean();
    const double sp_mice_delay =
        cells[{static_cast<int>(r), 2}].mice_delay.mean();
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const Cell& cell = cells[{static_cast<int>(r), static_cast<int>(s)}];
      vrow.push_back(fmt_sci(cell.volume.mean(), 3));
      rrow.push_back(fmt_pct(cell.ratio.mean()));
      drow.push_back(fmt(sp_delay > 0 ? cell.delay.mean() / sp_delay : 0, 2));
      mrow.push_back(
          fmt(sp_mice_delay > 0 ? cell.mice_delay.mean() / sp_mice_delay : 0,
              2));
    }
    volume.row(std::move(vrow));
    ratio.row(std::move(rrow));
    delay.row(std::move(drow));
    mice_delay.row(std::move(mrow));

    const Cell& flash = cells[{static_cast<int>(r), 0}];
    const Cell& spider = cells[{static_cast<int>(r), 1}];
    const Cell& sp = cells[{static_cast<int>(r), 2}];
    flash_vs_spider_volume += flash.volume.mean() / spider.volume.mean();
    flash_vs_spider_delay += 1 - flash.delay.mean() / spider.delay.mean();
    flash_vs_spider_mice_delay +=
        1 - flash.mice_delay.mean() / spider.mice_delay.mean();
    flash_vs_spider_ratio += spider.ratio.mean() - flash.ratio.mean();
    flash_vs_sp_ratio += flash.ratio.mean() - sp.ratio.mean();
  }
  const double n = static_cast<double>(ranges.size());

  std::printf("[a] success volume (%zu tx, %zu runs)\n", tx, runs);
  print_table(volume);
  std::printf("[b] success ratio\n");
  print_table(ratio);
  std::printf("[c] processing delay of settled payments, normalized to SP\n");
  print_table(delay);
  std::printf("[d] mice processing delay, normalized to SP mice\n");
  print_table(mice_delay);

  const char* paper_volume = nodes <= 50 ? "+42.5%" : "+34.4%";
  const char* paper_ratio = nodes <= 50 ? "-5.6%" : "-8.8%";
  const char* paper_sp_ratio = nodes <= 50 ? "+36.3%" : "+14.8%";
  const char* paper_delay = nodes <= 50 ? "19.4% lower" : "19.2% lower";
  const char* paper_mice = nodes <= 50 ? "26.4% lower" : "26% lower";
  // Signs prepended via append, not `const char* + std::string&&`, to dodge
  // GCC 12's spurious -Wrestrict at -O3 (GCC PR105329).
  std::string spider_gap = "-";
  spider_gap += fmt_pct(flash_vs_spider_ratio / n);
  std::string sp_gap = "+";
  sp_gap += fmt_pct(flash_vs_sp_ratio / n);
  claim("Flash success volume vs Spider (avg)", paper_volume,
        fmt_ratio(flash_vs_spider_volume / n));
  claim("Flash success ratio vs Spider (avg gap)", paper_ratio, spider_gap);
  claim("Flash success ratio vs SP (avg gap)", paper_sp_ratio, sp_gap);
  claim("Flash settled delay vs Spider", paper_delay,
        fmt_pct(flash_vs_spider_delay / n) + " lower");
  claim("Flash mice settled delay vs Spider", paper_mice,
        fmt_pct(flash_vs_spider_mice_delay / n) + " lower");
}

}  // namespace flash::bench

// Shared plumbing for the figure-reproduction benches.
//
// Every fig* binary regenerates one table/figure of the paper's evaluation
// and prints (a) the measured rows and (b) a paper-vs-measured comparison
// of the headline claim. Environment knobs:
//   FLASH_BENCH_RUNS  seeds per configuration (default 3; paper uses 5)
//   FLASH_BENCH_TX    transactions per run where applicable (default 2000)
//   FLASH_BENCH_FAST  if set (non-empty), shrink sweeps for smoke runs
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/table.h"

namespace flash::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline bool fast_mode() {
  const char* v = std::getenv("FLASH_BENCH_FAST");
  return v && *v;
}

inline std::size_t bench_runs() { return env_size("FLASH_BENCH_RUNS", 3); }
inline std::size_t bench_tx() { return env_size("FLASH_BENCH_TX", 2000); }

inline void print_header(const std::string& fig, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s - %s\n", fig.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

inline void print_table(const TextTable& t) {
  std::fputs(t.render().c_str(), stdout);
  std::printf("\n");
}

/// One "paper vs measured" comparison line.
inline void claim(const std::string& what, const std::string& paper,
                  const std::string& measured) {
  std::printf("  %-52s paper: %-14s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace flash::bench

// Shared plumbing for the figure-reproduction benches.
//
// Every fig* binary regenerates one table/figure of the paper's evaluation
// and prints (a) the measured rows and (b) a paper-vs-measured comparison
// of the headline claim. Environment knobs:
//   FLASH_BENCH_RUNS     seeds per configuration (default 3; paper uses 5)
//   FLASH_BENCH_TX       transactions per run where applicable (default 2000)
//   FLASH_BENCH_FAST     if set (non-empty), shrink sweeps for smoke runs
//   FLASH_BENCH_THREADS  sweep-engine worker threads (default: one per
//                        hardware thread; 1 forces the sequential path)
//   FLASH_BENCH_JSON     if set, sweep benches write their structured JSON
//                        report (cells + wall clock + threads) to this path
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/sweep.h"
#include "trace/workload.h"
#include "util/table.h"

namespace flash::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline bool fast_mode() {
  const char* v = std::getenv("FLASH_BENCH_FAST");
  return v && *v;
}

/// CI smoke mode (FLASH_BENCH_SMOKE): shrink further than FLASH_BENCH_FAST,
/// to sizes a pull-request gate can afford. Used by bench_scale.
inline bool smoke_mode() {
  const char* v = std::getenv("FLASH_BENCH_SMOKE");
  return v && *v;
}

inline std::size_t bench_runs() { return env_size("FLASH_BENCH_RUNS", 3); }
inline std::size_t bench_tx() { return env_size("FLASH_BENCH_TX", 2000); }

/// Sweep-engine thread count; 0 = one worker per hardware thread.
inline std::size_t bench_threads() {
  return env_size("FLASH_BENCH_THREADS", 0);
}

/// Engine options honoring FLASH_BENCH_THREADS.
inline SweepOptions sweep_options() {
  SweepOptions opts;
  opts.threads = bench_threads();
  return opts;
}

/// Workload factory for the paper's Ripple-like topology at `tx`
/// transactions per run.
inline WorkloadFactory ripple_factory(std::size_t tx) {
  return [tx](std::uint64_t seed) {
    WorkloadConfig c;
    c.num_transactions = tx;
    c.seed = seed;
    return make_ripple_workload(c);
  };
}

/// Workload factory for the paper's Lightning-like topology at `tx`
/// transactions per run.
inline WorkloadFactory lightning_factory(std::size_t tx) {
  return [tx](std::uint64_t seed) {
    WorkloadConfig c;
    c.num_transactions = tx;
    c.seed = seed;
    return make_lightning_workload(c);
  };
}

/// One evaluation topology: legend name + tx-parameterized factory maker.
struct BenchTopo {
  const char* name;
  WorkloadFactory (*make_factory)(std::size_t tx);
};

/// The two simulation topologies of the paper's evaluation, in figure
/// order. Call topo.make_factory(tx) per grid cell.
inline std::vector<BenchTopo> standard_topos() {
  return {{"Ripple", &ripple_factory}, {"Lightning", &lightning_factory}};
}

inline void print_header(const std::string& fig, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s - %s\n", fig.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

inline void print_table(const TextTable& t) {
  std::fputs(t.render().c_str(), stdout);
  std::printf("\n");
}

/// One "paper vs measured" comparison line.
inline void claim(const std::string& what, const std::string& paper,
                  const std::string& measured) {
  std::printf("  %-52s paper: %-14s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

/// Fetches grid cell `idx` from a sweep result, checking that the cell's
/// label is the one the consumption loop expects. Guards the pairing of
/// grid-construction and result-walk loops: reordering or filtering one
/// side fails loudly instead of silently misattributing every later cell.
inline const RunSeries& expect_cell(const SweepResult& result,
                                    const std::vector<SweepCell>& grid,
                                    std::size_t idx,
                                    const std::string& label) {
  if (idx >= grid.size() || idx >= result.cells.size() ||
      grid[idx].label != label) {
    throw std::logic_error(
        "bench grid walk mismatch at cell " + std::to_string(idx) +
        ": expected \"" + label + "\", grid has \"" +
        (idx < grid.size() ? grid[idx].label : "<out of range>") + "\"");
  }
  return result.cells[idx];
}

/// Prints the engine stats line and, when FLASH_BENCH_JSON is set, writes
/// the structured report run_benches.sh collects for the perf trajectory.
inline void report_sweep(const std::string& bench,
                         const std::vector<SweepCell>& grid,
                         const SweepResult& result) {
  std::printf("sweep engine: %zu cells, %zu threads, %.2fs wall\n",
              grid.size(), result.threads_used, result.wall_seconds);
  const char* path = std::getenv("FLASH_BENCH_JSON");
  if (!path || !*path) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write FLASH_BENCH_JSON=%s\n", path);
    return;
  }
  write_sweep_json(out, bench, grid, result);
  std::printf("json report: %s\n", path);
}

}  // namespace flash::bench

// Microbenchmarks (google-benchmark) for the allocation-free graph core.
//
// Measures the scratch-based hot paths the routers actually run (PR 3):
// dijkstra/bfs cores, Yen k-shortest-paths, the elephant probe loop and a
// full mice routing-table fill, all on the fig-scale Ripple-like topology.
// Results are folded into BENCH_micro.json under "graph_core" by
// tools/run_benches.sh, establishing the perf trajectory for the graph
// layer. Set FLASH_BENCH_SMOKE (non-empty) to run every benchmark for
// exactly one iteration — the CI smoke mode.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "graph/bfs.h"
#include "graph/dijkstra.h"
#include "graph/scratch.h"
#include "graph/topology.h"
#include "graph/yen.h"
#include "ledger/fee_policy.h"
#include "ledger/network_state.h"
#include "routing/flash/elephant.h"
#include "routing/flash/routing_table.h"
#include "testutil.h"
#include "util/rng.h"

namespace flash {
namespace {

/// CI smoke mode: one iteration per benchmark, no min-time sampling.
void apply_smoke(benchmark::internal::Benchmark* b) {
  const char* v = std::getenv("FLASH_BENCH_SMOKE");
  if (v && *v) b->Iterations(1);
}

/// Shared fixtures, built once (the paper's Ripple-scale topology).
const Graph& ripple_graph() {
  static const Graph g = [] {
    Rng rng(1);
    return ripple_like(rng);
  }();
  return g;
}

NetworkState make_loaded_state(const Graph& g) {
  Rng rng(2);
  NetworkState s(g);
  s.assign_lognormal_split(250, 1.0, rng);
  return s;
}

/// Same weight function the graph equivalence/allocation tests exercise.
using FeeWeight = testing::DeterministicFeeWeight;

void BM_GraphCore_BfsPath(benchmark::State& state) {
  const Graph& g = ripple_graph();
  GraphScratch scratch;
  Path path;
  Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto t = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    path.clear();
    benchmark::DoNotOptimize(
        bfs_path_core(g, s, t, scratch, AdmitAll{}, path));
  }
}
BENCHMARK(BM_GraphCore_BfsPath)->Apply(apply_smoke);

void BM_GraphCore_Dijkstra(benchmark::State& state) {
  const Graph& g = ripple_graph();
  GraphScratch scratch;
  Path path;
  Rng rng(4);
  for (auto _ : state) {
    const auto s = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto t = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    path.clear();
    benchmark::DoNotOptimize(
        dijkstra_core(g, s, t, scratch, FeeWeight{}, false, path));
  }
}
BENCHMARK(BM_GraphCore_Dijkstra)->Apply(apply_smoke);

void BM_GraphCore_YenK(benchmark::State& state) {
  const Graph& g = ripple_graph();
  GraphScratch scratch;
  std::vector<Path> out;
  Rng rng(5);
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto s = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto t = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    yen_core(g, s, t, k, scratch, UnitWeight{}, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GraphCore_YenK)->Arg(4)->Arg(8)->Apply(apply_smoke);

void BM_GraphCore_ElephantProbe(benchmark::State& state) {
  const Graph& g = ripple_graph();
  NetworkState s = make_loaded_state(g);
  GraphScratch scratch;
  ElephantProbeResult result;
  Rng rng(6);
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto dst = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    elephant_find_paths_into(g, src, dst, 1e6, 20, s, scratch, result);
    benchmark::DoNotOptimize(result.max_flow);
  }
}
BENCHMARK(BM_GraphCore_ElephantProbe)->Apply(apply_smoke);

void BM_GraphCore_MiceTableFill(benchmark::State& state) {
  // Full warm-up fill of a sender's routing table: m + spares Yen paths for
  // each of 64 receivers (the per-new-receiver cost Fig. 4's recurrence
  // then amortizes away).
  const Graph& g = ripple_graph();
  GraphScratch scratch;
  RoutingTableConfig config;  // paper defaults: 4 active + 4 spares
  Rng rng(7);
  const auto sender = static_cast<NodeId>(rng.next_below(g.num_nodes()));
  std::vector<NodeId> receivers;
  for (int i = 0; i < 64; ++i) {
    receivers.push_back(static_cast<NodeId>(rng.next_below(g.num_nodes())));
  }
  for (auto _ : state) {
    MiceRoutingTable table(g, config);
    for (const NodeId r : receivers) {
      if (r == sender) continue;
      benchmark::DoNotOptimize(table.lookup(sender, r, scratch).size());
    }
  }
}
BENCHMARK(BM_GraphCore_MiceTableFill)->Apply(apply_smoke);

}  // namespace
}  // namespace flash

BENCHMARK_MAIN();

// Microbenchmarks (google-benchmark) for the fee-LP split pipeline.
//
// The LP solve of program (1) sits on the hot path of every elephant
// payment (fig09, fig14, ablations), so its cost is tracked in
// BENCH_micro.json under "lp_core" by tools/run_benches.sh, next to the
// graph-core numbers. Three layers are measured on the fig-scale
// Ripple-like topology:
//   - solve_lp at representative program-(1) shapes (k paths, one demand
//     equality + ~3k capacity rows),
//   - optimize_fee_split vs sequential_split on real probed path sets,
//   - the combined elephant probe+split step (Algorithm 1 + program (1)),
//     the per-payment quantity Fig. 9 sweeps pay thousands of times.
// Set FLASH_BENCH_SMOKE (non-empty) to run every benchmark for exactly one
// iteration — the CI smoke mode.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "graph/topology.h"
#include "ledger/fee_policy.h"
#include "ledger/network_state.h"
#include "lp/fee_min.h"
#include "lp/simplex.h"
#include "routing/flash/elephant.h"
#include "util/rng.h"

namespace flash {
namespace {

/// CI smoke mode: one iteration per benchmark, no min-time sampling.
void apply_smoke(benchmark::internal::Benchmark* b) {
  const char* v = std::getenv("FLASH_BENCH_SMOKE");
  if (v && *v) b->Iterations(1);
}

/// Shared fixtures, built once (the paper's Ripple-scale topology).
const Graph& ripple_graph() {
  static const Graph g = [] {
    Rng rng(1);
    return ripple_like(rng);
  }();
  return g;
}

const FeeSchedule& ripple_fees() {
  static const FeeSchedule fees = [] {
    Rng rng(41);
    return FeeSchedule::paper_default(ripple_graph(), rng);
  }();
  return fees;
}

NetworkState make_loaded_state(const Graph& g) {
  Rng rng(2);
  NetworkState s(g);
  s.assign_lognormal_split(250, 1.0, rng);
  return s;
}

/// A probed elephant instance: the path set P, capacity matrix C and a
/// demand known to be satisfiable (90% of the probed max flow).
struct ProbedInstance {
  ElephantProbeResult probe;
  Amount demand = 0;
};

/// Probed path sets for 32 random sender/receiver pairs, built once. The
/// splits then re-run on them forever, which is exactly the shape of a
/// fig09 sweep (each payment probes once, splits once).
const std::vector<ProbedInstance>& probed_instances() {
  static const std::vector<ProbedInstance> instances = [] {
    const Graph& g = ripple_graph();
    NetworkState s = make_loaded_state(g);
    Rng rng(42);
    std::vector<ProbedInstance> out;
    while (out.size() < 32) {
      const auto src = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      const auto dst = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      if (src == dst) continue;
      ProbedInstance inst;
      inst.probe = elephant_find_paths(g, src, dst, 1e6, 20, s);
      if (inst.probe.paths.size() < 2 || inst.probe.max_flow <= 0) continue;
      inst.demand = 0.9 * inst.probe.max_flow;
      out.push_back(std::move(inst));
    }
    return out;
  }();
  return instances;
}

void BM_LpCore_SolveLp(benchmark::State& state) {
  // Representative program (1): k paths, one equality + per-edge caps
  // (the same shape BM_SimplexFeeSplit in micro_algorithms tracks).
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  LpProblem lp;
  lp.objective.resize(k);
  for (auto& c : lp.objective) c = rng.uniform(0.001, 0.1);
  LpConstraint demand;
  demand.coeffs.assign(k, 1.0);
  demand.rel = Relation::kEq;
  demand.rhs = 1.0;
  lp.constraints.push_back(demand);
  for (std::size_t i = 0; i < 3 * k; ++i) {
    LpConstraint cap;
    cap.coeffs.assign(k, 0.0);
    for (std::size_t j = 0; j < k; ++j) {
      if (rng.chance(0.3)) cap.coeffs[j] = 1.0;
    }
    cap.rel = Relation::kLessEq;
    cap.rhs = rng.uniform(0.2, 2.0);
    lp.constraints.push_back(std::move(cap));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lp(lp));
  }
}
BENCHMARK(BM_LpCore_SolveLp)->Arg(4)->Arg(20)->Arg(30)->Apply(apply_smoke);

void BM_LpCore_OptimizeFeeSplit(benchmark::State& state) {
  const Graph& g = ripple_graph();
  const FeeSchedule& fees = ripple_fees();
  const auto& instances = probed_instances();
  std::size_t i = 0;
  for (auto _ : state) {
    const ProbedInstance& inst = instances[i++ % instances.size()];
    benchmark::DoNotOptimize(optimize_fee_split(
        g, inst.probe.paths, inst.demand, inst.probe.capacities, fees));
  }
}
BENCHMARK(BM_LpCore_OptimizeFeeSplit)->Apply(apply_smoke);

void BM_LpCore_SequentialSplit(benchmark::State& state) {
  const Graph& g = ripple_graph();
  const FeeSchedule& fees = ripple_fees();
  const auto& instances = probed_instances();
  std::size_t i = 0;
  for (auto _ : state) {
    const ProbedInstance& inst = instances[i++ % instances.size()];
    benchmark::DoNotOptimize(sequential_split(
        g, inst.probe.paths, inst.demand, inst.probe.capacities, fees));
  }
}
BENCHMARK(BM_LpCore_SequentialSplit)->Apply(apply_smoke);

void BM_LpCore_ElephantProbeSplit(benchmark::State& state) {
  // Algorithm 1 + program (1) back to back: the full per-elephant routing
  // work minus the ledger commit.
  const Graph& g = ripple_graph();
  const FeeSchedule& fees = ripple_fees();
  NetworkState s = make_loaded_state(g);
  GraphScratch scratch;
  ElephantProbeResult probe;
  Rng rng(6);
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto dst = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    elephant_find_paths_into(g, src, dst, 1e6, 20, s, scratch, probe);
    if (probe.paths.empty() || probe.max_flow <= 0) continue;
    benchmark::DoNotOptimize(optimize_fee_split(
        g, probe.paths, 0.9 * probe.max_flow, probe.capacities, fees));
  }
}
BENCHMARK(BM_LpCore_ElephantProbeSplit)->Apply(apply_smoke);

}  // namespace
}  // namespace flash

BENCHMARK_MAIN();

// Figure 6: success ratio and success volume vs channel capacity scale
// (1-60) on the Ripple-like and Lightning-like topologies, for Flash,
// Spider, SpeedyMurmurs and SP.
//
// Paper claims reproduced here: Flash ~20% better success ratio than
// SpeedyMurmurs/SP, comparable ratio to Spider, and up to 2.3x Spider's
// success volume (4.5x SP, 5x SpeedyMurmurs).
//
// The whole (topology x scale x scheme) grid runs as one parallel sweep;
// results are bit-identical to the old sequential loops for any
// FLASH_BENCH_THREADS value.
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "trace/workload.h"

using namespace flash;
using namespace flash::bench;

int main() {
  print_header("Figure 6",
               "success ratio & volume vs capacity scale factor");
  const std::size_t tx = bench_tx();
  const std::size_t runs = bench_runs();
  const std::vector<double> scales =
      fast_mode() ? std::vector<double>{1, 10, 30}
                  : std::vector<double>{1, 10, 20, 30, 40, 50, 60};

  const std::vector<BenchTopo> topos = standard_topos();

  std::vector<SweepCell> grid;
  for (const BenchTopo& topo : topos) {
    for (const double scale : scales) {
      for (const Scheme scheme : all_schemes()) {
        SweepCell cell;
        cell.label = std::string(topo.name) + "/scale=" + fmt(scale, 0) +
                     "/" + scheme_name(scheme);
        cell.factory = topo.make_factory(tx);
        cell.scheme = scheme;
        cell.sim.capacity_scale = scale;
        cell.runs = runs;
        grid.push_back(std::move(cell));
      }
    }
  }

  const SweepResult result = run_sweep(grid, sweep_options());

  // Walk the cells in grid order (topology-major, then scale, then scheme).
  std::size_t idx = 0;
  for (const BenchTopo& topo : topos) {
    TextTable ratio_table, volume_table;
    std::vector<std::string> header{"scale"};
    for (Scheme s : all_schemes()) header.push_back(scheme_name(s));
    ratio_table.header(header);
    volume_table.header(header);

    double best_volume_gain_vs_spider = 0;
    double best_volume_gain_vs_sp = 0;
    double best_volume_gain_vs_sm = 0;

    for (const double scale : scales) {
      std::vector<std::string> ratio_row{fmt(scale, 0)};
      std::vector<std::string> volume_row{fmt(scale, 0)};
      std::map<Scheme, double> volume;
      for (const Scheme scheme : all_schemes()) {
        const RunSeries& series =
            expect_cell(result, grid, idx++,
                        std::string(topo.name) + "/scale=" + fmt(scale, 0) +
                            "/" + scheme_name(scheme));
        ratio_row.push_back(fmt_pct(series.success_ratio().mean));
        volume_row.push_back(fmt_sci(series.success_volume().mean, 3));
        volume[scheme] = series.success_volume().mean;
      }
      ratio_table.row(std::move(ratio_row));
      volume_table.row(std::move(volume_row));
      if (volume[Scheme::kSpider] > 0) {
        best_volume_gain_vs_spider =
            std::max(best_volume_gain_vs_spider,
                     volume[Scheme::kFlash] / volume[Scheme::kSpider]);
      }
      if (volume[Scheme::kShortestPath] > 0) {
        best_volume_gain_vs_sp =
            std::max(best_volume_gain_vs_sp,
                     volume[Scheme::kFlash] / volume[Scheme::kShortestPath]);
      }
      if (volume[Scheme::kSpeedyMurmurs] > 0) {
        best_volume_gain_vs_sm =
            std::max(best_volume_gain_vs_sm,
                     volume[Scheme::kFlash] / volume[Scheme::kSpeedyMurmurs]);
      }
    }

    std::printf("[%s] success ratio vs capacity scale (%zu tx, %zu runs)\n",
                topo.name, tx, runs);
    print_table(ratio_table);
    std::printf("[%s] success volume vs capacity scale\n", topo.name);
    print_table(volume_table);

    claim(std::string(topo.name) + ": peak Flash/Spider volume gain",
          "up to 2.3x", fmt_ratio(best_volume_gain_vs_spider));
    claim(std::string(topo.name) + ": peak Flash/SP volume gain",
          "up to 4.5x", fmt_ratio(best_volume_gain_vs_sp));
    claim(std::string(topo.name) + ": peak Flash/SpeedyMurmurs volume gain",
          "up to 5x", fmt_ratio(best_volume_gain_vs_sm));
    std::printf("\n");
  }

  report_sweep("fig06_capacity_sweep", grid, result);
  return 0;
}

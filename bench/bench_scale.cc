// Lightning-scale streaming benchmark: payments/sec, peak RSS and
// router-cache behaviour when the scenario engine runs a 10k-100k-node
// synthetic Lightning topology with a generated (never materialized)
// payment stream and a bounded per-sender router cache.
//
// This is the tentpole measurement for the ROADMAP's scale work: workload
// memory is O(1) in the payment count (GeneratedWorkloadStream), per-sender
// routing state is O(network x K) (SenderRouterCache), and the topology
// comes through the snapshot-materialization path (make_snapshot_workload)
// so the bench exercises the same plumbing a real crawled snapshot would.
//
// Modes: FLASH_BENCH_SMOKE runs one 2k-node cell sized for a CI gate;
// FLASH_BENCH_FAST one 10k-node cell; the default runs 10k and 50k nodes
// at 10^5 streamed payments each. FLASH_BENCH_JSON writes the structured
// report run_benches.sh folds into BENCH_micro.json under "scale".
// FLASH_BENCH_MAINTENANCE=full|strict|lazy picks the router maintenance
// mode (default lazy: the O(delta) patch path this bench is sized to show
// off; "full" is the pre-incremental O(network)-rebuild baseline for A/B).
#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/graph_io.h"
#include "graph/topology.h"
#include "sim/scenario.h"
#include "trace/workload_stream.h"
#include "util/table.h"

namespace flash::bench {
namespace {

/// Satoshi size threshold separating mice from elephants. An on-the-fly
/// stream has no materialized trace to take quantiles from, so the bench
/// pins the threshold the paper's Lightning workload converges to.
constexpr Amount kClassThreshold = 8.9e7;

struct ScaleCell {
  const char* label;
  std::size_t nodes;
  std::size_t payments;
  std::size_t max_routers;  // SenderRouterCache capacity K
};

struct ScaleRow {
  ScaleCell cell;
  std::size_t channels = 0;
  double wall_seconds = 0;
  double payments_per_sec = 0;
  double success_ratio = 0;
  double cache_hit_rate = 0;
  ScenarioResult result;
  long peak_rss_kib = 0;
};

long peak_rss_kib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

/// Synthesizes a crawled-density snapshot: scale-free topology at the
/// Lightning channels-per-node ratio, degree-weighted lognormal channel
/// capacities around the 500k-satoshi median (hubs carry most traffic, so
/// they get proportionally deeper channels — same model as the paper's
/// Lightning workload) split evenly across directions, and the paper's
/// low-end proportional fee on every edge.
LightningSnapshot make_snapshot(std::size_t nodes, Rng& rng) {
  const Graph g = scale_free_lightning(nodes, rng);
  double avg_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    avg_degree += static_cast<double>(g.out_degree(v));
  }
  avg_degree /= std::max<double>(1.0, static_cast<double>(g.num_nodes()));
  LightningSnapshot snap;
  snap.num_nodes = g.num_nodes();
  snap.channels.reserve(g.num_channels());
  const double mu = std::log(500000.0);
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    const EdgeId e = g.channel_forward_edge(c);
    const double du = static_cast<double>(g.out_degree(g.from(e)));
    const double dv = static_cast<double>(g.out_degree(g.to(e)));
    const double weight = std::sqrt(du * dv) / std::max(avg_degree, 1.0);
    const Amount capacity = rng.lognormal(mu, 1.6) * weight;
    snap.channels.push_back({g.from(e), g.to(e), capacity / 2, capacity / 2,
                             0.0, 0.001, 0.0, 0.001});
  }
  return snap;
}

RouterMaintenance maintenance_mode() {
  const char* env = std::getenv("FLASH_BENCH_MAINTENANCE");
  const std::string mode = env ? env : "lazy";
  if (mode == "full") return RouterMaintenance::kFullRebuild;
  if (mode == "strict") return RouterMaintenance::kIncrementalStrict;
  if (mode != "lazy") {
    std::fprintf(stderr,
                 "warning: FLASH_BENCH_MAINTENANCE=%s not in "
                 "{full,strict,lazy}; using lazy\n",
                 mode.c_str());
  }
  return RouterMaintenance::kIncrementalLazy;
}

const char* maintenance_name(RouterMaintenance m) {
  switch (m) {
    case RouterMaintenance::kFullRebuild: return "full";
    case RouterMaintenance::kIncrementalStrict: return "strict";
    case RouterMaintenance::kIncrementalLazy: return "lazy";
  }
  return "?";
}

ScaleRow run_cell(const ScaleCell& cell) {
  Rng rng(1);
  const LightningSnapshot snap = make_snapshot(cell.nodes, rng);
  const Workload w = make_snapshot_workload(snap, cell.label);

  GeneratedStreamConfig stream_cfg;
  stream_cfg.count = cell.payments;
  stream_cfg.sizes = SizeDistribution::bitcoin();
  stream_cfg.pair_config = PairGenConfig::daily();
  GeneratedWorkloadStream stream(w.graph(), /*seed=*/2, stream_cfg);

  FlashOptions opts;
  opts.elephant_threshold = kClassThreshold;
  SimConfig sim;
  sim.class_threshold = kClassThreshold;
  sim.invariant_stride = 4096;
  ScenarioConfig scenario;
  // A handful of close/reopen cycles over the run, each stale for ~20 % of
  // it: enough view divergence that the per-sender router cache does real
  // work without the bench becoming a churn microbenchmark.
  scenario.churn.close_rate = 8.0 / static_cast<double>(cell.payments);
  scenario.churn.mean_downtime = static_cast<double>(cell.payments) / 5.0;
  scenario.gossip.hop_delay = 3;
  scenario.max_sender_routers = cell.max_routers;
  scenario.maintenance = maintenance_mode();

  ScenarioEngine engine(w, stream, Scheme::kShortestPath, opts, sim, scenario,
                        /*seed=*/7);
  const auto start = std::chrono::steady_clock::now();
  ScenarioResult result = engine.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  ScaleRow row;
  row.cell = cell;
  row.channels = w.graph().num_channels();
  row.wall_seconds = elapsed.count();
  row.payments_per_sec =
      static_cast<double>(cell.payments) / std::max(elapsed.count(), 1e-9);
  row.success_ratio = result.sim.success_ratio();
  const std::uint64_t lookups =
      result.router_cache_hits + result.router_cache_misses;
  row.cache_hit_rate =
      lookups ? static_cast<double>(result.router_cache_hits) /
                    static_cast<double>(lookups)
              : 0.0;
  row.result = std::move(result);
  row.peak_rss_kib = peak_rss_kib();
  return row;
}

void write_json(const std::string& path, const std::vector<ScaleRow>& rows,
                double wall_seconds) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write FLASH_BENCH_JSON=%s\n",
                 path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"bench_scale\",\n";
  out << "  \"wall_seconds\": " << wall_seconds << ",\n";
  out << "  \"threads\": 1,\n  \"cells\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    out << "    {\"label\": \"" << r.cell.label << "\""
        << ", \"nodes\": " << r.cell.nodes
        << ", \"channels\": " << r.channels
        << ", \"payments\": " << r.cell.payments
        << ", \"max_sender_routers\": " << r.cell.max_routers
        << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"payments_per_sec\": " << r.payments_per_sec
        << ", \"success_ratio\": " << r.success_ratio
        << ", \"cache_hit_rate\": " << r.cache_hit_rate
        << ", \"cache_hits\": " << r.result.router_cache_hits
        << ", \"cache_misses\": " << r.result.router_cache_misses
        << ", \"cache_evictions\": " << r.result.router_cache_evictions
        << ", \"router_rebuilds\": " << r.result.router_rebuilds
        << ", \"router_patches\": " << r.result.router_patches
        << ", \"entries_invalidated\": " << r.result.entries_invalidated
        << ", \"maintenance\": \"" << maintenance_name(maintenance_mode())
        << "\""
        << ", \"channels_closed\": " << r.result.channels_closed
        << ", \"peak_rss_kib\": " << r.peak_rss_kib << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("json report: %s\n", path.c_str());
}

int run() {
  std::vector<ScaleCell> cells;
  if (smoke_mode()) {
    cells.push_back({"2k", 2000, 3000, 16});
  } else if (fast_mode()) {
    cells.push_back({"10k", 10000, 20000, 64});
  } else {
    cells.push_back({"10k", 10000, 100000, 64});
    cells.push_back({"50k", 50000, 100000, 16});
  }

  print_header("bench_scale",
               "streaming payments through Lightning-scale topologies");
  std::printf("router maintenance: %s (FLASH_BENCH_MAINTENANCE)\n",
              maintenance_name(maintenance_mode()));
  const auto start = std::chrono::steady_clock::now();
  std::vector<ScaleRow> rows;
  rows.reserve(cells.size());
  for (const ScaleCell& cell : cells) {
    std::printf("-- %s: %zu nodes, %zu payments, K=%zu\n", cell.label,
                cell.nodes, cell.payments, cell.max_routers);
    rows.push_back(run_cell(cell));
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  TextTable t;
  t.header({"topo", "nodes", "channels", "payments", "K", "pay/s", "success",
            "hit rate", "evict", "rebuilds", "patches", "invalidated",
            "peakRSS MiB"});
  for (const ScaleRow& r : rows) {
    t.row({r.cell.label, std::to_string(r.cell.nodes),
           std::to_string(r.channels), std::to_string(r.cell.payments),
           std::to_string(r.cell.max_routers), fmt(r.payments_per_sec, 0),
           fmt_pct(r.success_ratio), fmt_pct(r.cache_hit_rate),
           std::to_string(r.result.router_cache_evictions),
           std::to_string(r.result.router_rebuilds),
           std::to_string(r.result.router_patches),
           std::to_string(r.result.entries_invalidated),
           fmt(static_cast<double>(r.peak_rss_kib) / 1024.0, 1)});
  }
  print_table(t);

  claim("workload memory per payment", "O(1) (streamed)", "O(1) (streamed)");
  claim("per-sender router state", "O(network x K)",
        "K=" + std::to_string(cells.back().max_routers) + " live routers");

  const char* path = std::getenv("FLASH_BENCH_JSON");
  if (path && *path) write_json(path, rows, elapsed.count());
  return 0;
}

}  // namespace
}  // namespace flash::bench

int main() { return flash::bench::run(); }

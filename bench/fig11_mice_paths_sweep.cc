// Figure 11: number of routing-table paths per receiver (m) for mice.
//
// m = 0 routes mice exactly like elephants — the performance upper bound
// with maximal probing. Paper claims (Ripple trace): m = 6 comes within
// 15% of the upper bound's success volume, and a small m costs >= ~12x
// less probing than routing mice as elephants.
//
// The m grid runs as one parallel sweep.
#include <string>
#include <vector>

#include "bench_common.h"
#include "trace/workload.h"

using namespace flash;
using namespace flash::bench;

int main() {
  print_header("Figure 11", "paths per receiver (m) for mice routing");
  const std::size_t tx = bench_tx();
  const std::size_t runs = bench_runs();
  const WorkloadFactory factory = ripple_factory(tx);

  const std::vector<std::size_t> ms =
      fast_mode() ? std::vector<std::size_t>{0, 4}
                  : std::vector<std::size_t>{0, 2, 4, 6, 8};

  std::vector<SweepCell> grid;
  for (const std::size_t m : ms) {
    SweepCell cell;
    cell.label = "Ripple/m=" + std::to_string(m);
    cell.factory = factory;
    cell.scheme = Scheme::kFlash;
    cell.flash.m_mice_paths = m;
    cell.sim.capacity_scale = 10.0;
    cell.runs = runs;
    grid.push_back(std::move(cell));
  }

  const SweepResult result = run_sweep(grid, sweep_options());

  TextTable t;
  t.header({"m", "mice succ volume", "probe msgs"});
  double upper_volume = 0, upper_probes = 0;
  double m6_volume = 0, m4_probes = 0;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const std::size_t m = ms[i];
    const RunSeries& series =
        expect_cell(result, grid, i, "Ripple/m=" + std::to_string(m));
    const double mice_volume =
        series
            .aggregate([](const SimResult& r) {
              return static_cast<double>(r.mice_volume_succeeded);
            })
            .mean;
    const double probes = series.probe_messages().mean;
    t.row({std::to_string(m), fmt_sci(mice_volume, 3), fmt(probes, 0)});
    if (m == 0) {
      upper_volume = mice_volume;
      upper_probes = probes;
    }
    if (m == 6) m6_volume = mice_volume;
    if (m == 4) m4_probes = probes;
  }
  std::printf("[Ripple] m sweep (%zu tx, scale 10, %zu runs); m=0 routes "
              "mice as elephants\n",
              tx, runs);
  print_table(t);

  if (upper_volume > 0 && m6_volume > 0) {
    claim("mice volume at m=6 vs upper bound (m=0)", "within 15%",
          fmt_pct(1 - m6_volume / upper_volume) + " below");
  }
  if (m4_probes > 0) {
    claim("probing reduction at m=4 vs mice-as-elephants", ">= ~12x",
          fmt_ratio(upper_probes / m4_probes, 1));
  }

  report_sweep("fig11_mice_paths_sweep", grid, result);
  return 0;
}

// Figure 15 (extension): the time-extended HTLC lifecycle — success ratio
// vs payment rate x per-hop latency, per scheme, plus a hub-griefing
// scenario.
//
// The paper's evaluation settles every payment instantly inside the route
// step, so funds are never observably in flight. This sweep opens the
// settlement-time axis: each successful route locks its funds hop by hop
// (HtlcConfig::hop_latency per hop) and unlocks them only after the
// backward settle wave, so CONCURRENT payments route against reduced
// balances. Expected shape (and the claim checked below): at a fixed
// payment rate, success ratio falls monotonically as hop latency grows —
// in-flight lock contention the instant-settlement model cannot express.
//
// Sections:
//   1. rate x hop-latency x scheme grid (hop_latency = 0 is the
//      instant-settlement baseline row).
//   2. Hub griefing: a fraction of nodes (preferring hubs) sit on every
//      settle/fail relay they forward, stretching lock times and starving
//      other payments.
//   3. Zero-latency equivalence gate: HtlcConfig{} must reproduce the
//      instant-settlement payment digest bit-for-bit, per scheme. The
//      bench exits non-zero on a mismatch, and the digests land in the
//      FLASH_BENCH_JSON report for the CI gate.
//
// Environment knobs: the usual FLASH_BENCH_* set (bench_common.h), plus
// FLASH_BENCH_SMOKE for the 1-run CI mode.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/scenario.h"
#include "trace/workload.h"

using namespace flash;
using namespace flash::bench;

namespace {

/// Toy workload with arrivals compressed to `rate` payments per sim-time
/// unit (the generator emits one per unit; the HTLC lifecycle makes the
/// arrival density relative to the hop latency matter).
Workload rated_toy(std::size_t nodes, std::size_t tx, double rate,
                   std::uint64_t seed) {
  const Workload base = make_toy_workload(nodes, tx, seed);
  std::vector<Transaction> txs(base.transactions().begin(),
                               base.transactions().end());
  for (Transaction& t : txs) t.timestamp /= rate;
  const NetworkState state = base.make_state();
  std::vector<Amount> balances(base.graph().num_edges());
  for (EdgeId e = 0; e < base.graph().num_edges(); ++e) {
    balances[e] = state.balance(e);
  }
  return Workload(base.graph(), std::move(balances), base.fees(),
                  std::move(txs), base.name());
}

struct HtlcRow {
  double rate = 0;
  double hop_latency = 0;
  double holder_fraction = 0;
  Scheme scheme = Scheme::kFlash;
  // Means over runs.
  double success_ratio = 0;
  double inflight_failures = 0;
  double expiries = 0;
  double holder_delays = 0;
  double max_inflight = 0;
  double sim_latency_p50 = 0;
  double sim_latency_p99 = 0;
};

struct DigestCheck {
  Scheme scheme = Scheme::kFlash;
  std::uint64_t instant = 0;
  std::uint64_t htlc_zero = 0;
};

HtlcRow run_cell(std::size_t nodes, std::size_t tx, std::size_t runs,
                 double rate, Scheme scheme, const ScenarioConfig& cfg) {
  HtlcRow row;
  row.rate = rate;
  row.hop_latency = cfg.htlc.hop_latency;
  row.holder_fraction = cfg.htlc.holder_fraction;
  row.scheme = scheme;
  // Scarce-capacity regime (cf. fig14): in-flight locks matter most when
  // channels cannot absorb several concurrent payments; on a well-funded
  // graph Flash's probing and retries absorb the contention almost
  // entirely (itself a result, but not this figure's axis).
  SimConfig sim;
  sim.capacity_scale = 0.5;
  for (std::size_t r = 0; r < runs; ++r) {
    const std::uint64_t seed = 1 + r;
    const Workload w = rated_toy(nodes, tx, rate, seed);
    const ScenarioResult res = run_scenario(w, scheme, {}, sim, cfg, seed);
    row.success_ratio += res.sim.success_ratio();
    row.inflight_failures += static_cast<double>(res.htlc_inflight_failures);
    row.expiries += static_cast<double>(res.htlc_expiries);
    row.holder_delays += static_cast<double>(res.htlc_holder_delays);
    row.max_inflight += static_cast<double>(res.htlc_max_inflight);
    row.sim_latency_p50 += res.sim_latency.p50_seconds;
    row.sim_latency_p99 += res.sim_latency.p99_seconds;
  }
  const double n = static_cast<double>(runs);
  row.success_ratio /= n;
  row.inflight_failures /= n;
  row.expiries /= n;
  row.holder_delays /= n;
  row.max_inflight /= n;
  row.sim_latency_p50 /= n;
  row.sim_latency_p99 /= n;
  return row;
}

void write_json(const std::string& path, const std::vector<HtlcRow>& rows,
                const std::vector<DigestCheck>& checks, std::size_t nodes,
                std::size_t tx, double wall_seconds) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write FLASH_BENCH_JSON=%s\n",
                 path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"fig15_htlc_sweep\",\n";
  out << "  \"wall_seconds\": " << wall_seconds << ",\n";
  out << "  \"nodes\": " << nodes << ",\n";
  out << "  \"transactions\": " << tx << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const HtlcRow& r = rows[i];
    out << "    {\"scheme\": \"" << scheme_name(r.scheme) << "\""
        << ", \"rate\": " << r.rate
        << ", \"hop_latency\": " << r.hop_latency
        << ", \"holder_fraction\": " << r.holder_fraction
        << ", \"success_ratio\": " << r.success_ratio
        << ", \"inflight_failures\": " << r.inflight_failures
        << ", \"expiries\": " << r.expiries
        << ", \"holder_delays\": " << r.holder_delays
        << ", \"max_inflight\": " << r.max_inflight
        << ", \"sim_latency_p50\": " << r.sim_latency_p50
        << ", \"sim_latency_p99\": " << r.sim_latency_p99 << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"zero_latency_digests\": [\n";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    out << "    {\"scheme\": \"" << scheme_name(checks[i].scheme) << "\""
        << ", \"instant\": " << checks[i].instant
        << ", \"htlc_zero\": " << checks[i].htlc_zero << "}"
        << (i + 1 < checks.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("json report: %s\n", path.c_str());
}

}  // namespace

int main() {
  print_header("Figure 15",
               "success ratio vs payment rate x hop latency (time-extended "
               "HTLC lifecycle)");

  const bool smoke = smoke_mode();
  const bool fast = fast_mode();
  const std::size_t nodes = smoke ? 40 : fast ? 80 : 120;
  const std::size_t tx =
      smoke ? 150 : std::min<std::size_t>(bench_tx(), fast ? 600 : 1000);
  const std::size_t runs = smoke ? 1 : bench_runs();
  const std::vector<double> rates =
      smoke ? std::vector<double>{1}
            : fast ? std::vector<double>{0.5, 1, 2}
                   : std::vector<double>{1, 2, 4};
  // Nonzero latencies sit in the strongly-contended regime: at mild
  // contention (rate x latency of a couple sim-time units) success wiggles
  // ~1% non-monotonically with these seeds; the figure's axis is the
  // contended region where the fall is robust.
  const std::vector<double> latencies =
      smoke ? std::vector<double>{0, 8}
            : std::vector<double>{0, 8, 32};
  const std::vector<Scheme> schemes =
      smoke ? std::vector<Scheme>{Scheme::kFlash}
            : fast ? std::vector<Scheme>{Scheme::kFlash,
                                         Scheme::kShortestPath}
                   : std::vector<Scheme>{Scheme::kFlash, Scheme::kSpider,
                                         Scheme::kShortestPath};

  const auto start = std::chrono::steady_clock::now();
  std::vector<HtlcRow> rows;

  // --- Section 1: rate x hop latency x scheme ---------------------------
  TextTable table;
  {
    std::vector<std::string> header{"rate", "hop lat"};
    for (const Scheme s : schemes) header.push_back(scheme_name(s));
    header.push_back("Flash inflight fails");
    header.push_back("Flash p99 lock time");
    table.header(header);
  }
  // success[rate][scheme] = mean success ratios in latency order.
  std::vector<std::vector<std::vector<double>>> success(rates.size());
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    success[ri].resize(schemes.size());
    for (const double lat : latencies) {
      // No retries: a retry rescues most in-flight lock failures (funds
      // are back after the unwind), masking the contention this figure
      // measures. The griefing section below keeps retries on.
      ScenarioConfig cfg;
      cfg.htlc.hop_latency = lat;  // 0 = instant-settlement baseline row
      std::vector<std::string> r{fmt(rates[ri], 1), fmt(lat, 0)};
      double flash_fails = 0, flash_p99 = 0;
      for (std::size_t si = 0; si < schemes.size(); ++si) {
        const HtlcRow row =
            run_cell(nodes, tx, runs, rates[ri], schemes[si], cfg);
        rows.push_back(row);
        success[ri][si].push_back(row.success_ratio);
        r.push_back(fmt_pct(row.success_ratio));
        if (schemes[si] == Scheme::kFlash) {
          flash_fails = row.inflight_failures;
          flash_p99 = row.sim_latency_p99;
        }
      }
      r.push_back(fmt(flash_fails, 1));
      r.push_back(fmt(flash_p99, 1));
      table.row(std::move(r));
    }
  }
  std::printf("success ratio vs rate x hop latency (%zu nodes, %zu tx, "
              "%zu runs)\n",
              nodes, tx, runs);
  print_table(table);

  // The headline claim: longer hop latency => no better (and typically
  // worse) success, at every fixed payment rate, for every scheme.
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      bool monotone = true;
      std::string shape;
      for (std::size_t d = 0; d < success[ri][si].size(); ++d) {
        if (d && success[ri][si][d] > success[ri][si][d - 1] + 1e-9) {
          monotone = false;
        }
        shape += (d ? " -> " : "") + fmt_pct(success[ri][si][d]);
      }
      claim("rate=" + fmt(rates[ri], 1) + " " + scheme_name(schemes[si]) +
                ": success falls with hop latency",
            "monotone",
            (monotone ? "monotone (" : "NOT monotone (") + shape + ")");
    }
  }

  // --- Section 2: hub griefing ------------------------------------------
  // A fraction of nodes (hubs first) sit on every settle/fail relay for
  // far longer than the whole round trip, so every payment they forward
  // keeps its funds locked and starves the rest of the workload.
  const std::vector<double> holder_fractions =
      smoke ? std::vector<double>{0, 0.3}
            : std::vector<double>{0, 0.2, 0.4};
  const Scheme grief_scheme =
      smoke ? Scheme::kFlash : Scheme::kShortestPath;
  TextTable grief;
  grief.header({"holders", "success", "holder delays", "max inflight",
                "p99 lock time"});
  std::vector<double> grief_success;
  for (const double frac : holder_fractions) {
    ScenarioConfig cfg;
    cfg.retry.max_retries = 1;
    cfg.retry.delay = 1.0;
    cfg.htlc.hop_latency = 1.0;
    cfg.htlc.timelock_delta = 25.0;
    cfg.htlc.holder_fraction = frac;
    cfg.htlc.holders_prefer_hubs = true;
    cfg.htlc.holder_delay = 1e4;
    const HtlcRow row = run_cell(nodes, tx, runs, 1.0, grief_scheme, cfg);
    rows.push_back(row);
    grief_success.push_back(row.success_ratio);
    grief.row({fmt(frac, 2), fmt_pct(row.success_ratio),
               fmt(row.holder_delays, 1), fmt(row.max_inflight, 1),
               fmt(row.sim_latency_p99, 1)});
  }
  std::printf("hub griefing (%s, rate=1, hop latency=1)\n",
              scheme_name(grief_scheme).c_str());
  print_table(grief);
  {
    bool falls = true;
    for (std::size_t i = 1; i < grief_success.size(); ++i) {
      if (grief_success[i] > grief_success[i - 1] + 1e-9) falls = false;
    }
    claim("griefing: success falls as holders multiply", "monotone",
          falls ? "monotone" : "NOT monotone");
  }

  // --- Section 3: churn rate x hub outage grid --------------------------
  // The lifecycle now composes with dynamics: channels close under
  // in-flight parts (resolved on-chain from the break point) and the top
  // hubs can go dark for a window. Axes: churn close-rate x outage on/off.
  {
    const std::vector<double> churn_rates =
        smoke ? std::vector<double>{0, 0.02}
              : std::vector<double>{0, 0.02, 0.05};
    const double horizon = static_cast<double>(tx);
    TextTable dyn;
    dyn.header({"churn rate", "hub outage", "success", "break fails",
                "on-chain refunds", "on-chain settles"});
    for (const double cr : churn_rates) {
      for (const bool outage : {false, true}) {
        ScenarioConfig cfg;
        cfg.retry.max_retries = 1;
        cfg.retry.delay = 1.0;
        cfg.htlc.hop_latency = 1.0;
        cfg.htlc.timelock_delta = 25.0;
        cfg.churn.close_rate = cr;
        cfg.churn.mean_downtime = 20.0;
        if (outage) {
          cfg.fault.hub_count = 3;
          cfg.fault.hub_outage_start = horizon / 3;
          cfg.fault.hub_outage_duration = horizon / 6;
        }
        SimConfig dyn_sim;
        dyn_sim.capacity_scale = 0.5;
        dyn_sim.invariant_stride = 1;  // conservation after every payment
        double dyn_success = 0, breaks = 0, refunds = 0, settles = 0;
        for (std::size_t r = 0; r < runs; ++r) {
          const std::uint64_t seed = 1 + r;
          const Workload w = rated_toy(nodes, tx, 1.0, seed);
          const ScenarioResult res =
              run_scenario(w, Scheme::kFlash, {}, dyn_sim, cfg, seed);
          dyn_success += res.sim.success_ratio();
          breaks += static_cast<double>(res.htlc_break_failures);
          refunds += static_cast<double>(res.htlc_onchain_refunded_hops);
          settles += static_cast<double>(res.htlc_onchain_settled_hops);
        }
        const double n = static_cast<double>(runs);
        dyn.row({fmt(cr, 2), outage ? "3 hubs" : "off",
                 fmt_pct(dyn_success / n), fmt(breaks / n, 1),
                 fmt(refunds / n, 1), fmt(settles / n, 1)});
      }
    }
    std::printf("htlc x dynamics (churn rate x hub outage, Flash, "
                "rate=1, hop latency=1)\n");
    print_table(dyn);
  }

  // --- Section 4: zero-latency equivalence gate -------------------------
  // HtlcConfig{} must leave the engine on the instant-settlement path:
  // identical payment digest for every scheme. This is the refactor's
  // no-regression contract (also pinned by tests/htlc_lifecycle_test.cc).
  std::vector<DigestCheck> checks;
  bool digests_ok = true;
  {
    const Workload w = rated_toy(nodes, std::min<std::size_t>(tx, 300), 1, 1);
    for (const Scheme scheme : all_schemes()) {
      DigestCheck c;
      c.scheme = scheme;
      c.instant = run_scenario(w, scheme, {}, {}, {}, 1).payment_digest;
      ScenarioConfig zero;
      zero.htlc = HtlcConfig{};
      c.htlc_zero = run_scenario(w, scheme, {}, {}, zero, 1).payment_digest;
      if (c.instant != c.htlc_zero) digests_ok = false;
      checks.push_back(c);
    }
  }
  claim("zero-latency HTLC digest == instant-settlement digest", "exact",
        digests_ok ? "exact (all schemes)" : "MISMATCH");

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  std::printf("htlc sweep: %zu cells, %.2fs wall\n", rows.size(),
              elapsed.count());
  const char* path = std::getenv("FLASH_BENCH_JSON");
  if (path && *path) {
    write_json(path, rows, checks, nodes, tx, elapsed.count());
  }
  return digests_ok ? 0 : 1;
}

// Figure 4: recurrence analysis of transactions.
//
// 4(a): CDF over days of the fraction of transactions that repeat an
//       already-seen sender-receiver pair within the same 24 h window
//       (paper: median 86% across 1306 days).
// 4(b): CDF over days of the share of recurring transactions that go to a
//       sender's top-5 counterparties (paper: >70% for the average user).
#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "bench_common.h"
#include "trace/pair_gen.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace flash;
using namespace flash::bench;

int main() {
  print_header("Figure 4", "recurring transactions (Ripple-style workload)");

  const std::size_t days = fast_mode() ? 100 : 1306;
  const std::size_t tx_per_day = fast_mode() ? 500 : 2000;
  Rng rng(7);
  RecurrentPairGenerator gen(1870, PairGenConfig::daily(), rng);

  std::vector<double> daily_recurring;
  std::vector<double> daily_top5_share;
  for (std::size_t day = 0; day < days; ++day) {
    std::set<std::pair<NodeId, NodeId>> seen_today;
    std::map<NodeId, std::map<NodeId, int>> recurring_by_sender;
    std::size_t recurring = 0;
    for (std::size_t i = 0; i < tx_per_day; ++i) {
      const auto pair = gen.next(rng);
      if (!seen_today.insert(pair).second) {
        ++recurring;
        ++recurring_by_sender[pair.first][pair.second];
      }
    }
    daily_recurring.push_back(static_cast<double>(recurring) / tx_per_day);

    // Share of the day's recurring transactions that go to their sender's
    // top-5 counterparties (transaction-weighted across senders, so the
    // "average user" reflects where the recurring volume actually is).
    std::size_t top5_total = 0, recurring_total = 0;
    for (const auto& [sender, receivers] : recurring_by_sender) {
      int total = 0;
      std::vector<int> counts;
      for (const auto& [r, c] : receivers) {
        total += c;
        counts.push_back(c);
      }
      std::sort(counts.rbegin(), counts.rend());
      int top5 = 0;
      for (std::size_t k = 0; k < counts.size() && k < 5; ++k) {
        top5 += counts[k];
      }
      top5_total += static_cast<std::size_t>(top5);
      recurring_total += static_cast<std::size_t>(total);
    }
    if (recurring_total > 0) {
      daily_top5_share.push_back(static_cast<double>(top5_total) /
                                 static_cast<double>(recurring_total));
    }
  }

  TextTable a;
  a.header({"CDF", "recurring fraction"});
  for (const double p : {5.0, 25.0, 50.0, 75.0, 95.0}) {
    a.row({fmt(p / 100, 2), fmt_pct(percentile(daily_recurring, p))});
  }
  std::printf("[Fig 4a] fraction of recurring transactions per day (%zu days)\n",
              days);
  print_table(a);

  TextTable b;
  b.header({"CDF", "top-5 share of recurring"});
  for (const double p : {5.0, 25.0, 50.0, 75.0, 95.0}) {
    b.row({fmt(p / 100, 2), fmt_pct(percentile(daily_top5_share, p))});
  }
  std::printf("[Fig 4b] top-5 counterparty share among recurring tx\n");
  print_table(b);

  claim("median daily recurring fraction", "86%",
        fmt_pct(percentile(daily_recurring, 50)));
  claim("median top-5 share of recurring tx", ">70%",
        fmt_pct(percentile(daily_top5_share, 50)));
  return 0;
}

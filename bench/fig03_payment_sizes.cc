// Figure 3: payment-size CDFs for Ripple (USD) and Bitcoin (satoshi).
//
// Regenerates the measurement-study statistics the paper reports in §2.2:
// heavy-tailed sizes where the top 10% of payments carry ~94.5% (Ripple) /
// ~94.7% (Bitcoin) of total volume, with medians ~$4.8 / ~1.293e6 satoshi.
#include <vector>

#include "bench_common.h"
#include "trace/size_dist.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace flash;
using namespace flash::bench;

namespace {

void run_one(const char* name, const SizeDistribution& dist,
             const char* unit, double paper_median, double paper_p90,
             double paper_share) {
  Rng rng(1);
  const std::size_t n = fast_mode() ? 20000 : 200000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);

  TextTable cdf;
  cdf.header({"percentile", std::string("size (") + unit + ")"});
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    cdf.row({fmt(p, 1), fmt_sci(percentile(xs, p), 3)});
  }
  std::printf("[%s] CDF of payment sizes (%zu samples)\n", name, n);
  print_table(cdf);

  const double median = percentile(xs, 50);
  const double p90 = percentile(xs, 90);
  const double share = top_fraction_share(xs, 0.10);
  claim(std::string(name) + ": median payment size",
        fmt_sci(paper_median, 2), fmt_sci(median, 2));
  claim(std::string(name) + ": 90th-percentile size",
        fmt_sci(paper_p90, 2), fmt_sci(p90, 2));
  claim(std::string(name) + ": volume share of top-10% payments",
        fmt_pct(paper_share), fmt_pct(share));
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Figure 3", "payment size distributions (Ripple, Bitcoin)");
  run_one("Ripple", SizeDistribution::ripple(), "USD", 4.8, 1740.0, 0.945);
  run_one("Bitcoin", SizeDistribution::bitcoin(), "satoshi", 1.293e6,
          8.9e7, 0.947);
  return 0;
}

// Figure 8: probing-message overhead, Flash vs Spider (the static schemes
// never probe and are excluded, as in the paper).
//
// Paper claims: Flash sends ~43% fewer probing messages than Spider on the
// Ripple topology and ~37% fewer on Lightning, because only elephants (and
// failed mice trials) probe.
#include "bench_common.h"
#include "sim/experiment.h"
#include "trace/workload.h"

using namespace flash;
using namespace flash::bench;

namespace {

void compare(const char* topo_name, const WorkloadFactory& factory,
             const char* paper_saving) {
  const std::size_t runs = bench_runs();
  SimConfig sim;
  sim.capacity_scale = 10.0;

  const RunSeries flash = run_series(factory, Scheme::kFlash, {}, sim, runs);
  const RunSeries spider =
      run_series(factory, Scheme::kSpider, {}, sim, runs);

  TextTable t;
  t.header({"scheme", "probe msgs (mean)", "min", "max"});
  const Aggregate f = flash.probe_messages();
  const Aggregate s = spider.probe_messages();
  t.row({"Flash", fmt(f.mean, 0), fmt(f.min, 0), fmt(f.max, 0)});
  t.row({"Spider", fmt(s.mean, 0), fmt(s.min, 0), fmt(s.max, 0)});
  std::printf("[%s] probing messages (%zu tx, scale 10, %zu runs)\n",
              topo_name, bench_tx(), runs);
  print_table(t);

  const double saving = s.mean > 0 ? 1.0 - f.mean / s.mean : 0.0;
  claim(std::string(topo_name) + ": Flash probing saving vs Spider",
        paper_saving, fmt_pct(saving));
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Figure 8", "probing message overhead (Flash vs Spider)");
  const std::size_t tx = bench_tx();
  compare("Ripple",
          [tx](std::uint64_t seed) {
            WorkloadConfig c;
            c.num_transactions = tx;
            c.seed = seed;
            return make_ripple_workload(c);
          },
          "43%");
  compare("Lightning",
          [tx](std::uint64_t seed) {
            WorkloadConfig c;
            c.num_transactions = tx;
            c.seed = seed;
            return make_lightning_workload(c);
          },
          "37%");
  return 0;
}

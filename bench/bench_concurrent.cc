// Concurrent payment-engine benchmark: sustained routing throughput and
// per-payment latency of the three ScenarioExecution modes on the same
// workload, plus the replay-determinism evidence the CI smoke gate checks.
//
// Rows are mode x threads: `sequential` (the threads=1 oracle, with
// payment-indexed rng on so it is the replay equality baseline), `replay`
// (speculative routing, logical-order settlement — bit-identical digest
// at every thread count), and `free` (free-order commit, conservation
// only). The cell is churn-free and retry-free because free-order rejects
// event-loop dynamics by contract (see ScenarioConfig::validate).
//
// Knobs (on top of bench_common.h's): FLASH_BENCH_WORKERS is a comma list
// of thread counts for the concurrent rows (default "1,2,8").
// FLASH_BENCH_JSON writes the structured report run_benches.sh folds into
// BENCH_micro.json under "concurrent"; CI asserts every replay row's
// digest equals the sequential row's digest there.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/topology.h"
#include "sim/scenario.h"
#include "trace/workload_stream.h"
#include "util/table.h"

namespace flash::bench {
namespace {

struct ConcRow {
  const char* mode;
  std::size_t threads = 1;
  double wall_seconds = 0;
  double payments_per_sec = 0;
  ScenarioResult result;
};

std::vector<std::size_t> worker_counts() {
  const char* env = std::getenv("FLASH_BENCH_WORKERS");
  const std::string spec = (env && *env) ? env : "1,2,8";
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const long v = std::atol(tok.c_str());
    if (v > 0) out.push_back(static_cast<std::size_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out = {1, 2, 8};
  return out;
}

ConcRow run_row(const Workload& w, const char* mode, ScenarioExecution exec,
                std::size_t threads, std::size_t payments) {
  GeneratedStreamConfig stream_cfg;
  stream_cfg.count = payments;
  stream_cfg.sizes = SizeDistribution::bitcoin();
  stream_cfg.pair_config = PairGenConfig::daily();
  GeneratedWorkloadStream stream(w.graph(), /*seed=*/2, stream_cfg);

  FlashOptions opts;
  SimConfig sim;
  sim.invariant_stride = 4096;
  ScenarioConfig scenario;  // churn-free: free-order's contract
  scenario.concurrency.execution = exec;
  scenario.concurrency.workers = threads;
  // The oracle must share the concurrent modes' per-payment rng pinning,
  // or the digests would differ by design rather than by bug.
  scenario.payment_indexed_rng = true;

  ScenarioEngine engine(w, stream, Scheme::kShortestPath, opts, sim,
                        scenario, /*seed=*/7);
  const auto start = std::chrono::steady_clock::now();
  ScenarioResult result = engine.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  ConcRow row;
  row.mode = mode;
  row.threads = threads;
  row.wall_seconds = elapsed.count();
  row.payments_per_sec =
      static_cast<double>(payments) / std::max(elapsed.count(), 1e-9);
  row.result = std::move(result);
  return row;
}

void write_json(const std::string& path, const std::vector<ConcRow>& rows,
                std::size_t nodes, std::size_t payments,
                double wall_seconds) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write FLASH_BENCH_JSON=%s\n",
                 path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"bench_concurrent\",\n";
  out << "  \"wall_seconds\": " << wall_seconds << ",\n";
  out << "  \"nodes\": " << nodes << ",\n";
  out << "  \"payments\": " << payments << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ConcRow& r = rows[i];
    out << "    {\"mode\": \"" << r.mode << "\""
        << ", \"threads\": " << r.threads
        << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"payments_per_sec\": " << r.payments_per_sec
        << ", \"success_ratio\": " << r.result.sim.success_ratio()
        << ", \"latency_p50_seconds\": " << r.result.latency.p50_seconds
        << ", \"latency_p99_seconds\": " << r.result.latency.p99_seconds
        << ", \"digest\": " << r.result.payment_digest
        << ", \"spec_accepted\": " << r.result.spec_accepted
        << ", \"spec_rerouted\": " << r.result.spec_rerouted
        << ", \"commit_conflicts\": " << r.result.commit_conflicts << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("json report: %s\n", path.c_str());
}

int run() {
  std::size_t nodes = 10000;
  std::size_t payments = 50000;
  if (smoke_mode()) {
    nodes = 1000;
    payments = 2000;
  } else if (fast_mode()) {
    nodes = 5000;
    payments = 10000;
  }

  print_header("bench_concurrent",
               "route->settle pipeline: sequential vs replay vs free-order");
  Rng rng(1);
  const Graph g = scale_free_lightning(nodes, rng);
  LightningSnapshot snap;
  snap.num_nodes = g.num_nodes();
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    const EdgeId e = g.channel_forward_edge(c);
    const Amount capacity = rng.lognormal(std::log(500000.0), 1.6);
    snap.channels.push_back({g.from(e), g.to(e), capacity / 2, capacity / 2,
                             0.0, 0.001, 0.0, 0.001});
  }
  const Workload w = make_snapshot_workload(snap, "concurrent");

  const auto start = std::chrono::steady_clock::now();
  std::vector<ConcRow> rows;
  std::printf("-- sequential oracle: %zu nodes, %zu payments\n", nodes,
              payments);
  rows.push_back(
      run_row(w, "sequential", ScenarioExecution::kSequential, 1, payments));
  for (const std::size_t t : worker_counts()) {
    std::printf("-- replay x%zu\n", t);
    rows.push_back(
        run_row(w, "replay", ScenarioExecution::kReplay, t, payments));
  }
  for (const std::size_t t : worker_counts()) {
    std::printf("-- free x%zu\n", t);
    rows.push_back(
        run_row(w, "free", ScenarioExecution::kFreeOrder, t, payments));
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  TextTable tab;
  tab.header({"mode", "threads", "pay/s", "success", "p50 ms", "p99 ms",
              "accepted", "rerouted", "conflicts", "digest"});
  for (const ConcRow& r : rows) {
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(r.result.payment_digest));
    tab.row({r.mode, std::to_string(r.threads), fmt(r.payments_per_sec, 0),
             fmt_pct(r.result.sim.success_ratio()),
             fmt(r.result.latency.p50_seconds * 1e3, 3),
             fmt(r.result.latency.p99_seconds * 1e3, 3),
             std::to_string(r.result.spec_accepted),
             std::to_string(r.result.spec_rerouted),
             std::to_string(r.result.commit_conflicts), digest});
  }
  print_table(tab);

  // The determinism headline, checked loud here and again by CI on the
  // JSON: every replay row reproduces the sequential digest bit-for-bit.
  bool identical = true;
  for (const ConcRow& r : rows) {
    if (std::string(r.mode) == "replay" &&
        r.result.payment_digest != rows.front().result.payment_digest) {
      identical = false;
    }
  }
  claim("replay digest == sequential digest (all thread counts)", "exact",
        identical ? "exact" : "MISMATCH");

  const char* path = std::getenv("FLASH_BENCH_JSON");
  if (path && *path) write_json(path, rows, nodes, payments, elapsed.count());
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace flash::bench

int main() { return flash::bench::run(); }

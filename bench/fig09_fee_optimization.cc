// Figure 9: impact of the transaction-fee optimization (program (1)).
//
// Compares Flash with the LP split against the "w/o optimization" variant
// that fills the probed paths sequentially in discovery order. The metric
// is the unit fee: total fees over delivered volume, in percent, over all
// payments. Paper claim: the optimization cuts the unit fee by ~40% on
// both topologies.
#include <vector>

#include "bench_common.h"
#include "sim/experiment.h"
#include "trace/workload.h"

using namespace flash;
using namespace flash::bench;

namespace {

void compare(const char* topo_name,
             const std::function<Workload(std::size_t, std::uint64_t)>& make) {
  const std::vector<std::size_t> loads =
      fast_mode() ? std::vector<std::size_t>{1000}
                  : std::vector<std::size_t>{1000, 2000, 4000};
  const std::size_t runs = bench_runs();

  TextTable t;
  t.header({"#tx", "fee/volume w/ opt", "fee/volume w/o opt", "saving"});
  double total_saving = 0;
  std::size_t rows = 0;
  for (const std::size_t load : loads) {
    const WorkloadFactory factory = [&](std::uint64_t seed) {
      return make(load, seed);
    };
    SimConfig sim;
    sim.capacity_scale = 10.0;
    FlashOptions with;
    FlashOptions without;
    without.optimize_fees = false;
    const Aggregate w =
        run_series(factory, Scheme::kFlash, with, sim, runs).fee_ratio();
    const Aggregate wo =
        run_series(factory, Scheme::kFlash, without, sim, runs).fee_ratio();
    const double saving = wo.mean > 0 ? 1.0 - w.mean / wo.mean : 0.0;
    t.row({std::to_string(load), fmt_pct(w.mean, 2), fmt_pct(wo.mean, 2),
           fmt_pct(saving)});
    total_saving += saving;
    ++rows;
  }
  std::printf("[%s] unit transaction fees, LP split vs sequential (%zu runs)\n",
              topo_name, runs);
  print_table(t);
  claim(std::string(topo_name) + ": average fee saving from optimization",
        "~40%", fmt_pct(rows ? total_saving / rows : 0));
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Figure 9", "impact of transaction fee optimization");
  compare("Lightning", [](std::size_t load, std::uint64_t seed) {
    WorkloadConfig c;
    c.num_transactions = load;
    c.seed = seed;
    return make_lightning_workload(c);
  });
  compare("Ripple", [](std::size_t load, std::uint64_t seed) {
    WorkloadConfig c;
    c.num_transactions = load;
    c.seed = seed;
    return make_ripple_workload(c);
  });
  return 0;
}

// Figure 14 (extension): routing under dynamics — success ratio vs channel
// churn and gossip propagation delay, per scheme.
//
// The paper's evaluation (Figs. 6-13) replays payments against a static,
// perfectly-known topology. This sweep opens the dynamics axis the paper
// leaves unevaluated: channels churn (close and reopen on-chain) while
// topology announcements flood through gossip one hop per `hop_delay` time
// units, so senders route on *stale* views and failed payments get one
// retry. Expected shape (and the claim checked below): at a fixed churn
// rate, Flash's success ratio degrades monotonically as the gossip delay
// grows — the Tochner-Schmid "search friction" effect.
//
// Grid: (churn rate x gossip hop delay x scheme), one parallel sweep via
// the PR 2 engine. The workload is the sparse-topology/scarce-capacity
// regime (Watts-Strogatz k=4 ring, uniform 50-150 channel deposits,
// recurrent pairs): topology knowledge matters most when alternate paths
// are few and shallow — on the dense well-funded testbed graph, Flash's
// probing and dead-path replacement absorb staleness almost entirely
// (which is itself a result; the fig12/fig13 testbed covers that regime).
// Environment knobs: the usual FLASH_BENCH_* set (bench_common.h), plus
// FLASH_BENCH_SMOKE for the 1-iteration CI mode.
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "trace/workload.h"

using namespace flash;
using namespace flash::bench;

namespace {

WorkloadFactory sparse_factory(std::size_t nodes, std::size_t tx) {
  return [nodes, tx](std::uint64_t seed) {
    return make_toy_workload(nodes, tx, seed);
  };
}

std::string cell_label(double churn, double delay, Scheme scheme) {
  return "churn=" + fmt(churn, 2) + "/delay=" + fmt(delay, 0) + "/" +
         scheme_name(scheme);
}

}  // namespace

int main() {
  print_header("Figure 14",
               "success ratio vs churn rate x gossip delay (dynamic "
               "scenario engine)");

  // Scale tiers: full run, FLASH_BENCH_FAST (run_benches.sh), and
  // FLASH_BENCH_SMOKE (CI, 1 run of a minimal grid).
  const bool smoke = smoke_mode();
  const bool fast = fast_mode();
  const std::size_t nodes = smoke ? 40 : fast ? 80 : 120;
  const std::size_t tx =
      smoke ? 150 : std::min<std::size_t>(bench_tx(), fast ? 800 : 1200);
  const std::size_t runs = smoke ? 1 : bench_runs();
  const std::vector<double> churn_rates =
      smoke ? std::vector<double>{0.3}
            : fast ? std::vector<double>{0.3}
                   : std::vector<double>{0.2, 0.4};
  const std::vector<double> delays =
      smoke ? std::vector<double>{0, 32}
            : fast ? std::vector<double>{0, 8, 32}
                   : std::vector<double>{0, 8, 32, 128};
  const std::vector<Scheme> schemes =
      smoke ? std::vector<Scheme>{Scheme::kFlash}
            : fast ? std::vector<Scheme>{Scheme::kFlash,
                                         Scheme::kShortestPath}
                   : std::vector<Scheme>{Scheme::kFlash, Scheme::kSpider,
                                         Scheme::kShortestPath};

  // Shared dynamics: one retry after a short backoff; closed channels
  // reopen (fresh funding) after a mean downtime of 60 time units, so
  // staleness hurts in both directions (phantom closed channels attract
  // payments, reopened capacity goes unused).
  const auto scenario_for = [](double churn, double delay) {
    ScenarioConfig cfg;
    cfg.retry.max_retries = 1;
    cfg.retry.delay = 1.0;
    cfg.churn.close_rate = churn;
    cfg.churn.mean_downtime = 60;
    cfg.gossip.hop_delay = delay;
    return cfg;
  };

  std::vector<SweepCell> grid;
  const auto push_cell = [&](double churn, double delay, Scheme scheme) {
    SweepCell cell;
    cell.label = cell_label(churn, delay, scheme);
    cell.factory = sparse_factory(nodes, tx);
    cell.scheme = scheme;
    cell.runs = runs;
    cell.scenario = scenario_for(churn, delay);
    grid.push_back(std::move(cell));
  };
  // Static baseline row (churn 0 => delay is irrelevant; keep delay 0).
  for (const Scheme scheme : schemes) push_cell(0.0, 0.0, scheme);
  for (const double churn : churn_rates) {
    for (const double delay : delays) {
      for (const Scheme scheme : schemes) push_cell(churn, delay, scheme);
    }
  }

  const SweepResult result = run_sweep(grid, sweep_options());

  // Walk in grid order: baseline row first, then churn-major, delay, scheme.
  std::size_t idx = 0;
  std::vector<std::string> header{"churn", "delay"};
  for (const Scheme s : schemes) header.push_back(scheme_name(s));
  header.push_back("Flash retries");
  header.push_back("Flash stale fails");

  TextTable table;
  table.header(header);
  // flash_by_delay[churn rate] = mean success ratios in delay order.
  std::vector<std::vector<double>> flash_by_delay(churn_rates.size());

  const auto consume_row = [&](double churn, double delay) {
    std::vector<std::string> row{fmt(churn, 2), fmt(delay, 0)};
    double flash_retries = 0, flash_stale = 0, flash_ratio = 0;
    for (const Scheme scheme : schemes) {
      const RunSeries& series = expect_cell(result, grid, idx++,
                                            cell_label(churn, delay, scheme));
      const double ratio = series.success_ratio().mean;
      row.push_back(fmt_pct(ratio));
      if (scheme == Scheme::kFlash) {
        flash_ratio = ratio;
        flash_retries = series.retries().mean;
        flash_stale = series.stale_view_failures().mean;
      }
    }
    row.push_back(fmt(flash_retries, 1));
    row.push_back(fmt(flash_stale, 1));
    table.row(std::move(row));
    return flash_ratio;
  };

  consume_row(0.0, 0.0);
  for (std::size_t ci = 0; ci < churn_rates.size(); ++ci) {
    for (const double delay : delays) {
      flash_by_delay[ci].push_back(consume_row(churn_rates[ci], delay));
    }
  }

  std::printf("success ratio vs churn x gossip delay (%zu nodes, %zu tx, "
              "%zu runs)\n",
              nodes, tx, runs);
  print_table(table);

  // The headline claim: more gossip delay => no better (and typically
  // worse) Flash success, at every fixed churn rate.
  for (std::size_t ci = 0; ci < churn_rates.size(); ++ci) {
    bool monotone = true;
    std::string shape;
    for (std::size_t d = 0; d < flash_by_delay[ci].size(); ++d) {
      if (d && flash_by_delay[ci][d] > flash_by_delay[ci][d - 1] + 1e-9) {
        monotone = false;
      }
      shape += (d ? " -> " : "") + fmt_pct(flash_by_delay[ci][d]);
    }
    claim("churn=" + fmt(churn_rates[ci], 2) +
              ": Flash success falls with gossip delay",
          "monotone", (monotone ? "monotone (" : "NOT monotone (") + shape +
                          ")");
  }

  report_sweep("fig14_churn_sweep", grid, result);
  return 0;
}

// Figure 10: impact of the elephant/mice threshold.
//
// Sweeps the threshold so that 0%..100% of payments classify as mice and
// reports success volume and probing messages. Paper claims: success
// volume stays roughly stable until ~80-90% of payments are mice, while
// probing overhead shrinks as the mice fraction grows — justifying the
// default 90% setting.
//
// The (topology x fraction) grid runs as one parallel sweep.
#include <string>
#include <vector>

#include "bench_common.h"
#include "trace/workload.h"

using namespace flash;
using namespace flash::bench;

int main() {
  print_header("Figure 10", "impact of the elephant/mice threshold");
  const std::size_t tx = bench_tx();
  const std::size_t runs = bench_runs();
  const std::vector<double> fractions =
      fast_mode() ? std::vector<double>{0.0, 0.5, 0.9, 1.0}
                  : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                        0.6, 0.7, 0.8, 0.9, 1.0};

  const std::vector<BenchTopo> topos = standard_topos();

  std::vector<SweepCell> grid;
  for (const BenchTopo& topo : topos) {
    for (const double mice : fractions) {
      SweepCell cell;
      cell.label = std::string(topo.name) + "/mice=" + fmt_pct(mice, 0);
      cell.factory = topo.make_factory(tx);
      cell.scheme = Scheme::kFlash;
      cell.flash.mice_quantile = mice;
      cell.sim.capacity_scale = 10.0;
      cell.runs = runs;
      grid.push_back(std::move(cell));
    }
  }

  const SweepResult result = run_sweep(grid, sweep_options());

  std::size_t idx = 0;
  for (const BenchTopo& topo : topos) {
    TextTable t;
    t.header({"% mice", "succ volume", "probe msgs"});
    double volume_at_0 = 0, volume_at_90 = 0;
    double probes_at_0 = 0, probes_at_90 = 0;
    for (const double mice : fractions) {
      const RunSeries& series =
          expect_cell(result, grid, idx++,
                      std::string(topo.name) + "/mice=" + fmt_pct(mice, 0));
      const double volume = series.success_volume().mean;
      const double probes = series.probe_messages().mean;
      t.row({fmt_pct(mice, 0), fmt_sci(volume, 3), fmt(probes, 0)});
      if (mice == 0.0) {
        volume_at_0 = volume;
        probes_at_0 = probes;
      }
      if (mice == 0.9) {
        volume_at_90 = volume;
        probes_at_90 = probes;
      }
    }
    std::printf("[%s] threshold sweep (%zu tx, scale 10, %zu runs)\n",
                topo.name, tx, runs);
    print_table(t);

    claim(std::string(topo.name) + ": volume at 90% mice vs all-elephant",
          "marginally smaller",
          fmt_pct(volume_at_0 > 0 ? volume_at_90 / volume_at_0 : 0, 0) +
              " of all-elephant");
    claim(std::string(topo.name) + ": probing at 90% mice vs all-elephant",
          "sharply reduced",
          fmt_pct(probes_at_0 > 0 ? 1 - probes_at_90 / probes_at_0 : 0) +
              " fewer messages");
    std::printf("\n");
  }

  report_sweep("fig10_threshold_sweep", grid, result);
  return 0;
}

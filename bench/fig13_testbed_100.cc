// Figure 13: testbed experiments on the 100-node Watts-Strogatz network.
#include "testbed_common.h"

int main() {
  flash::bench::run_testbed_figure("Figure 13", 100);
  return 0;
}

// Microbenchmarks (google-benchmark): the algorithmic building blocks.
//
// These are not figures from the paper; they quantify the cost of each
// primitive on realistic topology sizes so that regressions in the graph /
// LP layers are caught by numbers, not vibes.
#include <benchmark/benchmark.h>

#include "graph/bfs.h"
#include "graph/edge_disjoint.h"
#include "graph/maxflow.h"
#include "graph/topology.h"
#include "graph/yen.h"
#include "lp/simplex.h"
#include "routing/flash/elephant.h"
#include "util/rng.h"

namespace flash {
namespace {

/// Shared fixtures, built once.
const Graph& ripple_graph() {
  static const Graph g = [] {
    Rng rng(1);
    return ripple_like(rng);
  }();
  return g;
}

NetworkState make_loaded_state(const Graph& g) {
  Rng rng(2);
  NetworkState s(g);
  s.assign_lognormal_split(250, 1.0, rng);
  return s;
}

void BM_BfsPath(benchmark::State& state) {
  const Graph& g = ripple_graph();
  Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto t = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    benchmark::DoNotOptimize(bfs_path(g, s, t));
  }
}
BENCHMARK(BM_BfsPath);

void BM_YenKShortestPaths(benchmark::State& state) {
  const Graph& g = ripple_graph();
  Rng rng(4);
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto s = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto t = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    benchmark::DoNotOptimize(yen_k_shortest_paths(g, s, t, k));
  }
}
BENCHMARK(BM_YenKShortestPaths)->Arg(4)->Arg(8);

void BM_EdgeDisjointPaths(benchmark::State& state) {
  const Graph& g = ripple_graph();
  Rng rng(5);
  for (auto _ : state) {
    const auto s = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto t = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    benchmark::DoNotOptimize(edge_disjoint_shortest_paths(g, s, t, 4));
  }
}
BENCHMARK(BM_EdgeDisjointPaths);

void BM_EdmondsKarp(benchmark::State& state) {
  const Graph& g = ripple_graph();
  const NetworkState s = make_loaded_state(g);
  Rng rng(6);
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto dst = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    benchmark::DoNotOptimize(edmonds_karp(
        g, src, dst, [&](EdgeId e) { return s.balance(e); }, -1, 20));
  }
}
BENCHMARK(BM_EdmondsKarp);

void BM_ElephantProbing(benchmark::State& state) {
  const Graph& g = ripple_graph();
  NetworkState s = make_loaded_state(g);
  Rng rng(7);
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto dst = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    benchmark::DoNotOptimize(
        elephant_find_paths(g, src, dst, 1e6, 20, s));
  }
}
BENCHMARK(BM_ElephantProbing);

void BM_SimplexFeeSplit(benchmark::State& state) {
  // Representative program (1): k paths, one equality + per-edge caps.
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  LpProblem lp;
  lp.objective.resize(k);
  for (auto& c : lp.objective) c = rng.uniform(0.001, 0.1);
  LpConstraint demand;
  demand.coeffs.assign(k, 1.0);
  demand.rel = Relation::kEq;
  demand.rhs = 1.0;
  lp.constraints.push_back(demand);
  for (std::size_t i = 0; i < 3 * k; ++i) {
    LpConstraint cap;
    cap.coeffs.assign(k, 0.0);
    for (std::size_t j = 0; j < k; ++j) {
      if (rng.chance(0.3)) cap.coeffs[j] = 1.0;
    }
    cap.rel = Relation::kLessEq;
    cap.rhs = rng.uniform(0.2, 2.0);
    lp.constraints.push_back(std::move(cap));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lp(lp));
  }
}
BENCHMARK(BM_SimplexFeeSplit)->Arg(4)->Arg(20)->Arg(30);

void BM_TopologyGeneration(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(9);
    benchmark::DoNotOptimize(scale_free(1870, 8708, rng));
  }
}
BENCHMARK(BM_TopologyGeneration);

}  // namespace
}  // namespace flash

BENCHMARK_MAIN();

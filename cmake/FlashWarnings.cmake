# Project-wide warning configuration, attached to targets via the
# flash::warnings interface library (usage requirement only — nothing is
# compiled here).

option(FLASH_WERROR "Treat warnings as errors" ON)

add_library(flash_warnings INTERFACE)
add_library(flash::warnings ALIAS flash_warnings)

target_compile_options(flash_warnings INTERFACE
  -Wall
  -Wextra
  -Wpedantic
  -Wshadow
  -Wdouble-promotion
  -Wnon-virtual-dtor
  -Woverloaded-virtual
  -Wcast-qual
  -Wformat=2
  -Wimplicit-fallthrough)

if(FLASH_WERROR)
  target_compile_options(flash_warnings INTERFACE -Werror)
endif()

# Build-type setup for the Flash reproduction.
#
# In addition to the standard CMake build types this defines:
#   RelWithAssert  -O2 with assertions kept (no NDEBUG) — the default, so a
#                  plain `cmake -B build -S .` still exercises every assert.
#   Asan           AddressSanitizer + UndefinedBehaviorSanitizer, used by the
#                  sanitizer CI job over the test suite.
#   Tsan           ThreadSanitizer, used by the CI job that races the sweep
#                  engine (sim/sweep.h) and thread pool tests.

set(FLASH_KNOWN_BUILD_TYPES Debug Release RelWithDebInfo MinSizeRel
    RelWithAssert Asan Tsan)

get_property(_flash_multi_config GLOBAL PROPERTY GENERATOR_IS_MULTI_CONFIG)
if(NOT _flash_multi_config)
  if(NOT CMAKE_BUILD_TYPE)
    set(CMAKE_BUILD_TYPE RelWithAssert CACHE STRING "Build type" FORCE)
  endif()
  set_property(CACHE CMAKE_BUILD_TYPE PROPERTY STRINGS
               ${FLASH_KNOWN_BUILD_TYPES})
  if(NOT CMAKE_BUILD_TYPE IN_LIST FLASH_KNOWN_BUILD_TYPES)
    message(FATAL_ERROR "Unknown CMAKE_BUILD_TYPE '${CMAKE_BUILD_TYPE}'. "
                        "Expected one of: ${FLASH_KNOWN_BUILD_TYPES}")
  endif()
endif()

# Release-with-assertions: optimized but without NDEBUG.
set(CMAKE_CXX_FLAGS_RELWITHASSERT "-O2 -g"
    CACHE STRING "C++ flags for RelWithAssert builds")
set(CMAKE_EXE_LINKER_FLAGS_RELWITHASSERT ""
    CACHE STRING "Linker flags for RelWithAssert builds")
set(CMAKE_SHARED_LINKER_FLAGS_RELWITHASSERT ""
    CACHE STRING "Shared linker flags for RelWithAssert builds")

# Sanitizer build: ASan + UBSan, frame pointers kept for readable reports.
set(FLASH_SANITIZE_FLAGS
    "-O1 -g -fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer")
set(CMAKE_CXX_FLAGS_ASAN "${FLASH_SANITIZE_FLAGS}"
    CACHE STRING "C++ flags for Asan builds")
set(CMAKE_EXE_LINKER_FLAGS_ASAN "-fsanitize=address,undefined"
    CACHE STRING "Linker flags for Asan builds")
set(CMAKE_SHARED_LINKER_FLAGS_ASAN "-fsanitize=address,undefined"
    CACHE STRING "Shared linker flags for Asan builds")

# ThreadSanitizer build: data-race detection for the parallel sweep engine.
set(CMAKE_CXX_FLAGS_TSAN "-O1 -g -fsanitize=thread -fno-omit-frame-pointer"
    CACHE STRING "C++ flags for Tsan builds")
set(CMAKE_EXE_LINKER_FLAGS_TSAN "-fsanitize=thread"
    CACHE STRING "Linker flags for Tsan builds")
set(CMAKE_SHARED_LINKER_FLAGS_TSAN "-fsanitize=thread"
    CACHE STRING "Shared linker flags for Tsan builds")

mark_as_advanced(
  CMAKE_CXX_FLAGS_RELWITHASSERT
  CMAKE_EXE_LINKER_FLAGS_RELWITHASSERT
  CMAKE_SHARED_LINKER_FLAGS_RELWITHASSERT
  CMAKE_CXX_FLAGS_ASAN
  CMAKE_EXE_LINKER_FLAGS_ASAN
  CMAKE_SHARED_LINKER_FLAGS_ASAN
  CMAKE_CXX_FLAGS_TSAN
  CMAKE_EXE_LINKER_FLAGS_TSAN
  CMAKE_SHARED_LINKER_FLAGS_TSAN)

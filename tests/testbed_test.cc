// Tests for the message-level testbed: event queue, the protocol of §5.1
// (probe / two-phase commit / reverse), sessions, and the runner.
#include <gtest/gtest.h>

#include <vector>

#include "graph/topology.h"
#include "testbed/event_queue.h"
#include "testbed/network.h"
#include "testbed/runner.h"
#include "testbed/sessions.h"
#include "testutil.h"

namespace flash::testbed {
namespace {

using flash::testing::make_graph;

// --- EventQueue -----------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  double fired_at = -1;
  q.schedule(5.0, [&] {
    q.schedule(1.0, [&] { fired_at = q.now(); });  // in the past
  });
  q.run_until_idle();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(1.0, recurse);
  };
  q.schedule(0.0, recurse);
  q.run_until_idle();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, BudgetGuardThrows) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule_in(1.0, forever); };
  q.schedule(0.0, forever);
  EXPECT_THROW(q.run_until_idle(100), std::runtime_error);
}

// --- Network protocol ---------------------------------------------------------------

struct NetFixture {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  Network net{g};

  NetFixture() {
    net.set_balance(0, 10);  // 0->1
    net.set_balance(1, 1);   // 1->0
    net.set_balance(2, 8);   // 1->2
    net.set_balance(3, 2);   // 2->1
  }
};

TEST(Network, ProbeCollectsBothDirections) {
  NetFixture f;
  Message got;
  bool done = false;
  f.net.register_session(1, [&](const Message& m) {
    got = m;
    done = true;
  });
  Message probe;
  probe.trans_id = 1;
  probe.type = MsgType::kProbe;
  probe.path = {0, 1, 2};
  f.net.originate(std::move(probe));
  f.net.queue().run_until_idle(10000);
  ASSERT_TRUE(done);
  EXPECT_EQ(got.type, MsgType::kProbeAck);
  ASSERT_EQ(got.capacity.size(), 2u);
  EXPECT_DOUBLE_EQ(got.capacity[0], 10);  // 0->1
  EXPECT_DOUBLE_EQ(got.capacity[1], 8);   // 1->2
  // Reverse balances appended receiver-first: (2->1), then (1->0).
  ASSERT_EQ(got.capacity_reverse.size(), 2u);
  EXPECT_DOUBLE_EQ(got.capacity_reverse[0], 2);
  EXPECT_DOUBLE_EQ(got.capacity_reverse[1], 1);
}

TEST(Network, CommitConfirmMovesFunds) {
  NetFixture f;
  bool acked = false, confirmed = false;
  f.net.register_session(7, [&](const Message& m) {
    if (m.type == MsgType::kCommitAck) {
      acked = true;
      Message confirm;
      confirm.trans_id = 7;
      confirm.type = MsgType::kConfirm;
      confirm.path = {0, 1, 2};
      confirm.commit = 5;
      f.net.originate(std::move(confirm));
    } else if (m.type == MsgType::kConfirmAck) {
      confirmed = true;
    }
  });
  Message commit;
  commit.trans_id = 7;
  commit.type = MsgType::kCommit;
  commit.path = {0, 1, 2};
  commit.commit = 5;
  const Amount total0 = f.net.total_balance();
  f.net.originate(std::move(commit));
  f.net.queue().run_until_idle(10000);
  EXPECT_TRUE(acked);
  EXPECT_TRUE(confirmed);
  EXPECT_DOUBLE_EQ(f.net.balance(0), 5);   // 0->1 decremented
  EXPECT_DOUBLE_EQ(f.net.balance(1), 6);   // 1->0 credited
  EXPECT_DOUBLE_EQ(f.net.balance(2), 3);   // 1->2 decremented
  EXPECT_DOUBLE_EQ(f.net.balance(3), 7);   // 2->1 credited
  EXPECT_DOUBLE_EQ(f.net.total_balance(), total0);
  EXPECT_DOUBLE_EQ(f.net.total_pending(), 0);
}

TEST(Network, CommitNackAtInsufficientHop) {
  NetFixture f;
  Message nack;
  bool got_nack = false;
  f.net.register_session(9, [&](const Message& m) {
    if (m.type == MsgType::kCommitNack) {
      nack = m;
      got_nack = true;
    }
  });
  Message commit;
  commit.trans_id = 9;
  commit.type = MsgType::kCommit;
  commit.path = {0, 1, 2};
  commit.commit = 9;  // 0->1 has 10, but 1->2 has only 8
  f.net.originate(std::move(commit));
  f.net.queue().run_until_idle(10000);
  ASSERT_TRUE(got_nack);
  EXPECT_EQ(nack.fail_hop, 1u);
  // Hop 0 decremented and is still holding; the funds are pending.
  EXPECT_DOUBLE_EQ(f.net.balance(0), 1);
  EXPECT_DOUBLE_EQ(f.net.total_pending(), 9);
}

TEST(Network, ReverseRestoresHeldFunds) {
  NetFixture f;
  bool reversed = false;
  f.net.register_session(11, [&](const Message& m) {
    if (m.type == MsgType::kCommitNack) {
      Message rev;
      rev.trans_id = 11;
      rev.type = MsgType::kReverse;
      rev.path = {0, 1, 2};
      rev.fail_hop = m.fail_hop;
      f.net.originate(std::move(rev));
    } else if (m.type == MsgType::kReverseAck) {
      reversed = true;
    }
  });
  Message commit;
  commit.trans_id = 11;
  commit.type = MsgType::kCommit;
  commit.path = {0, 1, 2};
  commit.commit = 9;
  f.net.originate(std::move(commit));
  f.net.queue().run_until_idle(10000);
  ASSERT_TRUE(reversed);
  EXPECT_DOUBLE_EQ(f.net.balance(0), 10);  // restored
  EXPECT_DOUBLE_EQ(f.net.total_pending(), 0);
}

TEST(Network, MessageCountersTrackTypes) {
  NetFixture f;
  f.net.register_session(13, [](const Message&) {});
  Message probe;
  probe.trans_id = 13;
  probe.type = MsgType::kProbe;
  probe.path = {0, 1, 2};
  f.net.originate(std::move(probe));
  f.net.queue().run_until_idle(10000);
  EXPECT_EQ(f.net.messages_of(MsgType::kProbe), 3u);     // nodes 0,1,2
  EXPECT_EQ(f.net.messages_of(MsgType::kProbeAck), 2u);  // nodes 1,0
  EXPECT_EQ(f.net.messages_processed(), 5u);
}

TEST(Network, EdgeBetweenResolvesChannels) {
  NetFixture f;
  EXPECT_EQ(f.net.edge_between(0, 1), 0u);
  EXPECT_EQ(f.net.edge_between(1, 0), 1u);
  EXPECT_EQ(f.net.edge_between(0, 2), kInvalidEdge);
}

// --- Sessions --------------------------------------------------------------------------

TEST(Sessions, SpSessionSucceeds) {
  NetFixture f;
  bool ok = false;
  SpSession s(f.net, {0, 1, 2}, 5.0, [&](bool b) { ok = b; });
  s.start();
  f.net.queue().run_until_idle(10000);
  EXPECT_TRUE(s.finished());
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(f.net.balance(0), 5);
  EXPECT_DOUBLE_EQ(f.net.total_pending(), 0);
}

TEST(Sessions, SpSessionFailsAndRollsBack) {
  NetFixture f;
  bool ok = true;
  SpSession s(f.net, {0, 1, 2}, 9.0, [&](bool b) { ok = b; });
  s.start();
  f.net.queue().run_until_idle(10000);
  EXPECT_TRUE(s.finished());
  EXPECT_FALSE(ok);
  EXPECT_DOUBLE_EQ(f.net.balance(0), 10);  // rolled back
  EXPECT_DOUBLE_EQ(f.net.total_pending(), 0);
}

TEST(Sessions, SpSessionNoPathFailsFast) {
  Graph g(2);
  g.add_channel(0, 1);
  Network net(g);
  bool ok = true;
  SpSession s(net, {}, 5.0, [&](bool b) { ok = b; });
  s.start();
  EXPECT_TRUE(s.finished());
  EXPECT_FALSE(ok);
}

TEST(Sessions, SpiderSessionWaterfills) {
  // Diamond with two disjoint paths of capacity 6 each; demand 10.
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  Network net(g);
  for (EdgeId e = 0; e < g.num_edges(); e += 2) net.set_balance(e, 6);
  bool ok = false;
  SpiderSession s(net, {{0, 1, 3}, {0, 2, 3}}, 10.0, [&](bool b) { ok = b; });
  s.start();
  net.queue().run_until_idle(100000);
  EXPECT_TRUE(s.finished());
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(net.total_pending(), 0);
  // Both first hops were used (waterfilled 5+5 or 6+4).
  EXPECT_LT(net.balance(net.edge_between(0, 1)), 6);
  EXPECT_LT(net.balance(net.edge_between(0, 2)), 6);
}

TEST(Sessions, SpiderSessionFailsWithoutCommitting) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  Network net(g);
  for (EdgeId e = 0; e < g.num_edges(); e += 2) net.set_balance(e, 3);
  bool ok = true;
  SpiderSession s(net, {{0, 1, 3}, {0, 2, 3}}, 10.0, [&](bool b) { ok = b; });
  s.start();
  net.queue().run_until_idle(100000);
  EXPECT_FALSE(ok);
  EXPECT_DOUBLE_EQ(net.balance(net.edge_between(0, 1)), 3);  // untouched
  EXPECT_DOUBLE_EQ(net.total_pending(), 0);
}

TEST(Sessions, FlashMicePartialCompletion) {
  // The diamond scenario: 60-capacity and 50-capacity routes, demand 100.
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  Network net(g);
  net.set_balance(net.edge_between(0, 1), 60);
  net.set_balance(net.edge_between(1, 3), 60);
  net.set_balance(net.edge_between(0, 2), 50);
  net.set_balance(net.edge_between(2, 3), 50);
  const Amount total0 = net.total_balance();
  Rng rng(3);
  bool ok = false;
  FlashMiceSession s(net, {{0, 1, 3}, {0, 2, 3}}, 100.0, rng,
                     [&](bool b) { ok = b; });
  s.start();
  net.queue().run_until_idle(100000);
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(net.total_balance(), total0);
  EXPECT_DOUBLE_EQ(net.total_pending(), 0);
  // Receiver-side directions gained exactly 100 in total.
  EXPECT_DOUBLE_EQ(net.balance(net.edge_between(3, 1)) +
                       net.balance(net.edge_between(3, 2)),
                   100);
}

TEST(Sessions, FlashMiceFailureReversesEverything) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  Network net(g);
  for (EdgeId e = 0; e < g.num_edges(); e += 2) net.set_balance(e, 10);
  Rng rng(5);
  bool ok = true;
  FlashMiceSession s(net, {{0, 1, 3}, {0, 2, 3}}, 100.0, rng,
                     [&](bool b) { ok = b; });
  s.start();
  net.queue().run_until_idle(100000);
  EXPECT_FALSE(ok);
  for (EdgeId e = 0; e < g.num_edges(); e += 2) {
    EXPECT_DOUBLE_EQ(net.balance(e), 10);
  }
  EXPECT_DOUBLE_EQ(net.total_pending(), 0);
}

TEST(Sessions, FlashElephantProbesAndCommits) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  Network net(g);
  for (EdgeId e = 0; e < g.num_edges(); e += 2) net.set_balance(e, 6);
  FeeSchedule fees(g);
  bool ok = false;
  FlashElephantSession s(net, g, fees, 0, 3, 10.0, 20,
                         [&](bool b) { ok = b; });
  s.start();
  net.queue().run_until_idle(100000);
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(net.total_pending(), 0);
  EXPECT_GT(net.messages_of(MsgType::kProbe), 0u);
  // 10 units left node 0.
  EXPECT_DOUBLE_EQ(net.balance(net.edge_between(0, 1)) +
                       net.balance(net.edge_between(0, 2)),
                   2);
}

TEST(Sessions, FlashElephantInfeasibleFailsClean) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  Network net(g);
  net.set_balance(0, 5);
  net.set_balance(2, 5);
  FeeSchedule fees(g);
  bool ok = true;
  FlashElephantSession s(net, g, fees, 0, 2, 50.0, 20,
                         [&](bool b) { ok = b; });
  s.start();
  net.queue().run_until_idle(100000);
  EXPECT_FALSE(ok);
  EXPECT_DOUBLE_EQ(net.balance(0), 5);
  EXPECT_DOUBLE_EQ(net.total_pending(), 0);
}

// --- Runner ---------------------------------------------------------------------------

TEST(Runner, SmallRunConservesFundsAllSchemes) {
  for (const auto scheme : {TestbedScheme::kFlash, TestbedScheme::kSpider,
                            TestbedScheme::kShortestPath}) {
    TestbedConfig config;
    config.scheme = scheme;
    config.nodes = 20;
    config.num_transactions = 300;
    config.seed = 5;
    const TestbedResult r = run_testbed(config);  // throws on violation
    EXPECT_EQ(r.transactions, 300u);
    EXPECT_LE(r.successes, r.transactions);
    EXPECT_GT(r.messages, 0u);
    EXPECT_GT(r.avg_delay_ms(), 0.0);
  }
}

TEST(Runner, DeterministicPerSeed) {
  TestbedConfig config;
  config.scheme = TestbedScheme::kFlash;
  config.nodes = 20;
  config.num_transactions = 200;
  config.seed = 9;
  const TestbedResult a = run_testbed(config);
  const TestbedResult b = run_testbed(config);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_DOUBLE_EQ(a.volume_succeeded, b.volume_succeeded);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_DOUBLE_EQ(a.total_delay_ms, b.total_delay_ms);
}

TEST(Runner, MiceFasterThanOverallForFlash) {
  TestbedConfig config;
  config.scheme = TestbedScheme::kFlash;
  config.nodes = 30;
  config.num_transactions = 500;
  config.seed = 11;
  const TestbedResult r = run_testbed(config);
  // Elephants pay sequential probing; mice must settle faster on average.
  EXPECT_LT(r.avg_mice_delay_ms(), r.avg_delay_ms());
}

TEST(Runner, SchemeNames) {
  EXPECT_EQ(testbed_scheme_name(TestbedScheme::kFlash), "Flash");
  EXPECT_EQ(testbed_scheme_name(TestbedScheme::kSpider), "Spider");
  EXPECT_EQ(testbed_scheme_name(TestbedScheme::kShortestPath), "SP");
}

}  // namespace
}  // namespace flash::testbed

// Tests for the core Graph structure: channels, reverse pairing, paths.
#include "graph/graph.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "testutil.h"

namespace flash {
namespace {

using testing::make_graph;

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_channels(), 0u);
}

TEST(Graph, AddNodeGrows) {
  Graph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(Graph, ChannelCreatesPairedEdges) {
  Graph g(3);
  const EdgeId e = g.add_channel(0, 2);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_channels(), 1u);
  EXPECT_EQ(g.from(e), 0u);
  EXPECT_EQ(g.to(e), 2u);
  const EdgeId r = g.reverse(e);
  EXPECT_EQ(g.from(r), 2u);
  EXPECT_EQ(g.to(r), 0u);
  EXPECT_EQ(g.reverse(r), e);
  EXPECT_EQ(g.channel_of(e), g.channel_of(r));
}

TEST(Graph, ChannelForwardEdgeRoundTrip) {
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    EXPECT_EQ(g.channel_of(g.channel_forward_edge(c)), c);
  }
}

TEST(Graph, OutEdgesBothEndpoints) {
  Graph g = make_graph(3, {{0, 1}, {0, 2}});
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(2), 1u);
  for (EdgeId e : g.out_edges(0)) EXPECT_EQ(g.from(e), 0u);
}

TEST(Graph, ParallelChannelsAllowed) {
  Graph g(2);
  g.add_channel(0, 1);
  g.add_channel(0, 1);
  EXPECT_EQ(g.num_channels(), 2u);
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST(Graph, SelfChannelRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_channel(1, 1), std::invalid_argument);
}

TEST(Graph, OutOfRangeNodeRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_channel(0, 5), std::out_of_range);
}

TEST(Graph, PathValidation) {
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const Path good{0, 2, 4};  // forward edges of the three channels
  EXPECT_TRUE(g.is_valid_path(good, 0));
  EXPECT_FALSE(g.is_valid_path(good, 1));         // wrong start
  EXPECT_FALSE(g.is_valid_path({2, 0}, 1));       // disconnected sequence
  EXPECT_FALSE(g.is_valid_path({99}, 0));         // bad edge id
  EXPECT_TRUE(g.is_valid_path({}, 3));            // empty path anywhere valid
}

TEST(Graph, PathNodes) {
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::vector<NodeId> nodes = g.path_nodes({0, 2, 4}, 0);
  const std::vector<NodeId> expect{0, 1, 2, 3};
  EXPECT_EQ(nodes, expect);
}

TEST(Graph, FormatPath) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.format_path({0, 2}, 0), "0 -> 1 -> 2");
  EXPECT_EQ(g.format_path({}, 2), "2");
}

}  // namespace
}  // namespace flash

// Tests for the bounded per-sender router cache (sim/sender_cache.h):
// LRU order, recycling on eviction, counters, and the unbounded mode.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/sender_cache.h"

namespace flash {
namespace {

// A cache value that records its identity and flags destruction, so tests
// can tell recycling (value handed back) from deallocation.
struct Probe final : SenderCacheable {
  int id;
  bool* destroyed;
  Probe(int id_in, bool* destroyed_in) : id(id_in), destroyed(destroyed_in) {}
  ~Probe() override {
    if (destroyed) *destroyed = true;
  }
};

// Miss-path helper mirroring the engine's usage: find, else evict+insert.
Probe* get_or_insert(SenderRouterCache& cache, NodeId sender, int id) {
  if (auto* hit = static_cast<Probe*>(cache.find(sender))) return hit;
  std::unique_ptr<SenderCacheable> slot = cache.evict_for_insert();
  if (!slot) slot = std::make_unique<Probe>(id, nullptr);
  auto* p = static_cast<Probe*>(slot.get());
  p->id = id;
  cache.insert(sender, std::move(slot));
  return p;
}

TEST(SenderCache, MissThenHit) {
  SenderRouterCache cache(4);
  EXPECT_EQ(cache.find(7), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(7, std::make_unique<Probe>(70, nullptr));
  auto* p = static_cast<Probe*>(cache.find(7));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->id, 70);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(SenderCache, EvictsLeastRecentlyUsed) {
  SenderRouterCache cache(2);
  get_or_insert(cache, 1, 10);
  get_or_insert(cache, 2, 20);
  // Touch 1 so 2 becomes LRU.
  EXPECT_NE(cache.find(1), nullptr);
  get_or_insert(cache, 3, 30);  // evicts 2
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.find(2), nullptr);
}

TEST(SenderCache, EvictionRecyclesTheValue) {
  bool destroyed = false;
  SenderRouterCache cache(1);
  cache.insert(5, std::make_unique<Probe>(50, &destroyed));
  ASSERT_EQ(cache.find(6), nullptr);
  std::unique_ptr<SenderCacheable> recycled = cache.evict_for_insert();
  ASSERT_NE(recycled, nullptr);
  EXPECT_EQ(static_cast<Probe*>(recycled.get())->id, 50);
  EXPECT_FALSE(destroyed) << "eviction must hand the value back, not free it";
  cache.insert(6, std::move(recycled));
  EXPECT_NE(cache.find(6), nullptr);
  EXPECT_EQ(cache.find(5), nullptr);
}

TEST(SenderCache, UnboundedNeverEvicts) {
  SenderRouterCache cache(0);
  EXPECT_EQ(cache.capacity(), 0u);
  for (NodeId s = 0; s < 200; ++s) get_or_insert(cache, s, static_cast<int>(s));
  EXPECT_EQ(cache.size(), 200u);
  EXPECT_EQ(cache.evictions(), 0u);
  for (NodeId s = 0; s < 200; ++s) {
    auto* p = static_cast<Probe*>(cache.find(s));
    ASSERT_NE(p, nullptr) << s;
    EXPECT_EQ(p->id, static_cast<int>(s));
  }
}

TEST(SenderCache, LruOrderSurvivesHeavyChurn) {
  // Cycle a working set one larger than capacity: every access misses
  // (the classic LRU worst case), and the cache must stay exactly full.
  SenderRouterCache cache(3);
  for (int round = 0; round < 10; ++round) {
    for (NodeId s = 0; s < 4; ++s) get_or_insert(cache, s, static_cast<int>(s));
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 40u);
  EXPECT_EQ(cache.evictions(), 37u);
}

TEST(SenderCache, SkewedAccessGetsHighHitRate) {
  // Zipf-flavoured sanity check: 2 hot senders in a K=4 cache among 16
  // cold ones; the hot pair must never be evicted between touches.
  SenderRouterCache cache(4);
  std::uint64_t hot_touches = 0;
  for (int round = 0; round < 50; ++round) {
    get_or_insert(cache, 100, 1);
    get_or_insert(cache, 101, 2);
    hot_touches += 2;
    get_or_insert(cache, static_cast<NodeId>(round % 16), 3);
  }
  // Every hot touch after the first two hits: cold senders can only evict
  // the two cold slots.
  EXPECT_EQ(cache.hits(), hot_touches - 2);
}

}  // namespace
}  // namespace flash

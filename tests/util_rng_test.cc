#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace flash {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 5);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 7;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  const int n = 40000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalScaled) {
  Rng rng(31);
  const int n = 40000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng(37);
  const int n = 20001;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.lognormal(std::log(5.0), 1.0);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 5.0, 0.4);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng rng(41);
  for (int i = 0; i < 2000; ++i) EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, ParetoMedian) {
  // Pareto median = xm * 2^(1/alpha).
  Rng rng(43);
  const int n = 20001;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.pareto(1.0, 2.0);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], std::sqrt(2.0), 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(47);
  const int n = 30000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(53);
  const std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(59);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(61);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(Rng, PickReturnsMember) {
  Rng rng(67);
  const std::vector<int> v{5, 6, 7};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 5 || x == 6 || x == 7);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(71);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 5);
}

TEST(Zipf, DegeneratesToUniformAtZero) {
  Rng rng(73);
  ZipfSampler zipf(4, 0.0);
  int counts[4] = {};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(Zipf, SkewsTowardLowRanks) {
  Rng rng(79);
  ZipfSampler zipf(100, 1.2);
  int first = 0, rest = 0;
  for (int i = 0; i < 20000; ++i) {
    if (zipf(rng) == 0) {
      ++first;
    } else {
      ++rest;
    }
  }
  EXPECT_GT(first, 20000 / 10);  // rank 0 gets far more than 1/100
  EXPECT_GT(rest, 0);
}

TEST(Zipf, SingleElementSupport) {
  Rng rng(83);
  ZipfSampler zipf(1, 1.5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(zipf(rng), 0u);
}

// Parameter validation must hold in Release builds too (NDEBUG strips
// assert, which previously let bad parameters sample garbage silently).
TEST(ReleaseGuards, ParetoBadParamsThrow) {
  Rng rng(91);
  EXPECT_THROW(rng.pareto(0.0, 1.5), std::invalid_argument);
  EXPECT_THROW(rng.pareto(-1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, -2.0), std::invalid_argument);
  const double nan = std::nan("");
  EXPECT_THROW(rng.pareto(nan, 1.5), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, nan), std::invalid_argument);
}

TEST(ReleaseGuards, ExponentialBadParamsThrow) {
  Rng rng(92);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-0.5), std::invalid_argument);
  EXPECT_THROW(rng.exponential(std::nan("")), std::invalid_argument);
}

TEST(ReleaseGuards, ValidParamsStillSample) {
  Rng rng(93);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
    EXPECT_GT(rng.exponential(0.25), 0.0);
  }
}

}  // namespace
}  // namespace flash

// Tests for the simplex LP solver and the fee-minimization program (1).
#include <gtest/gtest.h>

#include <cmath>

#include "lp/fee_min.h"
#include "lp/simplex.h"
#include "testutil.h"
#include "util/rng.h"

namespace flash {
namespace {

using testing::fwd;
using testing::make_graph;

// --- Simplex -------------------------------------------------------------------

TEST(Simplex, SimpleMinimization) {
  // min x + 2y s.t. x + y >= 4, x <= 3, y <= 5 -> x=3, y=1, obj=5.
  LpProblem lp;
  lp.objective = {1, 2};
  lp.constraints.push_back({{1, 1}, Relation::kGreaterEq, 4});
  lp.constraints.push_back({{1, 0}, Relation::kLessEq, 3});
  lp.constraints.push_back({{0, 1}, Relation::kLessEq, 5});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 3, 1e-7);
  EXPECT_NEAR(sol.x[1], 1, 1e-7);
  EXPECT_NEAR(sol.objective_value, 5, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min 3x + y s.t. x + y = 10, x >= 0, y >= 0 -> x=0, y=10.
  LpProblem lp;
  lp.objective = {3, 1};
  lp.constraints.push_back({{1, 1}, Relation::kEq, 10});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 0, 1e-7);
  EXPECT_NEAR(sol.x[1], 10, 1e-7);
}

TEST(Simplex, InfeasibleDetected) {
  // x <= 1 and x >= 2 simultaneously.
  LpProblem lp;
  lp.objective = {1};
  lp.constraints.push_back({{1}, Relation::kLessEq, 1});
  lp.constraints.push_back({{1}, Relation::kGreaterEq, 2});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  // min -x with no upper bound on x.
  LpProblem lp;
  lp.objective = {-1};
  lp.constraints.push_back({{1}, Relation::kGreaterEq, 0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // x - y <= -2 with min x + y -> y >= x + 2, best x=0 y=2.
  LpProblem lp;
  lp.objective = {1, 1};
  lp.constraints.push_back({{1, -1}, Relation::kLessEq, -2});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective_value, 2, 1e-7);
}

TEST(Simplex, DegenerateTiesTerminate) {
  // Multiple constraints active at the optimum; Bland's rule must not cycle.
  LpProblem lp;
  lp.objective = {-1, -1};
  lp.constraints.push_back({{1, 0}, Relation::kLessEq, 1});
  lp.constraints.push_back({{1, 0}, Relation::kLessEq, 1});
  lp.constraints.push_back({{0, 1}, Relation::kLessEq, 1});
  lp.constraints.push_back({{1, 1}, Relation::kLessEq, 2});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective_value, -2, 1e-7);
}

TEST(Simplex, ZeroObjectiveFeasibility) {
  LpProblem lp;
  lp.objective = {0, 0};
  lp.constraints.push_back({{1, 1}, Relation::kEq, 5});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0] + sol.x[1], 5, 1e-7);
}

TEST(Simplex, RandomProblemsSolutionsFeasible) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    LpProblem lp;
    const std::size_t n = 2 + rng.next_below(4);
    const std::size_t m = 1 + rng.next_below(5);
    lp.objective.resize(n);
    for (auto& c : lp.objective) c = rng.uniform(0.0, 2.0);
    for (std::size_t i = 0; i < m; ++i) {
      LpConstraint con;
      con.coeffs.resize(n);
      for (auto& a : con.coeffs) a = rng.uniform(0.0, 1.0);
      con.rel = Relation::kLessEq;
      con.rhs = rng.uniform(0.5, 5.0);
      lp.constraints.push_back(std::move(con));
    }
    // Nonnegative objective over <= constraints with positive rhs: x = 0 is
    // feasible and optimal (objective 0).
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, LpStatus::kOptimal);
    EXPECT_NEAR(sol.objective_value, 0.0, 1e-7);
  }
}

TEST(Simplex, RandomDemandProblemsRespectConstraints) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.next_below(4);
    LpProblem lp;
    lp.objective.resize(n);
    for (auto& c : lp.objective) c = rng.uniform(0.1, 1.0);
    LpConstraint demand;
    demand.coeffs.assign(n, 1.0);
    demand.rel = Relation::kEq;
    demand.rhs = 1.0;
    lp.constraints.push_back(demand);
    std::vector<double> caps(n);
    double total = 0;
    for (std::size_t j = 0; j < n; ++j) {
      caps[j] = rng.uniform(0.1, 1.0);
      total += caps[j];
      LpConstraint cap;
      cap.coeffs.assign(n, 0.0);
      cap.coeffs[j] = 1.0;
      cap.rel = Relation::kLessEq;
      cap.rhs = caps[j];
      lp.constraints.push_back(std::move(cap));
    }
    const LpSolution sol = solve_lp(lp);
    if (total < 1.0) {
      EXPECT_EQ(sol.status, LpStatus::kInfeasible);
      continue;
    }
    ASSERT_EQ(sol.status, LpStatus::kOptimal);
    double sum = 0;
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_LE(sol.x[j], caps[j] + 1e-7);
      EXPECT_GE(sol.x[j], -1e-9);
      sum += sol.x[j];
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

// --- Fee minimization ------------------------------------------------------------

/// Two-path setup: cheap path (rate 0.01/hop) and expensive (0.05/hop).
struct TwoPathFixture {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees{g};
  std::vector<Path> paths;
  CapacityMap cap;

  TwoPathFixture() {
    fees.set_policy(fwd(g, 0), {0, 0.01});
    fees.set_policy(fwd(g, 1), {0, 0.01});
    fees.set_policy(fwd(g, 2), {0, 0.05});
    fees.set_policy(fwd(g, 3), {0, 0.05});
    paths = {{fwd(g, 0), fwd(g, 1)}, {fwd(g, 2), fwd(g, 3)}};
    cap = {{fwd(g, 0), 60}, {fwd(g, 1), 60}, {fwd(g, 2), 60}, {fwd(g, 3), 60}};
  }
};

TEST(FeeMin, PrefersCheapPath) {
  TwoPathFixture f;
  const SplitResult r = optimize_fee_split(f.g, f.paths, 50, f.cap, f.fees);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.amounts[0], 50, 1e-6);  // everything on the cheap path
  EXPECT_NEAR(r.amounts[1], 0, 1e-6);
  EXPECT_NEAR(r.total_fee, 50 * 0.02, 1e-6);
}

TEST(FeeMin, SpillsToExpensiveWhenCheapIsFull) {
  TwoPathFixture f;
  const SplitResult r = optimize_fee_split(f.g, f.paths, 100, f.cap, f.fees);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.amounts[0], 60, 1e-6);
  EXPECT_NEAR(r.amounts[1], 40, 1e-6);
}

TEST(FeeMin, InfeasibleWhenDemandExceedsCapacity) {
  TwoPathFixture f;
  const SplitResult r = optimize_fee_split(f.g, f.paths, 1000, f.cap, f.fees);
  EXPECT_FALSE(r.feasible);
}

TEST(FeeMin, LpNeverWorseThanSequential) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    TwoPathFixture f;
    // Random capacities and rates.
    for (auto& [e, c] : f.cap) c = rng.uniform(10.0, 80.0);
    for (std::size_t ch = 0; ch < f.g.num_channels(); ++ch) {
      const double rate = rng.uniform(0.001, 0.05);
      f.fees.set_policy(fwd(f.g, ch), {0, rate});
    }
    const Amount demand = rng.uniform(5.0, 60.0);
    const SplitResult lp =
        optimize_fee_split(f.g, f.paths, demand, f.cap, f.fees);
    const SplitResult seq =
        sequential_split(f.g, f.paths, demand, f.cap, f.fees);
    if (seq.feasible) {
      ASSERT_TRUE(lp.feasible) << "LP must be feasible when sequential is";
      EXPECT_LE(lp.total_fee, seq.total_fee + 1e-6);
    }
  }
}

TEST(FeeMin, SequentialFillsInDiscoveryOrder) {
  TwoPathFixture f;
  const SplitResult r = sequential_split(f.g, f.paths, 80, f.cap, f.fees);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.amounts[0], 60, 1e-9);  // first path to its bottleneck
  EXPECT_NEAR(r.amounts[1], 20, 1e-9);
}

TEST(FeeMin, SharedEdgeConstraintBindsAcrossPaths) {
  // Both paths share edge 0->1 (the Fig. 5a shape): joint use is capped.
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {1, 3}});
  FeeSchedule fees(g);
  const Path p1{fwd(g, 0), fwd(g, 1), fwd(g, 2)};  // 0-1-2-3
  const Path p2{fwd(g, 0), fwd(g, 3)};             // 0-1-3
  CapacityMap cap{{fwd(g, 0), 30},
                  {fwd(g, 1), 25},
                  {fwd(g, 2), 25},
                  {fwd(g, 3), 25}};
  const SplitResult ok = optimize_fee_split(g, {p1, p2}, 30, cap, fees);
  ASSERT_TRUE(ok.feasible);
  EXPECT_NEAR(ok.amounts[0] + ok.amounts[1], 30, 1e-6);
  const SplitResult no = optimize_fee_split(g, {p1, p2}, 31, cap, fees);
  EXPECT_FALSE(no.feasible);  // shared edge caps the joint flow at 30
}

TEST(FeeMin, EmptyPathsInfeasible) {
  Graph g = make_graph(2, {{0, 1}});
  FeeSchedule fees(g);
  EXPECT_FALSE(optimize_fee_split(g, {}, 10, {}, fees).feasible);
  EXPECT_FALSE(sequential_split(g, {}, 10, {}, fees).feasible);
}

TEST(FeeMin, SplitFeeMatchesSchedule) {
  TwoPathFixture f;
  const Amount fee = split_fee(f.fees, f.paths, {10, 20});
  EXPECT_NEAR(fee, 10 * 0.02 + 20 * 0.10, 1e-9);
}

}  // namespace
}  // namespace flash

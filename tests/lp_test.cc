// Tests for the simplex LP solver and the fee-minimization program (1).
//
// The workspace rewrite (LpWorkspace / solve_lp_core, ProbedCapacities /
// optimize_fee_split_core) is pinned here against the pre-rewrite
// implementations, embedded below as `legacy::` oracles:
//  - solve_lp runs the identical pivot sequence for the same constraint
//    order, so status and objective must match the legacy dense solver
//    exactly (cross-checked on random LPs with mixed relations, negative
//    rhs and redundant rows);
//  - the splits are pinned at SOLUTION level on fig-scale probed
//    instances: identical feasibility, total fee within 1e-6, and all
//    program-(1) constraints satisfied — the chosen vertex may differ
//    because the canonical (insertion-order) constraint ordering replaces
//    the legacy unordered_map hash order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/topology.h"
#include "lp/fee_min.h"
#include "lp/simplex.h"
#include "routing/flash/elephant.h"
#include "testutil.h"
#include "util/rng.h"

namespace flash {
namespace {

using testing::fwd;
using testing::make_graph;

// --- Simplex -------------------------------------------------------------------

TEST(Simplex, SimpleMinimization) {
  // min x + 2y s.t. x + y >= 4, x <= 3, y <= 5 -> x=3, y=1, obj=5.
  LpProblem lp;
  lp.objective = {1, 2};
  lp.constraints.push_back({{1, 1}, Relation::kGreaterEq, 4});
  lp.constraints.push_back({{1, 0}, Relation::kLessEq, 3});
  lp.constraints.push_back({{0, 1}, Relation::kLessEq, 5});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 3, 1e-7);
  EXPECT_NEAR(sol.x[1], 1, 1e-7);
  EXPECT_NEAR(sol.objective_value, 5, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min 3x + y s.t. x + y = 10, x >= 0, y >= 0 -> x=0, y=10.
  LpProblem lp;
  lp.objective = {3, 1};
  lp.constraints.push_back({{1, 1}, Relation::kEq, 10});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 0, 1e-7);
  EXPECT_NEAR(sol.x[1], 10, 1e-7);
}

TEST(Simplex, InfeasibleDetected) {
  // x <= 1 and x >= 2 simultaneously.
  LpProblem lp;
  lp.objective = {1};
  lp.constraints.push_back({{1}, Relation::kLessEq, 1});
  lp.constraints.push_back({{1}, Relation::kGreaterEq, 2});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  // min -x with no upper bound on x.
  LpProblem lp;
  lp.objective = {-1};
  lp.constraints.push_back({{1}, Relation::kGreaterEq, 0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // x - y <= -2 with min x + y -> y >= x + 2, best x=0 y=2.
  LpProblem lp;
  lp.objective = {1, 1};
  lp.constraints.push_back({{1, -1}, Relation::kLessEq, -2});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective_value, 2, 1e-7);
}

TEST(Simplex, DegenerateTiesTerminate) {
  // Multiple constraints active at the optimum; Bland's rule must not cycle.
  LpProblem lp;
  lp.objective = {-1, -1};
  lp.constraints.push_back({{1, 0}, Relation::kLessEq, 1});
  lp.constraints.push_back({{1, 0}, Relation::kLessEq, 1});
  lp.constraints.push_back({{0, 1}, Relation::kLessEq, 1});
  lp.constraints.push_back({{1, 1}, Relation::kLessEq, 2});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective_value, -2, 1e-7);
}

TEST(Simplex, ZeroObjectiveFeasibility) {
  LpProblem lp;
  lp.objective = {0, 0};
  lp.constraints.push_back({{1, 1}, Relation::kEq, 5});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0] + sol.x[1], 5, 1e-7);
}

TEST(Simplex, RandomProblemsSolutionsFeasible) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    LpProblem lp;
    const std::size_t n = 2 + rng.next_below(4);
    const std::size_t m = 1 + rng.next_below(5);
    lp.objective.resize(n);
    for (auto& c : lp.objective) c = rng.uniform(0.0, 2.0);
    for (std::size_t i = 0; i < m; ++i) {
      LpConstraint con;
      con.coeffs.resize(n);
      for (auto& a : con.coeffs) a = rng.uniform(0.0, 1.0);
      con.rel = Relation::kLessEq;
      con.rhs = rng.uniform(0.5, 5.0);
      lp.constraints.push_back(std::move(con));
    }
    // Nonnegative objective over <= constraints with positive rhs: x = 0 is
    // feasible and optimal (objective 0).
    const LpSolution sol = solve_lp(lp);
    ASSERT_EQ(sol.status, LpStatus::kOptimal);
    EXPECT_NEAR(sol.objective_value, 0.0, 1e-7);
  }
}

TEST(Simplex, RandomDemandProblemsRespectConstraints) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.next_below(4);
    LpProblem lp;
    lp.objective.resize(n);
    for (auto& c : lp.objective) c = rng.uniform(0.1, 1.0);
    LpConstraint demand;
    demand.coeffs.assign(n, 1.0);
    demand.rel = Relation::kEq;
    demand.rhs = 1.0;
    lp.constraints.push_back(demand);
    std::vector<double> caps(n);
    double total = 0;
    for (std::size_t j = 0; j < n; ++j) {
      caps[j] = rng.uniform(0.1, 1.0);
      total += caps[j];
      LpConstraint cap;
      cap.coeffs.assign(n, 0.0);
      cap.coeffs[j] = 1.0;
      cap.rel = Relation::kLessEq;
      cap.rhs = caps[j];
      lp.constraints.push_back(std::move(cap));
    }
    const LpSolution sol = solve_lp(lp);
    if (total < 1.0) {
      EXPECT_EQ(sol.status, LpStatus::kInfeasible);
      continue;
    }
    ASSERT_EQ(sol.status, LpStatus::kOptimal);
    double sum = 0;
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_LE(sol.x[j], caps[j] + 1e-7);
      EXPECT_GE(sol.x[j], -1e-9);
      sum += sol.x[j];
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

// --- Fee minimization ------------------------------------------------------------

/// Two-path setup: cheap path (rate 0.01/hop) and expensive (0.05/hop).
struct TwoPathFixture {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees{g};
  std::vector<Path> paths;
  CapacityMap cap;

  TwoPathFixture() {
    fees.set_policy(fwd(g, 0), {0, 0.01});
    fees.set_policy(fwd(g, 1), {0, 0.01});
    fees.set_policy(fwd(g, 2), {0, 0.05});
    fees.set_policy(fwd(g, 3), {0, 0.05});
    paths = {{fwd(g, 0), fwd(g, 1)}, {fwd(g, 2), fwd(g, 3)}};
    cap = {{fwd(g, 0), 60}, {fwd(g, 1), 60}, {fwd(g, 2), 60}, {fwd(g, 3), 60}};
  }
};

TEST(FeeMin, PrefersCheapPath) {
  TwoPathFixture f;
  const SplitResult r = optimize_fee_split(f.g, f.paths, 50, f.cap, f.fees);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.amounts[0], 50, 1e-6);  // everything on the cheap path
  EXPECT_NEAR(r.amounts[1], 0, 1e-6);
  EXPECT_NEAR(r.total_fee, 50 * 0.02, 1e-6);
}

TEST(FeeMin, SpillsToExpensiveWhenCheapIsFull) {
  TwoPathFixture f;
  const SplitResult r = optimize_fee_split(f.g, f.paths, 100, f.cap, f.fees);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.amounts[0], 60, 1e-6);
  EXPECT_NEAR(r.amounts[1], 40, 1e-6);
}

TEST(FeeMin, InfeasibleWhenDemandExceedsCapacity) {
  TwoPathFixture f;
  const SplitResult r = optimize_fee_split(f.g, f.paths, 1000, f.cap, f.fees);
  EXPECT_FALSE(r.feasible);
}

TEST(FeeMin, LpNeverWorseThanSequential) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    TwoPathFixture f;
    // Random capacities and rates.
    for (auto& [e, c] : f.cap) c = rng.uniform(10.0, 80.0);
    for (std::size_t ch = 0; ch < f.g.num_channels(); ++ch) {
      const double rate = rng.uniform(0.001, 0.05);
      f.fees.set_policy(fwd(f.g, ch), {0, rate});
    }
    const Amount demand = rng.uniform(5.0, 60.0);
    const SplitResult lp =
        optimize_fee_split(f.g, f.paths, demand, f.cap, f.fees);
    const SplitResult seq =
        sequential_split(f.g, f.paths, demand, f.cap, f.fees);
    if (seq.feasible) {
      ASSERT_TRUE(lp.feasible) << "LP must be feasible when sequential is";
      EXPECT_LE(lp.total_fee, seq.total_fee + 1e-6);
    }
  }
}

TEST(FeeMin, SequentialFillsInDiscoveryOrder) {
  TwoPathFixture f;
  const SplitResult r = sequential_split(f.g, f.paths, 80, f.cap, f.fees);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.amounts[0], 60, 1e-9);  // first path to its bottleneck
  EXPECT_NEAR(r.amounts[1], 20, 1e-9);
}

TEST(FeeMin, SharedEdgeConstraintBindsAcrossPaths) {
  // Both paths share edge 0->1 (the Fig. 5a shape): joint use is capped.
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {1, 3}});
  FeeSchedule fees(g);
  const Path p1{fwd(g, 0), fwd(g, 1), fwd(g, 2)};  // 0-1-2-3
  const Path p2{fwd(g, 0), fwd(g, 3)};             // 0-1-3
  CapacityMap cap{{fwd(g, 0), 30},
                  {fwd(g, 1), 25},
                  {fwd(g, 2), 25},
                  {fwd(g, 3), 25}};
  const SplitResult ok = optimize_fee_split(g, {p1, p2}, 30, cap, fees);
  ASSERT_TRUE(ok.feasible);
  EXPECT_NEAR(ok.amounts[0] + ok.amounts[1], 30, 1e-6);
  const SplitResult no = optimize_fee_split(g, {p1, p2}, 31, cap, fees);
  EXPECT_FALSE(no.feasible);  // shared edge caps the joint flow at 30
}

TEST(FeeMin, EmptyPathsInfeasible) {
  Graph g = make_graph(2, {{0, 1}});
  FeeSchedule fees(g);
  EXPECT_FALSE(optimize_fee_split(g, {}, 10, CapacityMap{}, fees).feasible);
  EXPECT_FALSE(sequential_split(g, {}, 10, CapacityMap{}, fees).feasible);
}

TEST(FeeMin, SplitFeeMatchesSchedule) {
  TwoPathFixture f;
  const Amount fee = split_fee(f.fees, f.paths, {10, 20});
  EXPECT_NEAR(fee, 10 * 0.02 + 20 * 0.10, 1e-9);
}

// --- Missing-edge regression -----------------------------------------------------
//
// sequential_split is the LP-degenerate *fallback* inside route_elephant:
// a capacity matrix that does not cover the path set must come back as a
// clean infeasible result, never an exception that aborts a whole sweep.

TEST(FeeMin, SequentialSplitMissingEdgeIsInfeasibleNotThrow) {
  TwoPathFixture f;
  CapacityMap holey = f.cap;
  holey.erase(fwd(f.g, 1));  // second edge of the cheap path unprobed
  SplitResult r;
  EXPECT_NO_THROW(r = sequential_split(f.g, f.paths, 50, holey, f.fees));
  EXPECT_FALSE(r.feasible);

  ProbedCapacities cap;
  cap.reset(f.g.num_edges());
  cap.insert(fwd(f.g, 0), 60);  // cheap path only partially covered
  SplitWorkspace ws;
  EXPECT_NO_THROW(
      sequential_split_core(f.g, f.paths, 50, cap, f.fees, ws, r));
  EXPECT_FALSE(r.feasible);
}

TEST(FeeMin, SequentialSplitEmptyCapacityMatrixInfeasible) {
  TwoPathFixture f;
  const SplitResult r =
      sequential_split(f.g, f.paths, 50, CapacityMap{}, f.fees);
  EXPECT_FALSE(r.feasible);
}

// --- Embedded legacy oracles -----------------------------------------------------
//
// The pre-rewrite dense solver and map-based splits, verbatim. They define
// the behavior the workspace rewrite must reproduce (exactly for the
// solver, at solution level for the splits).

namespace legacy {

constexpr double kEps = 1e-9;

class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), a_(rows, std::vector<double>(cols + 1, 0)),
        basis_(rows, 0) {}

  double& at(std::size_t r, std::size_t c) { return a_[r][c]; }
  double& rhs(std::size_t r) { return a_[r][cols_]; }
  std::size_t basis(std::size_t r) const { return basis_[r]; }
  void set_basis(std::size_t r, std::size_t var) { basis_[r] = var; }

  void pivot(std::size_t pr, std::size_t pc, std::vector<double>& z,
             double& z_value) {
    const double p = a_[pr][pc];
    for (double& v : a_[pr]) v /= p;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = a_[r][pc];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t c = 0; c <= cols_; ++c) {
        a_[r][c] -= factor * a_[pr][c];
      }
      a_[r][pc] = 0;
    }
    const double zf = z[pc];
    if (std::abs(zf) > 0) {
      for (std::size_t c = 0; c < cols_; ++c) z[c] -= zf * a_[pr][c];
      z_value -= zf * a_[pr][cols_];
      z[pc] = 0;
    }
    basis_[pr] = pc;
  }

  bool iterate(std::vector<double>& z, double& z_value,
               const std::vector<char>& allowed) {
    while (true) {
      std::size_t entering = cols_;
      for (std::size_t c = 0; c < cols_; ++c) {
        if (allowed[c] && z[c] < -kEps) {
          entering = c;
          break;
        }
      }
      if (entering == cols_) return true;
      std::size_t leaving = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < rows_; ++r) {
        if (a_[r][entering] > kEps) {
          const double ratio = a_[r][cols_] / a_[r][entering];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leaving == rows_ || basis_[r] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving == rows_) return false;
      pivot(leaving, entering, z, z_value);
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::vector<double>> a_;
  std::vector<std::size_t> basis_;
};

LpSolution solve_lp(const LpProblem& problem) {
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.constraints.size();
  LpSolution solution;

  std::size_t num_slack = 0;
  for (const auto& con : problem.constraints) {
    if (con.rel != Relation::kEq) ++num_slack;
  }

  std::vector<double> sign(m, 1.0);
  std::vector<char> needs_artificial(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& con = problem.constraints[i];
    Relation rel = con.rel;
    double rhs = con.rhs;
    if (rhs < 0) {
      sign[i] = -1.0;
      rhs = -rhs;
      if (rel == Relation::kLessEq) {
        rel = Relation::kGreaterEq;
      } else if (rel == Relation::kGreaterEq) {
        rel = Relation::kLessEq;
      }
    }
    needs_artificial[i] = (rel != Relation::kLessEq) ? 1 : 0;
  }
  std::size_t num_artificial = 0;
  for (std::size_t i = 0; i < m; ++i) num_artificial += needs_artificial[i];

  const std::size_t total = n + num_slack + num_artificial;
  Tableau t(m, total);

  std::size_t slack_col = n;
  std::size_t art_col = n + num_slack;
  std::vector<std::size_t> artificial_cols;
  for (std::size_t i = 0; i < m; ++i) {
    const auto& con = problem.constraints[i];
    for (std::size_t j = 0; j < con.coeffs.size(); ++j) {
      t.at(i, j) = sign[i] * con.coeffs[j];
    }
    t.rhs(i) = sign[i] * con.rhs;

    Relation rel = con.rel;
    if (sign[i] < 0) {
      if (rel == Relation::kLessEq) {
        rel = Relation::kGreaterEq;
      } else if (rel == Relation::kGreaterEq) {
        rel = Relation::kLessEq;
      }
    }
    if (rel == Relation::kLessEq) {
      t.at(i, slack_col) = 1.0;
      t.set_basis(i, slack_col);
      ++slack_col;
    } else if (rel == Relation::kGreaterEq) {
      t.at(i, slack_col) = -1.0;
      ++slack_col;
      t.at(i, art_col) = 1.0;
      t.set_basis(i, art_col);
      artificial_cols.push_back(art_col);
      ++art_col;
    } else {
      t.at(i, art_col) = 1.0;
      t.set_basis(i, art_col);
      artificial_cols.push_back(art_col);
      ++art_col;
    }
  }

  std::vector<char> allowed(total, 1);

  if (num_artificial > 0) {
    std::vector<double> z1(total, 0.0);
    double z1_value = 0.0;
    for (std::size_t c : artificial_cols) z1[c] = 1.0;
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t b = t.basis(r);
      const bool basic_artificial =
          std::find(artificial_cols.begin(), artificial_cols.end(), b) !=
          artificial_cols.end();
      if (basic_artificial) {
        for (std::size_t c = 0; c < total; ++c) z1[c] -= t.at(r, c);
        z1_value -= t.rhs(r);
      }
    }
    if (!t.iterate(z1, z1_value, allowed)) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    if (-z1_value > 1e-7) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t b = t.basis(r);
      if (std::find(artificial_cols.begin(), artificial_cols.end(), b) ==
          artificial_cols.end()) {
        continue;
      }
      std::size_t pc = total;
      for (std::size_t c = 0; c < n + num_slack; ++c) {
        if (std::abs(t.at(r, c)) > kEps) {
          pc = c;
          break;
        }
      }
      if (pc != total) {
        double dummy = 0.0;
        std::vector<double> zdummy(total, 0.0);
        t.pivot(r, pc, zdummy, dummy);
      }
    }
    for (std::size_t c : artificial_cols) allowed[c] = 0;
  }

  std::vector<double> z2(total, 0.0);
  double z2_value = 0.0;
  for (std::size_t j = 0; j < n; ++j) z2[j] = problem.objective[j];
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = t.basis(r);
    if (b < total && std::abs(z2[b]) > 0) {
      const double factor = z2[b];
      for (std::size_t c = 0; c < total; ++c) z2[c] -= factor * t.at(r, c);
      z2_value -= factor * t.rhs(r);
      z2[b] = 0;
    }
  }
  if (!t.iterate(z2, z2_value, allowed)) {
    solution.status = LpStatus::kUnbounded;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = t.basis(r);
    if (b < n) solution.x[b] = std::max(0.0, t.rhs(r));
  }
  double direct = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    direct += problem.objective[j] * solution.x[j];
  }
  solution.objective_value = direct;
  return solution;
}

double net_coeff(const Graph& g, const Path& p, EdgeId e) {
  const EdgeId rev = g.reverse(e);
  for (EdgeId pe : p) {
    if (pe == e) return 1.0;
    if (pe == rev) return -1.0;
  }
  return 0.0;
}

SplitResult optimize_fee_split(const Graph& g, const std::vector<Path>& paths,
                               Amount demand, const CapacityMap& cap,
                               const FeeSchedule& fees) {
  SplitResult result;
  if (paths.empty() || demand <= 0) return result;
  const double scale = demand;

  LpProblem lp;
  lp.objective.resize(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    lp.objective[i] = fees.path_rate(paths[i]);
  }

  LpConstraint demand_con;
  demand_con.coeffs.assign(paths.size(), 1.0);
  demand_con.rel = Relation::kEq;
  demand_con.rhs = 1.0;
  lp.constraints.push_back(std::move(demand_con));

  for (const auto& [edge, capacity] : cap) {
    LpConstraint con;
    con.coeffs.assign(paths.size(), 0.0);
    bool touched = false;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const double c = net_coeff(g, paths[i], edge);
      con.coeffs[i] = c;
      touched = touched || c != 0.0;
    }
    if (!touched) continue;
    con.rel = Relation::kLessEq;
    con.rhs = capacity / scale;
    lp.constraints.push_back(std::move(con));
  }

  const LpSolution sol = legacy::solve_lp(lp);
  if (sol.status != LpStatus::kOptimal) return result;

  result.feasible = true;
  result.amounts.resize(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    result.amounts[i] = sol.x[i] * scale;
  }
  result.total_fee = split_fee(fees, paths, result.amounts);
  return result;
}

SplitResult sequential_split(const Graph& g, const std::vector<Path>& paths,
                             Amount demand, const CapacityMap& cap,
                             const FeeSchedule& fees) {
  SplitResult result;
  if (paths.empty() || demand <= 0) return result;

  CapacityMap residual = cap;
  result.amounts.assign(paths.size(), 0);
  Amount remaining = demand;
  for (std::size_t i = 0; i < paths.size() && remaining > 1e-12; ++i) {
    Amount bottleneck = remaining;
    bool covered = true;
    for (EdgeId e : paths[i]) {
      const auto it = residual.find(e);
      if (it == residual.end()) {
        covered = false;  // legacy threw here; the oracle reports clean
        break;            // infeasibility like the rewrite under test
      }
      bottleneck = std::min(bottleneck, it->second);
    }
    if (!covered) return result;
    if (bottleneck <= 0) continue;
    result.amounts[i] = bottleneck;
    remaining -= bottleneck;
    for (EdgeId e : paths[i]) {
      residual[e] -= bottleneck;
      const auto rit = residual.find(g.reverse(e));
      if (rit != residual.end()) rit->second += bottleneck;
    }
  }
  if (remaining > 1e-9 * std::max<Amount>(1, demand)) {
    return result;
  }
  result.feasible = true;
  result.total_fee = split_fee(fees, paths, result.amounts);
  return result;
}

}  // namespace legacy

// --- Solver equivalence: random LPs vs the legacy dense solver -------------------

LpProblem random_lp(Rng& rng) {
  LpProblem lp;
  const std::size_t n = 1 + rng.next_below(5);
  const std::size_t m = 1 + rng.next_below(6);
  lp.objective.resize(n);
  for (auto& c : lp.objective) c = rng.uniform(-1.0, 2.0);
  for (std::size_t i = 0; i < m; ++i) {
    LpConstraint con;
    con.coeffs.resize(n);
    for (auto& a : con.coeffs) {
      a = rng.chance(0.3) ? 0.0 : rng.uniform(-1.0, 1.0);
    }
    const double pick = rng.uniform(0.0, 1.0);
    con.rel = pick < 0.6 ? Relation::kLessEq
                         : (pick < 0.8 ? Relation::kGreaterEq : Relation::kEq);
    con.rhs = rng.uniform(-2.0, 4.0);
    lp.constraints.push_back(std::move(con));
  }
  if (rng.chance(0.3) && !lp.constraints.empty()) {
    // Redundant duplicate row: exercises the degenerate-artificial
    // drive-out (including the all-zero-row case) in Phase 1.
    lp.constraints.push_back(lp.constraints[rng.next_below(
        lp.constraints.size())]);
  }
  return lp;
}

TEST(SimplexEquivalence, RandomLpsMatchLegacyDenseSolver) {
  Rng rng(1234);
  int optimal = 0, infeasible = 0, unbounded = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const LpProblem lp = random_lp(rng);
    const LpSolution got = solve_lp(lp);
    const LpSolution want = legacy::solve_lp(lp);
    ASSERT_EQ(got.status, want.status) << "trial " << trial;
    switch (got.status) {
      case LpStatus::kOptimal: ++optimal; break;
      case LpStatus::kInfeasible: ++infeasible; break;
      case LpStatus::kUnbounded: ++unbounded; break;
    }
    if (got.status != LpStatus::kOptimal) continue;
    // Identical pivot sequence => identical vertex, not merely equal
    // objective.
    EXPECT_NEAR(got.objective_value, want.objective_value, 1e-9)
        << "trial " << trial;
    ASSERT_EQ(got.x.size(), want.x.size());
    for (std::size_t j = 0; j < got.x.size(); ++j) {
      EXPECT_NEAR(got.x[j], want.x[j], 1e-9) << "trial " << trial;
    }
    // And the solution actually satisfies the problem.
    for (const auto& con : lp.constraints) {
      double lhs = 0;
      for (std::size_t j = 0; j < con.coeffs.size(); ++j) {
        lhs += con.coeffs[j] * got.x[j];
      }
      switch (con.rel) {
        case Relation::kLessEq: EXPECT_LE(lhs, con.rhs + 1e-6); break;
        case Relation::kGreaterEq: EXPECT_GE(lhs, con.rhs - 1e-6); break;
        case Relation::kEq: EXPECT_NEAR(lhs, con.rhs, 1e-6); break;
      }
    }
  }
  // The mix must actually exercise all three outcomes.
  EXPECT_GT(optimal, 50);
  EXPECT_GT(infeasible, 20);
  EXPECT_GT(unbounded, 5);
}

TEST(SimplexEquivalence, WorkspaceReuseMatchesFreshAcrossProblems) {
  // The legacy wrapper reuses one thread_local workspace; interleaving
  // problems of very different shapes must not leak state between solves.
  Rng rng(77);
  std::vector<LpProblem> lps;
  for (int i = 0; i < 12; ++i) lps.push_back(random_lp(rng));
  std::vector<LpSolution> first;
  for (const auto& lp : lps) first.push_back(solve_lp(lp));
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < lps.size(); ++i) {
      const LpSolution again = solve_lp(lps[i]);
      ASSERT_EQ(again.status, first[i].status);
      if (again.status == LpStatus::kOptimal) {
        EXPECT_EQ(again.x, first[i].x) << "solve must be deterministic";
      }
    }
  }
}

// --- Split equivalence on fig-scale probed instances -----------------------------

/// Checks every program-(1) constraint for a claimed split.
void expect_split_satisfies_program1(const Graph& g,
                                     const std::vector<Path>& paths,
                                     Amount demand,
                                     const ProbedCapacities& cap,
                                     const SplitResult& r) {
  ASSERT_EQ(r.amounts.size(), paths.size());
  Amount total = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_GE(r.amounts[i], -1e-6);
    total += r.amounts[i];
  }
  EXPECT_NEAR(total, demand, 1e-6 * std::max<Amount>(1, demand));
  for (const auto& [e, capacity] : cap.entries()) {
    double net = 0;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      net += legacy::net_coeff(g, paths[i], e) * r.amounts[i];
    }
    EXPECT_LE(net, capacity + 1e-6 * std::max<Amount>(1, demand))
        << "edge " << e;
  }
}

TEST(SplitEquivalence, FigScaleProbesMatchLegacyAtSolutionLevel) {
  // Probe real elephant instances on the fig06/fig09 Ripple-like topology
  // and pin the rewritten splits against the legacy map-based oracles:
  // identical feasibility and total fee (within 1e-6), all constraints
  // satisfied. The selected vertex may legitimately differ (canonical
  // constraint order vs libstdc++ hash order), which is exactly the
  // portability property this suite documents.
  Rng trng(1);
  const Graph g = ripple_like(trng);
  Rng srng(2);
  NetworkState state(g);
  state.assign_lognormal_split(250, 1.0, srng);
  Rng frng(41);
  const FeeSchedule fees = FeeSchedule::paper_default(g, frng);

  Rng rng(4242);
  int feasible_checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto s = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto t = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    if (s == t) continue;
    const ElephantProbeResult probe =
        elephant_find_paths(g, s, t, 1e6, 20, state);
    if (probe.paths.empty() || probe.max_flow <= 0) continue;
    const Amount demand = 0.9 * probe.max_flow;

    CapacityMap legacy_cap(probe.capacities.begin(), probe.capacities.end());
    const SplitResult lp_new =
        optimize_fee_split(g, probe.paths, demand, probe.capacities, fees);
    const SplitResult lp_old =
        legacy::optimize_fee_split(g, probe.paths, demand, legacy_cap, fees);
    ASSERT_EQ(lp_new.feasible, lp_old.feasible) << "trial " << trial;
    if (lp_new.feasible) {
      EXPECT_NEAR(lp_new.total_fee, lp_old.total_fee,
                  1e-6 * std::max<Amount>(1, lp_old.total_fee))
          << "trial " << trial;
      expect_split_satisfies_program1(g, probe.paths, demand,
                                      probe.capacities, lp_new);
      ++feasible_checked;
    }

    const SplitResult seq_new =
        sequential_split(g, probe.paths, demand, probe.capacities, fees);
    const SplitResult seq_old =
        legacy::sequential_split(g, probe.paths, demand, legacy_cap, fees);
    ASSERT_EQ(seq_new.feasible, seq_old.feasible) << "trial " << trial;
    if (seq_new.feasible) {
      // The sequential fill is order-deterministic in both versions:
      // bit-identical amounts, not merely equal fees.
      EXPECT_EQ(seq_new.amounts, seq_old.amounts) << "trial " << trial;
      EXPECT_EQ(seq_new.total_fee, seq_old.total_fee) << "trial " << trial;
    }
  }
  EXPECT_GT(feasible_checked, 10) << "fixture must exercise real splits";
}

TEST(SplitEquivalence, CapacityMapOverloadMatchesLegacyExactly) {
  // The legacy CapacityMap overload stages the map in its own iteration
  // order, so it must reproduce the historical result bit-for-bit — the
  // same vertex, not just the same objective.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    TwoPathFixture f;
    for (auto& [e, c] : f.cap) c = rng.uniform(10.0, 80.0);
    for (std::size_t ch = 0; ch < f.g.num_channels(); ++ch) {
      f.fees.set_policy(fwd(f.g, ch), {0, rng.uniform(0.001, 0.05)});
    }
    const Amount demand = rng.uniform(5.0, 100.0);
    const SplitResult got =
        optimize_fee_split(f.g, f.paths, demand, f.cap, f.fees);
    const SplitResult want =
        legacy::optimize_fee_split(f.g, f.paths, demand, f.cap, f.fees);
    ASSERT_EQ(got.feasible, want.feasible) << "trial " << trial;
    if (got.feasible) {
      EXPECT_EQ(got.amounts, want.amounts) << "trial " << trial;
      EXPECT_EQ(got.total_fee, want.total_fee) << "trial " << trial;
    }
  }
}

TEST(SplitEquivalence, CoreAndConvenienceOverloadAgree) {
  // The ProbedCapacities convenience overload and an explicitly-owned
  // workspace must produce identical results (same canonical order).
  TwoPathFixture f;
  ProbedCapacities cap;
  cap.reset(f.g.num_edges());
  for (std::size_t ch = 0; ch < 4; ++ch) cap.insert(fwd(f.g, ch), 60);
  const SplitResult a = optimize_fee_split(f.g, f.paths, 100, cap, f.fees);
  SplitWorkspace ws;
  SplitResult b;
  optimize_fee_split_core(f.g, f.paths, 100, cap, f.fees, ws, b);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_EQ(a.amounts, b.amounts);
  EXPECT_EQ(a.total_fee, b.total_fee);
}

TEST(ProbedCapacitiesType, InsertionOrderAndLookup) {
  ProbedCapacities cap;
  cap.reset(8);
  EXPECT_TRUE(cap.empty());
  EXPECT_FALSE(cap.contains(3));
  cap.insert(5, 12.5);
  cap.insert(2, 7.0);
  cap.insert(0, 1.0);
  ASSERT_EQ(cap.size(), 3u);
  EXPECT_TRUE(cap.contains(5));
  EXPECT_FALSE(cap.contains(4));
  EXPECT_FALSE(cap.contains(7));
  EXPECT_DOUBLE_EQ(cap.at(2), 7.0);
  EXPECT_EQ(cap.index_of(0), 2u);
  const std::vector<std::pair<EdgeId, Amount>> want{{5, 12.5}, {2, 7.0},
                                                    {0, 1.0}};
  EXPECT_EQ(cap.entries(), want);
  // O(1) reset forgets everything and is reusable at a new size.
  cap.reset(4);
  EXPECT_TRUE(cap.empty());
  EXPECT_FALSE(cap.contains(5));  // out of the new key range
  EXPECT_FALSE(cap.contains(2));
  cap.insert(1, 3.0);
  EXPECT_EQ(cap.index_of(1), 0u);
}

}  // namespace
}  // namespace flash

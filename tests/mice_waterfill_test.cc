// Tests for the congestion-aware mice extension (waterfilling selection).
#include <gtest/gtest.h>

#include "routing/flash/flash_router.h"
#include "routing/flash/mice.h"
#include "testutil.h"

namespace flash {
namespace {

using testing::fwd;
using testing::make_graph;
using testing::set_channel;

Transaction tx(NodeId s, NodeId t, Amount a) { return {s, t, a, 0}; }

TEST(MiceWaterfill, DeliversAndProbesEveryPath) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees(g);
  NetworkState s(g);
  for (int c = 0; c < 4; ++c) set_channel(s, g, c, 100, 0);
  MiceRoutingTable table(g, {4, 0, 0});
  const RouteResult r = route_mice_waterfill(g, tx(0, 3, 10), s, fees, table);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.probes, 2u);  // both table paths probed up front
  EXPECT_GT(r.probe_messages, 0u);
  EXPECT_TRUE(s.check_invariants());
}

TEST(MiceWaterfill, SplitsAcrossPathsWhenOneIsThin) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 6, 0);
  set_channel(s, g, 1, 6, 0);
  set_channel(s, g, 2, 6, 0);
  set_channel(s, g, 3, 6, 0);
  MiceRoutingTable table(g, {4, 0, 0});
  const RouteResult r = route_mice_waterfill(g, tx(0, 3, 10), s, fees, table);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.paths_used, 2u);
}

TEST(MiceWaterfill, FailsCleanlyWhenInsufficient) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 3, 0);
  set_channel(s, g, 1, 3, 0);
  MiceRoutingTable table(g, {4, 0, 0});
  const RouteResult r = route_mice_waterfill(g, tx(0, 2, 10), s, fees, table);
  EXPECT_FALSE(r.success);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 3);  // untouched
  EXPECT_EQ(s.active_holds(), 0u);
}

TEST(MiceWaterfill, RouterDispatchesOnConfig) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 100, 0);
  set_channel(s, g, 1, 100, 0);
  FlashConfig config;
  config.elephant_threshold = 1e9;  // everything is a mouse
  config.mice_selection = MiceSelection::kWaterfill;
  FlashRouter router(g, fees, config);
  const RouteResult r = router.route(tx(0, 2, 5), s);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.probes, 0u);  // waterfilling always probes

  FlashConfig te_config;
  te_config.elephant_threshold = 1e9;
  FlashRouter te_router(g, fees, te_config);
  const RouteResult te = te_router.route(tx(0, 2, 5), s);
  EXPECT_TRUE(te.success);
  EXPECT_EQ(te.probes, 0u);  // trial-and-error does not probe on success
}

TEST(MiceWaterfill, BalanceAwareSelectionPrefersFullPath) {
  // One path nearly drained, one full: waterfilling sends everything over
  // the full one (trial-and-error would pick randomly and may need two).
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 1, 0);
  set_channel(s, g, 1, 1, 0);
  set_channel(s, g, 2, 100, 0);
  set_channel(s, g, 3, 100, 0);
  MiceRoutingTable table(g, {4, 0, 0});
  const RouteResult r = route_mice_waterfill(g, tx(0, 3, 50), s, fees, table);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.paths_used, 1u);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 1);  // thin path untouched
}

}  // namespace
}  // namespace flash

// Tests for the thread pool and parallel_for (util/thread_pool.h).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace flash {
namespace {

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, ZeroMeansHardwareThreads) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleThreadPreservesOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  parallel_for(pool, 20, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(20);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      parallel_for(pool, 64,
                   [&](std::size_t i) {
                     if (i % 7 == 3) throw std::runtime_error("boom");
                     completed.fetch_add(1);
                   }),
      std::runtime_error);
  // Every non-throwing index still ran: indices 3,10,..,59 throw (nine of
  // the 64), leaving 55 completions.
  EXPECT_EQ(completed.load(), 55);
}

TEST(ParallelFor, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round) {
    parallel_for(pool, 100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5L * (99L * 100L / 2));
}

TEST(ParallelForChunked, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  // n deliberately not a multiple of the grain: the last chunk is ragged.
  constexpr std::size_t n = 1003;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunked(pool, n, 64,
                       [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForChunked, GrainOneMatchesParallelFor) {
  ThreadPool pool(3);
  std::atomic<long> a{0};
  std::atomic<long> b{0};
  parallel_for(pool, 500,
               [&](std::size_t i) { a.fetch_add(static_cast<long>(i)); });
  parallel_for_chunked(pool, 500, 1, [&](std::size_t i) {
    b.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(a.load(), b.load());
}

TEST(ParallelForChunked, GrainLargerThanRangeRunsEverything) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  parallel_for_chunked(pool, 10, 1000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelForChunked, RethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for_chunked(pool, 256, 16,
                           [&](std::size_t i) {
                             if (i == 77) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
  // The pool must survive for reuse after the throw.
  std::atomic<int> ran{0};
  parallel_for_chunked(pool, 32, 8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace flash

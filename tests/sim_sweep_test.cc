// Tests for the parallel sweep engine (sim/sweep.h): bit-identical
// determinism against the sequential run_series path for several thread
// counts, grid edge cases, JSON report shape, and error propagation.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "sim/experiment.h"
#include "sim/sweep.h"
#include "testutil.h"
#include "trace/workload.h"

namespace flash {
namespace {

WorkloadFactory toy_factory(std::size_t nodes, std::size_t tx) {
  return [nodes, tx](std::uint64_t seed) {
    return make_toy_workload(nodes, tx, seed);
  };
}

/// Exact (bit-identical) equality over every SimResult field (shared with
/// scenario_test via testutil.h).
using flash::testing::expect_identical;

/// A small but non-trivial grid: two schemes x two capacity scales, with a
/// stochastic router (Flash) included so seeding bugs cannot hide.
std::vector<SweepCell> test_grid(std::size_t runs) {
  std::vector<SweepCell> grid;
  for (const Scheme scheme : {Scheme::kFlash, Scheme::kShortestPath}) {
    for (const double scale : {1.0, 10.0}) {
      SweepCell cell;
      cell.label = scheme_name(scheme) + "/scale";
      cell.factory = toy_factory(30, 120);
      cell.scheme = scheme;
      cell.sim.capacity_scale = scale;
      cell.runs = runs;
      cell.base_seed = 7;
      grid.push_back(std::move(cell));
    }
  }
  return grid;
}

TEST(Sweep, MatchesSequentialRunSeriesForAnyThreadCount) {
  const std::size_t runs = 3;
  const std::vector<SweepCell> grid = test_grid(runs);

  // Sequential reference, cell by cell, through run_series.
  std::vector<RunSeries> reference;
  for (const SweepCell& cell : grid) {
    reference.push_back(run_series(cell.factory, cell.scheme, cell.flash,
                                   cell.sim, cell.runs, cell.base_seed));
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    SweepOptions opts;
    opts.threads = threads;
    const SweepResult result = run_sweep(grid, opts);
    EXPECT_EQ(result.threads_used, threads);
    ASSERT_EQ(result.cells.size(), grid.size());
    for (std::size_t c = 0; c < grid.size(); ++c) {
      ASSERT_EQ(result.cells[c].runs.size(), runs) << "cell " << c;
      for (std::size_t r = 0; r < runs; ++r) {
        SCOPED_TRACE("threads=" + std::to_string(threads) + " cell=" +
                     std::to_string(c) + " run=" + std::to_string(r));
        expect_identical(result.cells[c].runs[r], reference[c].runs[r]);
      }
    }
  }
}

TEST(Sweep, EmptyGrid) {
  const SweepResult result = run_sweep({});
  EXPECT_TRUE(result.cells.empty());
  EXPECT_GE(result.threads_used, 1u);
  EXPECT_GE(result.wall_seconds, 0.0);
}

TEST(Sweep, SingleCellMatchesRunSeries) {
  SweepCell cell;
  cell.factory = toy_factory(25, 80);
  cell.scheme = Scheme::kSpeedyMurmurs;
  cell.runs = 2;
  cell.base_seed = 3;

  const RunSeries reference = run_series(cell.factory, cell.scheme,
                                         cell.flash, cell.sim, cell.runs,
                                         cell.base_seed);
  SweepOptions opts;
  opts.threads = 2;
  const SweepResult result = run_sweep({cell}, opts);
  ASSERT_EQ(result.cells.size(), 1u);
  ASSERT_EQ(result.cells[0].runs.size(), reference.runs.size());
  for (std::size_t r = 0; r < reference.runs.size(); ++r) {
    expect_identical(result.cells[0].runs[r], reference.runs[r]);
  }
}

TEST(Sweep, CellWithZeroRunsYieldsEmptySeries) {
  SweepCell cell;
  cell.factory = toy_factory(20, 10);
  cell.runs = 0;
  const SweepResult result = run_sweep({cell});
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].runs.empty());
}

TEST(Sweep, PropagatesFactoryExceptions) {
  SweepCell cell;
  cell.factory = [](std::uint64_t) -> Workload {
    throw std::runtime_error("factory failed");
  };
  cell.runs = 2;
  SweepOptions opts;
  opts.threads = 2;
  EXPECT_THROW(run_sweep({cell}, opts), std::runtime_error);
}

TEST(Sweep, JsonReportContainsCellsAndTimings) {
  SweepCell cell;
  cell.label = "toy \"quoted\" label";
  cell.factory = toy_factory(20, 40);
  cell.scheme = Scheme::kShortestPath;
  cell.runs = 2;
  const std::vector<SweepCell> grid{cell};
  const SweepResult result = run_sweep(grid);

  std::ostringstream out;
  write_sweep_json(out, "sweep_test", grid, result);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"bench\": \"sweep_test\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": "), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": "), std::string::npos);
  EXPECT_NE(json.find("toy \\\"quoted\\\" label"), std::string::npos);
  EXPECT_NE(json.find("\"scheme\": \"SP\""), std::string::npos);
  EXPECT_NE(json.find("\"success_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"probe_messages\""), std::string::npos);
  EXPECT_NE(json.find("\"retries\""), std::string::npos);
  EXPECT_NE(json.find("\"stale_failures\""), std::string::npos);
}

TEST(Sweep, ScenarioCellsMatchSequentialRunScenario) {
  // A dynamic (churn + retry + gossip-delay) cell must run through the
  // ScenarioEngine and stay bit-identical to the sequential path for any
  // thread count — the same determinism contract as static cells.
  ScenarioConfig dynamic;
  dynamic.retry.max_retries = 1;
  dynamic.retry.delay = 0.5;
  dynamic.churn.close_rate = 0.1;
  dynamic.gossip.hop_delay = 4;

  std::vector<SweepCell> grid;
  for (const Scheme scheme : {Scheme::kFlash, Scheme::kShortestPath}) {
    SweepCell cell;
    cell.label = scheme_name(scheme) + "/churn";
    cell.factory = toy_factory(30, 120);
    cell.scheme = scheme;
    cell.sim.capacity_scale = 3.0;
    cell.runs = 2;
    cell.base_seed = 5;
    cell.scenario = dynamic;
    grid.push_back(std::move(cell));
  }

  std::vector<RunSeries> reference;
  for (const SweepCell& cell : grid) {
    RunSeries series;
    for (std::size_t r = 0; r < cell.runs; ++r) {
      const std::uint64_t seed = cell.base_seed + r;
      const Workload w = cell.factory(seed);
      series.runs.push_back(run_scenario(w, cell.scheme, cell.flash,
                                         cell.sim, *cell.scenario, seed)
                                .sim);
    }
    reference.push_back(std::move(series));
  }

  for (const std::size_t threads : {1u, 2u}) {
    SweepOptions opts;
    opts.threads = threads;
    const SweepResult result = run_sweep(grid, opts);
    ASSERT_EQ(result.cells.size(), grid.size());
    for (std::size_t c = 0; c < grid.size(); ++c) {
      ASSERT_EQ(result.cells[c].runs.size(), grid[c].runs);
      for (std::size_t r = 0; r < grid[c].runs; ++r) {
        SCOPED_TRACE("threads=" + std::to_string(threads) + " cell=" +
                     std::to_string(c) + " run=" + std::to_string(r));
        // Covers the dynamic counters (retries, stale failures, time to
        // success) too — expect_identical spans every SimResult field.
        expect_identical(result.cells[c].runs[r], reference[c].runs[r]);
      }
    }
  }
}

}  // namespace
}  // namespace flash

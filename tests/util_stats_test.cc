#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace flash {
namespace {

TEST(Summarize, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.sum, 0.0);
}

TEST(Summarize, BasicMoments) {
  const std::vector<double> v{1, 2, 3, 4};
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.sum, 10);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
}

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> v{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);  // interpolated
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Mean, EmptyAndBasic) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  const std::vector<double> v{2, 4};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
}

TEST(EmpiricalCdf, MonotoneAndEndsAtOne) {
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(i);
  const auto cdf = empirical_cdf(v, 16);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].x, cdf[i].x);
    EXPECT_LE(cdf[i - 1].f, cdf[i].f);
  }
  EXPECT_DOUBLE_EQ(cdf.back().f, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().x, 100.0);
  EXPECT_DOUBLE_EQ(cdf.front().x, 1.0);
}

TEST(EmpiricalCdf, SmallSampleKeepsAllPoints) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0}, 64);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
  EXPECT_NEAR(cdf[0].f, 1.0 / 3, 1e-12);
}

TEST(TopFractionShare, UniformValues) {
  // All equal: top 10% of 10 values = 1 value = 10% of the sum.
  const std::vector<double> v(10, 5.0);
  EXPECT_NEAR(top_fraction_share(v, 0.10), 0.10, 1e-12);
}

TEST(TopFractionShare, HeavyTail) {
  std::vector<double> v(9, 1.0);
  v.push_back(91.0);  // one elephant carries 91% of the volume
  EXPECT_NEAR(top_fraction_share(v, 0.10), 0.91, 1e-12);
}

TEST(TopFractionShare, WholeIsOne) {
  const std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(top_fraction_share(v, 1.0), 1.0);
}

TEST(TopFractionShare, ZeroSumIsZero) {
  const std::vector<double> v{0, 0, 0};
  EXPECT_DOUBLE_EQ(top_fraction_share(v, 0.5), 0.0);
}

TEST(RunningStat, MatchesBatchSummary) {
  const std::vector<double> v{1.5, -2.0, 7.25, 0.0, 3.5};
  RunningStat rs;
  for (double x : v) rs.add(x);
  const Summary s = summarize(v);
  EXPECT_EQ(rs.count(), s.n);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), s.min);
  EXPECT_DOUBLE_EQ(rs.max(), s.max);
  EXPECT_NEAR(rs.sum(), s.sum, 1e-12);
}

TEST(RunningStat, EmptyIsZero) {
  const RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

// Precondition violations must throw in Release builds too (NDEBUG strips
// assert, which previously left out-of-bounds UB).
TEST(ReleaseGuards, PercentileEmptyInputThrows) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(ReleaseGuards, PercentileOutOfRangePThrows) {
  EXPECT_THROW(percentile({1.0, 2.0}, -0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0, 2.0}, 100.5), std::invalid_argument);
  const double nan = std::nan("");
  EXPECT_THROW(percentile({1.0, 2.0}, nan), std::invalid_argument);
}

TEST(ReleaseGuards, EmpiricalCdfBadInputThrows) {
  EXPECT_THROW(empirical_cdf({}), std::invalid_argument);
  EXPECT_THROW(empirical_cdf({1.0, 2.0}, 1), std::invalid_argument);
}

TEST(ReleaseGuards, TopFractionShareBadInputThrows) {
  EXPECT_THROW(top_fraction_share({}, 0.1), std::invalid_argument);
  EXPECT_THROW(top_fraction_share({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(top_fraction_share({1.0}, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace flash

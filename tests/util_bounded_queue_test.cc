// Tests for util/bounded_queue.h: FIFO order, blocking backpressure,
// close semantics, the non-blocking try operations, and an MPMC stress
// run sized for the TSan CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "util/bounded_queue.h"

namespace flash {
namespace {

TEST(BoundedQueue, FifoOrderSingleThread) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_FALSE(q.try_push(99));  // full
  for (int i = 0; i < 4; ++i) {
    const auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CapacityClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(BoundedQueue, CloseDrainsThenReportsExhaustion) {
  BoundedQueue<int> q(8);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));  // rejected after close
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // closed and drained
  q.close();                          // idempotent
}

TEST(BoundedQueue, CloseUnblocksParkedPopper) {
  BoundedQueue<int> q(2);
  std::atomic<bool> got_exhausted{false};
  std::thread t([&] {
    const auto v = q.pop();  // parks: queue empty
    got_exhausted.store(!v.has_value());
  });
  q.close();
  t.join();
  EXPECT_TRUE(got_exhausted.load());
}

TEST(BoundedQueue, PushBlocksUntilSpaceAndPreservesOrder) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  std::atomic<bool> second_pushed{false};
  std::thread t([&] {
    q.push(1);  // parks: queue full
    second_pushed.store(true);
  });
  // The producer must stay parked until we pop.
  EXPECT_EQ(q.pop().value(), 0);
  t.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
}

TEST(BoundedQueue, SpscTransfersEverythingInOrder) {
  constexpr int kItems = 20000;
  BoundedQueue<int> q(16);
  std::vector<int> got;
  got.reserve(kItems);
  std::thread consumer([&] {
    while (auto v = q.pop()) got.push_back(*v);
  });
  for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(int{i}));
  q.close();
  consumer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
}

TEST(BoundedQueue, MpmcStressDeliversEachItemExactlyOnce) {
  // 4 producers x 4 consumers over a tiny queue: the configuration the
  // TSan CI job leans on. Every produced value must arrive exactly once.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  BoundedQueue<std::uint32_t> q(8);
  std::mutex sink_mu;
  std::vector<std::uint32_t> sink;
  sink.reserve(kProducers * kPerProducer);

  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::vector<std::uint32_t> local;
      while (auto v = q.pop()) local.push_back(*v);
      const std::lock_guard<std::mutex> lock(sink_mu);
      sink.insert(sink.end(), local.begin(), local.end());
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(static_cast<std::uint32_t>(p * kPerProducer + i)));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : threads) t.join();

  ASSERT_EQ(sink.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(sink.begin(), sink.end());
  for (std::size_t i = 0; i < sink.size(); ++i) {
    EXPECT_EQ(sink[i], static_cast<std::uint32_t>(i));
  }
}

TEST(BoundedQueue, MoveOnlyPayloadsWork) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  q.push(std::make_unique<int>(42));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

}  // namespace
}  // namespace flash

// Steady-state allocation-freedom of the graph-algorithm core.
//
// This binary replaces global operator new/delete with counting forwarders
// and asserts that, once a GraphScratch (and any reused output buffers) has
// warmed up on a first query, repeating queries through the scratch-based
// cores performs ZERO heap allocations — the central promise of the PR 3
// CSR + epoch-stamped-workspace refactor. Runs in its own test binary so
// the counters don't see unrelated traffic (gtest itself only allocates on
// failure paths and between tests).
//
// Deliberately out of scope: the fee-LP boundary (ElephantProbeResult's
// CapacityMap is re-populated per probe because its iteration order feeds
// the LP constraint order) and the ledger (holds bookkeeping), which are
// not graph-algorithm state.
#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/dijkstra.h"
#include "graph/edge_disjoint.h"
#include "graph/maxflow.h"
#include "graph/scratch.h"
#include "graph/topology.h"
#include "graph/yen.h"
#include "testutil.h"
#include "util/rng.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Counting global allocator: every path through operator new lands here.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace flash {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

const Graph& test_graph() {
  static const Graph g = [] {
    Rng rng(7);
    return scale_free(400, 1600, rng);
  }();
  return g;
}

using FeeWeight = testing::DeterministicFeeWeight;

/// Runs `fn` once to warm the scratch/buffers, then asserts the next
/// `repeats` runs allocate nothing.
template <typename Fn>
void expect_steady_state_alloc_free(const char* what, Fn&& fn,
                                    int repeats = 5) {
  fn();  // warm-up: sizes the scratch arrays and output buffers
  fn();  // second warm-up: first call may still grow slot-reused outputs
  const std::uint64_t before = allocations();
  for (int i = 0; i < repeats; ++i) fn();
  const std::uint64_t after = allocations();
  EXPECT_EQ(after - before, 0u)
      << what << ": " << (after - before) << " allocations in " << repeats
      << " steady-state queries";
}

TEST(AllocationFree, DijkstraCore) {
  const Graph& g = test_graph();
  GraphScratch scratch;
  Path path;
  expect_steady_state_alloc_free("dijkstra_core", [&] {
    path.clear();
    dijkstra_core(g, 3, 377, scratch, FeeWeight{}, false, path);
  });
}

TEST(AllocationFree, DijkstraDistancesCore) {
  const Graph& g = test_graph();
  GraphScratch scratch;
  expect_steady_state_alloc_free("dijkstra_distances_core", [&] {
    dijkstra_distances_core(g, 11, scratch, UnitWeight{});
  });
}

TEST(AllocationFree, BfsPathCore) {
  const Graph& g = test_graph();
  GraphScratch scratch;
  Path path;
  expect_steady_state_alloc_free("bfs_path_core", [&] {
    path.clear();
    bfs_path_core(g, 5, 390, scratch, AdmitAll{}, path);
  });
}

TEST(AllocationFree, YenCore) {
  const Graph& g = test_graph();
  GraphScratch scratch;
  std::vector<Path> out;
  expect_steady_state_alloc_free("yen_core", [&] {
    yen_core(g, 2, 351, 8, scratch, UnitWeight{}, out);
  });
}

TEST(AllocationFree, YenCoreAcrossReceivers) {
  // Steady state also means: revisiting a *set* of receivers allocates
  // nothing once each has been seen (buffer high-water marks stabilize).
  const Graph& g = test_graph();
  GraphScratch scratch;
  std::vector<Path> out;
  const NodeId receivers[] = {351, 17, 230, 88, 399};
  expect_steady_state_alloc_free("yen_core (receiver set)", [&] {
    for (const NodeId t : receivers) {
      yen_core(g, 2, t, 8, scratch, UnitWeight{}, out);
    }
  });
}

TEST(AllocationFree, EdgeDisjointCore) {
  const Graph& g = test_graph();
  GraphScratch scratch;
  std::vector<Path> out;
  expect_steady_state_alloc_free("edge_disjoint_core", [&] {
    edge_disjoint_core(g, 9, 320, 4, scratch, out);
  });
}

TEST(AllocationFree, EdmondsKarpCore) {
  const Graph& g = test_graph();
  GraphScratch scratch;
  MaxFlowResult result;
  std::vector<Amount> cap(g.num_edges());
  Rng rng(9);
  for (auto& c : cap) c = rng.uniform(0.0, 40.0);
  struct CapFn {
    const std::vector<Amount>* cap;
    Amount operator()(EdgeId e) const { return (*cap)[e]; }
  };
  expect_steady_state_alloc_free("edmonds_karp_core", [&] {
    edmonds_karp_core(g, 9, 320, CapFn{&cap}, -1, 20, scratch, result);
  });
}

}  // namespace
}  // namespace flash

// Steady-state allocation-freedom of the graph-algorithm core.
//
// This binary replaces global operator new/delete with counting forwarders
// and asserts that, once a GraphScratch (and any reused output buffers) has
// warmed up on a first query, repeating queries through the scratch-based
// cores performs ZERO heap allocations — the central promise of the PR 3
// CSR + epoch-stamped-workspace refactor. Runs in its own test binary so
// the counters don't see unrelated traffic (gtest itself only allocates on
// failure paths and between tests).
//
// Since the LP fee-split rewrite the same promise covers the whole
// elephant pipeline: the flat ProbedCapacities matrix, the LP split cores
// running in a SplitWorkspace, and route_elephant end to end — including
// the ledger, whose hold records are recycled through a free list.
#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/dijkstra.h"
#include "graph/edge_disjoint.h"
#include "graph/maxflow.h"
#include "graph/scratch.h"
#include "graph/topology.h"
#include "graph/yen.h"
#include "ledger/fee_policy.h"
#include "lp/fee_min.h"
#include "routing/flash/elephant.h"
#include "routing/flash/flash_router.h"
#include "routing/shortest_path.h"
#include "testutil.h"
#include "util/rng.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// The replaced operators below back ALL of new/new[]/aligned new with
// malloc/aligned_alloc, both of which free() releases legally (C11/POSIX).
// GCC pairs new-expressions with the inlined free() call and reports a
// mismatched allocation function; that analysis doesn't apply to a
// replaced global allocator, so silence it for this file.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// Counting global allocator: every path through operator new lands here.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace flash {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

const Graph& test_graph() {
  static const Graph g = [] {
    Rng rng(7);
    return scale_free(400, 1600, rng);
  }();
  return g;
}

using FeeWeight = testing::DeterministicFeeWeight;

/// Runs `fn` once to warm the scratch/buffers, then asserts the next
/// `repeats` runs allocate nothing.
template <typename Fn>
void expect_steady_state_alloc_free(const char* what, Fn&& fn,
                                    int repeats = 5) {
  fn();  // warm-up: sizes the scratch arrays and output buffers
  fn();  // second warm-up: first call may still grow slot-reused outputs
  const std::uint64_t before = allocations();
  for (int i = 0; i < repeats; ++i) fn();
  const std::uint64_t after = allocations();
  EXPECT_EQ(after - before, 0u)
      << what << ": " << (after - before) << " allocations in " << repeats
      << " steady-state queries";
}

TEST(AllocationFree, DijkstraCore) {
  const Graph& g = test_graph();
  GraphScratch scratch;
  Path path;
  expect_steady_state_alloc_free("dijkstra_core", [&] {
    path.clear();
    dijkstra_core(g, 3, 377, scratch, FeeWeight{}, false, path);
  });
}

TEST(AllocationFree, DijkstraDistancesCore) {
  const Graph& g = test_graph();
  GraphScratch scratch;
  expect_steady_state_alloc_free("dijkstra_distances_core", [&] {
    dijkstra_distances_core(g, 11, scratch, UnitWeight{});
  });
}

TEST(AllocationFree, BfsPathCore) {
  const Graph& g = test_graph();
  GraphScratch scratch;
  Path path;
  expect_steady_state_alloc_free("bfs_path_core", [&] {
    path.clear();
    bfs_path_core(g, 5, 390, scratch, AdmitAll{}, path);
  });
}

TEST(AllocationFree, YenCore) {
  const Graph& g = test_graph();
  GraphScratch scratch;
  std::vector<Path> out;
  expect_steady_state_alloc_free("yen_core", [&] {
    yen_core(g, 2, 351, 8, scratch, UnitWeight{}, out);
  });
}

TEST(AllocationFree, YenCoreAcrossReceivers) {
  // Steady state also means: revisiting a *set* of receivers allocates
  // nothing once each has been seen (buffer high-water marks stabilize).
  const Graph& g = test_graph();
  GraphScratch scratch;
  std::vector<Path> out;
  const NodeId receivers[] = {351, 17, 230, 88, 399};
  expect_steady_state_alloc_free("yen_core (receiver set)", [&] {
    for (const NodeId t : receivers) {
      yen_core(g, 2, t, 8, scratch, UnitWeight{}, out);
    }
  });
}

TEST(AllocationFree, EdgeDisjointCore) {
  const Graph& g = test_graph();
  GraphScratch scratch;
  std::vector<Path> out;
  expect_steady_state_alloc_free("edge_disjoint_core", [&] {
    edge_disjoint_core(g, 9, 320, 4, scratch, out);
  });
}

// --- Fee-LP split pipeline ------------------------------------------------

/// Fig-scale probed elephant instance shared by the split tests: a real
/// Algorithm-1 path set and capacity matrix on the test topology.
struct SplitFixture {
  const Graph& g = test_graph();
  NetworkState state{g};
  FeeSchedule fees;
  GraphScratch scratch;
  ElephantProbeResult probe;
  Amount demand = 0;

  SplitFixture() {
    Rng rng(21);
    state.assign_lognormal_split(250, 1.0, rng);
    fees = FeeSchedule::paper_default(g, rng);
    elephant_find_paths_into(g, 11, 377, 1e6, 20, state, scratch, probe);
    EXPECT_GE(probe.paths.size(), 2u);
    demand = 0.9 * probe.max_flow;
    EXPECT_GT(demand, 0);
  }
};

TEST(AllocationFree, OptimizeFeeSplitCore) {
  SplitFixture f;
  SplitWorkspace ws;
  SplitResult result;
  expect_steady_state_alloc_free("optimize_fee_split_core", [&] {
    optimize_fee_split_core(f.g, f.probe.paths, f.demand, f.probe.capacities,
                            f.fees, ws, result);
    EXPECT_TRUE(result.feasible);
  });
}

TEST(AllocationFree, SequentialSplitCore) {
  SplitFixture f;
  SplitWorkspace ws;
  SplitResult result;
  expect_steady_state_alloc_free("sequential_split_core", [&] {
    sequential_split_core(f.g, f.probe.paths, f.demand, f.probe.capacities,
                          f.fees, ws, result);
    EXPECT_TRUE(result.feasible);
  });
}

TEST(AllocationFree, ElephantProbeIntoFlatCapacities) {
  // The probe loop itself, including the flat ProbedCapacities rebuild
  // that replaced the fresh-unordered_map-per-probe workaround.
  SplitFixture f;
  expect_steady_state_alloc_free("elephant_find_paths_into", [&] {
    elephant_find_paths_into(f.g, 11, 377, 1e6, 20, f.state, f.scratch,
                             f.probe);
  });
}

TEST(AllocationFree, RouteElephantFullSplitPath) {
  // The complete elephant pipeline: probing, LP split, sparse netting and
  // the ledger hold/commit — the per-payment work of every fig09-style
  // sweep. The state is restored between calls so each run performs the
  // exact same (successful) payment, warm-up included.
  SplitFixture f;
  ElephantConfig config;
  SplitWorkspace split_ws;
  ElephantProbeResult probe_buf;
  const NetworkState::Snapshot snap = f.state.snapshot();
  Transaction tx{11, 377, 0, 0};
  tx.amount = f.demand;
  expect_steady_state_alloc_free("route_elephant (LP split)", [&] {
    f.state.restore(snap);
    const RouteResult r = route_elephant(f.g, tx, f.state, f.fees, config,
                                         f.scratch, probe_buf, split_ws);
    EXPECT_TRUE(r.success);
  });
}

TEST(AllocationFree, RouteElephantSequentialFallbackPath) {
  // Fig. 9's "w/o optimization" configuration (sequential fill) through
  // the same full pipeline.
  SplitFixture f;
  ElephantConfig config;
  config.optimize_fees = false;
  SplitWorkspace split_ws;
  ElephantProbeResult probe_buf;
  const NetworkState::Snapshot snap = f.state.snapshot();
  Transaction tx{11, 377, 0, 0};
  tx.amount = f.demand;
  expect_steady_state_alloc_free("route_elephant (sequential)", [&] {
    f.state.restore(snap);
    const RouteResult r = route_elephant(f.g, tx, f.state, f.fees, config,
                                         f.scratch, probe_buf, split_ws);
    EXPECT_TRUE(r.success);
  });
}

// --- Incremental maintenance patch path -----------------------------------
//
// The scenario engine's steady-state reaction to a gossip view bump is:
// flip mask bits for the delta, apply_topology_delta on the router, reseed,
// route. None of that may allocate once warm — otherwise patching would
// re-introduce the per-view-change heap traffic the incremental mode
// exists to remove.

TEST(AllocationFree, ShortestPathPatchAndRouteSteadyState) {
  const Graph& g = test_graph();
  FeeSchedule fees(g);
  NetworkState state{g};
  Rng rng(33);
  state.assign_lognormal_split(1e6, 1.0, rng);

  ShortestPathRouter router(g, fees);
  std::vector<unsigned char> mask(g.num_edges(), 1);
  router.set_open_mask(mask.data());

  // Adjacent endpoints: the cached path is the single direct edge, so any
  // OTHER channel can churn without touching it — the lazy invalidation
  // scan must keep the entry and route must stay a cache hit.
  const NodeId s = 3;
  const EdgeId direct = g.out_edges(s)[0];
  const NodeId t = g.to(direct);
  Transaction tx{s, t, 1.0, 0};
  const EdgeId churned = (g.channel_of(direct) == 0)
                             ? g.channel_forward_edge(1)
                             : g.channel_forward_edge(0);
  const EdgeId delta[] = {churned};

  expect_steady_state_alloc_free("SP view bump -> patch -> route", [&] {
    mask[churned] = 0;
    mask[g.reverse(churned)] = 0;
    router.apply_topology_delta(delta, {}, /*strict=*/false);
    mask[churned] = 1;
    mask[g.reverse(churned)] = 1;
    router.apply_topology_delta({}, delta, /*strict=*/false);
    router.reseed(42);
    router.route(tx, state);
  });
}

TEST(AllocationFree, FlashMicePatchAndRouteSteadyState) {
  // The same cycle through FlashRouter's mice table: lazy invalidation
  // scans the Yen entries (the churned channel is on none of the cached
  // paths), the lookup stays a hit, and the masked send pipeline reuses
  // its scratch.
  const Graph& g = test_graph();
  NetworkState state{g};
  Rng rng(27);
  state.assign_lognormal_split(1e6, 1.0, rng);
  const FeeSchedule fees = FeeSchedule::paper_default(g, rng);

  FlashConfig config;
  config.elephant_threshold = 1e5;  // everything below is a mouse
  FlashRouter router(g, fees, config);
  std::vector<unsigned char> mask(g.num_edges(), 1);
  router.set_open_mask(mask.data());

  const NodeId s = 3;
  const EdgeId direct = g.out_edges(s)[0];
  const NodeId t = g.to(direct);
  Transaction tx{s, t, 2.0, 0};
  const EdgeId churned = (g.channel_of(direct) == 0)
                             ? g.channel_forward_edge(1)
                             : g.channel_forward_edge(0);
  const EdgeId delta[] = {churned};

  // Drop the mask bits BEFORE warm-up so the cached Yen paths provably
  // avoid the churned channel (masked search never admits it); every
  // steady-state invalidation scan then keeps the entry.
  mask[churned] = 0;
  mask[g.reverse(churned)] = 0;
  router.route(tx, state);

  expect_steady_state_alloc_free("Flash mice view bump -> patch -> route",
                                 [&] {
    mask[churned] = 1;
    mask[g.reverse(churned)] = 1;
    router.apply_topology_delta({}, delta, /*strict=*/false);
    mask[churned] = 0;
    mask[g.reverse(churned)] = 0;
    router.apply_topology_delta(delta, {}, /*strict=*/false);
    router.reseed(42);
    router.route(tx, state);
  });
}

TEST(AllocationFree, EdmondsKarpCore) {
  const Graph& g = test_graph();
  GraphScratch scratch;
  MaxFlowResult result;
  std::vector<Amount> cap(g.num_edges());
  Rng rng(9);
  for (auto& c : cap) c = rng.uniform(0.0, 40.0);
  struct CapFn {
    const std::vector<Amount>* cap;
    Amount operator()(EdgeId e) const { return (*cap)[e]; }
  };
  expect_steady_state_alloc_free("edmonds_karp_core", [&] {
    edmonds_karp_core(g, 9, 320, CapFn{&cap}, -1, 20, scratch, result);
  });
}

}  // namespace
}  // namespace flash

// Cross-module integration tests: the full pipeline from workload
// generation through routing to metrics, exercising the paper's headline
// comparisons in miniature, plus simulator-vs-testbed consistency.
#include <gtest/gtest.h>

#include "core/flash.h"
#include "testbed/runner.h"

namespace flash {
namespace {

TEST(Integration, QuickstartFlow) {
  // The README quickstart, as a test: build a network, route one payment.
  Rng rng(42);
  Graph g = watts_strogatz(50, 8, 0.3, rng);
  NetworkState state(g);
  state.assign_uniform_split(1000, 1500, rng);
  FeeSchedule fees = FeeSchedule::paper_default(g, rng);

  FlashConfig config;
  config.elephant_threshold = 500;
  FlashRouter router(g, fees, config);

  const Transaction tx{0, 7, 123.0, 0};
  const RouteResult r = router.route(tx, state);
  EXPECT_TRUE(r.success);
  EXPECT_DOUBLE_EQ(r.delivered, 123.0);
  EXPECT_TRUE(state.check_invariants());
}

TEST(Integration, AllSchemesOnRippleLikeWorkload) {
  WorkloadConfig wc;
  wc.num_transactions = 150;
  wc.seed = 1;
  const Workload w = make_ripple_workload(wc);
  EXPECT_EQ(w.graph().num_nodes(), 1870u);
  for (Scheme scheme : all_schemes()) {
    const auto router = make_router(scheme, w, {}, 1);
    const SimResult r = run_simulation(w, *router, {10.0});
    EXPECT_EQ(r.transactions, 150u) << scheme_name(scheme);
    EXPECT_GT(r.successes, 0u) << scheme_name(scheme);
  }
}

TEST(Integration, FlashDominatesVolumeOnRippleLike) {
  // Figs. 6-7 in miniature: Flash's success volume clearly exceeds every
  // baseline's on the Ripple-like workload.
  WorkloadConfig wc;
  wc.num_transactions = 300;
  wc.seed = 2;
  const Workload w = make_ripple_workload(wc);
  double flash_vol = 0, best_baseline = 0;
  for (Scheme scheme : all_schemes()) {
    const auto router = make_router(scheme, w, {}, 2);
    const SimResult r = run_simulation(w, *router, {10.0});
    if (scheme == Scheme::kFlash) {
      flash_vol = r.volume_succeeded;
    } else {
      best_baseline = std::max(best_baseline, r.volume_succeeded);
    }
  }
  EXPECT_GT(flash_vol, 1.3 * best_baseline);
}

TEST(Integration, FlashAndSpiderLeadSuccessRatioAtLowCapacity) {
  // Fig. 6a at small scale: the dynamic schemes beat the static ones.
  WorkloadConfig wc;
  wc.num_transactions = 300;
  wc.seed = 3;
  const Workload w = make_ripple_workload(wc);
  double flash = 0, spider = 0, sm = 0, sp = 0;
  for (Scheme scheme : all_schemes()) {
    const auto router = make_router(scheme, w, {}, 3);
    const double ratio = run_simulation(w, *router, {1.0}).success_ratio();
    switch (scheme) {
      case Scheme::kFlash:
        flash = ratio;
        break;
      case Scheme::kSpider:
        spider = ratio;
        break;
      case Scheme::kSpeedyMurmurs:
        sm = ratio;
        break;
      case Scheme::kShortestPath:
        sp = ratio;
        break;
    }
  }
  EXPECT_GT(flash + 0.02, std::max(sm, sp));
  EXPECT_GT(spider + 0.02, std::max(sm, sp));
}

TEST(Integration, FeeOptimizationReducesUnitFee) {
  // Fig. 9 in miniature.
  WorkloadConfig wc;
  wc.num_transactions = 200;
  wc.seed = 4;
  const Workload w = make_ripple_workload(wc);
  FlashOptions with;
  FlashOptions without;
  without.optimize_fees = false;
  const auto r_with =
      run_simulation(w, *make_router(Scheme::kFlash, w, with, 4), {10.0});
  const auto r_without =
      run_simulation(w, *make_router(Scheme::kFlash, w, without, 4), {10.0});
  if (r_with.volume_succeeded > 0 && r_without.volume_succeeded > 0) {
    EXPECT_LE(r_with.fee_ratio(), r_without.fee_ratio() * 1.05);
  }
}

TEST(Integration, TraceRoundTripThroughSimulator) {
  // Persist a workload trace, reload it, and verify the reloaded stream
  // drives the simulator to identical results.
  const Workload w = make_toy_workload(30, 120, 5);
  std::stringstream ss;
  write_trace(ss, w.transactions());
  const auto txs = read_trace(ss);
  ASSERT_EQ(txs.size(), w.transactions().size());

  const auto r1 = make_router(Scheme::kShortestPath, w, {}, 5);
  const SimResult a = run_simulation(w, *r1, {2.0});

  NetworkState state = w.make_state(2.0);
  const auto r2 = make_router(Scheme::kShortestPath, w, {}, 5);
  std::size_t successes = 0;
  for (const auto& tx : txs) successes += r2->route(tx, state).success;
  EXPECT_EQ(successes, a.successes);
}

TEST(Integration, TestbedAndSimulatorAgreeOnDirection) {
  // The message-level testbed and the ledger simulator are two
  // implementations of the same algorithms; on the same workload their
  // volume ordering (Flash > SP) must agree.
  testbed::TestbedConfig tc;
  tc.nodes = 30;
  tc.num_transactions = 400;
  tc.seed = 6;
  tc.scheme = testbed::TestbedScheme::kFlash;
  const auto flash_tb = testbed::run_testbed(tc);
  tc.scheme = testbed::TestbedScheme::kShortestPath;
  const auto sp_tb = testbed::run_testbed(tc);
  EXPECT_GT(flash_tb.volume_succeeded, sp_tb.volume_succeeded);

  WorkloadConfig wc;
  wc.num_transactions = 400;
  wc.seed = 6;
  const Workload w = make_testbed_workload(30, 1000, 1500, wc);
  const auto flash_sim =
      run_simulation(w, *make_router(Scheme::kFlash, w, {}, 6));
  const auto sp_sim =
      run_simulation(w, *make_router(Scheme::kShortestPath, w, {}, 6));
  EXPECT_GT(flash_sim.volume_succeeded, sp_sim.volume_succeeded);
}

TEST(Integration, GraphRoundTripPreservesRouting) {
  // Save/load the topology and confirm routing still works on the loaded
  // copy (the artifact-release usage pattern).
  Rng rng(7);
  Graph g = watts_strogatz(30, 6, 0.2, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  NetworkState state(h);
  state.assign_uniform_split(100, 200, rng);
  FeeSchedule fees = FeeSchedule::paper_default(h, rng);
  FlashConfig config;
  config.elephant_threshold = 1e9;
  FlashRouter router(h, fees, config);
  const RouteResult r = router.route({0, 15, 3.0, 0}, state);
  EXPECT_TRUE(r.success);
}

}  // namespace
}  // namespace flash

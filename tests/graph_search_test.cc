// Tests for BFS, Dijkstra, Yen's k-shortest-paths and edge-disjoint paths.
#include <gtest/gtest.h>

#include <set>

#include "graph/bfs.h"
#include "graph/dijkstra.h"
#include "graph/edge_disjoint.h"
#include "graph/topology.h"
#include "graph/yen.h"
#include "testutil.h"

namespace flash {
namespace {

using testing::make_graph;

// --- BFS ---------------------------------------------------------------------

TEST(Bfs, FindsFewestHops) {
  // 0-1-2-3 line plus shortcut 0-3.
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  const Path p = bfs_path(g, 0, 3);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(g.to(p[0]), 3u);
}

TEST(Bfs, EmptyWhenUnreachable) {
  Graph g(4);
  g.add_channel(0, 1);
  g.add_channel(2, 3);
  EXPECT_TRUE(bfs_path(g, 0, 3).empty());
  EXPECT_FALSE(reachable(g, 0, 3));
  EXPECT_TRUE(reachable(g, 0, 1));
}

TEST(Bfs, SourceEqualsTarget) {
  Graph g = make_graph(2, {{0, 1}});
  EXPECT_TRUE(bfs_path(g, 0, 0).empty());
  EXPECT_TRUE(reachable(g, 0, 0));
}

TEST(Bfs, FilterExcludesEdges) {
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  // Ban the shortcut's forward edge; path must go the long way.
  const EdgeId shortcut = g.channel_forward_edge(3);
  const Path p =
      bfs_path(g, 0, 3, [&](EdgeId e) { return e != shortcut; });
  EXPECT_EQ(p.size(), 3u);
}

TEST(Bfs, FilterCanDisconnect) {
  Graph g = make_graph(2, {{0, 1}});
  const Path p = bfs_path(g, 0, 1, [](EdgeId) { return false; });
  EXPECT_TRUE(p.empty());
}

TEST(Bfs, DistancesOnRing) {
  Graph g = ring_graph(6);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[3], 3u);
  EXPECT_EQ(d[5], 1u);  // ring wraps
}

TEST(Bfs, DistancesUnreachable) {
  Graph g(3);
  g.add_channel(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Bfs, TreeParentsConsistent) {
  Graph g = line_graph(5);
  const auto parents = bfs_tree(g, 0);
  EXPECT_EQ(parents[0], kInvalidEdge);
  for (NodeId v = 1; v < 5; ++v) {
    ASSERT_NE(parents[v], kInvalidEdge);
    EXPECT_EQ(g.to(parents[v]), v);
  }
}

// --- Dijkstra ------------------------------------------------------------------

TEST(Dijkstra, UnitWeightsMatchBfsLength) {
  Rng rng(7);
  Graph g = watts_strogatz(40, 6, 0.2, rng);
  for (NodeId t = 1; t < 10; ++t) {
    const Path b = bfs_path(g, 0, t);
    const DijkstraResult d = dijkstra(g, 0, t);
    EXPECT_EQ(d.found, !b.empty() || t == 0);
    if (d.found) {
      EXPECT_EQ(d.path.size(), b.size());
    }
  }
}

TEST(Dijkstra, PrefersCheapDetour) {
  // 0->1 weight 10; 0->2->1 weight 1+1.
  Graph g = make_graph(3, {{0, 1}, {0, 2}, {2, 1}});
  const EdgeWeight w = [&](EdgeId e) {
    return g.channel_of(e) == 0 ? 10.0 : 1.0;
  };
  const DijkstraResult d = dijkstra(g, 0, 1, w);
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.path.size(), 2u);
  EXPECT_DOUBLE_EQ(d.distance, 2.0);
}

TEST(Dijkstra, BannedEdgeWeightExcludes) {
  Graph g = make_graph(2, {{0, 1}});
  const DijkstraResult d =
      dijkstra(g, 0, 1, [](EdgeId) { return kEdgeBanned; });
  EXPECT_FALSE(d.found);
}

TEST(Dijkstra, BannedNodesExcludeInterior) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  std::vector<char> banned(4, 0);
  banned[1] = 1;
  const DijkstraResult d = dijkstra(g, 0, 3, {}, banned);
  ASSERT_TRUE(d.found);
  // Must route around node 1 through node 2.
  EXPECT_EQ(g.to(d.path[0]), 2u);
}

TEST(Dijkstra, BannedEndpointFails) {
  Graph g = make_graph(2, {{0, 1}});
  std::vector<char> banned(2, 0);
  banned[1] = 1;
  EXPECT_FALSE(dijkstra(g, 0, 1, {}, banned).found);
}

TEST(Dijkstra, SourceEqualsTargetFoundWithZeroDistance) {
  Graph g = make_graph(2, {{0, 1}});
  const DijkstraResult d = dijkstra(g, 0, 0);
  EXPECT_TRUE(d.found);
  EXPECT_DOUBLE_EQ(d.distance, 0.0);
  EXPECT_TRUE(d.path.empty());
}

TEST(Dijkstra, DistancesAll) {
  Graph g = line_graph(4);
  const auto d = dijkstra_distances(g, 0);
  EXPECT_DOUBLE_EQ(d[3], 3.0);
}

// --- Yen -----------------------------------------------------------------------

TEST(Yen, FindsDistinctLooplessPathsInOrder) {
  // Diamond: 0-1-3, 0-2-3, plus direct 0-3.
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 3}});
  const auto paths = yen_k_shortest_paths(g, 0, 3, 5);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].size(), 1u);  // direct
  EXPECT_EQ(paths[1].size(), 2u);
  EXPECT_EQ(paths[2].size(), 2u);
  std::set<Path> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(Yen, RespectsK) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 3}});
  EXPECT_EQ(yen_k_shortest_paths(g, 0, 3, 2).size(), 2u);
  EXPECT_TRUE(yen_k_shortest_paths(g, 0, 3, 0).empty());
}

TEST(Yen, PathsAreLoopless) {
  Rng rng(11);
  Graph g = watts_strogatz(30, 4, 0.3, rng);
  const auto paths = yen_k_shortest_paths(g, 0, 15, 8);
  for (const Path& p : paths) {
    const auto nodes = g.path_nodes(p, 0);
    const std::set<NodeId> unique(nodes.begin(), nodes.end());
    EXPECT_EQ(unique.size(), nodes.size()) << "loop in path";
  }
}

TEST(Yen, NondecreasingCost) {
  Rng rng(13);
  Graph g = watts_strogatz(30, 4, 0.3, rng);
  const auto paths = yen_k_shortest_paths(g, 2, 20, 10);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].size(), paths[i].size());
  }
}

TEST(Yen, UnreachableGivesEmpty) {
  Graph g(3);
  g.add_channel(0, 1);
  EXPECT_TRUE(yen_k_shortest_paths(g, 0, 2, 3).empty());
}

TEST(Yen, FirstPathMatchesDijkstra) {
  Rng rng(17);
  Graph g = watts_strogatz(25, 4, 0.2, rng);
  const auto paths = yen_k_shortest_paths(g, 1, 12, 1);
  const DijkstraResult d = dijkstra(g, 1, 12);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), d.path.size());
}

// --- Edge-disjoint ----------------------------------------------------------------

TEST(EdgeDisjoint, PathsShareNoDirectedEdges) {
  Rng rng(19);
  Graph g = watts_strogatz(40, 8, 0.2, rng);
  const auto paths = edge_disjoint_shortest_paths(g, 0, 20, 4);
  std::set<EdgeId> used;
  for (const Path& p : paths) {
    for (EdgeId e : p) {
      EXPECT_TRUE(used.insert(e).second) << "edge reused across paths";
    }
  }
}

TEST(EdgeDisjoint, DiamondYieldsTwo) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  const auto paths = edge_disjoint_shortest_paths(g, 0, 3, 4);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(EdgeDisjoint, LimitedByCut) {
  // Single bridge 1-2: at most one disjoint path can cross it.
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto paths = edge_disjoint_shortest_paths(g, 0, 3, 4);
  EXPECT_EQ(paths.size(), 1u);
}

TEST(EdgeDisjoint, FirstIsShortest) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 3}});
  const auto paths = edge_disjoint_shortest_paths(g, 0, 3, 3);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths[0].size(), 1u);
}

}  // namespace
}  // namespace flash

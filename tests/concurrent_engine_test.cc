// Tests for the concurrent payment engine (sim/concurrent.cc).
//
// Replay mode's contract is exact: for any worker count, the run is
// bit-identical — payment digest and every semantic counter — to the
// sequential engine with payment_indexed_rng on (its equality oracle).
// The suite fuzzes that claim across all four schemes, churn on/off,
// sender-router cache bounds, and worker counts {1, 2, 8}, plus a
// rebalance-drift case. Free-order promises less (conservation and
// workers==1 determinism) and is tested to exactly that.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/scenario.h"
#include "testutil.h"
#include "trace/workload.h"

namespace flash {
namespace {

using flash::testing::expect_identical;

ScenarioConfig with_execution(const ScenarioConfig& base,
                              ScenarioExecution mode, std::size_t workers) {
  ScenarioConfig cfg = base;
  cfg.concurrency.execution = mode;
  cfg.concurrency.workers = workers;
  return cfg;
}

/// The replay equality oracle: the sequential engine with payment-indexed
/// rng on (replay forces that knob, so plain sequential differs by design).
ScenarioResult run_oracle(const Workload& w, Scheme scheme,
                          const ScenarioConfig& base, std::uint64_t seed) {
  ScenarioConfig cfg = base;
  cfg.payment_indexed_rng = true;
  return run_scenario(w, scheme, {}, {}, cfg, seed);
}

void expect_replay_identical(const ScenarioResult& got,
                             const ScenarioResult& oracle) {
  expect_identical(got.sim, oracle.sim);
  EXPECT_EQ(got.payment_digest, oracle.payment_digest);
  EXPECT_EQ(got.channels_closed, oracle.channels_closed);
  EXPECT_EQ(got.channels_reopened, oracle.channels_reopened);
  EXPECT_EQ(got.rebalance_events, oracle.rebalance_events);
  EXPECT_EQ(got.gossip_messages, oracle.gossip_messages);
  EXPECT_EQ(got.router_rebuilds, oracle.router_rebuilds);
  EXPECT_EQ(got.duration, oracle.duration);
}

TEST(ConcurrentReplay, BitIdenticalToSequentialOracleAllSchemes) {
  const Workload w = make_toy_workload(30, 250, 3);
  const ScenarioConfig base;  // zero dynamics
  for (const Scheme scheme : all_schemes()) {
    const ScenarioResult oracle = run_oracle(w, scheme, base, 7);
    for (const std::size_t workers : {1u, 2u, 8u}) {
      const ScenarioResult got = run_scenario(
          w, scheme, {}, {},
          with_execution(base, ScenarioExecution::kReplay, workers), 7);
      expect_replay_identical(got, oracle);
      EXPECT_EQ(got.workers_used, workers);
      // Zero dynamics: every payment should be consumed from speculation
      // or inline-rerouted; the two must cover all route attempts.
      EXPECT_EQ(got.spec_accepted + got.spec_rerouted,
                got.sim.transactions + got.sim.retries);
    }
  }
}

TEST(ConcurrentReplay, BitIdenticalUnderChurnFuzzGrid) {
  // The hard grid: churn + gossip staleness mean speculations go stale
  // and the per-sender stale-view machinery takes over mid-run. Replay
  // speculation only covers the pristine era, but the handoff (quiesce,
  // abandoned frames, preread stream continuation) must be seamless.
  const Workload w = make_toy_workload(30, 300, 5);
  for (const Scheme scheme : {Scheme::kFlash, Scheme::kShortestPath,
                              Scheme::kSpider, Scheme::kSpeedyMurmurs}) {
    for (const std::size_t cache_bound : {0u, 2u}) {
      ScenarioConfig base;
      base.churn.close_rate = 0.08;
      base.churn.mean_downtime = 40;
      base.gossip.hop_delay = 3;
      base.retry.max_retries = 1;
      base.max_sender_routers = cache_bound;
      const ScenarioResult oracle = run_oracle(w, scheme, base, 13);
      for (const std::size_t workers : {1u, 2u, 8u}) {
        const ScenarioResult got = run_scenario(
            w, scheme, {}, {},
            with_execution(base, ScenarioExecution::kReplay, workers), 13);
        expect_replay_identical(got, oracle);
      }
    }
  }
}

TEST(ConcurrentReplay, BitIdenticalAcrossRebalanceDrift) {
  // Rebalancing rewrites the whole ledger mid-run while speculation stays
  // live (non-permanent quiesce + full-edge republish). Every speculation
  // spanning the drift must be detected stale and re-routed.
  const Workload w = make_toy_workload(25, 250, 9);
  ScenarioConfig base;
  base.rebalance.interval = 25;
  base.rebalance.strength = 0.5;
  base.retry.max_retries = 1;
  for (const Scheme scheme : {Scheme::kFlash, Scheme::kSpider}) {
    const ScenarioResult oracle = run_oracle(w, scheme, base, 17);
    for (const std::size_t workers : {1u, 2u, 8u}) {
      const ScenarioResult got = run_scenario(
          w, scheme, {}, {},
          with_execution(base, ScenarioExecution::kReplay, workers), 17);
      expect_replay_identical(got, oracle);
      EXPECT_GT(got.rebalance_events, 0u);
    }
  }
}

TEST(ConcurrentReplay, SpeculationActuallyAccepts) {
  // The pipeline must not degrade into rerouting everything inline: on a
  // zero-dynamics run, payments from senders whose shard has no conflicting
  // traffic should overwhelmingly consume their speculation.
  const Workload w = make_toy_workload(30, 250, 3);
  const ScenarioResult got = run_scenario(
      w, Scheme::kShortestPath, {}, {},
      with_execution({}, ScenarioExecution::kReplay, 2), 7);
  EXPECT_GT(got.spec_accepted, got.spec_rerouted);
}

TEST(ConcurrentReplay, LatencyHistogramCoversEveryPayment) {
  const Workload w = make_toy_workload(20, 150, 4);
  const ScenarioResult got = run_scenario(
      w, Scheme::kFlash, {}, {},
      with_execution({}, ScenarioExecution::kReplay, 2), 5);
  EXPECT_EQ(got.latency.count, got.sim.transactions);
  EXPECT_LE(got.latency.p50_seconds, got.latency.p99_seconds);
  // p50/p99 come from a log histogram (8 bins per decade) that
  // interpolates within a bin, so a quantile may legitimately land up to
  // one bin ratio (10^(1/8) ~= 1.334) above the exact maximum.
  EXPECT_LE(got.latency.p99_seconds, got.latency.max_seconds * 1.34);
  EXPECT_GT(got.latency.mean_seconds, 0.0);
}

TEST(ConcurrentSequential, LatencyAlsoRecordedInSequentialMode) {
  const Workload w = make_toy_workload(20, 150, 4);
  const ScenarioResult got = run_scenario(w, Scheme::kFlash, {}, {}, {}, 5);
  EXPECT_EQ(got.latency.count, got.sim.transactions);
  EXPECT_EQ(got.workers_used, 1u);
  EXPECT_EQ(got.spec_accepted, 0u);
  EXPECT_EQ(got.spec_rerouted, 0u);
}

TEST(ConcurrentFreeOrder, ConservesChannelTotalsAllSchemes) {
  const Workload w = make_toy_workload(30, 250, 3);
  for (const Scheme scheme : all_schemes()) {
    for (const std::size_t workers : {1u, 2u, 8u}) {
      ScenarioConfig cfg =
          with_execution({}, ScenarioExecution::kFreeOrder, workers);
      cfg.concurrency.stripes = 16;
      // run_free_order throws on any conservation violation or leaked
      // hold, so completing IS the invariant check; sanity-check totals.
      const ScenarioResult got = run_scenario(w, scheme, {}, {}, cfg, 7);
      EXPECT_EQ(got.sim.transactions, 250u);
      EXPECT_GT(got.sim.successes, 0u);
      EXPECT_EQ(got.workers_used, workers);
    }
  }
}

TEST(ConcurrentFreeOrder, SingleWorkerIsDeterministic) {
  const Workload w = make_toy_workload(30, 250, 3);
  const ScenarioConfig cfg =
      with_execution({}, ScenarioExecution::kFreeOrder, 1);
  const ScenarioResult a = run_scenario(w, Scheme::kFlash, {}, {}, cfg, 7);
  const ScenarioResult b = run_scenario(w, Scheme::kFlash, {}, {}, cfg, 7);
  expect_identical(a.sim, b.sim);
  EXPECT_EQ(a.payment_digest, b.payment_digest);
}

TEST(ConcurrentFreeOrder, SingleWorkerMatchesSequentialSuccessesClosely) {
  // Not an exact-equality contract (commit-time revalidation can clamp),
  // but a 1-worker free-order run routes the same sender-ordered stream
  // with the same pinned rng, so its success count should be in the same
  // ballpark as the oracle's.
  const Workload w = make_toy_workload(30, 250, 3);
  const ScenarioResult oracle = run_oracle(w, Scheme::kShortestPath, {}, 7);
  const ScenarioResult got = run_scenario(
      w, Scheme::kShortestPath, {}, {},
      with_execution({}, ScenarioExecution::kFreeOrder, 1), 7);
  EXPECT_EQ(got.sim.transactions, oracle.sim.transactions);
  const double lo = 0.8 * static_cast<double>(oracle.sim.successes);
  const double hi = 1.2 * static_cast<double>(oracle.sim.successes) + 5;
  EXPECT_GE(static_cast<double>(got.sim.successes), lo);
  EXPECT_LE(static_cast<double>(got.sim.successes), hi);
}

TEST(ConcurrentFreeOrder, RejectsDynamicConfigs) {
  const Workload w = make_toy_workload(10, 20, 1);
  ScenarioConfig churny = with_execution({}, ScenarioExecution::kFreeOrder, 2);
  churny.churn.close_rate = 0.1;
  EXPECT_THROW(run_scenario(w, Scheme::kFlash, {}, {}, churny, 1),
               std::invalid_argument);
  ScenarioConfig retrying =
      with_execution({}, ScenarioExecution::kFreeOrder, 2);
  retrying.retry.max_retries = 1;
  EXPECT_THROW(run_scenario(w, Scheme::kFlash, {}, {}, retrying, 1),
               std::invalid_argument);
  ScenarioConfig rebal = with_execution({}, ScenarioExecution::kFreeOrder, 2);
  rebal.rebalance.interval = 10;
  EXPECT_THROW(run_scenario(w, Scheme::kFlash, {}, {}, rebal, 1),
               std::invalid_argument);
  ScenarioConfig nostripes =
      with_execution({}, ScenarioExecution::kFreeOrder, 2);
  nostripes.concurrency.stripes = 0;
  EXPECT_THROW(run_scenario(w, Scheme::kFlash, {}, {}, nostripes, 1),
               std::invalid_argument);
}

TEST(ConcurrentSequential, PaymentIndexedRngIsDeterministic) {
  // The knob replay forces must itself be a well-behaved sequential mode:
  // deterministic, and structurally equal to the default stream apart
  // from rng draws.
  const Workload w = make_toy_workload(30, 250, 3);
  ScenarioConfig cfg;
  cfg.payment_indexed_rng = true;
  const ScenarioResult a = run_scenario(w, Scheme::kFlash, {}, {}, cfg, 7);
  const ScenarioResult b = run_scenario(w, Scheme::kFlash, {}, {}, cfg, 7);
  expect_identical(a.sim, b.sim);
  EXPECT_EQ(a.payment_digest, b.payment_digest);
  const ScenarioResult plain = run_scenario(w, Scheme::kFlash, {}, {}, {}, 7);
  EXPECT_EQ(a.sim.transactions, plain.sim.transactions);
}

}  // namespace
}  // namespace flash

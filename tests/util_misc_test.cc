// Tests for CSV, histogram, table and string utilities.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/histogram.h"
#include "util/strings.h"
#include "util/table.h"

namespace flash {
namespace {

// --- CSV -------------------------------------------------------------------

TEST(Csv, WriterBasicRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("a").field(1.5).field(std::int64_t{-2});
  w.end_row();
  EXPECT_EQ(os.str(), "a,1.5,-2\n");
}

TEST(Csv, WriterQuotesSpecials) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("he,llo").field("qu\"ote").field("multi\nline");
  w.end_row();
  EXPECT_EQ(os.str(), "\"he,llo\",\"qu\"\"ote\",\"multi\nline\"\n");
}

TEST(Csv, ParseSimpleLine) {
  const auto f = parse_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(Csv, ParseQuotedWithEscapes) {
  const auto f = parse_csv_line("\"a,b\",\"x\"\"y\"");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "x\"y");
}

TEST(Csv, ParseEmptyFields) {
  const auto f = parse_csv_line(",,");
  ASSERT_EQ(f.size(), 3u);
  for (const auto& s : f) EXPECT_TRUE(s.empty());
}

TEST(Csv, RoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("x,1").field(2.25);
  w.end_row();
  w.field("y").field(3.5);
  w.end_row();
  std::istringstream is(os.str());
  const auto rows = read_csv(is);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "x,1");
  EXPECT_EQ(rows[1][1], "3.5");
}

TEST(Csv, ReadSkipsHeader) {
  std::istringstream is("h1,h2\n1,2\n");
  const auto rows = read_csv(is, /*skip_header=*/true);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "1");
}

TEST(Csv, ToleratesCrlf) {
  const auto f = parse_csv_line("a,b\r");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "b");
}

// --- Histogram ---------------------------------------------------------------

TEST(LogHistogram, BinsSpanDecades) {
  LogHistogram h(1.0, 1000.0, 1);
  EXPECT_EQ(h.bin_count(), 3u);
  EXPECT_NEAR(h.lower_edge(0), 1.0, 1e-9);
  EXPECT_NEAR(h.lower_edge(1), 10.0, 1e-9);
  EXPECT_NEAR(h.lower_edge(3), 1000.0, 1e-6);
}

TEST(LogHistogram, CountsLandInRightBins) {
  LogHistogram h(1.0, 1000.0, 1);
  h.add(2.0);    // bin 0
  h.add(20.0);   // bin 1
  h.add(200.0);  // bin 2
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(2), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LogHistogram, UnderOverflow) {
  LogHistogram h(1.0, 100.0, 2);
  h.add(0.5);
  h.add(-1.0);
  h.add(1e6);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LogHistogram, CdfMonotoneEndsAtOne) {
  LogHistogram h(0.01, 1e6, 4);
  for (double x : {0.5, 3.0, 100.0, 5000.0, 5000.0, 99999.0}) h.add(x);
  const auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  double prev = 0;
  for (const auto& [x, f] : cdf) {
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_NEAR(cdf.back().second, 1.0, 1e-12);
}

TEST(LogHistogram, WeightedAdd) {
  LogHistogram h(1.0, 100.0, 1);
  h.add(5.0, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.bin(0), 10u);
}

TEST(LogHistogram, RenderShowsNonEmptyBins) {
  LogHistogram h(1.0, 100.0, 1);
  h.add(5.0);
  const std::string r = h.render();
  EXPECT_NE(r.find('#'), std::string::npos);
}

TEST(LogHistogram, PercentileInterpolatesWithinBins) {
  LogHistogram h(1.0, 1000.0, 1);
  for (int i = 0; i < 100; ++i) h.add(5.0);  // all mass in bin [1, 10)
  const double p50 = h.percentile(0.50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 10.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.percentile(0.10), h.percentile(0.90));
}

TEST(LogHistogram, PercentileOrdersAcrossBins) {
  LogHistogram h(1.0, 1000.0, 1);
  for (int i = 0; i < 90; ++i) h.add(2.0);    // bin [1, 10)
  for (int i = 0; i < 10; ++i) h.add(500.0);  // bin [100, 1000)
  EXPECT_LT(h.percentile(0.50), 10.0);
  EXPECT_GT(h.percentile(0.95), 100.0);
}

TEST(LogHistogram, PercentileEdgeCases) {
  LogHistogram empty(1.0, 100.0, 1);
  EXPECT_EQ(empty.percentile(0.5), 0.0);
  LogHistogram under(1.0, 100.0, 1);
  under.add(0.01);  // underflow only
  EXPECT_LE(under.percentile(0.5), 1.0);
  LogHistogram over(1.0, 100.0, 1);
  over.add(1e9);  // overflow only
  EXPECT_GE(over.percentile(0.5), 100.0);
}

TEST(LogHistogram, MergeAddsCountsBinwise) {
  LogHistogram a(1.0, 1000.0, 1);
  LogHistogram b(1.0, 1000.0, 1);
  a.add(2.0);
  a.add(0.5);    // underflow
  b.add(200.0);
  b.add(1e6);    // overflow
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.bin(0), 1u);
  EXPECT_EQ(a.bin(2), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
}

TEST(LogHistogram, MergeRejectsMismatchedBinning) {
  LogHistogram a(1.0, 1000.0, 1);
  LogHistogram b(1.0, 1000.0, 2);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// --- Strings -----------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_TRUE(parts[1].empty());
  EXPECT_EQ(parts[2], "b");
  EXPECT_TRUE(parts[3].empty());
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ParseDoubleStrict) {
  EXPECT_EQ(parse_double("1.5"), 1.5);
  EXPECT_EQ(parse_double(" 2e3 "), 2000.0);
  EXPECT_FALSE(parse_double("1.5x"));
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("abc"));
}

TEST(Strings, ParseIntStrict) {
  EXPECT_EQ(parse_int("-42"), -42);
  EXPECT_FALSE(parse_int("42.5"));
  EXPECT_FALSE(parse_int("9999999999999999999999"));
}

TEST(Strings, ParseUintRejectsNegative) {
  EXPECT_EQ(parse_uint("7"), 7u);
  EXPECT_FALSE(parse_uint("-7"));
}

TEST(Strings, StartsWithAndLower) {
  EXPECT_TRUE(starts_with("flash", "fla"));
  EXPECT_FALSE(starts_with("fl", "fla"));
  EXPECT_EQ(to_lower("FlAsH"), "flash");
}

// --- Table ---------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  TextTable t;
  t.header({"name", "v"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.4256, 1), "42.6%");
  EXPECT_EQ(fmt_ratio(2.3, 1), "2.3x");
  EXPECT_NE(fmt_sci(1234567.0).find('e'), std::string::npos);
}

}  // namespace
}  // namespace flash

// Tests for classical Edmonds-Karp max flow (the oracle that Algorithm 1's
// probing variant is validated against).
#include "graph/maxflow.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "graph/topology.h"
#include "testutil.h"
#include "util/rng.h"

namespace flash {
namespace {

using testing::make_graph;

/// Capacity function from a per-channel (fwd, bwd) table.
EdgeCapacity caps_of(const Graph& g, std::vector<std::pair<Amount, Amount>> t) {
  return [&g, t = std::move(t)](EdgeId e) {
    const auto& [f, b] = t.at(g.channel_of(e));
    return (e & 1) == 0 ? f : b;
  };
}

TEST(MaxFlow, SingleEdge) {
  Graph g = make_graph(2, {{0, 1}});
  const auto r = edmonds_karp(g, 0, 1, caps_of(g, {{5, 3}}));
  EXPECT_DOUBLE_EQ(r.value, 5.0);
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_DOUBLE_EQ(r.path_amounts[0], 5.0);
}

TEST(MaxFlow, SeriesBottleneck) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  const auto r = edmonds_karp(g, 0, 2, caps_of(g, {{10, 0}, {4, 0}}));
  EXPECT_DOUBLE_EQ(r.value, 4.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  const auto r =
      edmonds_karp(g, 0, 3, caps_of(g, {{3, 0}, {3, 0}, {4, 0}, {4, 0}}));
  EXPECT_DOUBLE_EQ(r.value, 7.0);
  EXPECT_EQ(r.paths.size(), 2u);
}

TEST(MaxFlow, Figure5aSharedBottleneck) {
  // The paper's Fig. 5(a): two shortest paths share link 1->2 of capacity
  // 30; the third path 1-5-4-6 adds 30 more. Max flow = 60.
  //   nodes: 1..6 -> 0-indexed 0..5
  Graph g = make_graph(6, {{0, 1},   // 1-2 cap 30
                           {1, 2},   // 2-3 cap 30
                           {1, 3},   // 2-4 cap 30 (via the upper branch)
                           {2, 5},   // 3-6 cap 30
                           {3, 5},   // 4-6 cap 30
                           {0, 4},   // 1-5 cap 30
                           {4, 3}}); // 5-4 cap 30
  const auto cap = [](EdgeId e) { return (e & 1) == 0 ? 30.0 : 0.0; };
  const auto r = edmonds_karp(g, 0, 5, cap);
  EXPECT_DOUBLE_EQ(r.value, 60.0);
}

TEST(MaxFlow, Figure5bAbundantSharedLink) {
  // Fig. 5(b): shared link 1->2 has capacity 100, so the two paths through
  // it carry 60 total; edge-disjoint routing would cap at 50.
  Graph g = make_graph(6, {{0, 1},   // 1-2 cap 100
                           {1, 2},   // 2-3 cap 30
                           {1, 3},   // 2-4 cap 30
                           {2, 5},   // 3-6 cap 30
                           {3, 5},   // 4-6 cap 30
                           {0, 4},   // 1-5 cap 20
                           {4, 3}}); // 5-4 cap 20
  const auto cap = [&g](EdgeId e) -> Amount {
    if (e & 1) return 0.0;
    const std::size_t c = g.channel_of(e);
    if (c == 0) return 100.0;
    if (c >= 5) return 20.0;
    return 30.0;
  };
  const auto r = edmonds_karp(g, 0, 5, cap);
  // 30 + 30 through the hub, plus 20 via 1-5-4 merging into 4-6's
  // remaining... 4-6 carries min(30, 20+30-30)=... total is 80:
  // paths 1-2-3-6 (30), 1-2-4-6 (30), 1-5-4-6 (min(20,20,0 left on 4-6))
  // 4-6 already carries 30 of its 30 -> third path blocked. Max flow 60
  // through the hub + 0 = 60? No: EK finds 1-5-4-6 first only if shorter.
  // All s-t paths have 3 hops; EK explores in BFS order. The true max flow
  // is limited by the cut {3-6, 4-6} = 60.
  EXPECT_DOUBLE_EQ(r.value, 60.0);
}

TEST(MaxFlow, ZeroWhenSourceIsSink) {
  Graph g = make_graph(2, {{0, 1}});
  const auto r = edmonds_karp(g, 0, 0, caps_of(g, {{5, 5}}));
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(MaxFlow, ZeroWhenDisconnected) {
  Graph g(3);
  g.add_channel(0, 1);
  const auto r = edmonds_karp(g, 0, 2, [](EdgeId) { return 1.0; });
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_TRUE(r.paths.empty());
}

TEST(MaxFlow, LimitStopsEarly) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  const auto r = edmonds_karp(g, 0, 3,
                              caps_of(g, {{3, 0}, {3, 0}, {4, 0}, {4, 0}}),
                              /*limit=*/3.0);
  EXPECT_DOUBLE_EQ(r.value, 3.0);
  EXPECT_EQ(r.paths.size(), 1u);
}

TEST(MaxFlow, MaxPathsCapsIterations) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  const auto r = edmonds_karp(g, 0, 3,
                              caps_of(g, {{3, 0}, {3, 0}, {4, 0}, {4, 0}}),
                              /*limit=*/-1, /*max_paths=*/1);
  EXPECT_EQ(r.paths.size(), 1u);
  EXPECT_DOUBLE_EQ(r.value, 3.0);
}

TEST(MaxFlow, ReverseResidualsEnableRerouting) {
  // Classic example where the max flow requires canceling a greedy path.
  // 0->1 (1), 0->2 (1), 1->3 (1), 2->3 (1), 1->2 (1). Max flow 0->3 = 2.
  Graph g = make_graph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {1, 2}});
  const auto cap = [](EdgeId e) { return (e & 1) == 0 ? 1.0 : 0.0; };
  const auto r = edmonds_karp(g, 0, 3, cap);
  EXPECT_DOUBLE_EQ(r.value, 2.0);
}

TEST(MaxFlow, FlowConservationAtInteriorNodes) {
  Rng rng(23);
  Graph g = watts_strogatz(30, 6, 0.3, rng);
  std::vector<Amount> cap(g.num_edges());
  for (auto& c : cap) c = rng.uniform(0.0, 10.0);
  const auto r =
      edmonds_karp(g, 0, 17, [&](EdgeId e) { return cap[e]; });
  // Net flow out of every interior node is zero.
  std::vector<Amount> net(g.num_nodes(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    net[g.from(e)] += r.edge_flow[e];
    net[g.to(e)] -= r.edge_flow[e];
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == 0 || v == 17) continue;
    EXPECT_NEAR(net[v], 0.0, 1e-9);
  }
  EXPECT_NEAR(net[0], r.value, 1e-9);
  EXPECT_NEAR(net[17], -r.value, 1e-9);
}

TEST(MaxFlow, FlowRespectsCapacities) {
  Rng rng(29);
  Graph g = watts_strogatz(30, 6, 0.3, rng);
  std::vector<Amount> cap(g.num_edges());
  for (auto& c : cap) c = rng.uniform(0.0, 10.0);
  const auto r = edmonds_karp(g, 3, 21, [&](EdgeId e) { return cap[e]; });
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(r.edge_flow[e], cap[e] + 1e-9);
    EXPECT_GE(r.edge_flow[e], -1e-9);
  }
}

TEST(MaxFlow, PathDecompositionSumsToValue) {
  Rng rng(31);
  Graph g = watts_strogatz(25, 4, 0.2, rng);
  std::vector<Amount> cap(g.num_edges());
  for (auto& c : cap) c = rng.uniform(1.0, 5.0);
  const auto r = edmonds_karp(g, 1, 13, [&](EdgeId e) { return cap[e]; });
  Amount sum = 0;
  for (Amount a : r.path_amounts) sum += a;
  EXPECT_NEAR(sum, r.value, 1e-9);
  EXPECT_EQ(r.paths.size(), r.path_amounts.size());
}

}  // namespace
}  // namespace flash

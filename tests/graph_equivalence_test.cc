// Equivalence suite for the allocation-free graph-algorithm core.
//
// The CSR + GraphScratch rewrite (PR 3) must not change any routing result
// bit. These tests pin that down by embedding the pre-refactor
// implementations verbatim as reference oracles and asserting bit-identical
// results (paths, float distances, probe counters, capacity matrices) on
// fixed-seed fig-scale topologies, plus scratch-reuse determinism: a
// workspace reused across queries behaves exactly like a fresh one.
#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <queue>
#include <set>

#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/dijkstra.h"
#include "graph/edge_disjoint.h"
#include "graph/maxflow.h"
#include "graph/scratch.h"
#include "graph/topology.h"
#include "graph/yen.h"
#include "ledger/htlc.h"
#include "ledger/network_state.h"
#include "routing/flash/elephant.h"
#include "routing/flash/flash_router.h"
#include "routing/flash/mice.h"
#include "testutil.h"
#include "util/rng.h"

namespace flash {
namespace {

// ---------------------------------------------------------------------------
// Reference implementations: the pre-refactor code, kept verbatim (modulo
// naming) so the rewrite has a fixed behavioral anchor.
// ---------------------------------------------------------------------------

struct RefQueueEntry {
  double dist;
  NodeId node;
  bool operator>(const RefQueueEntry& o) const { return dist > o.dist; }
};

DijkstraResult ref_dijkstra(const Graph& g, NodeId s, NodeId t,
                            const EdgeWeight& weight = {},
                            const std::vector<char>& banned_nodes = {}) {
  DijkstraResult result;
  if (!banned_nodes.empty() &&
      (banned_nodes[s] || (t != kInvalidNode && banned_nodes[t]))) {
    return result;
  }
  if (s == t) {
    result.found = true;
    result.distance = 0.0;
    return result;
  }
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_nodes(), inf);
  std::vector<EdgeId> parent(g.num_nodes(), kInvalidEdge);
  std::priority_queue<RefQueueEntry, std::vector<RefQueueEntry>,
                      std::greater<>>
      pq;
  dist[s] = 0.0;
  pq.push({0.0, s});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == t) break;
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.to(e);
      if (!banned_nodes.empty() && banned_nodes[v]) continue;
      const double w = weight ? weight(e) : 1.0;
      if (w == kEdgeBanned) continue;
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        parent[v] = e;
        pq.push({nd, v});
      }
    }
  }
  if (dist[t] == inf) return result;
  result.found = true;
  result.distance = dist[t];
  NodeId cur = t;
  while (cur != s) {
    const EdgeId e = parent[cur];
    result.path.push_back(e);
    cur = g.from(e);
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

std::vector<EdgeId> ref_bfs_parents(const Graph& g, NodeId src, NodeId stop_at,
                                    const EdgeFilter& admit) {
  std::vector<EdgeId> parent(g.num_nodes(), kInvalidEdge);
  std::vector<char> seen(g.num_nodes(), 0);
  std::deque<NodeId> queue;
  seen[src] = 1;
  queue.push_back(src);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.to(e);
      if (seen[v]) continue;
      if (admit && !admit(e)) continue;
      seen[v] = 1;
      parent[v] = e;
      if (v == stop_at) return parent;
      queue.push_back(v);
    }
  }
  return parent;
}

Path ref_bfs_path(const Graph& g, NodeId s, NodeId t,
                  const EdgeFilter& admit = {}) {
  if (s == t) return {};
  const auto parent = ref_bfs_parents(g, s, t, admit);
  if (parent[t] == kInvalidEdge) return {};
  Path path;
  NodeId cur = t;
  while (cur != s) {
    const EdgeId e = parent[cur];
    path.push_back(e);
    cur = g.from(e);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double ref_path_cost(const Path& p, const EdgeWeight& weight) {
  if (!weight) return static_cast<double>(p.size());
  double c = 0.0;
  for (EdgeId e : p) c += weight(e);
  return c;
}

std::vector<Path> ref_yen(const Graph& g, NodeId s, NodeId t, std::size_t k,
                          const EdgeWeight& weight = {}) {
  std::vector<Path> result;
  if (k == 0 || s == t) return result;

  const DijkstraResult first = ref_dijkstra(g, s, t, weight);
  if (!first.found) return result;
  result.push_back(first.path);

  using Candidate = std::pair<double, Path>;
  std::set<Candidate> candidates;
  std::set<Path> known;
  known.insert(first.path);

  while (result.size() < k) {
    const Path& prev = result.back();
    const std::vector<NodeId> prev_nodes = g.path_nodes(prev, s);

    for (std::size_t i = 0; i + 1 < prev_nodes.size(); ++i) {
      const NodeId spur_node = prev_nodes[i];
      const Path root(prev.begin(), prev.begin() + static_cast<long>(i));

      std::set<EdgeId> banned_edges;
      for (const Path& known_path : result) {
        if (known_path.size() > i &&
            std::equal(root.begin(), root.end(), known_path.begin())) {
          banned_edges.insert(known_path[i]);
        }
      }
      std::vector<char> banned_nodes(g.num_nodes(), 0);
      for (std::size_t j = 0; j < i; ++j) banned_nodes[prev_nodes[j]] = 1;

      const EdgeWeight spur_weight = [&](EdgeId e) -> double {
        if (banned_edges.count(e)) return kEdgeBanned;
        return weight ? weight(e) : 1.0;
      };
      const DijkstraResult spur =
          ref_dijkstra(g, spur_node, t, spur_weight, banned_nodes);
      if (!spur.found) continue;

      Path total = root;
      total.insert(total.end(), spur.path.begin(), spur.path.end());
      if (known.insert(total).second) {
        candidates.emplace(ref_path_cost(total, weight), std::move(total));
      }
    }

    if (candidates.empty()) break;
    auto best = candidates.begin();
    result.push_back(best->second);
    candidates.erase(best);
  }
  return result;
}

std::vector<Path> ref_edge_disjoint(const Graph& g, NodeId s, NodeId t,
                                    std::size_t k) {
  std::vector<Path> paths;
  if (s == t) return paths;
  std::vector<char> used(g.num_edges(), 0);
  const EdgeFilter admit = [&](EdgeId e) { return !used[e]; };
  while (paths.size() < k) {
    Path p = ref_bfs_path(g, s, t, admit);
    if (p.empty()) break;
    for (EdgeId e : p) used[e] = 1;
    paths.push_back(std::move(p));
  }
  return paths;
}

MaxFlowResult ref_edmonds_karp(const Graph& g, NodeId s, NodeId t,
                               const EdgeCapacity& capacity, Amount limit = -1,
                               std::size_t max_paths = 0) {
  MaxFlowResult result;
  result.edge_flow.assign(g.num_edges(), 0);
  if (s == t) return result;

  std::vector<Amount> residual(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) residual[e] = capacity(e);

  constexpr Amount kEps = 1e-12;
  while (max_paths == 0 || result.paths.size() < max_paths) {
    if (limit >= 0 && result.value >= limit) break;
    std::vector<EdgeId> parent(g.num_nodes(), kInvalidEdge);
    std::vector<char> seen(g.num_nodes(), 0);
    std::deque<NodeId> queue;
    seen[s] = 1;
    queue.push_back(s);
    bool found = false;
    while (!queue.empty() && !found) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (EdgeId e : g.out_edges(u)) {
        const NodeId v = g.to(e);
        if (seen[v] || residual[e] <= kEps) continue;
        seen[v] = 1;
        parent[v] = e;
        if (v == t) {
          found = true;
          break;
        }
        queue.push_back(v);
      }
    }
    if (!found) break;

    Path path;
    Amount bottleneck = std::numeric_limits<Amount>::max();
    for (NodeId cur = t; cur != s; cur = g.from(parent[cur])) {
      const EdgeId e = parent[cur];
      path.push_back(e);
      bottleneck = std::min(bottleneck, residual[e]);
    }
    std::reverse(path.begin(), path.end());
    if (limit >= 0) bottleneck = std::min(bottleneck, limit - result.value);

    for (EdgeId e : path) {
      residual[e] -= bottleneck;
      residual[g.reverse(e)] += bottleneck;
      result.edge_flow[e] += bottleneck;
    }
    result.value += bottleneck;
    result.paths.push_back(std::move(path));
    result.path_amounts.push_back(bottleneck);
  }

  for (EdgeId e = 0; e < g.num_edges(); e += 2) {
    const EdgeId r = g.reverse(e);
    const Amount net = result.edge_flow[e] - result.edge_flow[r];
    result.edge_flow[e] = std::max<Amount>(net, 0);
    result.edge_flow[r] = std::max<Amount>(-net, 0);
  }
  return result;
}

/// Pre-refactor elephant probing, with the probed capacity matrix kept as
/// a plain map plus an explicit first-probe insertion log — the reference
/// for both the matrix contents and the canonical constraint order the
/// flat ProbedCapacities must reproduce.
struct RefProbeResult {
  bool feasible = false;
  std::vector<Path> paths;
  std::vector<Amount> bottlenecks;
  CapacityMap capacities;
  std::vector<std::pair<EdgeId, Amount>> insertion_order;
  Amount max_flow = 0;
  std::uint32_t probes = 0;
};

RefProbeResult ref_elephant_find_paths(const Graph& g, NodeId s, NodeId t,
                                       Amount demand, std::size_t max_paths,
                                       NetworkState& state) {
  constexpr Amount kEps = 1e-9;
  RefProbeResult result;
  if (s == t || demand <= 0) return result;

  CapacityMap residual;
  auto residual_admits = [&](EdgeId e) {
    const auto it = residual.find(e);
    return it == residual.end() || it->second > kEps;
  };

  while (result.paths.size() < max_paths) {
    const Path p = ref_bfs_path(g, s, t, residual_admits);
    if (p.empty()) break;

    const std::vector<Amount> balances = state.probe_path(p);
    ++result.probes;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const EdgeId e = p[i];
      const EdgeId rev = g.reverse(e);
      if (!result.capacities.count(e)) {
        result.capacities[e] = balances[i];
        result.insertion_order.emplace_back(e, balances[i]);
        residual[e] = balances[i];
      }
      if (!result.capacities.count(rev)) {
        const Amount rev_balance = state.balance(rev);
        result.capacities[rev] = rev_balance;
        result.insertion_order.emplace_back(rev, rev_balance);
        residual[rev] = rev_balance;
      }
    }

    Amount bottleneck = std::numeric_limits<Amount>::max();
    for (EdgeId e : p) bottleneck = std::min(bottleneck, residual[e]);
    bottleneck = std::max<Amount>(bottleneck, 0);

    result.paths.push_back(p);
    result.bottlenecks.push_back(bottleneck);

    if (bottleneck > kEps) {
      result.max_flow += bottleneck;
      for (EdgeId e : p) {
        residual[e] -= bottleneck;
        residual[g.reverse(e)] += bottleneck;
      }
    }
  }

  result.feasible = result.max_flow + kEps >= demand;
  return result;
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

const Graph& medium_graph() {  // scale-free, ~fig-topology shape, smaller
  static const Graph g = [] {
    Rng rng(11);
    return scale_free(300, 1200, rng);
  }();
  return g;
}

const Graph& small_world_graph() {
  static const Graph g = [] {
    Rng rng(12);
    return watts_strogatz(120, 6, 0.2, rng);
  }();
  return g;
}

const Graph& ripple_graph() {  // the fig06/fig07 simulation topology
  static const Graph g = [] {
    Rng rng(1);
    return ripple_like(rng);
  }();
  return g;
}

/// Deterministic non-uniform weights (fee-rate-like) for weighted queries.
EdgeWeight fee_like_weight() { return testing::DeterministicFeeWeight{}; }

std::pair<NodeId, NodeId> random_pair(Rng& rng, const Graph& g) {
  return {static_cast<NodeId>(rng.next_below(g.num_nodes())),
          static_cast<NodeId>(rng.next_below(g.num_nodes()))};
}

void expect_same_paths(const std::vector<Path>& got,
                       const std::vector<Path>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "path " << i << " differs";
  }
}

// ---------------------------------------------------------------------------
// CSR adjacency
// ---------------------------------------------------------------------------

TEST(CsrEquivalence, FinalizePreservesAdjacencyOrder) {
  Rng rng(21);
  Graph g(80);
  for (int i = 0; i < 300; ++i) {
    const auto [u, v] = random_pair(rng, g);
    if (u != v) g.add_channel(u, v);
  }
  ASSERT_FALSE(g.finalized());
  std::vector<std::vector<EdgeId>> before;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto span = g.out_edges(u);
    before.emplace_back(span.begin(), span.end());
  }
  g.finalize();
  ASSERT_TRUE(g.finalized());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto span = g.out_edges(u);
    EXPECT_EQ(std::vector<EdgeId>(span.begin(), span.end()), before[u]);
  }
  // Mutation invalidates; re-finalize restores.
  const NodeId n = g.add_node();
  EXPECT_FALSE(g.finalized());
  g.add_channel(n, 0);
  g.finalize();
  EXPECT_EQ(g.out_edges(n).size(), 1u);
}

// ---------------------------------------------------------------------------
// Dijkstra
// ---------------------------------------------------------------------------

TEST(DijkstraEquivalence, UnitAndWeighted) {
  const Graph& g = medium_graph();
  const EdgeWeight w = fee_like_weight();
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const auto [s, t] = random_pair(rng, g);
    for (const EdgeWeight* weight : {(const EdgeWeight*)nullptr, &w}) {
      const EdgeWeight& wref = weight ? *weight : EdgeWeight{};
      const DijkstraResult want = ref_dijkstra(g, s, t, wref);
      const DijkstraResult got = dijkstra(g, s, t, wref);
      ASSERT_EQ(got.found, want.found) << "s=" << s << " t=" << t;
      EXPECT_EQ(got.path, want.path);
      // Bit-identical float: relaxations happen in the same order.
      EXPECT_EQ(got.distance, want.distance);
    }
  }
}

TEST(DijkstraEquivalence, BannedNodes) {
  const Graph& g = small_world_graph();
  Rng rng(32);
  for (int i = 0; i < 100; ++i) {
    const auto [s, t] = random_pair(rng, g);
    std::vector<char> banned(g.num_nodes(), 0);
    for (int b = 0; b < 12; ++b) {
      banned[rng.next_below(g.num_nodes())] = 1;
    }
    const DijkstraResult want = ref_dijkstra(g, s, t, {}, banned);
    const DijkstraResult got = dijkstra(g, s, t, {}, banned);
    ASSERT_EQ(got.found, want.found);
    EXPECT_EQ(got.path, want.path);
    EXPECT_EQ(got.distance, want.distance);
  }
}

TEST(DijkstraEquivalence, DistancesAllTargets) {
  const Graph& g = medium_graph();
  const EdgeWeight w = fee_like_weight();
  const auto got = dijkstra_distances(g, 7, w);
  const double inf = std::numeric_limits<double>::infinity();
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    const DijkstraResult single = ref_dijkstra(g, 7, t, w);
    EXPECT_EQ(got[t], single.found || t == 7 ? single.distance : inf);
  }
}

TEST(DijkstraHardening, OutOfRangeTargetsReturnNotFound) {
  const Graph& g = small_world_graph();
  EXPECT_FALSE(dijkstra(g, 0, kInvalidNode).found);
  EXPECT_FALSE(dijkstra(g, kInvalidNode, 0).found);
  EXPECT_FALSE(
      dijkstra(g, 0, static_cast<NodeId>(g.num_nodes())).found);
  EXPECT_TRUE(dijkstra(g, 0, 1).found);
}

// ---------------------------------------------------------------------------
// BFS family
// ---------------------------------------------------------------------------

TEST(BfsEquivalence, PathsDistancesTrees) {
  const Graph& g = medium_graph();
  Rng rng(41);
  const EdgeFilter drop_some = [](EdgeId e) { return e % 7 != 3; };
  for (int i = 0; i < 150; ++i) {
    const auto [s, t] = random_pair(rng, g);
    EXPECT_EQ(bfs_path(g, s, t), ref_bfs_path(g, s, t));
    EXPECT_EQ(bfs_path(g, s, t, drop_some), ref_bfs_path(g, s, t, drop_some));
  }
  // Full-exploration outputs.
  for (NodeId src : {NodeId{0}, NodeId{13}, NodeId{299}}) {
    EXPECT_EQ(bfs_tree(g, src), ref_bfs_parents(g, src, kInvalidNode, {}));
    EXPECT_EQ(bfs_tree(g, src, drop_some),
              ref_bfs_parents(g, src, kInvalidNode, drop_some));
    const auto dist = bfs_distances(g, src);
    const auto tree = bfs_tree(g, src);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == src) {
        EXPECT_EQ(dist[v], 0u);
      } else if (tree[v] == kInvalidEdge) {
        EXPECT_EQ(dist[v], kUnreachable);
      } else {
        EXPECT_EQ(dist[v], dist[g.from(tree[v])] + 1);
      }
    }
  }
}

TEST(BfsHardening, OutOfRangeEndpoints) {
  const Graph& g = small_world_graph();
  EXPECT_TRUE(bfs_path(g, 0, kInvalidNode).empty());
  EXPECT_TRUE(bfs_path(g, kInvalidNode, 0).empty());
  EXPECT_FALSE(reachable(g, 0, kInvalidNode));
  EXPECT_FALSE(reachable(g, kInvalidNode, 0));
}

TEST(LegacyApiReentrancy, FilterCallbackMayCallLegacyApi) {
  // The legacy wrappers share a thread-local scratch; a user filter that
  // itself calls a legacy graph function must get a private scratch (see
  // LegacyScratchLease) instead of clobbering the outer query.
  const Graph& g = small_world_graph();
  const EdgeFilter admit = [&](EdgeId e) {
    return reachable(g, g.from(e), g.to(e));  // nested legacy call, true
  };
  for (NodeId t : {NodeId{5}, NodeId{60}, NodeId{119}}) {
    EXPECT_EQ(bfs_path(g, 0, t, admit), ref_bfs_path(g, 0, t, {}));
  }
}

// ---------------------------------------------------------------------------
// Yen
// ---------------------------------------------------------------------------

TEST(YenEquivalence, MediumTopologyUnitWeights) {
  const Graph& g = medium_graph();
  Rng rng(51);
  for (int i = 0; i < 40; ++i) {
    const auto [s, t] = random_pair(rng, g);
    if (s == t) continue;
    for (std::size_t k : {std::size_t{4}, std::size_t{8}}) {
      expect_same_paths(yen_k_shortest_paths(g, s, t, k), ref_yen(g, s, t, k));
    }
  }
}

TEST(YenEquivalence, MediumTopologyFeeWeights) {
  const Graph& g = medium_graph();
  const EdgeWeight w = fee_like_weight();
  Rng rng(52);
  for (int i = 0; i < 25; ++i) {
    const auto [s, t] = random_pair(rng, g);
    if (s == t) continue;
    expect_same_paths(yen_k_shortest_paths(g, s, t, 6, w),
                      ref_yen(g, s, t, 6, w));
  }
}

TEST(YenEquivalence, RippleScaleTopology) {
  const Graph& g = ripple_graph();  // fig06/fig07 scale
  Rng rng(53);
  for (int i = 0; i < 8; ++i) {
    const auto [s, t] = random_pair(rng, g);
    if (s == t) continue;
    expect_same_paths(yen_k_shortest_paths(g, s, t, 8), ref_yen(g, s, t, 8));
  }
}

TEST(YenEquivalence, SmallWorldManyPaths) {
  const Graph& g = small_world_graph();
  Rng rng(54);
  for (int i = 0; i < 10; ++i) {
    const auto [s, t] = random_pair(rng, g);
    if (s == t) continue;
    expect_same_paths(yen_k_shortest_paths(g, s, t, 16),
                      ref_yen(g, s, t, 16));
  }
}

// ---------------------------------------------------------------------------
// Edge-disjoint + maxflow
// ---------------------------------------------------------------------------

TEST(EdgeDisjointEquivalence, MediumTopology) {
  const Graph& g = medium_graph();
  Rng rng(61);
  for (int i = 0; i < 60; ++i) {
    const auto [s, t] = random_pair(rng, g);
    if (s == t) continue;
    expect_same_paths(edge_disjoint_shortest_paths(g, s, t, 4),
                      ref_edge_disjoint(g, s, t, 4));
  }
}

TEST(MaxflowEquivalence, RandomCapacities) {
  const Graph& g = small_world_graph();
  Rng caps_rng(62);
  std::vector<Amount> cap(g.num_edges());
  for (auto& c : cap) c = caps_rng.uniform(0.0, 50.0);
  const EdgeCapacity cap_fn = [&](EdgeId e) { return cap[e]; };
  Rng rng(63);
  for (int i = 0; i < 40; ++i) {
    const auto [s, t] = random_pair(rng, g);
    for (const auto& [limit, max_paths] :
         std::vector<std::pair<Amount, std::size_t>>{
             {-1, 0}, {-1, 5}, {40, 0}, {25, 3}}) {
      const MaxFlowResult want =
          ref_edmonds_karp(g, s, t, cap_fn, limit, max_paths);
      const MaxFlowResult got = edmonds_karp(g, s, t, cap_fn, limit, max_paths);
      EXPECT_EQ(got.value, want.value);  // bit-identical accumulation
      EXPECT_EQ(got.edge_flow, want.edge_flow);
      EXPECT_EQ(got.path_amounts, want.path_amounts);
      expect_same_paths(got.paths, want.paths);
    }
  }
}

// ---------------------------------------------------------------------------
// Elephant probing (Algorithm 1)
// ---------------------------------------------------------------------------

TEST(ElephantEquivalence, ProbeLoopBitIdentical) {
  const Graph& g = medium_graph();
  Rng init_rng_a(71);
  Rng init_rng_b(71);
  NetworkState state_a(g);
  NetworkState state_b(g);
  state_a.assign_lognormal_split(250, 1.0, init_rng_a);
  state_b.assign_lognormal_split(250, 1.0, init_rng_b);

  Rng rng(72);
  for (int i = 0; i < 30; ++i) {
    const auto [s, t] = random_pair(rng, g);
    const Amount demand = rng.uniform(10.0, 2000.0);
    const RefProbeResult want =
        ref_elephant_find_paths(g, s, t, demand, 20, state_a);
    const ElephantProbeResult got =
        elephant_find_paths(g, s, t, demand, 20, state_b);
    EXPECT_EQ(got.feasible, want.feasible);
    EXPECT_EQ(got.max_flow, want.max_flow);
    EXPECT_EQ(got.probes, want.probes);
    EXPECT_EQ(got.bottlenecks, want.bottlenecks);
    expect_same_paths(got.paths, want.paths);
    // The probed capacity matrix must match entry-for-entry AND in
    // first-probe insertion order — the canonical constraint order the
    // fee LP consumes.
    ASSERT_EQ(got.capacities.size(), want.capacities.size());
    EXPECT_EQ(got.capacities.entries(), want.insertion_order);
  }
  // Identical probing implies identical message accounting.
  EXPECT_EQ(state_a.probe_messages(), state_b.probe_messages());
}

TEST(ElephantEquivalence, ReusedProbeResultMatchesFreshInIterationOrder) {
  // FlashRouter reuses one ElephantProbeResult across payments. The
  // capacity matrix's *iteration order* feeds the fee-LP constraint
  // order, so an epoch-reset reused ProbedCapacities must reproduce the
  // reference first-probe insertion order exactly, query after query
  // (this is the property the retired fresh-unordered_map-per-probe
  // workaround existed to preserve — the flat matrix provides it by
  // construction).
  const Graph& g = medium_graph();
  Rng init_a(75), init_b(75);
  NetworkState state_a(g), state_b(g);
  state_a.assign_lognormal_split(250, 1.0, init_a);
  state_b.assign_lognormal_split(250, 1.0, init_b);

  GraphScratch scratch;
  ElephantProbeResult reused;
  Rng rng(76);
  for (int i = 0; i < 20; ++i) {
    const auto [s, t] = random_pair(rng, g);
    const Amount demand = rng.uniform(10.0, 2000.0);
    elephant_find_paths_into(g, s, t, demand, 20, state_b, scratch, reused);
    const RefProbeResult fresh =
        ref_elephant_find_paths(g, s, t, demand, 20, state_a);
    ASSERT_EQ(reused.capacities.entries(), fresh.insertion_order)
        << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Mice routing: deferred dead-path replacement must be externally invisible
// ---------------------------------------------------------------------------

/// The pre-refactor route_mice, expressed against the public API: copy the
/// looked-up paths, replace dead paths immediately.
RouteResult ref_route_mice(const Graph& g, const Transaction& tx,
                           NetworkState& state, const FeeSchedule& fees,
                           MiceRoutingTable& table, Rng& rng) {
  (void)g;
  constexpr Amount kEps = 1e-9;
  RouteResult result;
  if (tx.amount <= 0 || tx.sender == tx.receiver) return result;

  const std::uint64_t msgs_before = state.probe_messages();
  std::vector<Path> paths = table.lookup(tx.sender, tx.receiver);
  if (paths.empty()) return result;

  std::vector<std::size_t> order(paths.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  AtomicPayment payment(state);
  Amount remaining = tx.amount;
  Amount fee = 0;
  for (const std::size_t idx : order) {
    const Path& path = paths[idx];
    if (payment.add_part(path, remaining)) {
      fee += fees.path_fee(path, remaining);
      ++result.paths_used;
      remaining = 0;
      break;
    }
    const std::vector<Amount> balances = state.probe_path(path);
    ++result.probes;
    const Amount cap = *std::min_element(balances.begin(), balances.end());
    if (cap <= kEps) {
      table.replace_dead_path(tx.sender, tx.receiver, path);
      continue;
    }
    const Amount part = std::min(cap, remaining);
    if (payment.add_part(path, part)) {
      fee += fees.path_fee(path, part);
      ++result.paths_used;
      remaining -= part;
      if (remaining <= kEps) break;
    }
  }

  result.probe_messages = state.probe_messages() - msgs_before;
  if (remaining > kEps) return result;
  payment.commit();
  result.success = true;
  result.delivered = tx.amount;
  result.fee = fee;
  return result;
}

TEST(MiceEquivalence, DeferredReplacementMatchesLegacySimulation) {
  const Graph& g = medium_graph();
  Rng fee_rng(80);
  const FeeSchedule fees = FeeSchedule::paper_default(g, fee_rng);
  Rng init_a(81), init_b(81);
  NetworkState state_a(g), state_b(g);
  // Skewed split makes depleted directions (dead paths) common.
  state_a.assign_uniform_skewed(1.0, 60.0, 0.85, 1.0, init_a);
  state_b.assign_uniform_skewed(1.0, 60.0, 0.85, 1.0, init_b);

  RoutingTableConfig tc;
  tc.paths_per_receiver = 4;
  tc.spare_paths = 4;
  MiceRoutingTable table_a(g, tc), table_b(g, tc);
  Rng rng_a(82), rng_b(82);
  GraphScratch scratch;

  Rng tx_rng(83);
  int dead_replacements_seen = 0;
  for (int i = 0; i < 600; ++i) {
    Transaction tx;
    const auto [s, t] = random_pair(tx_rng, g);
    if (s == t) continue;
    tx.sender = s;
    tx.receiver = t;
    tx.amount = tx_rng.uniform(1.0, 40.0);
    const RouteResult want = ref_route_mice(g, tx, state_a, fees, table_a,
                                            rng_a);
    const RouteResult got =
        route_mice(g, tx, state_b, fees, table_b, rng_b, scratch);
    ASSERT_EQ(got.success, want.success) << "tx " << i;
    EXPECT_EQ(got.delivered, want.delivered);
    EXPECT_EQ(got.fee, want.fee);
    EXPECT_EQ(got.probes, want.probes);
    EXPECT_EQ(got.probe_messages, want.probe_messages);
    EXPECT_EQ(got.paths_used, want.paths_used);
    if (want.probes > 0 && !want.success) ++dead_replacements_seen;
  }
  // Ledgers must have evolved identically.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ASSERT_EQ(state_a.balance(e), state_b.balance(e)) << "edge " << e;
  }
  EXPECT_EQ(table_a.size(), table_b.size());
  EXPECT_EQ(table_a.computations(), table_b.computations());
  // The workload must actually exercise the probe/replace machinery.
  EXPECT_GT(dead_replacements_seen, 0);
}

// ---------------------------------------------------------------------------
// Scratch reuse: a shared workspace must behave like a fresh one
// ---------------------------------------------------------------------------

TEST(ScratchReuse, BackToBackQueriesMatchFreshScratches) {
  const Graph& g = medium_graph();
  const EdgeWeight w = fee_like_weight();
  GraphScratch shared;
  Rng rng(91);
  for (int i = 0; i < 60; ++i) {
    const auto [s, t] = random_pair(rng, g);
    if (s == t) continue;

    // Yen on the shared scratch vs a one-shot scratch.
    std::vector<Path> shared_out, fresh_out;
    yen_core(g, s, t, 6, shared, UnitWeight{}, shared_out);
    {
      GraphScratch fresh;
      yen_core(g, s, t, 6, fresh, UnitWeight{}, fresh_out);
    }
    expect_same_paths(shared_out, fresh_out);

    // Weighted dijkstra immediately after Yen on the same scratch: the
    // epoch reset must fully isolate the queries.
    Path shared_path, fresh_path;
    const auto shared_res = dijkstra_core(
        g, s, t, shared, [&w](EdgeId e) { return w(e); }, false, shared_path);
    GraphScratch fresh;
    const auto fresh_res = dijkstra_core(
        g, s, t, fresh, [&w](EdgeId e) { return w(e); }, false, fresh_path);
    ASSERT_EQ(shared_res.found, fresh_res.found);
    EXPECT_EQ(shared_res.distance, fresh_res.distance);
    EXPECT_EQ(shared_path, fresh_path);
  }
}

TEST(ScratchReuse, AcrossDifferentGraphs) {
  // One scratch serving interleaved queries on graphs of different sizes.
  GraphScratch shared;
  const Graph& big = medium_graph();
  const Graph& small = small_world_graph();
  Rng rng(92);
  for (int i = 0; i < 40; ++i) {
    for (const Graph* g : {&big, &small}) {
      const auto [s, t] = random_pair(rng, *g);
      if (s == t) continue;
      std::vector<Path> shared_out, fresh_out;
      yen_core(*g, s, t, 4, shared, UnitWeight{}, shared_out);
      GraphScratch fresh;
      yen_core(*g, s, t, 4, fresh, UnitWeight{}, fresh_out);
      expect_same_paths(shared_out, fresh_out);
    }
  }
}

}  // namespace
}  // namespace flash

// Tests for the three baseline routers: SP, Spider, SpeedyMurmurs.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/topology.h"
#include "routing/shortest_path.h"
#include "routing/speedymurmurs.h"
#include "routing/spider.h"
#include "testutil.h"

namespace flash {
namespace {

using testing::bwd;
using testing::fwd;
using testing::make_graph;
using testing::set_channel;

Transaction tx(NodeId s, NodeId t, Amount a) { return {s, t, a, 0}; }

// --- Shortest Path -----------------------------------------------------------

TEST(ShortestPath, DeliversWhenBalanceSuffices) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  set_channel(s, g, 1, 10, 0);
  ShortestPathRouter router(g, fees);
  const RouteResult r = router.route(tx(0, 2, 5), s);
  EXPECT_TRUE(r.success);
  EXPECT_DOUBLE_EQ(r.delivered, 5);
  EXPECT_EQ(r.probe_messages, 0u);  // static: never probes
  EXPECT_EQ(r.paths_used, 1u);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 5);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 1)), 5);
}

TEST(ShortestPath, FailsWithoutTouchingState) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  set_channel(s, g, 1, 3, 0);
  ShortestPathRouter router(g, fees);
  const RouteResult r = router.route(tx(0, 2, 5), s);
  EXPECT_FALSE(r.success);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 10);
  EXPECT_TRUE(s.check_invariants());
}

TEST(ShortestPath, UnreachableFails) {
  Graph g(3);
  g.add_channel(0, 1);
  FeeSchedule fees(g);
  NetworkState s(g);
  ShortestPathRouter router(g, fees);
  EXPECT_FALSE(router.route(tx(0, 2, 1), s).success);
}

TEST(ShortestPath, ReportsFees) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  fees.set_policy(fwd(g, 0), {0, 0.01});
  fees.set_policy(fwd(g, 1), {0, 0.02});
  NetworkState s(g);
  set_channel(s, g, 0, 100, 0);
  set_channel(s, g, 1, 100, 0);
  ShortestPathRouter router(g, fees);
  const RouteResult r = router.route(tx(0, 2, 100), s);
  EXPECT_DOUBLE_EQ(r.fee, 3.0);
}

TEST(ShortestPath, RejectsDegenerate) {
  Graph g = make_graph(2, {{0, 1}});
  FeeSchedule fees(g);
  NetworkState s(g);
  ShortestPathRouter router(g, fees);
  EXPECT_FALSE(router.route(tx(0, 0, 5), s).success);
  EXPECT_FALSE(router.route(tx(0, 1, 0), s).success);
}

// --- Spider waterfilling -------------------------------------------------------

TEST(Waterfill, SingleCap) {
  const auto a = SpiderRouter::waterfill({10}, 4);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a[0], 4);
}

TEST(Waterfill, PrefersLargestCapacity) {
  const auto a = SpiderRouter::waterfill({10, 4}, 3);
  EXPECT_DOUBLE_EQ(a[0], 3);
  EXPECT_DOUBLE_EQ(a[1], 0);
}

TEST(Waterfill, LevelsAcrossPaths) {
  // demand 8 over caps (10, 4): level L solves (10-L) + max(0,4-L) = 8
  // -> L = 3 when both active? (10-3)+(4-3)=8. allocations (7,1).
  const auto a = SpiderRouter::waterfill({10, 4}, 8);
  EXPECT_DOUBLE_EQ(a[0], 7);
  EXPECT_DOUBLE_EQ(a[1], 1);
}

TEST(Waterfill, TakesEverythingWhenDemandExceedsTotal) {
  const auto a = SpiderRouter::waterfill({5, 3}, 100);
  EXPECT_DOUBLE_EQ(a[0], 5);
  EXPECT_DOUBLE_EQ(a[1], 3);
}

TEST(Waterfill, ExactTotal) {
  const auto a = SpiderRouter::waterfill({5, 3}, 8);
  EXPECT_DOUBLE_EQ(a[0] + a[1], 8);
}

TEST(Waterfill, ZeroDemandOrEmpty) {
  EXPECT_TRUE(SpiderRouter::waterfill({}, 5).empty());
  const auto a = SpiderRouter::waterfill({3, 3}, 0);
  EXPECT_DOUBLE_EQ(a[0] + a[1], 0);
}

TEST(Waterfill, PropertySumAndCaps) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Amount> caps(1 + rng.next_below(6));
    Amount total = 0;
    for (auto& c : caps) {
      c = rng.uniform(0.0, 20.0);
      total += c;
    }
    const Amount demand = rng.uniform(0.0, 30.0);
    const auto a = SpiderRouter::waterfill(caps, demand);
    Amount sum = 0;
    for (std::size_t i = 0; i < caps.size(); ++i) {
      EXPECT_LE(a[i], caps[i] + 1e-9);
      EXPECT_GE(a[i], -1e-9);
      sum += a[i];
    }
    EXPECT_NEAR(sum, std::min(demand, total), 1e-6);
  }
}

// --- Spider router ----------------------------------------------------------------

TEST(Spider, SplitsAcrossDisjointPaths) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees(g);
  NetworkState s(g);
  for (int c = 0; c < 4; ++c) set_channel(s, g, c, 6, 0);
  SpiderRouter router(g, fees);
  const RouteResult r = router.route(tx(0, 3, 10), s);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.paths_used, 2u);
  EXPECT_GT(r.probe_messages, 0u);
  EXPECT_TRUE(s.check_invariants());
}

TEST(Spider, ProbesEveryPayment) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees(g);
  NetworkState s(g);
  for (int c = 0; c < 4; ++c) set_channel(s, g, c, 100, 0);
  SpiderRouter router(g, fees);
  const RouteResult r1 = router.route(tx(0, 3, 1), s);
  const RouteResult r2 = router.route(tx(0, 3, 1), s);
  EXPECT_EQ(r1.probe_messages, r2.probe_messages);
  EXPECT_GT(r2.probe_messages, 0u);  // probing repeats per payment
}

TEST(Spider, FailsWhenJointCapacityInsufficient) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees(g);
  NetworkState s(g);
  for (int c = 0; c < 4; ++c) set_channel(s, g, c, 4, 0);
  SpiderRouter router(g, fees);
  const RouteResult r = router.route(tx(0, 3, 10), s);
  EXPECT_FALSE(r.success);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 4);  // nothing committed
}

TEST(Spider, UsesAtMostConfiguredPaths) {
  Rng rng(19);
  Graph g = complete_graph(6);
  FeeSchedule fees(g);
  NetworkState s(g);
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    set_channel(s, g, c, 100, 100);
  }
  SpiderRouter router(g, fees, SpiderConfig{2});
  const RouteResult r = router.route(tx(0, 5, 150), s);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.paths_used, 2u);
}

// --- SpeedyMurmurs -----------------------------------------------------------------

TEST(SpeedyMurmurs, PicksHighDegreeLandmarks) {
  Graph g = star_graph(6);  // node 0 is the hub
  FeeSchedule fees(g);
  SpeedyMurmursRouter router(g, fees, SpeedyMurmursConfig{1});
  ASSERT_EQ(router.landmarks().size(), 1u);
  EXPECT_EQ(router.landmarks()[0], 0u);
}

TEST(SpeedyMurmurs, TreeDistanceProperties) {
  Graph g = make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  FeeSchedule fees(g);
  SpeedyMurmursRouter router(g, fees, SpeedyMurmursConfig{1});
  // Distance to self is 0; symmetric; satisfies the path length on a line.
  EXPECT_EQ(router.tree_distance(0, 2, 2), 0u);
  EXPECT_EQ(router.tree_distance(0, 1, 3), router.tree_distance(0, 3, 1));
  EXPECT_EQ(router.tree_distance(0, 0, 4), 4u);
}

TEST(SpeedyMurmurs, RoutesWithoutProbing) {
  Rng rng(23);
  Graph g = watts_strogatz(40, 6, 0.2, rng);
  FeeSchedule fees(g);
  NetworkState s(g);
  s.assign_uniform_split(1000, 2000, rng);
  SpeedyMurmursRouter router(g, fees);
  int successes = 0;
  for (int i = 0; i < 50; ++i) {
    const auto a = static_cast<NodeId>(rng.next_below(40));
    const auto b = static_cast<NodeId>(rng.next_below(40));
    if (a == b) continue;
    const RouteResult r = router.route(tx(a, b, 5), s);
    EXPECT_EQ(r.probe_messages, 0u);
    successes += r.success;
    EXPECT_TRUE(s.check_invariants());
  }
  EXPECT_GT(successes, 30);  // plenty of liquidity: most should succeed
}

TEST(SpeedyMurmurs, SplitsAcrossLandmarkTrees) {
  Rng rng(29);
  Graph g = watts_strogatz(30, 6, 0.2, rng);
  FeeSchedule fees(g);
  NetworkState s(g);
  s.assign_uniform_split(1000, 2000, rng);
  SpeedyMurmursRouter router(g, fees, SpeedyMurmursConfig{3});
  const RouteResult r = router.route(tx(1, 20, 9), s);
  if (r.success) {
    EXPECT_EQ(r.paths_used, 3u);  // one share per tree
  }
}

TEST(SpeedyMurmurs, FailsAtomicallyWhenShareBlocked) {
  // Line graph: all trees route the same way; drain the middle channel.
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 100, 0);
  set_channel(s, g, 1, 1, 0);
  SpeedyMurmursRouter router(g, fees);
  const RouteResult r = router.route(tx(0, 2, 30), s);
  EXPECT_FALSE(r.success);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 100);
  EXPECT_TRUE(s.check_invariants());
}

}  // namespace
}  // namespace flash

// Tests for the time-extended HTLC lifecycle (ScenarioConfig::htlc):
// the pinned zero-config equivalence with instant settlement, in-flight
// lock contention, timelock expiry, offline/holder failure semantics, the
// timelock-budget hop cap in all four routers, and the config validation.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ledger/htlc.h"
#include "routing/flash/flash_router.h"
#include "routing/shortest_path.h"
#include "routing/speedymurmurs.h"
#include "routing/spider.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "testutil.h"
#include "trace/workload.h"
#include "util/rng.h"

namespace flash {
namespace {

using flash::testing::expect_identical;
using flash::testing::make_graph;
using flash::testing::set_channel;

// Field-for-field ScenarioResult equality (doubles exact). Covers every
// field, including the HTLC counters and both latency summaries' counts —
// extend alongside ScenarioResult.
void expect_scenarios_identical(const ScenarioResult& a,
                                const ScenarioResult& b) {
  expect_identical(a.sim, b.sim);
  EXPECT_EQ(a.channels_closed, b.channels_closed);
  EXPECT_EQ(a.channels_reopened, b.channels_reopened);
  EXPECT_EQ(a.rebalance_events, b.rebalance_events);
  EXPECT_EQ(a.gossip_rounds, b.gossip_rounds);
  EXPECT_EQ(a.gossip_messages, b.gossip_messages);
  EXPECT_EQ(a.router_rebuilds, b.router_rebuilds);
  EXPECT_EQ(a.router_patches, b.router_patches);
  EXPECT_EQ(a.entries_invalidated, b.entries_invalidated);
  EXPECT_EQ(a.payment_digest, b.payment_digest);
  EXPECT_EQ(a.router_cache_hits, b.router_cache_hits);
  EXPECT_EQ(a.router_cache_misses, b.router_cache_misses);
  EXPECT_EQ(a.router_cache_evictions, b.router_cache_evictions);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.htlc_payments, b.htlc_payments);
  EXPECT_EQ(a.htlc_inflight_failures, b.htlc_inflight_failures);
  EXPECT_EQ(a.htlc_expiries, b.htlc_expiries);
  EXPECT_EQ(a.htlc_offline_failures, b.htlc_offline_failures);
  EXPECT_EQ(a.htlc_holder_delays, b.htlc_holder_delays);
  EXPECT_EQ(a.htlc_max_inflight, b.htlc_max_inflight);
  EXPECT_EQ(a.htlc_onchain_settled_hops, b.htlc_onchain_settled_hops);
  EXPECT_EQ(a.htlc_onchain_refunded_hops, b.htlc_onchain_refunded_hops);
  EXPECT_EQ(a.htlc_break_failures, b.htlc_break_failures);
  EXPECT_EQ(a.rebalance_skipped_channels, b.rebalance_skipped_channels);
  EXPECT_EQ(a.fault_hub_outages, b.fault_hub_outages);
  EXPECT_EQ(a.fault_channel_closes, b.fault_channel_closes);
  EXPECT_EQ(a.fault_congestion_arrivals, b.fault_congestion_arrivals);
  EXPECT_EQ(a.fault_window_payments, b.fault_window_payments);
  EXPECT_EQ(a.fault_window_successes, b.fault_window_successes);
  EXPECT_EQ(a.post_fault_payments, b.post_fault_payments);
  EXPECT_EQ(a.post_fault_successes, b.post_fault_successes);
  EXPECT_EQ(a.fault_recovery_time, b.fault_recovery_time);
  EXPECT_EQ(a.sim_latency.count, b.sim_latency.count);
  EXPECT_EQ(a.sim_latency.mean_seconds, b.sim_latency.mean_seconds);
  EXPECT_EQ(a.sim_latency.p50_seconds, b.sim_latency.p50_seconds);
  EXPECT_EQ(a.sim_latency.p99_seconds, b.sim_latency.p99_seconds);
  EXPECT_EQ(a.sim_latency.max_seconds, b.sim_latency.max_seconds);
}

TEST(HtlcLifecycle, ZeroConfigBitIdenticalToInstantSettlement) {
  // HtlcConfig{} (zero latency, no expiry, nobody offline) must leave the
  // engine on the untouched instant-settlement path: bit-identical
  // SimResult AND payment_digest, for every scheme.
  const Workload w = make_toy_workload(30, 250, 3);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig with_htlc;
  with_htlc.htlc = HtlcConfig{};  // explicit, and explicitly inactive
  ASSERT_FALSE(with_htlc.htlc.active());
  for (const Scheme scheme : all_schemes()) {
    const auto router = make_router(scheme, w, {}, /*seed=*/7);
    const SimResult expected = run_simulation(w, *router, sim);
    const ScenarioResult got =
        run_scenario(w, scheme, {}, sim, with_htlc, 7);
    const ScenarioResult instant = run_scenario(w, scheme, {}, sim, {}, 7);
    expect_identical(got.sim, expected);
    expect_scenarios_identical(got, instant);
    EXPECT_EQ(got.htlc_payments, 0u);
    EXPECT_EQ(got.sim_latency.count, 0u);
  }
}

TEST(HtlcLifecycle, HopLatencyLocksFundsInFlight) {
  const Workload w = make_toy_workload(30, 300, 5);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  sim.invariant_stride = 8;  // sweep the ledger while HTLCs are in flight
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 5.0;  // several arrivals per round trip
  for (const Scheme scheme :
       {Scheme::kFlash, Scheme::kShortestPath, Scheme::kSpider}) {
    const ScenarioResult got = run_scenario(w, scheme, {}, sim, cfg, 5);
    EXPECT_EQ(got.sim.transactions, 300u);
    EXPECT_GT(got.htlc_payments, 0u);
    EXPECT_GT(got.htlc_max_inflight, 1u);  // lifecycles overlapped
    // Satellite: sim-time lock->settle latency is recorded per lifecycle.
    EXPECT_EQ(got.sim_latency.count, got.htlc_payments);
    EXPECT_GT(got.sim_latency.mean_seconds, 0.0);
    EXPECT_GE(got.sim_latency.max_seconds, got.sim_latency.p50_seconds);
    // Settlement extends past the last arrival by at least one round trip.
    const ScenarioResult instant = run_scenario(w, scheme, {}, sim, {}, 5);
    EXPECT_GT(got.duration, instant.duration);
    // Lock contention can only hurt: instant settlement is the upper bound.
    EXPECT_LE(got.sim.successes, instant.sim.successes);
  }
}

TEST(HtlcLifecycle, DeterministicAcrossRuns) {
  const Workload w = make_toy_workload(25, 200, 9);
  SimConfig sim;
  sim.capacity_scale = 1.5;
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 3.0;
  cfg.htlc.timelock_delta = 50.0;
  cfg.htlc.offline_fraction = 0.05;
  cfg.retry.max_retries = 1;
  const ScenarioResult a = run_scenario(w, Scheme::kFlash, {}, sim, cfg, 11);
  const ScenarioResult b = run_scenario(w, Scheme::kFlash, {}, sim, cfg, 11);
  expect_scenarios_identical(a, b);
}

TEST(HtlcLifecycle, HolderGriefingDelaysSettlementAndStarvesOthers) {
  // Holders sit on settle/fail relays. A part already settling keeps its
  // preimage propagating (expiry is a no-op on it, by design), so griefing
  // shows up as long lock times that starve CONCURRENT payments — not as
  // expiries of the griefed payment itself.
  const Workload w = make_toy_workload(30, 300, 6);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 1.0;
  cfg.htlc.timelock_delta = 10.0;
  cfg.htlc.holder_fraction = 0.4;
  cfg.htlc.holders_prefer_hubs = true;
  cfg.htlc.holder_delay = 1e4;  // far beyond any timelock span
  const ScenarioResult got =
      run_scenario(w, Scheme::kShortestPath, {}, sim, cfg, 6);
  EXPECT_GT(got.htlc_holder_delays, 0u);
  ScenarioConfig honest = cfg;
  honest.htlc.holder_fraction = 0;
  const ScenarioResult baseline =
      run_scenario(w, Scheme::kShortestPath, {}, sim, honest, 6);
  EXPECT_LT(got.sim.successes, baseline.sim.successes);
  EXPECT_GT(got.sim_latency.max_seconds, baseline.sim_latency.max_seconds);
  EXPECT_EQ(baseline.htlc_expiries, 0u);  // honest relays settle in time
}

TEST(HtlcLifecycle, TightTimelocksExpireSlowForwardLegs) {
  // When the forward leg is slower than the timelock span (hop_latency >
  // timelock_delta on average), in-flight HTLCs hit their expiry and are
  // force-refunded, and those payments count as failures.
  const Workload w = make_toy_workload(30, 300, 6);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig tight;
  tight.htlc.hop_latency = 2.0;
  tight.htlc.timelock_delta = 1.5;
  const ScenarioResult got =
      run_scenario(w, Scheme::kShortestPath, {}, sim, tight, 6);
  EXPECT_GT(got.htlc_expiries, 0u);
  ScenarioConfig no_expiry = tight;
  no_expiry.htlc.timelock_delta = 0;  // same latency, no timeout
  const ScenarioResult baseline =
      run_scenario(w, Scheme::kShortestPath, {}, sim, no_expiry, 6);
  EXPECT_EQ(baseline.htlc_expiries, 0u);
  EXPECT_LT(got.sim.successes, baseline.sim.successes);
}

TEST(HtlcLifecycle, OfflineNodesFailPaymentsInFlight) {
  const Workload w = make_toy_workload(30, 300, 7);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 0.5;
  cfg.htlc.offline_fraction = 0.25;
  const ScenarioResult got =
      run_scenario(w, Scheme::kShortestPath, {}, sim, cfg, 7);
  EXPECT_GT(got.htlc_offline_failures, 0u);
  ScenarioConfig online = cfg;
  online.htlc.offline_fraction = 0;
  const ScenarioResult baseline =
      run_scenario(w, Scheme::kShortestPath, {}, sim, online, 7);
  EXPECT_LT(got.sim.successes, baseline.sim.successes);
}

TEST(HtlcLifecycle, TimelockBudgetCapsRouteHopsInAllSchemes) {
  // Line network 0-1-2-3: the only 0->3 route is 3 hops. A 2-hop cap must
  // make every scheme refuse it; a 3-hop cap must let it through.
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const FeeSchedule fees(g);
  const Transaction tx{0, 3, 10.0, 0.0};
  auto route_with_cap = [&](Scheme scheme, std::size_t cap) {
    NetworkState state(g);
    for (std::size_t c = 0; c < g.num_channels(); ++c) {
      set_channel(state, g, c, 100, 100);
    }
    FlashOptions opts;
    opts.max_route_hops = cap;
    const auto router = make_router(scheme, g, fees, 1, opts, 42);
    return router->route(tx, state).success;
  };
  for (const Scheme scheme : all_schemes()) {
    SCOPED_TRACE(scheme_name(scheme));
    EXPECT_TRUE(route_with_cap(scheme, 0));   // unlimited
    EXPECT_TRUE(route_with_cap(scheme, 3));   // exactly fits
    EXPECT_FALSE(route_with_cap(scheme, 2));  // over budget
  }
  // Flash's mice pipeline honors the cap too.
  {
    NetworkState state(g);
    for (std::size_t c = 0; c < g.num_channels(); ++c) {
      set_channel(state, g, c, 100, 100);
    }
    FlashConfig config;
    config.elephant_threshold = 1e9;  // everything is a mouse
    config.max_route_hops = 2;
    FlashRouter mouse_router(g, fees, config);
    EXPECT_FALSE(mouse_router.route(tx, state).success);
  }
}

TEST(HtlcLifecycle, BudgetDerivedHopCapReducesSuccessInScenario) {
  const Workload w = make_toy_workload(40, 300, 8);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig tight;
  tight.htlc.hop_latency = 0.1;
  tight.htlc.timelock_delta = 10.0;
  tight.htlc.timelock_budget = 20.0;  // floor(20/10) = 2 hops
  ScenarioConfig loose = tight;
  loose.htlc.timelock_budget = 10.0 * 64;  // effectively unlimited
  const ScenarioResult capped =
      run_scenario(w, Scheme::kShortestPath, {}, sim, tight, 8);
  const ScenarioResult free_len =
      run_scenario(w, Scheme::kShortestPath, {}, sim, loose, 8);
  EXPECT_LT(capped.sim.successes, free_len.sim.successes);
}

// Runs the config and asserts the std::invalid_argument it raises names
// the offending field AND a remedy — every rejection must be actionable.
void expect_rejects(const ScenarioConfig& cfg, const std::string& field,
                    const std::string& remedy) {
  const Workload w = make_toy_workload(10, 5, 1);
  try {
    run_scenario(w, Scheme::kShortestPath, {}, {}, cfg, 1);
    ADD_FAILURE() << "config accepted; expected a rejection naming "
                  << field;
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(field), std::string::npos)
        << "message does not name the field '" << field << "': " << msg;
    EXPECT_NE(msg.find(remedy), std::string::npos)
        << "message does not offer the remedy '" << remedy << "': " << msg;
  }
}

TEST(HtlcLifecycle, ValidationMessagesNameFieldAndRemedy) {
  // Every validate() rejection, each checked for field + remedy.
  {
    ScenarioConfig c;
    c.retry.delay = -1;
    expect_rejects(c, "retry.delay", "set 0 for immediate retries");
  }
  {
    ScenarioConfig c;
    c.churn.close_rate = -0.1;
    expect_rejects(c, "churn.close_rate", "set 0 to disable churn");
  }
  {
    ScenarioConfig c;
    c.churn.mean_downtime = -1;
    expect_rejects(c, "churn.mean_downtime", "keep closed channels closed");
  }
  {
    ScenarioConfig c;
    c.rebalance.interval = -1;
    expect_rejects(c, "rebalance.interval", "set 0 to disable");
  }
  {
    ScenarioConfig c;
    c.rebalance.strength = 1.5;
    expect_rejects(c, "rebalance.strength", "even split");
  }
  {
    ScenarioConfig c;
    c.gossip.hop_delay = -1;
    expect_rejects(c, "gossip.hop_delay", "instant propagation");
  }
  {
    ScenarioConfig c;
    c.concurrency.stripes = 0;
    expect_rejects(c, "concurrency.stripes", "default 64");
  }
  {
    ScenarioConfig c;
    c.concurrency.execution = ScenarioExecution::kFreeOrder;
    c.retry.max_retries = 1;
    expect_rejects(c, "free-order", "kSequential/kReplay execution");
  }
  {
    // Fault injection needs the event loop too.
    ScenarioConfig c;
    c.concurrency.execution = ScenarioExecution::kFreeOrder;
    c.htlc.hop_latency = 1.0;
    c.fault.burst_channels = 1;
    c.fault.burst_time = 1.0;
    expect_rejects(c, "free-order", "leave fault inactive");
  }
  {
    ScenarioConfig c;
    c.htlc.hop_latency = -1;
    expect_rejects(c, "htlc.hop_latency", "set 0 to disable each");
  }
  {
    ScenarioConfig c;
    c.htlc.offline_fraction = 1.5;
    expect_rejects(c, "offline_fraction", "set 0 to disable each");
  }
  {
    // A budget without a per-hop delta has no hop-cap meaning.
    ScenarioConfig c;
    c.htlc.timelock_budget = 100;
    expect_rejects(c, "timelock_budget needs timelock_delta",
                   "max_route_hops");
  }
  {
    ScenarioConfig c;
    c.htlc.hop_latency = 1.0;
    c.concurrency.execution = ScenarioExecution::kReplay;
    expect_rejects(c, "sequential execution",
                   "concurrency.execution = kSequential");
  }
  {
    ScenarioConfig c;
    c.htlc.hop_latency = 1.0;
    c.concurrency.execution = ScenarioExecution::kFreeOrder;
    expect_rejects(c, "sequential execution",
                   "concurrency.execution = kSequential");
  }
  {
    // A budget below one delta admits no route at all.
    ScenarioConfig c;
    c.htlc.hop_latency = 1.0;
    c.htlc.timelock_delta = 10.0;
    c.htlc.timelock_budget = 5.0;
    expect_rejects(c, "below one timelock_delta", "raise the budget");
  }
  {
    ScenarioConfig c;
    c.fault.hub_outage_start = -1;
    expect_rejects(c, "hub_outage_start", "disable the outage");
  }
  {
    ScenarioConfig c;
    c.htlc.hop_latency = 1.0;
    c.fault.hub_count = 1;  // no outage window
    expect_rejects(c, "needs hub_outage_duration", "set a window length");
  }
  {
    // Hub outages act on payments in flight: instant settlement has none.
    ScenarioConfig c;
    c.fault.hub_count = 1;
    c.fault.hub_outage_duration = 10.0;
    expect_rejects(c, "timed HTLC lifecycle", "htlc.hop_latency");
  }
  {
    ScenarioConfig c;
    c.fault.burst_time = -1;
    expect_rejects(c, "burst_time", "disable the burst");
  }
  {
    ScenarioConfig c;
    c.fault.congestion_factor = 0.5;
    expect_rejects(c, "congestion_factor", "set 1 to disable");
  }
  {
    ScenarioConfig c;
    c.fault.congestion_start = -1;
    expect_rejects(c, "congestion_start", "disable the");
  }
  {
    ScenarioConfig c;
    c.fault.congestion_factor = 2.0;  // no window
    expect_rejects(c, "needs congestion_duration", "set a window length");
  }
  {
    ScenarioConfig c;
    c.fault.channel_faults.push_back({0, -1.0, 0.0});
    expect_rejects(c, "channel_faults times", "fix its times");
  }
  {
    // Out-of-range channel ids are caught at engine construction.
    ScenarioConfig c;
    c.htlc.hop_latency = 1.0;
    c.fault.channel_faults.push_back({9999, 1.0, 0.0});
    expect_rejects(c, "names channel 9999", "below num_channels()");
  }
}

TEST(HtlcLifecycle, HtlcNowComposesWithChurnAndRebalance) {
  // The htlc x churn / htlc x rebalance rejections are gone: the lifecycle
  // resolves in-flight parts on-chain when a channel under them closes, and
  // rebalancing skips escrowed channels. These configs must now RUN.
  const Workload w = make_toy_workload(10, 40, 1);
  ScenarioConfig htlc_on;
  htlc_on.htlc.hop_latency = 1.0;

  ScenarioConfig churn = htlc_on;
  churn.churn.close_rate = 0.1;
  churn.churn.mean_downtime = 5.0;
  EXPECT_NO_THROW(run_scenario(w, Scheme::kShortestPath, {}, {}, churn, 1));

  ScenarioConfig rebalance = htlc_on;
  rebalance.rebalance.interval = 10;
  EXPECT_NO_THROW(
      run_scenario(w, Scheme::kShortestPath, {}, {}, rebalance, 1));

  ScenarioConfig both = churn;
  both.rebalance.interval = 10;
  both.gossip.hop_delay = 0.5;  // stale views on top
  EXPECT_NO_THROW(run_scenario(w, Scheme::kShortestPath, {}, {}, both, 1));

  // Churn plus an INACTIVE HtlcConfig stays allowed, as before.
  ScenarioConfig ok;
  ok.churn.close_rate = 0.05;
  EXPECT_NO_THROW(run_scenario(w, Scheme::kShortestPath, {}, {}, ok, 1));
}

TEST(HtlcLifecycle, FaultFreeHtlcDigestsPinned) {
  // Golden payment digests captured before the fault-tolerance machinery
  // landed: fault-free HTLC configs (no churn, no FaultPlan) must stay
  // bit-identical across refactors of the close/fault paths. If one of
  // these moves, the zero-dynamics contract broke — do not re-pin without
  // understanding why.
  {
    const Workload w = make_toy_workload(25, 200, 9);
    SimConfig sim;
    sim.capacity_scale = 1.5;
    ScenarioConfig cfg;
    cfg.htlc.hop_latency = 3.0;
    cfg.htlc.timelock_delta = 50.0;
    cfg.htlc.offline_fraction = 0.05;
    cfg.retry.max_retries = 1;
    const std::uint64_t expected[] = {
        327838087456076393ull,    // kFlash
        8957341892750548556ull,   // kSpider
        15838135490890404714ull,  // kSpeedyMurmurs
        6866683462189468280ull,   // kShortestPath
    };
    std::size_t i = 0;
    for (const Scheme scheme : all_schemes()) {
      SCOPED_TRACE(scheme_name(scheme));
      const ScenarioResult got = run_scenario(w, scheme, {}, sim, cfg, 11);
      EXPECT_EQ(got.payment_digest, expected[i++]);
    }
  }
  {
    // Holder-griefing config: exercises the settling-state bookkeeping
    // that the on-chain resolution path also reads.
    const Workload w = make_toy_workload(30, 300, 6);
    SimConfig sim;
    sim.capacity_scale = 2.0;
    ScenarioConfig cfg;
    cfg.htlc.hop_latency = 1.0;
    cfg.htlc.timelock_delta = 10.0;
    cfg.htlc.holder_fraction = 0.4;
    cfg.htlc.holders_prefer_hubs = true;
    cfg.htlc.holder_delay = 1e4;
    const ScenarioResult got =
        run_scenario(w, Scheme::kShortestPath, {}, sim, cfg, 6);
    EXPECT_EQ(got.payment_digest, 9172907384879275544ull);
  }
}

TEST(HtlcLifecycle, RetriesRescueInFlightFailures) {
  // In-flight failures feed the normal retry machinery: the unwound
  // balances are back, so a retry can succeed.
  const Workload w = make_toy_workload(30, 300, 10);
  SimConfig sim;
  sim.capacity_scale = 1.5;
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 4.0;
  cfg.retry.max_retries = 2;
  cfg.retry.delay = 1.0;
  const ScenarioResult got = run_scenario(w, Scheme::kFlash, {}, sim, cfg, 3);
  ScenarioConfig no_retry = cfg;
  no_retry.retry.max_retries = 0;
  const ScenarioResult baseline =
      run_scenario(w, Scheme::kFlash, {}, sim, no_retry, 3);
  EXPECT_EQ(got.sim.transactions, 300u);
  EXPECT_GE(got.sim.successes, baseline.sim.successes);
}

// --- AtomicPayment nested-fallback coverage (owned_holds_ storage) -------

TEST(HtlcLifecycle, NestedAtomicPaymentFallsBackToOwnedStorage) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState state(g);
  set_channel(state, g, 0, 100, 100);
  set_channel(state, g, 1, 100, 100);
  const Path path{testing::fwd(g, 0), testing::fwd(g, 1)};

  AtomicPayment outer(state);  // takes the ledger's hold-list lease
  ASSERT_TRUE(outer.add_part(path, 10));
  {
    // The lease is out: the nested payment must fall back to its own
    // storage and still provide the full hold/commit contract.
    AtomicPayment inner(state);
    ASSERT_TRUE(inner.add_part(path, 5));
    EXPECT_EQ(inner.parts(), 1u);
    EXPECT_EQ(inner.held_amount(), 5);
    EXPECT_EQ(state.balance(testing::fwd(g, 0)), 85);  // 100 - 10 - 5
    inner.commit();
  }
  EXPECT_EQ(state.balance(testing::bwd(g, 0)), 105);  // inner settled
  outer.commit();
  EXPECT_EQ(state.balance(testing::bwd(g, 0)), 115);
  EXPECT_EQ(state.active_holds(), 0u);
  std::size_t bad = 0;
  EXPECT_TRUE(state.check_invariants(&bad));
}

TEST(HtlcLifecycle, NestedAtomicPaymentAbortsOnDestruction) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState state(g);
  set_channel(state, g, 0, 100, 100);
  set_channel(state, g, 1, 100, 100);
  const Path path{testing::fwd(g, 0), testing::fwd(g, 1)};

  AtomicPayment outer(state);
  ASSERT_TRUE(outer.add_part(path, 10));
  {
    AtomicPayment inner(state);  // owned_holds_ fallback
    ASSERT_TRUE(inner.add_part(path, 5));
    const std::vector<EdgeAmount> flow{{testing::fwd(g, 1), 7.0}};
    ASSERT_TRUE(inner.add_flow(flow, 7));
    EXPECT_EQ(inner.parts(), 2u);
    // No commit: destruction must abort both nested parts.
  }
  EXPECT_EQ(state.balance(testing::fwd(g, 0)), 90);  // only outer's hold
  EXPECT_EQ(state.balance(testing::fwd(g, 1)), 90);
  EXPECT_EQ(state.active_holds(), 1u);
  outer.abort();
  EXPECT_EQ(state.balance(testing::fwd(g, 0)), 100);
  EXPECT_EQ(state.active_holds(), 0u);
}

TEST(HtlcLifecycle, LeaseReturnsAfterOuterPaymentDies) {
  const Graph g = make_graph(2, {{0, 1}});
  NetworkState state(g);
  set_channel(state, g, 0, 50, 50);
  {
    AtomicPayment outer(state);
    (void)outer;
  }
  // The lease went back with the outer payment; a fresh payment re-leases
  // the ledger buffer (observable only through behavior: nothing throws,
  // nothing leaks).
  AtomicPayment next(state);
  ASSERT_TRUE(next.add_part(Path{testing::fwd(g, 0)}, 5));
  next.commit();
  EXPECT_EQ(state.balance(testing::bwd(g, 0)), 55);
  EXPECT_EQ(state.active_holds(), 0u);
}

// --- Conservation property test (randomized lifecycle interleavings) ----
//
// Drives a ledger through a random interleaving of hold / extend /
// hop-settle / hop-abort / full-commit / expiry-abort operations —
// interleaved with channel force-closes (resolving in-flight holds
// on-chain), reopens with fresh deposits, and node-offline events — and
// asserts after EVERY step that the channel conservation invariant holds
// (balances + holds == deposits), no balance went negative, and the
// active-hold count matches the model. On failure it reports the seed and
// the full op log up to the failing step — re-running the seed replays the
// minimal failing prefix exactly (ops are resolved deterministically from
// the rng stream), in the spirit of incremental_router_test.cc.

struct LiveHold {
  HoldId id;
  std::vector<char> hop_open;  // per-hop: not yet settled/aborted
  std::size_t remaining = 0;   // open hops left (0 for empty holds)
};

class LifecycleFuzzer {
 public:
  explicit LifecycleFuzzer(std::uint64_t seed)
      : graph_(make_graph(
            5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}, {1, 3}})),
        state_(graph_),
        rng_(seed) {
    for (std::size_t c = 0; c < graph_.num_channels(); ++c) {
      set_channel(state_, graph_, c, 50, 50);
    }
    closed_.assign(graph_.num_channels(), 0);
  }

  /// Runs `steps` ops; returns the failing step (0-based) or SIZE_MAX.
  std::size_t run(std::size_t steps) {
    for (std::size_t k = 0; k < steps; ++k) {
      step();
      if (!healthy()) return k;
    }
    return SIZE_MAX;
  }

  const std::vector<std::string>& log() const { return log_; }
  const std::string& failure() const { return failure_; }

 private:
  EdgeId random_edge() {
    const std::size_t c = rng_.next_below(graph_.num_channels());
    const EdgeId e = graph_.channel_forward_edge(c);
    return rng_.chance(0.5) ? e : graph_.reverse(e);
  }

  Amount random_amount() {
    return static_cast<Amount>(1 + rng_.next_below(20));
  }

  void track(HoldId id) {
    LiveHold lh;
    lh.id = id;
    const auto parts = state_.hold_parts(id);
    lh.hop_open.assign(parts.size(), 1);
    lh.remaining = parts.size();
    live_.push_back(std::move(lh));
  }

  void drop(std::size_t i) {
    live_[i] = std::move(live_.back());
    live_.pop_back();
  }

  void step() {
    const std::uint64_t r = rng_.next_below(128);
    if (r >= 100) {  // fault ops: close / reopen / node-offline
      if (r < 112) {
        close_channel();
      } else if (r < 122) {
        reopen_channel();
      } else {
        knock_node_offline();
      }
      return;
    }
    if (r < 20) {  // path hold (1-2 hops, possibly non-simple)
      Path path{random_edge()};
      if (rng_.chance(0.6)) path.push_back(random_edge());
      const Amount amount = random_amount();
      const auto id = state_.hold(path, amount);
      log_.push_back("hold path[" + std::to_string(path.size()) +
                     "] amount=" + std::to_string(amount) +
                     (id ? " -> held" : " -> refused"));
      if (id) track(*id);
    } else if (r < 38) {  // incremental per-hop forward locking
      const HoldId id = state_.open_hold();
      const std::size_t hops = 1 + rng_.next_below(3);
      std::size_t locked = 0;
      for (std::size_t i = 0; i < hops; ++i) {
        if (state_.extend_hold(id, random_edge(), random_amount())) ++locked;
      }
      log_.push_back("open_hold + " + std::to_string(hops) +
                     " extends (" + std::to_string(locked) + " locked)");
      track(id);
    } else if (r < 52) {  // flow hold
      std::vector<EdgeAmount> flow;
      const std::size_t n = 1 + rng_.next_below(3);
      for (std::size_t i = 0; i < n; ++i) {
        flow.emplace_back(random_edge(), random_amount());
      }
      const auto id = state_.hold_flow(flow);
      log_.push_back("hold_flow[" + std::to_string(n) + "]" +
                     (id ? " -> held" : " -> refused"));
      if (id) track(*id);
    } else if (r < 70) {  // settle ONE random open hop
      hop_op(/*settle=*/true);
    } else if (r < 84) {  // abort ONE random open hop
      hop_op(/*settle=*/false);
    } else if (r < 92) {  // commit the whole remainder
      if (live_.empty()) {
        log_.push_back("commit (no live hold)");
        return;
      }
      const std::size_t i = rng_.next_below(live_.size());
      state_.commit(live_[i].id);
      log_.push_back("commit whole hold");
      drop(i);
    } else {  // timelock expiry: stamp, then force-refund the remainder
      if (live_.empty()) {
        log_.push_back("expire (no live hold)");
        return;
      }
      const std::size_t i = rng_.next_below(live_.size());
      state_.set_hold_expiry(live_[i].id, 123.0);
      state_.abort(live_[i].id);
      log_.push_back("expire: abort partially-settled hold");
      drop(i);
    }
  }

  void hop_op(bool settle) {
    // Pick a live hold with open hops, then a random open hop of it.
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].remaining > 0) eligible.push_back(i);
    }
    const char* name = settle ? "commit_hop" : "abort_hop";
    if (eligible.empty()) {
      log_.push_back(std::string(name) + " (no open hop)");
      return;
    }
    const std::size_t i = eligible[rng_.next_below(eligible.size())];
    LiveHold& lh = live_[i];
    std::size_t hop = rng_.next_below(lh.hop_open.size());
    while (!lh.hop_open[hop]) hop = (hop + 1) % lh.hop_open.size();
    if (settle) {
      state_.commit_hop(lh.id, hop);
    } else {
      state_.abort_hop(lh.id, hop);
    }
    log_.push_back(std::string(name) + " hop " + std::to_string(hop) + "/" +
                   std::to_string(lh.hop_open.size()));
    lh.hop_open[hop] = 0;
    if (--lh.remaining == 0) drop(i);  // ledger auto-retired the hold
  }

  // Force-close a channel with holds possibly across it: coin-flip each
  // crossing hold into "preimage propagating" (force-settles on-chain),
  // resolve, then zero the channel the way the scenario engine does.
  void close_channel() {
    std::vector<std::size_t> open;
    for (std::size_t c = 0; c < graph_.num_channels(); ++c) {
      if (!closed_[c]) open.push_back(c);
    }
    if (open.empty()) {
      log_.push_back("close (none open)");
      return;
    }
    const std::size_t c = open[rng_.next_below(open.size())];
    const EdgeId fe = graph_.channel_forward_edge(c);
    const EdgeId be = graph_.reverse(fe);
    std::size_t marked = 0;
    for (const LiveHold& lh : live_) {
      bool crosses = false;
      for (const auto& [e, amt] : state_.hold_parts(lh.id)) {
        if (amt > 0 && (e == fe || e == be)) {
          crosses = true;
          break;
        }
      }
      if (crosses && rng_.chance(0.5)) {
        state_.mark_hold_settling(lh.id);
        ++marked;
      }
    }
    const auto res = state_.resolve_holds_on_close(c);
    // Model update: every open hop on this channel resolved on-chain; a
    // hold whose last open hop this was got retired by the ledger.
    for (std::size_t i = live_.size(); i-- > 0;) {
      LiveHold& lh = live_[i];
      if (!state_.hold_active(lh.id)) {
        drop(i);
        continue;
      }
      const auto parts = state_.hold_parts(lh.id);
      for (std::size_t k = 0; k < parts.size(); ++k) {
        if (lh.hop_open[k] && parts[k].second <= 0) {
          lh.hop_open[k] = 0;
          --lh.remaining;
        }
      }
    }
    state_.set_channel_balance(c, 0, 0);
    closed_[c] = 1;
    log_.push_back("close channel " + std::to_string(c) + " (" +
                   std::to_string(res.settled_hops) + " settled, " +
                   std::to_string(res.refunded_hops) + " refunded, " +
                   std::to_string(marked) + " holds marked settling)");
  }

  void reopen_channel() {
    std::vector<std::size_t> closed;
    for (std::size_t c = 0; c < graph_.num_channels(); ++c) {
      if (closed_[c]) closed.push_back(c);
    }
    if (closed.empty()) {
      log_.push_back("reopen (none closed)");
      return;
    }
    const std::size_t c = closed[rng_.next_below(closed.size())];
    state_.set_channel_balance(c, 50, 50);  // fresh deposit, no ghost holds
    closed_[c] = 0;
    log_.push_back("reopen channel " + std::to_string(c));
  }

  // A node going dark fails every payment routed through it: abort each
  // live hold with an open hop touching the node (the scenario engine's
  // hub-outage path does the same through fail_htlc_payment).
  void knock_node_offline() {
    const NodeId n = static_cast<NodeId>(rng_.next_below(graph_.num_nodes()));
    std::size_t aborted = 0;
    for (std::size_t i = live_.size(); i-- > 0;) {
      bool touches = false;
      for (const auto& [e, amt] : state_.hold_parts(live_[i].id)) {
        if (amt > 0 && (graph_.from(e) == n || graph_.to(e) == n)) {
          touches = true;
          break;
        }
      }
      if (!touches) continue;
      state_.abort(live_[i].id);
      drop(i);
      ++aborted;
    }
    log_.push_back("node " + std::to_string(n) + " offline: aborted " +
                   std::to_string(aborted) + " crossing holds");
  }

  bool healthy() {
    std::size_t bad = 0;
    if (!state_.check_invariants(&bad)) {
      failure_ = "conservation violated on channel " + std::to_string(bad);
      return false;
    }
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      if (state_.balance(e) < -1e-9) {
        failure_ = "negative balance on edge " + std::to_string(e);
        return false;
      }
    }
    if (state_.active_holds() != live_.size()) {
      failure_ = "active_holds=" + std::to_string(state_.active_holds()) +
                 " but model tracks " + std::to_string(live_.size());
      return false;
    }
    return true;
  }

  Graph graph_;
  NetworkState state_;
  Rng rng_;
  std::vector<LiveHold> live_;
  std::vector<char> closed_;
  std::vector<std::string> log_;
  std::string failure_;
};

TEST(HtlcLifecycle, ConservationUnderRandomInterleavings) {
  constexpr std::size_t kSeeds = 40;
  constexpr std::size_t kSteps = 400;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    std::uint64_t stream = 0x417cu + s;
    const std::uint64_t seed = splitmix64(stream);
    LifecycleFuzzer fuzzer(seed);
    const std::size_t failed_at = fuzzer.run(kSteps);
    if (failed_at == SIZE_MAX) continue;
    std::string trace;
    for (std::size_t k = 0; k <= failed_at && k < fuzzer.log().size(); ++k) {
      trace += "  [" + std::to_string(k) + "] " + fuzzer.log()[k] + "\n";
    }
    ADD_FAILURE() << "lifecycle fuzz seed " << seed << " (index " << s
                  << "): " << fuzzer.failure() << " at step " << failed_at
                  << "\nminimal failing prefix:\n"
                  << trace;
    return;  // first failure is enough; the trace replays it
  }
}

}  // namespace
}  // namespace flash

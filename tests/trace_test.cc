// Tests for the workload substrate: calibrated size distributions (Fig. 3),
// recurrence structure (Fig. 4), trace I/O, and workload builders.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <sstream>

#include "graph/bfs.h"
#include "graph/topology.h"
#include "trace/pair_gen.h"
#include "trace/size_dist.h"
#include "trace/trace_io.h"
#include "trace/workload.h"
#include "util/stats.h"

namespace flash {
namespace {

// --- Size distributions -----------------------------------------------------

TEST(SizeDist, RippleMedianNearPaperValue) {
  Rng rng(1);
  const SizeDistribution d = SizeDistribution::ripple();
  std::vector<double> xs(60001);
  for (auto& x : xs) x = d.sample(rng);
  const double med = percentile(xs, 50);
  // Paper: median payment ~= $4.8. Calibration tolerance: factor ~1.6.
  EXPECT_GT(med, 3.0);
  EXPECT_LT(med, 8.0);
}

TEST(SizeDist, RippleTopDecileCarriesMostVolume) {
  Rng rng(2);
  const SizeDistribution d = SizeDistribution::ripple();
  std::vector<double> xs(60000);
  for (auto& x : xs) x = d.sample(rng);
  // Paper: top 10% of payments carry ~94.5% of volume.
  const double share = top_fraction_share(xs, 0.10);
  EXPECT_GT(share, 0.85);
  EXPECT_LE(share, 1.0);
}

TEST(SizeDist, BitcoinMedianNearPaperValue) {
  Rng rng(3);
  const SizeDistribution d = SizeDistribution::bitcoin();
  std::vector<double> xs(60001);
  for (auto& x : xs) x = d.sample(rng);
  const double med = percentile(xs, 50);
  // Paper: median 1.293e6 satoshi.
  EXPECT_GT(med, 0.6e6);
  EXPECT_LT(med, 2.6e6);
}

TEST(SizeDist, BitcoinTopDecileCarriesMostVolume) {
  Rng rng(4);
  const SizeDistribution d = SizeDistribution::bitcoin();
  std::vector<double> xs(60000);
  for (auto& x : xs) x = d.sample(rng);
  const double share = top_fraction_share(xs, 0.10);
  EXPECT_GT(share, 0.88);  // paper: 94.7%
}

TEST(SizeDist, TailStartsAtThreshold) {
  Rng rng(5);
  const SizeDistribution d = SizeDistribution::ripple();
  // ~10% of samples should exceed the tail threshold ($1,740).
  int above = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) above += (d.sample(rng) >= d.tail_threshold());
  EXPECT_NEAR(static_cast<double>(above) / n, 0.10, 0.02);
}

TEST(SizeDist, AllSamplesPositive) {
  Rng rng(6);
  const SizeDistribution d = SizeDistribution::ripple();
  for (int i = 0; i < 10000; ++i) EXPECT_GT(d.sample(rng), 0);
}

TEST(SizeDist, RejectsBadParameters) {
  EXPECT_THROW(SizeDistribution(-1, 1, 0.1, 10, 2), std::invalid_argument);
  EXPECT_THROW(SizeDistribution(1, 0, 0.1, 10, 2), std::invalid_argument);
  EXPECT_THROW(SizeDistribution(1, 1, 1.5, 10, 2), std::invalid_argument);
  EXPECT_THROW(SizeDistribution(1, 1, 0.1, 10, 0.9), std::invalid_argument);
}

// --- Pair generation ----------------------------------------------------------

TEST(PairGen, SenderNeverEqualsReceiver) {
  Rng rng(7);
  RecurrentPairGenerator gen(50, {}, rng);
  for (int i = 0; i < 5000; ++i) {
    const auto [s, r] = gen.next(rng);
    EXPECT_NE(s, r);
    EXPECT_LT(s, 50u);
    EXPECT_LT(r, 50u);
  }
}

TEST(PairGen, RecurrenceFractionNearConfig) {
  // Measure the recurring fraction the way Fig. 4a does: a transaction is
  // recurring if its (sender, receiver) pair appeared before within the
  // window. With a long window the measured fraction approaches the
  // configured recurrence (86%).
  Rng rng(8);
  PairGenConfig config;
  RecurrentPairGenerator gen(200, config, rng);
  std::set<std::pair<NodeId, NodeId>> seen;
  int recurring = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto pair = gen.next(rng);
    if (!seen.insert(pair).second) ++recurring;
  }
  const double fraction = static_cast<double>(recurring) / n;
  EXPECT_GT(fraction, 0.80);
  EXPECT_LT(fraction, 0.99);
}

TEST(PairGen, TopFiveReceiversCarryMostRecurringVolume) {
  // Fig. 4b: the top-5 recurring counterparties carry >70% of recurring
  // transactions (transaction-weighted across senders), measured with the
  // daily-concentration profile the figure describes.
  Rng rng(9);
  RecurrentPairGenerator gen(300, PairGenConfig::daily(), rng);
  // Count only *recurring* transactions (pair seen before within the same
  // 24h window), as Fig. 4b does: "percentage of top-5 recurring
  // transactions among all recurring transactions in a 24-hour period".
  std::size_t top5_total = 0, total_all = 0;
  for (int day = 0; day < 30; ++day) {
    std::set<std::pair<NodeId, NodeId>> seen;
    std::map<NodeId, std::map<NodeId, int>> recurring;
    for (int i = 0; i < 2000; ++i) {
      const auto pair = gen.next(rng);
      if (!seen.insert(pair).second) ++recurring[pair.first][pair.second];
    }
    for (const auto& [sender, receivers] : recurring) {
      std::vector<int> per_receiver;
      for (const auto& [r, c] : receivers) per_receiver.push_back(c);
      std::sort(per_receiver.rbegin(), per_receiver.rend());
      for (std::size_t i = 0; i < per_receiver.size(); ++i) {
        total_all += static_cast<std::size_t>(per_receiver[i]);
        if (i < 5) top5_total += static_cast<std::size_t>(per_receiver[i]);
      }
    }
  }
  ASSERT_GT(total_all, 0u);
  const double share = static_cast<double>(top5_total) / total_all;
  EXPECT_GT(share, 0.55);
  EXPECT_LT(share, 0.95);
}

TEST(PairGen, HistoryGrowsWithNewReceivers) {
  Rng rng(10);
  RecurrentPairGenerator gen(40, {}, rng);
  for (int i = 0; i < 1000; ++i) gen.next(rng);
  // Some sender must have accumulated more than one counterparty.
  bool some_history = false;
  for (NodeId s = 0; s < 40; ++s) {
    if (gen.receivers_of(s).size() > 1) some_history = true;
  }
  EXPECT_TRUE(some_history);
}

TEST(PairGen, RejectsTinyNetworks) {
  Rng rng(11);
  EXPECT_THROW(RecurrentPairGenerator(1, {}, rng), std::invalid_argument);
}

// --- Trace I/O -------------------------------------------------------------------

TEST(TraceIo, RoundTrip) {
  std::vector<Transaction> txs;
  for (int i = 0; i < 5; ++i) {
    txs.push_back({static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
                   1.5 * (i + 1), static_cast<double>(i)});
  }
  std::stringstream ss;
  write_trace(ss, txs);
  const auto back = read_trace(ss);
  ASSERT_EQ(back.size(), txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(back[i].sender, txs[i].sender);
    EXPECT_EQ(back[i].receiver, txs[i].receiver);
    EXPECT_DOUBLE_EQ(back[i].amount, txs[i].amount);
    EXPECT_DOUBLE_EQ(back[i].timestamp, txs[i].timestamp);
  }
}

TEST(TraceIo, TimestampDefaultsToIndex) {
  std::istringstream is("0,1,5.0\n1,2,6.0\n");
  const auto txs = read_trace(is);
  ASSERT_EQ(txs.size(), 2u);
  EXPECT_DOUBLE_EQ(txs[1].timestamp, 1.0);
}

TEST(TraceIo, ToleratesHeaderAndComments) {
  std::istringstream is("sender,receiver,amount\n# note\n0,1,2.5\n");
  const auto txs = read_trace(is);
  ASSERT_EQ(txs.size(), 1u);
  EXPECT_DOUBLE_EQ(txs[0].amount, 2.5);
}

TEST(TraceIo, MalformedBodyThrows) {
  std::istringstream is("0,1,2.5\nbad,row,here\n");
  EXPECT_THROW(read_trace(is), std::runtime_error);
}

// --- Workloads --------------------------------------------------------------------

TEST(Workload, ToyWorkloadConsistent) {
  const Workload w = make_toy_workload(30, 100, 5);
  EXPECT_EQ(w.transactions().size(), 100u);
  for (const auto& tx : w.transactions()) {
    EXPECT_NE(tx.sender, tx.receiver);
    EXPECT_GT(tx.amount, 0);
    EXPECT_TRUE(reachable(w.graph(), tx.sender, tx.receiver));
  }
}

TEST(Workload, MakeStateAppliesScale) {
  const Workload w = make_toy_workload(20, 10, 6);
  const NetworkState s1 = w.make_state(1.0);
  const NetworkState s10 = w.make_state(10.0);
  EXPECT_NEAR(s10.total_balance(), 10 * s1.total_balance(), 1e-6);
  EXPECT_TRUE(s10.check_invariants());
}

TEST(Workload, StatesAreIndependent) {
  const Workload w = make_toy_workload(20, 10, 7);
  NetworkState a = w.make_state();
  const NetworkState b = w.make_state();
  const auto id = a.hold(Path{0}, a.balance(0) / 2);
  ASSERT_TRUE(id);
  EXPECT_NE(a.balance(0), b.balance(0));
  a.abort(*id);
}

TEST(Workload, SizeQuantileMonotone) {
  const Workload w = make_toy_workload(20, 500, 8);
  EXPECT_LE(w.size_quantile(0.5), w.size_quantile(0.9));
  EXPECT_LE(w.size_quantile(0.9), w.size_quantile(0.99));
}

TEST(Workload, TruncatedKeepsPrefix) {
  const Workload w = make_toy_workload(20, 100, 9);
  const Workload t = w.truncated(10);
  ASSERT_EQ(t.transactions().size(), 10u);
  EXPECT_EQ(t.transactions()[3].sender, w.transactions()[3].sender);
  EXPECT_EQ(t.graph().num_edges(), w.graph().num_edges());
}

TEST(Workload, TestbedWorkloadShape) {
  WorkloadConfig c;
  c.num_transactions = 50;
  c.seed = 3;
  const Workload w = make_testbed_workload(50, 1000, 1500, c);
  EXPECT_EQ(w.graph().num_nodes(), 50u);
  EXPECT_EQ(w.transactions().size(), 50u);
  const NetworkState s = w.make_state();
  for (std::size_t ch = 0; ch < w.graph().num_channels(); ++ch) {
    const EdgeId e = w.graph().channel_forward_edge(ch);
    const Amount cap = s.balance(e) + s.balance(w.graph().reverse(e));
    EXPECT_GE(cap, 1000 - 1e-6);
    EXPECT_LT(cap, 1500);
  }
}

TEST(Workload, DeterministicPerSeed) {
  WorkloadConfig c;
  c.num_transactions = 30;
  c.seed = 11;
  const Workload a = make_testbed_workload(30, 100, 200, c);
  const Workload b = make_testbed_workload(30, 100, 200, c);
  ASSERT_EQ(a.transactions().size(), b.transactions().size());
  for (std::size_t i = 0; i < a.transactions().size(); ++i) {
    EXPECT_EQ(a.transactions()[i].sender, b.transactions()[i].sender);
    EXPECT_DOUBLE_EQ(a.transactions()[i].amount, b.transactions()[i].amount);
  }
}

TEST(Workload, SizeQuantileMemoMatchesDirectComputation) {
  // The memoized quantile must be bit-identical to the direct
  // percentile-over-all-amounts computation, on first and repeat calls.
  const Workload w = make_toy_workload(25, 400, 13);
  for (const double q : {0.5, 0.9, 0.99}) {
    std::vector<double> sizes;
    for (const auto& tx : w.transactions()) sizes.push_back(tx.amount);
    const Amount direct = percentile(std::move(sizes), q * 100.0);
    EXPECT_EQ(w.size_quantile(q), direct);  // cold
    EXPECT_EQ(w.size_quantile(q), direct);  // memoized
  }
}

// Oracle: the pre-refactor make_testbed_workload generation loop, verbatim.
// The fold into generate_transactions (uniform-pairs mode) must consume the
// RNG stream identically, so the whole trace is pinned bit-for-bit.
TEST(Workload, TestbedTraceMatchesPreFoldOracle) {
  constexpr std::size_t kNodes = 40;
  constexpr Amount kCapLo = 500, kCapHi = 900;
  WorkloadConfig c;
  c.num_transactions = 120;
  c.seed = 17;

  Rng rng(c.seed);
  Graph g = watts_strogatz(kNodes, 8, 0.3, rng);
  NetworkState init(g);
  init.assign_uniform_skewed(kCapLo, kCapHi, 0.35, 0.65, rng);
  FeeSchedule fees = FeeSchedule::paper_default(g, rng);
  const bool check_pairs = c.ensure_connectivity && !is_connected(g);
  const SizeDistribution sizes = SizeDistribution::ripple();
  std::vector<Transaction> expected;
  while (expected.size() < c.num_transactions) {
    const auto s = static_cast<NodeId>(rng.next_below(kNodes));
    const auto r = static_cast<NodeId>(rng.next_below(kNodes));
    if (s == r) continue;
    if (check_pairs && !reachable(g, s, r)) continue;
    Transaction tx;
    tx.sender = s;
    tx.receiver = r;
    tx.amount = sizes.sample(rng);
    tx.timestamp = static_cast<double>(expected.size());
    expected.push_back(tx);
  }

  const Workload w = make_testbed_workload(kNodes, kCapLo, kCapHi, c);
  ASSERT_EQ(w.transactions().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(w.transactions()[i].sender, expected[i].sender);
    EXPECT_EQ(w.transactions()[i].receiver, expected[i].receiver);
    EXPECT_EQ(w.transactions()[i].amount, expected[i].amount);  // exact bits
    EXPECT_EQ(w.transactions()[i].timestamp, expected[i].timestamp);
  }
}

// Oracle: the pre-refactor per-draw receiver-Zipf renormalization. The
// precomputed weight table must keep the generated pair stream identical.
TEST(PairGen, RecurrentDrawsMatchPerDrawPowOracle) {
  PairGenConfig config;  // defaults: recurrence 0.86, zipf 1.0, ws 18
  constexpr std::size_t kNodes = 60;
  constexpr std::size_t kDraws = 4000;

  // Oracle: a shadow generator driven by the same RNG stream, with the
  // working-set logic mirrored and the weights recomputed per draw.
  struct Entry {
    NodeId receiver;
    std::uint64_t last_used;
  };
  std::map<NodeId, std::vector<Entry>> working;
  std::uint64_t clock = 0;
  const auto remember = [&](NodeId owner, NodeId counterparty) {
    auto& ws = working[owner];
    const auto known = std::find_if(
        ws.begin(), ws.end(),
        [&](const Entry& e) { return e.receiver == counterparty; });
    if (known != ws.end()) {
      known->last_used = clock;
      return;
    }
    if (ws.size() >= config.working_set) {
      ws.erase(std::min_element(ws.begin(), ws.end(),
                                [](const Entry& a, const Entry& b) {
                                  return a.last_used < b.last_used;
                                }));
    }
    ws.push_back({counterparty, clock});
  };

  Rng oracle_rng(23);
  std::vector<NodeId> identity(kNodes);
  std::iota(identity.begin(), identity.end(), NodeId{0});
  oracle_rng.shuffle(identity);
  const ZipfSampler sender_sampler(kNodes, config.sender_zipf_s);

  Rng rng(23);
  RecurrentPairGenerator gen(kNodes, config, rng);

  for (std::size_t d = 0; d < kDraws; ++d) {
    ++clock;
    const NodeId sender = identity[sender_sampler(oracle_rng)];
    NodeId receiver = kInvalidNode;
    auto& ws = working[sender];
    bool drew_recurrent = false;
    if (!ws.empty() && oracle_rng.chance(config.recurrence)) {
      double total = 0;
      for (std::size_t i = 0; i < ws.size(); ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1),
                                config.receiver_zipf_s);
      }
      double r = oracle_rng.uniform() * total;
      for (std::size_t i = 0; i < ws.size(); ++i) {
        r -= 1.0 / std::pow(static_cast<double>(i + 1),
                            config.receiver_zipf_s);
        if (r < 0) {
          ws[i].last_used = clock;
          receiver = ws[i].receiver;
          drew_recurrent = true;
          break;
        }
      }
      if (!drew_recurrent) {
        ws.back().last_used = clock;
        receiver = ws.back().receiver;
        drew_recurrent = true;
      }
    }
    if (!drew_recurrent) {
      while (true) {
        const auto r = static_cast<NodeId>(oracle_rng.next_below(kNodes));
        if (r != sender) {
          receiver = r;
          break;
        }
      }
      remember(sender, receiver);
    }
    if (config.bidirectional_relationships) remember(receiver, sender);

    const auto [s, r] = gen.next(rng);
    ASSERT_EQ(s, sender) << "draw " << d;
    ASSERT_EQ(r, receiver) << "draw " << d;
  }
}

}  // namespace
}  // namespace flash

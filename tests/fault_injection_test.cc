// Tests for the fault-injection machinery (ScenarioConfig::fault) and the
// on-chain resolution path that lets the timed HTLC lifecycle survive
// channel closes: forced settle/refund semantics at the ledger, break-point
// unwinding in the scenario engine, coordinated hub outages, regional
// close bursts, congestion ramps, and the hub-targeting betweenness helper.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/topology.h"
#include "ledger/fee_policy.h"
#include "ledger/network_state.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "testutil.h"
#include "trace/workload.h"
#include "util/rng.h"

namespace flash {
namespace {

using flash::testing::bwd;
using flash::testing::fwd;
using flash::testing::make_graph;
using flash::testing::set_channel;

// Workload over a hand-built graph: `per_side` on every directed edge,
// zero fees, explicit transactions.
Workload make_custom_workload(Graph g, Amount per_side,
                              std::vector<Transaction> txs) {
  std::vector<Amount> balances(g.num_edges(), per_side);
  FeeSchedule fees(g);
  return Workload(std::move(g), std::move(balances), std::move(fees),
                  std::move(txs), "custom");
}

// --- Ledger-level on-chain resolution -----------------------------------

TEST(FaultInjection, ResolveOnCloseRefundsUnsettledHops) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState state(g);
  set_channel(state, g, 0, 100, 100);
  set_channel(state, g, 1, 100, 100);
  const auto id = state.hold(Path{fwd(g, 0), fwd(g, 1)}, 10);
  ASSERT_TRUE(id);

  // No preimage anywhere: the hop on the closing channel times out back
  // to the sender side, on-chain.
  const auto res = state.resolve_holds_on_close(1);
  EXPECT_EQ(res.refunded_hops, 1u);
  EXPECT_EQ(res.settled_hops, 0u);
  EXPECT_EQ(res.refunded_amount, 10);
  EXPECT_EQ(state.balance(fwd(g, 1)), 100);  // refund landed

  // The hold survives with its other hop still escrowed.
  EXPECT_TRUE(state.hold_active(*id));
  EXPECT_EQ(state.balance(fwd(g, 0)), 90);
  std::size_t bad = 0;
  EXPECT_TRUE(state.check_invariants(&bad));

  state.abort(*id);
  EXPECT_EQ(state.balance(fwd(g, 0)), 100);
  EXPECT_EQ(state.active_holds(), 0u);
  EXPECT_TRUE(state.check_invariants(&bad));
}

TEST(FaultInjection, ResolveOnCloseSettlesWhenPreimagePropagating) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState state(g);
  set_channel(state, g, 0, 100, 100);
  set_channel(state, g, 1, 100, 100);
  const auto id = state.hold(Path{fwd(g, 0), fwd(g, 1)}, 10);
  ASSERT_TRUE(id);

  // The receiver released the preimage: every hop of this hold that a
  // close catches is claimable downstream — same credit commit_hop makes.
  state.mark_hold_settling(*id);
  EXPECT_TRUE(state.hold_settling(*id));
  const auto res = state.resolve_holds_on_close(0);
  EXPECT_EQ(res.settled_hops, 1u);
  EXPECT_EQ(res.refunded_hops, 0u);
  EXPECT_EQ(res.settled_amount, 10);
  EXPECT_EQ(state.balance(bwd(g, 0)), 110);  // forwarded, not refunded
  EXPECT_EQ(state.balance(fwd(g, 0)), 90);
  std::size_t bad = 0;
  EXPECT_TRUE(state.check_invariants(&bad));

  state.commit(*id);  // remaining hop settles off-chain
  EXPECT_EQ(state.balance(bwd(g, 1)), 110);
  EXPECT_EQ(state.active_holds(), 0u);
  EXPECT_TRUE(state.check_invariants(&bad));
}

TEST(FaultInjection, SetChannelBalanceRefusesEscrowedChannel) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState state(g);
  set_channel(state, g, 0, 100, 100);
  set_channel(state, g, 1, 100, 100);
  const auto id = state.hold(Path{fwd(g, 0)}, 10);
  ASSERT_TRUE(id);

  // A raw rewrite under an in-flight hold would corrupt conservation.
  EXPECT_THROW(state.set_channel_balance(0, 0, 0), std::logic_error);
  // The unrelated channel is rewritable.
  EXPECT_NO_THROW(state.set_channel_balance(1, 0, 0));
  EXPECT_EQ(state.channel_deposit(fwd(g, 1)), 0);

  state.resolve_holds_on_close(0);
  EXPECT_NO_THROW(state.set_channel_balance(0, 0, 0));
  EXPECT_EQ(state.active_holds(), 0u);

  // Reopen with a fresh deposit: no ghost holds, invariants clean.
  state.set_channel_balance(0, 60, 40);
  EXPECT_EQ(state.channel_deposit(fwd(g, 0)), 100);
  std::size_t bad = 0;
  EXPECT_TRUE(state.check_invariants(&bad));
  EXPECT_THROW(state.set_channel_balance(0, -1, 0), std::invalid_argument);
}

TEST(FaultInjection, HeldChannelsMarksEscrowedChannelsOnly) {
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  NetworkState state(g);
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    set_channel(state, g, c, 100, 100);
  }
  std::vector<char> held;
  state.held_channels(held);
  EXPECT_EQ(held, (std::vector<char>{0, 0, 0}));

  const auto id = state.hold(Path{fwd(g, 0), fwd(g, 1)}, 5);
  ASSERT_TRUE(id);
  state.held_channels(held);
  EXPECT_EQ(held, (std::vector<char>{1, 1, 0}));

  // A settled hop releases its channel; the rest stay marked.
  state.commit_hop(*id, 1);
  state.held_channels(held);
  EXPECT_EQ(held, (std::vector<char>{1, 0, 0}));

  state.abort(*id);
  state.held_channels(held);
  EXPECT_EQ(held, (std::vector<char>{0, 0, 0}));
}

TEST(FaultInjection, ResolveOnCloseLeavesUntouchedHoldsAlone) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState state(g);
  set_channel(state, g, 0, 100, 100);
  set_channel(state, g, 1, 100, 100);
  // An empty hold (opened, nothing locked yet) and a hold on the OTHER
  // channel: a close must leave both active.
  const HoldId empty = state.open_hold();
  const auto other = state.hold(Path{fwd(g, 1)}, 5);
  ASSERT_TRUE(other);

  const auto res = state.resolve_holds_on_close(0);
  EXPECT_EQ(res.settled_hops + res.refunded_hops, 0u);
  EXPECT_TRUE(state.hold_active(empty));
  EXPECT_TRUE(state.hold_active(*other));
  EXPECT_EQ(state.active_holds(), 2u);

  state.commit(empty);
  state.commit(*other);
  EXPECT_EQ(state.active_holds(), 0u);
  std::size_t bad = 0;
  EXPECT_TRUE(state.check_invariants(&bad));
}

// --- Scenario-level break-point unwinding -------------------------------
//
// Line network 0-1-2-3 (channels 0,1,2), hop_latency 10, one 0->3 payment
// at t=0: hops lock at t=0,10,20, the part arrives at t=30 and settles
// backward at roughly t=40,50,60. Scheduled channel closes probe each
// lifecycle phase.

ScenarioResult run_line(const ScenarioConfig& cfg,
                        std::vector<Transaction> txs) {
  Workload w = make_custom_workload(
      make_graph(4, {{0, 1}, {1, 2}, {2, 3}}), 50, std::move(txs));
  SimConfig sim;
  sim.invariant_stride = 1;  // conservation checked after every payment
  return run_scenario(w, Scheme::kShortestPath, {}, sim, cfg, 1);
}

TEST(FaultInjection, CloseDuringForwardLegFailsBackwardFromBreak) {
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 10.0;
  cfg.fault.channel_faults.push_back({1, 15.0, 0.0});
  const ScenarioResult got = run_line(cfg, {{0, 3, 10.0, 0.0}});
  EXPECT_EQ(got.sim.transactions, 1u);
  EXPECT_EQ(got.sim.successes, 0u);
  EXPECT_EQ(got.htlc_break_failures, 1u);
  EXPECT_EQ(got.fault_channel_closes, 1u);
  EXPECT_EQ(got.channels_closed, 1u);
  // The hop on the broken channel refunds on-chain; the upstream hop
  // unwinds hop-wise off-chain.
  EXPECT_GE(got.htlc_onchain_refunded_hops, 1u);
  EXPECT_EQ(got.htlc_onchain_settled_hops, 0u);
}

TEST(FaultInjection, CloseDuringSettlementForceSettlesRemainder) {
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 10.0;
  // At t=35 the receiver-side hop has settled but two hops are still
  // escrowed mid-settlement.
  cfg.fault.channel_faults.push_back({0, 35.0, 0.0});
  const ScenarioResult got = run_line(cfg, {{0, 3, 10.0, 0.0}});
  // The preimage was already propagating: the close forces the remaining
  // hops to settle — the payment still SUCCEEDS, just partly on-chain.
  EXPECT_EQ(got.sim.successes, 1u);
  EXPECT_EQ(got.htlc_break_failures, 0u);
  EXPECT_GE(got.htlc_onchain_settled_hops, 2u);
  EXPECT_EQ(got.htlc_onchain_refunded_hops, 0u);
}

TEST(FaultInjection, CloseOfLastUnsettledHopCompletesPayment) {
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 10.0;
  // By t=45 only the sender-side hop (channel 0) is still unsettled; the
  // close resolves exactly that one hop on-chain.
  cfg.fault.channel_faults.push_back({0, 45.0, 0.0});
  const ScenarioResult got = run_line(cfg, {{0, 3, 10.0, 0.0}});
  EXPECT_EQ(got.sim.successes, 1u);
  EXPECT_EQ(got.htlc_onchain_settled_hops, 1u);
  EXPECT_EQ(got.htlc_onchain_refunded_hops, 0u);
}

TEST(FaultInjection, GrieferHeldPartForceSettlesOnClose) {
  // Every relay griefs (holds the settle relay far beyond the horizon).
  // Closing a held channel hands the preimage to the chain: the payment
  // completes without waiting out the griefer.
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 10.0;
  cfg.htlc.holder_fraction = 1.0;
  cfg.htlc.holder_delay = 1e6;
  cfg.fault.channel_faults.push_back({2, 50.0, 0.0});
  const ScenarioResult got = run_line(cfg, {{0, 3, 10.0, 0.0}});
  EXPECT_EQ(got.sim.successes, 1u);
  EXPECT_GT(got.htlc_holder_delays, 0u);
  EXPECT_GE(got.htlc_onchain_settled_hops, 1u);
}

TEST(FaultInjection, ReopenWhileRefundQueuedThenRoutesAgain) {
  // Close at t=15 breaks the first payment mid-forward; the channel
  // reopens at t=17 while the upstream hop-wise refund (due ~t=25) is
  // still queued. A second payment at t=40 must route over the reopened
  // channel's fresh deposit.
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 10.0;
  cfg.fault.channel_faults.push_back({1, 15.0, 2.0});
  const ScenarioResult got =
      run_line(cfg, {{0, 3, 10.0, 0.0}, {0, 3, 10.0, 40.0}});
  EXPECT_EQ(got.sim.transactions, 2u);
  EXPECT_EQ(got.channels_closed, 1u);
  EXPECT_EQ(got.channels_reopened, 1u);
  EXPECT_EQ(got.htlc_break_failures, 1u);
  EXPECT_EQ(got.sim.successes, 1u);  // the post-reopen payment
}

TEST(FaultInjection, CloseDuringAmpBarrierWaitFailsAllParts) {
  // Diamond with unequal arms: 0-1-4 (2 hops) and 0-2-3-4 (3 hops). An
  // 80-unit elephant must split across both 50-capacity arms; the short
  // arm arrives at t=20 and waits at the AMP barrier for the long arm
  // (due t=30). Closing the short arm's last channel at t=25 breaks the
  // ARRIVED part — the whole payment fails, all parts unwind.
  Workload w = make_custom_workload(
      make_graph(5, {{0, 1}, {1, 4}, {0, 2}, {2, 3}, {3, 4}}), 50,
      {{0, 4, 80.0, 0.0}});
  SimConfig sim;
  sim.invariant_stride = 1;
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 10.0;
  cfg.fault.channel_faults.push_back({1, 25.0, 0.0});
  FlashOptions opts;
  opts.elephant_threshold = 1;  // force the multipath pipeline
  const ScenarioResult got =
      run_scenario(w, Scheme::kFlash, opts, sim, cfg, 1);
  EXPECT_EQ(got.sim.transactions, 1u);
  EXPECT_GT(got.htlc_payments, 0u);  // the split was actually attempted
  EXPECT_EQ(got.sim.successes, 0u);
  EXPECT_EQ(got.htlc_break_failures, 1u);
  EXPECT_GE(got.htlc_onchain_refunded_hops, 1u);
}

// --- FaultPlan: coordinated outages, bursts, congestion -----------------

ScenarioConfig toy_htlc_config() {
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 1.0;
  return cfg;
}

TEST(FaultInjection, HubOutageDegradesInsideWindowAndRecovers) {
  const Workload w = make_toy_workload(30, 300, 4);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig cfg = toy_htlc_config();
  cfg.fault.hub_count = 2;
  cfg.fault.hub_outage_start = 100.0;   // arrivals are at t = 0..299
  cfg.fault.hub_outage_duration = 50.0;
  const ScenarioResult got = run_scenario(w, Scheme::kFlash, {}, sim, cfg, 4);
  EXPECT_GE(got.fault_hub_outages, 1u);
  EXPECT_GT(got.fault_window_payments, 0u);
  EXPECT_GT(got.post_fault_payments, 0u);
  EXPECT_LE(got.fault_window_successes, got.fault_window_payments);
  // Recovery: payments succeed again after the hubs come back.
  EXPECT_GT(got.post_fault_successes, 0u);
  EXPECT_GE(got.fault_recovery_time, 0.0);
  // Taking the top hubs offline can only hurt.
  const ScenarioResult baseline =
      run_scenario(w, Scheme::kFlash, {}, sim, toy_htlc_config(), 4);
  EXPECT_LE(got.sim.successes, baseline.sim.successes);
}

TEST(FaultInjection, RegionalBurstClosesAndReopensChannels) {
  const Workload w = make_toy_workload(30, 300, 5);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig cfg = toy_htlc_config();
  cfg.fault.burst_channels = 5;
  cfg.fault.burst_time = 100.0;
  cfg.fault.burst_reopen_after = 50.0;
  const ScenarioResult got =
      run_scenario(w, Scheme::kShortestPath, {}, sim, cfg, 5);
  EXPECT_GE(got.fault_channel_closes, 1u);
  EXPECT_LE(got.fault_channel_closes, 5u);
  EXPECT_EQ(got.channels_closed, got.fault_channel_closes);
  EXPECT_EQ(got.channels_reopened, got.fault_channel_closes);
}

TEST(FaultInjection, CongestionRampCompressesArrivals) {
  const Workload w = make_toy_workload(30, 300, 6);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig cfg = toy_htlc_config();
  cfg.fault.congestion_factor = 4.0;
  cfg.fault.congestion_start = 50.0;
  cfg.fault.congestion_duration = 100.0;
  const ScenarioResult got =
      run_scenario(w, Scheme::kShortestPath, {}, sim, cfg, 6);
  EXPECT_GT(got.fault_congestion_arrivals, 0u);
  EXPECT_EQ(got.sim.transactions, 300u);
}

TEST(FaultInjection, RebalanceSkipsEscrowedChannels) {
  const Workload w = make_toy_workload(30, 300, 7);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 5.0;  // plenty of escrow at any instant
  cfg.rebalance.interval = 5.0;
  cfg.rebalance.strength = 0.5;
  const ScenarioResult got =
      run_scenario(w, Scheme::kShortestPath, {}, sim, cfg, 7);
  EXPECT_GT(got.rebalance_events, 0u);
  // Escrowed channels must be left alone — sweeping them would corrupt
  // the conservation invariant under the open holds.
  EXPECT_GT(got.rebalance_skipped_channels, 0u);
}

TEST(FaultInjection, ComposedDynamicsRunConservatively) {
  // htlc x churn x gossip x rebalance x full FaultPlan, with the ledger
  // invariant checked after every payment (invariant_stride = 1): the
  // engine throws on any conservation violation, so completing the run IS
  // the assertion.
  const Workload w = make_toy_workload(30, 300, 8);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  sim.invariant_stride = 1;
  ScenarioConfig cfg;
  cfg.htlc.hop_latency = 1.0;
  cfg.htlc.timelock_delta = 40.0;
  cfg.churn.close_rate = 0.02;
  cfg.churn.mean_downtime = 30.0;
  cfg.gossip.hop_delay = 0.5;
  cfg.rebalance.interval = 20.0;
  cfg.rebalance.strength = 0.3;
  cfg.retry.max_retries = 1;
  cfg.fault.hub_count = 2;
  cfg.fault.hub_outage_start = 120.0;
  cfg.fault.hub_outage_duration = 40.0;
  cfg.fault.burst_channels = 3;
  cfg.fault.burst_time = 60.0;
  cfg.fault.burst_reopen_after = 30.0;
  cfg.fault.congestion_factor = 2.0;
  cfg.fault.congestion_start = 200.0;
  cfg.fault.congestion_duration = 50.0;
  for (const Scheme scheme : {Scheme::kFlash, Scheme::kShortestPath}) {
    SCOPED_TRACE(scheme_name(scheme));
    const ScenarioResult a = run_scenario(w, scheme, {}, sim, cfg, 9);
    EXPECT_EQ(a.sim.transactions, 300u);
    EXPECT_GT(a.htlc_payments, 0u);
    // Deterministic replay: the whole composition is seed-driven.
    const ScenarioResult b = run_scenario(w, scheme, {}, sim, cfg, 9);
    EXPECT_EQ(a.payment_digest, b.payment_digest);
    EXPECT_EQ(a.sim.successes, b.sim.successes);
    EXPECT_EQ(a.htlc_break_failures, b.htlc_break_failures);
    EXPECT_EQ(a.htlc_onchain_settled_hops, b.htlc_onchain_settled_hops);
    EXPECT_EQ(a.htlc_onchain_refunded_hops, b.htlc_onchain_refunded_hops);
    EXPECT_EQ(a.fault_channel_closes, b.fault_channel_closes);
    EXPECT_EQ(a.fault_window_successes, b.fault_window_successes);
    EXPECT_EQ(a.fault_recovery_time, b.fault_recovery_time);
  }
}

// --- Hub targeting: approximate betweenness -----------------------------

TEST(FaultInjection, BetweennessRanksStarCenterFirst) {
  const Graph star = star_graph(6);
  const auto exact = approx_betweenness(star, 0, 1);  // all pivots
  ASSERT_EQ(exact.size(), 7u);
  for (std::size_t i = 1; i < exact.size(); ++i) {
    EXPECT_GT(exact[0], exact[i]);
    EXPECT_EQ(exact[i], 0.0);  // leaves sit on no shortest path
  }
  // Sampled pivots keep the ranking (>= 2 of 3 pivots are leaves, each
  // crediting the center).
  const auto sampled = approx_betweenness(star, 3, 42);
  for (std::size_t i = 1; i < sampled.size(); ++i) {
    EXPECT_GT(sampled[0], sampled[i]);
  }
  // Deterministic in (samples, seed).
  EXPECT_EQ(sampled, approx_betweenness(star, 3, 42));
}

TEST(FaultInjection, BetweennessRanksLineMiddleAboveEnds) {
  const Graph line = line_graph(5);
  const auto score = approx_betweenness(line, 0, 1);
  ASSERT_EQ(score.size(), 5u);
  EXPECT_EQ(score[0], 0.0);
  EXPECT_EQ(score[4], 0.0);
  EXPECT_GT(score[2], score[1]);  // the middle carries the most pairs
  EXPECT_GT(score[2], score[3]);
}

}  // namespace
}  // namespace flash

// Cross-validation: the ledger simulator and the message-level testbed are
// two independent implementations of the same routing algorithms and
// settlement semantics. For deterministic schemes (SP, Spider) they must
// produce *identical* outcomes — per-payment success and final channel
// balances — on the same transaction stream. A divergence in either
// implementation shows up here.
#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/edge_disjoint.h"
#include "routing/shortest_path.h"
#include "routing/spider.h"
#include "testbed/network.h"
#include "testbed/sessions.h"
#include "trace/workload.h"
#include "testutil.h"

namespace flash {
namespace {

struct Fixture {
  Workload workload;
  NetworkState ledger;
  testbed::Network net;

  explicit Fixture(std::uint64_t seed, std::size_t nodes = 25,
                   std::size_t txs = 300)
      : workload(make_testbed_workload(nodes, 500, 1000,
                                       WorkloadConfig{txs, seed, true})),
        ledger(workload.make_state()),
        net(workload.graph()) {
    for (EdgeId e = 0; e < workload.graph().num_edges(); ++e) {
      net.set_balance(e, ledger.balance(e));
    }
  }

  void expect_balances_match(const char* label) {
    for (EdgeId e = 0; e < workload.graph().num_edges(); ++e) {
      ASSERT_NEAR(ledger.balance(e), net.balance(e), 1e-6)
          << label << ": divergence at edge " << e;
    }
  }
};

TEST(CrossValidation, ShortestPathIdenticalOutcomes) {
  Fixture f(11);
  const Graph& g = f.workload.graph();
  FeeSchedule fees(g);
  ShortestPathRouter router(g, fees);

  for (const Transaction& tx : f.workload.transactions()) {
    // Ledger side.
    const RouteResult sim = router.route(tx, f.ledger);
    // Testbed side, same shortest path.
    const Path p = bfs_path(g, tx.sender, tx.receiver);
    bool tb_success = false;
    if (!p.empty()) {
      testbed::SpSession session(f.net, g.path_nodes(p, tx.sender),
                                 tx.amount,
                                 [&](bool ok) { tb_success = ok; });
      session.start();
      f.net.queue().run_until_idle(1u << 22);
    }
    ASSERT_EQ(sim.success, tb_success)
        << "payment " << tx.sender << "->" << tx.receiver << " amount "
        << tx.amount;
  }
  f.expect_balances_match("SP");
  EXPECT_DOUBLE_EQ(f.net.total_pending(), 0);
}

TEST(CrossValidation, SpiderIdenticalOutcomes) {
  Fixture f(13);
  const Graph& g = f.workload.graph();
  FeeSchedule fees(g);
  SpiderRouter router(g, fees);

  for (const Transaction& tx : f.workload.transactions()) {
    const RouteResult sim = router.route(tx, f.ledger);

    const auto edge_paths =
        edge_disjoint_shortest_paths(g, tx.sender, tx.receiver, 4);
    std::vector<testbed::NodePath> node_paths;
    for (const Path& p : edge_paths) {
      node_paths.push_back(g.path_nodes(p, tx.sender));
    }
    bool tb_success = false;
    if (!node_paths.empty()) {
      testbed::SpiderSession session(f.net, node_paths, tx.amount,
                                     [&](bool ok) { tb_success = ok; });
      session.start();
      f.net.queue().run_until_idle(1u << 22);
    }
    ASSERT_EQ(sim.success, tb_success)
        << "payment " << tx.sender << "->" << tx.receiver << " amount "
        << tx.amount;
  }
  f.expect_balances_match("Spider");
  EXPECT_DOUBLE_EQ(f.net.total_pending(), 0);
}

TEST(CrossValidation, LedgerAndTestbedConserveSameTotal) {
  Fixture f(17);
  const Amount ledger_total = f.ledger.total_balance();
  const Amount net_total = f.net.total_balance();
  EXPECT_NEAR(ledger_total, net_total, 1e-6);
}

}  // namespace
}  // namespace flash

// Tests for graph serialization: edge-list file wrappers and the
// Lightning-snapshot loader (round trips plus every parse error path).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/graph_io.h"
#include "graph/topology.h"

namespace flash {
namespace {

LightningSnapshot tiny_snapshot() {
  LightningSnapshot snap;
  snap.num_nodes = 4;
  snap.channels.push_back({0, 1, 500000.0, 250000.0, 1.0, 0.001, 0.0, 0.01});
  snap.channels.push_back({1, 2, 0.125, 4e9, 0.0, 0.0, 2.0, 0.005});
  snap.channels.push_back({3, 1, 1e7, 1e7, 0.5, 0.0025, 0.5, 0.0025});
  return snap;
}

TEST(EdgeListFile, SaveLoadRoundTrip) {
  Rng rng(11);
  const Graph g = scale_free(60, 180, rng);
  const std::string path = testing::TempDir() + "/flash_edge_list.csv";
  save_edge_list(path, g);
  const Graph h = load_edge_list(path);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_channels(), g.num_channels());
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    const EdgeId e = g.channel_forward_edge(c);
    const EdgeId f = h.channel_forward_edge(c);
    EXPECT_EQ(g.from(e), h.from(f));
    EXPECT_EQ(g.to(e), h.to(f));
  }
}

TEST(EdgeListFile, MissingFileThrows) {
  EXPECT_THROW(load_edge_list(testing::TempDir() + "/no_such_file.csv"),
               std::runtime_error);
}

TEST(Snapshot, StreamRoundTripIsExact) {
  const LightningSnapshot snap = tiny_snapshot();
  std::stringstream ss;
  write_lightning_snapshot(ss, snap);
  const LightningSnapshot back = read_lightning_snapshot(ss);
  ASSERT_EQ(back.num_nodes, snap.num_nodes);
  ASSERT_EQ(back.channels.size(), snap.channels.size());
  for (std::size_t c = 0; c < snap.channels.size(); ++c) {
    const auto& a = snap.channels[c];
    const auto& b = back.channels[c];
    EXPECT_EQ(a.u, b.u);
    EXPECT_EQ(a.v, b.v);
    // write_lightning_snapshot prints max_digits10 digits, so doubles
    // round-trip bit-exactly.
    EXPECT_EQ(a.balance_uv, b.balance_uv);
    EXPECT_EQ(a.balance_vu, b.balance_vu);
    EXPECT_EQ(a.base_uv, b.base_uv);
    EXPECT_EQ(a.rate_uv, b.rate_uv);
    EXPECT_EQ(a.base_vu, b.base_vu);
    EXPECT_EQ(a.rate_vu, b.rate_vu);
  }
}

TEST(Snapshot, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/flash_snapshot.csv";
  save_lightning_snapshot(path, tiny_snapshot());
  const LightningSnapshot back = load_lightning_snapshot(path);
  EXPECT_EQ(back.num_nodes, 4u);
  EXPECT_EQ(back.channels.size(), 3u);
  EXPECT_EQ(back.channels[2].balance_uv, 1e7);
}

TEST(Snapshot, ToGraphPreservesChannelOrder) {
  const Graph g = tiny_snapshot().to_graph();
  EXPECT_EQ(g.num_nodes(), 4u);
  ASSERT_EQ(g.num_channels(), 3u);
  const EdgeId e1 = g.channel_forward_edge(1);
  EXPECT_EQ(g.from(e1), 1u);
  EXPECT_EQ(g.to(e1), 2u);
}

TEST(Snapshot, CommentsAndBlankLinesIgnored) {
  std::istringstream is(
      "# header comment\n"
      "\n"
      "nodes,3\n"
      "  # indented comment\n"
      "channel,0,1,10,10,0,0.001,0,0.001\n");
  const LightningSnapshot snap = read_lightning_snapshot(is);
  EXPECT_EQ(snap.num_nodes, 3u);
  EXPECT_EQ(snap.channels.size(), 1u);
}

TEST(Snapshot, NodesHeaderOptional) {
  std::istringstream is("channel,2,5,1,1,0,0,0,0\n");
  EXPECT_EQ(read_lightning_snapshot(is).num_nodes, 6u);
}

TEST(Snapshot, EmptyInputIsEmptySnapshot) {
  std::istringstream is("# nothing but comments\n");
  const LightningSnapshot snap = read_lightning_snapshot(is);
  EXPECT_EQ(snap.num_nodes, 0u);
  EXPECT_TRUE(snap.channels.empty());
}

void expect_rejects(const std::string& body, const char* what) {
  std::istringstream is(body);
  EXPECT_THROW(read_lightning_snapshot(is), std::runtime_error) << what;
}

TEST(Snapshot, MalformedLinesThrow) {
  expect_rejects("channel,0,1,10,10\n", "too few fields");
  expect_rejects("channel,0,1,10,10,0,0.001,0,0.001,extra\n",
                 "too many fields");
  expect_rejects("channel,0,x,10,10,0,0.001,0,0.001\n", "bad node id");
  expect_rejects("channel,0,1,ten,10,0,0.001,0,0.001\n", "bad balance");
  expect_rejects("edge,0,1,10,10,0,0.001,0,0.001\n", "unknown record");
  expect_rejects("nodes,many\n", "bad node count");
  expect_rejects("nodes,3,4\n", "nodes header arity");
}

TEST(Snapshot, DuplicateChannelThrows) {
  expect_rejects(
      "channel,0,1,10,10,0,0,0,0\n"
      "channel,1,0,5,5,0,0,0,0\n",
      "duplicate across orientations");
}

TEST(Snapshot, SelfChannelThrows) {
  expect_rejects("channel,2,2,10,10,0,0,0,0\n", "self channel");
}

TEST(Snapshot, NodeIdBeyondDeclaredCountThrows) {
  expect_rejects("nodes,2\nchannel,0,2,10,10,0,0,0,0\n", "id out of range");
}

TEST(Snapshot, OverflowCapacityThrows) {
  // 1e400 overflows a double; parse_double reports it, and the loader
  // refuses rather than minting infinite capacity.
  expect_rejects("channel,0,1,1e400,10,0,0,0,0\n", "overflow balance");
  expect_rejects("channel,0,1,inf,10,0,0,0,0\n", "infinite balance");
  expect_rejects("channel,0,1,nan,10,0,0,0,0\n", "nan balance");
  expect_rejects("channel,0,1,-5,10,0,0,0,0\n", "negative balance");
  expect_rejects("channel,0,1,10,10,0,-0.001,0,0\n", "negative rate");
  expect_rejects("channel,0,1,10,10,1e400,0,0,0\n", "overflow base fee");
}

TEST(ScaleFreeLightning, MatchesCrawledDensity) {
  Rng rng(7);
  const Graph g = scale_free_lightning(2511, rng);
  EXPECT_EQ(g.num_nodes(), 2511u);
  // The crawled snapshot has 36,016 channels over 2,511 nodes; rewire
  // collisions may drop a few.
  EXPECT_GE(g.num_channels(), 35800u);
  EXPECT_LE(g.num_channels(), 36016u);
}

}  // namespace
}  // namespace flash

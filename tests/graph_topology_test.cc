// Tests for topology generators and edge-list I/O.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "graph/graph_io.h"
#include "graph/topology.h"

namespace flash {
namespace {

/// No self loops, no duplicate undirected channels.
void expect_simple(const Graph& g) {
  std::set<std::pair<NodeId, NodeId>> seen;
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    const EdgeId e = g.channel_forward_edge(c);
    NodeId u = g.from(e), v = g.to(e);
    EXPECT_NE(u, v);
    if (u > v) std::swap(u, v);
    EXPECT_TRUE(seen.emplace(u, v).second) << "duplicate channel";
  }
}

TEST(WattsStrogatz, CountsAndSimplicity) {
  Rng rng(1);
  Graph g = watts_strogatz(50, 8, 0.3, rng);
  EXPECT_EQ(g.num_nodes(), 50u);
  // Ring lattice places n*k/2 candidate channels; a few may be dropped on
  // rewire collisions.
  EXPECT_GE(g.num_channels(), 180u);
  EXPECT_LE(g.num_channels(), 200u);
  expect_simple(g);
}

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  Rng rng(2);
  Graph g = watts_strogatz(20, 4, 0.0, rng);
  EXPECT_EQ(g.num_channels(), 40u);
  // Every node connects to its two clockwise neighbours.
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.out_degree(v), 4u);
}

TEST(WattsStrogatz, ConnectedAtModerateBeta) {
  Rng rng(3);
  EXPECT_TRUE(is_connected(watts_strogatz(100, 6, 0.3, rng)));
}

TEST(WattsStrogatz, RejectsBadParams) {
  Rng rng(4);
  EXPECT_THROW(watts_strogatz(4, 4, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 1, 0.1, rng), std::invalid_argument);
}

TEST(BarabasiAlbert, CountsAndHubs) {
  Rng rng(5);
  Graph g = barabasi_albert(200, 3, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  expect_simple(g);
  // Preferential attachment produces hubs: max degree well above average.
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < 200; ++v) max_deg = std::max(max_deg, g.out_degree(v));
  const double avg = 2.0 * g.num_channels() / 200.0;
  EXPECT_GT(static_cast<double>(max_deg), 3 * avg);
}

TEST(BarabasiAlbert, Connected) {
  Rng rng(6);
  EXPECT_TRUE(is_connected(barabasi_albert(100, 2, rng)));
}

TEST(ErdosRenyi, ExactChannelCount) {
  Rng rng(7);
  Graph g = erdos_renyi(30, 100, rng);
  EXPECT_EQ(g.num_channels(), 100u);
  expect_simple(g);
}

TEST(ErdosRenyi, RejectsTooMany) {
  Rng rng(8);
  EXPECT_THROW(erdos_renyi(5, 11, rng), std::invalid_argument);
}

TEST(ScaleFree, ExactChannelCount) {
  Rng rng(9);
  Graph g = scale_free(100, 450, rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_channels(), 450u);
  expect_simple(g);
}

TEST(ScaleFree, RippleLikeMatchesPaperCounts) {
  Rng rng(10);
  Graph g = ripple_like(rng);
  EXPECT_EQ(g.num_nodes(), 1870u);
  // 17,416 directed edges in the paper's processed Ripple topology.
  EXPECT_EQ(g.num_edges(), 17416u);
  EXPECT_TRUE(is_connected(g));
}

TEST(ScaleFree, DeterministicPerSeed) {
  Rng a(11), b(11), c(12);
  Graph g1 = scale_free(50, 120, a);
  Graph g2 = scale_free(50, 120, b);
  Graph g3 = scale_free(50, 120, c);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  bool same12 = true, same13 = g1.num_edges() == g3.num_edges();
  for (EdgeId e = 0; e < g1.num_edges(); ++e) {
    same12 = same12 && g1.from(e) == g2.from(e) && g1.to(e) == g2.to(e);
    if (same13 && e < g3.num_edges()) {
      same13 = g1.from(e) == g3.from(e) && g1.to(e) == g3.to(e);
    }
  }
  EXPECT_TRUE(same12);
  EXPECT_FALSE(same13);
}

TEST(SimpleShapes, RingLineStarComplete) {
  EXPECT_EQ(ring_graph(5).num_channels(), 5u);
  EXPECT_EQ(line_graph(5).num_channels(), 4u);
  EXPECT_EQ(star_graph(6).num_channels(), 6u);
  EXPECT_EQ(complete_graph(5).num_channels(), 10u);
  EXPECT_TRUE(is_connected(complete_graph(4)));
}

TEST(PruneLowDegree, RemovesLeavesIteratively) {
  // Line 0-1-2-3-4: pruning min_degree=2 should dissolve the whole line
  // (endpoints peel off repeatedly).
  Graph g = line_graph(5);
  const Graph pruned = prune_low_degree(g, 2);
  EXPECT_EQ(pruned.num_nodes(), 0u);
}

TEST(PruneLowDegree, KeepsCore) {
  // Triangle with a pendant leaf: leaf removed, triangle kept.
  Graph g(4);
  g.add_channel(0, 1);
  g.add_channel(1, 2);
  g.add_channel(2, 0);
  g.add_channel(2, 3);
  std::vector<NodeId> mapping;
  const Graph pruned = prune_low_degree(g, 2, &mapping);
  EXPECT_EQ(pruned.num_nodes(), 3u);
  EXPECT_EQ(pruned.num_channels(), 3u);
  EXPECT_EQ(mapping[3], kInvalidNode);
  EXPECT_NE(mapping[0], kInvalidNode);
}

TEST(GraphIo, RoundTrip) {
  Rng rng(13);
  Graph g = watts_strogatz(20, 4, 0.2, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.from(e), g.from(e));
    EXPECT_EQ(h.to(e), g.to(e));
  }
}

TEST(GraphIo, CommentsAndHeader) {
  std::istringstream is("# comment\nnodes,5\n0,1\n3,4\n");
  const Graph g = read_edge_list(is);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_channels(), 2u);
}

TEST(GraphIo, InfersNodeCount) {
  std::istringstream is("0,7\n");
  EXPECT_EQ(read_edge_list(is).num_nodes(), 8u);
}

TEST(GraphIo, MalformedThrows) {
  std::istringstream a("0\n");
  EXPECT_THROW(read_edge_list(a), std::runtime_error);
  std::istringstream b("x,y\n");
  EXPECT_THROW(read_edge_list(b), std::runtime_error);
}

}  // namespace
}  // namespace flash

// Tests for the channel-balance ledger: initialization, probing, holds,
// the channel conservation invariant, and AMP atomicity.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "ledger/fee_policy.h"
#include "ledger/htlc.h"
#include "ledger/network_state.h"
#include "testutil.h"

namespace flash {
namespace {

using testing::bwd;
using testing::fwd;
using testing::make_graph;
using testing::set_channel;

// --- Fee policy ---------------------------------------------------------------

TEST(FeePolicy, LinearFee) {
  const FeePolicy p{2.0, 0.01};
  EXPECT_DOUBLE_EQ(p.fee(100), 3.0);
  EXPECT_DOUBLE_EQ(p.fee(0), 2.0);
}

TEST(FeeSchedule, PaperDefaultRatesInRange) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  Rng rng(1);
  // Draw many schedules to check both tiers appear and stay in range.
  int low = 0, high = 0;
  for (int i = 0; i < 200; ++i) {
    const FeeSchedule s = FeeSchedule::paper_default(g, rng);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const double r = s.policy(e).rate;
      EXPECT_GE(r, 0.001);
      EXPECT_LE(r, 0.10);
      (r <= 0.01 ? low : high) += 1;
    }
  }
  EXPECT_GT(low, high);  // 90% of channels draw the low tier
  EXPECT_GT(high, 0);
}

TEST(FeeSchedule, BothDirectionsShareRate) {
  Graph g = make_graph(2, {{0, 1}});
  Rng rng(2);
  const FeeSchedule s = FeeSchedule::paper_default(g, rng);
  EXPECT_DOUBLE_EQ(s.policy(0).rate, s.policy(1).rate);
}

TEST(FeeSchedule, PathFeeSumsEdges) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule s(g);
  s.set_policy(fwd(g, 0), {1.0, 0.01});
  s.set_policy(fwd(g, 1), {0.5, 0.02});
  const Path p{fwd(g, 0), fwd(g, 1)};
  EXPECT_DOUBLE_EQ(s.path_fee(p, 100), 1.0 + 1.0 + 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(s.path_rate(p), 0.03);
}

// --- NetworkState: init -----------------------------------------------------

TEST(NetworkState, StartsEmpty) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  EXPECT_DOUBLE_EQ(s.balance(0), 0.0);
  EXPECT_DOUBLE_EQ(s.total_balance(), 0.0);
  EXPECT_TRUE(s.check_invariants());
}

TEST(NetworkState, UniformSplitIsEven) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  Rng rng(3);
  s.assign_uniform_split(100, 200, rng);
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    EXPECT_DOUBLE_EQ(s.balance(fwd(g, c)), s.balance(bwd(g, c)));
    const Amount cap = s.channel_deposit(fwd(g, c));
    EXPECT_GE(cap, 100);
    EXPECT_LT(cap, 200);
  }
  EXPECT_TRUE(s.check_invariants());
}

TEST(NetworkState, SkewedSplitConservesCapacity) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  Rng rng(4);
  s.assign_uniform_skewed(100, 200, 0.1, 0.9, rng);
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    const Amount sum = s.balance(fwd(g, c)) + s.balance(bwd(g, c));
    EXPECT_GE(sum, 100);
    EXPECT_LT(sum, 200);
  }
}

TEST(NetworkState, LognormalSplitPositive) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  Rng rng(5);
  s.assign_lognormal_split(250, 1.0, rng);
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_GT(s.balance(e), 0);
}

TEST(NetworkState, ScaleAllMultiplies) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 20);
  s.scale_all(3.0);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 30);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 0)), 60);
  EXPECT_TRUE(s.check_invariants());
  EXPECT_THROW(s.scale_all(0.0), std::invalid_argument);
}

TEST(NetworkState, NegativeBalanceRejected) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  EXPECT_THROW(s.set_balance(0, -1), std::invalid_argument);
}

// --- Probing ------------------------------------------------------------------

TEST(NetworkState, ProbeReturnsBalancesAndChargesMessages) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  set_channel(s, g, 1, 7, 0);
  const Path p{fwd(g, 0), fwd(g, 1)};
  EXPECT_EQ(s.probe_messages(), 0u);
  const auto b = s.probe_path(p);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b[0], 10);
  EXPECT_DOUBLE_EQ(b[1], 7);
  EXPECT_EQ(s.probe_messages(), 4u);  // PROBE + PROBE_ACK over 2 hops
  s.charge_messages(3);
  EXPECT_EQ(s.probe_messages(), 7u);
}

TEST(NetworkState, PathBottleneckAndCanCarry) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  set_channel(s, g, 1, 4, 0);
  const Path p{fwd(g, 0), fwd(g, 1)};
  EXPECT_DOUBLE_EQ(s.path_bottleneck(p), 4);
  EXPECT_TRUE(s.path_can_carry(p, 4));
  EXPECT_FALSE(s.path_can_carry(p, 5));
  EXPECT_DOUBLE_EQ(s.path_bottleneck({}), 0);
}

// --- Holds ---------------------------------------------------------------------

TEST(NetworkState, HoldCommitMovesFunds) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 1);
  set_channel(s, g, 1, 8, 2);
  const Path p{fwd(g, 0), fwd(g, 1)};
  const auto id = s.hold(p, 5);
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 5);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 0)), 1);  // reverse untouched until commit
  EXPECT_EQ(s.active_holds(), 1u);
  EXPECT_TRUE(s.check_invariants());
  s.commit(*id);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 0)), 6);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 1)), 7);
  EXPECT_EQ(s.active_holds(), 0u);
  EXPECT_TRUE(s.check_invariants());
  // Total funds conserved.
  EXPECT_DOUBLE_EQ(s.total_balance(), 10 + 1 + 8 + 2);
}

TEST(NetworkState, HoldAbortRestores) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  const auto id = s.hold(Path{fwd(g, 0)}, 4);
  ASSERT_TRUE(id);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 6);
  s.abort(*id);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 10);
  EXPECT_TRUE(s.check_invariants());
}

TEST(NetworkState, HoldFailsAtomicallyOnInsufficientBalance) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  set_channel(s, g, 1, 3, 0);  // bottleneck
  const Path p{fwd(g, 0), fwd(g, 1)};
  EXPECT_FALSE(s.hold(p, 5).has_value());
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 10);  // nothing deducted
  EXPECT_EQ(s.active_holds(), 0u);
}

TEST(NetworkState, HoldFlowAggregatesDuplicateEdges) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  // Two entries on the same edge totalling 11 > 10 must fail atomically.
  const std::vector<EdgeAmount> parts{{fwd(g, 0), 6}, {fwd(g, 0), 5}};
  EXPECT_FALSE(s.hold_flow(parts).has_value());
  const std::vector<EdgeAmount> ok{{fwd(g, 0), 6}, {fwd(g, 0), 4}};
  const auto id = s.hold_flow(ok);
  ASSERT_TRUE(id);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 0);
  s.commit(*id);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 0)), 10);
}

TEST(NetworkState, HoldFlowIgnoresNonPositive) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  const std::vector<EdgeAmount> parts{{fwd(g, 0), -3}, {fwd(g, 0), 0}};
  EXPECT_FALSE(s.hold_flow(parts).has_value());  // nothing left to hold
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 10);
}

TEST(NetworkState, DoubleCommitThrows) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  const auto id = s.hold(Path{fwd(g, 0)}, 1);
  s.commit(*id);
  EXPECT_THROW(s.commit(*id), std::logic_error);
  EXPECT_THROW(s.abort(*id), std::logic_error);
}

TEST(NetworkState, StaleHoldIdStaysInvalidAfterSlotReuse) {
  // Hold records are recycled through a free list; the generation tag in
  // the id must keep a settled id invalid even once its slot carries a
  // NEW active hold (a silent double-commit would corrupt balances).
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  const auto stale = s.hold(Path{fwd(g, 0)}, 1);
  s.commit(*stale);
  const auto fresh = s.hold(Path{fwd(g, 0)}, 2);  // reuses the slot
  ASSERT_TRUE(fresh.has_value());
  EXPECT_NE(*fresh, *stale);
  EXPECT_THROW(s.commit(*stale), std::logic_error);
  EXPECT_THROW(s.abort(*stale), std::logic_error);
  EXPECT_EQ(s.active_holds(), 1u);  // the fresh hold is untouched
  s.commit(*fresh);
  EXPECT_EQ(s.active_holds(), 0u);
}

TEST(NetworkState, HoldTableBoundedBySlotRecycling) {
  // Settled slots are reused, so a long hold/settle sequence keeps the
  // invariant sweep O(active holds), not O(total payments ever made).
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 10);
  for (int i = 0; i < 1000; ++i) {
    // Ping-pong a unit between the directions so the balances round-trip
    // and every hold succeeds, whatever the settle pattern.
    const EdgeId e = (i % 2 == 0) ? fwd(g, 0) : g.reverse(fwd(g, 0));
    const auto id = s.hold(Path{e}, 1);
    ASSERT_TRUE(id.has_value()) << "payment " << i;
    if (i % 4 < 2) {
      s.commit(*id);
    } else {
      s.abort(*id);
    }
  }
  EXPECT_EQ(s.active_holds(), 0u);
  EXPECT_TRUE(s.check_invariants());
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)) + s.balance(g.reverse(fwd(g, 0))),
                   20);
}

TEST(NetworkState, HoldValidatesArguments) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  EXPECT_THROW(s.hold(Path{fwd(g, 0)}, 0), std::invalid_argument);
  EXPECT_THROW(s.hold(Path{}, 1), std::invalid_argument);
}

TEST(NetworkState, TotalHeldTracksActiveHolds) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  set_channel(s, g, 1, 10, 0);
  const auto id = s.hold(Path{fwd(g, 0), fwd(g, 1)}, 3);
  EXPECT_DOUBLE_EQ(s.total_held(), 6);  // 3 on each of 2 edges
  s.abort(*id);
  EXPECT_DOUBLE_EQ(s.total_held(), 0);
}

// --- Snapshot ------------------------------------------------------------------

TEST(NetworkState, SnapshotRestore) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 5);
  const auto snap = s.snapshot();
  const auto id = s.hold(Path{fwd(g, 0)}, 4);
  s.commit(*id);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 6);
  s.restore(snap);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 10);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 0)), 5);
  EXPECT_TRUE(s.check_invariants());
}

TEST(NetworkState, SnapshotWithHoldsThrows) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  const auto id = s.hold(Path{fwd(g, 0)}, 1);
  EXPECT_THROW((void)s.snapshot(), std::logic_error);
  s.abort(*id);
}

// --- AtomicPayment (AMP) -------------------------------------------------------

TEST(AtomicPayment, CommitsAllParts) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  NetworkState s(g);
  for (std::size_t c = 0; c < 4; ++c) set_channel(s, g, c, 10, 0);
  AtomicPayment payment(s);
  EXPECT_TRUE(payment.add_part(Path{fwd(g, 0), fwd(g, 1)}, 6));
  EXPECT_TRUE(payment.add_part(Path{fwd(g, 2), fwd(g, 3)}, 4));
  EXPECT_DOUBLE_EQ(payment.held_amount(), 10);
  EXPECT_EQ(payment.parts(), 2u);
  payment.commit();
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 1)), 6);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 3)), 4);
  EXPECT_TRUE(s.check_invariants());
}

TEST(AtomicPayment, DestructorAbortsUncommitted) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  {
    AtomicPayment payment(s);
    EXPECT_TRUE(payment.add_part(Path{fwd(g, 0)}, 7));
    EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 3);
    // no commit: destructor must roll back
  }
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 10);
  EXPECT_EQ(s.active_holds(), 0u);
}

TEST(AtomicPayment, FailedPartLeavesOthersHeldUntilAbort) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  set_channel(s, g, 1, 10, 0);
  set_channel(s, g, 2, 2, 0);  // second path too thin
  set_channel(s, g, 3, 10, 0);
  AtomicPayment payment(s);
  EXPECT_TRUE(payment.add_part(Path{fwd(g, 0), fwd(g, 1)}, 5));
  EXPECT_FALSE(payment.add_part(Path{fwd(g, 2), fwd(g, 3)}, 5));
  payment.abort();
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 10);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 2)), 2);
  EXPECT_TRUE(s.check_invariants());
}

TEST(AtomicPayment, UseAfterSettleThrows) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  AtomicPayment payment(s);
  EXPECT_TRUE(payment.add_part(Path{fwd(g, 0)}, 1));
  payment.commit();
  EXPECT_THROW(payment.add_part(Path{fwd(g, 0)}, 1), std::logic_error);
  EXPECT_THROW(payment.commit(), std::logic_error);
}

// --- Time-extended (HTLC) hold lifecycle ------------------------------------

TEST(NetworkState, OpenHoldExtendsHopByHop) {
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  NetworkState s(g);
  for (std::size_t c = 0; c < 3; ++c) set_channel(s, g, c, 10, 10);
  const HoldId id = s.open_hold();
  EXPECT_EQ(s.active_holds(), 1u);
  EXPECT_EQ(s.hold_parts(id).size(), 0u);
  EXPECT_TRUE(s.extend_hold(id, fwd(g, 0), 4));
  EXPECT_TRUE(s.extend_hold(id, fwd(g, 1), 4));
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 6);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 1)), 6);
  // The forward-lock failure: insufficient balance, nothing changes.
  EXPECT_FALSE(s.extend_hold(id, fwd(g, 2), 11));
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 2)), 10);
  const auto parts = s.hold_parts(id);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].first, fwd(g, 0));
  EXPECT_DOUBLE_EQ(parts[0].second, 4);
  EXPECT_TRUE(s.check_invariants());
  s.abort(id);
  EXPECT_EQ(s.active_holds(), 0u);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 10);
}

TEST(NetworkState, CommitHopSettlesBackwardAndAutoRetires) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 10);
  set_channel(s, g, 1, 10, 10);
  const auto id = s.hold(Path{fwd(g, 0), fwd(g, 1)}, 3);
  ASSERT_TRUE(id.has_value());
  // Backward settlement: last hop first.
  s.commit_hop(*id, 1);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 1)), 13);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 1)), 7);
  EXPECT_DOUBLE_EQ(s.hold_parts(*id)[1].second, 0);  // settled hop reads 0
  EXPECT_EQ(s.active_holds(), 1u);
  EXPECT_TRUE(s.check_invariants());
  // Re-settling a settled hop is a logic error.
  EXPECT_THROW(s.commit_hop(*id, 1), std::logic_error);
  // Settling the last open hop retires the hold automatically.
  s.commit_hop(*id, 0);
  EXPECT_EQ(s.active_holds(), 0u);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 0)), 13);
  EXPECT_TRUE(s.check_invariants());
}

TEST(NetworkState, AbortOnPartiallySettledHoldRefundsRemainder) {
  // The timelock-expiry path: hop 1 already settled, the rest refunds.
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 10);
  set_channel(s, g, 1, 10, 10);
  const auto id = s.hold(Path{fwd(g, 0), fwd(g, 1)}, 3);
  ASSERT_TRUE(id.has_value());
  s.commit_hop(*id, 1);
  s.abort(*id);
  EXPECT_EQ(s.active_holds(), 0u);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 10);  // refunded
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 1)), 13);  // settled hop stays settled
  EXPECT_TRUE(s.check_invariants());
}

TEST(NetworkState, MixedHopSettleAndAbortRetire) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 10);
  set_channel(s, g, 1, 10, 10);
  const auto id = s.hold(Path{fwd(g, 0), fwd(g, 1)}, 2);
  ASSERT_TRUE(id.has_value());
  s.abort_hop(*id, 0);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 10);
  s.commit_hop(*id, 1);  // retires: every hop settled or aborted
  EXPECT_EQ(s.active_holds(), 0u);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 1)), 12);
  EXPECT_TRUE(s.check_invariants());
}

TEST(NetworkState, HoldExpiryMetadataRoundTrips) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 10);
  const auto id = s.hold(Path{fwd(g, 0)}, 1);
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(std::isinf(s.hold_expiry(*id)));  // never, by default
  s.set_hold_expiry(*id, 42.5);
  EXPECT_DOUBLE_EQ(s.hold_expiry(*id), 42.5);
  s.abort(*id);
  EXPECT_THROW(s.hold_expiry(*id), std::logic_error);
}

TEST(NetworkState, DeferredSettlementQueuesCommits) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 10);
  s.arm_deferred_settlement();
  const auto a = s.hold(Path{fwd(g, 0)}, 1);
  const auto b = s.hold(Path{fwd(g, 0)}, 2);
  ASSERT_TRUE(a.has_value() && b.has_value());
  s.commit(*a);
  s.commit(*b);
  // Nothing settled yet: both holds still active, no credit moved.
  EXPECT_EQ(s.active_holds(), 2u);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 0)), 10);
  // Retired ids are still rejected eagerly, not at drain time.
  const auto c = s.hold(Path{fwd(g, 0)}, 1);
  ASSERT_TRUE(c.has_value());
  s.abort(*c);  // abort() is immediate even under deferral
  EXPECT_THROW(s.commit(*c), std::logic_error);
  std::vector<HoldId> drained;
  s.take_deferred_commits(drained);
  ASSERT_EQ(drained.size(), 2u);  // commit order preserved
  EXPECT_EQ(drained[0], *a);
  EXPECT_EQ(drained[1], *b);
  // abort() stays immediate under deferral.
  s.abort(drained[1]);
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 9);
  s.disarm_deferred_settlement();
  s.commit(drained[0]);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 0)), 11);
  EXPECT_EQ(s.active_holds(), 0u);
  EXPECT_TRUE(s.check_invariants());
}

TEST(AtomicPayment, AddFlowNetsOffsets) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 5, 5);
  AtomicPayment payment(s);
  const std::vector<EdgeAmount> flow{{fwd(g, 0), 4}};
  EXPECT_TRUE(payment.add_flow(flow, 4));
  payment.commit();
  EXPECT_DOUBLE_EQ(s.balance(fwd(g, 0)), 1);
  EXPECT_DOUBLE_EQ(s.balance(bwd(g, 0)), 9);
}

}  // namespace
}  // namespace flash

// Tests for streaming transaction sources (trace/workload_stream.h) and
// the snapshot-to-workload bridge: vector adapter semantics, generator
// determinism and reset behaviour, equivalence with the materializing
// generator, and end-to-end streaming through the simulator.
#include <gtest/gtest.h>

#include <vector>

#include "graph/graph_io.h"
#include "graph/topology.h"
#include "sim/simulator.h"
#include "routing/shortest_path.h"
#include "trace/workload.h"
#include "trace/workload_stream.h"

namespace flash {
namespace {

std::vector<Transaction> drain(WorkloadStream& stream) {
  std::vector<Transaction> out;
  Transaction tx;
  while (stream.next(tx)) out.push_back(tx);
  return out;
}

void expect_same_trace(const std::vector<Transaction>& a,
                       const std::vector<Transaction>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sender, b[i].sender) << i;
    EXPECT_EQ(a[i].receiver, b[i].receiver) << i;
    EXPECT_EQ(a[i].amount, b[i].amount) << i;
    EXPECT_EQ(a[i].timestamp, b[i].timestamp) << i;
  }
}

TEST(VectorStream, YieldsVectorInOrderAndResets) {
  const Workload w = make_toy_workload(12, 40, 3);
  VectorWorkloadStream stream(w.transactions());
  EXPECT_EQ(stream.size(), 40u);
  const auto first = drain(stream);
  expect_same_trace(first, w.transactions());
  Transaction tx;
  EXPECT_FALSE(stream.next(tx));  // exhausted
  stream.reset();
  expect_same_trace(drain(stream), w.transactions());
  stream.reset(/*seed=*/999);  // seed is ignored: a replay has no randomness
  expect_same_trace(drain(stream), w.transactions());
}

TEST(GeneratedStream, SeedAndRngCtorsAgree) {
  // The two constructors must draw identically: (g, seed) is defined as
  // (g, Rng(seed)). The materializing generator in workload.cc drains the
  // rng-continuing form, so this pins both to one sequence.
  Rng rng(7);
  Graph g = watts_strogatz(16, 4, 0.2, rng);
  GeneratedStreamConfig cfg;
  cfg.count = 200;
  GeneratedWorkloadStream a(g, Rng(42), cfg);
  GeneratedWorkloadStream b(g, /*seed=*/42, cfg);
  expect_same_trace(drain(a), drain(b));
}

TEST(GeneratedStream, DeterministicPerSeedAndAcrossResets) {
  Rng rng(9);
  const Graph g = scale_free(40, 120, rng);
  GeneratedStreamConfig cfg;
  cfg.count = 150;
  GeneratedWorkloadStream stream(g, 5, cfg);
  EXPECT_EQ(stream.size(), 150u);
  const auto first = drain(stream);
  ASSERT_EQ(first.size(), 150u);
  stream.reset();
  expect_same_trace(drain(stream), first);

  GeneratedWorkloadStream same(g, 5, cfg);
  expect_same_trace(drain(same), first);

  stream.reset(/*seed=*/6);
  const auto reseeded = drain(stream);
  ASSERT_EQ(reseeded.size(), 150u);
  bool differs = false;
  for (std::size_t i = 0; i < 150 && !differs; ++i) {
    differs = reseeded[i].sender != first[i].sender ||
              reseeded[i].amount != first[i].amount;
  }
  EXPECT_TRUE(differs) << "different seed must give a different sequence";
  // ...and resetting back to the original seed recovers the original.
  stream.reset(5);
  expect_same_trace(drain(stream), first);
}

TEST(GeneratedStream, EmitsValidTransactions) {
  Rng rng(3);
  const Graph g = scale_free(30, 90, rng);
  GeneratedStreamConfig cfg;
  cfg.count = 100;
  cfg.mode = StreamPairMode::kUniform;
  GeneratedWorkloadStream stream(g, 8, cfg);
  std::size_t n = 0;
  Transaction tx;
  while (stream.next(tx)) {
    EXPECT_LT(tx.sender, g.num_nodes());
    EXPECT_LT(tx.receiver, g.num_nodes());
    EXPECT_NE(tx.sender, tx.receiver);
    EXPECT_GT(tx.amount, 0.0);
    EXPECT_EQ(tx.timestamp, static_cast<double>(n));
    ++n;
  }
  EXPECT_EQ(n, 100u);
}

TEST(GeneratedStream, PairModesDiffer) {
  Rng rng(4);
  const Graph g = scale_free(30, 90, rng);
  GeneratedStreamConfig recurrent;
  recurrent.count = 80;
  GeneratedStreamConfig uniform = recurrent;
  uniform.mode = StreamPairMode::kUniform;
  GeneratedWorkloadStream a(g, 2, recurrent);
  GeneratedWorkloadStream b(g, 2, uniform);
  const auto ta = drain(a);
  const auto tb = drain(b);
  bool differs = false;
  for (std::size_t i = 0; i < ta.size() && !differs; ++i) {
    differs = ta[i].sender != tb[i].sender || ta[i].receiver != tb[i].receiver;
  }
  EXPECT_TRUE(differs);
}

TEST(SnapshotWorkload, MapsBalancesAndFeesPerDirection) {
  LightningSnapshot snap;
  snap.num_nodes = 3;
  snap.channels.push_back({0, 1, 100.0, 40.0, 1.0, 0.01, 2.0, 0.02});
  snap.channels.push_back({1, 2, 75.0, 0.0, 0.0, 0.005, 0.5, 0.0});
  const Workload w = make_snapshot_workload(snap, "tiny");
  EXPECT_EQ(w.name(), "tiny");
  EXPECT_TRUE(w.transactions().empty());
  const Graph& g = w.graph();
  ASSERT_EQ(g.num_channels(), 2u);
  const NetworkState state = w.make_state();
  const EdgeId e01 = g.channel_forward_edge(0);
  EXPECT_EQ(state.balance(e01), 100.0);
  EXPECT_EQ(state.balance(g.reverse(e01)), 40.0);
  const EdgeId e12 = g.channel_forward_edge(1);
  EXPECT_EQ(state.balance(e12), 75.0);
  EXPECT_EQ(state.balance(g.reverse(e12)), 0.0);
  EXPECT_EQ(w.fees().policy(e01).base, 1.0);
  EXPECT_EQ(w.fees().policy(e01).rate, 0.01);
  EXPECT_EQ(w.fees().policy(g.reverse(e01)).base, 2.0);
  EXPECT_EQ(w.fees().policy(g.reverse(e01)).rate, 0.02);
}

TEST(StreamingSimulation, MatchesMaterializedRun) {
  // The materialized overload is a thin wrapper over the streaming one;
  // driving the streaming overload by hand must agree bit for bit.
  const Workload w = make_toy_workload(20, 120, 6);
  ShortestPathRouter r1(w.graph(), w.fees());
  const SimResult expected = run_simulation(w, r1);
  ShortestPathRouter r2(w.graph(), w.fees());
  VectorWorkloadStream stream(w.transactions());
  const SimResult got = run_simulation(w, stream, r2);
  EXPECT_EQ(got.transactions, expected.transactions);
  EXPECT_EQ(got.successes, expected.successes);
  EXPECT_EQ(got.volume_succeeded, expected.volume_succeeded);
  EXPECT_EQ(got.fees_paid, expected.fees_paid);
}

TEST(StreamingSimulation, SnapshotWorkloadStreamsEndToEnd) {
  // Snapshot -> workload (empty trace) -> generated stream -> simulator:
  // the Lightning-scale path in miniature. class_threshold must be set
  // explicitly because an empty trace has no size quantiles.
  Rng rng(15);
  const Graph g = scale_free_lightning(120, rng);
  LightningSnapshot snap;
  snap.num_nodes = g.num_nodes();
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    const EdgeId e = g.channel_forward_edge(c);
    snap.channels.push_back(
        {g.from(e), g.to(e), 5e5, 5e5, 0.0, 0.001, 0.0, 0.001});
  }
  const Workload w = make_snapshot_workload(snap);
  GeneratedStreamConfig cfg;
  cfg.count = 500;
  cfg.sizes = SizeDistribution::bitcoin();
  GeneratedWorkloadStream stream(w.graph(), 21, cfg);
  ShortestPathRouter router(w.graph(), w.fees());
  SimConfig sim;
  sim.class_threshold = 1e6;
  const SimResult res = run_simulation(w, stream, router, sim);
  EXPECT_EQ(res.transactions, 500u);
  EXPECT_GT(res.successes, 0u);
}

}  // namespace
}  // namespace flash

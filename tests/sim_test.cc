// Tests for the simulation engine and the experiment harness.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trace/workload.h"

namespace flash {
namespace {

TEST(Simulator, CountsEveryTransaction) {
  const Workload w = make_toy_workload(30, 200, 1);
  const auto router = make_router(Scheme::kShortestPath, w, {}, 1);
  const SimResult r = run_simulation(w, *router);
  EXPECT_EQ(r.transactions, 200u);
  EXPECT_EQ(r.mice_transactions + r.elephant_transactions, 200u);
  EXPECT_LE(r.successes, r.transactions);
  EXPECT_LE(r.volume_succeeded, r.volume_attempted + 1e-9);
}

TEST(Simulator, ObserverSeesEachPayment) {
  const Workload w = make_toy_workload(30, 50, 2);
  const auto router = make_router(Scheme::kShortestPath, w, {}, 1);
  std::size_t seen = 0;
  run_simulation(w, *router, {}, [&](std::size_t i, const Transaction&,
                                     const RouteResult&) {
    EXPECT_EQ(i, seen);
    ++seen;
  });
  EXPECT_EQ(seen, 50u);
}

TEST(Simulator, ClassThresholdSplitsNinetyTen) {
  const Workload w = make_toy_workload(30, 1000, 3);
  const auto router = make_router(Scheme::kShortestPath, w, {}, 1);
  const SimResult r = run_simulation(w, *router);
  // Default threshold is the 90th percentile.
  EXPECT_NEAR(static_cast<double>(r.mice_transactions) / r.transactions, 0.9,
              0.02);
}

TEST(Simulator, CapacityScaleImprovesSuccess) {
  const Workload w = make_toy_workload(40, 400, 4);
  const auto r1 = make_router(Scheme::kFlash, w, {}, 1);
  const SimResult low = run_simulation(w, *r1, {1.0});
  const auto r2 = make_router(Scheme::kFlash, w, {}, 1);
  const SimResult high = run_simulation(w, *r2, {50.0});
  EXPECT_GT(high.success_ratio(), low.success_ratio());
  EXPECT_GT(high.volume_succeeded, low.volume_succeeded);
}

TEST(Simulator, FeeRatioIsFractional) {
  const Workload w = make_toy_workload(30, 300, 5);
  const auto router = make_router(Scheme::kFlash, w, {}, 1);
  const SimResult r = run_simulation(w, *router, {10.0});
  if (r.volume_succeeded > 0) {
    EXPECT_GT(r.fee_ratio(), 0.0);
    EXPECT_LT(r.fee_ratio(), 0.5);  // fees are a few percent of volume
  }
}

TEST(Experiment, SchemeNamesAndFactories) {
  EXPECT_EQ(scheme_name(Scheme::kFlash), "Flash");
  EXPECT_EQ(scheme_name(Scheme::kSpider), "Spider");
  EXPECT_EQ(scheme_name(Scheme::kSpeedyMurmurs), "SpeedyMurmurs");
  EXPECT_EQ(scheme_name(Scheme::kShortestPath), "SP");
  EXPECT_EQ(all_schemes().size(), 4u);
  const Workload w = make_toy_workload(20, 10, 6);
  for (Scheme s : all_schemes()) {
    const auto router = make_router(s, w, {}, 1);
    EXPECT_EQ(router->name(), scheme_name(s));
  }
}

TEST(Experiment, RunSeriesAggregates) {
  const WorkloadFactory factory = [](std::uint64_t seed) {
    return make_toy_workload(25, 100, seed);
  };
  const RunSeries series =
      run_series(factory, Scheme::kShortestPath, {}, {5.0}, 3);
  ASSERT_EQ(series.runs.size(), 3u);
  const Aggregate ratio = series.success_ratio();
  EXPECT_LE(ratio.min, ratio.mean);
  EXPECT_LE(ratio.mean, ratio.max);
  EXPECT_GE(ratio.min, 0.0);
  EXPECT_LE(ratio.max, 1.0);
}

TEST(Experiment, SeriesIsDeterministic) {
  const WorkloadFactory factory = [](std::uint64_t seed) {
    return make_toy_workload(25, 100, seed);
  };
  const RunSeries a = run_series(factory, Scheme::kFlash, {}, {5.0}, 2, 7);
  const RunSeries b = run_series(factory, Scheme::kFlash, {}, {5.0}, 2, 7);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].successes, b.runs[i].successes);
    EXPECT_DOUBLE_EQ(a.runs[i].volume_succeeded, b.runs[i].volume_succeeded);
    EXPECT_EQ(a.runs[i].probe_messages, b.runs[i].probe_messages);
  }
}

TEST(Experiment, FlashBeatsShortestPathOnVolume) {
  // The headline claim, in miniature: with realistic (scarce) capacity,
  // Flash should deliver clearly more volume than single-path routing.
  const WorkloadFactory factory = [](std::uint64_t seed) {
    return make_toy_workload(50, 600, seed);
  };
  const RunSeries flash = run_series(factory, Scheme::kFlash, {}, {5.0}, 2);
  const RunSeries sp =
      run_series(factory, Scheme::kShortestPath, {}, {5.0}, 2);
  EXPECT_GT(flash.success_volume().mean, 1.2 * sp.success_volume().mean);
}

TEST(Experiment, FlashProbesLessThanSpider) {
  const WorkloadFactory factory = [](std::uint64_t seed) {
    return make_toy_workload(50, 600, seed);
  };
  const RunSeries flash = run_series(factory, Scheme::kFlash, {}, {10.0}, 2);
  const RunSeries spider =
      run_series(factory, Scheme::kSpider, {}, {10.0}, 2);
  EXPECT_LT(flash.probe_messages().mean, spider.probe_messages().mean);
}

}  // namespace
}  // namespace flash

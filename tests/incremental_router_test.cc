// Churn-fuzz differential harness for incremental router maintenance
// (sim/scenario.h, RouterMaintenance).
//
// The oracle is kFullRebuild: reconstruct the sender's local graph, fees,
// mirror and router from scratch on every view change. The harness drives
// randomized churn/gossip/payment interleavings through the incremental
// engines and pins them against the oracle:
//
//   - kIncrementalStrict must be field-for-field identical to the oracle
//     for EVERY scheme and every knob combination (masked search over the
//     shared full-shape view graph equals search over the compacted open
//     subgraph; see docs/ARCHITECTURE.md).
//   - kIncrementalLazy must be identical to the oracle for the schemes
//     whose path searches are stable under deleting unused edges (BFS:
//     ShortestPath, Spider) when churn is closes-only (mean_downtime = 0).
//   - kIncrementalLazy must always be deterministic: two runs with the
//     same seed agree on everything (the Flash caveat is "not identical to
//     a fresh rebuild", never "nondeterministic").
//
// Failures print the scenario seed, the full knob vector, and the minimal
// payment prefix that still reproduces the divergence (linear shrink over
// the workload prefix), so a fuzz hit is immediately replayable.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/scenario.h"
#include "testutil.h"
#include "trace/workload.h"
#include "trace/workload_stream.h"
#include "util/rng.h"

namespace flash {
namespace {

using flash::testing::expect_identical;

// One fuzz scenario: every dynamics knob, derived deterministically from
// the scenario index (splitmix64 stream), so the corpus is stable across
// runs and a failure report's seed pinpoints one exact configuration.
struct FuzzKnobs {
  std::uint64_t seed = 0;   // engine seed (router + churn streams)
  Scheme scheme = Scheme::kFlash;
  std::size_t nodes = 24;
  std::size_t payments = 150;
  double capacity_scale = 2.0;
  double close_rate = 0.08;
  double mean_downtime = 0;   // 0 = closes-only churn
  double hop_delay = 0;       // 0 = instant gossip
  std::size_t max_retries = 0;
  std::size_t max_sender_routers = 0;  // 0 = unbounded LRU
  double rebalance_interval = 0;

  std::string describe() const {
    std::ostringstream os;
    os << "seed=" << seed << " scheme=" << scheme_name(scheme)
       << " nodes=" << nodes << " payments=" << payments
       << " capacity_scale=" << capacity_scale
       << " close_rate=" << close_rate
       << " mean_downtime=" << mean_downtime << " hop_delay=" << hop_delay
       << " max_retries=" << max_retries
       << " max_sender_routers=" << max_sender_routers
       << " rebalance_interval=" << rebalance_interval;
    return os.str();
  }
};

FuzzKnobs knobs_for(std::uint64_t index) {
  std::uint64_t state = 0x1cebu ^ (index * 0x9e3779b97f4a7c15ULL);
  const auto pick = [&state](std::uint64_t n) {
    return splitmix64(state) % n;
  };
  FuzzKnobs k;
  k.seed = splitmix64(state);
  k.scheme = all_schemes()[index % all_schemes().size()];
  k.nodes = (pick(2) == 0) ? 24 : 40;
  k.payments = (pick(2) == 0) ? 150 : 250;
  k.capacity_scale = (pick(2) == 0) ? 1.0 : 2.5;
  const double close_rates[] = {0.02, 0.08, 0.3};
  k.close_rate = close_rates[pick(3)];
  k.mean_downtime = (pick(2) == 0) ? 0.0 : 30.0;
  const double hop_delays[] = {0.0, 2.0, 7.0};
  k.hop_delay = hop_delays[pick(3)];
  k.max_retries = (pick(2) == 0) ? 0 : 2;
  const std::size_t caps[] = {0, 1, 3};
  k.max_sender_routers = caps[pick(3)];
  k.rebalance_interval = (pick(4) == 0) ? 50.0 : 0.0;
  return k;
}

ScenarioConfig scenario_config(const FuzzKnobs& k, RouterMaintenance mode) {
  ScenarioConfig cfg;
  cfg.retry.max_retries = k.max_retries;
  cfg.retry.delay = 0.5;
  cfg.churn.close_rate = k.close_rate;
  cfg.churn.mean_downtime = k.mean_downtime;
  cfg.gossip.hop_delay = k.hop_delay;
  cfg.max_sender_routers = k.max_sender_routers;
  cfg.rebalance.interval = k.rebalance_interval;
  cfg.maintenance = mode;
  return cfg;
}

SimConfig sim_config(const FuzzKnobs& k) {
  SimConfig sim;
  sim.capacity_scale = k.capacity_scale;
  return sim;
}

/// Runs one scenario, optionally truncated to the first `prefix` payments
/// (the shrinker's handle). The workload keeps its full transaction vector
/// so class/elephant thresholds — and therefore router construction — are
/// identical across prefixes; only the arrival stream shortens.
ScenarioResult run_mode(const Workload& w, const FuzzKnobs& k,
                        RouterMaintenance mode,
                        std::size_t prefix = ~std::size_t{0}) {
  const SimConfig sim = sim_config(k);
  const ScenarioConfig cfg = scenario_config(k, mode);
  if (prefix >= w.transactions().size()) {
    return run_scenario(w, k.scheme, {}, sim, cfg, k.seed);
  }
  const std::vector<Transaction> head(w.transactions().begin(),
                                      w.transactions().begin() + prefix);
  VectorWorkloadStream stream(head);
  ScenarioEngine engine(w, stream, k.scheme, {}, sim, cfg, k.seed);
  return engine.run();
}

/// Every field the two maintenance modes must agree on. The maintenance
/// telemetry itself (router_rebuilds / router_patches /
/// entries_invalidated) is excluded by design: replacing rebuilds with
/// patches is the whole point.
void expect_results_identical(const ScenarioResult& oracle,
                              const ScenarioResult& got) {
  expect_identical(oracle.sim, got.sim);
  EXPECT_EQ(oracle.payment_digest, got.payment_digest);
  EXPECT_EQ(oracle.channels_closed, got.channels_closed);
  EXPECT_EQ(oracle.channels_reopened, got.channels_reopened);
  EXPECT_EQ(oracle.rebalance_events, got.rebalance_events);
  EXPECT_EQ(oracle.gossip_rounds, got.gossip_rounds);
  EXPECT_EQ(oracle.gossip_messages, got.gossip_messages);
  EXPECT_EQ(oracle.router_cache_hits, got.router_cache_hits);
  EXPECT_EQ(oracle.router_cache_misses, got.router_cache_misses);
  EXPECT_EQ(oracle.router_cache_evictions, got.router_cache_evictions);
  EXPECT_EQ(oracle.duration, got.duration);
}

bool digests_equal(const ScenarioResult& a, const ScenarioResult& b) {
  return a.payment_digest == b.payment_digest;
}

/// Linear shrink: the smallest payment-prefix length on which the two
/// modes already disagree (digest-level). Only runs on failure, so the
/// O(payments^2) worst case never taxes a green suite.
std::size_t minimal_failing_prefix(const Workload& w, const FuzzKnobs& k,
                                   RouterMaintenance mode) {
  for (std::size_t n = 1; n <= w.transactions().size(); ++n) {
    if (!digests_equal(run_mode(w, k, RouterMaintenance::kFullRebuild, n),
                       run_mode(w, k, mode, n))) {
      return n;
    }
  }
  return w.transactions().size();
}

void check_against_oracle(const Workload& w, const FuzzKnobs& k,
                          RouterMaintenance mode, const char* mode_name) {
  const ScenarioResult oracle = run_mode(w, k, RouterMaintenance::kFullRebuild);
  const ScenarioResult got = run_mode(w, k, mode);
  if (!digests_equal(oracle, got)) {
    ADD_FAILURE() << mode_name << " diverged from the full-rebuild oracle\n"
                  << "  knobs: " << k.describe() << "\n"
                  << "  minimal failing payment prefix: "
                  << minimal_failing_prefix(w, k, mode) << " of "
                  << w.transactions().size();
    return;
  }
  SCOPED_TRACE(k.describe());
  expect_results_identical(oracle, got);
  // Crisp telemetry invariant of the incremental engine: a rebuild happens
  // exactly on a context build (first use or post-eviction return), i.e.
  // on every cache miss, and never on a view change of a live context.
  if (k.scheme != Scheme::kSpeedyMurmurs) {
    EXPECT_EQ(got.router_rebuilds, got.router_cache_misses);
  }
}

// --- The ≥200-scenario differential corpus -------------------------------

// Strict incremental maintenance vs the oracle, field-for-field, across
// 224 seeded scenarios cycling all four schemes and every dynamics knob.
TEST(IncrementalFuzz, StrictMatchesOracleAcrossSeeds) {
  constexpr std::uint64_t kScenarios = 224;
  for (std::uint64_t i = 0; i < kScenarios; ++i) {
    const FuzzKnobs k = knobs_for(i);
    const Workload w =
        make_toy_workload(k.nodes, k.payments, /*seed=*/k.seed & 0xffff);
    check_against_oracle(w, k, RouterMaintenance::kIncrementalStrict,
                         "kIncrementalStrict");
    if (HasFatalFailure()) return;
  }
}

// Lazy maintenance keeps per-pair path caches across view changes. For
// BFS-based schemes (ShortestPath, Spider) a cached path that avoids every
// closed edge is exactly what a fresh search would return (greedy BFS is
// stable under deleting unused edges), so under closes-only churn lazy
// must still be field-for-field identical to the oracle.
TEST(IncrementalFuzz, LazyMatchesOracleForStablePathSchemesClosesOnly) {
  std::size_t checked = 0;
  for (std::uint64_t i = 0; checked < 40 && i < 600; ++i) {
    FuzzKnobs k = knobs_for(i);
    if (k.scheme != Scheme::kShortestPath && k.scheme != Scheme::kSpider) {
      continue;
    }
    k.mean_downtime = 0;  // closes-only: reopens would leave masked
                          // survivors the oracle re-finds paths through
    const Workload w =
        make_toy_workload(k.nodes, k.payments, /*seed=*/k.seed & 0xffff);
    check_against_oracle(w, k, RouterMaintenance::kIncrementalLazy,
                         "kIncrementalLazy");
    if (HasFatalFailure()) return;
    ++checked;
  }
  EXPECT_EQ(checked, 40u);
}

// Lazy mode for Flash is NOT pinned path-identical to the oracle (a fresh
// Yen table may tie-break differently than a selectively-invalidated one —
// the documented caveat), but it must be perfectly deterministic: same
// seed, same everything.
TEST(IncrementalFuzz, LazyIsDeterministicForEveryScheme) {
  for (std::uint64_t i = 0; i < 48; ++i) {
    const FuzzKnobs k = knobs_for(i);
    const Workload w =
        make_toy_workload(k.nodes, k.payments, /*seed=*/k.seed & 0xffff);
    const ScenarioResult a = run_mode(w, k, RouterMaintenance::kIncrementalLazy);
    const ScenarioResult b = run_mode(w, k, RouterMaintenance::kIncrementalLazy);
    SCOPED_TRACE(k.describe());
    expect_results_identical(a, b);
    EXPECT_EQ(a.router_rebuilds, b.router_rebuilds);
    EXPECT_EQ(a.router_patches, b.router_patches);
    EXPECT_EQ(a.entries_invalidated, b.entries_invalidated);
  }
}

// Incremental modes actually patch: under churn with live contexts, view
// changes land in router_patches, not router_rebuilds.
TEST(IncrementalFuzz, IncrementalModesReplaceRebuildsWithPatches) {
  FuzzKnobs k = knobs_for(0);
  k.scheme = Scheme::kFlash;
  k.close_rate = 0.3;
  k.mean_downtime = 30;
  k.payments = 250;
  const Workload w = make_toy_workload(k.nodes, k.payments, 3);
  const ScenarioResult oracle =
      run_mode(w, k, RouterMaintenance::kFullRebuild);
  const ScenarioResult strict =
      run_mode(w, k, RouterMaintenance::kIncrementalStrict);
  EXPECT_EQ(oracle.router_patches, 0u);
  EXPECT_GT(strict.router_patches, 0u);
  EXPECT_LT(strict.router_rebuilds, oracle.router_rebuilds);
  EXPECT_GT(strict.entries_invalidated, 0u);
}

// SpeedyMurmurs has no maskable search; requesting incremental maintenance
// must silently fall back to full rebuilds (and stay oracle-identical,
// which StrictMatchesOracleAcrossSeeds also covers).
TEST(IncrementalFuzz, SpeedyMurmursFallsBackToFullRebuild) {
  FuzzKnobs k = knobs_for(2);
  k.scheme = Scheme::kSpeedyMurmurs;
  k.close_rate = 0.3;
  const Workload w = make_toy_workload(k.nodes, k.payments, 5);
  const ScenarioResult got =
      run_mode(w, k, RouterMaintenance::kIncrementalStrict);
  EXPECT_EQ(got.router_patches, 0u);
  EXPECT_GT(got.router_rebuilds, 0u);
}

}  // namespace
}  // namespace flash

// Parameterized property suites: system-level invariants that must hold
// across randomized scenarios and every routing scheme.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/bfs.h"
#include "graph/maxflow.h"
#include "graph/topology.h"
#include "ledger/htlc.h"
#include "routing/flash/elephant.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trace/workload.h"

namespace flash {
namespace {

// --- Ledger conservation under random operation sequences -------------------------

class LedgerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LedgerFuzz, RandomHoldCommitAbortConservesDeposits) {
  Rng rng(GetParam());
  Graph g = watts_strogatz(20, 4, 0.3, rng);
  NetworkState s(g);
  s.assign_uniform_skewed(10, 100, 0.1, 0.9, rng);
  const Amount deposits = s.total_balance();

  std::vector<HoldId> open;
  for (int step = 0; step < 400; ++step) {
    const double dice = rng.uniform();
    if (dice < 0.5) {
      // Random path hold attempt.
      const auto a = static_cast<NodeId>(rng.next_below(20));
      const auto b = static_cast<NodeId>(rng.next_below(20));
      if (a == b) continue;
      const Path p = bfs_path(g, a, b);
      if (p.empty()) continue;
      const Amount amt = rng.uniform(0.1, 30.0);
      const auto id = s.hold(p, amt);
      if (id) open.push_back(*id);
    } else if (!open.empty()) {
      const std::size_t i = rng.next_below(open.size());
      const HoldId id = open[i];
      open.erase(open.begin() + static_cast<long>(i));
      if (dice < 0.75) {
        s.commit(id);
      } else {
        s.abort(id);
      }
    }
    ASSERT_TRUE(s.check_invariants()) << "step " << step;
  }
  for (HoldId id : open) s.abort(id);
  EXPECT_NEAR(s.total_balance(), deposits, 1e-6 * deposits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Algorithm 1 vs the classical max-flow oracle -----------------------------------

class ElephantOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElephantOracle, ProbedFlowBoundedByTrueMaxFlow) {
  Rng rng(GetParam());
  Graph g = scale_free(40, 100, rng);
  NetworkState s(g);
  s.assign_lognormal_split(50, 1.0, rng);
  for (int trial = 0; trial < 10; ++trial) {
    const auto src = static_cast<NodeId>(rng.next_below(40));
    auto dst = static_cast<NodeId>(rng.next_below(40));
    if (dst == src) dst = (dst + 1) % 40;
    const auto oracle =
        edmonds_karp(g, src, dst, [&](EdgeId e) { return s.balance(e); });
    const auto probed = elephant_find_paths(g, src, dst, 1e18, 32, s);
    EXPECT_LE(probed.max_flow, oracle.value + 1e-6);
    // Feasibility claim is trustworthy: if Algorithm 1 says it can carry d,
    // the oracle must agree.
    if (probed.feasible) {
      EXPECT_GE(oracle.value + 1e-6, probed.max_flow);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElephantOracle,
                         ::testing::Values(11, 12, 13, 14));

// --- Every scheme preserves ledger invariants over full simulations ----------------

class SchemeInvariants
    : public ::testing::TestWithParam<std::tuple<Scheme, std::uint64_t>> {};

TEST_P(SchemeInvariants, SimulationPreservesConservation) {
  const auto [scheme, seed] = GetParam();
  const Workload w = make_toy_workload(40, 400, seed);
  const auto router = make_router(scheme, w, {}, seed);
  // run_simulation() itself throws if the ledger invariant breaks or a
  // router leaks holds; reaching the end is the assertion.
  const SimResult r = run_simulation(w, *router, {2.0});
  EXPECT_EQ(r.transactions, 400u);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeInvariants,
    ::testing::Combine(::testing::Values(Scheme::kFlash, Scheme::kSpider,
                                         Scheme::kSpeedyMurmurs,
                                         Scheme::kShortestPath),
                       ::testing::Values(21, 22, 23)),
    [](const auto& suite_info) {
      return scheme_name(std::get<0>(suite_info.param)) + "_seed" +
             std::to_string(std::get<1>(suite_info.param));
    });

// --- Atomicity: delivered amount is all-or-nothing ----------------------------------

class Atomicity : public ::testing::TestWithParam<Scheme> {};

TEST_P(Atomicity, DeliveredIsZeroOrFull) {
  const Workload w = make_toy_workload(30, 300, 31);
  const auto router = make_router(GetParam(), w, {}, 31);
  NetworkState state = w.make_state(2.0);
  for (const Transaction& tx : w.transactions()) {
    const RouteResult r = router->route(tx, state);
    if (r.success) {
      EXPECT_DOUBLE_EQ(r.delivered, tx.amount);
    } else {
      EXPECT_DOUBLE_EQ(r.delivered, 0.0);
    }
    ASSERT_EQ(state.active_holds(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, Atomicity,
                         ::testing::Values(Scheme::kFlash, Scheme::kSpider,
                                           Scheme::kSpeedyMurmurs,
                                           Scheme::kShortestPath),
                         [](const auto& suite_info) {
                           return scheme_name(suite_info.param);
                         });

// --- Static schemes never probe ------------------------------------------------------

class StaticSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(StaticSchemes, NoProbingEver) {
  const Workload w = make_toy_workload(30, 200, 41);
  const auto router = make_router(GetParam(), w, {}, 41);
  const SimResult r = run_simulation(w, *router, {5.0});
  EXPECT_EQ(r.probe_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(Static, StaticSchemes,
                         ::testing::Values(Scheme::kSpeedyMurmurs,
                                           Scheme::kShortestPath),
                         [](const auto& suite_info) {
                           return scheme_name(suite_info.param);
                         });

// --- Flash parameter sweeps (the Fig. 10/11 axes as properties) ---------------------

class MiceQuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(MiceQuantileSweep, RunsCleanAcrossThresholds) {
  const double quantile = GetParam();
  const Workload w = make_toy_workload(30, 300, 51);
  FlashOptions opts;
  opts.mice_quantile = quantile;
  const auto router = make_router(Scheme::kFlash, w, opts, 51);
  const SimResult r = run_simulation(w, *router, {3.0});
  EXPECT_EQ(r.transactions, 300u);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, MiceQuantileSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.9, 1.0));

class MicePathsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MicePathsSweep, RunsCleanAcrossM) {
  const Workload w = make_toy_workload(30, 300, 61);
  FlashOptions opts;
  opts.m_mice_paths = GetParam();
  const auto router = make_router(Scheme::kFlash, w, opts, 61);
  const SimResult r = run_simulation(w, *router, {3.0});
  EXPECT_EQ(r.transactions, 300u);
}

INSTANTIATE_TEST_SUITE_P(PathCounts, MicePathsSweep,
                         ::testing::Values(0, 1, 2, 4, 6, 8));

// --- Probing overhead grows with aggressiveness -------------------------------------

TEST(ProbingProperty, MoreMicePathsMoreSuccessNotMoreProbes) {
  // With more paths per receiver, mice succeed at least as often; probing
  // per *successful* payment stays bounded.
  const Workload w = make_toy_workload(40, 500, 71);
  FlashOptions few;
  few.m_mice_paths = 1;
  FlashOptions many;
  many.m_mice_paths = 6;
  const auto r_few =
      run_simulation(w, *make_router(Scheme::kFlash, w, few, 71), {2.0});
  const auto r_many =
      run_simulation(w, *make_router(Scheme::kFlash, w, many, 71), {2.0});
  EXPECT_GE(r_many.successes + 10, r_few.successes);
}

}  // namespace
}  // namespace flash

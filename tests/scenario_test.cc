// Tests for the dynamic scenario engine (sim/scenario.h): the pinned
// zero-dynamics equivalence with run_simulation, retry accounting, churn,
// gossip-delay staleness, rebalancing drift, and determinism.
#include <gtest/gtest.h>

#include "sim/scenario.h"
#include "sim/simulator.h"
#include "testutil.h"
#include "trace/workload.h"

namespace flash {
namespace {

// Field-for-field SimResult equality; doubles compared exactly (the
// zero-dynamics engine must be BIT-identical to the static simulator).
using flash::testing::expect_identical;

TEST(Scenario, ZeroDynamicsBitIdenticalToRunSimulation) {
  const Workload w = make_toy_workload(30, 250, 3);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  const ScenarioConfig none;  // every dynamic off
  for (const Scheme scheme : all_schemes()) {
    const auto router = make_router(scheme, w, {}, /*seed=*/7);
    const SimResult expected = run_simulation(w, *router, sim);
    const ScenarioResult got = run_scenario(w, scheme, {}, sim, none, 7);
    expect_identical(got.sim, expected);
    EXPECT_EQ(got.sim.retries, 0u);
    EXPECT_EQ(got.sim.stale_view_failures, 0u);
    EXPECT_EQ(got.sim.time_to_success_total, 0.0);
    EXPECT_EQ(got.channels_closed, 0u);
    EXPECT_EQ(got.channels_reopened, 0u);
    EXPECT_EQ(got.rebalance_events, 0u);
    EXPECT_EQ(got.gossip_messages, 0u);
    EXPECT_EQ(got.router_rebuilds, 0u);
  }
}

TEST(Scenario, ZeroDynamicsBitIdenticalUnderCustomOptions) {
  // Non-default Flash options and class threshold must flow through the
  // engine exactly as through the static path.
  const Workload w = make_toy_workload(25, 200, 11);
  FlashOptions opts;
  opts.m_mice_paths = 2;
  opts.k_elephant_paths = 6;
  opts.mice_quantile = 0.8;
  SimConfig sim;
  sim.capacity_scale = 1.5;
  sim.class_threshold = 40;
  sim.invariant_stride = 16;
  const auto router = make_router(Scheme::kFlash, w, opts, 21);
  const SimResult expected = run_simulation(w, *router, sim);
  const ScenarioResult got =
      run_scenario(w, Scheme::kFlash, opts, sim, {}, 21);
  expect_identical(got.sim, expected);
}

TEST(Scenario, RetriesAreCountedAndCanRescuePayments) {
  // Scarce capacity so first attempts fail; Flash's randomized mice order
  // gives retries a real chance to succeed.
  const Workload w = make_toy_workload(30, 300, 5);
  SimConfig sim;
  sim.capacity_scale = 1.0;
  ScenarioConfig cfg;
  cfg.retry.max_retries = 2;
  cfg.retry.delay = 0.25;
  const ScenarioResult got =
      run_scenario(w, Scheme::kFlash, {}, sim, cfg, 9);
  const ScenarioResult baseline =
      run_scenario(w, Scheme::kFlash, {}, sim, {}, 9);

  EXPECT_EQ(got.sim.transactions, 300u);  // retries never double-count
  EXPECT_GT(got.sim.retries, 0u);
  const std::size_t failures = got.sim.transactions - got.sim.successes;
  EXPECT_LE(got.sim.retries,
            cfg.retry.max_retries * (failures + got.sim.retry_successes));
  // A payment that succeeds via retry settles retry.delay (or 2x) late.
  if (got.sim.retry_successes > 0) {
    EXPECT_GT(got.sim.time_to_success_total, 0.0);
    EXPECT_GT(got.sim.mean_time_to_success(), 0.0);
  }
  // Retrying can only help the success count on the same workload.
  EXPECT_GE(got.sim.successes, baseline.sim.successes);
}

TEST(Scenario, ChurnClosesAndReopensChannelsUnderInvariantChecks) {
  const Workload w = make_toy_workload(30, 300, 6);
  SimConfig sim;
  sim.capacity_scale = 3.0;
  sim.invariant_stride = 8;  // sweep the ledger aggressively
  ScenarioConfig cfg;
  cfg.churn.close_rate = 0.1;     // ~30 closes over the 300-tx horizon
  cfg.churn.mean_downtime = 40;   // most reopen within the run
  const ScenarioResult got =
      run_scenario(w, Scheme::kFlash, {}, sim, cfg, 4);
  EXPECT_GT(got.channels_closed, 5u);
  EXPECT_GT(got.channels_reopened, 0u);
  EXPECT_LE(got.channels_reopened, got.channels_closed);
  EXPECT_GT(got.router_rebuilds, 0u);
  EXPECT_GT(got.gossip_messages, 0u);  // churn announcements flooded
  EXPECT_EQ(got.sim.transactions, 300u);
  // Instant gossip: views track the truth, so no failure is ever charged
  // to staleness.
  EXPECT_EQ(got.sim.stale_view_failures, 0u);
}

TEST(Scenario, GossipDelayCausesStaleViewFailures) {
  const Workload w = make_toy_workload(30, 300, 6);
  SimConfig sim;
  sim.capacity_scale = 3.0;
  ScenarioConfig stale;
  stale.churn.close_rate = 0.1;
  stale.gossip.hop_delay = 25;  // announcements crawl across the topology
  const ScenarioResult delayed =
      run_scenario(w, Scheme::kShortestPath, {}, sim, stale, 4);
  EXPECT_GT(delayed.sim.stale_view_failures, 0u);

  ScenarioConfig instant = stale;
  instant.gossip.hop_delay = 0;
  const ScenarioResult fresh =
      run_scenario(w, Scheme::kShortestPath, {}, sim, instant, 4);
  EXPECT_EQ(fresh.sim.stale_view_failures, 0u);
  // Same churn schedule (same dynamics stream): staleness can only hurt.
  EXPECT_EQ(fresh.channels_closed, delayed.channels_closed);
  EXPECT_GE(fresh.sim.successes, delayed.sim.successes);
}

TEST(Scenario, RebalanceDriftRunsAndConservesLedger) {
  const Workload w = make_toy_workload(25, 200, 8);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  sim.invariant_stride = 8;  // internal conservation sweeps
  ScenarioConfig cfg;
  cfg.rebalance.interval = 10;
  cfg.rebalance.strength = 0.5;
  const ScenarioResult got =
      run_scenario(w, Scheme::kShortestPath, {}, sim, cfg, 2);
  EXPECT_GE(got.rebalance_events, 19u);  // one per interval over the run
  EXPECT_EQ(got.sim.transactions, 200u);
  // No churn: rebalancing alone never makes a view stale.
  EXPECT_EQ(got.sim.stale_view_failures, 0u);
  EXPECT_EQ(got.router_rebuilds, 0u);
}

TEST(Scenario, FullyDynamicRunIsDeterministic) {
  const Workload w = make_toy_workload(30, 250, 12);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig cfg;
  cfg.retry.max_retries = 1;
  cfg.retry.delay = 0.5;
  cfg.churn.close_rate = 0.08;
  cfg.churn.mean_downtime = 30;
  cfg.gossip.hop_delay = 3;
  cfg.rebalance.interval = 25;
  for (const Scheme scheme : {Scheme::kFlash, Scheme::kShortestPath}) {
    const ScenarioResult a = run_scenario(w, scheme, {}, sim, cfg, 13);
    const ScenarioResult b = run_scenario(w, scheme, {}, sim, cfg, 13);
    expect_identical(a.sim, b.sim);
    EXPECT_EQ(a.channels_closed, b.channels_closed);
    EXPECT_EQ(a.channels_reopened, b.channels_reopened);
    EXPECT_EQ(a.rebalance_events, b.rebalance_events);
    EXPECT_EQ(a.gossip_rounds, b.gossip_rounds);
    EXPECT_EQ(a.gossip_messages, b.gossip_messages);
    EXPECT_EQ(a.router_rebuilds, b.router_rebuilds);
    EXPECT_EQ(a.duration, b.duration);
  }
}

TEST(Scenario, StreamCtorBitIdenticalToVectorCtor) {
  // The vector ctor is a thin wrapper over the streaming one; a fully
  // dynamic run must not be able to tell them apart.
  const Workload w = make_toy_workload(30, 250, 12);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig cfg;
  cfg.retry.max_retries = 1;
  cfg.retry.delay = 0.5;
  cfg.churn.close_rate = 0.08;
  cfg.churn.mean_downtime = 30;
  cfg.gossip.hop_delay = 3;
  cfg.rebalance.interval = 25;
  const ScenarioResult expected =
      run_scenario(w, Scheme::kFlash, {}, sim, cfg, 13);
  VectorWorkloadStream stream(w.transactions());
  ScenarioEngine engine(w, stream, Scheme::kFlash, {}, sim, cfg, 13);
  const ScenarioResult got = engine.run();
  expect_identical(got.sim, expected.sim);
  EXPECT_EQ(got.channels_closed, expected.channels_closed);
  EXPECT_EQ(got.router_rebuilds, expected.router_rebuilds);
  EXPECT_EQ(got.duration, expected.duration);
}

TEST(Scenario, BoundedRouterCacheBitIdenticalForStatelessRouters) {
  // A tiny LRU capacity forces evictions and rebuild-on-reuse. A rebuilt
  // ShortestPath router is indistinguishable from the evicted one (no
  // internal draw state) and the rebuilt mirror full-syncs from the truth
  // ledger, so the run must match the unbounded one bit for bit. (Flash
  // is excluded by design: eviction discards a router's consumed rng and
  // table state, which a same-view rebuild cannot resume mid-sequence.)
  const Workload w = make_toy_workload(30, 250, 12);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig cfg;
  cfg.retry.max_retries = 1;
  cfg.churn.close_rate = 0.08;
  cfg.churn.mean_downtime = 30;
  cfg.gossip.hop_delay = 3;
  const ScenarioResult unbounded =
      run_scenario(w, Scheme::kShortestPath, {}, sim, cfg, 13);
  ScenarioConfig small = cfg;
  small.max_sender_routers = 2;
  const ScenarioResult bounded =
      run_scenario(w, Scheme::kShortestPath, {}, sim, small, 13);
  expect_identical(bounded.sim, unbounded.sim);
  EXPECT_EQ(bounded.channels_closed, unbounded.channels_closed);
  EXPECT_EQ(bounded.rebalance_events, unbounded.rebalance_events);
  EXPECT_EQ(bounded.gossip_messages, unbounded.gossip_messages);
  EXPECT_EQ(bounded.duration, unbounded.duration);
  // The cap must actually bite for this test to mean anything.
  EXPECT_GT(bounded.router_cache_evictions, 0u);
  EXPECT_GT(bounded.router_cache_misses, unbounded.router_cache_misses);
  EXPECT_EQ(unbounded.router_cache_evictions, 0u);
}

TEST(Scenario, BoundedRouterCacheIsDeterministic) {
  // Stateful routers (Flash) may legitimately route differently once
  // evicted-and-rebuilt, but the bounded run must still be reproducible
  // and conserve the ledger under invariant sweeps.
  const Workload w = make_toy_workload(30, 250, 12);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  sim.invariant_stride = 16;
  ScenarioConfig cfg;
  cfg.retry.max_retries = 1;
  cfg.churn.close_rate = 0.08;
  cfg.churn.mean_downtime = 30;
  cfg.gossip.hop_delay = 3;
  cfg.max_sender_routers = 2;
  const ScenarioResult a = run_scenario(w, Scheme::kFlash, {}, sim, cfg, 13);
  const ScenarioResult b = run_scenario(w, Scheme::kFlash, {}, sim, cfg, 13);
  expect_identical(a.sim, b.sim);
  EXPECT_EQ(a.router_cache_hits, b.router_cache_hits);
  EXPECT_EQ(a.router_cache_misses, b.router_cache_misses);
  EXPECT_EQ(a.router_cache_evictions, b.router_cache_evictions);
  EXPECT_GT(a.router_cache_evictions, 0u);
  EXPECT_EQ(a.sim.transactions, 250u);
}

TEST(Scenario, RouterCacheIdleWithoutDynamics) {
  // Zero dynamics never diverges any view, so the engine routes on the
  // shared base router and no per-sender context is ever built.
  const Workload w = make_toy_workload(20, 100, 4);
  const ScenarioResult got = run_scenario(w, Scheme::kShortestPath, {}, {},
                                          ScenarioConfig{}, 5);
  EXPECT_EQ(got.router_cache_hits, 0u);
  EXPECT_EQ(got.router_cache_misses, 0u);
  EXPECT_EQ(got.router_cache_evictions, 0u);
}

TEST(Scenario, EngineIsSingleUse) {
  const Workload w = make_toy_workload(20, 20, 1);
  ScenarioEngine engine(w, Scheme::kShortestPath, {}, {}, {}, 1);
  engine.run();
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(Scenario, RejectsNonsenseConfigs) {
  const Workload w = make_toy_workload(20, 10, 1);
  ScenarioConfig bad;
  bad.churn.close_rate = -1;
  EXPECT_THROW(run_scenario(w, Scheme::kFlash, {}, {}, bad, 1),
               std::invalid_argument);
  bad = {};
  bad.retry.delay = -0.5;
  EXPECT_THROW(run_scenario(w, Scheme::kFlash, {}, {}, bad, 1),
               std::invalid_argument);
  bad = {};
  bad.rebalance.strength = 1.5;
  EXPECT_THROW(run_scenario(w, Scheme::kFlash, {}, {}, bad, 1),
               std::invalid_argument);
  bad = {};
  bad.gossip.hop_delay = -1;
  EXPECT_THROW(run_scenario(w, Scheme::kFlash, {}, {}, bad, 1),
               std::invalid_argument);
}

TEST(Scenario, EvictedSenderRebuildsNeverPatchesFromForeignState) {
  // A recycled LRU slot carries another sender's mask and router caches;
  // patching it forward from that state (instead of a full rebuild) would
  // leak one sender's view into another's. With the cache capped at one
  // slot, every sender change recycles, so any such leak diverges the run
  // from the oracle almost immediately.
  const Workload w = make_toy_workload(30, 250, 12);
  SimConfig sim;
  sim.capacity_scale = 2.0;
  ScenarioConfig cfg;
  cfg.retry.max_retries = 1;
  cfg.churn.close_rate = 0.15;
  cfg.churn.mean_downtime = 30;
  cfg.gossip.hop_delay = 3;
  cfg.max_sender_routers = 1;
  ScenarioConfig inc_cfg = cfg;
  inc_cfg.maintenance = RouterMaintenance::kIncrementalStrict;
  for (const Scheme scheme : {Scheme::kFlash, Scheme::kShortestPath}) {
    const ScenarioResult oracle = run_scenario(w, scheme, {}, sim, cfg, 13);
    const ScenarioResult inc = run_scenario(w, scheme, {}, sim, inc_cfg, 13);
    expect_identical(inc.sim, oracle.sim);
    EXPECT_EQ(inc.payment_digest, oracle.payment_digest);
    EXPECT_GT(inc.router_cache_evictions, 0u);  // the cap must bite
    // Telemetry invariant: incremental contexts rebuild exactly on cache
    // misses (first use / post-eviction return) and patch on every view
    // change of a live context — never the other way around.
    EXPECT_EQ(inc.router_rebuilds, inc.router_cache_misses);
    EXPECT_EQ(oracle.router_patches, 0u);
  }
}

TEST(Scenario, RebuildCountPinnedAcrossViewMappingRefactor) {
  // Regression pin for the sorted-pair merge cursor that replaced the
  // per-channel hash lookup in rebuild_context: the mapping refactor must
  // not change WHEN rebuilds fire or what they build. The exact count on
  // this fixed scenario is part of the pin; if it moves, the view-change
  // detection itself changed.
  const Workload w = make_toy_workload(30, 300, 6);
  SimConfig sim;
  sim.capacity_scale = 3.0;
  ScenarioConfig cfg;
  cfg.churn.close_rate = 0.1;
  cfg.churn.mean_downtime = 40;
  const ScenarioResult got = run_scenario(w, Scheme::kFlash, {}, sim, cfg, 4);
  EXPECT_EQ(got.router_rebuilds, 189u);
  EXPECT_EQ(got.router_patches, 0u);  // oracle mode never patches
}

}  // namespace
}  // namespace flash

// Edge-case and failure-injection tests across modules: degenerate
// topologies, zero capacities, boundary parameters, and the rare code
// paths the paper mentions in passing.
#include <gtest/gtest.h>

#include "graph/maxflow.h"
#include "graph/topology.h"
#include "graph/yen.h"
#include "routing/flash/elephant.h"
#include "routing/flash/flash_router.h"
#include "routing/flash/mice.h"
#include "routing/shortest_path.h"
#include "routing/speedymurmurs.h"
#include "routing/spider.h"
#include "testbed/network.h"
#include "testbed/sessions.h"
#include "testutil.h"

namespace flash {
namespace {

using testing::bwd;
using testing::fwd;
using testing::make_graph;
using testing::set_channel;

Transaction tx(NodeId s, NodeId t, Amount a) { return {s, t, a, 0}; }

// --- Elephant rare paths --------------------------------------------------------

TEST(ElephantEdge, ZeroCapacityPathProbedButContributesNothing) {
  // §3.2: "It is thus possible, though rare, that our algorithm finds a
  // path but its effective capacity is zero after probing."
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  NetworkState s(g);
  set_channel(s, g, 0, 0, 0);  // dead path via 1
  set_channel(s, g, 1, 0, 0);
  set_channel(s, g, 2, 50, 0);
  set_channel(s, g, 3, 50, 0);
  const auto r = elephant_find_paths(g, 0, 3, 40, 20, s);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.max_flow, 50);
  // The dead path may have been probed (flow 0) but the live one carries.
  EXPECT_GE(r.paths.size(), 1u);
}

TEST(ElephantEdge, ZeroMaxPathsAlwaysInfeasible) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 100, 0);
  const auto r = elephant_find_paths(g, 0, 1, 1, 0, s);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.probes, 0u);
}

TEST(ElephantEdge, DemandExactlyEqualToFlow) {
  Graph g = make_graph(2, {{0, 1}});
  NetworkState s(g);
  set_channel(s, g, 0, 42, 0);
  const auto r = elephant_find_paths(g, 0, 1, 42, 20, s);
  EXPECT_TRUE(r.feasible);
  FeeSchedule fees(g);
  NetworkState s2(g);
  set_channel(s2, g, 0, 42, 0);
  const RouteResult rr = route_elephant(g, tx(0, 1, 42), s2, fees, {});
  EXPECT_TRUE(rr.success);
  EXPECT_NEAR(s2.balance(fwd(g, 0)), 0, 1e-9);
}

TEST(ElephantEdge, ResidualReverseArcsEnableHigherFlow) {
  // The probing search must use residual reverse arcs like true
  // Edmonds-Karp: classic 4-node cross graph where greedy path choice
  // must be undone through the reverse arc.
  Graph g = make_graph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {1, 2}});
  NetworkState s(g);
  for (int c = 0; c < 5; ++c) set_channel(s, g, c, 1, 0);
  const auto r = elephant_find_paths(g, 0, 3, 2, 32, s);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.max_flow, 2, 1e-9);
}

TEST(ElephantEdge, SelfPaymentAndNonPositiveAmountFail) {
  Graph g = make_graph(2, {{0, 1}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 10, 10);
  EXPECT_FALSE(route_elephant(g, tx(0, 0, 5), s, fees, {}).success);
  EXPECT_FALSE(route_elephant(g, tx(0, 1, 0), s, fees, {}).success);
  EXPECT_FALSE(route_elephant(g, tx(0, 1, -3), s, fees, {}).success);
}

// --- Mice rare paths --------------------------------------------------------------

TEST(MiceEdge, SingleTablePathBehavesLikeSp) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  set_channel(s, g, 1, 10, 0);
  MiceRoutingTable table(g, {1, 0, 0});
  Rng rng(1);
  EXPECT_TRUE(route_mice(g, tx(0, 2, 10), s, fees, table, rng).success);
  // Exactly drained; a second identical payment must fail after probing.
  const RouteResult r2 = route_mice(g, tx(0, 2, 10), s, fees, table, rng);
  EXPECT_FALSE(r2.success);
}

TEST(MiceEdge, ProbeMessageAccountingMatchesMeter) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 5, 0);
  set_channel(s, g, 1, 5, 0);
  MiceRoutingTable table(g, {4, 0, 0});
  Rng rng(2);
  // Demand exceeds capacity: the only path gets probed once (2 hops ->
  // 4 messages), then the payment fails.
  const std::uint64_t before = s.probe_messages();
  const RouteResult r = route_mice(g, tx(0, 2, 50), s, fees, table, rng);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.probe_messages, s.probe_messages() - before);
  EXPECT_EQ(r.probe_messages, 4u);
  EXPECT_EQ(r.probes, 1u);
}

TEST(MiceEdge, UnreachableReceiverFailsCleanly) {
  Graph g(4);
  g.add_channel(0, 1);
  g.add_channel(2, 3);
  FeeSchedule fees(g);
  NetworkState s(g);
  MiceRoutingTable table(g, {4, 2, 0});
  Rng rng(3);
  EXPECT_FALSE(route_mice(g, tx(0, 3, 1), s, fees, table, rng).success);
}

// --- Baseline rare paths ------------------------------------------------------------

TEST(SpiderEdge, SingleDisjointPathStillWorks) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});  // bridge topology
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  set_channel(s, g, 1, 10, 0);
  SpiderRouter router(g, fees);
  EXPECT_TRUE(router.route(tx(0, 2, 8), s).success);
}

TEST(SpiderEdge, DegenerateTransactionsRejected) {
  Graph g = make_graph(2, {{0, 1}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 10, 10);
  SpiderRouter router(g, fees);
  EXPECT_FALSE(router.route(tx(0, 0, 1), s).success);
  EXPECT_FALSE(router.route(tx(0, 1, 0), s).success);
}

TEST(SpeedyMurmursEdge, MoreLandmarksThanNodesClamped) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  SpeedyMurmursRouter router(g, fees, SpeedyMurmursConfig{10});
  EXPECT_EQ(router.landmarks().size(), 3u);
  NetworkState s(g);
  set_channel(s, g, 0, 100, 100);
  set_channel(s, g, 1, 100, 100);
  EXPECT_TRUE(router.route(tx(0, 2, 3), s).success);
}

TEST(SpeedyMurmursEdge, DisconnectedReceiverFails) {
  Graph g(4);
  g.add_channel(0, 1);
  g.add_channel(2, 3);
  FeeSchedule fees(g);
  NetworkState s(g);
  s.set_balance(0, 100);
  SpeedyMurmursRouter router(g, fees);
  EXPECT_FALSE(router.route(tx(0, 3, 1), s).success);
}

TEST(ShortestPathEdge, CacheSurvivesTopologyRefresh) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 100, 0);
  set_channel(s, g, 1, 100, 0);
  ShortestPathRouter router(g, fees);
  EXPECT_TRUE(router.route(tx(0, 2, 1), s).success);
  router.on_topology_update();
  EXPECT_TRUE(router.route(tx(0, 2, 1), s).success);
}

// --- Testbed rare protocol paths -----------------------------------------------------

TEST(TestbedEdge, NackAtSenderHop) {
  // The sender itself lacks balance: NACK with fail_hop 0, nothing held.
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  testbed::Network net(g);
  net.set_balance(0, 1);  // 0->1 too thin
  net.set_balance(2, 100);
  testbed::Message nack;
  bool got = false;
  net.register_session(1, [&](const testbed::Message& m) {
    if (m.type == testbed::MsgType::kCommitNack) {
      nack = m;
      got = true;
    }
  });
  testbed::Message commit;
  commit.trans_id = 1;
  commit.type = testbed::MsgType::kCommit;
  commit.path = {0, 1, 2};
  commit.commit = 5;
  net.originate(std::move(commit));
  net.queue().run_until_idle(10000);
  ASSERT_TRUE(got);
  EXPECT_EQ(nack.fail_hop, 0u);
  EXPECT_DOUBLE_EQ(net.total_pending(), 0);
  EXPECT_DOUBLE_EQ(net.balance(0), 1);
}

TEST(TestbedEdge, TwoHopMinimalPath) {
  Graph g = make_graph(2, {{0, 1}});
  testbed::Network net(g);
  net.set_balance(0, 10);
  bool ok = false;
  testbed::SpSession session(net, {0, 1}, 7.0, [&](bool b) { ok = b; });
  session.start();
  net.queue().run_until_idle(10000);
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(net.balance(0), 3);
  EXPECT_DOUBLE_EQ(net.balance(1), 7);  // receiver credited on CONFIRM
}

TEST(TestbedEdge, ConcurrentSubPaymentsShareChannelAtomically) {
  // Two Spider sub-payments overlap on 0->1; the second COMMIT must see
  // the balance after the first hold.
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {1, 3}, {2, 3}});
  testbed::Network net(g);
  net.set_balance(net.edge_between(0, 1), 10);
  net.set_balance(net.edge_between(1, 3), 6);
  net.set_balance(net.edge_between(1, 2), 6);
  net.set_balance(net.edge_between(2, 3), 6);
  bool ok = false;
  testbed::SpiderSession session(net, {{0, 1, 3}, {0, 1, 2, 3}}, 10.0,
                                 [&](bool b) { ok = b; });
  session.start();
  net.queue().run_until_idle(100000);
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(net.balance(net.edge_between(0, 1)), 0);  // both used it
  EXPECT_DOUBLE_EQ(net.total_pending(), 0);
}

TEST(TestbedEdge, SessionUnregisteredAfterFinish) {
  Graph g = make_graph(2, {{0, 1}});
  testbed::Network net(g);
  net.set_balance(0, 10);
  bool ok = false;
  {
    testbed::SpSession session(net, {0, 1}, 5.0, [&](bool b) { ok = b; });
    session.start();
    net.queue().run_until_idle(10000);
    EXPECT_TRUE(session.finished());
  }
  // A stray late message for a finished trans id must be dropped silently.
  testbed::Message stray;
  stray.trans_id = 1;
  stray.type = testbed::MsgType::kProbe;
  stray.path = {0, 1};
  net.originate(std::move(stray));
  net.queue().run_until_idle(10000);
  EXPECT_TRUE(ok);
}

// --- Max-flow numeric edges ------------------------------------------------------------

TEST(MaxFlowEdge, ZeroCapacityEverywhere) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  const auto r = edmonds_karp(g, 0, 2, [](EdgeId) { return 0.0; });
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_TRUE(r.paths.empty());
}

TEST(MaxFlowEdge, TinyCapacitiesBelowEpsilonIgnored) {
  Graph g = make_graph(2, {{0, 1}});
  const auto r = edmonds_karp(g, 0, 1, [](EdgeId) { return 1e-15; });
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

// --- Yen with weights --------------------------------------------------------------------

TEST(YenEdge, WeightedOrderDiffersFromHopOrder) {
  // Direct edge is expensive; the 2-hop detour is cheaper.
  Graph g = make_graph(3, {{0, 2}, {0, 1}, {1, 2}});
  const EdgeWeight w = [&](EdgeId e) {
    return g.channel_of(e) == 0 ? 10.0 : 1.0;
  };
  const auto paths = yen_k_shortest_paths(g, 0, 2, 2, w);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].size(), 2u);  // cheap detour first
  EXPECT_EQ(paths[1].size(), 1u);
}

// --- FlashRouter boundary thresholds ---------------------------------------------------------

TEST(FlashRouterEdge, ThresholdZeroMakesEverythingElephant) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 100, 0);
  set_channel(s, g, 1, 100, 0);
  FlashConfig config;
  config.elephant_threshold = 0;
  FlashRouter router(g, fees, config);
  const RouteResult r = router.route(tx(0, 2, 1), s);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.elephant);
}

TEST(FlashRouterEdge, HugeThresholdMakesEverythingMice) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 100, 0);
  set_channel(s, g, 1, 100, 0);
  FlashConfig config;
  config.elephant_threshold = 1e18;
  FlashRouter router(g, fees, config);
  const RouteResult r = router.route(tx(0, 2, 50), s);
  EXPECT_TRUE(r.success);
  EXPECT_FALSE(r.elephant);
}

}  // namespace
}  // namespace flash

// Tests for the Flash router: Algorithm 1 (elephant path finding), the fee
// split execution, the mice routing table and trial-and-error loop, and the
// elephant/mice classification.
#include <gtest/gtest.h>

#include <set>

#include "graph/maxflow.h"
#include "graph/topology.h"
#include "routing/flash/elephant.h"
#include "routing/flash/flash_router.h"
#include "routing/flash/mice.h"
#include "routing/flash/routing_table.h"
#include "testutil.h"

namespace flash {
namespace {

using testing::bwd;
using testing::fwd;
using testing::make_graph;
using testing::set_channel;

Transaction tx(NodeId s, NodeId t, Amount a) { return {s, t, a, 0}; }

// --- Algorithm 1: elephant path finding ---------------------------------------

TEST(Elephant, FindsSinglePathWhenSufficient) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 0);
  set_channel(s, g, 1, 10, 0);
  const auto r = elephant_find_paths(g, 0, 2, 8, 20, s);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.paths.size(), 1u);  // early exit once f >= d
  EXPECT_DOUBLE_EQ(r.max_flow, 10);
  EXPECT_EQ(r.probes, 1u);
}

TEST(Elephant, AggregatesMultiplePaths) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  NetworkState s(g);
  for (int c = 0; c < 4; ++c) set_channel(s, g, c, 6, 0);
  const auto r = elephant_find_paths(g, 0, 3, 10, 20, s);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.paths.size(), 2u);
  EXPECT_DOUBLE_EQ(r.max_flow, 12);
}

TEST(Elephant, InfeasibleWhenDemandTooLarge) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  set_channel(s, g, 0, 5, 0);
  set_channel(s, g, 1, 5, 0);
  const auto r = elephant_find_paths(g, 0, 2, 50, 20, s);
  EXPECT_FALSE(r.feasible);
}

TEST(Elephant, RespectsPathBudgetK) {
  // Many parallel 2-hop routes; tiny k must cap the probes.
  Graph g(6);
  for (NodeId mid = 1; mid <= 4; ++mid) {
    g.add_channel(0, mid);
    g.add_channel(mid, 5);
  }
  NetworkState s(g);
  for (std::size_t c = 0; c < g.num_channels(); ++c) set_channel(s, g, c, 3, 0);
  const auto r = elephant_find_paths(g, 0, 5, 100, 2, s);
  EXPECT_FALSE(r.feasible);
  EXPECT_LE(r.paths.size(), 2u);
  EXPECT_LE(r.probes, 2u);
}

TEST(Elephant, CapacityMatrixRecordsBothDirections) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  NetworkState s(g);
  set_channel(s, g, 0, 10, 3);
  set_channel(s, g, 1, 10, 4);
  const auto r = elephant_find_paths(g, 0, 2, 8, 20, s);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.capacities.at(fwd(g, 0)), 10);
  EXPECT_DOUBLE_EQ(r.capacities.at(bwd(g, 0)), 3);
  EXPECT_DOUBLE_EQ(r.capacities.at(bwd(g, 1)), 4);
}

TEST(Elephant, Figure5aFindsNonShortestCapacity) {
  // Fig. 5(a): two shortest paths share the 30-capacity link 1->2; Flash's
  // max-flow search must also harvest the longer 1-5-4-6 route to reach 60.
  Graph g = make_graph(6, {{0, 1}, {1, 2}, {1, 3}, {2, 5}, {3, 5},
                           {0, 4}, {4, 3}});
  NetworkState s(g);
  for (std::size_t c = 0; c < g.num_channels(); ++c) set_channel(s, g, c, 30, 0);
  const auto r = elephant_find_paths(g, 0, 5, 60, 20, s);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.max_flow, 60);
}

TEST(Elephant, Figure5bExploitsAbundantSharedLink) {
  // Fig. 5(b): the shared link has capacity 100; edge-disjoint schemes cap
  // at 50 but Flash reaches 60 using both paths through the hub.
  Graph g = make_graph(6, {{0, 1}, {1, 2}, {1, 3}, {2, 5}, {3, 5},
                           {0, 4}, {4, 3}});
  NetworkState s(g);
  set_channel(s, g, 0, 100, 0);
  for (std::size_t c = 1; c <= 4; ++c) set_channel(s, g, c, 30, 0);
  set_channel(s, g, 5, 20, 0);
  set_channel(s, g, 6, 20, 0);
  const auto r = elephant_find_paths(g, 0, 5, 60, 20, s);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.max_flow, 60);
}

TEST(Elephant, FlowNeverExceedsClassicalMaxFlow) {
  // Property: Algorithm 1's probed flow is a lower bound on the true max
  // flow and is feasible whenever demand <= flow.
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng(100 + trial);
    Graph g = watts_strogatz(25, 4, 0.3, trial_rng);
    NetworkState s(g);
    s.assign_uniform_skewed(10, 50, 0.1, 0.9, trial_rng);
    const NodeId src = static_cast<NodeId>(rng.next_below(25));
    NodeId dst = static_cast<NodeId>(rng.next_below(25));
    if (dst == src) dst = (dst + 1) % 25;
    const auto oracle = edmonds_karp(
        g, src, dst, [&](EdgeId e) { return s.balance(e); });
    const auto probed = elephant_find_paths(g, src, dst, 1e18, 64, s);
    EXPECT_LE(probed.max_flow, oracle.value + 1e-6);
  }
}

TEST(Elephant, LargeKMatchesClassicalMaxFlow) {
  // With an unbounded path budget the probing variant IS Edmonds-Karp.
  Rng rng(37);
  Graph g = watts_strogatz(20, 4, 0.3, rng);
  NetworkState s(g);
  s.assign_uniform_split(10, 50, rng);
  const auto oracle =
      edmonds_karp(g, 0, 11, [&](EdgeId e) { return s.balance(e); });
  const auto probed = elephant_find_paths(g, 0, 11, 1e18, 10000, s);
  EXPECT_NEAR(probed.max_flow, oracle.value, 1e-6);
}

// --- Elephant end-to-end --------------------------------------------------------

TEST(RouteElephant, MovesFundsAndReportsFees) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees(g);
  for (std::size_t c = 0; c < 4; ++c) fees.set_policy(fwd(g, c), {0, 0.01});
  NetworkState s(g);
  for (int c = 0; c < 4; ++c) set_channel(s, g, c, 6, 0);
  const RouteResult r =
      route_elephant(g, tx(0, 3, 10), s, fees, ElephantConfig{});
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.elephant);
  EXPECT_DOUBLE_EQ(r.delivered, 10);
  EXPECT_NEAR(r.fee, 10 * 0.02, 1e-9);  // two hops at 1% each
  EXPECT_EQ(r.paths_used, 2u);
  // Funds moved: 10 left node 0 in total.
  EXPECT_NEAR(s.balance(fwd(g, 0)) + s.balance(fwd(g, 2)), 2, 1e-9);
  EXPECT_TRUE(s.check_invariants());
}

TEST(RouteElephant, FailureLeavesStateUntouched) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 5, 0);
  set_channel(s, g, 1, 5, 0);
  const auto snap = s.snapshot();
  const RouteResult r =
      route_elephant(g, tx(0, 2, 50), s, fees, ElephantConfig{});
  EXPECT_FALSE(r.success);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(s.balance(e), snap.balance[e]);
  }
}

TEST(RouteElephant, FeeOptimizationPicksCheaperPath) {
  // Two disjoint 2-hop paths, one cheap one expensive, both with capacity;
  // with optimization everything goes on the cheap one.
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees(g);
  fees.set_policy(fwd(g, 0), {0, 0.001});
  fees.set_policy(fwd(g, 1), {0, 0.001});
  fees.set_policy(fwd(g, 2), {0, 0.05});
  fees.set_policy(fwd(g, 3), {0, 0.05});
  NetworkState s(g);
  for (int c = 0; c < 4; ++c) set_channel(s, g, c, 100, 0);

  ElephantConfig with_opt;
  const RouteResult opt = route_elephant(g, tx(0, 3, 50), s, fees, with_opt);
  ASSERT_TRUE(opt.success);
  EXPECT_NEAR(opt.fee, 50 * 0.002, 1e-6);
}

TEST(RouteElephant, WithoutOptimizationUsesDiscoveryOrder) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees(g);
  // Make the *first-discovered* path the expensive one by fee, so the
  // sequential split pays more than the LP split would.
  fees.set_policy(fwd(g, 0), {0, 0.05});
  fees.set_policy(fwd(g, 1), {0, 0.05});
  fees.set_policy(fwd(g, 2), {0, 0.001});
  fees.set_policy(fwd(g, 3), {0, 0.001});
  NetworkState s(g);
  for (int c = 0; c < 4; ++c) set_channel(s, g, c, 100, 0);

  ElephantConfig no_opt;
  no_opt.optimize_fees = false;
  const RouteResult r = route_elephant(g, tx(0, 3, 50), s, fees, no_opt);
  ASSERT_TRUE(r.success);
  // Sequential fill puts all 50 on the first BFS path; both are 2-hop so
  // either could be first, but the fee must correspond to a single path.
  EXPECT_TRUE(std::abs(r.fee - 50 * 0.10) < 1e-6 ||
              std::abs(r.fee - 50 * 0.002) < 1e-6);
}

TEST(RouteElephant, CountsProbeMessages) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 100, 0);
  set_channel(s, g, 1, 100, 0);
  const RouteResult r =
      route_elephant(g, tx(0, 2, 10), s, fees, ElephantConfig{});
  EXPECT_EQ(r.probes, 1u);
  EXPECT_EQ(r.probe_messages, 4u);  // 2 hops x (PROBE + PROBE_ACK)
}

// --- Mice routing table ------------------------------------------------------------

TEST(RoutingTable, ComputesOnFirstLookupOnly) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  MiceRoutingTable table(g, {2, 2, 0});
  bool computed = false;
  const auto& p1 = table.lookup(0, 3, &computed);
  EXPECT_TRUE(computed);
  EXPECT_EQ(p1.size(), 2u);
  table.lookup(0, 3, &computed);
  EXPECT_FALSE(computed);
  EXPECT_EQ(table.computations(), 1u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, ReplaceDeadPathPromotesSpare) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  MiceRoutingTable table(g, {1, 2, 0});
  const auto paths = table.lookup(0, 3);
  ASSERT_EQ(paths.size(), 1u);
  const Path dead = paths[0];
  EXPECT_TRUE(table.replace_dead_path(0, 3, dead));
  const auto& fresh = table.lookup(0, 3);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_NE(fresh[0], dead);
}

TEST(RoutingTable, ReplaceWithoutSparesShrinks) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  MiceRoutingTable table(g, {4, 0, 0});  // only one path exists, no spares
  const auto paths = table.lookup(0, 2);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_FALSE(table.replace_dead_path(0, 2, paths[0]));
  EXPECT_TRUE(table.lookup(0, 2).empty());
}

TEST(RoutingTable, ExhaustedEntryStaysEmptyByDefault) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  MiceRoutingTable table(g, {4, 0, 0});
  const Path dead = table.lookup(0, 2)[0];
  EXPECT_FALSE(table.replace_dead_path(0, 2, dead));
  // The pinned static behavior: the entry survives, empty, forever.
  bool computed = true;
  EXPECT_TRUE(table.lookup(0, 2, &computed).empty());
  EXPECT_FALSE(computed);
  EXPECT_EQ(table.computations(), 1u);
}

TEST(RoutingTable, RecomputeOnExhaustionForgetsEmptyEntries) {
  // Churn mode: once every path of an entry died, the entry is dropped so
  // the next lookup re-runs Yen instead of failing until a view refresh.
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  RoutingTableConfig config{4, 0, 0};
  config.recompute_on_exhaustion = true;
  MiceRoutingTable table(g, config);
  const Path dead = table.lookup(0, 2)[0];
  EXPECT_FALSE(table.replace_dead_path(0, 2, dead));
  EXPECT_EQ(table.size(), 0u);
  bool computed = false;
  EXPECT_FALSE(table.lookup(0, 2, &computed).empty());
  EXPECT_TRUE(computed);
  EXPECT_EQ(table.computations(), 2u);
}

TEST(RoutingTable, ClearForcesRecomputation) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  MiceRoutingTable table(g, {2, 0, 0});
  table.lookup(0, 2);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  bool computed = false;
  table.lookup(0, 2, &computed);
  EXPECT_TRUE(computed);
  EXPECT_EQ(table.computations(), 2u);
}

TEST(RoutingTable, TimeoutEvictsStaleEntries) {
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  MiceRoutingTable table(g, {2, 0, /*entry_timeout=*/100});
  table.lookup(0, 3);
  // 600 lookups of a different pair age the first entry past its timeout
  // (eviction runs on a 256-lookup stride).
  for (int i = 0; i < 600; ++i) table.lookup(1, 3);
  EXPECT_EQ(table.size(), 1u);  // (0,3) evicted, (1,3) alive
}

// --- Mice routing ---------------------------------------------------------------------

TEST(RouteMice, FullPaymentFirstTryNoProbe) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 100, 0);
  set_channel(s, g, 1, 100, 0);
  MiceRoutingTable table(g, {4, 2, 0});
  Rng rng(41);
  const RouteResult r = route_mice(g, tx(0, 2, 10), s, fees, table, rng);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.probes, 0u);  // no probing when the first trial lands
  EXPECT_EQ(r.probe_messages, 0u);
  EXPECT_EQ(r.paths_used, 1u);
}

TEST(RouteMice, SplitsViaPartialPayments) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 6, 0);
  set_channel(s, g, 1, 6, 0);
  set_channel(s, g, 2, 6, 0);
  set_channel(s, g, 3, 6, 0);
  MiceRoutingTable table(g, {4, 2, 0});
  Rng rng(43);
  const RouteResult r = route_mice(g, tx(0, 3, 10), s, fees, table, rng);
  EXPECT_TRUE(r.success);
  EXPECT_GE(r.paths_used, 2u);
  EXPECT_GT(r.probes, 0u);  // needed probing after the full send failed
  EXPECT_TRUE(s.check_invariants());
}

TEST(RouteMice, FailureRollsBackAllPartials) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees(g);
  NetworkState s(g);
  for (int c = 0; c < 4; ++c) set_channel(s, g, c, 3, 0);
  const auto snap = s.snapshot();
  MiceRoutingTable table(g, {4, 2, 0});
  Rng rng(47);
  const RouteResult r = route_mice(g, tx(0, 3, 50), s, fees, table, rng);
  EXPECT_FALSE(r.success);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(s.balance(e), snap.balance[e]);
  }
  EXPECT_EQ(s.active_holds(), 0u);
}

TEST(RouteMice, DeadPathGetsReplaced) {
  Graph g = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 0, 0);  // path via node 1 dead at first hop
  set_channel(s, g, 1, 0, 0);
  set_channel(s, g, 2, 100, 0);
  set_channel(s, g, 3, 100, 0);
  MiceRoutingTable table(g, {1, 3, 0});  // one active path + spares
  Rng rng(53);
  // Keep routing until the payment succeeds via the healthy route; the
  // dead path must eventually be replaced in the table.
  bool succeeded = false;
  for (int attempt = 0; attempt < 4 && !succeeded; ++attempt) {
    succeeded = route_mice(g, tx(0, 3, 10), s, fees, table, rng).success;
  }
  EXPECT_TRUE(succeeded);
}

// --- FlashRouter classification ---------------------------------------------------

TEST(FlashRouter, ClassifiesByThreshold) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 1000, 0);
  set_channel(s, g, 1, 1000, 0);
  FlashConfig config;
  config.elephant_threshold = 100;
  FlashRouter router(g, fees, config);
  EXPECT_FALSE(router.is_elephant(99));
  EXPECT_TRUE(router.is_elephant(100));
  const RouteResult mouse = router.route(tx(0, 2, 50), s);
  EXPECT_TRUE(mouse.success);
  EXPECT_FALSE(mouse.elephant);
  const RouteResult elephant = router.route(tx(0, 2, 200), s);
  EXPECT_TRUE(elephant.success);
  EXPECT_TRUE(elephant.elephant);
}

TEST(FlashRouter, MZeroRoutesMiceAsElephants) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 1000, 0);
  set_channel(s, g, 1, 1000, 0);
  FlashConfig config;
  config.elephant_threshold = 100;
  config.m_mice_paths = 0;  // Fig. 11's upper-bound configuration
  FlashRouter router(g, fees, config);
  const RouteResult r = router.route(tx(0, 2, 10), s);
  EXPECT_TRUE(r.success);
  EXPECT_FALSE(r.elephant);       // still reported as a mouse
  EXPECT_GE(r.probe_messages, 1u);  // but probed like an elephant
}

TEST(FlashRouter, TopologyUpdateClearsTable) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  FeeSchedule fees(g);
  NetworkState s(g);
  set_channel(s, g, 0, 100, 0);
  set_channel(s, g, 1, 100, 0);
  FlashConfig config;
  config.elephant_threshold = 1000;
  FlashRouter router(g, fees, config);
  router.route(tx(0, 2, 1), s);
  EXPECT_EQ(router.routing_table().size(), 1u);
  router.on_topology_update();
  EXPECT_EQ(router.routing_table().size(), 0u);
}

}  // namespace
}  // namespace flash

// Tests for the topology-gossip substrate (the §3.1 prerequisite).
#include <gtest/gtest.h>

#include "gossip/gossip.h"
#include "graph/bfs.h"
#include "graph/topology.h"
#include "testutil.h"

namespace flash::gossip {
namespace {

using flash::testing::make_graph;

TEST(NodeView, AppliesAndDetectsStale) {
  NodeView view;
  Announcement open;
  open.type = AnnouncementType::kChannelOpen;
  open.u = 3;
  open.v = 1;
  open.seq = 2;
  EXPECT_TRUE(view.apply(open));
  EXPECT_TRUE(view.knows_channel(1, 3));
  EXPECT_TRUE(view.knows_channel(3, 1));  // unordered
  EXPECT_EQ(view.seq_of(1, 3), 2u);
  // Same or older seq: rejected.
  EXPECT_FALSE(view.apply(open));
  open.seq = 1;
  EXPECT_FALSE(view.apply(open));
  // Newer close wins.
  Announcement close = open;
  close.type = AnnouncementType::kChannelClose;
  close.seq = 3;
  EXPECT_TRUE(view.apply(close));
  EXPECT_FALSE(view.knows_channel(1, 3));
}

TEST(NodeView, ToGraphMaterializesOpenChannels) {
  NodeView view;
  view.apply({AnnouncementType::kChannelOpen, 0, 1, 1});
  view.apply({AnnouncementType::kChannelOpen, 1, 2, 1});
  view.apply({AnnouncementType::kChannelClose, 1, 2, 2});
  const Graph g = view.to_graph(3);
  EXPECT_EQ(g.num_channels(), 1u);
  EXPECT_EQ(view.open_channels(), 1u);
}

TEST(NodeView, AgreementIsSymmetricOnOpenSets) {
  NodeView a, b;
  a.apply({AnnouncementType::kChannelOpen, 0, 1, 1});
  EXPECT_FALSE(a.agrees_with(b));
  EXPECT_FALSE(b.agrees_with(a));
  b.apply({AnnouncementType::kChannelOpen, 0, 1, 5});
  EXPECT_TRUE(a.agrees_with(b));
  // A channel b believes closed and a never heard of: still agreement.
  b.apply({AnnouncementType::kChannelOpen, 2, 3, 1});
  b.apply({AnnouncementType::kChannelClose, 2, 3, 2});
  EXPECT_TRUE(a.agrees_with(b));
}

TEST(Gossip, FullTopologyConvergesEverywhere) {
  Rng rng(1);
  Graph g = watts_strogatz(40, 6, 0.3, rng);
  GossipNetwork gossip(g);
  gossip.announce_full_topology();
  const auto [rounds, messages] = gossip.run_to_quiescence();
  EXPECT_TRUE(gossip.converged());
  EXPECT_GT(rounds, 0u);
  EXPECT_GT(messages, 0u);
  // Every node's materialized view matches the physical channel count.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(gossip.view(v).open_channels(), g.num_channels());
  }
}

TEST(Gossip, PropagationBoundedByDiameter) {
  // On a line of n nodes an announcement at one end needs ~n rounds.
  Graph g = line_graph(10);
  GossipNetwork gossip(g);
  gossip.announce_channel_open(0, 1);  // channel between nodes 0 and 1
  const auto [rounds, messages] = gossip.run_to_quiescence();
  EXPECT_TRUE(gossip.converged());
  EXPECT_LE(rounds, 10u);
  EXPECT_GE(rounds, 8u);  // must walk the whole line
}

TEST(Gossip, DuplicateSuppressionBoundsMessages) {
  Rng rng(2);
  Graph g = watts_strogatz(30, 6, 0.2, rng);
  GossipNetwork gossip(g);
  gossip.announce_channel_open(0, 1);
  const auto [rounds, messages] = gossip.run_to_quiescence();
  // One announcement floods each directed edge at most once per adopting
  // node: messages <= sum of degrees of adopting nodes = 2|E| per
  // announcement, plus the duplicate deliveries that get suppressed.
  EXPECT_LE(messages, 4 * g.num_edges());
}

TEST(Gossip, CloseOvertakesOpen) {
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  GossipNetwork gossip(g);
  gossip.announce_full_topology();
  gossip.run_to_quiescence();
  gossip.announce_channel_close(1, /*seq=*/2);  // channel 1-2 closes
  gossip.run_to_quiescence();
  EXPECT_TRUE(gossip.converged());
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_FALSE(gossip.view(v).knows_channel(1, 2));
    EXPECT_TRUE(gossip.view(v).knows_channel(0, 1));
  }
}

TEST(Gossip, StaleOpenCannotResurrectClosedChannel) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  GossipNetwork gossip(g);
  gossip.announce_channel_close(0, /*seq=*/5);
  gossip.run_to_quiescence();
  // A late (stale) open with a lower sequence must be ignored.
  gossip.announce_channel_open(0, /*seq=*/3);
  gossip.run_to_quiescence();
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_FALSE(gossip.view(v).knows_channel(0, 1));
  }
}

TEST(Gossip, PartitionedNetworkDoesNotConverge) {
  Graph g(4);
  g.add_channel(0, 1);
  g.add_channel(2, 3);  // disconnected component
  GossipNetwork gossip(g);
  gossip.announce_channel_open(0, 1);  // only component {0,1} learns
  gossip.run_to_quiescence();
  EXPECT_TRUE(gossip.view(0).knows_channel(0, 1));
  EXPECT_FALSE(gossip.view(2).knows_channel(0, 1));
  EXPECT_FALSE(gossip.converged());
}

TEST(Gossip, BootstrapMatchesFloodedBootstrapWithoutMessages) {
  Rng rng(5);
  Graph g = watts_strogatz(25, 4, 0.2, rng);
  GossipNetwork flooded(g);
  flooded.announce_full_topology();
  flooded.run_to_quiescence();
  GossipNetwork seeded(g);
  seeded.bootstrap_full_topology();
  EXPECT_EQ(seeded.total_messages(), 0u);
  EXPECT_TRUE(seeded.quiescent());
  EXPECT_TRUE(seeded.converged());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(seeded.view(v).agrees_with(flooded.view(v)));
    // Seeding counts as view changes: later churn comparisons start from a
    // well-defined per-node version.
    EXPECT_EQ(seeded.view_version(v), g.num_channels());
  }
}

TEST(Gossip, ViewVersionBumpsOnlyOnAdoption) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  GossipNetwork gossip(g);
  gossip.bootstrap_full_topology();
  const std::uint64_t v0 = gossip.view_version(0);
  const std::uint64_t v2 = gossip.view_version(2);
  gossip.announce_channel_close(0, /*seq=*/2);  // endpoints 0 and 1 adopt
  EXPECT_EQ(gossip.view_version(0), v0 + 1);
  EXPECT_EQ(gossip.view_version(2), v2);  // not yet reached
  gossip.run_to_quiescence();
  EXPECT_EQ(gossip.view_version(2), v2 + 1);
  // A duplicate (same seq) adopts nowhere: no version moves.
  const std::uint64_t after = gossip.view_version(1);
  gossip.announce_channel_close(0, /*seq=*/2);
  gossip.run_to_quiescence();
  EXPECT_EQ(gossip.view_version(1), after);
}

TEST(Gossip, InterleavedOpenCloseOutOfOrderSeq) {
  // Channel 0 churns rapidly: close(2) then reopen(3) flood while a stale
  // open(1) replay and a stale close(2) replay arrive out of order. The
  // highest sequence number must win everywhere, at every endpoint.
  Graph g = make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  GossipNetwork gossip(g);
  gossip.bootstrap_full_topology();

  gossip.announce_channel_close(0, 2);
  gossip.announce_channel_open(0, 3);  // reopen injected before close floods
  gossip.run_to_quiescence();
  EXPECT_TRUE(gossip.converged());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(gossip.view(v).knows_channel(0, 1));
    EXPECT_EQ(gossip.view(v).seq_of(0, 1), 3u);
  }

  // Stale replays (older seq) change nothing, from any origin.
  gossip.announce(3, {AnnouncementType::kChannelOpen, 0, 1, 1});
  gossip.announce(2, {AnnouncementType::kChannelClose, 0, 1, 2});
  gossip.run_to_quiescence();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(gossip.view(v).knows_channel(0, 1));
    EXPECT_EQ(gossip.view(v).seq_of(0, 1), 3u);
  }

  // A genuinely newer close wins again.
  gossip.announce_channel_close(0, 4);
  gossip.run_to_quiescence();
  EXPECT_TRUE(gossip.converged());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_FALSE(gossip.view(v).knows_channel(0, 1));
  }
}

TEST(Gossip, ConvergenceRoundCountTracksDistanceFromOrigin) {
  // On a line 0-1-...-9, a close of the channel between 0 and 1 floods one
  // hop per round: node d learns it in round d-1 (announced at both
  // endpoints), so full convergence takes eccentricity-many rounds.
  Graph g = line_graph(10);
  GossipNetwork gossip(g);
  gossip.bootstrap_full_topology();
  gossip.announce_channel_close(0, 2);
  std::size_t rounds = 0;
  while (!gossip.quiescent()) {
    // Mid-flood: nodes beyond the frontier still believe the channel is
    // open — the view-vs-truth divergence the scenario engine measures.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const bool stale = gossip.view(v).knows_channel(0, 1);
      const bool beyond_frontier = v >= rounds + 2;
      EXPECT_EQ(stale, beyond_frontier) << "node " << v << " round " << rounds;
    }
    gossip.run_round();
    ++rounds;
  }
  EXPECT_EQ(rounds, 9u);  // node 9 is 8 hops from the far endpoint, +1 idle
  EXPECT_TRUE(gossip.converged());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_FALSE(gossip.view(v).knows_channel(0, 1));
  }
}

TEST(Gossip, ViewTruthDivergenceShrinksToZero) {
  // Divergence = channels where a view disagrees with the live topology.
  // It must shrink monotonically per round and reach 0 at quiescence.
  Rng rng(9);
  Graph g = watts_strogatz(30, 4, 0.1, rng);
  GossipNetwork gossip(g);
  gossip.bootstrap_full_topology();
  std::vector<bool> open_truth(g.num_channels(), true);
  for (const std::size_t c : {std::size_t{0}, std::size_t{7}}) {
    open_truth[c] = false;
    gossip.announce_channel_close(c, 2);
  }
  const auto divergence = [&] {
    std::size_t n = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (std::size_t c = 0; c < g.num_channels(); ++c) {
        const EdgeId e = g.channel_forward_edge(c);
        if (gossip.view(v).knows_channel(g.from(e), g.to(e)) !=
            open_truth[c]) {
          ++n;
        }
      }
    }
    return n;
  };
  std::size_t last = divergence();
  EXPECT_GT(last, 0u);
  while (!gossip.quiescent()) {
    gossip.run_round();
    const std::size_t now = divergence();
    EXPECT_LE(now, last);
    last = now;
  }
  EXPECT_EQ(last, 0u);
}

TEST(Gossip, ViewDrivesRouterTopology) {
  // End-to-end: a node's gossip view materializes the graph its router
  // uses; after a close + refresh, the router routes around the gap.
  Graph physical = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  GossipNetwork gossip(physical);
  gossip.announce_full_topology();
  gossip.run_to_quiescence();
  const Graph local = gossip.view(0).to_graph(4);
  EXPECT_EQ(local.num_channels(), 4u);
  // Close channel 0 (0-1); a fresh view graph drops it.
  gossip.announce_channel_close(0, 2);
  gossip.run_to_quiescence();
  const Graph updated = gossip.view(0).to_graph(4);
  EXPECT_EQ(updated.num_channels(), 3u);
  EXPECT_TRUE(reachable(updated, 0, 3));  // still reachable via 2
}

}  // namespace
}  // namespace flash::gossip

// Tests for the topology-gossip substrate (the §3.1 prerequisite).
#include <gtest/gtest.h>

#include "gossip/gossip.h"
#include "graph/bfs.h"
#include "graph/topology.h"
#include "testutil.h"

namespace flash::gossip {
namespace {

using flash::testing::make_graph;

TEST(NodeView, AppliesAndDetectsStale) {
  NodeView view;
  Announcement open;
  open.type = AnnouncementType::kChannelOpen;
  open.u = 3;
  open.v = 1;
  open.seq = 2;
  EXPECT_TRUE(view.apply(open));
  EXPECT_TRUE(view.knows_channel(1, 3));
  EXPECT_TRUE(view.knows_channel(3, 1));  // unordered
  EXPECT_EQ(view.seq_of(1, 3), 2u);
  // Same or older seq: rejected.
  EXPECT_FALSE(view.apply(open));
  open.seq = 1;
  EXPECT_FALSE(view.apply(open));
  // Newer close wins.
  Announcement close = open;
  close.type = AnnouncementType::kChannelClose;
  close.seq = 3;
  EXPECT_TRUE(view.apply(close));
  EXPECT_FALSE(view.knows_channel(1, 3));
}

TEST(NodeView, ToGraphMaterializesOpenChannels) {
  NodeView view;
  view.apply({AnnouncementType::kChannelOpen, 0, 1, 1});
  view.apply({AnnouncementType::kChannelOpen, 1, 2, 1});
  view.apply({AnnouncementType::kChannelClose, 1, 2, 2});
  const Graph g = view.to_graph(3);
  EXPECT_EQ(g.num_channels(), 1u);
  EXPECT_EQ(view.open_channels(), 1u);
}

TEST(NodeView, AgreementIsSymmetricOnOpenSets) {
  NodeView a, b;
  a.apply({AnnouncementType::kChannelOpen, 0, 1, 1});
  EXPECT_FALSE(a.agrees_with(b));
  EXPECT_FALSE(b.agrees_with(a));
  b.apply({AnnouncementType::kChannelOpen, 0, 1, 5});
  EXPECT_TRUE(a.agrees_with(b));
  // A channel b believes closed and a never heard of: still agreement.
  b.apply({AnnouncementType::kChannelOpen, 2, 3, 1});
  b.apply({AnnouncementType::kChannelClose, 2, 3, 2});
  EXPECT_TRUE(a.agrees_with(b));
}

TEST(Gossip, FullTopologyConvergesEverywhere) {
  Rng rng(1);
  Graph g = watts_strogatz(40, 6, 0.3, rng);
  GossipNetwork gossip(g);
  gossip.announce_full_topology();
  const auto [rounds, messages] = gossip.run_to_quiescence();
  EXPECT_TRUE(gossip.converged());
  EXPECT_GT(rounds, 0u);
  EXPECT_GT(messages, 0u);
  // Every node's materialized view matches the physical channel count.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(gossip.view(v).open_channels(), g.num_channels());
  }
}

TEST(Gossip, PropagationBoundedByDiameter) {
  // On a line of n nodes an announcement at one end needs ~n rounds.
  Graph g = line_graph(10);
  GossipNetwork gossip(g);
  gossip.announce_channel_open(0, 1);  // channel between nodes 0 and 1
  const auto [rounds, messages] = gossip.run_to_quiescence();
  EXPECT_TRUE(gossip.converged());
  EXPECT_LE(rounds, 10u);
  EXPECT_GE(rounds, 8u);  // must walk the whole line
}

TEST(Gossip, DuplicateSuppressionBoundsMessages) {
  Rng rng(2);
  Graph g = watts_strogatz(30, 6, 0.2, rng);
  GossipNetwork gossip(g);
  gossip.announce_channel_open(0, 1);
  const auto [rounds, messages] = gossip.run_to_quiescence();
  // One announcement floods each directed edge at most once per adopting
  // node: messages <= sum of degrees of adopting nodes = 2|E| per
  // announcement, plus the duplicate deliveries that get suppressed.
  EXPECT_LE(messages, 4 * g.num_edges());
}

TEST(Gossip, CloseOvertakesOpen) {
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  GossipNetwork gossip(g);
  gossip.announce_full_topology();
  gossip.run_to_quiescence();
  gossip.announce_channel_close(1, /*seq=*/2);  // channel 1-2 closes
  gossip.run_to_quiescence();
  EXPECT_TRUE(gossip.converged());
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_FALSE(gossip.view(v).knows_channel(1, 2));
    EXPECT_TRUE(gossip.view(v).knows_channel(0, 1));
  }
}

TEST(Gossip, StaleOpenCannotResurrectClosedChannel) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  GossipNetwork gossip(g);
  gossip.announce_channel_close(0, /*seq=*/5);
  gossip.run_to_quiescence();
  // A late (stale) open with a lower sequence must be ignored.
  gossip.announce_channel_open(0, /*seq=*/3);
  gossip.run_to_quiescence();
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_FALSE(gossip.view(v).knows_channel(0, 1));
  }
}

TEST(Gossip, PartitionedNetworkDoesNotConverge) {
  Graph g(4);
  g.add_channel(0, 1);
  g.add_channel(2, 3);  // disconnected component
  GossipNetwork gossip(g);
  gossip.announce_channel_open(0, 1);  // only component {0,1} learns
  gossip.run_to_quiescence();
  EXPECT_TRUE(gossip.view(0).knows_channel(0, 1));
  EXPECT_FALSE(gossip.view(2).knows_channel(0, 1));
  EXPECT_FALSE(gossip.converged());
}

TEST(Gossip, ViewDrivesRouterTopology) {
  // End-to-end: a node's gossip view materializes the graph its router
  // uses; after a close + refresh, the router routes around the gap.
  Graph physical = make_graph(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  GossipNetwork gossip(physical);
  gossip.announce_full_topology();
  gossip.run_to_quiescence();
  const Graph local = gossip.view(0).to_graph(4);
  EXPECT_EQ(local.num_channels(), 4u);
  // Close channel 0 (0-1); a fresh view graph drops it.
  gossip.announce_channel_close(0, 2);
  gossip.run_to_quiescence();
  const Graph updated = gossip.view(0).to_graph(4);
  EXPECT_EQ(updated.num_channels(), 3u);
  EXPECT_TRUE(reachable(updated, 0, 3));  // still reachable via 2
}

}  // namespace
}  // namespace flash::gossip

// Shared helpers for the test suite.
#pragma once

#include <initializer_list>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "ledger/network_state.h"

namespace flash::testing {

/// Deterministic non-uniform per-edge weight (fee-rate-like magnitudes).
/// Shared by the graph equivalence and allocation tests so both exercise
/// the same weight function (bench/bench_graph_core.cc mirrors it).
struct DeterministicFeeWeight {
  double operator()(EdgeId e) const {
    return 0.001 + 0.01 * static_cast<double>((e * 2654435761u) % 97) / 97.0;
  }
};

/// Builds a graph from an undirected channel list; node count inferred.
inline Graph make_graph(std::size_t n,
                        std::initializer_list<std::pair<NodeId, NodeId>> chans) {
  Graph g(n);
  for (auto [u, v] : chans) g.add_channel(u, v);
  return g;
}

/// Sets both directions of channel c to the given balances.
inline void set_channel(NetworkState& state, const Graph& g, std::size_t c,
                        Amount fwd, Amount bwd) {
  const EdgeId e = g.channel_forward_edge(c);
  state.set_balance(e, fwd);
  state.set_balance(g.reverse(e), bwd);
}

/// Edge id of the c-th channel's forward direction.
inline EdgeId fwd(const Graph& g, std::size_t c) {
  return g.channel_forward_edge(c);
}

/// Edge id of the c-th channel's backward direction.
inline EdgeId bwd(const Graph& g, std::size_t c) {
  return g.reverse(g.channel_forward_edge(c));
}

}  // namespace flash::testing

// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <initializer_list>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "ledger/network_state.h"
#include "sim/metrics.h"

namespace flash::testing {

/// Deterministic non-uniform per-edge weight (fee-rate-like magnitudes).
/// Shared by the graph equivalence and allocation tests so both exercise
/// the same weight function (bench/bench_graph_core.cc mirrors it).
struct DeterministicFeeWeight {
  double operator()(EdgeId e) const {
    return 0.001 + 0.01 * static_cast<double>((e * 2654435761u) % 97) / 97.0;
  }
};

/// Builds a graph from an undirected channel list; node count inferred.
inline Graph make_graph(std::size_t n,
                        std::initializer_list<std::pair<NodeId, NodeId>> chans) {
  Graph g(n);
  for (auto [u, v] : chans) g.add_channel(u, v);
  return g;
}

/// Sets both directions of channel c to the given balances.
inline void set_channel(NetworkState& state, const Graph& g, std::size_t c,
                        Amount fwd, Amount bwd) {
  const EdgeId e = g.channel_forward_edge(c);
  state.set_balance(e, fwd);
  state.set_balance(g.reverse(e), bwd);
}

/// Edge id of the c-th channel's forward direction.
inline EdgeId fwd(const Graph& g, std::size_t c) {
  return g.channel_forward_edge(c);
}

/// Edge id of the c-th channel's backward direction.
inline EdgeId bwd(const Graph& g, std::size_t c) {
  return g.reverse(g.channel_forward_edge(c));
}

/// Field-for-field SimResult equality, doubles compared exactly: the
/// bit-identity assertion shared by the sweep-determinism and
/// scenario-equivalence suites. Must cover EVERY SimResult field — extend
/// it whenever SimResult grows, or a regression in the new field slips
/// past both suites.
inline void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.volume_attempted, b.volume_attempted);
  EXPECT_EQ(a.volume_succeeded, b.volume_succeeded);
  EXPECT_EQ(a.fees_paid, b.fees_paid);
  EXPECT_EQ(a.probe_messages, b.probe_messages);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.mice_transactions, b.mice_transactions);
  EXPECT_EQ(a.mice_successes, b.mice_successes);
  EXPECT_EQ(a.mice_volume_succeeded, b.mice_volume_succeeded);
  EXPECT_EQ(a.mice_probe_messages, b.mice_probe_messages);
  EXPECT_EQ(a.elephant_transactions, b.elephant_transactions);
  EXPECT_EQ(a.elephant_successes, b.elephant_successes);
  EXPECT_EQ(a.elephant_volume_succeeded, b.elephant_volume_succeeded);
  EXPECT_EQ(a.elephant_probe_messages, b.elephant_probe_messages);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retry_successes, b.retry_successes);
  EXPECT_EQ(a.stale_view_failures, b.stale_view_failures);
  EXPECT_EQ(a.time_to_success_total, b.time_to_success_total);
}

}  // namespace flash::testing

// Concurrent payment engine: the two parallel execution modes of
// ScenarioEngine (see ScenarioExecution in sim/scenario.h and the
// "Concurrent payment engine" section of docs/ARCHITECTURE.md).
//
// kReplay — speculative routing, logical-order settlement:
//
//   The sequential event loop stays the single source of ordering truth.
//   Worker threads (one per `sender % workers` shard) route upcoming
//   payments ahead of time against private mirror ledgers; when the event
//   loop reaches a payment's arrival, the coordinator *consumes* the
//   speculation: if every balance the route READ is still current (checked
//   against per-edge write stamps), the speculated writes are applied to
//   the truth verbatim — by induction they are exactly the writes the
//   sequential engine would have produced — otherwise every unconsumed
//   speculation of that worker is rolled back (router undo journal +
//   mirror refresh) and the payment re-routes inline on the same router.
//   Accept/abort only needs to be SOUND, not deterministic: an aborted
//   speculation leaves no trace, so thread count and timing cannot leak
//   into results. Replay is therefore bit-identical to the sequential
//   engine (with payment_indexed_rng on) at ANY worker count.
//
//   All cross-thread happens-before comes from two BoundedQueue families
//   (per-worker dispatch inboxes, one shared completion queue); workers
//   and coordinator share no atomics. State published before a push is
//   safely read after the matching pop — which covers the speculation
//   frames, the truth-write replay log, and the per-worker cursors.
//
// kFreeOrder — maximum throughput, conservation-only guarantees:
//
//   No event loop at all. Workers pull sender-sharded batches, route on
//   private mirrors, and commit settlement deltas directly to the shared
//   truth under channel-striped locks taken in sorted stripe order
//   (deadlock-free by the standard total-order argument). A commit
//   revalidates feasibility against the live truth and retries the route
//   on conflict. Only the channel-conservation invariant is guaranteed;
//   results are deterministic only at workers == 1.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/scenario.h"
#include "util/bounded_queue.h"
#include "util/thread_pool.h"

namespace flash {

namespace {

/// Same fold as scenario.cc's payment-digest combine (the two TUs must
/// agree so free-order's per-worker digests compose with the shared seal).
inline void fold64(std::uint64_t& h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

}  // namespace

// ---------------------------------------------------------------------------
// ConcurrentRuntime: all kReplay pipeline state.
// ---------------------------------------------------------------------------

struct ScenarioEngine::ConcurrentRuntime {
  // Truth-write replay log entries live in fixed-size chunks behind a
  // never-reallocated pointer table, so workers can read any entry below
  // their dispatch watermark with plain loads: the coordinator writes the
  // chunk-table slot (and the entries) before publishing the watermark
  // through an inbox push, and the queue mutex carries the happens-before.
  static constexpr std::size_t kChunkBits = 13;  // 8192 entries per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 15;
  /// Stamp source for non-speculative truth writes (inline re-routes,
  /// rebalance publishes): conflicts with every in-flight speculation.
  static constexpr std::uint32_t kExternalSrc = 0xffffffffu;

  struct LogEntry {
    EdgeId edge = 0;
    std::uint32_t src = kExternalSrc;
    Amount value = 0;
  };

  struct SpecTask {
    std::size_t index = 0;
    Transaction tx;
    std::uint64_t rng_seed = 0;
  };

  struct SpecBatch {
    std::uint64_t id = 0;
    std::vector<SpecTask> tasks;
    /// Replay-log watermark: the worker syncs its mirror to here before
    /// speculating (every entry below is an applied truth write).
    std::size_t log_len = 0;
    /// Router undo records below this mark are permanent; free them.
    std::uint64_t release_mark = 0;
  };

  struct Completion {
    std::uint32_t worker = 0;
    std::uint64_t batch_id = 0;
  };

  // One speculation per payment index, living in a ring slot. The slot is
  // coordinator-owned except between the dispatch push and the completion
  // pop of its batch, when the worker fills it in.
  struct Frame {
    enum class State : std::uint8_t {
      kEmpty,    // slot free / consumed
      kDone,     // speculated; result + read/write sets valid
      kInvalid,  // rolled back; consume must re-route inline
    };
    State state = State::kEmpty;
    std::size_t index = 0;
    Transaction tx;  // kept for re-dispatch after a rollback
    RouteResult result;
    std::vector<EdgeId> reads;        // sorted, deduplicated
    std::vector<EdgeId> write_edges;  // first-touch order, no-ops dropped
    std::vector<Amount> write_post;   // final value per write edge
    std::vector<Amount> write_pre;    // pre-images (accept-time cross-check)
    std::uint64_t router_mark = 0;    // undo journal position before route
    std::size_t log_len = 0;          // mirror watermark at route time
    std::chrono::steady_clock::time_point spec_start{};
    std::exception_ptr error;
  };

  struct Worker {
    // Worker-owned between dispatch and completion; coordinator-owned
    // (for rollback / inline routes) while the worker is idle.
    std::uint32_t id = 0;
    std::unique_ptr<BoundedQueue<SpecBatch>> inbox;
    std::unique_ptr<Router> router;
    std::unique_ptr<NetworkState> mirror;
    std::size_t sync_pos = 0;               // log position mirror reflects
    std::vector<std::uint32_t> write_slot;  // dedup scratch (zeros at rest)
    std::vector<Amount> pre_scratch;        // first-touch pre-images

    // Coordinator-owned bookkeeping.
    std::uint64_t batch_seq = 0;        // batches dispatched
    std::uint64_t last_completed = 0;   // highest completed batch id
    std::size_t outstanding = 0;        // dispatched minus completed
    std::deque<std::size_t> inflight;   // unconsumed speculated indices
    std::uint64_t release_mark = 0;     // journal prefix known-permanent
  };

  ~ConcurrentRuntime() {
    // Unblock parked workers before joining the pool: a worker waits only
    // on its inbox pop (or, never in practice, a completions push).
    for (Worker& w : workers) {
      if (w.inbox) w.inbox->close();
    }
    if (completions) completions->close();
    pool.reset();  // joins
  }

  ScenarioEngine* eng = nullptr;
  std::size_t window = 0;  // speculation window (payments)
  std::size_t ring = 0;    // frame ring size = 2 * window

  std::vector<Worker> workers;
  std::vector<std::vector<SpecTask>> pending_tasks;  // dispatch scratch
  std::unique_ptr<BoundedQueue<Completion>> completions;
  std::unique_ptr<ThreadPool> pool;

  std::vector<Frame> frames;            // ring, indexed by index % ring
  std::vector<std::uint64_t> slot_batch;  // batch id per ring slot

  // Per-edge write stamps (coordinator-owned): position-in-log + 1 of the
  // last truth write to the edge, and which worker's accepted speculation
  // produced it (kExternalSrc for inline/rebalance writes). A frame of
  // worker w with watermark L is valid iff every read edge's stamp is
  // <= L or sourced by w itself (w's own accepted writes are layered into
  // its mirror by construction).
  std::vector<std::size_t> stamp_pos;
  std::vector<std::uint32_t> stamp_src;

  // The truth-write replay log (see kChunkBits above).
  std::vector<std::unique_ptr<LogEntry[]>> chunk_store;
  std::vector<LogEntry*> chunk_table;  // sized kMaxChunks once, no realloc
  std::size_t log_size = 0;

  // Stream read-ahead shared by dispatch and arrival staging: the deque
  // holds transactions [preread_base, preread_base + preread.size()).
  std::deque<Transaction> preread;
  std::size_t preread_base = 0;

  std::size_t dispatched_end = 0;  // payments dispatched for speculation
  std::size_t next_consume = 0;    // next arrival index to settle
  bool spec_on = false;            // dispatch active (pristine era only)
  bool stream_dead = false;        // stream ended earlier than advertised

  std::vector<Amount> truth_snapshot;  // full-resync scratch
  std::vector<EdgeId> inline_edges;    // inline-route write scratch
  std::vector<Amount> inline_pre;
  std::vector<std::size_t> rolled_back;  // last rollback's frame indices

  // --- Log -----------------------------------------------------------------

  void log_append(EdgeId e, std::uint32_t src, Amount v) {
    const std::size_t i = log_size;
    const std::size_t c = i >> kChunkBits;
    if (c >= chunk_store.size()) {
      if (c >= kMaxChunks) {
        throw std::logic_error("concurrent engine: replay log overflow");
      }
      chunk_store.push_back(std::make_unique<LogEntry[]>(kChunkSize));
      chunk_table[c] = chunk_store.back().get();
    }
    chunk_table[c][i & kChunkMask] = LogEntry{e, src, v};
    log_size = i + 1;
    stamp_pos[e] = log_size;
    stamp_src[e] = src;
  }

  /// Replays log entries [sync_pos, upto) into the mirror — EXCEPT the
  /// worker's own accepted writes. Those are already in the mirror (they
  /// were layered there when the frame was speculated and are never
  /// clobbered), and replaying one would be a time-travel bug: an entry
  /// this worker's frame F produced is OLDER than the layered writes of
  /// frames speculated after F, so re-applying it would roll those layers
  /// back. Foreign entries may clobber a layer, but then the layer's
  /// frame reads a foreign-stamped edge and fails validation at consume,
  /// which invalidates every later frame of this worker with it.
  void sync_mirror(Worker& w, std::size_t upto) const {
    for (; w.sync_pos < upto; ++w.sync_pos) {
      const LogEntry& le =
          chunk_table[w.sync_pos >> kChunkBits][w.sync_pos & kChunkMask];
      if (le.src != w.id) w.mirror->mirror_balance(le.edge, le.value);
    }
  }

  // --- Stream read-ahead ---------------------------------------------------

  bool ensure_preread(std::size_t idx, WorkloadStream& s) {
    while (preread_base + preread.size() <= idx) {
      Transaction tx;
      if (!s.next(tx)) {
        stream_dead = true;
        return false;
      }
      preread.push_back(tx);
    }
    return true;
  }

  const Transaction& preread_at(std::size_t idx) const {
    return preread[idx - preread_base];
  }

  /// Drops entries both cursors have passed. `staged` is the engine's
  /// next_arrival_; while dispatch is live its cursor holds entries too.
  void trim_preread(std::size_t staged) {
    const std::size_t keep = spec_on ? std::min(staged, dispatched_end)
                                     : staged;
    while (preread_base < keep && !preread.empty()) {
      preread.pop_front();
      ++preread_base;
    }
  }

  // --- Coordinator-side completion tracking --------------------------------

  void drain_one() {
    const auto c = completions->pop();
    if (!c) {
      throw std::logic_error("concurrent engine: completion queue closed");
    }
    Worker& w = workers[c->worker];
    w.last_completed = c->batch_id;
    --w.outstanding;
  }

  void wait_for_batch(Worker& w, std::uint64_t batch_id) {
    while (w.last_completed < batch_id) drain_one();
  }

  void wait_idle(Worker& w) {
    while (w.outstanding > 0) drain_one();
  }

  void wait_all_idle() {
    for (Worker& w : workers) wait_idle(w);
  }

  // --- Validation / rollback ----------------------------------------------

  bool frame_valid(const Frame& f, std::uint32_t wid) const {
    for (const EdgeId e : f.reads) {
      if (stamp_pos[e] > f.log_len && stamp_src[e] != wid) return false;
    }
    return true;
  }

  /// Coordinator, worker idle: discards every unconsumed speculation of
  /// `w` — undoes the router back to the OLDEST in-flight frame's mark
  /// (per-worker consume order means everything above it is speculative)
  /// and refreshes the mirror wholesale from the truth. Frames flip to
  /// kInvalid so their consume re-routes inline.
  void rollback_worker(Worker& w) {
    rolled_back.clear();
    if (w.inflight.empty()) return;
    const Frame& oldest = frames[w.inflight.front() % ring];
    w.router->speculation_rollback(oldest.router_mark);
    w.release_mark = oldest.router_mark;
    for (const std::size_t i : w.inflight) {
      frames[i % ring].state = Frame::State::kInvalid;
      rolled_back.push_back(i);
    }
    w.inflight.clear();
    full_resync(w);
  }

  /// Coordinator, worker idle: re-dispatches the frames the preceding
  /// rollback_worker invalidated (minus `consumed`, which just routed
  /// inline) for a fresh speculation against the post-rollback truth.
  /// Without this, one stale consume degrades the worker's whole
  /// outstanding window to inline routes; with it, only payments whose
  /// re-speculation ALSO goes stale pay the sequential price. Purely a
  /// throughput device — accept/abort stays sound either way, so replay
  /// results are unchanged.
  void redispatch_rolled_back(Worker& w, std::size_t consumed) {
    if (!spec_on || rolled_back.empty()) return;
    SpecBatch batch;
    for (const std::size_t idx : rolled_back) {
      if (idx == consumed) continue;
      const Frame& f = frames[idx % ring];
      batch.tasks.push_back({idx, f.tx, eng->payment_rng_seed(idx, 0)});
    }
    rolled_back.clear();
    if (batch.tasks.empty()) return;
    batch.id = ++w.batch_seq;
    batch.log_len = log_size;
    batch.release_mark = w.release_mark;
    for (const SpecTask& t : batch.tasks) {
      slot_batch[t.index % ring] = batch.id;
      w.inflight.push_back(t.index);
    }
    ++w.outstanding;
    // Never blocks: the worker is idle, so its inbox is empty.
    w.inbox->push(std::move(batch));
  }

  /// Coordinator, worker idle: mirror := truth (the log-suffix shortcut is
  /// unsound after a rollback — a rolled-back frame may have overwritten a
  /// synced-in value that no suffix entry repeats).
  void full_resync(Worker& w) {
    const Graph& g = eng->workload_->graph();
    truth_snapshot.resize(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      truth_snapshot[e] = eng->truth_.balance(e);
    }
    w.mirror->assign_balances(truth_snapshot);
    w.sync_pos = log_size;
  }

  // --- Inline (non-speculative) routing ------------------------------------

  /// Coordinator, worker idle, no in-flight speculations on `w` (caller
  /// rolled them back): routes on w's mirror (== truth after the sync),
  /// applies the settlement to the truth, publishes it through the log.
  /// This is exactly the sequential pristine route, executed on the shard
  /// router — identical to the oracle by the sender-sharding argument.
  RouteResult inline_route(Worker& w, const Transaction& tx, std::size_t idx,
                           std::size_t attempt) {
    sync_mirror(w, log_size);
    NetworkState& m = *w.mirror;
    m.clear_read_log();
    m.clear_change_log();
    w.router->begin_payment(eng->payment_rng_seed(idx, attempt));
    const RouteResult r = w.router->route(tx, m);
    if (m.active_holds() != 0) {
      throw std::logic_error("scenario: router " + w.router->name() +
                             " leaked holds after tx " + std::to_string(idx));
    }
    // Inline routes are permanent: drop their undo records immediately.
    w.release_mark = w.router->speculation_mark();
    w.router->speculation_release(w.release_mark);
    // First-touch pre / final post per touched edge; apply non-no-ops.
    const auto cl = m.change_log();
    const auto pre = m.change_log_pre();
    inline_edges.clear();
    inline_pre.clear();
    auto& slot = w.write_slot;
    for (std::size_t i = 0; i < cl.size(); ++i) {
      const EdgeId e = cl[i];
      if (slot[e] == 0) {
        inline_edges.push_back(e);
        inline_pre.push_back(pre[i]);
        slot[e] = static_cast<std::uint32_t>(inline_edges.size());
      }
    }
    for (std::size_t j = 0; j < inline_edges.size(); ++j) {
      const EdgeId e = inline_edges[j];
      slot[e] = 0;
      const Amount post = m.balance(e);
      if (post != inline_pre[j]) {
        eng->truth_.mirror_balance(e, post);
        log_append(e, kExternalSrc, post);
      }
    }
    eng->truth_.charge_messages(r.probe_messages);
    m.clear_read_log();
    m.clear_change_log();
    return r;
  }

  // --- Worker side ---------------------------------------------------------

  void collect_frame(Worker& w, Frame& f) {
    NetworkState& m = *w.mirror;
    // Writes: first-touch pre-image, final post-value; drop edges whose
    // final value equals their pre-route value (applying a no-op write is
    // observationally identical to skipping it — the sequential engine
    // routing on the truth leaves such edges at the same value — and
    // skipping avoids stamping false conflicts onto other speculations).
    f.write_edges.clear();
    f.write_post.clear();
    f.write_pre.clear();
    w.pre_scratch.clear();
    const auto cl = m.change_log();
    const auto pre = m.change_log_pre();
    auto& slot = w.write_slot;
    for (std::size_t i = 0; i < cl.size(); ++i) {
      const EdgeId e = cl[i];
      if (slot[e] == 0) {
        f.write_edges.push_back(e);
        w.pre_scratch.push_back(pre[i]);
        slot[e] = static_cast<std::uint32_t>(f.write_edges.size());
      }
    }
    std::size_t out = 0;
    for (std::size_t j = 0; j < f.write_edges.size(); ++j) {
      const EdgeId e = f.write_edges[j];
      slot[e] = 0;
      const Amount post = m.balance(e);
      if (post != w.pre_scratch[j]) {
        f.write_edges[out] = e;
        f.write_post.push_back(post);
        f.write_pre.push_back(w.pre_scratch[j]);
        ++out;
      }
    }
    f.write_edges.resize(out);
    // Reads, sorted + deduplicated. NetworkState funnels every balance
    // read — probes, hold feasibility, and the commit/abort RMW reads —
    // through the read log, so this set is a superset of the write set
    // and one membership check covers write-write conflicts too.
    const auto rl = m.read_log();
    f.reads.assign(rl.begin(), rl.end());
    std::sort(f.reads.begin(), f.reads.end());
    f.reads.erase(std::unique(f.reads.begin(), f.reads.end()),
                  f.reads.end());
  }

  void spec_one(Worker& w, const SpecTask& t, Frame& f) {
    f.index = t.index;
    f.tx = t.tx;
    f.error = nullptr;
    f.log_len = w.sync_pos;
    f.spec_start = std::chrono::steady_clock::now();
    NetworkState& m = *w.mirror;
    m.clear_read_log();
    m.clear_change_log();
    try {
      f.router_mark = w.router->speculation_mark();
      w.router->begin_payment(t.rng_seed);
      f.result = w.router->route(t.tx, m);
      if (m.active_holds() != 0) {
        throw std::logic_error("scenario: router " + w.router->name() +
                               " leaked holds during speculation of tx " +
                               std::to_string(t.index));
      }
      collect_frame(w, f);
    } catch (...) {
      f.error = std::current_exception();
    }
    f.state = Frame::State::kDone;
  }

  void worker_loop(std::uint32_t wid) {
    Worker& w = workers[wid];
    while (auto batch = w.inbox->pop()) {
      w.router->speculation_release(batch->release_mark);
      sync_mirror(w, batch->log_len);
      for (const SpecTask& t : batch->tasks) {
        spec_one(w, t, frames[t.index % ring]);
      }
      completions->push(Completion{wid, batch->id});
    }
  }
};

// Defined here (not scenario.h/.cc) so ConcurrentRuntime is complete only
// where it must be.
void ScenarioEngine::ConcurrentRuntimeDeleter::operator()(
    ConcurrentRuntime* rt) const {
  delete rt;
}

ScenarioEngine::~ScenarioEngine() = default;

// ---------------------------------------------------------------------------
// kReplay: engine-side coordinator.
// ---------------------------------------------------------------------------

void ScenarioEngine::begin_replay() {
  // The determinism argument requires per-payment rng pinning: worker
  // routers must draw exactly like the oracle's shared router would for
  // the same payment. The equality oracle is the sequential engine with
  // this same knob on.
  cfg_.payment_indexed_rng = true;

  concurrent_.reset(new ConcurrentRuntime());
  ConcurrentRuntime& rt = *concurrent_;
  rt.eng = this;
  const std::size_t n = cfg_.concurrency.workers
                            ? cfg_.concurrency.workers
                            : ThreadPool::hardware_threads();
  rt.window = cfg_.concurrency.batch ? cfg_.concurrency.batch : 8 * n;
  if (rt.window == 0) rt.window = 1;
  rt.ring = 2 * rt.window;

  const Graph& g = workload_->graph();
  rt.frames.resize(rt.ring);
  rt.slot_batch.assign(rt.ring, 0);
  rt.stamp_pos.assign(g.num_edges(), 0);
  rt.stamp_src.assign(g.num_edges(), ConcurrentRuntime::kExternalSrc);
  rt.chunk_table.assign(ConcurrentRuntime::kMaxChunks, nullptr);
  rt.pending_tasks.resize(n);
  // Deadlock-freedom: outstanding batches carry disjoint non-empty sets of
  // unconsumed dispatched indices (pump batches are disjoint by
  // construction; a re-dispatch batch's indices left their previous batch
  // when it completed), and unconsumed dispatched indices number at most
  // `ring`. Sizing the completion queue past that means a worker's
  // completion push NEVER blocks, so workers always return to their inbox
  // and every coordinator dispatch push eventually completes.
  rt.completions =
      std::make_unique<BoundedQueue<ConcurrentRuntime::Completion>>(
          std::max(rt.ring, 2 * n) + 1);
  rt.truth_snapshot.resize(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    rt.truth_snapshot[e] = truth_.balance(e);
  }

  rt.workers.resize(n);
  for (std::size_t wid = 0; wid < n; ++wid) {
    ConcurrentRuntime::Worker& w = rt.workers[wid];
    w.id = static_cast<std::uint32_t>(wid);
    w.inbox =
        std::make_unique<BoundedQueue<ConcurrentRuntime::SpecBatch>>(4);
    // Identical construction to base_router_, so with payment-indexed rng
    // a shard router routes any given payment exactly like the oracle.
    w.router = make_router(scheme_, *workload_, opts_, seed_);
    w.router->speculation_mark();  // arm the undo journal on this thread
    w.mirror = std::make_unique<NetworkState>(g);
    w.mirror->assign_balances(rt.truth_snapshot);
    w.mirror->enable_change_log(/*with_pre_images=*/true);
    w.mirror->enable_read_log();
    w.write_slot.assign(g.num_edges(), 0);
  }

  rt.spec_on = stream_->size() > 0;
  result_.workers_used = n;
  rt.pool = std::make_unique<ThreadPool>(n);
  for (std::size_t wid = 0; wid < n; ++wid) {
    ConcurrentRuntime* rtp = &rt;
    rt.pool->submit(
        [rtp, wid] { rtp->worker_loop(static_cast<std::uint32_t>(wid)); });
  }
}

void ScenarioEngine::end_replay() {
  ConcurrentRuntime& rt = *concurrent_;
  rt.spec_on = false;
  for (ConcurrentRuntime::Worker& w : rt.workers) {
    if (w.inbox) w.inbox->close();
  }
  if (rt.completions) rt.completions->close();
  if (rt.pool) rt.pool->wait_idle();
}

void ScenarioEngine::replay_pump() {
  ConcurrentRuntime& rt = *concurrent_;
  if (!rt.spec_on || rt.stream_dead) {
    rt.trim_preread(next_arrival_);
    return;
  }
  const std::size_t total = stream_->size();
  while (rt.dispatched_end < total) {
    const std::size_t chunk = std::min(rt.window, total - rt.dispatched_end);
    // Ring-slot safety: never let in-flight indices span more than `ring`
    // (a slot is reused only after its previous occupant was consumed).
    if (rt.dispatched_end + chunk - rt.next_consume > rt.ring) break;
    std::size_t actual = 0;
    for (; actual < chunk; ++actual) {
      const std::size_t idx = rt.dispatched_end + actual;
      if (!rt.ensure_preread(idx, *stream_)) break;
      const Transaction& tx = rt.preread_at(idx);
      const std::uint32_t wid =
          static_cast<std::uint32_t>(tx.sender % rt.workers.size());
      rt.pending_tasks[wid].push_back(
          {idx, tx, payment_rng_seed(idx, 0)});
    }
    for (std::size_t wid = 0; wid < rt.workers.size(); ++wid) {
      auto& tasks = rt.pending_tasks[wid];
      if (tasks.empty()) continue;
      ConcurrentRuntime::Worker& w = rt.workers[wid];
      ConcurrentRuntime::SpecBatch batch;
      batch.id = ++w.batch_seq;
      batch.log_len = rt.log_size;
      batch.release_mark = w.release_mark;
      batch.tasks = std::move(tasks);
      tasks = {};
      for (const ConcurrentRuntime::SpecTask& t : batch.tasks) {
        rt.slot_batch[t.index % rt.ring] = batch.id;
        w.inflight.push_back(t.index);
      }
      ++w.outstanding;
      // May block transiently if the inbox is full, but never deadlocks:
      // completion pushes can't block (see the completion-queue sizing in
      // begin_replay), so the worker always drains its inbox.
      w.inbox->push(std::move(batch));
    }
    rt.dispatched_end += actual;
    if (actual < chunk) break;  // stream exhausted early
  }
  rt.trim_preread(next_arrival_);
}

bool ScenarioEngine::preread_pop(Transaction& tx) {
  ConcurrentRuntime& rt = *concurrent_;
  if (!rt.ensure_preread(next_arrival_, *stream_)) return false;
  tx = rt.preread_at(next_arrival_);
  if (!rt.spec_on) {
    // Dispatch is dead (post-churn): nothing else will trim, so drop
    // everything up to and including this entry right away.
    rt.trim_preread(next_arrival_ + 1);
  }
  return true;
}

RouteResult ScenarioEngine::replay_route(std::size_t tx_index,
                                         std::size_t attempt) {
  ConcurrentRuntime& rt = *concurrent_;
  const Transaction tx = pending_.at(tx_index).tx;
  const std::uint32_t wid =
      static_cast<std::uint32_t>(tx.sender % rt.workers.size());
  ConcurrentRuntime::Worker& w = rt.workers[wid];

  if (attempt == 0 && tx_index >= rt.next_consume) {
    rt.next_consume = tx_index + 1;
  }

  if (attempt == 0 && rt.spec_on && tx_index < rt.dispatched_end) {
    rt.wait_for_batch(w, rt.slot_batch[tx_index % rt.ring]);
    ConcurrentRuntime::Frame& f = rt.frames[tx_index % rt.ring];
    if (f.error) {
      rt.spec_on = false;
      std::rethrow_exception(f.error);
    }
    if (f.state == ConcurrentRuntime::Frame::State::kDone &&
        rt.frame_valid(f, wid)) {
      // Accept: the speculation read only current values, so its writes
      // are bit-for-bit the sequential engine's writes. Apply + publish.
      // Validation soundness implies every speculative pre-image equals
      // the live truth; a mismatch means silent divergence, so fail loud.
      for (std::size_t j = 0; j < f.write_edges.size(); ++j) {
        if (truth_.balance(f.write_edges[j]) != f.write_pre[j]) {
          throw std::logic_error(
              "concurrent engine: accepted speculation diverged from truth "
              "at edge " + std::to_string(f.write_edges[j]));
        }
        truth_.mirror_balance(f.write_edges[j], f.write_post[j]);
        rt.log_append(f.write_edges[j], wid, f.write_post[j]);
      }
      truth_.charge_messages(f.result.probe_messages);
      pending_.at(tx_index).started = f.spec_start;
      w.inflight.pop_front();  // == tx_index: consume order is index order
      w.release_mark = f.router_mark;
      f.state = ConcurrentRuntime::Frame::State::kEmpty;
      ++result_.spec_accepted;
      return f.result;
    }
    // Stale (or already rolled back): every later speculation of this
    // worker is layered above this one (mirror values and router undo
    // records), so discard them all and re-route inline.
    rt.wait_idle(w);
    rt.rollback_worker(w);
    ++result_.spec_rerouted;
    const RouteResult r = rt.inline_route(w, tx, tx_index, attempt);
    rt.redispatch_rolled_back(w, tx_index);
    return r;
  }

  // Retries, and arrivals past the speculation era: inline on the shard
  // router. In-flight speculations (if any) must go first — an inline
  // route's permanent router mutations may not interleave above their
  // undo marks.
  rt.wait_idle(w);
  rt.rollback_worker(w);
  const RouteResult r = rt.inline_route(w, tx, tx_index, attempt);
  rt.redispatch_rolled_back(w, tx_index);
  return r;
}

void ScenarioEngine::replay_quiesce(bool permanent) {
  ConcurrentRuntime& rt = *concurrent_;
  if (!rt.spec_on) return;
  rt.wait_all_idle();
  if (permanent) {
    // Speculated frames are abandoned un-applied; the routers and mirrors
    // are never consulted again on the accept path (post-churn arrivals
    // route through sender contexts). Lazy rollback_worker calls from
    // replay_route's inline path clean up any shard that still gets
    // pristine-path traffic (possible only if no channel actually closed).
    rt.spec_on = false;
    return;
  }
  for (ConcurrentRuntime::Worker& w : rt.workers) rt.rollback_worker(w);
}

void ScenarioEngine::replay_publish_all_edges() {
  ConcurrentRuntime& rt = *concurrent_;
  if (!rt.spec_on) return;
  const Graph& g = workload_->graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    rt.log_append(e, ConcurrentRuntime::kExternalSrc, truth_.balance(e));
  }
}

// ---------------------------------------------------------------------------
// kFreeOrder.
// ---------------------------------------------------------------------------

ScenarioResult ScenarioEngine::run_free_order() {
  const Graph& g = workload_->graph();
  const std::size_t n = cfg_.concurrency.workers
                            ? cfg_.concurrency.workers
                            : ThreadPool::hardware_threads();
  const std::size_t stripes_n = cfg_.concurrency.stripes;
  const std::size_t batch_sz =
      cfg_.concurrency.batch ? cfg_.concurrency.batch : 64;
  const std::size_t conflict_retries = cfg_.concurrency.conflict_retries;
  const std::size_t resync_stride =
      std::max<std::size_t>(1, cfg_.concurrency.resync_stride);
  cfg_.payment_indexed_rng = true;
  result_.workers_used = n;

  struct FoTask {
    std::size_t index = 0;
    Transaction tx;
  };
  struct FoWorker {
    std::unique_ptr<BoundedQueue<std::vector<FoTask>>> inbox;
    std::unique_ptr<Router> router;
    std::unique_ptr<NetworkState> mirror;
    SimResult sim;
    std::uint64_t digest = 0;
    LogHistogram lat{1e-8, 1e3, 8};
    double lat_sum = 0;
    double lat_max = 0;
    std::uint64_t conflicts = 0;
    std::size_t since_resync = 0;
    double max_time = 0;
    std::exception_ptr error;
    // Scratch (worker-private).
    std::vector<EdgeId> wedges;
    std::vector<Amount> wpre;
    std::vector<Amount> wpost;
    std::vector<Amount> wnew;
    std::vector<std::uint32_t> slot;
    std::vector<std::size_t> stripe_ids;
  };

  std::vector<std::mutex> stripe_locks(stripes_n);
  std::vector<Amount> snap(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) snap[e] = truth_.balance(e);

  std::vector<FoWorker> ws(n);
  for (std::size_t wid = 0; wid < n; ++wid) {
    FoWorker& w = ws[wid];
    w.inbox = std::make_unique<BoundedQueue<std::vector<FoTask>>>(4);
    w.router = make_router(scheme_, *workload_, opts_, seed_);
    w.mirror = std::make_unique<NetworkState>(g);
    w.mirror->assign_balances(snap);
    w.mirror->enable_change_log(/*with_pre_images=*/true);
    w.slot.assign(g.num_edges(), 0);
  }

  // Sorted-stripe commit: revalidate the settlement delta against the
  // live truth under every stripe lock it touches (ascending stripe order
  // across all workers => no deadlock), then apply it and refresh the
  // mirror's view of those edges. Channel totals are conserved because the
  // delta came from a conserving hold/commit/abort cycle on the mirror.
  auto try_commit = [&](FoWorker& w) -> bool {
    auto& st = w.stripe_ids;
    st.clear();
    for (const EdgeId e : w.wedges) st.push_back(g.channel_of(e) % stripes_n);
    std::sort(st.begin(), st.end());
    st.erase(std::unique(st.begin(), st.end()), st.end());
    for (const std::size_t s : st) stripe_locks[s].lock();
    bool ok = true;
    w.wnew.resize(w.wedges.size());
    for (std::size_t j = 0; j < w.wedges.size(); ++j) {
      const Amount t = truth_.balance_relaxed(w.wedges[j]);
      const Amount nv = t + (w.wpost[j] - w.wpre[j]);
      if (nv < -1e-6) {
        ok = false;
        break;
      }
      w.wnew[j] = nv < 0 ? 0 : nv;
    }
    if (ok) {
      for (std::size_t j = 0; j < w.wedges.size(); ++j) {
        truth_.store_balance_relaxed(w.wedges[j], w.wnew[j]);
        w.mirror->mirror_balance(w.wedges[j], w.wnew[j]);
      }
    }
    for (std::size_t k = st.size(); k-- > 0;) stripe_locks[st[k]].unlock();
    return ok;
  };

  auto worker_fn = [&](std::size_t wid) {
    FoWorker& w = ws[wid];
    NetworkState& m = *w.mirror;
    try {
      while (auto batch = w.inbox->pop()) {
        for (const FoTask& task : *batch) {
          const auto t0 = std::chrono::steady_clock::now();
          // A single worker's mirror never drifts (no foreign commits:
          // every committed post-value is mirrored back verbatim), so the
          // periodic full refresh is pure O(edges) waste at n == 1.
          if (n > 1 && ++w.since_resync >= resync_stride) {
            for (EdgeId e = 0; e < g.num_edges(); ++e) {
              m.mirror_balance(e, truth_.balance_relaxed(e));
            }
            w.since_resync = 0;
          }
          RouteResult r;
          std::uint64_t probe_acc = 0;
          std::uint32_t probes_acc = 0;
          bool committed = false;
          for (std::size_t att = 0;; ++att) {
            w.router->begin_payment(payment_rng_seed(task.index, 0));
            m.clear_change_log();
            r = w.router->route(task.tx, m);
            if (m.active_holds() != 0) {
              throw std::logic_error("scenario: router " +
                                     w.router->name() +
                                     " leaked holds (free-order)");
            }
            probe_acc += r.probe_messages;
            probes_acc += r.probes;
            // First-touch pre / final post per touched edge, no-ops out.
            w.wedges.clear();
            w.wpre.clear();
            w.wpost.clear();
            const auto cl = m.change_log();
            const auto pre = m.change_log_pre();
            for (std::size_t i = 0; i < cl.size(); ++i) {
              const EdgeId e = cl[i];
              if (w.slot[e] == 0) {
                w.wedges.push_back(e);
                w.wpre.push_back(pre[i]);
                w.slot[e] = static_cast<std::uint32_t>(w.wedges.size());
              }
            }
            std::size_t out = 0;
            for (std::size_t j = 0; j < w.wedges.size(); ++j) {
              const EdgeId e = w.wedges[j];
              w.slot[e] = 0;
              const Amount post = m.balance(e);
              if (post != w.wpre[j]) {
                w.wedges[out] = e;
                w.wpre[out] = w.wpre[j];
                w.wpost.push_back(post);
                ++out;
              }
            }
            w.wedges.resize(out);
            w.wpre.resize(out);
            if (!r.success) {
              // Routing failed on the mirror: restore it exactly (no
              // settlement to commit) and report the failure.
              for (std::size_t j = out; j-- > 0;) {
                m.mirror_balance(w.wedges[j], w.wpre[j]);
              }
              break;
            }
            if (try_commit(w)) {
              committed = true;
              break;
            }
            ++w.conflicts;
            // The truth moved under us: roll the mirror back, refresh the
            // contested edges from the live truth, and re-route.
            for (std::size_t j = out; j-- > 0;) {
              m.mirror_balance(w.wedges[j], w.wpre[j]);
            }
            for (std::size_t j = 0; j < out; ++j) {
              m.mirror_balance(w.wedges[j],
                               truth_.balance_relaxed(w.wedges[j]));
            }
            if (att >= conflict_retries) break;
          }
          if (r.success && !committed) {
            r.success = false;
            r.delivered = 0;
            r.fee = 0;
            r.paths_used = 0;
          }
          r.probe_messages = probe_acc;
          r.probes = probes_acc;
          w.sim.add(task.tx, r, task.tx.amount < class_threshold_);
          fold64(w.digest, task.tx.sender);
          fold64(w.digest, task.tx.receiver);
          fold64(w.digest, std::bit_cast<std::uint64_t>(task.tx.amount));
          fold64(w.digest, r.success ? 1 : 0);
          fold64(w.digest, std::bit_cast<std::uint64_t>(r.delivered));
          fold64(w.digest, std::bit_cast<std::uint64_t>(r.fee));
          fold64(w.digest, r.probe_messages);
          fold64(w.digest, r.probes);
          fold64(w.digest, r.paths_used);
          fold64(w.digest, 0);  // attempt: free-order never retries
          fold64(w.digest, std::bit_cast<std::uint64_t>(task.tx.timestamp));
          const double lat = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
          w.lat.add(lat);
          w.lat_sum += lat;
          w.lat_max = std::max(w.lat_max, lat);
          w.max_time = std::max(w.max_time, task.tx.timestamp);
        }
      }
    } catch (...) {
      w.error = std::current_exception();
      // Unblock the dispatcher: its pushes to this inbox now fail fast.
      w.inbox->close();
    }
  };

  ThreadPool pool(n);
  for (std::size_t wid = 0; wid < n; ++wid) {
    pool.submit([&worker_fn, wid] { worker_fn(wid); });
  }

  // Dispatch: sender-sharded batches, in stream order per worker (which
  // is what makes workers == 1 bit-deterministic for a fixed seed).
  {
    std::vector<std::vector<FoTask>> buf(n);
    const std::size_t total = stream_->size();
    Transaction tx;
    for (std::size_t i = 0; i < total && stream_->next(tx); ++i) {
      const std::size_t wid = tx.sender % n;
      buf[wid].push_back({i, tx});
      if (buf[wid].size() >= batch_sz) {
        ws[wid].inbox->push(std::move(buf[wid]));
        buf[wid] = {};
      }
    }
    for (std::size_t wid = 0; wid < n; ++wid) {
      if (!buf[wid].empty()) ws[wid].inbox->push(std::move(buf[wid]));
      ws[wid].inbox->close();
    }
  }
  pool.wait_idle();

  for (std::size_t wid = 0; wid < n; ++wid) {
    if (ws[wid].error) std::rethrow_exception(ws[wid].error);
  }

  // Merge in worker order (deterministic given deterministic workers).
  for (std::size_t wid = 0; wid < n; ++wid) {
    const FoWorker& w = ws[wid];
    SimResult& s = result_.sim;
    s.transactions += w.sim.transactions;
    s.successes += w.sim.successes;
    s.volume_attempted += w.sim.volume_attempted;
    s.volume_succeeded += w.sim.volume_succeeded;
    s.fees_paid += w.sim.fees_paid;
    s.probe_messages += w.sim.probe_messages;
    s.probes += w.sim.probes;
    s.mice_transactions += w.sim.mice_transactions;
    s.mice_successes += w.sim.mice_successes;
    s.mice_volume_succeeded += w.sim.mice_volume_succeeded;
    s.mice_probe_messages += w.sim.mice_probe_messages;
    s.elephant_transactions += w.sim.elephant_transactions;
    s.elephant_successes += w.sim.elephant_successes;
    s.elephant_volume_succeeded += w.sim.elephant_volume_succeeded;
    s.elephant_probe_messages += w.sim.elephant_probe_messages;
    fold64(result_.payment_digest, w.digest);
    result_.commit_conflicts += w.conflicts;
    latency_hist_.merge(w.lat);
    latency_sum_ += w.lat_sum;
    latency_max_ = std::max(latency_max_, w.lat_max);
    result_.duration = std::max(result_.duration, w.max_time);
  }

  // Conservation sweep, parallelized with the chunked claim mode: the
  // per-channel checks are tiny, so claiming 1024 at a time keeps the
  // atomic counter off the critical path. Mirrors check_invariants'
  // tolerances exactly.
  parallel_for_chunked(pool, g.num_channels(), 1024, [&](std::size_t c) {
    const EdgeId fe = g.channel_forward_edge(c);
    const EdgeId be = g.reverse(fe);
    const Amount fwd = truth_.balance(fe);
    const Amount bwd = truth_.balance(be);
    const Amount dep = truth_.channel_deposit(fe);
    const Amount tolerance = 1e-4 * std::max<Amount>(1, std::abs(dep));
    if (std::abs(fwd + bwd - dep) > tolerance || fwd < -1e-6 ||
        bwd < -1e-6) {
      throw std::logic_error(
          "free-order conservation violated at channel " +
          std::to_string(c) + " (scheme " + scheme_name(scheme_) + ")");
    }
  });
  if (truth_.active_holds() != 0) {
    throw std::logic_error("free-order left holds in flight");
  }

  // Seal the digest with the final ledger, like the sequential engine.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    fold64(result_.payment_digest,
           std::bit_cast<std::uint64_t>(truth_.balance(e)));
  }
  finalize_latency();
  return result_;
}

}  // namespace flash

#include "sim/metrics.h"

namespace flash {

void SimResult::add(const Transaction& tx, const RouteResult& r,
                    bool counts_as_mouse) {
  ++transactions;
  volume_attempted += tx.amount;
  probe_messages += r.probe_messages;
  probes += r.probes;
  if (r.success) {
    ++successes;
    volume_succeeded += r.delivered;
    fees_paid += r.fee;
  }
  if (counts_as_mouse) {
    ++mice_transactions;
    mice_probe_messages += r.probe_messages;
    if (r.success) {
      ++mice_successes;
      mice_volume_succeeded += r.delivered;
    }
  } else {
    ++elephant_transactions;
    elephant_probe_messages += r.probe_messages;
    if (r.success) {
      ++elephant_successes;
      elephant_volume_succeeded += r.delivered;
    }
  }
}

}  // namespace flash

#include "sim/scenario.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>
#include <utility>

#include "graph/topology.h"

namespace flash {

// The per-sender stale routing state (see scenario.h). In full-rebuild
// (oracle) mode `local` is the sender's materialized gossip view and
// `to_physical` maps each local directed edge to the corresponding
// ground-truth edge (orientation preserved). In incremental mode the
// routing surface is the engine's shared full-shape view graph instead
// and the per-sender state shrinks to an open-edge mask; `graph`/
// `to_phys`/`phys_map` point at whichever of the two applies. `mirror` is
// a ledger over the routing graph that is re-synced from the truth before
// every payment and mirrored back after settlement.
struct ScenarioEngine::SenderContext : SenderCacheable {
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  std::uint64_t view_version = kNever;
  // Oracle-mode storage (unused by incremental contexts).
  Graph local;
  FeeSchedule fees;
  std::vector<EdgeId> to_physical;
  // Inverse of to_physical: physical edge -> local edge + 1 (0 = not in
  // this sender's view). Lets journal replay translate truth changes.
  std::vector<std::uint32_t> phys_to_local;
  // Routing surface selectors: &local/&to_physical/&phys_to_local in
  // oracle mode, the engine's shared view-graph members in incremental.
  const Graph* graph = nullptr;
  const std::vector<EdgeId>* to_phys = nullptr;
  const std::vector<std::uint32_t>* phys_map = nullptr;
  // Incremental mode: per-directed-edge open flags over the shared graph.
  std::vector<unsigned char> open_mask;
  // Set when a cache eviction recycles this slot for a different sender:
  // the mask and router caches belong to someone else, so the next use
  // must rebuild them from the new sender's view — never patch.
  bool recycled = false;
  std::unique_ptr<NetworkState> mirror;
  std::unique_ptr<Router> router;
  std::vector<Amount> synced;  // truth balances at the last pre-route sync
  // Position in the engine's truth journal this mirror has replayed up
  // to, valid for journal generation `journal_gen` (0 = never synced;
  // engine generations start at 1, so a fresh context always full-syncs).
  std::size_t journal_pos = 0;
  std::uint64_t journal_gen = 0;
  // view_diverged memo, valid for one (truth, view) version pair.
  std::uint64_t div_truth_version = kNever;
  std::uint64_t div_view_version = kNever;
  bool divergent = false;
};

namespace {

/// Order-sensitive 64-bit fold (boost-style hash combine) driving
/// ScenarioResult::payment_digest.
inline void fold64(std::uint64_t& h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

// Every rejection names the offending field AND the remedy: what to set
// (or unset) to get a valid config. tests/htlc_lifecycle_test.cc asserts
// both halves of every message.
void validate(const ScenarioConfig& cfg) {
  if (cfg.retry.delay < 0) {
    throw std::invalid_argument(
        "scenario: retry.delay must be >= 0 - set 0 for immediate retries");
  }
  if (cfg.churn.close_rate < 0) {
    throw std::invalid_argument(
        "scenario: churn.close_rate must be >= 0 - set 0 to disable churn");
  }
  if (cfg.churn.mean_downtime < 0) {
    throw std::invalid_argument(
        "scenario: churn.mean_downtime must be >= 0 - set 0 to keep closed "
        "channels closed");
  }
  if (cfg.rebalance.interval < 0) {
    throw std::invalid_argument(
        "scenario: rebalance.interval must be >= 0 - set 0 to disable "
        "rebalancing");
  }
  if (cfg.rebalance.strength < 0 || cfg.rebalance.strength > 1) {
    throw std::invalid_argument(
        "scenario: rebalance.strength must be in [0, 1] - 0 leaves splits "
        "alone, 1 jumps straight to the even split");
  }
  if (cfg.gossip.hop_delay < 0) {
    throw std::invalid_argument(
        "scenario: gossip.hop_delay must be >= 0 - set 0 for instant "
        "propagation");
  }
  if (cfg.concurrency.stripes == 0) {
    throw std::invalid_argument(
        "scenario: concurrency.stripes must be >= 1 - leave the default 64 "
        "unless tuning lock contention");
  }
  if (cfg.concurrency.execution == ScenarioExecution::kFreeOrder &&
      (cfg.retry.max_retries > 0 || cfg.churn.close_rate > 0 ||
       cfg.rebalance.interval > 0 || cfg.fault.active())) {
    // Free-order has no event loop: retries, churn, rebalancing, and fault
    // injection have no defined interleaving against out-of-order
    // settlement.
    throw std::invalid_argument(
        "scenario: free-order execution has no event loop, so retries, "
        "churn, rebalancing and fault injection have no defined "
        "interleaving - set retry.max_retries = 0, churn.close_rate = 0, "
        "rebalance.interval = 0 and leave fault inactive, or use "
        "kSequential/kReplay execution");
  }
  if (cfg.htlc.hop_latency < 0 || cfg.htlc.timelock_delta < 0 ||
      cfg.htlc.timelock_budget < 0 || cfg.htlc.holder_delay < 0) {
    throw std::invalid_argument(
        "scenario: htlc.hop_latency, timelock_delta, timelock_budget and "
        "holder_delay must all be >= 0 - set 0 to disable each");
  }
  if (cfg.htlc.holder_fraction < 0 || cfg.htlc.holder_fraction > 1 ||
      cfg.htlc.offline_fraction < 0 || cfg.htlc.offline_fraction > 1) {
    throw std::invalid_argument(
        "scenario: htlc.holder_fraction and offline_fraction must be in "
        "[0, 1] - set 0 to disable each");
  }
  if (cfg.htlc.timelock_budget > 0 && cfg.htlc.timelock_delta <= 0) {
    throw std::invalid_argument(
        "scenario: htlc.timelock_budget needs timelock_delta > 0 to "
        "convert to a hop cap - set timelock_delta, or cap hops directly "
        "with FlashOptions::max_route_hops");
  }
  if (cfg.htlc.active() &&
      cfg.concurrency.execution != ScenarioExecution::kSequential) {
    // The concurrent engines' determinism arguments assume settlement
    // happens inside the route step, never between events.
    throw std::invalid_argument(
        "scenario: the HTLC lifecycle requires sequential execution - set "
        "concurrency.execution = kSequential");
  }
  const FaultPlan& f = cfg.fault;
  if (f.hub_outage_start < 0 || f.hub_outage_duration < 0) {
    throw std::invalid_argument(
        "scenario: fault.hub_outage_start and hub_outage_duration must be "
        ">= 0 - set both 0 (with hub_count = 0) to disable the outage");
  }
  if (f.hub_count > 0 && f.hub_outage_duration <= 0) {
    throw std::invalid_argument(
        "scenario: fault.hub_count > 0 needs hub_outage_duration > 0 - set "
        "a window length, or set hub_count = 0");
  }
  if (f.hub_count > 0 && !cfg.htlc.active()) {
    throw std::invalid_argument(
        "scenario: hub outages fail payments in flight, which needs the "
        "timed HTLC lifecycle - set htlc.hop_latency > 0 (or another "
        "active htlc knob), or set fault.hub_count = 0");
  }
  if (f.burst_time < 0 || f.burst_reopen_after < 0) {
    throw std::invalid_argument(
        "scenario: fault.burst_time and burst_reopen_after must be >= 0 - "
        "set both 0 (with burst_channels = 0) to disable the burst");
  }
  if (f.congestion_factor < 1) {
    throw std::invalid_argument(
        "scenario: fault.congestion_factor must be >= 1 - set 1 to disable "
        "the congestion ramp");
  }
  if (f.congestion_start < 0 || f.congestion_duration < 0) {
    throw std::invalid_argument(
        "scenario: fault.congestion_start and congestion_duration must be "
        ">= 0 - set both 0 (with congestion_factor = 1) to disable the "
        "ramp");
  }
  if (f.congestion_factor > 1 && f.congestion_duration <= 0) {
    throw std::invalid_argument(
        "scenario: fault.congestion_factor > 1 needs congestion_duration > "
        "0 - set a window length, or set congestion_factor = 1");
  }
  for (const ChannelFault& cf : f.channel_faults) {
    if (cf.close_time < 0 || cf.reopen_after < 0) {
      throw std::invalid_argument(
          "scenario: fault.channel_faults times (close_time, reopen_after) "
          "must be >= 0 - drop the entry or fix its times");
    }
  }
}

}  // namespace

ScenarioEngine::ScenarioEngine(const Workload& workload, Scheme scheme,
                               const FlashOptions& opts, const SimConfig& sim,
                               const ScenarioConfig& scenario,
                               std::uint64_t seed)
    : ScenarioEngine(workload, scheme, opts, sim, scenario, seed,
                     std::make_unique<VectorWorkloadStream>(
                         workload.transactions())) {}

ScenarioEngine::ScenarioEngine(const Workload& workload,
                               WorkloadStream& stream, Scheme scheme,
                               const FlashOptions& opts, const SimConfig& sim,
                               const ScenarioConfig& scenario,
                               std::uint64_t seed)
    : ScenarioEngine(workload, scheme, opts, sim, scenario, seed, nullptr) {
  stream_ = &stream;
}

ScenarioEngine::ScenarioEngine(const Workload& workload, Scheme scheme,
                               const FlashOptions& opts, const SimConfig& sim,
                               const ScenarioConfig& scenario,
                               std::uint64_t seed,
                               std::unique_ptr<WorkloadStream> owned_stream)
    : workload_(&workload),
      stream_(owned_stream.get()),
      owned_stream_(std::move(owned_stream)),
      scheme_(scheme),
      opts_(opts),
      sim_(sim),
      cfg_(scenario),
      seed_(seed),
      truth_(workload.make_state(sim.capacity_scale)),
      gossip_(workload.graph()),
      dyn_rng_(0),
      contexts_(scenario.max_sender_routers) {
  validate(cfg_);
  const Graph& g = workload.graph();

  initial_balance_.resize(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    initial_balance_[e] = truth_.balance(e);
  }
  class_threshold_ = sim_.class_threshold > 0 ? sim_.class_threshold
                                              : workload.size_quantile(0.9);
  elephant_threshold_ = opts_.elephant_threshold > 0
                            ? opts_.elephant_threshold
                            : workload.size_quantile(opts_.mice_quantile);
  // HTLC setup must precede router construction: the timelock budget
  // tightens opts_.max_route_hops, which every scheme's router bakes in.
  setup_htlc();
  // The pristine-mode router: exactly the router run_simulation would use
  // (same construction, same seed), so the zero-dynamics scenario is
  // bit-identical to the static path.
  base_router_ = make_router(scheme_, workload, opts_, seed_);

  channel_seq_.assign(g.num_channels(), 1);  // seq 1 = bootstrap open
  open_.assign(g.num_channels(), 1);
  ever_churned_.assign(g.num_channels(), 0);
  open_list_.resize(g.num_channels());
  for (std::size_t c = 0; c < g.num_channels(); ++c) open_list_[c] = c;

  // Channels sorted by normalized pair — the order for_each_open emits —
  // so view-channel -> truth-channel mapping is one merge cursor per
  // rebuild instead of a hash lookup per channel (the old channel_index_).
  {
    std::vector<std::pair<std::pair<NodeId, NodeId>, std::size_t>> order;
    order.reserve(g.num_channels());
    for (std::size_t c = 0; c < g.num_channels(); ++c) {
      const EdgeId fe = g.channel_forward_edge(c);
      const NodeId u = std::min(g.from(fe), g.to(fe));
      const NodeId v = std::max(g.from(fe), g.to(fe));
      order.emplace_back(std::pair<NodeId, NodeId>{u, v}, c);
    }
    std::sort(order.begin(), order.end());
    truth_to_view_channel_.assign(g.num_channels(), 0);
    sorted_pairs_.reserve(order.size());
    sorted_channels_.reserve(order.size());
    for (const auto& [pair, c] : order) {
      if (sorted_pairs_.empty() || sorted_pairs_.back() != pair) {
        // Parallel channels collapse onto one gossip identity; the lowest
        // channel id carries the view mapping (first-emplace-wins, like
        // the hash map this replaced; the generators build simple graphs).
        sorted_pairs_.push_back(pair);
        sorted_channels_.push_back(c);
      }
      truth_to_view_channel_[c] = sorted_pairs_.size() - 1;
    }
  }

  // Dynamics randomness: independent of the workload/router streams.
  std::uint64_t mix = seed_ ^ (cfg_.churn.seed * 0x9e3779b97f4a7c15ULL);
  dyn_rng_ = Rng(splitmix64(mix));

  // Fault injection: its own deterministic stream (hub tie-breaks, burst
  // center), independent of churn's so adding a fault plan does not
  // perturb the churn sequence.
  std::uint64_t fmix = seed_ ^ (cfg_.fault.seed * 0x9e3779b97f4a7c15ULL);
  fault_rng_ = Rng(splitmix64(fmix));
  for (const ChannelFault& cf : cfg_.fault.channel_faults) {
    if (cf.channel >= g.num_channels()) {
      throw std::invalid_argument(
          "scenario: fault.channel_faults names channel " +
          std::to_string(cf.channel) + " but the graph has only " +
          std::to_string(g.num_channels()) +
          " - use a channel id below num_channels()");
    }
  }
  if (cfg_.fault.hub_count > 0) {
    // Coordinated hub outage targets: the top-k nodes by approximate
    // betweenness centrality (the paper's hubs carry most relay traffic).
    const std::vector<double> bc = approx_betweenness(
        g, cfg_.fault.hub_betweenness_samples, splitmix64(fmix));
    std::vector<NodeId> order(g.num_nodes());
    for (std::size_t n = 0; n < g.num_nodes(); ++n) {
      order[n] = static_cast<NodeId>(n);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&bc](NodeId a, NodeId b) { return bc[a] > bc[b]; });
    const std::size_t k = std::min(cfg_.fault.hub_count, order.size());
    fault_hubs_.assign(order.begin(), order.begin() + k);
  }

  // Anything that CAN close a channel (churn or a fault plan) switches the
  // engine onto the stale-view machinery at the first close; the
  // view-graph bootstrap below keys off the same predicate.
  closes_possible_ = cfg_.churn.close_rate > 0 ||
                     cfg_.fault.burst_channels > 0 ||
                     !cfg_.fault.channel_faults.empty();
  if (htlc_active_ && closes_possible_) {
    // HTLC hop events write the truth BETWEEN payments; the truth change
    // log is the single choke point feeding those writes into the
    // mirror-sync journal (drain_truth_log after every event).
    truth_.enable_change_log();
    track_htlc_truth_ = true;
  }

  incremental_ = cfg_.maintenance != RouterMaintenance::kFullRebuild &&
                 base_router_->supports_incremental_maintenance() &&
                 closes_possible_;

  if (incremental_) {
    // The shared full-shape view graph: every sender's gossip view is a
    // subset of the truth channel set (bootstrap seeds everything open and
    // gossip only flips open state), so ONE immutable graph holding every
    // channel in sorted-pair order serves all senders; closed channels are
    // masked per sender. Edge ids here are an order-preserving renaming of
    // any compacted per-view graph's ids, which is what makes masked
    // search results identical to the oracle's (see ARCHITECTURE.md).
    view_graph_ = Graph(g.num_nodes());
    view_graph_.reserve_channels(sorted_channels_.size());
    view_to_physical_.reserve(2 * sorted_channels_.size());
    for (std::size_t i = 0; i < sorted_channels_.size(); ++i) {
      const EdgeId pf = g.channel_forward_edge(sorted_channels_[i]);
      const auto [u, v] = sorted_pairs_[i];
      view_graph_.add_channel(u, v);
      if (g.from(pf) == u) {
        view_to_physical_.push_back(pf);
        view_to_physical_.push_back(g.reverse(pf));
      } else {
        view_to_physical_.push_back(g.reverse(pf));
        view_to_physical_.push_back(pf);
      }
    }
    view_graph_.finalize();
    view_fees_ = FeeSchedule(view_graph_);
    view_phys_to_local_.assign(g.num_edges(), 0);
    for (std::size_t le = 0; le < view_to_physical_.size(); ++le) {
      view_fees_.set_policy(static_cast<EdgeId>(le),
                            workload.fees().policy(view_to_physical_[le]));
      view_phys_to_local_[view_to_physical_[le]] =
          static_cast<std::uint32_t>(le) + 1;
    }
  }

  if (closes_possible_) {
    // Views start fully converged (the network existed long before t = 0);
    // seeding without flooding keeps bootstrap out of the message counts.
    gossip_.bootstrap_full_topology();
  }
}

// ~ScenarioEngine lives in sim/concurrent.cc, where ConcurrentRuntime is
// a complete type (unique_ptr member destruction).

void ScenarioEngine::schedule(double time, EventType type, std::size_t a,
                              std::size_t b) {
  events_.push(Event{time, event_seq_++, type, a, b});
}

ScenarioResult ScenarioEngine::run() {
  if (ran_) throw std::logic_error("ScenarioEngine: run() is single-use");
  ran_ = true;

  if (cfg_.concurrency.execution == ScenarioExecution::kFreeOrder) {
    return run_free_order();
  }
  if (cfg_.concurrency.execution == ScenarioExecution::kReplay) {
    begin_replay();
  }

  // Arrivals are staged LAZILY, one at a time: arrival i enters the heap
  // only when arrival i-1 is popped (arrivals are chronological, so the
  // staged arrival is always the earliest outstanding one — heap pop order
  // is exactly what scheduling every arrival up front produced). Each
  // arrival keeps its historical sequence number i and event_seq_ starts
  // past the reserved block, so every event's (time, seq) heap key — and
  // therefore the whole run — is unchanged by the streaming rewrite.
  outstanding_ = stream_->size();
  event_seq_ = stream_->size();
  stage_next_arrival();
  if (cfg_.churn.close_rate > 0) {
    schedule(dyn_rng_.exponential(cfg_.churn.close_rate), EventType::kClose);
  }
  if (cfg_.rebalance.interval > 0) {
    schedule(cfg_.rebalance.interval, EventType::kRebalance);
  }
  // Fault plan: every fault is scheduled (and its degradation window
  // registered) up front — deterministic by construction.
  {
    const FaultPlan& f = cfg_.fault;
    if (f.hub_count > 0) {
      schedule(f.hub_outage_start, EventType::kHubOutageStart);
      note_fault_window(f.hub_outage_start,
                        f.hub_outage_start + f.hub_outage_duration);
    }
    if (f.burst_channels > 0) {
      schedule(f.burst_time, EventType::kFaultBurst);
      note_fault_window(f.burst_time, f.burst_time + f.burst_reopen_after);
    }
    for (std::size_t i = 0; i < f.channel_faults.size(); ++i) {
      schedule(f.channel_faults[i].close_time, EventType::kFaultClose, i);
      note_fault_window(
          f.channel_faults[i].close_time,
          f.channel_faults[i].close_time + f.channel_faults[i].reopen_after);
    }
    if (f.congestion_factor > 1 && f.congestion_duration > 0) {
      // The window in WARPED time: arrivals in [s, s + d) land compressed
      // into [s, s + d / factor) (see stage_next_arrival).
      note_fault_window(
          f.congestion_start,
          f.congestion_start + f.congestion_duration / f.congestion_factor);
    }
  }

  while (outstanding_ > 0 && !events_.empty()) {
    if (concurrent_) replay_pump();
    const Event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    switch (ev.type) {
      case EventType::kArrival:
        pending_[ev.a].tx = staged_tx_;
        pending_[ev.a].arrival_time = now_;
        stage_next_arrival();
        attempt_payment(ev.a, 0);
        break;
      case EventType::kRetry:
        ++result_.sim.retries;
        attempt_payment(ev.a, ev.b);
        break;
      case EventType::kClose:
        handle_close();
        break;
      case EventType::kReopen:
        handle_reopen(ev.a);
        break;
      case EventType::kGossipHop:
        handle_gossip_hop();
        break;
      case EventType::kRebalance:
        handle_rebalance();
        break;
      case EventType::kHopForward:
        handle_hop_forward(ev.a, ev.b);
        break;
      case EventType::kSettleBackward:
        handle_settle_backward(ev.a, ev.b);
        break;
      case EventType::kFailBackward:
        handle_fail_backward(ev.a, ev.b);
        break;
      case EventType::kHtlcExpiry:
        handle_htlc_expiry(ev.a, ev.b);
        break;
      case EventType::kHubOutageStart:
        handle_hub_outage(/*start=*/true);
        break;
      case EventType::kHubOutageEnd:
        handle_hub_outage(/*start=*/false);
        break;
      case EventType::kFaultBurst:
        handle_fault_burst();
        break;
      case EventType::kFaultClose:
        handle_fault_close(ev.a);
        break;
    }
    if (track_htlc_truth_) drain_truth_log();
  }
  if (concurrent_) end_replay();

  std::size_t bad = 0;
  if (!truth_.check_invariants(&bad)) {
    throw std::logic_error("ledger invariant violated at end (channel " +
                           std::to_string(bad) + ", scheme " +
                           scheme_name(scheme_) + ")");
  }
  result_.gossip_messages = gossip_.total_messages();
  result_.router_cache_hits = contexts_.hits();
  result_.router_cache_misses = contexts_.misses();
  result_.router_cache_evictions = contexts_.evictions();
  // Seal the digest with the final truth ledger: two runs that agreed on
  // every per-payment outcome but left different balances behind (a
  // mirror-sync bug would do exactly that) must not share a digest.
  const Graph& g = workload_->graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    fold64(result_.payment_digest,
           std::bit_cast<std::uint64_t>(truth_.balance(e)));
  }
  finalize_latency();
  return result_;
}

void ScenarioEngine::stage_next_arrival() {
  if (next_arrival_ >= stream_->size()) return;
  Transaction tx;
  // Replay reads the stream ahead of staging (speculative dispatch), so
  // staging must pull from the shared read-ahead buffer, not the stream.
  if (concurrent_ ? !preread_pop(tx) : !stream_->next(tx)) {
    return;  // stream shorter than advertised
  }
  // Congestion-collapse warp: arrivals inside the window compress by the
  // factor (a rate spike), later arrivals shift earlier by the saved
  // time. The mapping is monotone, so trace order survives the clamp.
  double ts = tx.timestamp;
  {
    const FaultPlan& f = cfg_.fault;
    if (f.congestion_factor > 1 && f.congestion_duration > 0 &&
        ts >= f.congestion_start) {
      if (ts < f.congestion_start + f.congestion_duration) {
        ts = f.congestion_start +
             (ts - f.congestion_start) / f.congestion_factor;
        ++result_.fault_congestion_arrivals;
      } else {
        ts -= f.congestion_duration * (1 - 1 / f.congestion_factor);
      }
    }
  }
  // Arrival order is always the trace order: a timestamp that runs
  // backwards is clamped to the previous arrival, like run_simulation's
  // sequential replay.
  const double t =
      next_arrival_ == 0 ? ts : std::max(prev_arrival_time_, ts);
  prev_arrival_time_ = t;
  events_.push(Event{t, next_arrival_, EventType::kArrival, next_arrival_});
  staged_tx_ = tx;
  ++next_arrival_;
}

void ScenarioEngine::attempt_payment(std::size_t tx_index,
                                     std::size_t attempt) {
  {
    PendingPayment& first = pending_.at(tx_index);
    if (attempt == 0) first.started = std::chrono::steady_clock::now();
  }
  const Transaction tx = pending_.at(tx_index).tx;
  RouteResult r;
  bool diverged = false;
  if (pristine_) {
    // No churn has happened yet: every view still equals the truth, so the
    // shared perfectly-informed router is exact (and this fast path is what
    // makes the zero-dynamics scenario bit-identical to run_simulation).
    if (concurrent_) {
      r = replay_route(tx_index, attempt);
    } else {
      if (cfg_.payment_indexed_rng) {
        base_router_->begin_payment(payment_rng_seed(tx_index, attempt));
      }
      r = base_router_->route(tx, truth_);
      if (htlc_active_ && r.success) stage_htlc_parts(truth_, nullptr);
    }
  } else {
    SenderContext& ctx = context_for(tx.sender);
    // Sync the mirror from the truth: probes during routing read live
    // balances (probing is a network operation), only the topology is
    // stale. A truth-closed channel the view still believes in carries
    // balance 0 — sends over it fail, probes report it dead.
    sync_context(ctx);
    if (cfg_.payment_indexed_rng) {
      ctx.router->begin_payment(payment_rng_seed(tx_index, attempt));
    }
    r = ctx.router->route(tx, *ctx.mirror);
    // With the lifecycle active the mirror is armed too: drain its queued
    // settlements into the staging buffers (translating view edges to
    // physical) and abort the mirror holds — net-zero on the mirror, so
    // the change-log mirror-back below carries nothing for them. The
    // actual locks re-stage hop by hop on the TRUTH in begin_part, where
    // concurrent in-flight escrow the stale view never saw can refuse
    // them.
    if (htlc_active_ && r.success) stage_htlc_parts(*ctx.mirror, ctx.to_phys);
    if (ctx.mirror->active_holds() != 0) {
      throw std::logic_error("scenario: router " + ctx.router->name() +
                             " leaked holds after tx " +
                             std::to_string(tx_index));
    }
    // Mirror the settlement back onto the truth — only the edges the
    // router's holds/commits actually touched (the mirror's change log),
    // not an O(local_edges) sweep. Channel totals are conserved by
    // construction (commit credits what hold debited), which the periodic
    // invariant sweep verifies.
    const std::vector<EdgeId>& to_phys = *ctx.to_phys;
    for (const EdgeId le : ctx.mirror->change_log()) {
      const Amount nb = ctx.mirror->balance(le);
      if (nb != ctx.synced[le]) {
        truth_.mirror_balance(to_phys[le], nb);
        record_truth_change(to_phys[le]);
      }
    }
    ctx.mirror->clear_change_log();
    diverged = view_diverged(ctx, tx.sender);
  }

  {
    PendingPayment& pp = pending_[tx_index];
    pp.probe_messages += r.probe_messages;
    pp.probes += r.probes;
  }
  if (htlc_active_ && r.success) {
    // The route succeeded, but nothing has moved yet: the armed ledger
    // queued the settlements instead of executing them. Hand the queued
    // holds to the timed lifecycle; the payment concludes (and retries)
    // from its backward unwind, not from here.
    begin_htlc(tx_index, attempt, r);
    return;
  }
  conclude_attempt(tx_index, attempt, tx, r, diverged);
}

void ScenarioEngine::conclude_attempt(std::size_t tx_index,
                                      std::size_t attempt,
                                      const Transaction& tx,
                                      const RouteResult& r, bool diverged) {
  const PendingPayment& pp = pending_.at(tx_index);
  if (r.success) {
    finish_payment(tx, r, attempt, pp);
    pending_.erase(tx_index);
  } else if (attempt < cfg_.retry.max_retries) {
    if (diverged) ++result_.sim.stale_view_failures;
    schedule(now_ + cfg_.retry.delay, EventType::kRetry, tx_index,
             attempt + 1);
  } else {
    if (diverged) ++result_.sim.stale_view_failures;
    finish_payment(tx, r, attempt, pp);
    pending_.erase(tx_index);
  }
}

void ScenarioEngine::finish_payment(const Transaction& tx,
                                    const RouteResult& final_attempt,
                                    std::size_t attempt,
                                    const PendingPayment& totals) {
  RouteResult combined = final_attempt;
  combined.probe_messages = totals.probe_messages;
  combined.probes = totals.probes;
  result_.sim.add(tx, combined, tx.amount < class_threshold_);
  // Event-level equality pin for the differential harness: every completed
  // payment folds its full outcome, in completion order, into the digest.
  fold64(result_.payment_digest, tx.sender);
  fold64(result_.payment_digest, tx.receiver);
  fold64(result_.payment_digest, std::bit_cast<std::uint64_t>(tx.amount));
  fold64(result_.payment_digest, combined.success ? 1 : 0);
  fold64(result_.payment_digest,
         std::bit_cast<std::uint64_t>(combined.delivered));
  fold64(result_.payment_digest, std::bit_cast<std::uint64_t>(combined.fee));
  fold64(result_.payment_digest, combined.probe_messages);
  fold64(result_.payment_digest, combined.probes);
  fold64(result_.payment_digest, combined.paths_used);
  fold64(result_.payment_digest, attempt);
  fold64(result_.payment_digest, std::bit_cast<std::uint64_t>(now_));
  if (final_attempt.success) {
    if (attempt > 0) ++result_.sim.retry_successes;
    result_.sim.time_to_success_total += now_ - tx.timestamp;
  }
  if (!fault_windows_.empty()) {
    // Degradation metrics: classify by ARRIVAL time (a payment that
    // arrived mid-fault and finished later still suffered the fault).
    const double at = totals.arrival_time;
    bool inside = false;
    for (const auto& [ws, we] : fault_windows_) {
      if (at >= ws && at < we) {
        inside = true;
        break;
      }
    }
    if (inside) {
      ++result_.fault_window_payments;
      if (final_attempt.success) ++result_.fault_window_successes;
    } else if (at >= fault_window_end_) {
      ++result_.post_fault_payments;
      if (final_attempt.success) {
        ++result_.post_fault_successes;
        if (!recovery_noted_) {
          recovery_noted_ = true;
          result_.fault_recovery_time = now_ - fault_window_end_;
        }
      }
    }
  }
  note_latency(std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - totals.started)
                   .count());
  --outstanding_;
  ++completed_;
  result_.duration = now_;
  check_invariants_if_due();
}

std::uint64_t ScenarioEngine::payment_rng_seed(std::size_t tx_index,
                                               std::size_t attempt) const {
  // Unique deterministic entropy per (payment, attempt): with
  // payment_indexed_rng on, a route's randomness depends only on WHICH
  // payment it serves — not on which payments the router instance served
  // before — which is what lets worker-local routers draw exactly like the
  // sequential oracle's shared router.
  std::uint64_t mix =
      seed_ ^
      (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(tx_index) + 1)) ^
      (0xd6e8feb86659fd93ULL * (static_cast<std::uint64_t>(attempt) + 1));
  return splitmix64(mix);
}

void ScenarioEngine::note_latency(double seconds) {
  latency_hist_.add(seconds);
  latency_sum_ += seconds;
  latency_max_ = std::max(latency_max_, seconds);
}

void ScenarioEngine::note_sim_latency(double t) {
  sim_latency_hist_.add(t);
  sim_latency_sum_ += t;
  sim_latency_max_ = std::max(sim_latency_max_, t);
}

void ScenarioEngine::finalize_latency() {
  result_.latency.count = latency_hist_.total();
  if (result_.latency.count != 0) {
    result_.latency.mean_seconds =
        latency_sum_ / static_cast<double>(result_.latency.count);
    result_.latency.p50_seconds = latency_hist_.percentile(0.50);
    result_.latency.p99_seconds = latency_hist_.percentile(0.99);
    result_.latency.max_seconds = latency_max_;
  }
  result_.sim_latency.count = sim_latency_hist_.total();
  if (result_.sim_latency.count != 0) {
    result_.sim_latency.mean_seconds =
        sim_latency_sum_ / static_cast<double>(result_.sim_latency.count);
    result_.sim_latency.p50_seconds = sim_latency_hist_.percentile(0.50);
    result_.sim_latency.p99_seconds = sim_latency_hist_.percentile(0.99);
    result_.sim_latency.max_seconds = sim_latency_max_;
  }
}

void ScenarioEngine::check_invariants_if_due() {
  if (!sim_.invariant_stride || completed_ % sim_.invariant_stride != 0) {
    return;
  }
  std::size_t bad = 0;
  if (!truth_.check_invariants(&bad)) {
    throw std::logic_error("ledger invariant violated at channel " +
                           std::to_string(bad) + " after payment " +
                           std::to_string(completed_) + " (scheme " +
                           scheme_name(scheme_) + ")");
  }
  // Every live hold must be an engine-tracked in-flight HTLC (zero when
  // the lifecycle is inactive — the original "no leaked holds" check).
  if (truth_.active_holds() != htlc_open_holds_) {
    throw std::logic_error("scheme " + scheme_name(scheme_) +
                           " leaked holds after payment " +
                           std::to_string(completed_));
  }
}

// --- HTLC lifecycle ------------------------------------------------------
//
// See docs/ARCHITECTURE.md "HTLC lifecycle". A successful route under an
// active HtlcConfig does not settle: the armed ledger queues the commits,
// begin_htlc refunds the router's instant whole-path locks and re-stages
// each part as a per-hop HTLC that locks forward (kHopForward), waits at
// the receiver for its AMP siblings, then unwinds backward committing
// (kSettleBackward) or refunding (kFailBackward) one hop per latency draw.
// A timelock (kHtlcExpiry) force-refunds the whole part on-chain-style.

void ScenarioEngine::setup_htlc() {
  htlc_active_ = cfg_.htlc.active();
  const HtlcConfig& h = cfg_.htlc;
  if (h.timelock_delta > 0 && h.timelock_budget > 0) {
    const auto budget_hops =
        static_cast<std::size_t>(h.timelock_budget / h.timelock_delta);
    if (budget_hops == 0) {
      throw std::invalid_argument(
          "scenario: htlc.timelock_budget is below one timelock_delta - "
          "no route can fit; raise the budget or lower timelock_delta");
    }
    // The sender cannot unwind a path longer than its timelock budget
    // covers; every scheme's router enforces the cap during search.
    if (opts_.max_route_hops == 0 || budget_hops < opts_.max_route_hops) {
      opts_.max_route_hops = budget_hops;
    }
  }
  if (!htlc_active_) return;
  truth_.arm_deferred_settlement();
  const Graph& g = workload_->graph();
  std::uint64_t mix = seed_ ^ (h.seed * 0x9e3779b97f4a7c15ULL);
  Rng hrng(splitmix64(mix));
  edge_latency_.resize(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    edge_latency_[e] =
        h.hop_latency > 0 ? hrng.uniform(0.5, 1.5) * h.hop_latency : 0.0;
  }
  node_offline_.assign(g.num_nodes(), 0);
  if (h.offline_fraction > 0) {
    for (std::size_t n = 0; n < g.num_nodes(); ++n) {
      node_offline_[n] = h.offline_fraction >= 1 ||
                                 hrng.chance(h.offline_fraction)
                             ? 1
                             : 0;
    }
  }
  node_holder_.assign(g.num_nodes(), 0);
  if (h.holder_fraction > 0) {
    if (h.holders_prefer_hubs) {
      // Hub griefing: the holders are the highest-degree nodes, whose
      // channels carry the most relays.
      std::vector<NodeId> by_degree(g.num_nodes());
      for (std::size_t n = 0; n < g.num_nodes(); ++n) {
        by_degree[n] = static_cast<NodeId>(n);
      }
      std::stable_sort(by_degree.begin(), by_degree.end(),
                       [&g](NodeId a, NodeId b) {
                         return g.out_degree(a) > g.out_degree(b);
                       });
      const auto count = static_cast<std::size_t>(
          h.holder_fraction * static_cast<double>(g.num_nodes()) + 0.5);
      for (std::size_t i = 0; i < count && i < by_degree.size(); ++i) {
        node_holder_[by_degree[i]] = 1;
      }
    } else {
      for (std::size_t n = 0; n < g.num_nodes(); ++n) {
        node_holder_[n] = hrng.chance(h.holder_fraction) ? 1 : 0;
      }
    }
  }
}

void ScenarioEngine::stage_htlc_parts(NetworkState& ledger,
                                      const std::vector<EdgeId>* to_phys) {
  // Snapshot each queued hold's parts (path order) and refund it. The
  // router locked whole paths atomically; the timed lifecycle re-locks
  // hop by hop with fee escrow, and a sibling part's whole-path lock must
  // not count against another part's first-hop re-lock. When the route
  // ran on a mirror, `to_phys` translates its local edges to the truth's.
  staged_edges_.clear();
  staged_amounts_.clear();
  ledger.take_deferred_commits(deferred_buf_);
  for (const HoldId id : deferred_buf_) {
    const auto parts = ledger.hold_parts(id);
    std::vector<EdgeId> es;
    std::vector<Amount> as;
    es.reserve(parts.size());
    as.reserve(parts.size());
    for (const auto& [edge, amount] : parts) {
      es.push_back(to_phys ? (*to_phys)[edge] : edge);
      as.push_back(amount);
    }
    staged_edges_.push_back(std::move(es));
    staged_amounts_.push_back(std::move(as));
    ledger.abort(id);
  }
  deferred_buf_.clear();
}

void ScenarioEngine::begin_htlc(std::size_t tx_index, std::size_t attempt,
                                const RouteResult& r) {
  const Transaction tx = pending_.at(tx_index).tx;
  if (staged_edges_.empty()) {
    // A success that queued nothing has nothing to time (defensive: every
    // scheme settles at least one hold on success).
    conclude_attempt(tx_index, attempt, tx, r, false);
    return;
  }
  ++result_.htlc_payments;
  InFlight& fl = inflight_[tx_index];
  fl.attempt = attempt;
  fl.parts = 0;
  fl.arrived = 0;
  fl.done = 0;
  fl.failed = false;
  fl.lock_start = now_;
  fl.route = r;
  fl.slots.clear();
  result_.htlc_max_inflight =
      std::max(result_.htlc_max_inflight, inflight_.size());

  // Re-lock each part's first hop (or the whole netted flow) as a live
  // timed HTLC (the parts were staged by stage_htlc_parts at route time).
  for (std::size_t i = 0; i < staged_edges_.size(); ++i) {
    begin_part(tx_index, tx, staged_edges_[i], staged_amounts_[i]);
  }
  staged_edges_.clear();
  staged_amounts_.clear();
  if (fl.done == fl.parts) conclude_htlc(tx_index);
}

void ScenarioEngine::begin_part(std::size_t tx_index, const Transaction& tx,
                                const std::vector<EdgeId>& edges,
                                const std::vector<Amount>& amounts) {
  const Graph& g = workload_->graph();
  InFlight& fl = inflight_.at(tx_index);
  ++fl.parts;

  // Path-shaped iff the edges chain sender -> receiver (the ledger keeps
  // hold parts in lock order); anything else is an elephant netted flow.
  bool chained = !edges.empty() && g.from(edges.front()) == tx.sender &&
                 g.to(edges.back()) == tx.receiver;
  for (std::size_t k = 0; chained && k + 1 < edges.size(); ++k) {
    chained = g.to(edges[k]) == g.from(edges[k + 1]);
  }

  const std::size_t slot = alloc_part();
  HtlcPart& p = parts_[slot];
  p.flow = !chained;
  p.tx_index = tx_index;
  p.path.assign(edges.begin(), edges.end());
  p.lock_amount.assign(amounts.begin(), amounts.end());

  const HtlcConfig& h = cfg_.htlc;
  double expiry_span = 0;
  bool locked = false;
  p.hold = truth_.open_hold();
  ++htlc_open_holds_;
  if (!p.flow) {
    const std::size_t n = p.path.size();
    p.hop_count = n;
    if (h.fee_escrow) {
      // Hop k fronts every downstream hop's fee on top of its amount,
      // like Lightning's onion amounts.
      const FeeSchedule& fees = workload_->fees();
      Amount downstream = 0;
      for (std::size_t k = n; k-- > 0;) {
        p.lock_amount[k] += downstream;
        downstream += fees.edge_fee(p.path[k], amounts[k]);
      }
    }
    locked = truth_.extend_hold(p.hold, p.path[0], p.lock_amount[0]);
    if (locked) {
      p.hops_locked = 1;
      schedule_part(edge_latency_[p.path[0]], EventType::kHopForward, slot,
                    1);
    }
    if (h.timelock_delta > 0) {
      expiry_span = h.timelock_delta * static_cast<double>(n);
    }
  } else {
    // Netted elephant flow: one aggregate HTLC over the flow's edge set.
    // Equivalent path length = edges per used path; one-way latency =
    // that many mean edge delays.
    const std::size_t paths = std::max<std::size_t>(1, fl.route.paths_used);
    p.hop_count =
        std::max<std::size_t>(1, (edges.size() + paths - 1) / paths);
    double mean_lat = 0;
    for (const EdgeId e : edges) mean_lat += edge_latency_[e];
    if (!edges.empty()) mean_lat /= static_cast<double>(edges.size());
    p.unit_latency = mean_lat * static_cast<double>(p.hop_count);
    p.flow_blocked = node_offline_[tx.receiver] != 0;
    for (const EdgeId e : edges) {
      const NodeId mid = g.to(e);
      if (mid != tx.receiver && mid != tx.sender &&
          node_offline_[mid] != 0) {
        p.flow_blocked = true;
      }
    }
    locked = true;
    for (std::size_t k = 0; k < edges.size(); ++k) {
      if (!truth_.extend_hold(p.hold, edges[k], p.lock_amount[k])) {
        locked = false;
        break;
      }
    }
    if (locked) {
      p.hops_locked = edges.size();
      schedule_part(p.unit_latency, EventType::kHopForward, slot,
                    edges.size());
    }
    if (h.timelock_delta > 0) {
      expiry_span = h.timelock_delta * static_cast<double>(p.hop_count);
    }
  }

  if (!locked) {
    // First-lock contention: a concurrent in-flight HTLC (e.g. a sibling
    // part's fee escrow) holds the funds the router just saw as free.
    truth_.abort(p.hold);
    --htlc_open_holds_;
    ++result_.htlc_inflight_failures;
    fl.failed = true;
    ++p.gen;
    p.in_use = false;
    free_parts_.push_back(slot);
    ++fl.done;
    return;
  }
  fl.slots.push_back(slot);
  if (expiry_span > 0) {
    truth_.set_hold_expiry(p.hold, now_ + expiry_span);
    schedule_part(expiry_span, EventType::kHtlcExpiry, slot, 0);
  }
}

std::size_t ScenarioEngine::alloc_part() {
  std::size_t slot;
  if (!free_parts_.empty()) {
    slot = free_parts_.back();
    free_parts_.pop_back();
  } else {
    slot = parts_.size();
    parts_.emplace_back();
  }
  HtlcPart& p = parts_[slot];
  ++p.gen;
  p.in_use = true;
  p.flow = false;
  p.flow_blocked = false;
  p.state = PartState::kForwarding;
  p.hops_locked = 0;
  p.hop_count = 0;
  p.unit_latency = 0;
  return slot;
}

void ScenarioEngine::schedule_part(double delay, EventType type,
                                   std::size_t slot, std::size_t hop) {
  schedule(now_ + delay, type, slot, (parts_[slot].gen << kHopBits) | hop);
}

ScenarioEngine::HtlcPart* ScenarioEngine::live_part(std::size_t slot,
                                                    std::size_t enc) {
  HtlcPart& p = parts_[slot];
  if (!p.in_use || (enc >> kHopBits) != p.gen) return nullptr;
  return &p;
}

double ScenarioEngine::relay_delay(NodeId node, const HtlcPart& p) {
  if (!node_holder_[node]) return 0;
  ++result_.htlc_holder_delays;
  if (cfg_.htlc.holder_delay > 0) return cfg_.htlc.holder_delay;
  // Default griefing delay: most of the part's timelock span, long enough
  // to threaten expiry when stacked across relays.
  return 0.8 * cfg_.htlc.timelock_delta * static_cast<double>(p.hop_count);
}

void ScenarioEngine::handle_hop_forward(std::size_t slot, std::size_t enc) {
  HtlcPart* found = live_part(slot, enc);
  if (!found) return;
  HtlcPart& p = *found;
  if (p.state != PartState::kForwarding) return;
  InFlight& fl = inflight_.at(p.tx_index);
  if (fl.failed) {
    // A sibling part failed while this one was propagating: give up at
    // the current node and unwind what is locked.
    begin_fail_unwind(slot);
    return;
  }
  const Graph& g = workload_->graph();
  const std::size_t hop = enc & ((std::size_t{1} << kHopBits) - 1);
  if (p.flow || hop == p.path.size()) {
    // Arrival at the receiver.
    const bool off = p.flow ? p.flow_blocked
                            : node_offline_[g.to(p.path.back())] != 0;
    if (off) {
      ++result_.htlc_offline_failures;
      fail_htlc_payment(p.tx_index);
      begin_fail_unwind(slot);
      return;
    }
    p.state = PartState::kArrived;
    ++fl.arrived;
    // AMP barrier: the receiver releases the preimage only once every
    // part of the payment has arrived.
    if (fl.arrived + fl.done == fl.parts && fl.arrived > 0) {
      start_settlement(p.tx_index);
    }
    return;
  }
  const NodeId fwd = g.from(p.path[hop]);
  if (node_offline_[fwd] != 0) {
    ++result_.htlc_offline_failures;
    fail_htlc_payment(p.tx_index);
    begin_fail_unwind(slot);
    return;
  }
  if (!truth_.extend_hold(p.hold, p.path[hop], p.lock_amount[hop])) {
    // In-flight lock contention at an intermediate hop.
    ++result_.htlc_inflight_failures;
    fail_htlc_payment(p.tx_index);
    begin_fail_unwind(slot);
    return;
  }
  p.hops_locked = hop + 1;
  schedule_part(edge_latency_[p.path[hop]], EventType::kHopForward, slot,
                hop + 1);
}

void ScenarioEngine::start_settlement(std::size_t tx_index) {
  InFlight& fl = inflight_.at(tx_index);
  const NodeId receiver = pending_.at(tx_index).tx.receiver;
  for (const std::size_t s : fl.slots) {
    HtlcPart& p = parts_[s];
    if (!p.in_use || p.tx_index != tx_index ||
        p.state != PartState::kArrived) {
      continue;
    }
    p.state = PartState::kSettling;
    const double d = relay_delay(receiver, p);
    if (p.flow) {
      schedule_part(d + p.unit_latency, EventType::kSettleBackward, s, 0);
    } else {
      schedule_part(d + edge_latency_[p.path.back()],
                    EventType::kSettleBackward, s, p.path.size() - 1);
    }
  }
}

void ScenarioEngine::handle_settle_backward(std::size_t slot,
                                            std::size_t enc) {
  HtlcPart* found = live_part(slot, enc);
  if (!found) return;
  HtlcPart& p = *found;
  if (p.state != PartState::kSettling) return;
  if (p.flow) {
    // The whole netted flow settles as one unit (commit() itself is armed
    // for deferral, so settle hop-wise, which moves funds immediately).
    const std::size_t n = truth_.hold_parts(p.hold).size();
    for (std::size_t i = 0; i < n; ++i) truth_.commit_hop(p.hold, i);
    --htlc_open_holds_;
    part_done(slot);
    return;
  }
  const std::size_t hop = enc & ((std::size_t{1} << kHopBits) - 1);
  truth_.commit_hop(p.hold, hop);
  if (hop == 0) {
    // The hold auto-retired with its last hop settled.
    --htlc_open_holds_;
    part_done(slot);
    return;
  }
  const Graph& g = workload_->graph();
  const double d = relay_delay(g.from(p.path[hop]), p);
  schedule_part(d + edge_latency_[p.path[hop - 1]],
                EventType::kSettleBackward, slot, hop - 1);
}

void ScenarioEngine::fail_htlc_payment(std::size_t tx_index) {
  InFlight& fl = inflight_.at(tx_index);
  if (fl.failed) return;
  fl.failed = true;
  // Parts waiting at the receiver unwind now; parts still forwarding
  // convert at their next event (at most one hop latency away).
  for (const std::size_t s : fl.slots) {
    HtlcPart& q = parts_[s];
    if (q.in_use && q.tx_index == tx_index &&
        q.state == PartState::kArrived) {
      begin_fail_unwind(s);
    }
  }
}

void ScenarioEngine::begin_fail_unwind(std::size_t slot) {
  HtlcPart& p = parts_[slot];
  p.state = PartState::kFailing;
  if (p.hops_locked == 0) {  // defensive: live parts always lock hop 0
    truth_.abort(p.hold);
    --htlc_open_holds_;
    part_done(slot);
    return;
  }
  if (p.flow) {
    schedule_part(p.unit_latency, EventType::kFailBackward, slot, 0);
    return;
  }
  const std::size_t last = p.hops_locked - 1;
  schedule_part(edge_latency_[p.path[last]], EventType::kFailBackward, slot,
                last);
}

void ScenarioEngine::handle_fail_backward(std::size_t slot,
                                          std::size_t enc) {
  HtlcPart* found = live_part(slot, enc);
  if (!found) return;
  HtlcPart& p = *found;
  if (p.state != PartState::kFailing) return;
  if (p.flow) {
    truth_.abort(p.hold);
    --htlc_open_holds_;
    part_done(slot);
    return;
  }
  const std::size_t hop = enc & ((std::size_t{1} << kHopBits) - 1);
  truth_.abort_hop(p.hold, hop);
  if (hop == 0) {
    // abort_hop retired the hold with its last locked hop refunded.
    --htlc_open_holds_;
    part_done(slot);
    return;
  }
  const Graph& g = workload_->graph();
  const double d = relay_delay(g.from(p.path[hop]), p);
  schedule_part(d + edge_latency_[p.path[hop - 1]], EventType::kFailBackward,
                slot, hop - 1);
}

void ScenarioEngine::handle_htlc_expiry(std::size_t slot, std::size_t enc) {
  HtlcPart* found = live_part(slot, enc);
  if (!found) return;
  HtlcPart& p = *found;
  // Once a part is unwinding the preimage/error is already propagating;
  // the simplified model lets that unwind finish.
  if (p.state == PartState::kSettling || p.state == PartState::kFailing) {
    return;
  }
  ++result_.htlc_expiries;
  // On-chain timeout: every still-locked hop of this part refunds at
  // once. Mark the part failing first so fail_htlc_payment's sweep does
  // not schedule a second unwind for it.
  p.state = PartState::kFailing;
  fail_htlc_payment(p.tx_index);
  truth_.abort(p.hold);
  --htlc_open_holds_;
  part_done(slot);
}

void ScenarioEngine::part_done(std::size_t slot) {
  HtlcPart& p = parts_[slot];
  const std::size_t tx_index = p.tx_index;
  ++p.gen;  // orphan any still-queued events (e.g. the expiry)
  p.in_use = false;
  free_parts_.push_back(slot);
  InFlight& fl = inflight_.at(tx_index);
  ++fl.done;
  if (fl.done == fl.parts) conclude_htlc(tx_index);
}

void ScenarioEngine::conclude_htlc(std::size_t tx_index) {
  InFlight& fl = inflight_.at(tx_index);
  const bool ok = !fl.failed;
  const std::size_t attempt = fl.attempt;
  RouteResult r = fl.route;
  if (!ok) {
    // The route was fine but the payment died in flight: report a failed
    // attempt (the retry path re-routes with fresh balances).
    r.success = false;
    r.delivered = 0;
    r.fee = 0;
  }
  note_sim_latency(now_ - fl.lock_start);
  inflight_.erase(tx_index);
  const Transaction tx = pending_.at(tx_index).tx;
  conclude_attempt(tx_index, attempt, tx, r, false);
}

void ScenarioEngine::sync_context(SenderContext& ctx) {
  const std::size_t local_edges = ctx.graph->num_edges();
  const std::vector<EdgeId>& to_phys = *ctx.to_phys;
  if (ctx.journal_gen != journal_gen_) {
    // Full resync: fresh/rebuilt context, rebalance drift, or journal
    // overflow. O(local_edges), the pre-journal cost of EVERY sync.
    ctx.synced.resize(local_edges);
    for (EdgeId e = 0; e < local_edges; ++e) {
      ctx.synced[e] = truth_.balance(to_phys[e]);
    }
    ctx.mirror->assign_balances(ctx.synced);
    ctx.journal_gen = journal_gen_;
    ctx.journal_pos = truth_journal_.size();
    return;
  }
  // Replay the journal suffix this mirror has not seen. Edges outside the
  // sender's view are skipped; repeats overwrite idempotently. After the
  // loop every local edge equals the truth again: untouched edges were
  // already equal, and every touched edge is in the journal.
  const std::vector<std::uint32_t>& phys_map = *ctx.phys_map;
  for (; ctx.journal_pos < truth_journal_.size(); ++ctx.journal_pos) {
    const EdgeId phys = truth_journal_[ctx.journal_pos];
    const std::uint32_t le1 = phys_map[phys];
    if (le1 == 0) continue;
    const Amount b = truth_.balance(phys);
    ctx.synced[le1 - 1] = b;
    ctx.mirror->mirror_balance(le1 - 1, b);
  }
}

void ScenarioEngine::record_truth_change(EdgeId physical_edge) {
  truth_journal_.push_back(physical_edge);
  if (truth_journal_.size() > 4 * workload_->graph().num_edges()) {
    // Journal replay would cost more than full resyncs; start a fresh
    // generation (mirrors full-sync on their next payment).
    truth_journal_.clear();
    ++journal_gen_;
  }
}

void ScenarioEngine::handle_close() {
  // Churn ends speculation for good: the pristine fast path is over, and
  // the stale-view machinery that takes its place is inherently
  // sequential. In-flight speculations are abandoned un-applied (their
  // arrivals will route through sender contexts like any post-churn
  // payment), which is why the flip needs no rollback.
  if (concurrent_) replay_quiesce(/*permanent=*/true);
  if (!open_list_.empty()) {
    const std::size_t pick = dyn_rng_.next_below(open_list_.size());
    const std::size_t c = open_list_[pick];
    close_channel_now(c);
    if (cfg_.churn.mean_downtime > 0) {
      schedule(now_ + dyn_rng_.exponential(1.0 / cfg_.churn.mean_downtime),
               EventType::kReopen, c);
    }
  }
  schedule(now_ + dyn_rng_.exponential(cfg_.churn.close_rate),
           EventType::kClose);
}

bool ScenarioEngine::close_channel_now(std::size_t c) {
  if (!open_[c]) return false;
  for (std::size_t i = 0; i < open_list_.size(); ++i) {
    if (open_list_[i] == c) {
      open_list_[i] = open_list_.back();
      open_list_.pop_back();
      break;
    }
  }
  open_[c] = 0;
  ++truth_version_;
  pristine_ = false;
  ++result_.channels_closed;
  if (!ever_churned_[c]) {
    ever_churned_[c] = 1;
    churned_list_.push_back(c);
  }

  // In-flight HTLCs crossing the channel resolve on-chain FIRST (the
  // close transaction sweeps the HTLC outputs), then the channel's
  // remaining funds leave the network.
  if (htlc_active_) resolve_htlcs_on_close(c);
  const Graph& g = workload_->graph();
  const EdgeId fe = g.channel_forward_edge(c);
  truth_.set_channel_balance(c, 0, 0);
  record_truth_change(fe);
  record_truth_change(g.reverse(fe));

  gossip_.announce_channel_close(c, ++channel_seq_[c]);
  flush_gossip_or_schedule_hop();
  return true;
}

void ScenarioEngine::resolve_htlcs_on_close(std::size_t channel) {
  if (htlc_open_holds_ == 0) return;
  const Graph& g = workload_->graph();
  // Pass 1: find every in-flight part with a still-locked hop on the
  // channel (its break point k), and pre-mark settling parts' holds so
  // the ledger SETTLES their swept hops (preimage already public) instead
  // of refunding them.
  close_hits_.clear();
  for (std::size_t slot = 0; slot < parts_.size(); ++slot) {
    HtlcPart& p = parts_[slot];
    if (!p.in_use) continue;
    const auto hp = truth_.hold_parts(p.hold);
    std::size_t k = hp.size();
    for (std::size_t i = 0; i < hp.size(); ++i) {
      if (hp[i].second > 0 && g.channel_of(hp[i].first) == channel) {
        k = i;
        break;
      }
    }
    if (k == hp.size()) continue;
    if (p.state == PartState::kSettling) truth_.mark_hold_settling(p.hold);
    close_hits_.emplace_back(slot, k);
  }
  if (close_hits_.empty()) return;

  const NetworkState::CloseResolution res =
      truth_.resolve_holds_on_close(channel);
  result_.htlc_onchain_settled_hops += res.settled_hops;
  result_.htlc_onchain_refunded_hops += res.refunded_hops;

  // Pass 2: finish each affected part. Settling parts complete on-chain
  // (the payment still succeeds, just early); failing parts finish their
  // abort now; forwarding/arrived parts fail backward from the break
  // point — hops beyond it resolve on-chain, hops before it refund
  // hop-wise on the still-open upstream channels.
  std::vector<std::size_t> commit_idx;
  for (const auto& [slot, k] : close_hits_) {
    HtlcPart& p = parts_[slot];
    if (p.state == PartState::kSettling) {
      if (truth_.hold_active(p.hold)) {
        const auto hp = truth_.hold_parts(p.hold);
        commit_idx.clear();
        for (std::size_t i = 0; i < hp.size(); ++i) {
          if (hp[i].second > 0) commit_idx.push_back(i);
        }
        for (const std::size_t i : commit_idx) {
          truth_.commit_hop(p.hold, i);
          ++result_.htlc_onchain_settled_hops;
        }
      }
      --htlc_open_holds_;
      part_done(slot);
      continue;
    }
    if (p.state == PartState::kFailing) {
      if (truth_.hold_active(p.hold)) {
        const auto hp = truth_.hold_parts(p.hold);
        for (std::size_t i = 0; i < hp.size(); ++i) {
          if (hp[i].second > 0) ++result_.htlc_onchain_refunded_hops;
        }
        truth_.abort(p.hold);
      }
      --htlc_open_holds_;
      part_done(slot);
      continue;
    }
    // kForwarding / kArrived: the payment breaks here.
    {
      InFlight& fl = inflight_.at(p.tx_index);
      if (!fl.failed) ++result_.htlc_break_failures;
    }
    p.state = PartState::kFailing;  // before the sweep: no double-unwind
    fail_htlc_payment(p.tx_index);
    if (p.flow) {
      // A netted flow has no hop order to unwind along; the whole
      // remainder resolves on-chain at once.
      if (truth_.hold_active(p.hold)) {
        const auto hp = truth_.hold_parts(p.hold);
        for (std::size_t i = 0; i < hp.size(); ++i) {
          if (hp[i].second > 0) ++result_.htlc_onchain_refunded_hops;
        }
        truth_.abort(p.hold);
      }
      --htlc_open_holds_;
      part_done(slot);
      continue;
    }
    if (truth_.hold_active(p.hold)) {
      // Hops beyond the break point cannot relay an error upstream across
      // the dead channel: they time out on-chain now (last to k+1).
      const std::size_t locked = truth_.hold_parts(p.hold).size();
      for (std::size_t i = locked; i-- > k + 1;) {
        if (truth_.hold_parts(p.hold)[i].second <= 0) continue;
        truth_.abort_hop(p.hold, i);
        ++result_.htlc_onchain_refunded_hops;
      }
    }
    if (!truth_.hold_active(p.hold)) {
      // Every locked hop was swept on-chain; nothing to unwind off-chain.
      --htlc_open_holds_;
      part_done(slot);
      continue;
    }
    // Hops before the break refund hop-wise on their (open) channels,
    // starting at k-1 after one hop latency — the normal timed unwind.
    p.hops_locked = k;
    schedule_part(edge_latency_[p.path[k - 1]], EventType::kFailBackward,
                  slot, k - 1);
  }
}

void ScenarioEngine::drain_truth_log() {
  // HTLC hop events mutate the truth BETWEEN payments; replaying the
  // ledger's change log here (once per event) is what keeps stale sender
  // mirrors syncable by journal suffix instead of full resyncs.
  for (const EdgeId e : truth_.change_log()) record_truth_change(e);
  truth_.clear_change_log();
}

void ScenarioEngine::handle_reopen(std::size_t channel) {
  if (open_[channel]) return;
  open_[channel] = 1;
  open_list_.push_back(channel);
  ++truth_version_;
  ++result_.channels_reopened;

  // A fresh funding transaction restores the initial (scaled) deposits —
  // channel-scoped, so deposits of channels with funds locked in flight
  // elsewhere are untouched (and a reopen can never resurrect a ghost
  // hold: nothing can lock on a closed channel's zero balances).
  const Graph& g = workload_->graph();
  const EdgeId fe = g.channel_forward_edge(channel);
  truth_.set_channel_balance(channel, initial_balance_[fe],
                             initial_balance_[g.reverse(fe)]);
  record_truth_change(fe);
  record_truth_change(g.reverse(fe));

  gossip_.announce_channel_open(channel, ++channel_seq_[channel]);
  flush_gossip_or_schedule_hop();
}

void ScenarioEngine::flush_gossip_or_schedule_hop() {
  if (cfg_.gossip.hop_delay <= 0) {
    const auto [rounds, messages] = gossip_.run_to_quiescence();
    (void)messages;  // folded into gossip_.total_messages()
    result_.gossip_rounds += rounds;
    return;
  }
  if (!hop_scheduled_ && !gossip_.quiescent()) {
    schedule(now_ + cfg_.gossip.hop_delay, EventType::kGossipHop);
    hop_scheduled_ = true;
  }
}

void ScenarioEngine::handle_gossip_hop() {
  hop_scheduled_ = false;
  gossip_.run_round();
  ++result_.gossip_rounds;
  if (!gossip_.quiescent()) {
    schedule(now_ + cfg_.gossip.hop_delay, EventType::kGossipHop);
    hop_scheduled_ = true;
  }
}

void ScenarioEngine::handle_rebalance() {
  // Rebalance rewrites every balance but keeps the network pristine, so
  // speculation may continue afterwards: park the pipeline, roll back
  // every in-flight speculation (their ledger views are about to be
  // wholesale wrong), apply the drift, and let replay_quiesce's caller
  // publish the new balances through the replay log.
  if (concurrent_) replay_quiesce(/*permanent=*/false);
  const Graph& g = workload_->graph();
  if (truth_.active_holds() == 0) {
    // Holds-free ledger: the original wholesale rewrite (bit-identical
    // for every pre-existing rebalance config).
    drift_buf_.resize(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      drift_buf_[e] = truth_.balance(e);
    }
    for (std::size_t c = 0; c < g.num_channels(); ++c) {
      if (!open_[c]) continue;
      const EdgeId fe = g.channel_forward_edge(c);
      const EdgeId be = g.reverse(fe);
      const Amount total = drift_buf_[fe] + drift_buf_[be];
      const Amount fwd =
          drift_buf_[fe] +
          cfg_.rebalance.strength * (total / 2 - drift_buf_[fe]);
      drift_buf_[fe] = fwd;
      drift_buf_[be] = total - fwd;  // conserves the channel total exactly
    }
    truth_.assign_balances(drift_buf_);
  } else {
    // Funds are locked in flight: a rebalancing operator cannot touch
    // escrowed HTLC outputs, so the sweep skips any channel carrying held
    // amounts and drifts the rest channel by channel (totals conserved,
    // deposits untouched — exactly what the invariant needs).
    truth_.held_channels(held_buf_);
    for (std::size_t c = 0; c < g.num_channels(); ++c) {
      if (!open_[c]) continue;
      if (held_buf_[c]) {
        ++result_.rebalance_skipped_channels;
        continue;
      }
      const EdgeId fe = g.channel_forward_edge(c);
      const EdgeId be = g.reverse(fe);
      const Amount bf = truth_.balance(fe);
      const Amount total = bf + truth_.balance(be);
      const Amount fwd = bf + cfg_.rebalance.strength * (total / 2 - bf);
      truth_.mirror_balance(fe, fwd);
      truth_.mirror_balance(be, total - fwd);
    }
  }
  // A full-ledger rewrite: journal replay cannot express it compactly, so
  // advance the generation and let every mirror full-sync once.
  truth_journal_.clear();
  ++journal_gen_;
  if (concurrent_) replay_publish_all_edges();
  ++result_.rebalance_events;
  schedule(now_ + cfg_.rebalance.interval, EventType::kRebalance);
}

// --- Fault injection -----------------------------------------------------

void ScenarioEngine::note_fault_window(double start, double end) {
  fault_windows_.emplace_back(start, end);
  fault_window_end_ = std::max(fault_window_end_, end);
}

void ScenarioEngine::handle_hub_outage(bool start) {
  if (start) {
    // Coordinated outage: every target hub goes dark at once. Per-node
    // pre-outage state is saved so hubs that were ALREADY offline (the
    // htlc.offline_fraction draw) stay offline after the window.
    hub_offline_saved_.resize(fault_hubs_.size());
    for (std::size_t i = 0; i < fault_hubs_.size(); ++i) {
      hub_offline_saved_[i] = node_offline_[fault_hubs_[i]];
      if (!node_offline_[fault_hubs_[i]]) {
        node_offline_[fault_hubs_[i]] = 1;
        ++result_.fault_hub_outages;
      }
    }
    schedule(now_ + cfg_.fault.hub_outage_duration, EventType::kHubOutageEnd);
  } else {
    for (std::size_t i = 0; i < fault_hubs_.size(); ++i) {
      node_offline_[fault_hubs_[i]] = hub_offline_saved_[i];
    }
  }
}

void ScenarioEngine::handle_fault_burst() {
  // A close burst is churn as far as speculation is concerned.
  if (concurrent_) replay_quiesce(/*permanent=*/true);
  const Graph& g = workload_->graph();
  if (open_list_.empty() || g.num_nodes() == 0) return;
  // Regional: a BFS ball of channels around a seeded center — the closes
  // cluster like a datacenter or regulator event taking down a
  // neighborhood, not a uniform sprinkle.
  const NodeId center =
      static_cast<NodeId>(fault_rng_.next_below(g.num_nodes()));
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> queue{center};
  seen[center] = 1;
  std::size_t head = 0;
  std::size_t closed = 0;
  while (head < queue.size() && closed < cfg_.fault.burst_channels) {
    const NodeId u = queue[head++];
    for (const auto& arc : g.out_arcs(u)) {
      if (closed < cfg_.fault.burst_channels &&
          close_channel_now(g.channel_of(arc.edge))) {
        ++closed;
        ++result_.fault_channel_closes;
        if (cfg_.fault.burst_reopen_after > 0) {
          schedule(now_ + cfg_.fault.burst_reopen_after, EventType::kReopen,
                   g.channel_of(arc.edge));
        }
      }
      if (!seen[arc.head]) {
        seen[arc.head] = 1;
        queue.push_back(arc.head);
      }
    }
  }
}

void ScenarioEngine::handle_fault_close(std::size_t index) {
  if (concurrent_) replay_quiesce(/*permanent=*/true);
  const ChannelFault& cf = cfg_.fault.channel_faults[index];
  if (close_channel_now(cf.channel)) {
    ++result_.fault_channel_closes;
    if (cf.reopen_after > 0) {
      schedule(now_ + cf.reopen_after, EventType::kReopen, cf.channel);
    }
  }
}

ScenarioEngine::SenderContext& ScenarioEngine::context_for(NodeId sender) {
  auto* ctx = static_cast<SenderContext*>(contexts_.find(sender));
  if (!ctx) {
    std::unique_ptr<SenderCacheable> slot = contexts_.evict_for_insert();
    if (slot) {
      // Recycled evictee: it belonged to another sender, so force a
      // rebuild — which overwrites every field but keeps the buffer
      // capacities (graph vectors, edge maps, synced balances). In
      // incremental mode the router object itself is reusable (a strict
      // clear + reseed + mask rebuild is equivalent to constructing it
      // fresh), so only flag it; never patch from another sender's state.
      if (incremental_) {
        static_cast<SenderContext&>(*slot).recycled = true;
      } else {
        static_cast<SenderContext&>(*slot).router.reset();
      }
    } else {
      slot = std::make_unique<SenderContext>();
    }
    ctx = static_cast<SenderContext*>(slot.get());
    contexts_.insert(sender, std::move(slot));
  }
  if (incremental_) {
    if (!ctx->router || ctx->recycled) {
      build_incremental_context(*ctx, sender);
    } else if (ctx->view_version != gossip_.view_version(sender)) {
      patch_context(*ctx, sender);
    }
  } else if (!ctx->router ||
             ctx->view_version != gossip_.view_version(sender)) {
    rebuild_context(*ctx, sender);
  }
  return *ctx;
}

void ScenarioEngine::rebuild_context(SenderContext& ctx, NodeId sender) {
  ++result_.router_rebuilds;
  const Graph& pg = workload_->graph();
  // Old router/mirror reference the old local graph: drop them first.
  ctx.router.reset();
  ctx.mirror.reset();

  Graph local(pg.num_nodes());
  ctx.to_physical.clear();
  // for_each_open emits channels in ascending normalized-pair order — a
  // subsequence of sorted_pairs_ — so one monotone cursor resolves every
  // view channel to its truth channel with no per-channel hash lookup.
  std::size_t cursor = 0;
  gossip_.view(sender).for_each_open([&](NodeId u, NodeId v) {
    const std::pair<NodeId, NodeId> key{u, v};
    while (cursor < sorted_pairs_.size() && sorted_pairs_[cursor] < key) {
      ++cursor;
    }
    if (cursor == sorted_pairs_.size() || sorted_pairs_[cursor] != key) {
      return;  // unknown to the truth
    }
    const EdgeId pf = pg.channel_forward_edge(sorted_channels_[cursor]);
    local.add_channel(u, v);
    if (pg.from(pf) == u) {
      ctx.to_physical.push_back(pf);
      ctx.to_physical.push_back(pg.reverse(pf));
    } else {
      ctx.to_physical.push_back(pg.reverse(pf));
      ctx.to_physical.push_back(pf);
    }
  });
  local.finalize();
  ctx.local = std::move(local);

  FeeSchedule fees(ctx.local);
  for (EdgeId e = 0; e < ctx.local.num_edges(); ++e) {
    fees.set_policy(e, workload_->fees().policy(ctx.to_physical[e]));
  }
  ctx.fees = std::move(fees);

  ctx.mirror = std::make_unique<NetworkState>(ctx.local);
  // Mirrors route for a timed lifecycle too: queue their settlements so
  // stage_htlc_parts can re-stage them on the truth instead.
  if (htlc_active_) ctx.mirror->arm_deferred_settlement();
  // Stale-view routers recompute exhausted table entries: under churn an
  // entry whose every path died must not pin failure until the next view
  // refresh.
  FlashOptions stale_opts = opts_;
  stale_opts.table_recompute_on_exhaustion = true;
  ctx.router = make_router(scheme_, ctx.local, ctx.fees, elephant_threshold_,
                           stale_opts, context_router_seed(sender));
  ctx.view_version = gossip_.view_version(sender);
  ctx.div_truth_version = SenderContext::kNever;
  ctx.div_view_version = SenderContext::kNever;
  // Inverse edge map for journal replay, and a fresh change log on the
  // new mirror; generation 0 forces the next sync_context to full-sync.
  ctx.phys_to_local.assign(pg.num_edges(), 0);
  for (std::size_t le = 0; le < ctx.to_physical.size(); ++le) {
    ctx.phys_to_local[ctx.to_physical[le]] =
        static_cast<std::uint32_t>(le) + 1;
  }
  ctx.mirror->enable_change_log();
  ctx.journal_gen = 0;
  ctx.journal_pos = 0;
  ctx.graph = &ctx.local;
  ctx.to_phys = &ctx.to_physical;
  ctx.phys_map = &ctx.phys_to_local;
  ctx.recycled = false;
}

std::uint64_t ScenarioEngine::context_router_seed(NodeId sender) const {
  // Fresh deterministic entropy per (sender, view version): a rebuilt or
  // reseeded router must not restart the same randomized-path-order
  // stream, or frequently-refreshed senders would replay one frozen
  // shuffle forever. Shared by the oracle rebuild and the incremental
  // patch path — identical seeds are what keep strict mode bit-identical.
  std::uint64_t mix =
      seed_ ^
      (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(sender) + 1)) ^
      (0xbf58476d1ce4e5b9ULL * (gossip_.view_version(sender) + 1));
  return splitmix64(mix);
}

void ScenarioEngine::build_incremental_context(SenderContext& ctx,
                                               NodeId sender) {
  // Counted as a rebuild: this is the incremental engine's from-scratch
  // path (first use of a sender, or a slot recycled from another sender),
  // the moral equivalent of the oracle's rebuild_context.
  ++result_.router_rebuilds;
  const Graph& pg = workload_->graph();
  ctx.graph = &view_graph_;
  ctx.to_phys = &view_to_physical_;
  ctx.phys_map = &view_phys_to_local_;

  // The sender's view, as a mask over the shared full-shape graph. Only
  // ever-churned channels can be absent from a view (bootstrap seeds every
  // channel open), so start all-open and walk the churned list.
  ctx.open_mask.assign(view_graph_.num_edges(), 1);
  const gossip::NodeView& view = gossip_.view(sender);
  for (const std::size_t c : churned_list_) {
    const EdgeId fe = pg.channel_forward_edge(c);
    if (!view.knows_channel(pg.from(fe), pg.to(fe))) {
      const EdgeId vf =
          view_graph_.channel_forward_edge(truth_to_view_channel_[c]);
      ctx.open_mask[vf] = 0;
      ctx.open_mask[view_graph_.reverse(vf)] = 0;
    }
  }

  if (ctx.router) {
    // Recycled slot: a strict clear plus a reseed leaves the router in
    // exactly the state a fresh construction would produce, minus the
    // allocations.
    ctx.router->apply_topology_delta({}, {}, /*strict=*/true);
    ctx.router->reseed(context_router_seed(sender));
  } else {
    FlashOptions stale_opts = opts_;
    stale_opts.table_recompute_on_exhaustion = true;
    ctx.router = make_router(scheme_, view_graph_, view_fees_,
                             elephant_threshold_, stale_opts,
                             context_router_seed(sender));
  }
  ctx.router->set_open_mask(ctx.open_mask.data());

  if (!ctx.mirror) {
    ctx.mirror = std::make_unique<NetworkState>(view_graph_);
    ctx.mirror->enable_change_log();
    if (htlc_active_) ctx.mirror->arm_deferred_settlement();
  } else {
    ctx.mirror->clear_change_log();
  }
  ctx.view_version = gossip_.view_version(sender);
  ctx.div_truth_version = SenderContext::kNever;
  ctx.div_view_version = SenderContext::kNever;
  ctx.journal_gen = 0;
  ctx.journal_pos = 0;
  ctx.recycled = false;
}

void ScenarioEngine::patch_context(SenderContext& ctx, NodeId sender) {
  ++result_.router_patches;
  const Graph& pg = workload_->graph();
  const gossip::NodeView& view = gossip_.view(sender);
  // Diff the mask against the refreshed view. Only ever-churned channels
  // can have moved; everything else stays open on both sides forever.
  closed_buf_.clear();
  reopened_buf_.clear();
  for (const std::size_t c : churned_list_) {
    const EdgeId fe = pg.channel_forward_edge(c);
    const bool believed_open = view.knows_channel(pg.from(fe), pg.to(fe));
    const EdgeId vf =
        view_graph_.channel_forward_edge(truth_to_view_channel_[c]);
    if (static_cast<bool>(ctx.open_mask[vf]) == believed_open) continue;
    const unsigned char bit = believed_open ? 1 : 0;
    ctx.open_mask[vf] = bit;
    ctx.open_mask[view_graph_.reverse(vf)] = bit;
    (believed_open ? reopened_buf_ : closed_buf_).push_back(vf);
  }
  // Even an empty delta (a newer-sequence announcement that restated the
  // known state) reseeds and applies: the oracle rebuilds on every view
  // VERSION change, and strict mode must trigger exactly when it does.
  ctx.router->reseed(context_router_seed(sender));
  result_.entries_invalidated += ctx.router->apply_topology_delta(
      closed_buf_, reopened_buf_,
      cfg_.maintenance == RouterMaintenance::kIncrementalStrict);
  ctx.view_version = gossip_.view_version(sender);
  ctx.div_truth_version = SenderContext::kNever;
  ctx.div_view_version = SenderContext::kNever;
}

bool ScenarioEngine::view_diverged(SenderContext& ctx, NodeId sender) {
  const std::uint64_t vv = gossip_.view_version(sender);
  if (ctx.div_truth_version == truth_version_ && ctx.div_view_version == vv) {
    return ctx.divergent;
  }
  ctx.div_truth_version = truth_version_;
  ctx.div_view_version = vv;
  ctx.divergent = false;
  const Graph& pg = workload_->graph();
  const gossip::NodeView& view = gossip_.view(sender);
  // Only ever-churned channels can disagree: bootstrap seeds every view
  // with every channel open, the truth only flips open_ through churn,
  // and gossip only carries churn announcements — so un-churned channels
  // are open on both sides forever. O(churned), not O(channels).
  for (const std::size_t c : churned_list_) {
    const EdgeId fe = pg.channel_forward_edge(c);
    if (static_cast<bool>(open_[c]) !=
        view.knows_channel(pg.from(fe), pg.to(fe))) {
      ctx.divergent = true;
      break;
    }
  }
  return ctx.divergent;
}

ScenarioResult run_scenario(const Workload& workload, Scheme scheme,
                            const FlashOptions& opts, const SimConfig& sim,
                            const ScenarioConfig& scenario,
                            std::uint64_t seed) {
  ScenarioEngine engine(workload, scheme, opts, sim, scenario, seed);
  return engine.run();
}

}  // namespace flash

// Parallel experiment engine: declarative sweep grids over the simulator.
//
// A sweep is a flat vector of cells, one per (workload factory, scheme,
// FlashOptions, SimConfig, runs, base_seed) grid point — the shape of every
// figure sweep in the paper's evaluation (Figs. 6-11) and of the ablations.
// run_sweep executes the individual (cell, run) simulations on a thread
// pool. Each run derives everything stochastic from `base_seed + run index`
// and owns its workload, router and ledger outright, so results are
// bit-identical to the sequential path regardless of thread count or
// completion order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/scenario.h"

namespace flash {

/// One grid point of a sweep: a repeated experiment (`runs` seeds starting
/// at `base_seed`), equivalent to one run_series call. The label is
/// free-form ("Ripple/scale=10/Flash"), carried through to the JSON report.
struct SweepCell {
  std::string label;
  WorkloadFactory factory;
  Scheme scheme = Scheme::kFlash;
  FlashOptions flash;
  SimConfig sim;
  std::size_t runs = 1;
  std::uint64_t base_seed = 1;
  /// When set, each run goes through the dynamic ScenarioEngine
  /// (sim/scenario.h) instead of run_simulation: churn, retries, gossip
  /// delay and rebalancing per the config, seeded exactly like the static
  /// path (a zero-dynamics config reproduces it bit-for-bit). The fig14
  /// churn sweep sets this.
  std::optional<ScenarioConfig> scenario;
};

/// Execution knobs for run_sweep.
struct SweepOptions {
  /// Worker threads. 0 = one per hardware thread; 1 = sequential.
  std::size_t threads = 0;
};

/// Results of a sweep, cell-for-cell parallel to the input grid.
struct SweepResult {
  std::vector<RunSeries> cells;
  /// Threads actually used: resolves SweepOptions::threads == 0 to the
  /// hardware count and caps at the number of (cell, run) units.
  std::size_t threads_used = 0;
  /// Wall-clock time of the whole grid, for speedup tracking.
  double wall_seconds = 0;
};

/// Runs every (cell, run) pair of the grid, in parallel across a thread
/// pool. Deterministic: run j of cell i simulates workload
/// cell.factory(cell.base_seed + j) against a router seeded with
/// cell.base_seed + j, exactly as the sequential run_series does, so the
/// SimResults are bit-identical for any thread count. Cell factories are
/// invoked concurrently and must be thread-safe (see WorkloadFactory).
/// Rethrows the first exception any run produced after all runs finish.
SweepResult run_sweep(const std::vector<SweepCell>& grid,
                      const SweepOptions& opts = {});

/// Writes the sweep as a structured JSON report: bench name, thread count,
/// wall-clock seconds, and per-cell aggregates (success ratio/volume,
/// probing messages, fee ratio). Consumed by tools/run_benches.sh to track
/// the perf trajectory. `grid` and `result.cells` must be parallel vectors.
void write_sweep_json(std::ostream& out, const std::string& bench,
                      const std::vector<SweepCell>& grid,
                      const SweepResult& result);

}  // namespace flash

// Bounded LRU cache of per-sender routing state for the scenario engine.
//
// Under churn every sender routes with its OWN stale-view router over a
// mirror ledger — state that costs O(network) per sender. Keeping one
// forever per sender (the original design) is O(network x senders), which
// caps the engine at testbed scale. This cache bounds the live set to the
// K most-recently-active senders: a payment from a cached sender reuses
// its state (hit), an uncached sender evicts the least-recently-used
// entry and RECYCLES its allocation (the rebuild overwrites every field,
// so the evictee's buffer capacities — graph vectors, edge maps, synced
// balances — carry over instead of being reallocated). With Zipf-skewed
// sender activity (the paper's workloads) a small K yields high hit
// rates; capacity 0 means unbounded, which preserves the original
// one-context-per-sender behavior bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace flash {

/// Base class for cache values. The cache owns values through this
/// interface so it stays independent of the (engine-private) context type.
class SenderCacheable {
 public:
  virtual ~SenderCacheable() = default;
};

class SenderRouterCache {
 public:
  /// capacity 0 = unbounded (never evicts).
  explicit SenderRouterCache(std::size_t capacity) : capacity_(capacity) {}

  /// Looks up a sender's cached state, marking it most-recently-used.
  /// Returns nullptr on miss. Counts a hit or a miss.
  SenderCacheable* find(NodeId sender);

  /// Prepares an insert after a miss: when the cache is at capacity, pops
  /// the least-recently-used entry and returns its value for recycling
  /// (counted as an eviction); otherwise returns nullptr and the caller
  /// allocates fresh. Always call insert() next.
  std::unique_ptr<SenderCacheable> evict_for_insert();

  /// Inserts a value for `sender` (must not be cached) as the
  /// most-recently-used entry.
  void insert(NodeId sender, std::unique_ptr<SenderCacheable> value);

  std::size_t size() const noexcept { return index_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  // Intrusive doubly-linked LRU list threaded through a slot vector (no
  // per-touch allocation): slots_[ head_ ] is most recent, slots_[ tail_ ]
  // least. kNil terminates both ends.
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};
  struct Slot {
    NodeId sender = kInvalidNode;
    std::unique_ptr<SenderCacheable> value;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  void unlink(std::uint32_t i);
  void push_front(std::uint32_t i);

  std::size_t capacity_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<NodeId, std::uint32_t> index_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace flash

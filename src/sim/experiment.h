// Multi-seed experiment harness: builds workloads and routers per run,
// averages results, and exposes the scheme set the paper compares (§4.1).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/metrics.h"
#include "sim/simulator.h"
#include "trace/workload.h"

namespace flash {

/// The four schemes of the evaluation.
enum class Scheme { kFlash, kSpider, kSpeedyMurmurs, kShortestPath };

std::string scheme_name(Scheme s);

/// All four, in the paper's legend order.
std::vector<Scheme> all_schemes();

/// Options forwarded to FlashRouter (ignored by the baselines).
struct FlashOptions {
  double mice_quantile = 0.9;  // threshold st. this fraction are mice
  std::size_t k_elephant_paths = 20;
  std::size_t m_mice_paths = 4;
  bool optimize_fees = true;
};

/// Builds a fresh router for a scheme against a workload.
std::unique_ptr<Router> make_router(Scheme scheme, const Workload& workload,
                                    const FlashOptions& opts,
                                    std::uint64_t seed);

/// min / mean / max over runs of a scalar extracted from SimResult.
struct Aggregate {
  double min = 0;
  double mean = 0;
  double max = 0;
};

/// A repeated experiment: same configuration, `runs` different seeds (the
/// workload and the router randomness both vary per run, as in the paper's
/// "average results over 5 runs").
struct RunSeries {
  std::vector<SimResult> runs;

  Aggregate aggregate(const std::function<double(const SimResult&)>& f) const;
  Aggregate success_ratio() const;
  Aggregate success_volume() const;
  Aggregate probe_messages() const;
  Aggregate fee_ratio() const;
};

/// Workload factory: seed -> workload (e.g. bind make_ripple_workload).
using WorkloadFactory = std::function<Workload(std::uint64_t seed)>;

/// Runs `scheme` for `runs` seeds starting at `base_seed`.
RunSeries run_series(const WorkloadFactory& make_workload, Scheme scheme,
                     const FlashOptions& opts, const SimConfig& sim,
                     std::size_t runs, std::uint64_t base_seed = 1);

}  // namespace flash

// Multi-seed experiment harness: builds workloads and routers per run,
// averages results, and exposes the scheme set the paper compares (§4.1).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/metrics.h"
#include "sim/simulator.h"
#include "trace/workload.h"

namespace flash {

/// Defined in routing/flash/flash_router.h; forward-declared so this
/// header stays independent of the router internals.
enum class MiceSelection;

/// The four schemes of the evaluation.
enum class Scheme { kFlash, kSpider, kSpeedyMurmurs, kShortestPath };

/// Scheme name as used in the paper's legends ("Flash", "Spider", ...).
std::string scheme_name(Scheme s);

/// All four, in the paper's legend order.
std::vector<Scheme> all_schemes();

/// Options forwarded to FlashRouter (ignored by the baselines).
struct FlashOptions {
  double mice_quantile = 0.9;  // threshold st. this fraction are mice
  std::size_t k_elephant_paths = 20;
  std::size_t m_mice_paths = 4;
  bool optimize_fees = true;
  /// Mice path-selection strategy. Value-initialized to 0, which is
  /// MiceSelection::kTrialAndError — the paper's design.
  MiceSelection mice_selection{};
  /// Recompute exhausted routing-table entries (churn survival; see
  /// FlashConfig::table_recompute_on_exhaustion). Default off — keeps the
  /// static figure sweeps bit-identical.
  bool table_recompute_on_exhaustion = false;
  /// Explicit mice/elephant classification threshold. 0 (default) derives
  /// it from the workload's mice_quantile — which requires a materialized
  /// trace; streaming runs (whose Workload carries no transactions) set it
  /// directly instead.
  Amount elephant_threshold = 0;
  /// Route-length cap in hops (0 = unlimited), honored by ALL four
  /// schemes — the one FlashOptions knob that is not Flash-specific. The
  /// HTLC scenario engine derives it from the timelock budget
  /// (floor(timelock_budget / timelock_delta)) so no router can lock a
  /// path the sender's timelock cannot cover.
  std::size_t max_route_hops = 0;
};

/// Builds a fresh router for a scheme against a workload. Thread-safe for
/// concurrent calls on *distinct* workloads only: it reads the workload's
/// size quantile, whose memo mutates the (shared-const) Workload — the
/// sweep engine gives every run its own workload. The returned router is
/// NOT thread-safe — give each concurrent simulation its own instance.
std::unique_ptr<Router> make_router(Scheme scheme, const Workload& workload,
                                    const FlashOptions& opts,
                                    std::uint64_t seed);

/// Graph-level variant for routers that live on a node's *local* (possibly
/// stale) topology rather than a workload's ground-truth graph: the
/// scenario engine materializes a per-sender gossip view and builds the
/// scheme's router over it. `elephant_threshold` replaces the workload
/// quantile (views do not know payment sizes); `graph` and `fees` are
/// borrowed and must outlive the router.
std::unique_ptr<Router> make_router(Scheme scheme, const Graph& graph,
                                    const FeeSchedule& fees,
                                    Amount elephant_threshold,
                                    const FlashOptions& opts,
                                    std::uint64_t seed);

/// min / mean / max over runs of a scalar extracted from SimResult.
/// Plain value type; thread-compatible.
struct Aggregate {
  double min = 0;
  double mean = 0;
  double max = 0;
};

/// A repeated experiment: same configuration, `runs` different seeds (the
/// workload and the router randomness both vary per run, as in the paper's
/// "average results over 5 runs").
struct RunSeries {
  std::vector<SimResult> runs;

  /// min/mean/max of f over all runs (all zeros when `runs` is empty).
  Aggregate aggregate(const std::function<double(const SimResult&)>& f) const;
  /// Aggregate of SimResult::success_ratio().
  Aggregate success_ratio() const;
  /// Aggregate of the delivered volume.
  Aggregate success_volume() const;
  /// Aggregate of the probing-message count.
  Aggregate probe_messages() const;
  /// Aggregate of SimResult::fee_ratio().
  Aggregate fee_ratio() const;
  /// Aggregate of the retry count (dynamic scenarios; 0 on static runs).
  Aggregate retries() const;
  /// Aggregate of the staleness-charged failed attempts (dynamic
  /// scenarios; 0 on static runs).
  Aggregate stale_view_failures() const;
};

/// Workload factory: seed -> workload (e.g. bind make_ripple_workload).
/// Must be thread-safe for concurrent calls with distinct seeds — the sweep
/// engine (sim/sweep.h) invokes it from worker threads.
using WorkloadFactory = std::function<Workload(std::uint64_t seed)>;

/// Runs `scheme` for `runs` seeds starting at `base_seed`. Run i uses seed
/// base_seed + i for both the workload and the router. Implemented as a
/// single-cell sequential sweep (sim/sweep.h); the parallel engine is
/// bit-identical to this path by construction.
RunSeries run_series(const WorkloadFactory& make_workload, Scheme scheme,
                     const FlashOptions& opts, const SimConfig& sim,
                     std::size_t runs, std::uint64_t base_seed = 1);

}  // namespace flash

// Dynamic scenario engine: churn, retries, and stale-view routing.
//
// run_simulation (simulator.h) replays payments against a static,
// perfectly-known network. Real offchain networks are nothing like that:
// channels open and close on-chain, topology knowledge spreads through
// gossip with delay, balances drift from background rebalancing, and
// wallets retry failed payments. The ScenarioEngine generalizes the
// simulator into an event-driven loop over timestamped events so those
// dynamics become measurable:
//
//   - *Transaction arrivals* with a configurable retry policy: a failed
//     payment is re-routed (with fresh probing) up to N more times after a
//     backoff delay, during which gossip and churn advance.
//   - *Channel churn*: closes arrive as a Poisson process over the open
//     channels; closed channels optionally reopen after an exponential
//     downtime with their initial deposits (a fresh on-chain funding).
//   - *Gossip propagation delay*: each churn event is announced by the
//     channel's endpoints and floods one hop per `hop_delay` time units
//     through the existing gossip::GossipNetwork.
//   - *Stale-view routing*: each sender routes with a router built over its
//     OWN gossip view (rebuilt lazily when the view changes, §3.3 "all
//     entries are re-computed using the latest G"), against a mirror ledger
//     synced from the live one — probes read live balances (probing is a
//     network operation), but path structure comes from the stale view, so
//     a closed channel the sender has not heard about yet still attracts
//     payments and fails them.
//   - *Background rebalancing*: periodic drift of every open channel's
//     balance split toward even (interval + strength configurable).
//
// Settlement always executes against the ground-truth ledger. With every
// dynamic knob at zero the engine degenerates to exactly run_simulation —
// one shared perfectly-informed router against the truth — and the results
// are pinned bit-identical by tests/scenario_test.cc.
//
// Memory model (Lightning-scale since the streaming refactor):
//   - Transactions arrive through a WorkloadStream and are scheduled
//     lazily, one staged arrival at a time: O(1) workload memory for
//     generated streams of any length.
//   - Gossip views share one bootstrap baseline (see gossip/node_view.h):
//     O(channels) total, not O(nodes x channels).
//   - Per-sender routing state lives in a bounded LRU
//     (ScenarioConfig::max_sender_routers = K): O(network x K), not
//     O(network x senders). K = 0 keeps the original unbounded behavior.
//   - Mirror ledgers resync from the truth via change journals (O(edges
//     actually touched) per payment) instead of full O(network) sweeps.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "gossip/gossip.h"
#include "ledger/network_state.h"
#include "routing/router.h"
#include "sim/experiment.h"
#include "sim/metrics.h"
#include "sim/sender_cache.h"
#include "sim/simulator.h"
#include "trace/workload.h"
#include "trace/workload_stream.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace flash {

/// Failed payments are re-routed up to `max_retries` more times, each
/// `delay` sim-time units after the previous failure. Plain value type.
struct RetryPolicy {
  std::size_t max_retries = 0;
  double delay = 1.0;
};

/// Channel open/close churn, sampled as a Poisson process. Plain value
/// type. One sim-time unit is one transaction inter-arrival for the
/// generated workloads (timestamps are 0, 1, 2, ...).
struct ChurnConfig {
  /// Expected channel closes per sim-time unit (0 disables churn).
  double close_rate = 0;
  /// Mean downtime before a closed channel reopens with its initial
  /// deposit (fresh funding). 0 = closed channels stay closed.
  double mean_downtime = 0;
  /// Seed of the churn/rebalance randomness stream, mixed with the run
  /// seed so dynamics are independent of workload randomness.
  std::uint64_t seed = 0xc4u;
};

/// Periodic background rebalancing: every `interval`, each open channel
/// moves `strength` of the distance between its current split and the even
/// split (channel totals are conserved). Plain value type.
struct RebalanceConfig {
  double interval = 0;  // 0 disables
  double strength = 0.5;
};

/// Gossip propagation timing. Plain value type.
struct GossipTiming {
  /// Sim-time per flooding hop. 0 = announcements reach every node
  /// instantly (views perfectly track the truth; no staleness).
  double hop_delay = 0;
};

/// Time-extended HTLC lifecycle (hold-time-lock-contract semantics).
///
/// With the default config (all zero) payments settle instantly inside the
/// route step, exactly as before — bit-identical, pinned by
/// tests/htlc_lifecycle_test.cc. When active(), a successful route no
/// longer settles instantly: the engine re-stages the router's holds as
/// per-hop HTLCs that lock forward hop by hop (one latency draw per edge),
/// settle by unwinding backward from the receiver, and unwind forward
/// hops on failure — so funds are locked for the full round trip and
/// LATER payments route against the reduced available balances. Plain
/// value type.
struct HtlcConfig {
  /// Mean one-hop forward/backward propagation delay in sim-time units
  /// (per-edge delays are drawn once, uniform in [0.5, 1.5] x this).
  /// 0 = instantaneous hops.
  double hop_latency = 0;
  /// Per-hop timelock decrement: hop k of an n-hop path expires
  /// (n - k) x delta after locking; an expired HTLC aborts the whole
  /// payment and refunds every still-locked hop. 0 = no expiry.
  double timelock_delta = 0;
  /// Sender's total timelock budget. With timelock_delta > 0 this caps
  /// route length at floor(budget / delta) hops, enforced inside ALL four
  /// routers (FlashOptions::max_route_hops) so no scheme can lock a path
  /// the sender's budget cannot cover. 0 = unlimited.
  double timelock_budget = 0;
  /// Fraction of nodes that grief by sitting on settle/fail relays
  /// (holding the HTLC instead of releasing it promptly).
  double holder_fraction = 0;
  /// How long a holder sits on each relay. 0 with holder_fraction > 0
  /// defaults to 0.8 x timelock_delta x path length — long enough to
  /// threaten expiry, the classic griefing attack.
  double holder_delay = 0;
  /// Pick holders among the highest-degree nodes (hub griefing) instead
  /// of uniformly.
  bool holders_prefer_hubs = false;
  /// Fraction of nodes that are offline: an offline forwarding node or
  /// receiver fails the payment in flight (discovered at forward time,
  /// not route time — routers do not know liveness).
  double offline_fraction = 0;
  /// Lock each hop's escrow with downstream fees included (hop k locks
  /// amount + sum of fees of hops k+1..n-1), like Lightning. Off = lock
  /// the bare amount at every hop.
  bool fee_escrow = true;
  /// Seed of the HTLC randomness stream (edge latencies, holder/offline
  /// draws), mixed with the run seed.
  std::uint64_t seed = 0x417cu;

  /// True when any time-extended dynamic is on. timelock_budget alone
  /// does not activate (it is only a route-length cap, which
  /// FlashOptions::max_route_hops already expresses).
  bool active() const noexcept {
    return hop_latency > 0 || timelock_delta > 0 || holder_fraction > 0 ||
           offline_fraction > 0;
  }
};

/// One scheduled channel close (deterministic fault injection): `channel`
/// closes at `close_time` and, when `reopen_after` > 0, reopens with its
/// initial deposit that much later. Plain value type.
struct ChannelFault {
  std::size_t channel = 0;
  double close_time = 0;
  double reopen_after = 0;
};

/// Deterministic, seed-driven adversarial fault injection. Three fault
/// families compose freely (each is off by default):
///
///   - *Coordinated hub outage*: the top `hub_count` nodes by approximate
///     betweenness centrality go offline (fail payments in flight, like
///     HtlcConfig::offline_fraction victims) for
///     [hub_outage_start, hub_outage_start + hub_outage_duration).
///   - *Regional close burst*: at `burst_time`, a BFS ball of up to
///     `burst_channels` open channels around a seeded center closes at
///     once (on-chain resolution for any in-flight HTLCs crossing them);
///     with burst_reopen_after > 0 they all reopen together.
///   - *Congestion collapse*: arrivals inside
///     [congestion_start, congestion_start + congestion_duration) are
///     time-compressed by `congestion_factor` (a factor-f arrival-rate
///     spike), later arrivals shift earlier by the saved time.
///
/// ScenarioResult gains per-fault counters plus degradation metrics
/// (success inside vs. after the fault window, recovery time). Plain value
/// type; inactive() configs are bit-identical to a no-FaultPlan run.
struct FaultPlan {
  /// Number of top-betweenness hub nodes to take offline (0 disables).
  std::size_t hub_count = 0;
  double hub_outage_start = 0;
  double hub_outage_duration = 0;
  /// BFS-pivot sample count for the approximate betweenness ranking
  /// (graph/topology.h approx_betweenness); 0 = exact (all pivots).
  std::size_t hub_betweenness_samples = 32;

  /// Channels to close in the regional burst (0 disables).
  std::size_t burst_channels = 0;
  double burst_time = 0;
  /// Downtime before the burst's channels reopen together. 0 = they stay
  /// closed.
  double burst_reopen_after = 0;

  /// Congestion-collapse ramp: arrival-rate multiplier inside the window
  /// (1 disables; must be >= 1).
  double congestion_factor = 1;
  double congestion_start = 0;
  double congestion_duration = 0;

  /// Explicitly scheduled channel closes (deterministic reproduction of a
  /// specific fault trace; applied in addition to the burst).
  std::vector<ChannelFault> channel_faults;

  /// Seed of the fault randomness stream (hub tie-breaks, burst center),
  /// mixed with the run seed.
  std::uint64_t seed = 0xfa17u;

  bool active() const noexcept {
    return hub_count > 0 || burst_channels > 0 || congestion_factor > 1 ||
           !channel_faults.empty();
  }
};

/// How per-sender routers react to gossip view changes.
enum class RouterMaintenance : std::uint8_t {
  /// Reconstruct the sender's local graph, fees, mirror and router from
  /// scratch on every view change — O(network) per change. The original
  /// behavior and the oracle the differential fuzz harness pins the
  /// incremental modes against.
  kFullRebuild,
  /// Keep one engine-shared full-shape view graph and patch the sender's
  /// open-edge mask for the delta only, then drop ALL router caches and
  /// reseed — O(churned channels) per change, provably bit-identical to
  /// kFullRebuild for every scheme (masked search over the full-shape
  /// graph equals search over the compacted open subgraph; see
  /// docs/ARCHITECTURE.md "Incremental router maintenance").
  kIncrementalStrict,
  /// Patch the mask AND keep router caches, dropping only entries whose
  /// cached paths cross a closed channel; reopens leave entries
  /// stale-but-usable. Cheapest. Identical to the oracle for SP/Spider
  /// under closes-only churn; deterministic but not path-identical for
  /// Flash (dijkstra heap tie-breaks may differ from a fresh table — the
  /// PR 6-style documented caveat).
  kIncrementalLazy,
};

/// How the engine executes the payment stream (the concurrent payment
/// engine; see sim/concurrent.cc and docs/ARCHITECTURE.md).
enum class ScenarioExecution : std::uint8_t {
  /// The classic single-threaded event loop. Default.
  kSequential,
  /// Speculative parallel routing with logical-order settlement. Worker
  /// threads route payments ahead of time on mirror ledgers; the
  /// coordinator settles them in stream order, accepting a speculation iff
  /// every balance it read is still current and re-routing inline
  /// otherwise. Bit-identical (payment digest and all semantic counters)
  /// to kSequential with payment_indexed_rng on, at ANY worker count.
  kReplay,
  /// Maximum-throughput mode: workers commit settlements in completion
  /// order directly to the shared truth under striped channel locks
  /// (sorted stripe acquisition — deadlock-free). Only conservation
  /// invariants are guaranteed; results are deterministic only at
  /// workers == 1. Requires a zero-dynamics, zero-retry config.
  kFreeOrder,
};

/// Concurrent-engine knobs (used when execution != kSequential).
struct ConcurrencyConfig {
  ScenarioExecution execution = ScenarioExecution::kSequential;
  /// Worker threads; 0 = one per hardware thread.
  std::size_t workers = 0;
  /// Replay speculation window (payments routed ahead of settlement) and
  /// free-order dispatch batch. 0 = 8 x workers.
  std::size_t batch = 0;
  /// Free-order commit lock stripes (stripe = channel id mod stripes).
  std::size_t stripes = 64;
  /// Free-order re-route budget after a commit loses its revalidation.
  std::size_t conflict_retries = 8;
  /// Free-order mirror full-refresh period, in payments per worker.
  std::size_t resync_stride = 256;
};

/// Everything dynamic about a scenario. The default-constructed config has
/// every dynamic switched off and reproduces run_simulation bit-for-bit.
struct ScenarioConfig {
  RetryPolicy retry;
  ChurnConfig churn;
  RebalanceConfig rebalance;
  GossipTiming gossip;
  /// Time-extended HTLC lifecycle. Composes with churn, gossip staleness,
  /// and rebalancing (in-flight parts crossing a closed channel resolve
  /// on-chain and fail backward from the break point; rebalance sweeps
  /// skip escrowed channels). Still incompatible with the concurrent
  /// execution modes (validated): those assume instant settlement.
  HtlcConfig htlc;
  /// Deterministic adversarial fault injection (hub outages, close
  /// bursts, congestion ramps). Inactive by default.
  FaultPlan fault;
  /// Concurrent execution (see ScenarioExecution / sim/concurrent.cc).
  ConcurrencyConfig concurrency;
  /// Pin each route attempt's randomness to the payment's logical stream
  /// index (Router::begin_payment) instead of the router's running rng
  /// stream. Forced on by both concurrent modes (their determinism
  /// argument needs route outcomes independent of which payments a router
  /// instance served before); off by default so sequential results stay
  /// bit-identical to the pinned historical streams. A sequential run with
  /// this on is the replay mode's equality oracle.
  bool payment_indexed_rng = false;
  /// Cap on live per-sender stale-view routers (LRU-evicted beyond; see
  /// sim/sender_cache.h). 0 = unbounded — one router per sender forever,
  /// the original behavior, bit-identical. Evicted senders rebuild on
  /// their next payment, so any K > 0 trades rebuild work for memory.
  std::size_t max_sender_routers = 0;
  /// View-change reaction (see RouterMaintenance). Defaults to the full
  /// rebuild so existing pinned results stay bit-identical; schemes whose
  /// router cannot mask edges (SpeedyMurmurs) silently fall back to it.
  RouterMaintenance maintenance = RouterMaintenance::kFullRebuild;
};

/// Simulation metrics plus scenario-level counters.
struct ScenarioResult {
  /// Per-payment metrics; includes the dynamic counters (retries,
  /// retry_successes, stale_view_failures, time_to_success_total).
  SimResult sim;
  std::size_t channels_closed = 0;
  std::size_t channels_reopened = 0;
  std::size_t rebalance_events = 0;
  /// Flooding rounds and messages spent on churn announcements (bootstrap
  /// knowledge is seeded without messages and not counted).
  std::size_t gossip_rounds = 0;
  std::uint64_t gossip_messages = 0;
  /// Stale-view router (re)builds: one per sender whose view changed since
  /// its last payment (plus its first payment after churn begins, and one
  /// per cache-evicted sender's return). Under incremental maintenance
  /// only first builds and cache-evicted returns count here; view changes
  /// on live contexts land in router_patches instead.
  std::size_t router_rebuilds = 0;
  /// Incremental O(delta) view patches applied to live sender contexts
  /// (mask update + router delta) in place of full rebuilds.
  std::size_t router_patches = 0;
  /// Router cache entries dropped by those patches (affected-set
  /// invalidation in lazy mode; whole-cache clears in strict mode).
  std::size_t entries_invalidated = 0;
  /// Order-sensitive fold of every settled payment's outcome (success,
  /// amount delivered, fee, probe counts, attempt, settle time) in completion
  /// order, plus a final fold of the ground-truth ledger. Two runs agree
  /// on this iff they agree payment-for-payment and balance-for-balance —
  /// the differential fuzz harness's event-level equality pin.
  std::uint64_t payment_digest = 0;
  /// Sender-router cache traffic (see ScenarioConfig::max_sender_routers);
  /// all zero while the scenario stays pristine (no churn yet).
  std::uint64_t router_cache_hits = 0;
  std::uint64_t router_cache_misses = 0;
  std::uint64_t router_cache_evictions = 0;
  /// Sim-time at which the last payment settled or finally failed.
  double duration = 0;

  // --- HTLC lifecycle counters (all zero unless ScenarioConfig::htlc is
  // active; see HtlcConfig). ---

  /// Successful routes that entered the timed in-flight lifecycle (counts
  /// attempts, so a payment retried through the lifecycle counts once per
  /// in-flight attempt).
  std::size_t htlc_payments = 0;
  /// In-flight lock failures: a forward hop (or an escrow re-lock at the
  /// sender) found insufficient balance because CONCURRENT in-flight
  /// HTLCs hold the funds — the contention the instant-settlement model
  /// cannot express.
  std::size_t htlc_inflight_failures = 0;
  /// HTLCs that hit their timelock and were force-refunded.
  std::size_t htlc_expiries = 0;
  /// Payments failed by an offline forwarding node or receiver.
  std::size_t htlc_offline_failures = 0;
  /// Settle/fail relays a holder node sat on (griefing delay applied).
  std::size_t htlc_holder_delays = 0;
  /// Peak number of payments simultaneously in flight.
  std::size_t htlc_max_inflight = 0;

  // --- HTLC x dynamics counters (all zero unless htlc composes with
  // churn/rebalance/faults). ---

  /// Hops force-SETTLED on-chain by a channel close (the hold was already
  /// settling: its preimage is public, the downstream party claims).
  std::size_t htlc_onchain_settled_hops = 0;
  /// Hops force-REFUNDED on-chain by a channel close (no preimage yet:
  /// the HTLC output times out back to the sender side).
  std::size_t htlc_onchain_refunded_hops = 0;
  /// In-flight payments failed because a channel under one of their
  /// still-locked hops closed (break-point unwind).
  std::size_t htlc_break_failures = 0;
  /// Open channels a rebalance sweep left untouched because in-flight
  /// HTLC escrow locked part of their deposit.
  std::size_t rebalance_skipped_channels = 0;

  // --- Fault-injection counters and degradation metrics (all zero unless
  // ScenarioConfig::fault is active; see FaultPlan). ---

  /// Hub nodes actually taken offline by the coordinated outage.
  std::size_t fault_hub_outages = 0;
  /// Channels closed by the burst + scheduled channel faults (also
  /// counted in channels_closed).
  std::size_t fault_channel_closes = 0;
  /// Arrivals time-compressed by the congestion window.
  std::size_t fault_congestion_arrivals = 0;
  /// Payments that ARRIVED inside any fault window, and how many of them
  /// succeeded — the degradation numerator/denominator.
  std::size_t fault_window_payments = 0;
  std::size_t fault_window_successes = 0;
  /// Payments that arrived after the last fault window ended — the
  /// recovery numerator/denominator.
  std::size_t post_fault_payments = 0;
  std::size_t post_fault_successes = 0;
  /// Sim-time from the last fault window's end to the first post-window
  /// success (0 when no post-window payment succeeded).
  double fault_recovery_time = 0;

  // --- Concurrent-engine diagnostics (all zero for sequential runs;
  // EXCLUDED from payment_digest and from the replay-vs-sequential
  // equality contract — wall-clock latency and scheduling luck are not
  // semantic). ---

  /// Wall-clock per-payment service latency (first route start to final
  /// settlement), summarized from a log-binned histogram
  /// (util/histogram.h).
  struct LatencySummary {
    std::uint64_t count = 0;
    double mean_seconds = 0;
    double p50_seconds = 0;
    double p99_seconds = 0;
    double max_seconds = 0;
  };
  LatencySummary latency;
  /// SIM-TIME per-payment service latency under the HTLC lifecycle: first
  /// lock to final settle/refund, per in-flight attempt. Zero (count 0)
  /// unless ScenarioConfig::htlc is active — instant settlement has no
  /// sim-time extent. Unlike `latency` this is semantic and deterministic,
  /// but it stays out of payment_digest so the zero-config digest pin is
  /// unaffected.
  LatencySummary sim_latency;
  /// Worker threads the run actually used (1 for sequential).
  std::size_t workers_used = 1;
  /// Replay: speculative routes settled as-is / re-routed inline because a
  /// balance they read changed before their turn.
  std::uint64_t spec_accepted = 0;
  std::uint64_t spec_rerouted = 0;
  /// Free-order: commits that lost their striped-lock revalidation.
  std::uint64_t commit_conflicts = 0;
};

/// The event-driven scenario simulator. Single-use: construct, run() once,
/// read the result. NOT thread-safe — like routers, each concurrent run
/// owns its own engine (the sweep engine builds one per (cell, run)).
/// `workload` is borrowed and must outlive the engine.
///
/// Timeline semantics: payment i arrives at max(timestamp_i, previous
/// arrival) — arrival order is always the trace order, exactly like
/// run_simulation (all generated workloads already have non-decreasing
/// timestamps, so this is only a guard for odd external traces). Same-time
/// events execute in scheduling order.
class ScenarioEngine {
 public:
  /// Validates the config (throws std::invalid_argument on negative rates,
  /// delays, intervals, or strength outside [0, 1]). Payments replay the
  /// workload's materialized transaction vector.
  ScenarioEngine(const Workload& workload, Scheme scheme,
                 const FlashOptions& opts, const SimConfig& sim,
                 const ScenarioConfig& scenario, std::uint64_t seed);

  /// Streaming variant: payments come from `stream` (borrowed; must
  /// outlive the engine), consumed lazily one arrival at a time — O(1)
  /// workload memory regardless of stream length. `workload` supplies
  /// topology, balances, and fees and may carry an empty transaction
  /// vector; set SimConfig::class_threshold and
  /// FlashOptions::elephant_threshold explicitly in that case (an empty
  /// trace has no size quantiles).
  ScenarioEngine(const Workload& workload, WorkloadStream& stream,
                 Scheme scheme, const FlashOptions& opts,
                 const SimConfig& sim, const ScenarioConfig& scenario,
                 std::uint64_t seed);
  ~ScenarioEngine();

  ScenarioEngine(const ScenarioEngine&) = delete;
  ScenarioEngine& operator=(const ScenarioEngine&) = delete;

  /// Runs every payment to settlement or final failure. Throws
  /// std::logic_error if the ledger invariant breaks (checked on the
  /// SimConfig::invariant_stride, against the ground truth).
  ScenarioResult run();

 private:
  // The per-sender stale routing state: the sender's materialized view
  // graph, the fee schedule and router over it, a mirror ledger synced
  // from the truth before every payment, and the view-edge -> truth-edge
  // map used to mirror settlement back. Heap-allocated so the Graph (and
  // everything pointing into it) has a stable address.
  struct SenderContext;

  /// Delegation target of both public constructors: a non-null
  /// `owned_stream` is adopted (vector ctor), otherwise the public stream
  /// ctor assigns the borrowed stream afterwards.
  ScenarioEngine(const Workload& workload, Scheme scheme,
                 const FlashOptions& opts, const SimConfig& sim,
                 const ScenarioConfig& scenario, std::uint64_t seed,
                 std::unique_ptr<WorkloadStream> owned_stream);

  enum class EventType : std::uint8_t {
    kArrival,    // a = transaction index
    kRetry,      // a = transaction index, b = attempt number (1-based)
    kClose,      // churn: close a random open channel, schedule the next
    kReopen,     // a = channel index
    kGossipHop,  // flood pending announcements one hop
    kRebalance,  // drift every open channel toward the even split
    // HTLC lifecycle events (a = part slot, b = generation<<kHopBits |
    // hop; stale generations are dropped — an aborted part orphans its
    // queued events instead of cancelling them).
    kHopForward,      // lock hop b at the part, or arrival when b == path size
    kSettleBackward,  // settle hop b and relay the preimage downstream
    kFailBackward,    // refund hop b and relay the error downstream
    kHtlcExpiry,      // timelock hit: force-refund the whole part
    // Fault-injection events (see FaultPlan).
    kHubOutageStart,  // top-k betweenness hubs go offline
    kHubOutageEnd,    // ... and come back
    kFaultBurst,      // regional close burst around a seeded center
    kFaultClose,      // a = index into cfg_.fault.channel_faults
  };
  struct Event {
    double time = 0;
    std::uint64_t seq = 0;  // FIFO tie-break: scheduling order
    EventType type = EventType::kArrival;
    std::size_t a = 0;
    std::size_t b = 0;
  };
  struct EventAfter {
    bool operator()(const Event& x, const Event& y) const {
      return x.time != y.time ? x.time > y.time : x.seq > y.seq;
    }
  };
  // Attempt bookkeeping for payments in flight (from arrival until final
  // settlement/failure). Carries the transaction itself: with a streaming
  // source there is no materialized vector to re-read it from on retries.
  struct PendingPayment {
    Transaction tx;
    std::uint64_t probe_messages = 0;
    std::uint32_t probes = 0;
    /// Wall-clock start of the first route attempt (replay backdates it to
    /// the speculation's route start). Feeds ScenarioResult::latency.
    std::chrono::steady_clock::time_point started{};
    /// Sim-time of the payment's arrival: classifies its final outcome
    /// into the fault-window / post-fault degradation buckets.
    double arrival_time = 0;
  };

  // --- HTLC lifecycle state (used only when cfg_.htlc.active()) ----------
  //
  // A *part* is one HTLC of a payment (one routed path, or one netted
  // elephant flow). Parts live in a recycled slot arena; every queued
  // event carries the slot's generation so freeing a slot orphans the
  // slot's outstanding events.

  enum class PartState : std::uint8_t {
    kForwarding,  // locking hops toward the receiver
    kArrived,     // reached the receiver, waiting for sibling parts (AMP)
    kSettling,    // unwinding backward, committing hop by hop
    kFailing,     // unwinding backward, refunding hop by hop
  };
  struct HtlcPart {
    std::uint64_t gen = 0;  // bumped on alloc AND free (event orphaning)
    bool in_use = false;
    bool flow = false;  // netted elephant flow: one aggregate timed phase
    bool flow_blocked = false;  // flow traverses an offline node
    PartState state = PartState::kForwarding;
    std::size_t tx_index = 0;
    HoldId hold = 0;
    std::vector<EdgeId> path;        // hop edges sender -> receiver
    std::vector<Amount> lock_amount; // escrow per hop (amount + dnstr fees)
    std::size_t hops_locked = 0;     // prefix of `path` currently locked
    std::size_t hop_count = 0;       // n (flows: equivalent path length)
    double unit_latency = 0;         // flows: one-way traverse time
  };
  // Per-payment in-flight bookkeeping (alive from begin_htlc until the
  // last part is done; keyed by transaction index like pending_).
  struct InFlight {
    std::size_t attempt = 0;
    std::size_t parts = 0;
    std::size_t arrived = 0;
    std::size_t done = 0;
    bool failed = false;
    double lock_start = 0;
    RouteResult route;  // the accepted route (reported iff not failed)
    std::vector<std::size_t> slots;
  };
  static constexpr std::size_t kHopBits = 20;

  void setup_htlc();
  void begin_htlc(std::size_t tx_index, std::size_t attempt,
                  const RouteResult& r);
  void begin_part(std::size_t tx_index, const Transaction& tx,
                  const std::vector<EdgeId>& edges,
                  const std::vector<Amount>& amounts);
  void conclude_attempt(std::size_t tx_index, std::size_t attempt,
                        const Transaction& tx, const RouteResult& r,
                        bool diverged);
  void handle_hop_forward(std::size_t slot, std::size_t enc);
  void handle_settle_backward(std::size_t slot, std::size_t enc);
  void handle_fail_backward(std::size_t slot, std::size_t enc);
  void handle_htlc_expiry(std::size_t slot, std::size_t enc);
  void start_settlement(std::size_t tx_index);
  void fail_htlc_payment(std::size_t tx_index);
  void begin_fail_unwind(std::size_t slot);
  void part_done(std::size_t slot);
  void conclude_htlc(std::size_t tx_index);
  /// Null if the (slot, encoded gen) pair no longer names a live part.
  HtlcPart* live_part(std::size_t slot, std::size_t enc);
  std::size_t alloc_part();
  void schedule_part(double delay, EventType type, std::size_t slot,
                     std::size_t hop);
  /// Griefing delay if `node` is a holder relaying for part `p` (counts
  /// the event), else 0.
  double relay_delay(NodeId node, const HtlcPart& p);
  void note_sim_latency(double t);

  void schedule(double time, EventType type, std::size_t a = 0,
                std::size_t b = 0);
  void stage_next_arrival();
  void attempt_payment(std::size_t tx_index, std::size_t attempt);
  /// Stages the router's holds (abort on `ledger`, remember edges/amounts
  /// in staged_edges_/staged_amounts_, translating view edges to physical
  /// through `to_phys` when routing happened on a mirror) for begin_htlc
  /// to re-lock hop by hop on the truth.
  void stage_htlc_parts(NetworkState& ledger,
                        const std::vector<EdgeId>* to_phys);
  void finish_payment(const Transaction& tx, const RouteResult& final_attempt,
                      std::size_t attempt, const PendingPayment& totals);
  void handle_close();
  /// Closes channel `c` now (ledger zeroing, on-chain HTLC resolution,
  /// open bookkeeping, gossip announcement). False if already closed.
  bool close_channel_now(std::size_t c);
  /// Forces every in-flight HTLC hop crossing `channel` to its on-chain
  /// resolution and fails the affected payments backward from the break
  /// point (see docs/ARCHITECTURE.md "HTLC x dynamics").
  void resolve_htlcs_on_close(std::size_t channel);
  /// Replays the truth ledger's change journal into the mirror-sync
  /// journal (HTLC hop events write the truth between payments; without
  /// this, stale mirrors would miss those writes).
  void drain_truth_log();
  void handle_reopen(std::size_t channel);
  void handle_hub_outage(bool start);
  void handle_fault_burst();
  void handle_fault_close(std::size_t index);
  /// Registers [start, end) as a fault window for the degradation
  /// metrics.
  void note_fault_window(double start, double end);
  void handle_gossip_hop();
  void handle_rebalance();
  void flush_gossip_or_schedule_hop();
  SenderContext& context_for(NodeId sender);
  void rebuild_context(SenderContext& ctx, NodeId sender);
  void build_incremental_context(SenderContext& ctx, NodeId sender);
  void patch_context(SenderContext& ctx, NodeId sender);
  std::uint64_t context_router_seed(NodeId sender) const;
  void sync_context(SenderContext& ctx);
  void record_truth_change(EdgeId physical_edge);
  bool view_diverged(SenderContext& ctx, NodeId sender);
  void check_invariants_if_due();

  // --- Concurrent execution (defined in sim/concurrent.cc) ---------------
  //
  // ConcurrentRuntime owns the worker pool, per-worker routers/mirrors,
  // the speculation frame ring, and the truth-write replay log. The
  // sequential event loop stays the single source of ordering truth:
  // replay mode only swaps the route step of pristine first attempts for
  // "consume the speculation frame (or re-route inline)".

  struct ConcurrentRuntime;
  /// Out-of-line deleter (sim/concurrent.cc) so TUs that construct or
  /// destroy a ScenarioEngine need not see ConcurrentRuntime's definition.
  struct ConcurrentRuntimeDeleter {
    void operator()(ConcurrentRuntime* rt) const;
  };
  /// Spawns workers and pre-dispatch state for kReplay; forces
  /// payment_indexed_rng on.
  void begin_replay();
  /// Drains and joins the replay pipeline (idempotent; dtor-safe).
  void end_replay();
  /// Dispatches further speculation batches while the window has room.
  void replay_pump();
  /// Route step under replay: consume the frame for (tx_index, attempt 0)
  /// if its readset is still current, otherwise re-route inline on the
  /// owning worker's router. Retries always route inline.
  RouteResult replay_route(std::size_t tx_index, std::size_t attempt);
  /// Parks the pipeline: permanent on churn (speculation ends for good;
  /// the non-pristine stale-view path takes over), temporary around a
  /// rebalance (all in-flight speculations are rolled back and re-routed).
  void replay_quiesce(bool permanent);
  /// After a rebalance rewrote the truth wholesale: publishes every edge
  /// through the replay log so worker mirrors converge on their next sync.
  void replay_publish_all_edges();
  /// Arrival staging via the dispatch read-ahead buffer (replay reads the
  /// stream ahead of staging; both must see the same transactions).
  bool preread_pop(Transaction& tx);
  /// The free-order engine: no event loop, workers commit under striped
  /// locks. Requires zero dynamics and zero retries (validated).
  ScenarioResult run_free_order();
  /// Per-(payment index, attempt) rng seed for Router::begin_payment.
  std::uint64_t payment_rng_seed(std::size_t tx_index,
                                 std::size_t attempt) const;
  void note_latency(double seconds);
  void finalize_latency();

  const Workload* workload_;
  WorkloadStream* stream_;                        // arrival source
  std::unique_ptr<WorkloadStream> owned_stream_;  // vector-ctor adapter
  Scheme scheme_;
  FlashOptions opts_;
  SimConfig sim_;
  ScenarioConfig cfg_;
  std::uint64_t seed_;

  NetworkState truth_;
  std::vector<Amount> initial_balance_;  // scaled; reopen deposits
  Amount class_threshold_ = 0;           // mice/elephant metric split
  Amount elephant_threshold_ = 0;        // Flash classification
  std::unique_ptr<Router> base_router_;  // pristine-mode shared router

  gossip::GossipNetwork gossip_;
  std::vector<std::uint64_t> channel_seq_;   // per-channel announcement seq
  std::vector<char> open_;                   // truth open flag per channel
  std::vector<std::size_t> open_list_;       // open channels (unordered)
  // Truth channels sorted ascending by their normalized (u, v) pair — the
  // exact order NodeView::for_each_open emits — so rebuild_context maps
  // view channels to truth channels with one merge cursor instead of a
  // hash lookup per channel per rebuild. Built once per engine.
  std::vector<std::pair<NodeId, NodeId>> sorted_pairs_;
  std::vector<std::size_t> sorted_channels_;
  std::uint64_t truth_version_ = 0;          // bumped per churn event
  bool pristine_ = true;                     // no churn happened yet
  bool hop_scheduled_ = false;
  Rng dyn_rng_;

  // Truth-ledger change journal: every post-pristine balance write to the
  // truth (mirror-backs, closes, reopens) appends the edge here, so sender
  // mirrors resync by replaying only the suffix they have not seen
  // (SenderContext::journal_pos). A full rewrite (rebalance drift) or a
  // journal grown past ~4x the edge count bumps the generation instead,
  // forcing affected mirrors through one full resync.
  std::vector<EdgeId> truth_journal_;
  std::uint64_t journal_gen_ = 1;
  // Channels that ever churned — the only ones a view can disagree with
  // the truth about (bootstrap seeds every view open; see view_diverged).
  std::vector<char> ever_churned_;
  std::vector<std::size_t> churned_list_;

  // Incremental maintenance (cfg_.maintenance != kFullRebuild and the
  // scheme's router supports masking): every sender's view is a subset of
  // the truth channel set, so all senders share ONE immutable full-shape
  // "view graph" (every truth channel, added in the sorted (u, v) order
  // for_each_open emits) with per-sender open-edge masks. The fee schedule
  // and the view-edge <-> truth-edge maps are identical across senders and
  // shared too; per-sender state shrinks to mask + mirror + router.
  bool incremental_ = false;
  Graph view_graph_;
  FeeSchedule view_fees_;
  std::vector<EdgeId> view_to_physical_;          // view edge -> truth edge
  std::vector<std::uint32_t> view_phys_to_local_; // truth edge -> view edge+1
  std::vector<std::size_t> truth_to_view_channel_;
  std::vector<EdgeId> closed_buf_, reopened_buf_; // patch delta scratch

  SenderRouterCache contexts_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::uint64_t event_seq_ = 0;
  std::unordered_map<std::size_t, PendingPayment> pending_;
  std::size_t next_arrival_ = 0;      // index of the next stream payment
  double prev_arrival_time_ = 0;      // arrival-time monotonicity clamp
  Transaction staged_tx_;             // payment of the staged arrival event
  std::size_t outstanding_ = 0;  // payments not yet settled/failed
  std::size_t completed_ = 0;    // drives the invariant stride
  double now_ = 0;
  std::vector<Amount> drift_buf_;
  ScenarioResult result_;
  bool ran_ = false;

  // Concurrent execution (null unless cfg_.concurrency selects kReplay).
  std::unique_ptr<ConcurrentRuntime, ConcurrentRuntimeDeleter> concurrent_;
  LogHistogram latency_hist_{1e-8, 1e3, 8};
  double latency_sum_ = 0;
  double latency_max_ = 0;

  // --- Fault injection (see FaultPlan; all empty when inactive) ----------
  Rng fault_rng_;
  std::vector<NodeId> fault_hubs_;          // top-k betweenness targets
  std::vector<char> hub_offline_saved_;     // pre-outage node_offline_ bits
  std::vector<std::pair<double, double>> fault_windows_;  // [start, end)
  double fault_window_end_ = 0;  // max end over all windows
  bool recovery_noted_ = false;
  std::vector<char> held_buf_;  // rebalance escrow-skip scratch

  // --- HTLC lifecycle (see setup_htlc; all empty when inactive) ----------
  bool htlc_active_ = false;
  bool closes_possible_ = false;  // churn or fault plan can close channels
  bool track_htlc_truth_ = false;  // drain truth change log for mirrors
  std::vector<std::vector<EdgeId>> staged_edges_;  // stage_htlc_parts
  std::vector<std::vector<Amount>> staged_amounts_;  // scratch, per part
  std::vector<std::pair<std::size_t, std::size_t>> close_hits_;  // slot, hop
  std::vector<double> edge_latency_;  // per truth edge, drawn once
  std::vector<char> node_offline_;
  std::vector<char> node_holder_;
  std::vector<HtlcPart> parts_;
  std::vector<std::size_t> free_parts_;
  std::unordered_map<std::size_t, InFlight> inflight_;
  std::vector<HoldId> deferred_buf_;  // take_deferred_commits scratch
  std::size_t htlc_open_holds_ = 0;   // live HTLC holds on the truth
  LogHistogram sim_latency_hist_{1e-6, 1e9, 4};
  double sim_latency_sum_ = 0;
  double sim_latency_max_ = 0;
};

/// Convenience wrapper: builds a ScenarioEngine and runs it. Seeding
/// matches the sweep engine: `seed` drives the router exactly as
/// make_router does in run_series/run_sweep, so a zero-dynamics scenario
/// reproduces the corresponding run_simulation run bit-identically.
/// Thread-compatible under the sweep engine's rules: concurrent calls must
/// not share the workload.
ScenarioResult run_scenario(const Workload& workload, Scheme scheme,
                            const FlashOptions& opts, const SimConfig& sim,
                            const ScenarioConfig& scenario,
                            std::uint64_t seed);

}  // namespace flash

// Metrics collected by the payment simulator.
//
// The paper's primary metrics (§4.1): success ratio, success volume, and
// number of probing messages; plus fees (Fig. 9) and per-class (mice /
// elephant) breakdowns (Figs. 10-11).
#pragma once

#include <cstdint>

#include "graph/types.h"
#include "routing/router.h"

namespace flash {

/// Plain value type: counters accumulated over one simulated run. Freely
/// copyable/assignable across threads (the sweep engine writes each run's
/// result into a pre-sized slot from a worker thread).
struct SimResult {
  std::size_t transactions = 0;
  std::size_t successes = 0;
  Amount volume_attempted = 0;
  Amount volume_succeeded = 0;
  Amount fees_paid = 0;
  std::uint64_t probe_messages = 0;
  std::uint64_t probes = 0;

  // Per-class breakdown. Classification is by the workload's elephant
  // threshold so that baselines (which do not differentiate) can still be
  // compared class-by-class.
  std::size_t mice_transactions = 0;
  std::size_t mice_successes = 0;
  Amount mice_volume_succeeded = 0;
  std::uint64_t mice_probe_messages = 0;
  std::size_t elephant_transactions = 0;
  std::size_t elephant_successes = 0;
  Amount elephant_volume_succeeded = 0;
  std::uint64_t elephant_probe_messages = 0;

  // Dynamic-scenario counters (sim/scenario.h). Always zero on the static
  // run_simulation path, so the zero-dynamics ScenarioEngine stays
  // field-for-field identical to it.
  /// Re-route attempts beyond each payment's first try.
  std::size_t retries = 0;
  /// Payments that failed on the first attempt but succeeded on a retry.
  std::size_t retry_successes = 0;
  /// Failed attempts made while the sender's believed open-channel set
  /// differed from the live topology (the staleness cost of gossip delay).
  std::size_t stale_view_failures = 0;
  /// Sum over successful payments of (settle time - arrival time); nonzero
  /// only when retries defer settlement.
  double time_to_success_total = 0;

  double success_ratio() const {
    return transactions ? static_cast<double>(successes) /
                              static_cast<double>(transactions)
                        : 0.0;
  }
  double mice_success_ratio() const {
    return mice_transactions ? static_cast<double>(mice_successes) /
                                   static_cast<double>(mice_transactions)
                             : 0.0;
  }
  double elephant_success_ratio() const {
    return elephant_transactions
               ? static_cast<double>(elephant_successes) /
                     static_cast<double>(elephant_transactions)
               : 0.0;
  }
  /// Unit fee: total fees over total delivered volume (Fig. 9's
  /// "ratio of transaction fees to volume").
  double fee_ratio() const {
    return volume_succeeded > 0 ? static_cast<double>(fees_paid) /
                                      static_cast<double>(volume_succeeded)
                                : 0.0;
  }
  /// Mean settle latency of successful payments in simulated time units
  /// (0 when nothing succeeded, or when no retry policy deferred anything).
  double mean_time_to_success() const {
    return successes ? time_to_success_total / static_cast<double>(successes)
                     : 0.0;
  }

  /// Folds one routed payment into the counters; `counts_as_mouse` selects
  /// the per-class bucket.
  void add(const Transaction& tx, const RouteResult& r, bool counts_as_mouse);
};

}  // namespace flash

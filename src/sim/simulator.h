// Sequential payment simulator (paper §4.1).
//
// Payments arrive at their senders one at a time; each is routed against
// the live ledger, mutating channel balances on success. The simulator
// checks ledger invariants as it goes (cheaply, on a stride) so that any
// conservation bug in a router fails loudly rather than skewing results.
#pragma once

#include <functional>

#include "sim/metrics.h"
#include "trace/workload.h"
#include "trace/workload_stream.h"

namespace flash {

struct SimConfig {
  /// Channel capacity multiplier (x-axis of Fig. 6).
  double capacity_scale = 1.0;
  /// Size threshold used to *report* per-class metrics. 0 = use the
  /// workload's 90th percentile.
  Amount class_threshold = 0;
  /// Verify ledger invariants every N transactions (0 disables).
  std::size_t invariant_stride = 256;
};

/// Runs the whole workload through `router` on a fresh ledger.
/// Throws std::logic_error if the ledger invariant breaks.
/// Thread-compatible: concurrent calls are safe iff they share no arguments
/// — the sweep engine (sim/sweep.h) gives every run its own workload and
/// router. A single call mutates `router`, its own ledger, and the
/// workload's size-quantile memo (so the workload must not be shared
/// either).
SimResult run_simulation(const Workload& workload, Router& router,
                         const SimConfig& config = {});

/// Progress-observing variant (cb(tx_index, result) after each payment).
/// The observer runs on the calling thread, between payments.
using SimObserver =
    std::function<void(std::size_t, const Transaction&, const RouteResult&)>;
SimResult run_simulation(const Workload& workload, Router& router,
                         const SimConfig& config, const SimObserver& observer);

/// Streaming variant: transactions come from `stream` (consumed once, in
/// order, O(1) workload memory); `workload` supplies only topology,
/// balances, and fees and may carry an empty transaction vector. The
/// materialized overloads above are thin wrappers over this one via
/// VectorWorkloadStream. Note the class threshold: with an empty trace
/// size_quantile(0.9) is 0, so streaming callers set
/// SimConfig::class_threshold explicitly for per-class metrics.
SimResult run_simulation(const Workload& workload, WorkloadStream& stream,
                         Router& router, const SimConfig& config = {},
                         const SimObserver& observer = {});

}  // namespace flash

#include "sim/sender_cache.h"

#include <cassert>
#include <utility>

namespace flash {

void SenderRouterCache::unlink(std::uint32_t i) {
  Slot& s = slots_[i];
  if (s.prev != kNil) {
    slots_[s.prev].next = s.next;
  } else {
    head_ = s.next;
  }
  if (s.next != kNil) {
    slots_[s.next].prev = s.prev;
  } else {
    tail_ = s.prev;
  }
  s.prev = s.next = kNil;
}

void SenderRouterCache::push_front(std::uint32_t i) {
  Slot& s = slots_[i];
  s.prev = kNil;
  s.next = head_;
  if (head_ != kNil) slots_[head_].prev = i;
  head_ = i;
  if (tail_ == kNil) tail_ = i;
}

SenderCacheable* SenderRouterCache::find(NodeId sender) {
  const auto it = index_.find(sender);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  const std::uint32_t i = it->second;
  if (i != head_) {
    unlink(i);
    push_front(i);
  }
  return slots_[i].value.get();
}

std::unique_ptr<SenderCacheable> SenderRouterCache::evict_for_insert() {
  if (capacity_ == 0 || index_.size() < capacity_ || tail_ == kNil) {
    return nullptr;
  }
  const std::uint32_t i = tail_;
  unlink(i);
  index_.erase(slots_[i].sender);
  slots_[i].sender = kInvalidNode;
  free_slots_.push_back(i);
  ++evictions_;
  return std::move(slots_[i].value);
}

void SenderRouterCache::insert(NodeId sender,
                               std::unique_ptr<SenderCacheable> value) {
  assert(index_.find(sender) == index_.end());
  std::uint32_t i;
  if (!free_slots_.empty()) {
    i = free_slots_.back();
    free_slots_.pop_back();
  } else {
    i = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[i];
  s.sender = sender;
  s.value = std::move(value);
  push_front(i);
  index_.emplace(sender, i);
}

}  // namespace flash

#include "sim/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <ostream>
#include <utility>

#include "util/thread_pool.h"

namespace flash {

namespace {

/// One schedulable unit: run `run` of grid cell `cell`.
struct Unit {
  std::size_t cell = 0;
  std::size_t run = 0;
};

SimResult run_one(const SweepCell& cell, std::size_t run) {
  const std::uint64_t seed = cell.base_seed + run;
  const Workload workload = cell.factory(seed);
  if (cell.scenario) {
    return run_scenario(workload, cell.scheme, cell.flash, cell.sim,
                        *cell.scenario, seed)
        .sim;
  }
  const auto router = make_router(cell.scheme, workload, cell.flash, seed);
  return run_simulation(workload, *router, cell.sim);
}

void json_escape(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void json_aggregate(std::ostream& out, const char* name, const Aggregate& a) {
  out << '"' << name << "\": {\"min\": " << a.min << ", \"mean\": " << a.mean
      << ", \"max\": " << a.max << '}';
}

}  // namespace

SweepResult run_sweep(const std::vector<SweepCell>& grid,
                      const SweepOptions& opts) {
  const auto start = std::chrono::steady_clock::now();

  SweepResult result;
  result.cells.resize(grid.size());

  // Flatten the grid into (cell, run) units; each is an independent
  // simulation whose result lands in a pre-sized slot, so completion order
  // cannot affect the output.
  std::vector<Unit> units;
  for (std::size_t c = 0; c < grid.size(); ++c) {
    result.cells[c].runs.resize(grid[c].runs);
    for (std::size_t r = 0; r < grid[c].runs; ++r) units.push_back({c, r});
  }

  // Cap the pool at the unit count: spawning workers that can never claim
  // a unit would only skew the threads_used perf record.
  const std::size_t requested =
      opts.threads > 0 ? opts.threads : ThreadPool::hardware_threads();
  const std::size_t threads =
      std::min(requested, std::max<std::size_t>(units.size(), 1));
  result.threads_used = threads;
  if (threads == 1) {
    // True sequential path: run on the calling thread, no pool. This is
    // the reference the parallel path is tested to be bit-identical to.
    // Same exception contract as parallel_for: remaining units still run,
    // the first captured exception is rethrown at the end.
    std::exception_ptr error;
    for (const Unit& u : units) {
      try {
        result.cells[u.cell].runs[u.run] = run_one(grid[u.cell], u.run);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
  } else {
    ThreadPool pool(threads);
    parallel_for(pool, units.size(), [&](std::size_t i) {
      const Unit u = units[i];
      result.cells[u.cell].runs[u.run] = run_one(grid[u.cell], u.run);
    });
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

void write_sweep_json(std::ostream& out, const std::string& bench,
                      const std::vector<SweepCell>& grid,
                      const SweepResult& result) {
  const std::streamsize saved_precision = out.precision(12);
  out << "{\n  \"bench\": \"";
  json_escape(out, bench);
  out << "\",\n  \"threads\": " << result.threads_used
      << ",\n  \"wall_seconds\": " << result.wall_seconds
      << ",\n  \"cells\": [";
  const RunSeries empty;
  for (std::size_t c = 0; c < grid.size(); ++c) {
    const SweepCell& cell = grid[c];
    const RunSeries& series =
        c < result.cells.size() ? result.cells[c] : empty;
    out << (c ? ",\n" : "\n") << "    {\"label\": \"";
    json_escape(out, cell.label);
    out << "\", \"scheme\": \"" << scheme_name(cell.scheme)
        << "\", \"runs\": " << series.runs.size()
        << ", \"base_seed\": " << cell.base_seed << ",\n     ";
    json_aggregate(out, "success_ratio", series.success_ratio());
    out << ", ";
    json_aggregate(out, "success_volume", series.success_volume());
    out << ",\n     ";
    json_aggregate(out, "probe_messages", series.probe_messages());
    out << ", ";
    json_aggregate(out, "fee_ratio", series.fee_ratio());
    out << ",\n     ";
    json_aggregate(out, "retries", series.retries());
    out << ", ";
    json_aggregate(out, "stale_failures", series.stale_view_failures());
    out << '}';
  }
  out << "\n  ]\n}\n";
  out.precision(saved_precision);
}

}  // namespace flash

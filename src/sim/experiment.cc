#include "sim/experiment.h"

#include <stdexcept>
#include <utility>

#include "routing/flash/flash_router.h"
#include "sim/sweep.h"
#include "routing/shortest_path.h"
#include "routing/speedymurmurs.h"
#include "routing/spider.h"

namespace flash {

std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kFlash:
      return "Flash";
    case Scheme::kSpider:
      return "Spider";
    case Scheme::kSpeedyMurmurs:
      return "SpeedyMurmurs";
    case Scheme::kShortestPath:
      return "SP";
  }
  throw std::invalid_argument("unknown scheme");
}

std::vector<Scheme> all_schemes() {
  return {Scheme::kFlash, Scheme::kSpider, Scheme::kSpeedyMurmurs,
          Scheme::kShortestPath};
}

std::unique_ptr<Router> make_router(Scheme scheme, const Workload& workload,
                                    const FlashOptions& opts,
                                    std::uint64_t seed) {
  const Amount threshold = opts.elephant_threshold > 0
                               ? opts.elephant_threshold
                               : workload.size_quantile(opts.mice_quantile);
  return make_router(scheme, workload.graph(), workload.fees(), threshold,
                     opts, seed);
}

std::unique_ptr<Router> make_router(Scheme scheme, const Graph& graph,
                                    const FeeSchedule& fees,
                                    Amount elephant_threshold,
                                    const FlashOptions& opts,
                                    std::uint64_t seed) {
  switch (scheme) {
    case Scheme::kFlash: {
      FlashConfig config;
      config.elephant_threshold = elephant_threshold;
      config.k_elephant_paths = opts.k_elephant_paths;
      config.m_mice_paths = opts.m_mice_paths;
      config.optimize_fees = opts.optimize_fees;
      config.mice_selection = opts.mice_selection;
      config.table_recompute_on_exhaustion =
          opts.table_recompute_on_exhaustion;
      config.max_route_hops = opts.max_route_hops;
      config.seed = seed * 0x9e3779b9ULL + 7;
      return std::make_unique<FlashRouter>(graph, fees, config);
    }
    case Scheme::kSpider: {
      SpiderConfig config;
      config.max_hops = opts.max_route_hops;
      return std::make_unique<SpiderRouter>(graph, fees, config);
    }
    case Scheme::kSpeedyMurmurs: {
      SpeedyMurmursConfig config;
      config.max_hops = opts.max_route_hops;
      return std::make_unique<SpeedyMurmursRouter>(graph, fees, config);
    }
    case Scheme::kShortestPath:
      return std::make_unique<ShortestPathRouter>(graph, fees,
                                                  opts.max_route_hops);
  }
  throw std::invalid_argument("unknown scheme");
}

Aggregate RunSeries::aggregate(
    const std::function<double(const SimResult&)>& f) const {
  Aggregate a;
  if (runs.empty()) return a;
  a.min = f(runs.front());
  a.max = a.min;
  double sum = 0;
  for (const auto& r : runs) {
    const double v = f(r);
    a.min = std::min(a.min, v);
    a.max = std::max(a.max, v);
    sum += v;
  }
  a.mean = sum / static_cast<double>(runs.size());
  return a;
}

Aggregate RunSeries::success_ratio() const {
  return aggregate([](const SimResult& r) { return r.success_ratio(); });
}

Aggregate RunSeries::success_volume() const {
  return aggregate(
      [](const SimResult& r) { return static_cast<double>(r.volume_succeeded); });
}

Aggregate RunSeries::probe_messages() const {
  return aggregate(
      [](const SimResult& r) { return static_cast<double>(r.probe_messages); });
}

Aggregate RunSeries::fee_ratio() const {
  return aggregate([](const SimResult& r) { return r.fee_ratio(); });
}

Aggregate RunSeries::retries() const {
  return aggregate(
      [](const SimResult& r) { return static_cast<double>(r.retries); });
}

Aggregate RunSeries::stale_view_failures() const {
  return aggregate([](const SimResult& r) {
    return static_cast<double>(r.stale_view_failures);
  });
}

RunSeries run_series(const WorkloadFactory& make_workload, Scheme scheme,
                     const FlashOptions& opts, const SimConfig& sim,
                     std::size_t runs, std::uint64_t base_seed) {
  // Single-cell sequential sweep: the reference path the parallel engine is
  // tested against (sim_sweep_test asserts bit-identical SimResults).
  SweepCell cell;
  cell.factory = make_workload;
  cell.scheme = scheme;
  cell.flash = opts;
  cell.sim = sim;
  cell.runs = runs;
  cell.base_seed = base_seed;
  SweepOptions seq;
  seq.threads = 1;
  std::vector<SweepCell> grid;
  grid.push_back(std::move(cell));
  return std::move(run_sweep(grid, seq).cells.front());
}

}  // namespace flash

#include "sim/simulator.h"

#include <stdexcept>
#include <string>

namespace flash {

SimResult run_simulation(const Workload& workload, Router& router,
                         const SimConfig& config) {
  return run_simulation(workload, router, config, SimObserver{});
}

SimResult run_simulation(const Workload& workload, Router& router,
                         const SimConfig& config,
                         const SimObserver& observer) {
  VectorWorkloadStream stream(workload.transactions());
  return run_simulation(workload, stream, router, config, observer);
}

SimResult run_simulation(const Workload& workload, WorkloadStream& stream,
                         Router& router, const SimConfig& config,
                         const SimObserver& observer) {
  NetworkState state = workload.make_state(config.capacity_scale);
  const Amount threshold = config.class_threshold > 0
                               ? config.class_threshold
                               : workload.size_quantile(0.9);
  SimResult result;
  std::size_t index = 0;
  Transaction tx;
  while (stream.next(tx)) {
    const RouteResult r = router.route(tx, state);
    result.add(tx, r, tx.amount < threshold);
    if (observer) observer(index, tx, r);
    ++index;
    if (config.invariant_stride && index % config.invariant_stride == 0) {
      std::size_t bad = 0;
      if (!state.check_invariants(&bad)) {
        throw std::logic_error(
            "ledger invariant violated at channel " + std::to_string(bad) +
            " after tx " + std::to_string(index) + " (router " +
            router.name() + ")");
      }
      if (state.active_holds() != 0) {
        throw std::logic_error("router " + router.name() +
                               " leaked holds after tx " +
                               std::to_string(index));
      }
    }
  }
  std::size_t bad = 0;
  if (!state.check_invariants(&bad)) {
    throw std::logic_error("ledger invariant violated at end (channel " +
                           std::to_string(bad) + ", router " + router.name() +
                           ")");
  }
  return result;
}

}  // namespace flash

// A single payment request ("transaction" in the paper's traces).
#pragma once

#include <cstdint>

#include "graph/types.h"

namespace flash {

struct Transaction {
  NodeId sender = kInvalidNode;
  NodeId receiver = kInvalidNode;
  Amount amount = 0;
  /// Arrival time. The simulator processes transactions sequentially in
  /// timestamp order (paper §4.1: "payments arrive at senders
  /// sequentially"); the recurrence analysis (Fig. 4) buckets by day.
  double timestamp = 0;
};

}  // namespace flash

#include "trace/pair_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace flash {

RecurrentPairGenerator::RecurrentPairGenerator(std::size_t num_nodes,
                                               PairGenConfig config, Rng& rng)
    : num_nodes_(num_nodes),
      config_(config),
      sender_sampler_(std::max<std::size_t>(num_nodes, 1),
                      config.sender_zipf_s),
      sender_identity_(num_nodes) {
  if (num_nodes < 2) {
    throw std::invalid_argument("RecurrentPairGenerator: need >= 2 nodes");
  }
  if (config.working_set < 1) {
    throw std::invalid_argument("RecurrentPairGenerator: working_set >= 1");
  }
  // Random permutation decouples Zipf rank from node id, so "active"
  // participants are spread across the topology.
  std::iota(sender_identity_.begin(), sender_identity_.end(), NodeId{0});
  rng.shuffle(sender_identity_);
  build_receiver_weights();
}

RecurrentPairGenerator::RecurrentPairGenerator(
    std::vector<NodeId> activity_order, PairGenConfig config)
    : num_nodes_(activity_order.size()),
      config_(config),
      sender_sampler_(std::max<std::size_t>(activity_order.size(), 1),
                      config.sender_zipf_s),
      sender_identity_(std::move(activity_order)) {
  if (num_nodes_ < 2) {
    throw std::invalid_argument("RecurrentPairGenerator: need >= 2 nodes");
  }
  if (config.working_set < 1) {
    throw std::invalid_argument("RecurrentPairGenerator: working_set >= 1");
  }
  build_receiver_weights();
}

void RecurrentPairGenerator::build_receiver_weights() {
  // A working set never exceeds config_.working_set entries, so one table
  // covers every draw. receiver_total_[n] accumulates left-to-right exactly
  // as the old per-draw loop did: the same additions in the same order
  // produce the same floating-point totals.
  receiver_weight_.resize(config_.working_set);
  receiver_total_.resize(config_.working_set + 1);
  receiver_total_[0] = 0;
  double total = 0;
  for (std::size_t i = 0; i < config_.working_set; ++i) {
    receiver_weight_[i] = 1.0 / std::pow(static_cast<double>(i + 1),
                                         config_.receiver_zipf_s);
    total += receiver_weight_[i];
    receiver_total_[i + 1] = total;
  }
}

std::pair<NodeId, NodeId> RecurrentPairGenerator::next(Rng& rng) {
  ++clock_;
  const NodeId sender = sender_identity_[sender_sampler_(rng)];
  const auto pair = next_from(sender, rng);
  if (config_.bidirectional_relationships) {
    remember(pair.second, pair.first);
  }
  return pair;
}

std::pair<NodeId, NodeId> RecurrentPairGenerator::next_from(NodeId sender,
                                                            Rng& rng) {
  auto& ws = working_[sender];

  if (!ws.empty() && rng.chance(config_.recurrence)) {
    // Zipf-weighted revisit by seniority rank: long-standing counterparties
    // (the favourite merchant, the partner bank) dominate. Weights and
    // their prefix sums come from the precomputed table.
    double r = rng.uniform() * receiver_total_[ws.size()];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      r -= receiver_weight_[i];
      if (r < 0) {
        ws[i].last_used = clock_;
        return {sender, ws[i].receiver};
      }
    }
    ws.back().last_used = clock_;
    return {sender, ws.back().receiver};
  }

  // Open (or re-open) a relationship with a fresh counterparty.
  const NodeId receiver = fresh_receiver(sender, rng);
  remember(sender, receiver);
  return {sender, receiver};
}

void RecurrentPairGenerator::remember(NodeId owner, NodeId counterparty) {
  auto& ws = working_[owner];
  const auto known = std::find_if(
      ws.begin(), ws.end(),
      [counterparty](const Entry& e) { return e.receiver == counterparty; });
  if (known != ws.end()) {
    known->last_used = clock_;
    return;
  }
  if (ws.size() >= config_.working_set) {
    // Evict the least-recently-used counterparty; seniority ranks of the
    // remaining entries are preserved.
    const auto lru = std::min_element(
        ws.begin(), ws.end(), [](const Entry& a, const Entry& b) {
          return a.last_used < b.last_used;
        });
    ws.erase(lru);
  }
  ws.push_back({counterparty, clock_});
}

std::vector<NodeId> RecurrentPairGenerator::receivers_of(
    NodeId sender) const {
  std::vector<NodeId> out;
  const auto it = working_.find(sender);
  if (it == working_.end()) return out;
  out.reserve(it->second.size());
  for (const Entry& e : it->second) out.push_back(e.receiver);
  return out;
}

NodeId RecurrentPairGenerator::fresh_receiver(NodeId sender, Rng& rng) const {
  while (true) {
    const auto r = static_cast<NodeId>(rng.next_below(num_nodes_));
    if (r != sender) return r;
  }
}

}  // namespace flash

// Sender/receiver pair generation with the recurrence structure of §2.2.
//
// The Ripple trace shows (Fig. 4) that within a 24-hour window a median of
// 86 % of transactions repeat an already-seen sender-receiver pair, and an
// average user's top-5 recurring counterparties cover > 70 % of its
// recurring transactions. Both properties emerge from three ingredients:
//   - sender activity is extremely skewed (a few gateways/market makers
//     dominate daily volume), modelled as a Zipf draw over senders;
//   - each sender transacts within a bounded *working set* of
//     counterparties (the favourite merchants, family, partner banks),
//     with older relationships weighted higher (Zipf by seniority rank);
//   - occasionally a sender opens a relationship with a fresh
//     counterparty, evicting its least-recently-used one when the working
//     set is full.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "util/rng.h"

namespace flash {

struct PairGenConfig {
  /// Probability that a transaction reuses a working-set counterparty
  /// (when the sender has any). Defaults model a *random sample of the
  /// whole trace* (the paper's routing workloads, §4.1): 86 % of sampled
  /// transactions repeat a known pair.
  double recurrence = 0.86;
  /// Zipf exponent over a sender's working set by seniority rank.
  /// 1.0 puts ~70 % of recurring mass on the top-5 of an 18-strong set
  /// (Fig. 4b).
  double receiver_zipf_s = 1.0;
  /// Zipf exponent over senders (activity skew).
  double sender_zipf_s = 1.2;
  /// Maximum counterparties a sender keeps warm (LRU-evicted beyond).
  std::size_t working_set = 18;
  /// Financial relationships are two-way: when s pays r, r also learns s
  /// as a counterparty and will later send payments back (gateways both
  /// receive and pay out). This circulation keeps channel liquidity alive
  /// in long simulations, as in the real credit network.
  bool bidirectional_relationships = true;

  /// Profile reproducing the *within-24-hours* statistics of Fig. 4: a few
  /// gateway-grade senders dominate each day's volume, so ~86 % of a day's
  /// transactions repeat a pair already seen that same day.
  static PairGenConfig daily() {
    PairGenConfig c;
    c.recurrence = 0.95;
    c.sender_zipf_s = 2.0;
    return c;
  }
};

class RecurrentPairGenerator {
 public:
  /// Generates pairs over nodes [0, num_nodes). Requires num_nodes >= 2.
  /// Activity ranks are assigned to nodes by a random permutation.
  RecurrentPairGenerator(std::size_t num_nodes, PairGenConfig config,
                         Rng& rng);

  /// Like above, but activity rank follows `activity_order`: the node at
  /// index 0 is the most active sender, and so on. Real credit networks
  /// couple activity with connectivity (gateways are hubs), so workload
  /// builders pass nodes sorted by degree. Must be a permutation of
  /// [0, num_nodes).
  RecurrentPairGenerator(std::vector<NodeId> activity_order,
                         PairGenConfig config);

  /// Draws the next (sender, receiver) pair; guarantees sender != receiver.
  std::pair<NodeId, NodeId> next(Rng& rng);

  /// Current working set of a sender (seniority order).
  std::vector<NodeId> receivers_of(NodeId sender) const;

 private:
  struct Entry {
    NodeId receiver;
    std::uint64_t last_used;
  };

  std::size_t num_nodes_;
  PairGenConfig config_;
  ZipfSampler sender_sampler_;
  std::vector<NodeId> sender_identity_;  // random permutation: rank -> node
  std::unordered_map<NodeId, std::vector<Entry>> working_;
  std::uint64_t clock_ = 0;
  // Receiver-Zipf weight table, precomputed once per generator instead of
  // re-evaluating std::pow over the working set on every recurrent draw:
  // receiver_weight_[i] = (i+1)^-receiver_zipf_s, and receiver_total_[n] is
  // the left-to-right sum of the first n weights (the exact summation order
  // the per-draw loop used, so generated traces stay bit-identical).
  std::vector<double> receiver_weight_;
  std::vector<double> receiver_total_;

  void build_receiver_weights();
  std::pair<NodeId, NodeId> next_from(NodeId sender, Rng& rng);
  void remember(NodeId owner, NodeId counterparty);
  NodeId fresh_receiver(NodeId sender, Rng& rng) const;
};

}  // namespace flash

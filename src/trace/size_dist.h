// Heavy-tailed payment-size distributions calibrated to the paper's
// measurement study (§2.2, Fig. 3).
//
// The real Ripple/Bitcoin traces are not available offline, so payment
// sizes are drawn from a lognormal body + Pareto tail mixture whose
// parameters are calibrated to the reported statistics:
//   Ripple  (USD):     median ~$4.8,    top-10 % of payments >= ~$1,740
//                      carrying ~94.5 % of total volume.
//   Bitcoin (satoshi): median ~1.293e6, top-10 % >= ~8.9e7 carrying ~94.7 %.
// See DESIGN.md "Substitutions" for the calibration derivation.
#pragma once

#include "graph/types.h"
#include "util/rng.h"

namespace flash {

/// Mixture sampler: with probability `tail_prob` draw Pareto(tail_xm,
/// tail_alpha), otherwise draw lognormal with the given body median and
/// sigma (of the underlying normal).
class SizeDistribution {
 public:
  SizeDistribution(double body_median, double body_sigma, double tail_prob,
                   double tail_xm, double tail_alpha);

  /// Ripple-like sizes in USD (Fig. 3a).
  static SizeDistribution ripple();

  /// Bitcoin-like sizes in satoshi (Fig. 3b).
  static SizeDistribution bitcoin();

  Amount sample(Rng& rng) const;

  double body_median() const noexcept { return body_median_; }
  double tail_probability() const noexcept { return tail_prob_; }
  double tail_threshold() const noexcept { return tail_xm_; }

 private:
  double body_median_;
  double body_mu_;  // log of body median
  double body_sigma_;
  double tail_prob_;
  double tail_xm_;
  double tail_alpha_;
};

}  // namespace flash

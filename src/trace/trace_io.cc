#include "trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/strings.h"

namespace flash {

void write_trace(std::ostream& os, const std::vector<Transaction>& txs) {
  os << "sender,receiver,amount,timestamp\n";
  CsvWriter w(os);
  for (const auto& tx : txs) {
    w.field(static_cast<std::uint64_t>(tx.sender))
        .field(static_cast<std::uint64_t>(tx.receiver))
        .field(tx.amount)
        .field(tx.timestamp);
    w.end_row();
  }
}

std::vector<Transaction> read_trace(std::istream& is) {
  std::vector<Transaction> txs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const auto fields = parse_csv_line(sv);
    if (fields.size() < 3) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": expected sender,receiver,amount[,ts]");
    }
    const auto s = parse_uint(fields[0]);
    const auto r = parse_uint(fields[1]);
    const auto a = parse_double(fields[2]);
    if (!s || !r || !a) {
      if (lineno == 1) continue;  // tolerate a header row
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": parse error");
    }
    Transaction tx;
    tx.sender = static_cast<NodeId>(*s);
    tx.receiver = static_cast<NodeId>(*r);
    tx.amount = *a;
    if (fields.size() >= 4) {
      const auto ts = parse_double(fields[3]);
      if (!ts) {
        throw std::runtime_error("trace line " + std::to_string(lineno) +
                                 ": bad timestamp");
      }
      tx.timestamp = *ts;
    } else {
      tx.timestamp = static_cast<double>(txs.size());
    }
    txs.push_back(tx);
  }
  return txs;
}

void save_trace(const std::string& path, const std::vector<Transaction>& txs) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_trace(os, txs);
  if (!os) throw std::runtime_error("write failed: " + path);
}

std::vector<Transaction> load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_trace(is);
}

}  // namespace flash

// Complete experiment workloads: topology + balances + fees + transactions.
//
// Mirrors the paper's evaluation setups (§4.1, §5.2): the Ripple-like and
// Lightning-like simulation workloads and the Watts-Strogatz testbed
// workload. A Workload owns its Graph; NetworkState instances are minted
// per run so multi-seed experiments always start from identical balances.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_io.h"
#include "ledger/fee_policy.h"
#include "ledger/network_state.h"
#include "trace/transaction.h"

namespace flash {

class Workload {
 public:
  Workload(Graph graph, std::vector<Amount> initial_balances,
           FeeSchedule fees, std::vector<Transaction> transactions,
           std::string name);

  const Graph& graph() const noexcept { return graph_; }
  const FeeSchedule& fees() const noexcept { return fees_; }
  const std::vector<Transaction>& transactions() const noexcept {
    return transactions_;
  }
  const std::string& name() const noexcept { return name_; }

  /// Fresh ledger with the workload's initial balances, optionally scaled
  /// by the capacity scale factor of Fig. 6.
  NetworkState make_state(double capacity_scale = 1.0) const;

  /// Payment size below which a payment counts as "mice": the q-quantile of
  /// this workload's payment sizes (paper default q = 0.9, i.e. 90 % of
  /// payments are mice). Memoized per q: the first call pays the
  /// O(n log n) selection, repeat calls are a lookup — run_simulation and
  /// make_router both ask for it on every run, so sweep cells would
  /// otherwise re-sort the whole trace each time. The memo makes this
  /// method non-thread-safe on a *shared* Workload; the sweep engine gives
  /// every concurrent run its own workload (see sim/sweep.h).
  Amount size_quantile(double q) const;

  /// View of the first n transactions (clamped to the trace length). No
  /// copy — the span aliases this workload's storage and is invalidated by
  /// destroying/moving it. Prefer this over truncated() when only the
  /// transaction prefix is needed.
  std::span<const Transaction> head(std::size_t n) const noexcept;

  /// Restricts to the first n transactions (for load sweeps, Fig. 7).
  /// Materializes a full Workload copy; thin wrapper over head().
  Workload truncated(std::size_t n) const;

 private:
  Graph graph_;
  std::vector<Amount> initial_balances_;  // per directed edge
  FeeSchedule fees_;
  std::vector<Transaction> transactions_;
  std::string name_;
  // size_quantile memo (q -> quantile); tiny, so a flat vector beats a map.
  mutable std::vector<std::pair<double, Amount>> quantile_cache_;
};

struct WorkloadConfig {
  std::size_t num_transactions = 2000;
  std::uint64_t seed = 1;
  /// When true, resample sender/receiver pairs until a path exists in the
  /// topology (the paper ensures at least one path exists, §5.2).
  bool ensure_connectivity = true;
};

/// Ripple-like simulation workload: scale-free 1,870-node topology,
/// channel capacities lognormal around a $250 median split evenly across
/// directions, USD payment sizes per Fig. 3a, recurrent pairs per Fig. 4.
Workload make_ripple_workload(const WorkloadConfig& config);

/// Lightning-like simulation workload: scale-free 2,511-node topology,
/// capacities lognormal around a 500,000-satoshi median, satoshi payment
/// sizes per Fig. 3b, recurrent pairs per Fig. 4 (the paper maps Ripple
/// pairs onto the Lightning topology; we generate pairs directly).
Workload make_lightning_workload(const WorkloadConfig& config);

/// Testbed workload (§5.2): Watts-Strogatz graph with `nodes` nodes,
/// channel capacities uniform in [cap_lo, cap_hi) split across directions
/// with a random skew (channels are funded mostly by their opener),
/// Ripple-like payment sizes, uniform random pairs with guaranteed
/// connectivity.
Workload make_testbed_workload(std::size_t nodes, Amount cap_lo,
                               Amount cap_hi, const WorkloadConfig& config);

/// Small deterministic workload for unit tests and the quickstart example.
Workload make_toy_workload(std::size_t nodes, std::size_t num_transactions,
                           std::uint64_t seed);

/// Materializes a Lightning snapshot (graph/graph_io.h) into a Workload:
/// topology in snapshot channel order, per-directed-edge balances and fee
/// policies from the snapshot's directional fields, and an *empty* trace —
/// pair it with a WorkloadStream (trace/workload_stream.h) for payments,
/// and set the class/elephant thresholds explicitly (an empty trace has no
/// size quantiles).
Workload make_snapshot_workload(const LightningSnapshot& snapshot,
                                std::string name = "snapshot");

}  // namespace flash

// Transaction-trace serialization.
//
// CSV format, one transaction per line: sender,receiver,amount,timestamp
// (header optional, '#' comments allowed). This is the shape of the Ripple
// trace released with the paper's artifact, so a real trace can be dropped
// in place of the synthetic workloads.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/transaction.h"

namespace flash {

void write_trace(std::ostream& os, const std::vector<Transaction>& txs);

/// Throws std::runtime_error on malformed lines.
std::vector<Transaction> read_trace(std::istream& is);

void save_trace(const std::string& path, const std::vector<Transaction>& txs);
std::vector<Transaction> load_trace(const std::string& path);

}  // namespace flash

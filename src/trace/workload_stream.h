// Streaming transaction sources: O(1)-memory alternatives to materialized
// std::vector<Transaction> workloads.
//
// A fig-scale run holds a few thousand Transactions, but the ROADMAP's
// Lightning-scale runs stream 10^5-10^6 payments — materializing those
// first is pure peak-RSS waste when the simulator consumes them strictly
// in arrival order anyway. A WorkloadStream yields transactions one at a
// time; generators hold only their rng + pair-generator state, so memory
// is independent of the payment count. VectorWorkloadStream adapts an
// existing vector (the fig benches), which keeps every materialized-path
// caller bit-identical with the streaming engine underneath.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "trace/pair_gen.h"
#include "trace/size_dist.h"
#include "trace/transaction.h"
#include "util/rng.h"

namespace flash {

/// Sequential transaction source. Deterministic per seed: two streams
/// constructed (or reset) with the same seed yield identical sequences.
class WorkloadStream {
 public:
  virtual ~WorkloadStream() = default;

  /// Yields the next transaction into `out`. Returns false when the stream
  /// is exhausted (out is then untouched).
  virtual bool next(Transaction& out) = 0;

  /// Rewinds to the first transaction, reproducing the same sequence.
  virtual void reset() = 0;

  /// Rewinds with a different seed (a fresh deterministic sequence).
  virtual void reset(std::uint64_t seed) = 0;

  /// Total number of transactions the stream yields per pass. Known up
  /// front so consumers can pre-commit counters (the scenario engine
  /// reserves event sequence numbers per arrival) without buffering.
  virtual std::size_t size() const = 0;
};

/// Adapter presenting an existing transaction vector as a stream. Holds a
/// pointer to the caller's storage (no copy); the vector must outlive the
/// stream. reset(seed) ignores the seed — a replay has no randomness left.
class VectorWorkloadStream final : public WorkloadStream {
 public:
  explicit VectorWorkloadStream(const std::vector<Transaction>& txs)
      : txs_(&txs) {}

  bool next(Transaction& out) override {
    if (pos_ >= txs_->size()) return false;
    out = (*txs_)[pos_++];
    return true;
  }
  void reset() override { pos_ = 0; }
  void reset(std::uint64_t /*seed*/) override { pos_ = 0; }
  std::size_t size() const override { return txs_->size(); }

 private:
  const std::vector<Transaction>* txs_;
  std::size_t pos_ = 0;
};

/// How a generated stream draws sender/receiver pairs.
enum class StreamPairMode {
  /// Recurrent pairs (Fig. 4), activity ranked by node degree — the
  /// simulation workloads.
  kRecurrentByDegree,
  /// Independent uniform pairs — the testbed workload (§5.2).
  kUniform,
};

struct GeneratedStreamConfig {
  std::size_t count = 0;
  StreamPairMode mode = StreamPairMode::kRecurrentByDegree;
  SizeDistribution sizes = SizeDistribution::ripple();
  /// Pair recurrence profile (recurrent mode only).
  PairGenConfig pair_config;
  /// When true and the topology is disconnected, resample pairs until a
  /// path exists (the paper guarantees one, §5.2). The connectivity check
  /// runs once at construction; connected graphs skip per-pair BFS.
  bool ensure_connectivity = true;
};

/// Generates the transaction sequence of the simulation workloads on the
/// fly: identical draws, in identical rng order, to the materializing
/// generator in workload.cc — which is in fact implemented on top of this
/// stream. State is O(nodes) (pair-generator working sets + degree rank),
/// independent of config.count.
class GeneratedWorkloadStream final : public WorkloadStream {
 public:
  /// Draws from a fresh Rng(seed).
  GeneratedWorkloadStream(const Graph& g, std::uint64_t seed,
                          GeneratedStreamConfig config);

  /// Continues an existing rng (taken by value; read it back with rng()
  /// after exhausting the stream to keep a caller's draw sequence going).
  GeneratedWorkloadStream(const Graph& g, Rng rng,
                          GeneratedStreamConfig config);

  bool next(Transaction& out) override;
  void reset() override;
  void reset(std::uint64_t seed) override;
  std::size_t size() const override { return config_.count; }

  /// The rng after the draws made so far (value semantics).
  const Rng& rng() const noexcept { return rng_; }

 private:
  void rebuild_pair_state();

  const Graph* graph_;
  GeneratedStreamConfig config_;
  Rng initial_rng_;  // reset() restores this
  Rng rng_;
  std::optional<RecurrentPairGenerator> pairs_;
  bool check_pairs_ = false;
  std::size_t emitted_ = 0;
};

}  // namespace flash

#include "trace/size_dist.h"

#include <cmath>
#include <stdexcept>

namespace flash {

SizeDistribution::SizeDistribution(double body_median, double body_sigma,
                                   double tail_prob, double tail_xm,
                                   double tail_alpha)
    : body_median_(body_median),
      body_mu_(std::log(body_median)),
      body_sigma_(body_sigma),
      tail_prob_(tail_prob),
      tail_xm_(tail_xm),
      tail_alpha_(tail_alpha) {
  if (body_median <= 0 || body_sigma <= 0 || tail_prob < 0 || tail_prob > 1 ||
      tail_xm <= 0 || tail_alpha <= 1.0) {
    throw std::invalid_argument("SizeDistribution: bad parameters");
  }
}

SizeDistribution SizeDistribution::ripple() {
  // Body median chosen so the overall median lands near $4.8 after the
  // 10 % tail mass shifts quantiles; alpha solves
  //   0.1 * mean_tail / total_mean = 0.945 with mean_tail = xm*a/(a-1).
  return SizeDistribution(/*body_median=*/3.6, /*body_sigma=*/2.0,
                          /*tail_prob=*/0.10, /*tail_xm=*/1740.0,
                          /*tail_alpha=*/1.46);
}

SizeDistribution SizeDistribution::bitcoin() {
  return SizeDistribution(/*body_median=*/0.98e6, /*body_sigma=*/2.0,
                          /*tail_prob=*/0.10, /*tail_xm=*/8.9e7,
                          /*tail_alpha=*/1.09);
}

Amount SizeDistribution::sample(Rng& rng) const {
  if (rng.chance(tail_prob_)) {
    return rng.pareto(tail_xm_, tail_alpha_);
  }
  return rng.lognormal(body_mu_, body_sigma_);
}

}  // namespace flash

#include "trace/workload_stream.h"

#include <algorithm>
#include <numeric>

#include "graph/bfs.h"
#include "graph/topology.h"

namespace flash {

GeneratedWorkloadStream::GeneratedWorkloadStream(const Graph& g,
                                                std::uint64_t seed,
                                                GeneratedStreamConfig config)
    : GeneratedWorkloadStream(g, Rng(seed), std::move(config)) {}

GeneratedWorkloadStream::GeneratedWorkloadStream(const Graph& g, Rng rng,
                                                GeneratedStreamConfig config)
    : graph_(&g),
      config_(std::move(config)),
      initial_rng_(rng),
      rng_(rng) {
  // On a connected topology every pair is reachable; skip per-pair BFS.
  check_pairs_ = config_.ensure_connectivity && !is_connected(*graph_);
  rebuild_pair_state();
}

void GeneratedWorkloadStream::rebuild_pair_state() {
  pairs_.reset();
  if (config_.mode == StreamPairMode::kRecurrentByDegree) {
    // Activity follows connectivity: the most active senders are the
    // highest-degree nodes (gateways), as in the real credit network.
    std::vector<NodeId> by_degree(graph_->num_nodes());
    std::iota(by_degree.begin(), by_degree.end(), NodeId{0});
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [this](NodeId a, NodeId b) {
                       return graph_->out_degree(a) > graph_->out_degree(b);
                     });
    pairs_.emplace(std::move(by_degree), config_.pair_config);
  }
}

bool GeneratedWorkloadStream::next(Transaction& out) {
  if (emitted_ >= config_.count) return false;
  for (;;) {
    NodeId s, r;
    if (pairs_) {
      std::tie(s, r) = pairs_->next(rng_);
    } else {
      s = static_cast<NodeId>(rng_.next_below(graph_->num_nodes()));
      r = static_cast<NodeId>(rng_.next_below(graph_->num_nodes()));
      if (s == r) continue;
    }
    if (check_pairs_ && !reachable(*graph_, s, r)) continue;
    out.sender = s;
    out.receiver = r;
    out.amount = config_.sizes.sample(rng_);
    out.timestamp = static_cast<double>(emitted_);
    ++emitted_;
    return true;
  }
}

void GeneratedWorkloadStream::reset() {
  rng_ = initial_rng_;
  emitted_ = 0;
  rebuild_pair_state();
}

void GeneratedWorkloadStream::reset(std::uint64_t seed) {
  initial_rng_ = Rng(seed);
  reset();
}

}  // namespace flash

#include "trace/workload.h"

#include <algorithm>
#include <stdexcept>

#include "graph/topology.h"
#include "trace/size_dist.h"
#include "trace/workload_stream.h"
#include "util/stats.h"

namespace flash {

Workload::Workload(Graph graph, std::vector<Amount> initial_balances,
                   FeeSchedule fees, std::vector<Transaction> transactions,
                   std::string name)
    : graph_(std::move(graph)),
      initial_balances_(std::move(initial_balances)),
      fees_(std::move(fees)),
      transactions_(std::move(transactions)),
      name_(std::move(name)) {
  if (initial_balances_.size() != graph_.num_edges()) {
    throw std::invalid_argument("workload: balance/edge count mismatch");
  }
}

NetworkState Workload::make_state(double capacity_scale) const {
  NetworkState state(graph_);
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    state.set_balance(e, initial_balances_[e] * capacity_scale);
  }
  return state;
}

Amount Workload::size_quantile(double q) const {
  if (transactions_.empty()) return 0;
  for (const auto& [cached_q, value] : quantile_cache_) {
    if (cached_q == q) return value;
  }
  std::vector<double> sizes;
  sizes.reserve(transactions_.size());
  for (const auto& tx : transactions_) sizes.push_back(tx.amount);
  const Amount value = percentile(std::move(sizes), q * 100.0);
  quantile_cache_.emplace_back(q, value);
  return value;
}

std::span<const Transaction> Workload::head(std::size_t n) const noexcept {
  return {transactions_.data(), std::min(n, transactions_.size())};
}

Workload Workload::truncated(std::size_t n) const {
  const auto h = head(n);
  return Workload(graph_, initial_balances_, fees_,
                  std::vector<Transaction>(h.begin(), h.end()), name_);
}

namespace {

using PairMode = StreamPairMode;

/// Materializes `count` transactions by draining a GeneratedWorkloadStream
/// (the single source of truth for the generation algorithm; streaming
/// consumers use it directly). The caller's rng is advanced exactly as if
/// the draws had happened in place, so factory draw sequences are
/// unchanged.
std::vector<Transaction> generate_transactions(
    const Graph& g, const SizeDistribution& sizes, std::size_t count,
    bool ensure_connectivity, PairMode mode, Rng& rng) {
  GeneratedStreamConfig config;
  config.count = count;
  config.mode = mode;
  config.sizes = sizes;
  config.ensure_connectivity = ensure_connectivity;
  GeneratedWorkloadStream stream(g, rng, std::move(config));
  std::vector<Transaction> txs;
  txs.reserve(count);
  Transaction tx;
  while (stream.next(tx)) txs.push_back(tx);
  rng = stream.rng();
  return txs;
}

std::vector<Amount> balances_of(const NetworkState& state, const Graph& g) {
  std::vector<Amount> balances(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) balances[e] = state.balance(e);
  return balances;
}

}  // namespace

Workload make_ripple_workload(const WorkloadConfig& config) {
  Rng rng(config.seed);
  Graph g = ripple_like(rng);
  NetworkState init(g);
  // Median channel capacity in Ripple is ~250 USD (§4.2), funds split
  // evenly across directions (§4.1).
  init.assign_lognormal_split(250.0, 1.0, rng);
  FeeSchedule fees = FeeSchedule::paper_default(g, rng);
  auto txs = generate_transactions(
      g, SizeDistribution::ripple(), config.num_transactions,
      config.ensure_connectivity, PairMode::kRecurrentByDegree, rng);
  return Workload(g, balances_of(init, g), std::move(fees), std::move(txs),
                  "ripple");
}

Workload make_lightning_workload(const WorkloadConfig& config) {
  Rng rng(config.seed);
  Graph g = lightning_like(rng);
  NetworkState init(g);
  // Median channel capacity in Lightning is ~500,000 satoshi (§4.2). The
  // crawled fund distribution is very skewed and concentrated on hub
  // channels (the paper uses it directly), modelled by degree weighting.
  init.assign_lognormal_degree_weighted(500000.0, 1.6, rng);
  FeeSchedule fees = FeeSchedule::paper_default(g, rng);
  auto txs = generate_transactions(
      g, SizeDistribution::bitcoin(), config.num_transactions,
      config.ensure_connectivity, PairMode::kRecurrentByDegree, rng);
  return Workload(g, balances_of(init, g), std::move(fees), std::move(txs),
                  "lightning");
}

Workload make_testbed_workload(std::size_t nodes, Amount cap_lo,
                               Amount cap_hi, const WorkloadConfig& config) {
  Rng rng(config.seed);
  Graph g = watts_strogatz(nodes, 8, 0.3, rng);
  NetworkState init(g);
  // Channels are funded mostly by the opening party, so the per-direction
  // split is skewed; this is what makes static single-path routing fragile
  // in the paper's testbed (Fig. 12b: SP trails Flash by ~36 %).
  init.assign_uniform_skewed(cap_lo, cap_hi, 0.35, 0.65, rng);
  FeeSchedule fees = FeeSchedule::paper_default(g, rng);

  // The testbed draws sender-receiver pairs uniformly (§5.2), with volumes
  // following the Ripple trace and at least one path guaranteed. The
  // uniform mode draws (sender, receiver, amount) in exactly the order the
  // old hand-rolled loop did, pinned by trace_test's testbed oracle.
  auto txs = generate_transactions(
      g, SizeDistribution::ripple(), config.num_transactions,
      config.ensure_connectivity, PairMode::kUniform, rng);
  return Workload(g, balances_of(init, g), std::move(fees), std::move(txs),
                  "testbed-" + std::to_string(nodes));
}

Workload make_toy_workload(std::size_t nodes, std::size_t num_transactions,
                           std::uint64_t seed) {
  Rng rng(seed);
  Graph g = watts_strogatz(std::max<std::size_t>(nodes, 8), 4, 0.2, rng);
  NetworkState init(g);
  init.assign_uniform_split(50.0, 150.0, rng);
  FeeSchedule fees = FeeSchedule::paper_default(g, rng);
  auto txs = generate_transactions(g, SizeDistribution::ripple(),
                                   num_transactions, true,
                                   PairMode::kRecurrentByDegree, rng);
  return Workload(g, balances_of(init, g), std::move(fees), std::move(txs),
                  "toy");
}

Workload make_snapshot_workload(const LightningSnapshot& snapshot,
                                std::string name) {
  Graph g = snapshot.to_graph();
  std::vector<Amount> balances(g.num_edges(), 0);
  FeeSchedule fees(g);
  for (std::size_t c = 0; c < snapshot.channels.size(); ++c) {
    const SnapshotChannel& ch = snapshot.channels[c];
    const EdgeId fwd = g.channel_forward_edge(c);
    const EdgeId rev = g.reverse(fwd);
    balances[fwd] = ch.balance_uv;
    balances[rev] = ch.balance_vu;
    fees.set_policy(fwd, FeePolicy{ch.base_uv, ch.rate_uv});
    fees.set_policy(rev, FeePolicy{ch.base_vu, ch.rate_vu});
  }
  return Workload(std::move(g), std::move(balances), std::move(fees), {},
                  std::move(name));
}

}  // namespace flash

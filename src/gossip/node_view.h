// A node's local view of the network topology, maintained by gossip.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "gossip/messages.h"
#include "graph/graph.h"

namespace flash::gossip {

/// Per-node topology knowledge: the set of channels the node believes
/// exist, with the latest sequence number seen per channel. Applying an
/// announcement returns whether the view changed (i.e. whether the node
/// should re-flood it to its neighbours).
///
/// Memory model: a view is a shared immutable *baseline* (channels every
/// node learned at bootstrap, all open at seq 1, sorted ascending) plus a
/// small per-node *override* map holding only the channels this node has
/// heard announcements about. Before this split every node materialized
/// the full channel set privately, which is O(nodes x channels) across a
/// network — at Lightning scale (50k nodes x ~717k channels) that is the
/// difference between megabytes and terabytes. Gossip churn only ever
/// touches the overrides, so the baseline stays shared for the whole run.
class NodeView {
 public:
  /// Sorted ascending by (u, v) with u < v, no duplicates; every entry is
  /// an open channel at seq 1. Shared by every view of the same network.
  using Baseline = std::shared_ptr<const std::vector<std::pair<NodeId, NodeId>>>;

  /// Installs the bootstrap baseline. Channels the node already heard
  /// announcements about keep their override (any applied announcement has
  /// seq >= 1, so the seq-1 baseline seed is stale for them — exactly what
  /// apply() would have decided). Returns the number of channels that were
  /// NEWS to this node (baseline entries with no prior override), which is
  /// how much the owner should bump the node's view version.
  std::size_t set_baseline(Baseline baseline);

  /// Applies an announcement. Returns true if it was news (newer seq than
  /// anything seen for that channel), false if stale or duplicate.
  bool apply(const Announcement& a);

  /// Number of channels the node currently believes are open. O(1).
  std::size_t open_channels() const noexcept { return open_count_; }

  /// True if the node believes a channel between a and b is open.
  bool knows_channel(NodeId a, NodeId b) const;

  /// Latest sequence number seen for a channel (0 if never heard of it).
  std::uint64_t seq_of(NodeId a, NodeId b) const;

  /// Materializes the believed topology as a Graph over `num_nodes` nodes
  /// (only open channels are included). This is the graph a router would
  /// be constructed with.
  Graph to_graph(std::size_t num_nodes) const;

  /// Invokes f(u, v) for every channel the node believes open, with u < v,
  /// in ascending (u, v) order — the same order to_graph adds channels, so
  /// callers can build a graph and a parallel channel index in lockstep.
  /// Implemented as a two-way merge of the sorted baseline with the sorted
  /// override map (an override shadows its baseline entry).
  template <typename F>
  void for_each_open(F&& f) const {
    auto it = overrides_.begin();
    const auto end = overrides_.end();
    if (baseline_) {
      for (const auto& ch : *baseline_) {
        while (it != end && it->first < ch) {
          if (it->second.open) f(it->first.first, it->first.second);
          ++it;
        }
        if (it != end && it->first == ch) {
          if (it->second.open) f(ch.first, ch.second);
          ++it;
        } else {
          f(ch.first, ch.second);
        }
      }
    }
    for (; it != end; ++it) {
      if (it->second.open) f(it->first.first, it->first.second);
    }
  }

  /// Views are equal when they agree on every channel's open/closed state.
  bool agrees_with(const NodeView& other) const;

 private:
  struct ChannelState {
    std::uint64_t seq = 0;
    bool open = false;
  };

  /// True if the baseline contains the normalized pair (binary search).
  bool in_baseline(const std::pair<NodeId, NodeId>& key) const;

  Baseline baseline_;  // may be null (node bootstrapped empty)
  std::map<std::pair<NodeId, NodeId>, ChannelState> overrides_;
  std::size_t open_count_ = 0;  // maintained incrementally by apply()
};

}  // namespace flash::gossip

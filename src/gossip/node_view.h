// A node's local view of the network topology, maintained by gossip.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "gossip/messages.h"
#include "graph/graph.h"

namespace flash::gossip {

/// Per-node topology knowledge: the set of channels the node believes
/// exist, with the latest sequence number seen per channel. Applying an
/// announcement returns whether the view changed (i.e. whether the node
/// should re-flood it to its neighbours).
class NodeView {
 public:
  /// Applies an announcement. Returns true if it was news (newer seq than
  /// anything seen for that channel), false if stale or duplicate.
  bool apply(const Announcement& a);

  /// Number of channels the node currently believes are open.
  std::size_t open_channels() const;

  /// True if the node believes a channel between a and b is open.
  bool knows_channel(NodeId a, NodeId b) const;

  /// Latest sequence number seen for a channel (0 if never heard of it).
  std::uint64_t seq_of(NodeId a, NodeId b) const;

  /// Materializes the believed topology as a Graph over `num_nodes` nodes
  /// (only open channels are included). This is the graph a router would
  /// be constructed with.
  Graph to_graph(std::size_t num_nodes) const;

  /// Invokes f(u, v) for every channel the node believes open, with u < v,
  /// in ascending (u, v) order — the same order to_graph adds channels, so
  /// callers can build a graph and a parallel channel index in lockstep.
  template <typename F>
  void for_each_open(F&& f) const {
    for (const auto& [key, state] : channels_) {
      if (state.open) f(key.first, key.second);
    }
  }

  /// Views are equal when they agree on every channel's open/closed state.
  bool agrees_with(const NodeView& other) const;

 private:
  struct ChannelState {
    std::uint64_t seq = 0;
    bool open = false;
  };
  std::map<std::pair<NodeId, NodeId>, ChannelState> channels_;
};

}  // namespace flash::gossip

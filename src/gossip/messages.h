// Gossip messages for topology maintenance (paper §3.1 prerequisite).
//
// Offchain routing assumes every node locally stores the network topology
// (without balances) and keeps it fresh through a gossip protocol, as the
// Lightning and Raiden daemons do. Only channel existence is gossiped —
// balances stay private and are discoverable only by probing, which is the
// premise Flash's whole design rests on.
#pragma once

#include <cstdint>

#include "graph/types.h"

namespace flash::gossip {

enum class AnnouncementType : std::uint8_t {
  kChannelOpen,
  kChannelClose,
};

/// A flooded channel-state announcement. The (channel_seq) pair makes
/// announcements idempotent and totally ordered per channel: a node adopts
/// an announcement only if its sequence number is newer than what it holds.
struct Announcement {
  AnnouncementType type = AnnouncementType::kChannelOpen;
  /// Endpoints of the channel (unordered pair; normalized u < v).
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  /// Per-channel monotone sequence number (on-chain funding/closing txs
  /// give a natural total order in a real deployment).
  std::uint64_t seq = 0;

  /// Normalized identity of the channel this announcement concerns.
  std::pair<NodeId, NodeId> channel() const {
    return u < v ? std::pair{u, v} : std::pair{v, u};
  }
};

}  // namespace flash::gossip

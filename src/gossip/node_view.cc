#include "gossip/node_view.h"

#include <algorithm>

namespace flash::gossip {

bool NodeView::in_baseline(const std::pair<NodeId, NodeId>& key) const {
  return baseline_ &&
         std::binary_search(baseline_->begin(), baseline_->end(), key);
}

std::size_t NodeView::set_baseline(Baseline baseline) {
  baseline_ = std::move(baseline);
  // Recount opens: baseline entries count unless shadowed by an override,
  // plus every open override. Walking the (small) override map once also
  // yields how many baseline channels were already known.
  std::size_t overlap = 0;
  std::size_t open_overrides = 0;
  for (const auto& [key, state] : overrides_) {
    if (in_baseline(key)) ++overlap;
    if (state.open) ++open_overrides;
  }
  const std::size_t base = baseline_ ? baseline_->size() : 0;
  open_count_ = base - overlap + open_overrides;
  return base - overlap;  // channels that were news to this node
}

bool NodeView::apply(const Announcement& a) {
  // Valid announcements carry seq >= 1; an unknown channel has seq 0.
  const auto key = a.channel();
  const auto it = overrides_.find(key);
  const bool was_open =
      it != overrides_.end() ? it->second.open : in_baseline(key);
  const std::uint64_t cur_seq =
      it != overrides_.end() ? it->second.seq : (in_baseline(key) ? 1 : 0);
  if (a.seq <= cur_seq) {
    return false;  // stale or duplicate: do not re-flood
  }
  ChannelState& state = it != overrides_.end() ? it->second : overrides_[key];
  state.seq = a.seq;
  state.open = a.type == AnnouncementType::kChannelOpen;
  if (state.open && !was_open) ++open_count_;
  if (!state.open && was_open) --open_count_;
  return true;
}

bool NodeView::knows_channel(NodeId a, NodeId b) const {
  const auto key = a < b ? std::pair{a, b} : std::pair{b, a};
  const auto it = overrides_.find(key);
  if (it != overrides_.end()) return it->second.open;
  return in_baseline(key);
}

std::uint64_t NodeView::seq_of(NodeId a, NodeId b) const {
  const auto key = a < b ? std::pair{a, b} : std::pair{b, a};
  const auto it = overrides_.find(key);
  if (it != overrides_.end()) return it->second.seq;
  return in_baseline(key) ? 1 : 0;
}

Graph NodeView::to_graph(std::size_t num_nodes) const {
  Graph g(num_nodes);
  g.reserve_channels(open_count_);
  for_each_open([&](NodeId u, NodeId v) {
    if (u < num_nodes && v < num_nodes) g.add_channel(u, v);
  });
  g.finalize();
  return g;
}

bool NodeView::agrees_with(const NodeView& other) const {
  // Open sets are equal iff they have the same size and one contains the
  // other (closed/unknown are equivalent).
  if (open_count_ != other.open_count_) return false;
  bool subset = true;
  for_each_open([&](NodeId u, NodeId v) {
    subset = subset && other.knows_channel(u, v);
  });
  return subset;
}

}  // namespace flash::gossip

#include "gossip/node_view.h"

namespace flash::gossip {

bool NodeView::apply(const Announcement& a) {
  // Valid announcements carry seq >= 1; an unknown channel has seq 0.
  const auto key = a.channel();
  const auto it = channels_.find(key);
  if (it != channels_.end() && a.seq <= it->second.seq) {
    return false;  // stale or duplicate: do not re-flood
  }
  ChannelState& state = channels_[key];
  state.seq = a.seq;
  state.open = a.type == AnnouncementType::kChannelOpen;
  return true;
}

std::size_t NodeView::open_channels() const {
  std::size_t n = 0;
  for (const auto& [key, state] : channels_) n += state.open;
  return n;
}

bool NodeView::knows_channel(NodeId a, NodeId b) const {
  const auto key = a < b ? std::pair{a, b} : std::pair{b, a};
  const auto it = channels_.find(key);
  return it != channels_.end() && it->second.open;
}

std::uint64_t NodeView::seq_of(NodeId a, NodeId b) const {
  const auto key = a < b ? std::pair{a, b} : std::pair{b, a};
  const auto it = channels_.find(key);
  return it == channels_.end() ? 0 : it->second.seq;
}

Graph NodeView::to_graph(std::size_t num_nodes) const {
  Graph g(num_nodes);
  for (const auto& [key, state] : channels_) {
    if (state.open && key.first < num_nodes && key.second < num_nodes) {
      g.add_channel(key.first, key.second);
    }
  }
  g.finalize();
  return g;
}

bool NodeView::agrees_with(const NodeView& other) const {
  // Compare open-channel sets (closed/unknown are equivalent).
  for (const auto& [key, state] : channels_) {
    if (state.open != other.knows_channel(key.first, key.second)) {
      return false;
    }
  }
  for (const auto& [key, state] : other.channels_) {
    if (state.open != knows_channel(key.first, key.second)) {
      return false;
    }
  }
  return true;
}

}  // namespace flash::gossip

// Round-based gossip flooding over the physical channel graph.
//
// Announcements originate at a channel's endpoints and flood hop-by-hop:
// each round, every node forwards the announcements that were news to it
// in the previous round to all of its neighbours. Duplicate suppression
// comes from NodeView's per-channel sequence numbers, so the message
// complexity of one announcement is O(|E|) and propagation completes in
// diameter-many rounds — matching how the Lightning/Raiden daemons keep
// "the connectivity topology locally available at each node" (§3.1).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "gossip/messages.h"
#include "gossip/node_view.h"
#include "graph/graph.h"

namespace flash::gossip {

class GossipNetwork {
 public:
  /// Gossip travels along the channels of `physical`; the graph must
  /// outlive the network. Every node starts with an empty view.
  explicit GossipNetwork(const Graph& physical);

  /// Number of participating nodes.
  std::size_t num_nodes() const noexcept { return views_.size(); }

  const NodeView& view(NodeId node) const { return views_.at(node); }

  /// Injects an announcement at `origin` (in practice a channel endpoint
  /// announcing its own open/close). It will flood from there.
  void announce(NodeId origin, const Announcement& a);

  /// Convenience: both endpoints of channel c in the physical graph
  /// announce it open, with the given sequence number.
  void announce_channel_open(std::size_t channel, std::uint64_t seq = 1);

  /// Both endpoints announce channel c closed.
  void announce_channel_close(std::size_t channel, std::uint64_t seq);

  /// Announces every physical channel open (bootstrap), seq = 1.
  void announce_full_topology();

  /// Seeds every node's view with the full physical topology (seq = 1)
  /// WITHOUT exchanging any messages: models a network whose gossip
  /// converged long before the experiment starts, so bootstrap knowledge
  /// does not pollute the churn-announcement message count. Builds one
  /// shared sorted baseline and installs it in every view — O(nodes +
  /// channels log channels) time, O(channels) memory total (views share
  /// the baseline; see NodeView). Bumps every node's view version once
  /// per channel that was news to it.
  void bootstrap_full_topology();

  /// Monotone per-node counter, bumped every time `node`'s view adopts an
  /// announcement. Routers cache topology derived from a view and rebuild
  /// when the version moves (§3.3 "all entries are re-computed using the
  /// latest G").
  std::uint64_t view_version(NodeId node) const { return versions_.at(node); }

  /// Runs one flooding round: all pending announcements move one hop.
  /// Returns the number of messages exchanged in this round.
  std::size_t run_round();

  /// Floods until quiescent. Returns (rounds, total messages).
  std::pair<std::size_t, std::uint64_t> run_to_quiescence(
      std::size_t max_rounds = 1u << 20);

  /// True when no announcements are in flight.
  bool quiescent() const;

  /// True if every node's view agrees with every other's.
  bool converged() const;

  std::uint64_t total_messages() const noexcept { return total_messages_; }

 private:
  struct Pending {
    NodeId at;          // node that will forward it next round
    Announcement ann;
  };

  const Graph* graph_;
  std::vector<NodeView> views_;
  std::vector<std::uint64_t> versions_;  // per-node view change counter
  std::deque<Pending> pending_;
  std::uint64_t total_messages_ = 0;
};

}  // namespace flash::gossip

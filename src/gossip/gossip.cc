#include "gossip/gossip.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace flash::gossip {

GossipNetwork::GossipNetwork(const Graph& physical)
    : graph_(&physical),
      views_(physical.num_nodes()),
      versions_(physical.num_nodes(), 0) {}

void GossipNetwork::announce(NodeId origin, const Announcement& a) {
  if (origin >= views_.size()) {
    throw std::out_of_range("gossip: bad origin node");
  }
  if (views_[origin].apply(a)) {
    ++versions_[origin];
    pending_.push_back({origin, a});
  }
}

void GossipNetwork::announce_channel_open(std::size_t channel,
                                          std::uint64_t seq) {
  const EdgeId e = graph_->channel_forward_edge(channel);
  Announcement a;
  a.type = AnnouncementType::kChannelOpen;
  a.u = graph_->from(e);
  a.v = graph_->to(e);
  a.seq = seq;
  announce(a.u, a);
  announce(a.v, a);
}

void GossipNetwork::announce_channel_close(std::size_t channel,
                                           std::uint64_t seq) {
  const EdgeId e = graph_->channel_forward_edge(channel);
  Announcement a;
  a.type = AnnouncementType::kChannelClose;
  a.u = graph_->from(e);
  a.v = graph_->to(e);
  a.seq = seq;
  announce(a.u, a);
  announce(a.v, a);
}

void GossipNetwork::announce_full_topology() {
  for (std::size_t c = 0; c < graph_->num_channels(); ++c) {
    announce_channel_open(c, 1);
  }
}

void GossipNetwork::bootstrap_full_topology() {
  // Build the baseline channel list ONCE (normalized, sorted, deduped) and
  // share it across every view: O(nodes + channels) instead of the former
  // O(nodes x channels) per-view materialization — mandatory at 50k nodes.
  auto channels = std::make_shared<std::vector<std::pair<NodeId, NodeId>>>();
  channels->reserve(graph_->num_channels());
  for (std::size_t c = 0; c < graph_->num_channels(); ++c) {
    const EdgeId e = graph_->channel_forward_edge(c);
    NodeId u = graph_->from(e);
    NodeId v = graph_->to(e);
    if (u > v) std::swap(u, v);
    channels->emplace_back(u, v);
  }
  std::sort(channels->begin(), channels->end());
  channels->erase(std::unique(channels->begin(), channels->end()),
                  channels->end());
  const NodeView::Baseline baseline = std::move(channels);
  for (NodeId node = 0; node < views_.size(); ++node) {
    // set_baseline reports how many channels were news to the node — the
    // same count of version bumps the old per-announcement seeding did
    // (view versions feed router-rebuild rng seeds, so this must match).
    versions_[node] += views_[node].set_baseline(baseline);
  }
}

std::size_t GossipNetwork::run_round() {
  std::size_t messages = 0;
  const std::size_t batch = pending_.size();
  for (std::size_t i = 0; i < batch; ++i) {
    const Pending p = pending_.front();
    pending_.pop_front();
    for (const EdgeId e : graph_->out_edges(p.at)) {
      const NodeId neighbour = graph_->to(e);
      ++messages;
      if (views_[neighbour].apply(p.ann)) {
        ++versions_[neighbour];
        pending_.push_back({neighbour, p.ann});
      }
    }
  }
  total_messages_ += messages;
  return messages;
}

std::pair<std::size_t, std::uint64_t> GossipNetwork::run_to_quiescence(
    std::size_t max_rounds) {
  std::size_t rounds = 0;
  std::uint64_t messages = 0;
  while (!quiescent()) {
    if (rounds >= max_rounds) {
      throw std::runtime_error("gossip: did not quiesce");
    }
    messages += run_round();
    ++rounds;
  }
  return {rounds, messages};
}

bool GossipNetwork::quiescent() const { return pending_.empty(); }

bool GossipNetwork::converged() const {
  for (std::size_t i = 1; i < views_.size(); ++i) {
    if (!views_[0].agrees_with(views_[i])) return false;
  }
  return true;
}

}  // namespace flash::gossip

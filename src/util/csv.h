// Minimal CSV reading/writing used for traces and bench output.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace flash {

/// Streaming CSV writer. Quotes fields only when needed (comma, quote, NL).
class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  CsvWriter& field(std::string_view v);
  CsvWriter& field(double v);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(std::uint64_t v);
  CsvWriter& field(int v) { return field(static_cast<std::int64_t>(v)); }

  /// Ends the current row.
  void end_row();

 private:
  std::ostream& os_;
  bool row_started_ = false;
};

/// Splits one CSV line into fields, honoring double-quote escaping.
std::vector<std::string> parse_csv_line(std::string_view line);

/// Reads all rows of a CSV stream. If skip_header, drops the first row.
std::vector<std::vector<std::string>> read_csv(std::istream& is,
                                               bool skip_header = false);

}  // namespace flash

// Aligned console tables for bench output ("the same rows the paper reports").
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace flash {

/// Collects rows of string cells and renders them with aligned columns.
///
/// Used by the fig* bench binaries to print paper-style result tables.
class TextTable {
 public:
  /// Sets the header row.
  void header(std::vector<std::string> cells);

  /// Appends a data row.
  void row(std::vector<std::string> cells);

  /// Renders with a separator line under the header.
  std::string render() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helpers for numeric cells.
std::string fmt(double v, int precision = 3);
std::string fmt_pct(double fraction, int precision = 1);  // 0.42 -> "42.0%"
std::string fmt_sci(double v, int precision = 3);         // 1.2e+06
std::string fmt_ratio(double v, int precision = 2);       // 2.31 -> "2.31x"

}  // namespace flash

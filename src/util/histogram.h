// Log-binned histogram for heavy-tailed quantities (payment sizes, fees).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace flash {

/// Histogram with logarithmically spaced bins over [lo, hi).
///
/// Samples below lo land in an underflow bin, samples >= hi in an overflow
/// bin. Designed for payment-size distributions spanning many decades
/// (Fig. 3 covers 1e-9 .. 1e9 USD).
class LogHistogram {
 public:
  /// lo, hi: positive bounds with lo < hi; bins_per_decade >= 1.
  LogHistogram(double lo, double hi, std::size_t bins_per_decade = 4);

  void add(double x) noexcept;
  void add(double x, std::size_t count) noexcept;

  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t bin(std::size_t i) const { return counts_.at(i); }

  /// Lower edge of bin i (upper edge of bin i is lower_edge(i + 1)).
  double lower_edge(std::size_t i) const;

  /// CDF evaluated at the bin upper edges; includes underflow mass.
  /// Returns pairs (upper_edge, fraction <= upper_edge).
  std::vector<std::pair<double, double>> cdf() const;

  /// Quantile estimate for q in [0, 1], log-interpolated within the bin
  /// that crosses rank q*total. Mass in the underflow bin resolves to lo
  /// (lower_edge(0)), overflow mass to hi; 0 when the histogram is empty.
  /// Accuracy is bounded by the bin width (1/bins_per_decade of a decade),
  /// which is what p50/p99 latency reporting needs.
  double percentile(double q) const;

  /// Adds another histogram's counts into this one (per-worker latency
  /// histograms folded after a concurrent run). Binnings must match
  /// exactly (same lo/hi/bins_per_decade); throws std::invalid_argument
  /// otherwise.
  void merge(const LogHistogram& other);

  /// Multi-line ASCII rendering (for example programs and debugging).
  std::string render(std::size_t width = 50) const;

 private:
  double log_lo_;
  double log_hi_;
  double bins_per_decade_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace flash

// Bounded MPMC queue for pipeline stages (FlashRoute-style decoupling).
//
// The concurrent payment engine (sim/concurrent.cc) uses one instance per
// route worker for dispatch and one shared instance for completions, so a
// slow settle stage backpressures routing instead of queueing unboundedly.
// Mutex + two condvars rather than a lock-free ring: every handoff in the
// engine is batch-granular (tens of payments), so queue operations are far
// off the hot path, and the mutex gives the happens-before edges the
// deterministic-replay design relies on (workers read coordinator-owned
// state published before the push, with no atomics of their own).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace flash {

/// Fixed-capacity FIFO; blocking push/pop with non-blocking try_ variants.
///
/// Thread-safety: all members may be called concurrently from any thread.
/// close() wakes every waiter: subsequent push/try_push fail, pop drains
/// whatever is buffered and then returns nullopt. FIFO order is global
/// (single mutex), so a single consumer sees items in exact push order.
template <typename T>
class BoundedQueue {
 public:
  /// Capacity must be >= 1; push blocks while `capacity` items are buffered.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {
    buffer_.reserve(capacity_);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available or the queue is closed. Returns false
  /// (dropping `item`) iff the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || size_ < capacity_; });
    if (closed_) return false;
    place(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || size_ >= capacity_) return false;
      place(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND drained;
  /// nullopt means closed-and-drained (the consumer's exit signal).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || size_ > 0; });
    if (size_ == 0) return std::nullopt;
    T item = take();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when empty (closed or not).
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (size_ == 0) return std::nullopt;
      item = take();
    }
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: wakes all waiters, fails future pushes, lets pops
  /// drain the remaining items. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  // Ring over a lazily-grown vector: slots are appended until the buffer
  // reaches capacity (reserved up front), then reused in place.
  void place(T&& item) {
    const std::size_t slot = (head_ + size_) % capacity_;
    if (slot == buffer_.size()) {
      buffer_.push_back(std::move(item));
    } else {
      buffer_[slot] = std::move(item);
    }
    ++size_;
  }

  T take() {
    T item = std::move(buffer_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> buffer_;
  std::size_t head_ = 0;  // index of the oldest buffered item
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace flash

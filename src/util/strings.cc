#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace flash {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+.
  double value = 0.0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_uint(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace flash

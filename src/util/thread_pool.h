// Minimal fixed-size thread pool plus a dynamically-balanced parallel_for.
//
// The pool exists for embarrassingly parallel experiment grids (sim/sweep.h):
// workers pull tasks from one shared queue, and parallel_for hands out loop
// indices through an atomic counter so fast iterations steal slack from slow
// ones without any static partitioning. Determinism is the caller's job:
// tasks must not share mutable state, and anything seeded must derive its
// seed from the task index, never from thread identity or completion order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flash {

/// Fixed set of worker threads draining one FIFO task queue.
///
/// Thread-safety: submit() and wait_idle() may be called from any thread;
/// the destructor must race with neither. Tasks run concurrently and must
/// synchronize among themselves if they share state.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw out of operator() — wrap work
  /// that can throw (parallel_for does this for you).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;  // tasks currently executing
  bool stopping_ = false;
};

/// Runs fn(0) .. fn(n-1) across the pool and blocks until all complete.
///
/// Indices are claimed one at a time through an atomic counter (dynamic load
/// balancing); the mapping of index to thread is therefore unspecified, so
/// fn must be independent across indices. If any invocation throws, the
/// remaining indices still run and one arbitrary failing invocation's
/// exception (the first captured in wall-clock order) is rethrown.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Chunked claim mode: workers claim `grain` consecutive indices per
/// fetch_add instead of one, cutting atomic traffic by `grain`x on
/// fine-grained loops (e.g. per-channel invariant scans). Within a chunk,
/// fn runs on ascending indices on one thread; chunk-to-thread mapping is
/// still unspecified, so fn must stay independent across indices. grain=1
/// is exactly the single-index overload (the default everywhere else —
/// existing users keep their pinned work distribution).
void parallel_for_chunked(ThreadPool& pool, std::size_t n, std::size_t grain,
                          const std::function<void(std::size_t)>& fn);

}  // namespace flash

#include "util/csv.h"

#include <cstdio>
#include <istream>
#include <ostream>

namespace flash {

namespace {
bool needs_quoting(std::string_view v) {
  return v.find_first_of(",\"\n\r") != std::string_view::npos;
}
}  // namespace

CsvWriter& CsvWriter::field(std::string_view v) {
  if (row_started_) os_ << ',';
  row_started_ = true;
  if (needs_quoting(v)) {
    os_ << '"';
    for (char c : v) {
      if (c == '"') os_ << '"';
      os_ << c;
    }
    os_ << '"';
  } else {
    os_ << v;
  }
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return field(std::string_view(buf));
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return field(std::string_view(buf));
}

CsvWriter& CsvWriter::field(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return field(std::string_view(buf));
}

void CsvWriter::end_row() {
  os_ << '\n';
  row_started_ = false;
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // Tolerate CRLF input.
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::vector<std::vector<std::string>> read_csv(std::istream& is,
                                               bool skip_header) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (first && skip_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

}  // namespace flash

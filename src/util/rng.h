// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in this repository takes an explicit Rng (or a
// seed) so that simulations, workload generation and the testbed are
// bit-reproducible across runs.  The generator is xoshiro256** seeded via
// splitmix64, which is fast, has a 256-bit state and passes BigCrush.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace flash {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be handed to
/// <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Raw 64 uniform bits.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Standard normal via Box-Muller (no cached spare; stateless per call).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Pareto with scale x_m > 0 and shape alpha > 0.
  /// Throws std::invalid_argument on invalid parameters (Release too).
  double pareto(double x_m, double alpha);

  /// Exponential with the given rate lambda > 0.
  /// Throws std::invalid_argument on invalid parameters (Release too).
  double exponential(double lambda);

  /// Index in [0, weights.size()) drawn proportionally to weights.
  /// Precondition: weights non-empty, all >= 0, sum > 0.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle of an entire vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element. Precondition: v non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[next_below(v.size())];
  }

  /// Derive an independent child generator (for parallel/per-run streams).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Zipf(s, n) sampler over {0, .., n-1} using precomputed CDF inversion.
/// Used for clustered receiver selection (Fig. 4 recurrence structure).
class ZipfSampler {
 public:
  /// n: support size (> 0); s: exponent (>= 0; s=0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  std::size_t operator()(Rng& rng) const noexcept;

  std::size_t support() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative weights
};

}  // namespace flash

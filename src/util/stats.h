// Small descriptive-statistics helpers used by metrics and benches.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace flash {

/// Summary of a sample: n, min, max, mean, stddev (population), sum.
struct Summary {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double sum = 0.0;
};

/// Computes a Summary over the values. Empty input yields all zeros.
Summary summarize(std::span<const double> values);

/// p-th percentile (p in [0,100]) using linear interpolation between order
/// statistics. Throws std::invalid_argument on empty input or p outside
/// [0, 100] (enforced in Release builds too).
double percentile(std::vector<double> values, double p);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> values);

/// One (x, F(x)) point of an empirical CDF.
struct CdfPoint {
  double x = 0.0;
  double f = 0.0;  // fraction of samples <= x
};

/// Empirical CDF reduced to at most max_points points (uniformly spaced in
/// rank), always including min and max. Throws std::invalid_argument on
/// empty input or max_points < 2.
std::vector<CdfPoint> empirical_cdf(std::vector<double> values,
                                    std::size_t max_points = 64);

/// Fraction of total sum contributed by the top `top_fraction` of values
/// (e.g. top_fraction = 0.10 asks how much of the volume the largest 10 % of
/// payments carry). Throws std::invalid_argument on empty input or
/// top_fraction outside (0, 1].
double top_fraction_share(std::vector<double> values, double top_fraction);

/// Running accumulator when samples arrive one by one.
class RunningStat {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Population variance/stddev (Welford).
  double variance() const noexcept { return n_ ? m2_ / n_ : 0.0; }
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace flash

#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace flash {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  // Box-Muller; draw u1 away from 0 to keep log finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double x_m, double alpha) {
  // Validated with throws (not assert) so Release builds reject bad
  // parameters instead of silently sampling garbage.
  if (!(x_m > 0.0)) {
    throw std::invalid_argument("Rng::pareto: x_m must be > 0");
  }
  if (!(alpha > 0.0)) {
    throw std::invalid_argument("Rng::pareto: alpha must be > 0");
  }
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

double Rng::exponential(double lambda) {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("Rng::exponential: lambda must be > 0");
  }
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical fallback
}

Rng Rng::split() noexcept { return Rng(next()); }

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace flash

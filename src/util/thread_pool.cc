#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace flash {

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<std::size_t>(n) : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads > 0 ? threads : hardware_threads();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for_chunked(ThreadPool& pool, std::size_t n, std::size_t grain,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (grain < 1) grain = 1;

  // Shared by the runner tasks; the caller blocks until `pending` drains.
  struct State {
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();

  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t runners = std::min(pool.size(), chunks);
  state->pending = runners;
  for (std::size_t r = 0; r < runners; ++r) {
    pool.submit([state, n, grain, &fn] {
      for (;;) {
        const std::size_t lo = state->next.fetch_add(grain);
        if (lo >= n) break;
        const std::size_t hi = std::min(n, lo + grain);
        for (std::size_t i = lo; i < hi; ++i) {
          try {
            fn(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(state->mutex);
            if (!state->error) state->error = std::current_exception();
          }
        }
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->pending == 0) state->done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->pending == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(pool, n, /*grain=*/1, fn);
}

}  // namespace flash

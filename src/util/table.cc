#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace flash {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](std::string& out, const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      out += c;
      if (i + 1 < width.size()) {
        out.append(width[i] - c.size() + 2, ' ');
      }
    }
    out += '\n';
  };

  std::string out;
  if (!header_.empty()) {
    emit(out, header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    out.append(total > 2 ? total - 2 : total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(out, r);
  return out;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string fmt_ratio(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
  return buf;
}

}  // namespace flash

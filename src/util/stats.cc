#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace flash {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.n = values.size();
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    s.sum += v;
  }
  s.mean = s.sum / static_cast<double>(s.n);
  double m2 = 0.0;
  for (double v : values) m2 += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(m2 / static_cast<double>(s.n));
  return s;
}

double percentile(std::vector<double> values, double p) {
  // assert() vanishes under NDEBUG and would leave out-of-bounds UB in
  // Release builds, so these preconditions must throw.
  if (values.empty()) {
    throw std::invalid_argument("percentile: empty input");
  }
  if (!(p >= 0.0 && p <= 100.0)) {
    throw std::invalid_argument("percentile: p must be in [0, 100]");
  }
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> values,
                                    std::size_t max_points) {
  if (values.empty()) {
    throw std::invalid_argument("empirical_cdf: empty input");
  }
  if (max_points < 2) {
    throw std::invalid_argument("empirical_cdf: max_points must be >= 2");
  }
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  std::vector<CdfPoint> out;
  const std::size_t points = std::min(max_points, n);
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Evenly spaced ranks including first and last order statistic.
    const std::size_t rank =
        (points == 1) ? n - 1 : i * (n - 1) / (points - 1);
    out.push_back({values[rank],
                   static_cast<double>(rank + 1) / static_cast<double>(n)});
  }
  return out;
}

double top_fraction_share(std::vector<double> values, double top_fraction) {
  if (values.empty()) {
    throw std::invalid_argument("top_fraction_share: empty input");
  }
  if (!(top_fraction > 0.0 && top_fraction <= 1.0)) {
    throw std::invalid_argument(
        "top_fraction_share: top_fraction must be in (0, 1]");
  }
  std::sort(values.begin(), values.end(), std::greater<>());
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  if (total <= 0.0) return 0.0;
  auto top_n = static_cast<std::size_t>(
      std::ceil(top_fraction * static_cast<double>(values.size())));
  top_n = std::max<std::size_t>(1, std::min(top_n, values.size()));
  const double top_sum =
      std::accumulate(values.begin(), values.begin() + top_n, 0.0);
  return top_sum / total;
}

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace flash

#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace flash {

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade)
    : log_lo_(std::log10(lo)),
      log_hi_(std::log10(hi)),
      bins_per_decade_(static_cast<double>(bins_per_decade)) {
  assert(lo > 0 && hi > lo && bins_per_decade >= 1);
  const auto nbins = static_cast<std::size_t>(
      std::ceil((log_hi_ - log_lo_) * bins_per_decade_));
  counts_.assign(std::max<std::size_t>(1, nbins), 0);
}

void LogHistogram::add(double x) noexcept { add(x, 1); }

void LogHistogram::add(double x, std::size_t count) noexcept {
  total_ += count;
  if (!(x > 0) || std::log10(x) < log_lo_) {
    underflow_ += count;
    return;
  }
  const double pos = (std::log10(x) - log_lo_) * bins_per_decade_;
  const auto idx = static_cast<std::size_t>(pos);
  if (idx >= counts_.size()) {
    overflow_ += count;
    return;
  }
  counts_[idx] += count;
}

double LogHistogram::lower_edge(std::size_t i) const {
  assert(i <= counts_.size());
  return std::pow(10.0, log_lo_ + static_cast<double>(i) / bins_per_decade_);
}

std::vector<std::pair<double, double>> LogHistogram::cdf() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(counts_.size());
  if (total_ == 0) return out;
  std::size_t acc = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    out.emplace_back(lower_edge(i + 1),
                     static_cast<double>(acc) / static_cast<double>(total_));
  }
  return out;
}

double LogHistogram::percentile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [0, total]; find the first bin whose cumulative count reaches
  // it. Comparing against a real-valued rank keeps q=0 -> first occupied
  // bin's lower edge and q=1 -> last occupied bin's upper edge.
  const double rank = q * static_cast<double>(total_);
  double acc = static_cast<double>(underflow_);
  if (rank <= acc && underflow_ > 0) return lower_edge(0);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = acc + static_cast<double>(counts_[i]);
    if (rank <= next) {
      // Log-space interpolation: fraction of this bin's mass below rank.
      const double frac = (rank - acc) / static_cast<double>(counts_[i]);
      const double lo = log_lo_ + static_cast<double>(i) / bins_per_decade_;
      return std::pow(10.0, lo + frac / bins_per_decade_);
    }
    acc = next;
  }
  return std::pow(10.0, log_hi_);  // remaining mass is overflow
}

void LogHistogram::merge(const LogHistogram& other) {
  if (log_lo_ != other.log_lo_ || log_hi_ != other.log_hi_ ||
      bins_per_decade_ != other.bins_per_decade_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("LogHistogram::merge: binning mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::string LogHistogram::render(std::size_t width) const {
  std::string out;
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::size_t bar =
        peak ? counts_[i] * width / peak : 0;
    std::snprintf(line, sizeof(line), "%12.3e |%-*s %zu\n", lower_edge(i),
                  static_cast<int>(width),
                  std::string(bar, '#').c_str(), counts_[i]);
    out += line;
  }
  return out;
}

}  // namespace flash

#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace flash {

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade)
    : log_lo_(std::log10(lo)),
      log_hi_(std::log10(hi)),
      bins_per_decade_(static_cast<double>(bins_per_decade)) {
  assert(lo > 0 && hi > lo && bins_per_decade >= 1);
  const auto nbins = static_cast<std::size_t>(
      std::ceil((log_hi_ - log_lo_) * bins_per_decade_));
  counts_.assign(std::max<std::size_t>(1, nbins), 0);
}

void LogHistogram::add(double x) noexcept { add(x, 1); }

void LogHistogram::add(double x, std::size_t count) noexcept {
  total_ += count;
  if (!(x > 0) || std::log10(x) < log_lo_) {
    underflow_ += count;
    return;
  }
  const double pos = (std::log10(x) - log_lo_) * bins_per_decade_;
  const auto idx = static_cast<std::size_t>(pos);
  if (idx >= counts_.size()) {
    overflow_ += count;
    return;
  }
  counts_[idx] += count;
}

double LogHistogram::lower_edge(std::size_t i) const {
  assert(i <= counts_.size());
  return std::pow(10.0, log_lo_ + static_cast<double>(i) / bins_per_decade_);
}

std::vector<std::pair<double, double>> LogHistogram::cdf() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(counts_.size());
  if (total_ == 0) return out;
  std::size_t acc = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    out.emplace_back(lower_edge(i + 1),
                     static_cast<double>(acc) / static_cast<double>(total_));
  }
  return out;
}

std::string LogHistogram::render(std::size_t width) const {
  std::string out;
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::size_t bar =
        peak ? counts_[i] * width / peak : 0;
    std::snprintf(line, sizeof(line), "%12.3e |%-*s %zu\n", lower_edge(i),
                  static_cast<int>(width),
                  std::string(bar, '#').c_str(), counts_[i]);
    out += line;
  }
  return out;
}

}  // namespace flash

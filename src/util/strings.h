// String parsing helpers shared by trace and topology I/O.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace flash {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Strict full-string parses; nullopt on any trailing garbage or overflow.
std::optional<double> parse_double(std::string_view s);
std::optional<std::int64_t> parse_int(std::string_view s);
std::optional<std::uint64_t> parse_uint(std::string_view s);

/// True if s starts with the given prefix.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII.
std::string to_lower(std::string_view s);

}  // namespace flash

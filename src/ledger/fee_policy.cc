#include "ledger/fee_policy.h"

namespace flash {

FeeSchedule FeeSchedule::paper_default(const Graph& g, Rng& rng) {
  FeeSchedule s(g);
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    const double rate = rng.chance(0.9) ? rng.uniform(0.001, 0.01)
                                        : rng.uniform(0.01, 0.10);
    const EdgeId fwd = g.channel_forward_edge(c);
    s.policies_[fwd] = FeePolicy{0, rate};
    s.policies_[g.reverse(fwd)] = FeePolicy{0, rate};
  }
  return s;
}

FeeSchedule FeeSchedule::lightning_default(const Graph& g, Rng& rng,
                                           Amount base_lo, Amount base_hi) {
  FeeSchedule s(g);
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    const double rate = rng.chance(0.9) ? rng.uniform(0.001, 0.01)
                                        : rng.uniform(0.01, 0.10);
    const Amount base = rng.uniform(base_lo, base_hi);
    const EdgeId fwd = g.channel_forward_edge(c);
    s.policies_[fwd] = FeePolicy{base, rate};
    s.policies_[g.reverse(fwd)] = FeePolicy{base, rate};
  }
  return s;
}

Amount FeeSchedule::path_fee(const Path& path, Amount amount) const {
  Amount total = 0;
  for (EdgeId e : path) total += edge_fee(e, amount);
  return total;
}

double FeeSchedule::path_rate(const Path& path) const {
  double total = 0;
  for (EdgeId e : path) total += policies_.at(e).rate;
  return total;
}

}  // namespace flash

// Transaction-fee model for payment channels.
//
// Intermediate nodes collect fees for relaying payments (paper §3.2). In
// practice the charging function is linear: a fixed base fee plus a
// volume-proportional component; the paper's evaluation (§4.3) uses purely
// proportional fees, with 90 % of channels charging U[0.1 %, 1 %] and 10 %
// charging U[1 %, 10 %] of the relayed volume.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace flash {

/// Linear fee: fee(amount) = base + rate * amount.
struct FeePolicy {
  Amount base = 0;
  double rate = 0;

  Amount fee(Amount amount) const noexcept { return base + rate * amount; }
};

/// Per-directed-edge fee policies for a whole network.
class FeeSchedule {
 public:
  FeeSchedule() = default;

  /// Zero fees on every directed edge of g.
  explicit FeeSchedule(const Graph& g) : policies_(g.num_edges()) {}

  /// The paper's evaluation setup: each *channel* draws one proportional
  /// rate, applied to both directions; 90 % of channels draw the rate from
  /// U[0.1 %, 1 %] and the rest from U[1 %, 10 %] (§4.3).
  static FeeSchedule paper_default(const Graph& g, Rng& rng);

  /// Lightning-style linear fees: on top of the paper's proportional draw,
  /// each channel charges a base fee drawn from U[base_lo, base_hi]
  /// (CLoTH's per-edge base+proportional policy model). The HTLC fee
  /// escrow makes base fees matter: every in-flight hop locks
  /// amount + downstream fees, so base fees consume liquidity even for
  /// tiny payments.
  static FeeSchedule lightning_default(const Graph& g, Rng& rng,
                                       Amount base_lo = 0.1,
                                       Amount base_hi = 1.0);

  const FeePolicy& policy(EdgeId e) const { return policies_.at(e); }
  void set_policy(EdgeId e, FeePolicy p) { policies_.at(e) = p; }

  /// Fee charged for relaying `amount` across directed edge e.
  Amount edge_fee(EdgeId e, Amount amount) const {
    return policies_.at(e).fee(amount);
  }

  /// Total fee for sending `amount` along every edge of `path`.
  Amount path_fee(const Path& path, Amount amount) const;

  /// Sum of proportional rates along a path (the LP objective coefficient).
  double path_rate(const Path& path) const;

  std::size_t size() const noexcept { return policies_.size(); }
  bool empty() const noexcept { return policies_.empty(); }

 private:
  std::vector<FeePolicy> policies_;
};

}  // namespace flash

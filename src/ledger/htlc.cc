#include "ledger/htlc.h"

#include <stdexcept>

namespace flash {

AtomicPayment::~AtomicPayment() {
  if (!settled_) abort();
  if (holds_ != &owned_holds_) state_->release_payment_holds();
}

bool AtomicPayment::add_part(const Path& path, Amount amount) {
  if (settled_) throw std::logic_error("add_part after settle");
  const auto id = state_->hold(path, amount);
  if (!id) return false;
  holds_->push_back(*id);
  held_amount_ += amount;
  return true;
}

bool AtomicPayment::add_flow(std::span<const EdgeAmount> edge_amounts,
                             Amount amount) {
  if (settled_) throw std::logic_error("add_flow after settle");
  const auto id = state_->hold_flow(edge_amounts);
  if (!id) return false;
  holds_->push_back(*id);
  held_amount_ += amount;
  return true;
}

void AtomicPayment::commit() {
  if (settled_) throw std::logic_error("double settle");
  for (HoldId id : *holds_) state_->commit(id);
  settled_ = true;
}

void AtomicPayment::abort() {
  if (settled_) return;
  for (HoldId id : *holds_) state_->abort(id);
  holds_->clear();
  held_amount_ = 0;
  settled_ = true;
}

}  // namespace flash

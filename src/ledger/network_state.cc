#include "ledger/network_state.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace flash {

namespace {
constexpr Amount kEps = 1e-6;
}

NetworkState::NetworkState(const Graph& g)
    : graph_(&g),
      balance_(g.num_edges(), 0),
      deposit_(g.num_channels(), 0) {}

void NetworkState::set_balance(EdgeId e, Amount amount) {
  if (amount < 0) throw std::invalid_argument("negative balance");
  balance_.at(e) = amount;
  recompute_deposits();
}

void NetworkState::assign_balances(std::span<const Amount> balances) {
  if (balances.size() != balance_.size()) {
    throw std::invalid_argument("assign_balances: edge count mismatch");
  }
  if (active_holds_ != 0) {
    throw std::logic_error("assign_balances with holds in flight");
  }
  for (const Amount b : balances) {
    if (b < 0) throw std::invalid_argument("assign_balances: negative balance");
  }
  std::copy(balances.begin(), balances.end(), balance_.begin());
  recompute_deposits();
}

void NetworkState::mirror_balance(EdgeId e, Amount amount) {
  if (amount < 0) throw std::invalid_argument("mirror_balance: negative");
  assert(e < balance_.size());
  balance_[e] = amount;
}

void NetworkState::assign_uniform_split(Amount lo, Amount hi, Rng& rng) {
  for (std::size_t c = 0; c < graph_->num_channels(); ++c) {
    const Amount cap = rng.uniform(lo, hi);
    const EdgeId fwd = graph_->channel_forward_edge(c);
    balance_[fwd] = cap / 2;
    balance_[graph_->reverse(fwd)] = cap / 2;
  }
  recompute_deposits();
}

void NetworkState::assign_uniform_skewed(Amount lo, Amount hi, double skew_lo,
                                         double skew_hi, Rng& rng) {
  if (skew_lo < 0 || skew_hi > 1 || skew_lo > skew_hi) {
    throw std::invalid_argument("assign_uniform_skewed: bad skew range");
  }
  for (std::size_t c = 0; c < graph_->num_channels(); ++c) {
    const Amount cap = rng.uniform(lo, hi);
    const double f = rng.uniform(skew_lo, skew_hi);
    const EdgeId fwd = graph_->channel_forward_edge(c);
    balance_[fwd] = cap * f;
    balance_[graph_->reverse(fwd)] = cap * (1 - f);
  }
  recompute_deposits();
}

void NetworkState::assign_lognormal_split(Amount median, double sigma,
                                          Rng& rng) {
  if (median <= 0) throw std::invalid_argument("median must be positive");
  const double mu = std::log(median);
  for (std::size_t c = 0; c < graph_->num_channels(); ++c) {
    const Amount cap = rng.lognormal(mu, sigma);
    const EdgeId fwd = graph_->channel_forward_edge(c);
    balance_[fwd] = cap / 2;
    balance_[graph_->reverse(fwd)] = cap / 2;
  }
  recompute_deposits();
}

void NetworkState::assign_lognormal_degree_weighted(Amount median,
                                                    double sigma, Rng& rng) {
  if (median <= 0) throw std::invalid_argument("median must be positive");
  double avg_degree = 0;
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    avg_degree += static_cast<double>(graph_->out_degree(v));
  }
  avg_degree /= std::max<double>(1.0, static_cast<double>(graph_->num_nodes()));
  const double mu = std::log(median);
  for (std::size_t c = 0; c < graph_->num_channels(); ++c) {
    const EdgeId fwd = graph_->channel_forward_edge(c);
    const double du = static_cast<double>(graph_->out_degree(graph_->from(fwd)));
    const double dv = static_cast<double>(graph_->out_degree(graph_->to(fwd)));
    const double weight = std::sqrt(du * dv) / std::max(avg_degree, 1.0);
    const Amount cap = rng.lognormal(mu, sigma) * weight;
    balance_[fwd] = cap / 2;
    balance_[graph_->reverse(fwd)] = cap / 2;
  }
  recompute_deposits();
}

void NetworkState::scale_all(double factor) {
  if (factor <= 0) throw std::invalid_argument("scale factor must be > 0");
  if (active_holds_ != 0) {
    throw std::logic_error("scale_all with holds in flight");
  }
  for (auto& b : balance_) b *= factor;
  recompute_deposits();
}

Amount NetworkState::channel_deposit(EdgeId e) const {
  assert(graph_->channel_of(e) < deposit_.size());
  return deposit_[graph_->channel_of(e)];
}

Amount NetworkState::total_balance() const {
  Amount total = 0;
  for (Amount b : balance_) total += b;
  return total;
}

Amount NetworkState::total_held() const {
  Amount total = 0;
  for (const auto& h : holds_) {
    if (!h.active) continue;
    for (const auto& [e, amt] : h.parts) total += amt;
  }
  return total;
}

Amount NetworkState::path_bottleneck(const Path& path) const {
  if (path.empty()) return 0;
  Amount bn = balance(path.front());
  for (EdgeId e : path) bn = std::min(bn, balance(e));
  return bn;
}

bool NetworkState::path_can_carry(const Path& path, Amount amount) const {
  for (EdgeId e : path) {
    if (balance(e) + kEps < amount) return false;
  }
  return true;
}

std::vector<Amount> NetworkState::probe_path(const Path& path) {
  std::vector<Amount> out;
  probe_path_into(path, out);
  return out;
}

void NetworkState::probe_path_into(const Path& path,
                                   std::vector<Amount>& out) {
  probe_messages_ += 2 * path.size();  // PROBE forward + PROBE_ACK back
  out.clear();
  out.reserve(path.size());
  for (EdgeId e : path) out.push_back(balance(e));
}

std::optional<HoldId> NetworkState::hold(const Path& path, Amount amount) {
  if (amount <= 0 || path.empty()) {
    throw std::invalid_argument("hold: need positive amount, non-empty path");
  }
  // Stage the parts in PATH order: the HTLC engine reads hold_parts() as
  // the hop sequence. Duplicate edges of a non-simple path aggregate onto
  // their first occurrence (paths are simple in practice, so the inner
  // scan is a no-op).
  hold_scratch_.clear();
  for (EdgeId e : path) {
    bool merged = false;
    for (auto& [se, samt] : hold_scratch_) {
      if (se == e) {
        samt += amount;
        merged = true;
        break;
      }
    }
    if (!merged) hold_scratch_.emplace_back(e, amount);
  }
  return place_hold();
}

std::optional<HoldId> NetworkState::hold_flow(
    std::span<const EdgeAmount> edge_amounts) {
  // Working copy in reused scratch; aggregate duplicates so the
  // feasibility check is exact.
  hold_scratch_.assign(edge_amounts.begin(), edge_amounts.end());
  std::erase_if(hold_scratch_,
                [](const EdgeAmount& ea) { return ea.second <= 0; });
  if (hold_scratch_.empty()) return std::nullopt;
  std::sort(hold_scratch_.begin(), hold_scratch_.end());
  std::size_t w = 0;
  for (std::size_t i = 0; i < hold_scratch_.size(); ++i) {
    if (w > 0 && hold_scratch_[w - 1].first == hold_scratch_[i].first) {
      hold_scratch_[w - 1].second += hold_scratch_[i].second;
    } else {
      hold_scratch_[w++] = hold_scratch_[i];
    }
  }
  hold_scratch_.resize(w);
  return place_hold();
}

std::uint64_t NetworkState::acquire_slot() {
  // Recycle a retired slot when one exists, so holds_ stays bounded by the
  // maximum number of concurrently active holds and steady-state holding
  // allocates nothing (the record keeps its parts capacity). The slot's
  // generation rides in the id's upper bits so a stale id can never
  // silently settle a later payment's hold.
  std::uint64_t slot;
  if (!free_hold_slots_.empty()) {
    slot = free_hold_slots_.back();
    free_hold_slots_.pop_back();
  } else {
    slot = static_cast<std::uint64_t>(holds_.size());
    holds_.emplace_back();
  }
  HoldRecord& h = holds_[slot];
  ++h.generation;
  h.parts.clear();
  h.settled = 0;
  h.expiry = std::numeric_limits<double>::infinity();
  h.settling = false;
  return slot;
}

std::optional<HoldId> NetworkState::place_hold() {
  // Feasibility first: a failed hold changes nothing and consumes no slot.
  for (const auto& [e, amt] : hold_scratch_) {
    if (e >= graph_->num_edges()) {
      throw std::out_of_range("hold: bad edge id");
    }
    log_read(e);
    if (balance_[e] + kEps < amt) return std::nullopt;
  }
  const std::uint64_t slot = acquire_slot();
  HoldRecord& h = holds_[slot];
  h.parts.assign(hold_scratch_.begin(), hold_scratch_.end());
  for (const auto& [e, amt] : h.parts) {
    log_write(e);
    balance_[e] = std::max<Amount>(0, balance_[e] - amt);
  }
  h.active = true;
  ++active_holds_;
  return (static_cast<HoldId>(h.generation) << 32) | slot;
}

HoldId NetworkState::open_hold() {
  const std::uint64_t slot = acquire_slot();
  HoldRecord& h = holds_[slot];
  h.active = true;
  ++active_holds_;
  return (static_cast<HoldId>(h.generation) << 32) | slot;
}

bool NetworkState::extend_hold(HoldId id, EdgeId e, Amount amount) {
  if (amount <= 0) {
    throw std::invalid_argument("extend_hold: need positive amount");
  }
  HoldRecord& h = checked_active_record(id);
  if (e >= graph_->num_edges()) {
    throw std::out_of_range("extend_hold: bad edge id");
  }
  log_read(e);
  if (balance_[e] + kEps < amount) return false;
  log_write(e);
  balance_[e] = std::max<Amount>(0, balance_[e] - amount);
  h.parts.emplace_back(e, amount);
  return true;
}

std::span<const EdgeAmount> NetworkState::hold_parts(HoldId id) {
  return checked_active_record(id).parts;
}

void NetworkState::retire_if_settled(HoldRecord& h, std::uint64_t slot) {
  if (h.settled < h.parts.size()) return;
  h.active = false;
  --active_holds_;
  free_hold_slots_.push_back(slot);
}

void NetworkState::commit_hop(HoldId id, std::size_t hop) {
  HoldRecord& h = checked_active_record(id);
  if (hop >= h.parts.size()) {
    throw std::out_of_range("commit_hop: bad hop index");
  }
  auto& [e, amt] = h.parts[hop];
  if (amt <= 0) throw std::logic_error("commit_hop: hop already settled");
  const EdgeId rev = graph_->reverse(e);
  log_read(rev);  // credit is a read-modify-write
  log_write(rev);
  balance_[rev] += amt;
  amt = 0;
  ++h.settled;
  retire_if_settled(h, id & 0xffffffffull);
}

void NetworkState::abort_hop(HoldId id, std::size_t hop) {
  HoldRecord& h = checked_active_record(id);
  if (hop >= h.parts.size()) {
    throw std::out_of_range("abort_hop: bad hop index");
  }
  auto& [e, amt] = h.parts[hop];
  if (amt <= 0) throw std::logic_error("abort_hop: hop already settled");
  log_read(e);  // refund is a read-modify-write
  log_write(e);
  balance_[e] += amt;
  amt = 0;
  ++h.settled;
  retire_if_settled(h, id & 0xffffffffull);
}

void NetworkState::set_hold_expiry(HoldId id, double expiry) {
  checked_active_record(id).expiry = expiry;
}

double NetworkState::hold_expiry(HoldId id) {
  return checked_active_record(id).expiry;
}

void NetworkState::mark_hold_settling(HoldId id) {
  checked_active_record(id).settling = true;
}

bool NetworkState::hold_settling(HoldId id) {
  return checked_active_record(id).settling;
}

bool NetworkState::hold_active(HoldId id) const noexcept {
  const std::uint64_t slot = id & 0xffffffffull;
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  return slot < holds_.size() && holds_[slot].generation == generation &&
         holds_[slot].active;
}

NetworkState::CloseResolution NetworkState::resolve_holds_on_close(
    std::size_t channel) {
  if (channel >= deposit_.size()) {
    throw std::out_of_range("resolve_holds_on_close: bad channel");
  }
  CloseResolution res;
  const EdgeId fe = graph_->channel_forward_edge(channel);
  const EdgeId be = graph_->reverse(fe);
  for (std::uint64_t slot = 0; slot < holds_.size(); ++slot) {
    HoldRecord& h = holds_[slot];
    if (!h.active) continue;
    bool touched = false;
    for (auto& [e, amt] : h.parts) {
      if (amt <= 0 || (e != fe && e != be)) continue;
      touched = true;
      if (h.settling) {
        // The preimage is public: the downstream party claims the HTLC
        // output on-chain — the same reverse-direction credit commit_hop
        // would have made.
        const EdgeId rev = graph_->reverse(e);
        log_read(rev);
        log_write(rev);
        balance_[rev] += amt;
        res.settled_amount += amt;
        ++res.settled_hops;
      } else {
        // No preimage: the HTLC output times out back to the sender side.
        log_read(e);
        log_write(e);
        balance_[e] += amt;
        res.refunded_amount += amt;
        ++res.refunded_hops;
      }
      amt = 0;
      ++h.settled;
    }
    // Only holds this close actually resolved may retire here: an untouched
    // hold with zero parts (open_hold before any extend) must stay active —
    // its owner still holds the id and will commit or abort it.
    if (touched) retire_if_settled(h, slot);
  }
  return res;
}

void NetworkState::set_channel_balance(std::size_t channel, Amount fwd,
                                       Amount bwd) {
  if (channel >= deposit_.size()) {
    throw std::out_of_range("set_channel_balance: bad channel");
  }
  if (fwd < 0 || bwd < 0) {
    throw std::invalid_argument("set_channel_balance: negative balance");
  }
  const EdgeId fe = graph_->channel_forward_edge(channel);
  const EdgeId be = graph_->reverse(fe);
  for (const auto& h : holds_) {
    if (!h.active) continue;
    for (const auto& [e, amt] : h.parts) {
      if (amt > 0 && (e == fe || e == be)) {
        throw std::logic_error(
            "set_channel_balance: channel carries in-flight holds - call "
            "resolve_holds_on_close first");
      }
    }
  }
  balance_[fe] = fwd;
  balance_[be] = bwd;
  deposit_[channel] = fwd + bwd;
}

void NetworkState::held_channels(std::vector<char>& out) const {
  out.assign(deposit_.size(), 0);
  for (const auto& h : holds_) {
    if (!h.active) continue;
    for (const auto& [e, amt] : h.parts) {
      if (amt > 0) out[graph_->channel_of(e)] = 1;
    }
  }
}

NetworkState::HoldRecord& NetworkState::checked_active_record(HoldId id) {
  const std::uint64_t slot = id & 0xffffffffull;
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= holds_.size() || holds_[slot].generation != generation ||
      !holds_[slot].active) {
    throw std::logic_error("hold id not active (settled, stale or foreign)");
  }
  return holds_[slot];
}

void NetworkState::commit(HoldId id) {
  if (defer_commits_) {
    (void)checked_active_record(id);  // validate now, settle later
    deferred_commits_.push_back(id);
    return;
  }
  HoldRecord& h = checked_active_record(id);
  for (const auto& [e, amt] : h.parts) {
    if (amt <= 0) continue;  // already settled hop-wise
    const EdgeId rev = graph_->reverse(e);
    log_read(rev);  // credit is a read-modify-write
    log_write(rev);
    balance_[rev] += amt;
  }
  h.active = false;
  --active_holds_;
  free_hold_slots_.push_back(id & 0xffffffffull);
}

void NetworkState::abort(HoldId id) {
  HoldRecord& h = checked_active_record(id);
  for (const auto& [e, amt] : h.parts) {
    if (amt <= 0) continue;  // already settled hop-wise
    log_read(e);  // refund is a read-modify-write
    log_write(e);
    balance_[e] += amt;
  }
  h.active = false;
  --active_holds_;
  free_hold_slots_.push_back(id & 0xffffffffull);
}

bool NetworkState::check_invariants(std::size_t* bad_channel) const {
  // held[e] = sum of active hold amounts on e.
  std::vector<Amount> held(graph_->num_edges(), 0);
  for (const auto& h : holds_) {
    if (!h.active) continue;
    for (const auto& [e, amt] : h.parts) held[e] += amt;
  }
  for (std::size_t c = 0; c < graph_->num_channels(); ++c) {
    const EdgeId fwd = graph_->channel_forward_edge(c);
    const EdgeId bwd = graph_->reverse(fwd);
    const Amount sum = balance_[fwd] + balance_[bwd] + held[fwd] + held[bwd];
    const Amount tolerance =
        1e-4 * std::max<Amount>(1, std::abs(deposit_[c]));
    if (std::abs(sum - deposit_[c]) > tolerance) {
      if (bad_channel) *bad_channel = c;
      return false;
    }
    if (balance_[fwd] < -kEps || balance_[bwd] < -kEps) {
      if (bad_channel) *bad_channel = c;
      return false;
    }
  }
  return true;
}

NetworkState::Snapshot NetworkState::snapshot() const {
  if (active_holds_ != 0) {
    throw std::logic_error("snapshot with holds in flight");
  }
  return Snapshot{balance_};
}

void NetworkState::restore(const Snapshot& s) {
  if (s.balance.size() != balance_.size()) {
    throw std::invalid_argument("snapshot size mismatch");
  }
  if (active_holds_ != 0) {
    throw std::logic_error("restore with holds in flight");
  }
  balance_ = s.balance;
  // No holds are in flight (checked above), so every record is retired and
  // already on the free list; keeping them preserves their parts capacity
  // for the next payments instead of re-allocating after every restore.
  recompute_deposits();
}

void NetworkState::recompute_deposits() {
  for (std::size_t c = 0; c < graph_->num_channels(); ++c) {
    const EdgeId fwd = graph_->channel_forward_edge(c);
    deposit_[c] = balance_[fwd] + balance_[graph_->reverse(fwd)];
  }
}

}  // namespace flash

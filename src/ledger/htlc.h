// Atomic multipath payment (AMP) coordination over the ledger.
//
// The paper assumes multipath atomicity is provided by AMP on top of HTLC
// (§3.1): the receiver either receives all partial payments or none. This
// class realizes that contract against NetworkState: partial payments are
// *held* as they are placed; the payment as a whole is then committed or
// aborted. Destruction before commit() aborts everything (strong exception
// safety for routers).
#pragma once

#include <span>
#include <vector>

#include "ledger/network_state.h"

namespace flash {

class AtomicPayment {
 public:
  explicit AtomicPayment(NetworkState& state)
      : state_(&state), holds_(state.acquire_payment_holds()) {
    // Leased-out buffer (a nested payment on the same ledger): fall back
    // to private storage, paying allocations on that rare path only.
    if (!holds_) holds_ = &owned_holds_;
  }

  AtomicPayment(const AtomicPayment&) = delete;
  AtomicPayment& operator=(const AtomicPayment&) = delete;
  AtomicPayment(AtomicPayment&&) = delete;
  AtomicPayment& operator=(AtomicPayment&&) = delete;

  /// Aborts all held parts unless the payment was committed.
  ~AtomicPayment();

  /// Tries to hold `amount` along `path`. Returns false (holding nothing
  /// new) if the path cannot carry the amount.
  bool add_part(const Path& path, Amount amount);

  /// Tries to hold a flow (per-edge amounts, e.g. the netted result of an
  /// LP split). `amount` is the end-to-end value it represents, counted in
  /// held_amount() on success.
  bool add_flow(std::span<const EdgeAmount> edge_amounts, Amount amount);

  /// Total end-to-end amount held so far across all parts.
  Amount held_amount() const noexcept { return held_amount_; }

  std::size_t parts() const noexcept { return holds_->size(); }

  /// Commits every part. May be called once; no further add_part allowed.
  void commit();

  /// Aborts every part explicitly (idempotent; also done by destructor).
  void abort();

 private:
  NetworkState* state_;
  std::vector<HoldId>* holds_;        // leased from the ledger, usually
  std::vector<HoldId> owned_holds_;   // nested-payment fallback storage
  Amount held_amount_ = 0;
  bool settled_ = false;  // committed or aborted
};

}  // namespace flash

// Dynamic channel-balance ledger of an offchain network.
//
// The Graph carries the (quasi-static) topology that every node knows; this
// class carries what nodes do NOT know a priori: the per-direction channel
// balances, which change after every payment (paper §1, §3.1). Routers may
// only learn balances through the probing interface, which also counts
// probe messages so that the overhead comparisons of §4.2 are faithful.
//
// Channel invariant: for every channel, balance(u->v) + balance(v->u) +
// in-flight holds == total deposit, under every sequence of operations.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace flash {

/// Identifier of an in-flight (held but not yet committed) payment part.
/// Valid from hold()/hold_flow() until the matching commit()/abort();
/// record slots are then recycled for later holds (so a long simulation's
/// hold table stays bounded by the maximum number of concurrently active
/// holds and steady-state holding performs no heap allocations). The id
/// carries the slot's generation in its upper 32 bits, so settling a
/// stale id throws std::logic_error even after the slot was reused.
using HoldId = std::uint64_t;

/// Amount held/transferred on one directed edge.
using EdgeAmount = std::pair<EdgeId, Amount>;

class NetworkState {
 public:
  /// All balances zero.
  explicit NetworkState(const Graph& g);

  const Graph& graph() const noexcept { return *graph_; }

  // --- Balance initialization -------------------------------------------

  /// Sets the balance of a single directed edge (init-time only: it also
  /// re-bases the channel's recorded deposit).
  void set_balance(EdgeId e, Amount amount);

  /// Replaces every per-edge balance in one pass, re-basing all deposits
  /// once (set_balance re-bases per call, which is O(channels) each). Used
  /// by the scenario engine to sync a stale-view mirror ledger from the
  /// live one before each payment, and for bulk balance drift. Throws
  /// std::invalid_argument on size mismatch or a negative balance and
  /// std::logic_error when holds are in flight.
  void assign_balances(std::span<const Amount> balances);

  /// Overwrites one directed edge's balance WITHOUT re-basing the channel
  /// deposit. For mirroring settled payments between ledgers that share a
  /// channel layout: the caller must conserve each channel's total (the
  /// periodic check_invariants sweep verifies it did). Throws
  /// std::invalid_argument on a negative amount.
  void mirror_balance(EdgeId e, Amount amount);

  /// Draws each *channel* capacity from U[lo, hi) and splits it evenly
  /// across the two directions (the paper redistributes Ripple funds
  /// evenly, §4.1; the testbed draws channel capacity from an interval,
  /// §5.2).
  void assign_uniform_split(Amount lo, Amount hi, Rng& rng);

  /// Like assign_uniform_split, but the forward direction receives a
  /// random fraction drawn from U[skew_lo, skew_hi] of the channel
  /// capacity (skew 0.5/0.5 reproduces the even split). Real channels are
  /// funded mostly by the opening party, so single-path routing meets
  /// depleted directions much more often than the even split suggests.
  void assign_uniform_skewed(Amount lo, Amount hi, double skew_lo,
                             double skew_hi, Rng& rng);

  /// Draws each channel capacity lognormal(mu, sigma) and splits evenly.
  /// `median` is the distribution median (= exp(mu)).
  void assign_lognormal_split(Amount median, double sigma, Rng& rng);

  /// Like assign_lognormal_split, but scales each channel's capacity by
  /// the geometric mean of its endpoints' degrees relative to the average
  /// degree. Well-connected nodes fund larger channels in real PCNs
  /// (gateway/whale channels), so hub-hub channels carry most liquidity.
  /// `median` remains the median for a channel between average-degree
  /// endpoints.
  void assign_lognormal_degree_weighted(Amount median, double sigma,
                                        Rng& rng);

  /// Multiplies every balance by `factor` (the capacity scale factor of
  /// Fig. 6). Precondition: no holds in flight.
  void scale_all(double factor);

  // --- Introspection ------------------------------------------------------

  /// Balance of a directed edge. This is the single hottest read in the
  /// whole simulator (every probe, feasibility check and settle goes
  /// through it), so indexing is unchecked in Release; Debug/ASan builds
  /// keep the bounds assert. Edge ids come from the Graph the state was
  /// built over, so out-of-range ids are programming errors, not inputs.
  /// The read-log branch costs one well-predicted compare on ledgers that
  /// never enable it (everything but speculative worker mirrors).
  Amount balance(EdgeId e) const {
    assert(e < balance_.size());
    if (read_log_enabled_) read_log_.push_back(e);
    return balance_[e];
  }

  // --- Relaxed shared access (free-order concurrent engine) ---------------
  //
  // The free-order engine lets worker threads write disjoint-stripe commits
  // and read cross-stripe balances concurrently (mirror resyncs run without
  // taking every stripe lock). Those accesses go through atomic_ref so the
  // concurrent reads are not data races; values may be instantaneously
  // stale, which the striped-commit revalidation tolerates by design.

  /// Racy-but-not-UB balance read for concurrent phases.
  Amount balance_relaxed(EdgeId e) const noexcept {
    assert(e < balance_.size());
    return std::atomic_ref<Amount>(const_cast<Amount&>(balance_[e]))
        .load(std::memory_order_relaxed);
  }

  /// Balance store visible to concurrent balance_relaxed readers. Does NOT
  /// re-base deposits and is NOT journaled (like mirror_balance, the caller
  /// owns conservation; check_invariants verifies it after the join).
  void store_balance_relaxed(EdgeId e, Amount v) noexcept {
    assert(e < balance_.size());
    std::atomic_ref<Amount>(const_cast<Amount&>(balance_[e]))
        .store(v, std::memory_order_relaxed);
  }

  /// Total deposit of the channel containing e (both directions + holds).
  Amount channel_deposit(EdgeId e) const;

  /// Sum of all balances (excludes held amounts).
  Amount total_balance() const;

  /// Sum of all held amounts (over every edge of every active hold).
  Amount total_held() const;

  /// Bottleneck (minimum) balance along a path; 0 for an empty path.
  Amount path_bottleneck(const Path& path) const;

  /// True if every edge of the path has balance >= amount.
  bool path_can_carry(const Path& path, Amount amount) const;

  // --- Probing ------------------------------------------------------------

  /// Reads the balances along `path`, charging 2*|path| probe messages
  /// (PROBE out along the path + PROBE_ACK back, §5.1).
  std::vector<Amount> probe_path(const Path& path);

  /// Allocation-free variant: overwrites `out` with the balances along
  /// `path` (capacity reused across probes). Same message accounting.
  void probe_path_into(const Path& path, std::vector<Amount>& out);

  /// Number of probe messages sent so far (monotone).
  std::uint64_t probe_messages() const noexcept { return probe_messages_; }

  /// Adds to the probe message counter (for protocols whose
  /// balance-discovery cost is not a plain path probe).
  void charge_messages(std::uint64_t n) noexcept { probe_messages_ += n; }

  // --- Two-phase payment execution ----------------------------------------
  //
  // A (partial) payment first *holds* funds (decrementing the balances of
  // the edges it uses), then either *commits* (credits the reverse
  // directions: funds have moved) or *aborts* (restores the original
  // balances). Multipath atomicity (AMP, §3.1) is built on top by holding
  // all parts before committing any (see AtomicPayment in htlc.h).

  /// Holds `amount` on every edge of `path`. Returns nullopt (and changes
  /// nothing) if some edge has insufficient balance. The hold record keeps
  /// the edges in PATH order (duplicate edges of a non-simple path
  /// aggregate onto their first occurrence), so hold_parts() hands the
  /// HTLC engine the hop sequence directly. Precondition: amount > 0, path
  /// non-empty.
  std::optional<HoldId> hold(const Path& path, Amount amount);

  /// Holds per-edge amounts (a flow). Amounts on duplicate edges are
  /// aggregated before the feasibility check. Entries with amount <= 0 are
  /// ignored. Returns nullopt (and changes nothing) on insufficient
  /// balance; nullopt also when nothing positive remains to hold.
  std::optional<HoldId> hold_flow(std::span<const EdgeAmount> edge_amounts);

  /// Commits a held payment: credits reverse directions, retires the hold.
  /// Parts already settled hop-wise (amount 0) are skipped. While deferred
  /// settlement is armed, validates the id and queues it instead (see
  /// below).
  void commit(HoldId id);

  /// Aborts a held payment: restores balances, retires the hold. Valid on
  /// partially settled holds (settled hops refund nothing) — this is the
  /// timelock-expiry path of the HTLC lifecycle.
  void abort(HoldId id);

  std::size_t active_holds() const noexcept { return active_holds_; }

  // --- Time-extended (HTLC) hold lifecycle --------------------------------
  //
  // The instant-settlement contract above locks and settles a payment
  // inside one route() call. The HTLC scenario engine stretches that over
  // sim-time: a payment locks hop by hop forward, settles hop by hop
  // backward, and refunds on failure or timelock expiry. The channel
  // invariant (balances + holds == deposits, check_invariants) holds after
  // every individual step.

  /// Opens an empty active hold: no funds locked yet; hops are then locked
  /// one at a time with extend_hold. Counts in active_holds() until every
  /// hop is settled/aborted or the whole hold is committed/aborted.
  HoldId open_hold();

  /// Locks `amount` on edge `e` as the next hop of hold `id`. Returns
  /// false (changing nothing) when e's balance cannot cover it — the HTLC
  /// forward-lock failure. Precondition: amount > 0.
  bool extend_hold(HoldId id, EdgeId e, Amount amount);

  /// The per-hop parts of an active hold, in lock order (path order for
  /// hold()/extend_hold, ascending edge id for hold_flow). Hops already
  /// settled hop-wise read amount 0. Invalidated by any hold mutation.
  std::span<const EdgeAmount> hold_parts(HoldId id);

  /// Settles ONE hop: credits the reverse direction of parts[hop] and
  /// zeroes it. The hold retires automatically once every hop is settled
  /// or aborted. Throws std::logic_error on an already-settled hop.
  void commit_hop(HoldId id, std::size_t hop);

  /// Releases ONE hop: refunds parts[hop] to its edge and zeroes it. Same
  /// retirement rule as commit_hop.
  void abort_hop(HoldId id, std::size_t hop);

  /// Expiry metadata (sim-time; +inf = never). The ledger only carries it
  /// so hold records are self-describing — enforcement (abort at expiry)
  /// is the owner's job.
  void set_hold_expiry(HoldId id, double expiry);
  double hold_expiry(HoldId id);

  // --- On-chain resolution (channel close with funds in flight) -----------
  //
  // A cooperative channel close cannot strand in-flight HTLCs: each one
  // resolves on-chain instead. An HTLC whose preimage is already public
  // (the hold was marked settling) is claimable by the downstream party —
  // it force-SETTLES; any other HTLC times out on-chain — it force-REFUNDS.
  // The channel invariant holds after every individual hop (the same
  // credit/refund arithmetic as commit_hop/abort_hop).

  /// Marks a hold as settling: its preimage is propagating, so a forced
  /// on-chain resolution settles its hops instead of refunding them.
  void mark_hold_settling(HoldId id);
  bool hold_settling(HoldId id);

  /// True iff `id` still names an active hold (same generation, not yet
  /// retired). Unlike checked_active_record this never throws — callers
  /// use it after resolve_holds_on_close to learn whether a hold fully
  /// resolved (and auto-retired) on-chain.
  bool hold_active(HoldId id) const noexcept;

  /// What a resolve_holds_on_close call forced on-chain.
  struct CloseResolution {
    std::size_t settled_hops = 0;
    std::size_t refunded_hops = 0;
    Amount settled_amount = 0;
    Amount refunded_amount = 0;
  };

  /// Forces every active hold's unsettled hops on either direction of
  /// `channel` to a final state: committed (reverse-credited) when the
  /// hold is marked settling, refunded otherwise. Hops on other channels
  /// are untouched; fully resolved holds retire. Afterwards the channel
  /// carries no escrow, so set_channel_balance(channel, ...) is legal.
  CloseResolution resolve_holds_on_close(std::size_t channel);

  /// Re-bases ONE channel: sets both directed balances and the channel's
  /// deposit to fwd + bwd, leaving every other channel's deposit untouched
  /// (set_balance re-derives ALL deposits from balances, which silently
  /// corrupts channels whose funds are partly locked in active holds).
  /// Throws std::logic_error while any active hold still locks funds on
  /// the channel — resolve_holds_on_close first.
  void set_channel_balance(std::size_t channel, Amount fwd, Amount bwd);

  /// Marks channels carrying any unsettled held amount (`out` is reset to
  /// num_channels zeros). O(active holds x parts). Background rebalancing
  /// uses this to skip escrowed channels.
  void held_channels(std::vector<char>& out) const;

  // --- Deferred settlement -------------------------------------------------
  //
  // The HTLC engine lets routers run unchanged: a router holds parts and
  // calls commit() exactly as in instant settlement, but with deferral
  // armed the commit only queues the hold id. The engine then drains the
  // queue and drives each hold through the timed per-hop lifecycle.
  // abort() stays immediate (a failed route's refund has no in-flight
  // phase).

  void arm_deferred_settlement() noexcept { defer_commits_ = true; }
  void disarm_deferred_settlement() noexcept { defer_commits_ = false; }
  bool deferred_settlement_armed() const noexcept { return defer_commits_; }

  /// Moves the queued hold ids (in commit order) into `out`.
  void take_deferred_commits(std::vector<HoldId>& out) {
    out.swap(deferred_commits_);
    deferred_commits_.clear();
  }

  // --- Change log ---------------------------------------------------------
  //
  // When enabled, every edge whose balance is modified by the two-phase
  // payment machinery (hold_flow debits, commit credits, abort refunds) is
  // appended to a journal. A reader that knew every balance at the last
  // clear_change_log() can resync by revisiting only the logged edges —
  // the scenario engine uses this to mirror a stale sender's routing
  // activity back to the ground-truth ledger in O(edges touched) instead
  // of O(all edges). Entries may repeat (each modification logs one entry,
  // deduplication is the reader's business) and deliberately EXCLUDE
  // direct writes (set_balance / assign_balances / mirror_balance): those
  // are made by the ledger's owner, who already knows what it wrote.

  /// Starts journaling payment-driven balance changes (off by default, so
  /// ledgers that never sync pay nothing). With `with_pre_images`, each
  /// entry also records the balance BEFORE the modification (parallel
  /// vector change_log_pre()), which is what speculative rollback needs to
  /// restore a mirror to its pre-payment state exactly.
  void enable_change_log(bool with_pre_images = false) noexcept {
    change_log_enabled_ = true;
    pre_image_log_enabled_ = with_pre_images;
  }

  /// Edges modified by hold/commit/abort since the last clear (may repeat).
  std::span<const EdgeId> change_log() const noexcept { return change_log_; }

  /// Pre-modification balances, parallel to change_log(); empty unless
  /// enable_change_log(true).
  std::span<const Amount> change_log_pre() const noexcept {
    return change_log_pre_;
  }

  void clear_change_log() noexcept {
    change_log_.clear();
    change_log_pre_.clear();
  }

  // --- Read log -----------------------------------------------------------
  //
  // When enabled, every balance read — balance() plus the internal reads of
  // the two-phase machinery (hold feasibility, commit/abort refund
  // read-modify-writes) — appends its edge id. The speculative replay
  // engine (sim/concurrent.cc) validates an optimistically-routed payment
  // by checking that nothing it READ has since been overwritten; funneling
  // the RMW reads through the same log makes the read set a superset of the
  // write set, so one membership check covers write-write conflicts too.
  // Entries repeat freely; deduplication is the reader's business.

  void enable_read_log() noexcept { read_log_enabled_ = true; }
  std::span<const EdgeId> read_log() const noexcept { return read_log_; }
  void clear_read_log() noexcept { read_log_.clear(); }

  /// Verifies the channel invariant for every channel (O(V+E+holds)).
  /// Returns false and sets `bad_channel` (optional) on violation.
  bool check_invariants(std::size_t* bad_channel = nullptr) const;

  // --- Payment holds-list lease -------------------------------------------

  /// Borrows the ledger-owned HoldId list AtomicPayment uses to track its
  /// parts, cleared and ready. Returns nullptr if already leased (a nested
  /// payment on the same ledger), in which case the caller must fall back
  /// to its own storage. Keeping the list here makes the per-payment
  /// hold/commit cycle allocation-free in steady state: the buffer's
  /// capacity survives across payments instead of dying with each
  /// AtomicPayment.
  std::vector<HoldId>* acquire_payment_holds() noexcept {
    if (payment_holds_leased_) return nullptr;
    payment_holds_leased_ = true;
    payment_holds_buf_.clear();
    return &payment_holds_buf_;
  }
  void release_payment_holds() noexcept { payment_holds_leased_ = false; }

  // --- Snapshots ----------------------------------------------------------

  /// Captures balances. Throws if holds are in flight.
  struct Snapshot {
    std::vector<Amount> balance;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);

 private:
  struct HoldRecord {
    std::vector<EdgeAmount> parts;  // lock order; hop-settled parts read 0
    std::uint32_t generation = 0;   // bumped per reuse; encoded in HoldId
    std::uint32_t settled = 0;      // hops settled/aborted hop-wise
    double expiry = 0;              // sim-time; set to +inf on acquire
    bool active = false;
    bool settling = false;  // preimage public: on-chain resolution settles
  };

  /// Decodes a HoldId, throwing std::logic_error on a stale or foreign id
  /// (wrong generation / out-of-range slot / already settled).
  HoldRecord& checked_active_record(HoldId id);

  /// Recycles (or grows) a hold slot, bumps its generation, and resets the
  /// record. Shared by place_hold and open_hold.
  std::uint64_t acquire_slot();

  /// Places the aggregated parts staged in hold_scratch_ as a new hold:
  /// feasibility check first (nothing changes on failure), then debit.
  std::optional<HoldId> place_hold();

  /// Retires a fully hop-settled record, recycling its slot.
  void retire_if_settled(HoldRecord& h, std::uint64_t slot);

  /// Journals an imminent payment-driven write to e; must run BEFORE the
  /// balance mutation so the pre-image variant records the old value.
  void log_write(EdgeId e) {
    if (!change_log_enabled_) return;
    change_log_.push_back(e);
    if (pre_image_log_enabled_) change_log_pre_.push_back(balance_[e]);
  }

  /// Journals the internal balance reads of the two-phase machinery (see
  /// the read-log section above).
  void log_read(EdgeId e) const {
    if (read_log_enabled_) read_log_.push_back(e);
  }

  const Graph* graph_;
  std::vector<Amount> balance_;
  std::vector<Amount> deposit_;  // per channel, fixed at init
  std::vector<HoldRecord> holds_;
  std::vector<HoldId> free_hold_slots_;     // retired records to recycle
  std::vector<EdgeAmount> hold_scratch_;    // staged parts (place_hold)
  std::size_t active_holds_ = 0;
  std::uint64_t probe_messages_ = 0;
  std::vector<EdgeId> change_log_;
  std::vector<Amount> change_log_pre_;  // pre-images, parallel to change_log_
  bool change_log_enabled_ = false;
  bool pre_image_log_enabled_ = false;
  mutable std::vector<EdgeId> read_log_;  // balance() is const; log is not
  bool read_log_enabled_ = false;
  std::vector<HoldId> payment_holds_buf_;  // AtomicPayment lease (above)
  bool payment_holds_leased_ = false;
  bool defer_commits_ = false;             // deferred settlement armed
  std::vector<HoldId> deferred_commits_;   // queued commit ids, FIFO

  void recompute_deposits();
};

}  // namespace flash

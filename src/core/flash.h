// Umbrella header: the public API of the Flash offchain-routing library.
//
// Typical usage (see examples/quickstart.cc):
//
//   #include "core/flash.h"
//
//   flash::Rng rng(42);
//   flash::Graph g = flash::watts_strogatz(50, 8, 0.3, rng);
//   flash::NetworkState state(g);
//   state.assign_uniform_split(1000, 1500, rng);
//   flash::FeeSchedule fees = flash::FeeSchedule::paper_default(g, rng);
//
//   flash::FlashConfig config;
//   config.elephant_threshold = 500;
//   flash::FlashRouter router(g, fees, config);
//
//   flash::Transaction tx{/*sender=*/0, /*receiver=*/7, /*amount=*/123.0};
//   flash::RouteResult r = router.route(tx, state);
//
// Higher-level experiment plumbing lives in sim/ (run_simulation,
// run_series) and testbed/ (message-level emulation).
#pragma once

#include "core/version.h"            // IWYU pragma: export
#include "gossip/gossip.h"           // IWYU pragma: export
#include "gossip/messages.h"         // IWYU pragma: export
#include "gossip/node_view.h"        // IWYU pragma: export
#include "graph/bfs.h"               // IWYU pragma: export
#include "graph/dijkstra.h"          // IWYU pragma: export
#include "graph/edge_disjoint.h"     // IWYU pragma: export
#include "graph/graph.h"             // IWYU pragma: export
#include "graph/graph_io.h"          // IWYU pragma: export
#include "graph/maxflow.h"           // IWYU pragma: export
#include "graph/scratch.h"           // IWYU pragma: export
#include "graph/topology.h"          // IWYU pragma: export
#include "graph/types.h"             // IWYU pragma: export
#include "graph/yen.h"               // IWYU pragma: export
#include "ledger/fee_policy.h"       // IWYU pragma: export
#include "ledger/htlc.h"             // IWYU pragma: export
#include "ledger/network_state.h"    // IWYU pragma: export
#include "lp/fee_min.h"              // IWYU pragma: export
#include "lp/simplex.h"              // IWYU pragma: export
#include "routing/flash/flash_router.h"  // IWYU pragma: export
#include "routing/router.h"          // IWYU pragma: export
#include "routing/shortest_path.h"   // IWYU pragma: export
#include "routing/speedymurmurs.h"   // IWYU pragma: export
#include "routing/spider.h"          // IWYU pragma: export
#include "sim/experiment.h"          // IWYU pragma: export
#include "sim/simulator.h"           // IWYU pragma: export
#include "trace/size_dist.h"         // IWYU pragma: export
#include "trace/trace_io.h"          // IWYU pragma: export
#include "trace/transaction.h"       // IWYU pragma: export
#include "trace/workload.h"          // IWYU pragma: export
#include "util/rng.h"                // IWYU pragma: export
#include "util/stats.h"              // IWYU pragma: export

#include "routing/shortest_path.h"

#include "graph/bfs.h"
#include "ledger/htlc.h"

namespace flash {

// Path cache keyed by pair_key(s, t) from graph/types.h.

ShortestPathRouter::ShortestPathRouter(const Graph& graph,
                                       const FeeSchedule& fees,
                                       std::size_t max_hops)
    : graph_(&graph), fees_(&fees), max_hops_(max_hops) {}

const Path& ShortestPathRouter::shortest_path(NodeId s, NodeId t) {
  const auto key = pair_key(s, t);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    if (open_mask_) {
      const unsigned char* mask = open_mask_;
      Path p;
      LegacyScratchLease lease;
      bfs_path_core(*graph_, s, t, lease.get(),
                    [mask](EdgeId e) { return mask[e] != 0; }, p);
      it = cache_.emplace(key, std::move(p)).first;
    } else {
      it = cache_.emplace(key, bfs_path(*graph_, s, t)).first;
    }
  }
  return it->second;
}

std::size_t ShortestPathRouter::apply_topology_delta(
    std::span<const EdgeId> closed, std::span<const EdgeId> reopened,
    bool strict) {
  (void)reopened;
  if (strict) {
    const std::size_t n = cache_.size();
    cache_.clear();
    return n;
  }
  if (closed.empty()) return 0;
  std::size_t dropped = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    bool dead = false;
    for (const EdgeId e : it->second) {
      if (!open_mask_[e]) {
        dead = true;
        break;
      }
    }
    if (dead) {
      it = cache_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

RouteResult ShortestPathRouter::route(const Transaction& tx,
                                      NetworkState& state) {
  RouteResult result;
  if (tx.amount <= 0 || tx.sender == tx.receiver) return result;
  const Path& path = shortest_path(tx.sender, tx.receiver);
  if (path.empty()) return result;  // unreachable
  // Timelock budget: the fewest-hops path already exceeds it, so every
  // path does — the payment is infeasible for this sender.
  if (max_hops_ != 0 && path.size() > max_hops_) return result;

  AtomicPayment payment(state);
  if (!payment.add_part(path, tx.amount)) return result;
  payment.commit();
  result.success = true;
  result.delivered = tx.amount;
  result.fee = fees_->path_fee(path, tx.amount);
  result.paths_used = 1;
  return result;
}

}  // namespace flash

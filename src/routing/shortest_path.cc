#include "routing/shortest_path.h"

#include "graph/bfs.h"
#include "ledger/htlc.h"

namespace flash {

// Path cache keyed by pair_key(s, t) from graph/types.h.

ShortestPathRouter::ShortestPathRouter(const Graph& graph,
                                       const FeeSchedule& fees)
    : graph_(&graph), fees_(&fees) {}

const Path& ShortestPathRouter::shortest_path(NodeId s, NodeId t) {
  const auto key = pair_key(s, t);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, bfs_path(*graph_, s, t)).first;
  }
  return it->second;
}

RouteResult ShortestPathRouter::route(const Transaction& tx,
                                      NetworkState& state) {
  RouteResult result;
  if (tx.amount <= 0 || tx.sender == tx.receiver) return result;
  const Path& path = shortest_path(tx.sender, tx.receiver);
  if (path.empty()) return result;  // unreachable

  AtomicPayment payment(state);
  if (!payment.add_part(path, tx.amount)) return result;
  payment.commit();
  result.success = true;
  result.delivered = tx.amount;
  result.fee = fees_->path_fee(path, tx.amount);
  result.paths_used = 1;
  return result;
}

}  // namespace flash

// Spider baseline [Sivaraman et al.]: dynamic routing over 4 edge-disjoint
// shortest paths with a "waterfilling" heuristic that balances the load
// toward the paths with maximum available capacity (paper §4.1).
//
// Spider treats every payment the same: it probes all of its paths on every
// payment (that is what makes its probing overhead high in Fig. 8), then
// splits the payment so that the most-available paths are used first.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "ledger/fee_policy.h"
#include "routing/router.h"

namespace flash {

struct SpiderConfig {
  /// Number of edge-disjoint shortest paths per pair (paper: 4).
  std::size_t num_paths = 4;
};

class SpiderRouter : public Router {
 public:
  SpiderRouter(const Graph& graph, const FeeSchedule& fees,
               SpiderConfig config = {});

  RouteResult route(const Transaction& tx, NetworkState& state) override;
  std::string name() const override { return "Spider"; }
  void on_topology_update() override { cache_.clear(); }

  /// Waterfilling split of `demand` across paths with available capacities
  /// `caps`: repeatedly pours into the path(s) with the most remaining
  /// capacity, leveling them downward. Returns per-path amounts summing to
  /// min(demand, sum caps). Exposed for unit testing.
  static std::vector<Amount> waterfill(const std::vector<Amount>& caps,
                                       Amount demand);

 private:
  const Graph* graph_;
  const FeeSchedule* fees_;
  SpiderConfig config_;
  /// Edge-disjoint shortest paths are static per pair; cache them.
  std::unordered_map<std::uint64_t, std::vector<Path>> cache_;

  const std::vector<Path>& paths_for(NodeId s, NodeId t);
};

}  // namespace flash

// Spider baseline [Sivaraman et al.]: dynamic routing over 4 edge-disjoint
// shortest paths with a "waterfilling" heuristic that balances the load
// toward the paths with maximum available capacity (paper §4.1).
//
// Spider treats every payment the same: it probes all of its paths on every
// payment (that is what makes its probing overhead high in Fig. 8), then
// splits the payment so that the most-available paths are used first.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "ledger/fee_policy.h"
#include "routing/router.h"

namespace flash {

struct SpiderConfig {
  /// Number of edge-disjoint shortest paths per pair (paper: 4).
  std::size_t num_paths = 4;
  /// Timelock budget as a hop cap (0 = unlimited): paths longer than this
  /// are dropped from the per-pair set before waterfilling, so capacity on
  /// over-budget paths never counts toward feasibility.
  std::size_t max_hops = 0;
};

class SpiderRouter : public Router {
 public:
  SpiderRouter(const Graph& graph, const FeeSchedule& fees,
               SpiderConfig config = {});

  RouteResult route(const Transaction& tx, NetworkState& state) override;
  std::string name() const override { return "Spider"; }
  void on_topology_update() override { cache_.clear(); }

  bool supports_incremental_maintenance() const override { return true; }
  void set_open_mask(const unsigned char* mask) override { open_mask_ = mask; }
  /// Same invalidation rule as ShortestPathRouter, applied to the whole
  /// edge-disjoint set: a pair is dropped iff any of its cached paths
  /// crosses a now-closed edge (the greedy BFS sequence is stable under
  /// deleting edges no cached path uses; see docs/ARCHITECTURE.md).
  std::size_t apply_topology_delta(std::span<const EdgeId> closed,
                                   std::span<const EdgeId> reopened,
                                   bool strict) override;

  /// Waterfilling split of `demand` across paths with available capacities
  /// `caps`: repeatedly pours into the path(s) with the most remaining
  /// capacity, leveling them downward. Returns per-path amounts summing to
  /// min(demand, sum caps). Exposed for unit testing.
  static std::vector<Amount> waterfill(const std::vector<Amount>& caps,
                                       Amount demand);

 private:
  const Graph* graph_;
  const FeeSchedule* fees_;
  SpiderConfig config_;
  const unsigned char* open_mask_ = nullptr;  // borrowed; null = all open
  /// Edge-disjoint shortest paths are static per pair; cache them.
  std::unordered_map<std::uint64_t, std::vector<Path>> cache_;

  const std::vector<Path>& paths_for(NodeId s, NodeId t);
};

}  // namespace flash

// Shortest Path (SP) baseline: route the whole payment over the single
// fewest-hops path (paper §4.1). Static: no probing, no balance awareness;
// the payment fails if any hop lacks balance.
#pragma once

#include <unordered_map>

#include "graph/graph.h"
#include "ledger/fee_policy.h"
#include "routing/router.h"

namespace flash {

class ShortestPathRouter : public Router {
 public:
  /// `fees` is used only for reporting the fee metric; it must outlive the
  /// router, as must `graph`. `max_hops` caps route length (0 = unlimited):
  /// a payment whose shortest path exceeds it fails — the HTLC timelock
  /// budget (scenario engine) rejects paths whose cumulative timelock the
  /// sender cannot afford.
  ShortestPathRouter(const Graph& graph, const FeeSchedule& fees,
                     std::size_t max_hops = 0);

  RouteResult route(const Transaction& tx, NetworkState& state) override;
  std::string name() const override { return "SP"; }
  void on_topology_update() override { cache_.clear(); }

  bool supports_incremental_maintenance() const override { return true; }
  void set_open_mask(const unsigned char* mask) override { open_mask_ = mask; }
  /// Lazy mode drops only pairs whose cached path crosses a now-closed
  /// edge; surviving paths are provably what a fresh masked BFS would
  /// return (FIFO discovery order is stable under deleting non-path
  /// edges — see docs/ARCHITECTURE.md). Reopens keep entries stale (a
  /// cached path stays valid; a newly shorter one is not picked up).
  std::size_t apply_topology_delta(std::span<const EdgeId> closed,
                                   std::span<const EdgeId> reopened,
                                   bool strict) override;

 private:
  const Graph* graph_;
  const FeeSchedule* fees_;
  std::size_t max_hops_ = 0;                  // 0 = unlimited
  const unsigned char* open_mask_ = nullptr;  // borrowed; null = all open
  /// Shortest paths are static given the topology, so cache per pair.
  std::unordered_map<std::uint64_t, Path> cache_;

  const Path& shortest_path(NodeId s, NodeId t);
};

}  // namespace flash

// Router interface shared by Flash and the three baselines.
//
// A router processes one payment at a time against the live ledger
// (NetworkState), exactly as in the paper's simulation where "payments
// arrive at senders sequentially" (§4.1). Routers learn balances only
// through NetworkState's probing interface, which meters probe messages.
#pragma once

#include <cstdint>
#include <string>

#include "ledger/network_state.h"
#include "trace/transaction.h"

namespace flash {

/// Per-payment outcome.
struct RouteResult {
  bool success = false;
  /// Amount delivered end-to-end: tx.amount on success, 0 on failure
  /// (payments are atomic — partial delivery never settles, §3.1).
  Amount delivered = 0;
  /// Total transaction fees that the delivered payment incurs.
  Amount fee = 0;
  /// Probe messages this payment consumed (delta of the ledger's meter).
  std::uint64_t probe_messages = 0;
  /// Number of path probes issued.
  std::uint32_t probes = 0;
  /// Paths that carried a positive amount.
  std::uint32_t paths_used = 0;
  /// Set by Flash: whether the payment was classified as an elephant.
  bool elephant = false;
};

class Router {
 public:
  virtual ~Router() = default;

  /// Routes one payment, settling it against `state` on success.
  virtual RouteResult route(const Transaction& tx, NetworkState& state) = 0;

  /// Scheme name as used in the paper's figures ("Flash", "Spider", ...).
  virtual std::string name() const = 0;

  /// Invalidates any cached paths/coordinates after a topology change
  /// (the paper's routing tables are refreshed when the gossiped topology
  /// updates, §3.3).
  virtual void on_topology_update() {}
};

}  // namespace flash

// Router interface shared by Flash and the three baselines.
//
// A router processes one payment at a time against the live ledger
// (NetworkState), exactly as in the paper's simulation where "payments
// arrive at senders sequentially" (§4.1). Routers learn balances only
// through NetworkState's probing interface, which meters probe messages.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "ledger/network_state.h"
#include "trace/transaction.h"

namespace flash {

/// Per-payment outcome.
struct RouteResult {
  bool success = false;
  /// Amount delivered end-to-end: tx.amount on success, 0 on failure
  /// (payments are atomic — partial delivery never settles, §3.1).
  Amount delivered = 0;
  /// Total transaction fees that the delivered payment incurs.
  Amount fee = 0;
  /// Probe messages this payment consumed (delta of the ledger's meter).
  std::uint64_t probe_messages = 0;
  /// Number of path probes issued.
  std::uint32_t probes = 0;
  /// Paths that carried a positive amount.
  std::uint32_t paths_used = 0;
  /// Set by Flash: whether the payment was classified as an elephant.
  bool elephant = false;
};

class Router {
 public:
  virtual ~Router() = default;

  /// Routes one payment, settling it against `state` on success.
  virtual RouteResult route(const Transaction& tx, NetworkState& state) = 0;

  /// Scheme name as used in the paper's figures ("Flash", "Spider", ...).
  virtual std::string name() const = 0;

  /// Invalidates any cached paths/coordinates after a topology change
  /// (the paper's routing tables are refreshed when the gossiped topology
  /// updates, §3.3).
  virtual void on_topology_update() {}

  // --- Incremental maintenance (scenario engine; see sim/scenario.h) ---
  //
  // A router that supports it is constructed over a FIXED full-shape graph
  // whose closed channels are masked out via set_open_mask: mask[e] != 0
  // means directed edge e is currently traversable. Search cores skip
  // masked edges, so the router behaves exactly as if built over the
  // subgraph of open channels, without ever rebuilding the CSR. On a view
  // change the owner updates the mask and calls apply_topology_delta with
  // the flipped channels instead of reconstructing the router.

  /// Whether this router honors set_open_mask/apply_topology_delta.
  /// Routers that return false (e.g. SpeedyMurmurs, whose embeddings are
  /// baked from the raw adjacency) must be fully rebuilt on view changes.
  virtual bool supports_incremental_maintenance() const { return false; }

  /// Installs (or clears, with nullptr) the per-directed-edge open mask.
  /// Borrowed: the caller keeps it alive and in sync with the topology.
  virtual void set_open_mask(const unsigned char* /*mask*/) {}

  /// Reacts to a mask delta. `closed`/`reopened` hold the forward edge ids
  /// of channels that flipped since the last call (the mask is already
  /// updated). `strict` drops every cached entry — bit-identical to a
  /// freshly built router; otherwise only entries whose cached paths
  /// traverse a now-closed edge are dropped (Ramalingam-Reps-style
  /// affected set) and reopens leave entries stale-but-usable. Returns the
  /// number of invalidated cache entries.
  virtual std::size_t apply_topology_delta(std::span<const EdgeId> /*closed*/,
                                           std::span<const EdgeId> /*reopened*/,
                                           bool /*strict*/) {
    on_topology_update();
    return 0;
  }

  /// Re-derives the router's internal randomness exactly as constructing
  /// it through make_router(..., seed) would. No-op for deterministic
  /// routers. Lets a patched router match a freshly built one stream-for-
  /// stream (the scenario engine reseeds per (sender, view version)).
  virtual void reseed(std::uint64_t /*seed*/) {}

  // --- Speculative routing (concurrent engine; see sim/concurrent.cc) ---
  //
  // The concurrent engine routes payments optimistically on worker threads
  // and needs two guarantees from a router: (a) per-payment randomness can
  // be pinned to the payment's logical stream index, so a route's outcome
  // does not depend on which payments this router instance happened to
  // serve before it; (b) a route can be *undone* — every balance-dependent
  // internal mutation restored — when the speculation is discarded. Pure
  // topology-derived caches (SP/Spider per-pair paths, Yen inserts) may
  // persist across an undo: recomputing them yields identical values.
  // Deterministic, cache-stable routers override nothing.

  /// Pins the randomness of the NEXT route() call to `seed` (derived from
  /// the payment's logical index). No-op for rng-free routers.
  virtual void begin_payment(std::uint64_t /*seed*/) {}

  /// Arms undo journaling and returns a token for the current
  /// balance-dependent state.
  virtual std::uint64_t speculation_mark() { return 0; }
  /// Restores the state captured at `mark`, undoing every route() since.
  virtual void speculation_rollback(std::uint64_t /*mark*/) {}
  /// Declares routes up to `mark` permanent; their journal space is freed.
  virtual void speculation_release(std::uint64_t /*mark*/) {}
};

}  // namespace flash

#include "routing/speedymurmurs.h"

#include <algorithm>
#include <limits>

#include "graph/bfs.h"
#include "ledger/htlc.h"

namespace flash {

SpeedyMurmursRouter::SpeedyMurmursRouter(const Graph& graph,
                                         const FeeSchedule& fees,
                                         SpeedyMurmursConfig config)
    : graph_(&graph), fees_(&fees), config_(config) {
  build_embeddings();
}

void SpeedyMurmursRouter::build_embeddings() {
  landmarks_.clear();
  coords_.clear();
  const std::size_t n = graph_->num_nodes();
  if (n == 0) return;

  // Landmarks: the highest-degree nodes (well-connected roots give short
  // tree paths, the usual choice in landmark routing).
  std::vector<NodeId> by_degree(n);
  for (NodeId v = 0; v < n; ++v) by_degree[v] = v;
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](NodeId a, NodeId b) {
                     return graph_->out_degree(a) > graph_->out_degree(b);
                   });
  const std::size_t count = std::min(config_.num_landmarks, n);
  landmarks_.assign(by_degree.begin(),
                    by_degree.begin() + static_cast<long>(count));

  coords_.resize(landmarks_.size());
  for (std::size_t tree = 0; tree < landmarks_.size(); ++tree) {
    const auto parent = bfs_tree(*graph_, landmarks_[tree]);
    auto& coord = coords_[tree];
    coord.assign(n, {});
    // Assign coordinates in BFS order so parents are done before children.
    const auto dist = bfs_distances(*graph_, landmarks_[tree]);
    std::vector<NodeId> order(n);
    for (NodeId v = 0; v < n; ++v) order[v] = v;
    std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return dist[a] < dist[b];
    });
    for (NodeId v : order) {
      if (dist[v] == kUnreachable) continue;
      if (v == landmarks_[tree]) {
        coord[v] = {v};
        continue;
      }
      const NodeId p = graph_->from(parent[v]);
      coord[v] = coord[p];
      coord[v].push_back(v);
    }
  }
}

std::uint32_t SpeedyMurmursRouter::tree_distance(std::size_t tree, NodeId a,
                                                 NodeId b) const {
  const auto& ca = coords_.at(tree).at(a);
  const auto& cb = coords_.at(tree).at(b);
  if (ca.empty() || cb.empty()) {
    return std::numeric_limits<std::uint32_t>::max();  // outside the tree
  }
  std::size_t common = 0;
  const std::size_t limit = std::min(ca.size(), cb.size());
  while (common < limit && ca[common] == cb[common]) ++common;
  return static_cast<std::uint32_t>((ca.size() - common) +
                                    (cb.size() - common));
}

Path SpeedyMurmursRouter::greedy_route(std::size_t tree, NodeId s, NodeId t,
                                       Amount share,
                                       const NetworkState& state) const {
  Path path;
  NodeId cur = s;
  std::uint32_t cur_dist = tree_distance(tree, cur, t);
  if (cur_dist == std::numeric_limits<std::uint32_t>::max()) return {};
  while (cur != t) {
    EdgeId best_edge = kInvalidEdge;
    std::uint32_t best_dist = cur_dist;
    for (EdgeId e : graph_->out_edges(cur)) {
      const NodeId w = graph_->to(e);
      // Local knowledge only: the node sees its own channels' balances.
      if (state.balance(e) < share) continue;
      const std::uint32_t d = tree_distance(tree, w, t);
      if (d < best_dist) {
        best_dist = d;
        best_edge = e;
      }
    }
    if (best_edge == kInvalidEdge) return {};  // stuck
    path.push_back(best_edge);
    cur = graph_->to(best_edge);
    cur_dist = best_dist;
  }
  return path;
}

RouteResult SpeedyMurmursRouter::route(const Transaction& tx,
                                       NetworkState& state) {
  RouteResult result;
  if (tx.amount <= 0 || tx.sender == tx.receiver) return result;
  if (landmarks_.empty()) return result;

  // One equal share per landmark tree; the payment succeeds only if every
  // share can be placed (multipath atomicity).
  const std::size_t trees = landmarks_.size();
  const Amount share = tx.amount / static_cast<Amount>(trees);
  if (share <= 0) return result;

  AtomicPayment payment(state);
  Amount fee = 0;
  for (std::size_t tree = 0; tree < trees; ++tree) {
    const Path path = greedy_route(tree, tx.sender, tx.receiver, share, state);
    if (path.empty()) return result;
    if (config_.max_hops != 0 && path.size() > config_.max_hops) {
      return result;  // over the timelock budget
    }
    // Greedy checked balances against the pre-hold view; holding may still
    // fail when shares overlap a channel. Atomicity aborts earlier shares.
    if (!payment.add_part(path, share)) return result;
    fee += fees_->path_fee(path, share);
    ++result.paths_used;
  }
  payment.commit();
  result.success = true;
  result.delivered = tx.amount;
  result.fee = fee;
  return result;
}

}  // namespace flash

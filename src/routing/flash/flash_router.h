// Flash: the paper's routing scheme (§3).
//
// Differentiates elephant from mice payments by a size threshold. Elephants
// (few, huge, throughput-defining) get the probing modified-max-flow search
// plus the fee-minimizing LP split; mice (the vast majority) get routing
// table lookups with a trial-and-error loop that probes only on failure.
#pragma once

#include <memory>

#include "graph/graph.h"
#include "ledger/fee_policy.h"
#include "routing/flash/elephant.h"
#include "routing/flash/mice.h"
#include "routing/flash/routing_table.h"
#include "routing/router.h"
#include "util/rng.h"

namespace flash {

/// How mice payments pick among their routing-table paths.
enum class MiceSelection {
  /// The paper's design (§3.3): random order, send-then-probe.
  kTrialAndError,
  /// Extension (§6 future work): probe all paths, waterfill like Spider.
  /// Balance-aware but pays probing overhead on every payment.
  kWaterfill,
};

/// Tuning knobs for FlashRouter. Plain value type.
struct FlashConfig {
  /// Payments with amount >= threshold are elephants. The paper sets the
  /// threshold at the workload's 90th size percentile so 90 % of payments
  /// are mice (§4.1); use Workload::size_quantile(0.9).
  Amount elephant_threshold = 0;
  /// Elephant path budget k (paper default 20).
  std::size_t k_elephant_paths = 20;
  /// Mice routing-table paths per receiver m (paper default 4).
  std::size_t m_mice_paths = 4;
  /// Fee-minimization LP on/off (off = Fig. 9's "w/o optimization").
  bool optimize_fees = true;
  /// Spare Yen paths cached for dead-path replacement.
  std::size_t spare_paths = 4;
  /// Routing-table entry timeout in lookups (0 = keep forever).
  std::uint64_t table_timeout = 0;
  /// Seed for the randomized mice path order.
  std::uint64_t seed = 0x5eedf1a5;
  /// When m_mice_paths == 0, mice are routed exactly like elephants - the
  /// upper bound configuration of Fig. 11.
  bool mice_as_elephants_when_m0 = true;
  /// Mice path-selection strategy (paper default: trial-and-error).
  MiceSelection mice_selection = MiceSelection::kTrialAndError;
  /// Recompute a routing-table entry once all of its paths died (see
  /// RoutingTableConfig::recompute_on_exhaustion). Off by default to keep
  /// static-simulation results bit-identical; the scenario engine turns it
  /// on for stale-view routers living through churn.
  bool table_recompute_on_exhaustion = false;
  /// Timelock budget as a hop cap (0 = unlimited), applied to both
  /// pipelines: the mice table discards over-budget Yen paths, the
  /// elephant probe stops at the first over-budget augmenting path.
  std::size_t max_route_hops = 0;
};

/// The paper's router. NOT thread-safe: route() mutates the routing table
/// and the RNG, so concurrent simulations must each own a FlashRouter (the
/// sweep engine builds one per (cell, run) via make_router). `graph` and
/// `fees` are borrowed and must outlive the router.
class FlashRouter : public Router {
 public:
  FlashRouter(const Graph& graph, const FeeSchedule& fees, FlashConfig config);

  /// Routes one payment: elephants through probing + LP split, mice through
  /// the routing table (see is_elephant for the classification).
  RouteResult route(const Transaction& tx, NetworkState& state) override;
  std::string name() const override { return "Flash"; }
  /// Drops all cached routing-table paths (recomputed on next lookup).
  void on_topology_update() override { table_.clear(); }

  bool supports_incremental_maintenance() const override { return true; }
  /// Masks both pipelines: the mice table's Yen weights closed edges out,
  /// the elephant probe's residual BFS refuses to traverse them.
  void set_open_mask(const unsigned char* mask) override {
    open_mask_ = mask;
    table_.set_open_mask(mask);
  }
  std::size_t apply_topology_delta(std::span<const EdgeId> closed,
                                   std::span<const EdgeId> reopened,
                                   bool strict) override;
  /// Mirrors make_router's FlashConfig::seed derivation (sim/experiment.cc)
  /// so reseeding equals constructing afresh with the same seed.
  void reseed(std::uint64_t seed) override {
    rng_ = Rng(seed * 0x9e3779b9ULL + 7);
  }

  /// Pins the mice-order shuffle (the router's only route-time randomness)
  /// to the payment's logical index; same mixing as reseed so one payment
  /// on a pinned router draws exactly like the first payment after reseed.
  void begin_payment(std::uint64_t seed) override {
    rng_ = Rng(seed * 0x9e3779b9ULL + 7);
  }
  /// The mice table holds the only balance-dependent route-time state
  /// (dead-path replacement); it journals and restores itself. Requires
  /// table_timeout == 0 (the scenario engine's only configuration): the
  /// eviction clock is not journaled.
  std::uint64_t speculation_mark() override { return table_.undo_mark(); }
  void speculation_rollback(std::uint64_t mark) override {
    table_.undo_rollback(mark);
  }
  void speculation_release(std::uint64_t mark) override {
    table_.undo_release(mark);
  }

  /// Classification rule: amount >= elephant_threshold is an elephant.
  bool is_elephant(Amount amount) const noexcept {
    return amount >= config_.elephant_threshold;
  }

  /// The configuration the router was built with.
  const FlashConfig& config() const noexcept { return config_; }
  /// Read access to the mice routing table (e.g. for overhead metrics).
  const MiceRoutingTable& routing_table() const noexcept { return table_; }

 private:
  const Graph* graph_;
  const FeeSchedule* fees_;
  FlashConfig config_;
  const unsigned char* open_mask_ = nullptr;  // borrowed; null = all open
  MiceRoutingTable table_;
  Rng rng_;
  // Per-router workspaces so a long simulation performs no graph-algorithm
  // or fee-LP allocations after warm-up. Same thread affinity as the
  // router itself.
  GraphScratch scratch_;
  ElephantProbeResult probe_buf_;
  SplitWorkspace split_ws_;
};

}  // namespace flash

#include "routing/flash/flash_router.h"

namespace flash {

FlashRouter::FlashRouter(const Graph& graph, const FeeSchedule& fees,
                         FlashConfig config)
    : graph_(&graph),
      fees_(&fees),
      config_(config),
      table_(graph, RoutingTableConfig{config.m_mice_paths,
                                       config.spare_paths,
                                       config.table_timeout,
                                       config.table_recompute_on_exhaustion,
                                       config.max_route_hops}),
      rng_(config.seed) {}

RouteResult FlashRouter::route(const Transaction& tx, NetworkState& state) {
  const bool elephant =
      is_elephant(tx.amount) ||
      (config_.m_mice_paths == 0 && config_.mice_as_elephants_when_m0);
  if (elephant) {
    ElephantConfig ec;
    ec.max_paths = config_.k_elephant_paths;
    ec.optimize_fees = config_.optimize_fees;
    ec.open_mask = open_mask_;
    ec.max_hops = config_.max_route_hops;
    RouteResult r = route_elephant(*graph_, tx, state, *fees_, ec, scratch_,
                                   probe_buf_, split_ws_);
    r.elephant = is_elephant(tx.amount);
    return r;
  }
  RouteResult r =
      config_.mice_selection == MiceSelection::kWaterfill
          ? route_mice_waterfill(*graph_, tx, state, *fees_, table_, scratch_)
          : route_mice(*graph_, tx, state, *fees_, table_, rng_, scratch_);
  r.elephant = false;
  return r;
}

std::size_t FlashRouter::apply_topology_delta(std::span<const EdgeId> closed,
                                              std::span<const EdgeId> reopened,
                                              bool strict) {
  (void)reopened;  // lazy mode keeps entries stale-but-usable on reopen
  if (strict) {
    const std::size_t n = table_.size();
    table_.clear();
    return n;
  }
  // Elephant probing is stateless per payment (it re-runs the residual BFS
  // against the masked graph every time), so only the mice table holds
  // state to patch — and only closes can make a cached path invalid.
  if (closed.empty()) return 0;
  return table_.invalidate_closed_paths();
}

}  // namespace flash

// Elephant payment routing: Algorithm 1 + fee-minimizing split (paper §3.2).
//
// Path finding runs the paper's modified Edmonds-Karp: BFS on the residual
// graph (edges assumed to have capacity until probed), probe each new path
// to learn real balances, update residuals, for at most k paths; the
// demand check happens after the loop (Algorithm 1 lines 25-28), so the
// path set usually carries surplus capacity. Path selection then solves
// program (1) to split the payment across the found paths with minimum
// total fees; the sequential (discovery-order) split is available as the
// "w/o optimization" ablation of Fig. 9.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "graph/scratch.h"
#include "ledger/fee_policy.h"
#include "ledger/network_state.h"
#include "lp/fee_min.h"
#include "routing/router.h"

namespace flash {

/// Tuning knobs for the elephant pipeline. Plain value type.
struct ElephantConfig {
  /// Maximum number of paths to find and probe (the paper's k; default 20,
  /// with 20-30 recommended for realistic topologies, §3.2/§4.1).
  std::size_t max_paths = 20;
  /// When false, skip the LP and fill paths in discovery order (Fig. 9
  /// baseline).
  bool optimize_fees = true;
  /// Optional per-directed-edge open mask (borrowed; null = all open):
  /// the residual BFS refuses masked-closed edges, so probing behaves as
  /// if they were absent (incremental maintenance, sim/scenario.h).
  const unsigned char* open_mask = nullptr;
  /// Timelock budget as a hop cap (0 = unlimited): the probe loop stops
  /// once the residual BFS (shortest-path) augmenting path exceeds it —
  /// every remaining augmenting path at that point is at least as long.
  std::size_t max_hops = 0;
};

/// Outcome of the probing phase (Algorithm 1).
struct ElephantProbeResult {
  bool feasible = false;            // f >= d after the loop
  std::vector<Path> paths;          // the path set P
  std::vector<Amount> bottlenecks;  // per-path residual bottleneck c
  /// Probed capacity matrix C, in probe order: each directed edge is
  /// recorded when it is first probed. That insertion order is the fee
  /// LP's constraint order — canonical and portable (no dependence on any
  /// standard library's hash iteration order).
  ProbedCapacities capacities;
  Amount max_flow = 0;              // f
  std::uint32_t probes = 0;         // number of path probes issued
};

/// Algorithm 1: modified Edmonds-Karp with probing against `state`.
/// Mutates only `state` (probe metering); safe to call concurrently on
/// distinct NetworkStates.
ElephantProbeResult elephant_find_paths(const Graph& g, NodeId s, NodeId t,
                                        Amount demand, std::size_t max_paths,
                                        NetworkState& state);

/// Hot-path variant: runs the probe loop in `scratch` (residuals and the
/// per-iteration BFS live in flat epoch-stamped edge arrays — no hash-map
/// lookups anywhere) and reuses `result`'s buffers, including the flat
/// probed capacity matrix. Zero steady-state allocations. Same sharing
/// rules as elephant_find_paths, plus: `scratch` follows the GraphScratch
/// thread-affinity contract.
void elephant_find_paths_into(const Graph& g, NodeId s, NodeId t,
                              Amount demand, std::size_t max_paths,
                              NetworkState& state, GraphScratch& scratch,
                              ElephantProbeResult& result,
                              const unsigned char* open_mask = nullptr,
                              std::size_t max_hops = 0);

/// Full elephant pipeline: find paths, split (LP or sequential), execute
/// atomically against the ledger. Mutates only `state`; safe to call
/// concurrently on distinct NetworkStates.
RouteResult route_elephant(const Graph& g, const Transaction& tx,
                           NetworkState& state, const FeeSchedule& fees,
                           const ElephantConfig& config);

/// Hot-path variant threading the router's workspaces through the whole
/// pipeline (FlashRouter::route uses this): graph scratch for
/// probing/netting, a reusable probe result, and the split workspace for
/// program (1). Allocation-free in steady state.
RouteResult route_elephant(const Graph& g, const Transaction& tx,
                           NetworkState& state, const FeeSchedule& fees,
                           const ElephantConfig& config, GraphScratch& scratch,
                           ElephantProbeResult& probe_buf,
                           SplitWorkspace& split_ws);

}  // namespace flash

// Per-sender routing table for mice payments (paper §3.3).
//
// Each node keeps, per unique receiver, the top-m shortest paths computed
// with Yen's algorithm on the local topology. Recurrence (Fig. 4) makes
// this a table-lookup fast path for the vast majority of payments. Entries
// time out when unused; a path that turns out dead is replaced by the next
// shortest path. The table is rebuilt when the gossiped topology changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/scratch.h"
#include "graph/types.h"

namespace flash {

/// Tuning knobs for MiceRoutingTable. Plain value type.
struct RoutingTableConfig {
  /// Paths kept per receiver (the paper's m; default 4, §4.1).
  std::size_t paths_per_receiver = 4;
  /// Extra Yen paths computed and cached as spares for dead-path
  /// replacement, avoiding a full recomputation per replacement.
  std::size_t spare_paths = 4;
  /// Entries not used for this many lookups are evicted (the paper uses
  /// timeouts to bound table size). 0 disables eviction.
  std::uint64_t entry_timeout = 0;
  /// Dead-path replacement under churn: when an entry's last active path
  /// dies with the spares exhausted, drop the whole entry so the next
  /// lookup recomputes it (one extra Yen) instead of returning an empty
  /// path set forever. Off by default — recomputation changes the probe
  /// stream, and the static-simulation results are pinned bit-identical;
  /// the scenario engine enables it for its stale-view routers.
  bool recompute_on_exhaustion = false;
  /// Timelock budget as a hop cap (0 = unlimited): Yen results longer than
  /// this are discarded at computation time, so neither active paths nor
  /// spares can ever exceed the budget.
  std::size_t max_hops = 0;
};

/// NOT thread-safe: lookup() mutates the entry cache and the eviction
/// clock. Each concurrently running FlashRouter owns its own table. The
/// Graph is borrowed and must outlive the table.
class MiceRoutingTable {
 public:
  MiceRoutingTable(const Graph& graph, RoutingTableConfig config);

  /// Active paths for (sender, receiver); computes and inserts them on
  /// first use. The returned reference is invalidated by any non-const
  /// call. `computed` (optional out) reports whether Yen ran.
  const std::vector<Path>& lookup(NodeId sender, NodeId receiver,
                                  bool* computed = nullptr);

  /// Hot-path variant: a cache miss runs Yen inside `scratch` instead of a
  /// thread-local one (FlashRouter passes its own). Same semantics.
  const std::vector<Path>& lookup(NodeId sender, NodeId receiver,
                                  GraphScratch& scratch,
                                  bool* computed = nullptr);

  /// Replaces `path` (one of the entry's active paths) with the next
  /// shortest spare, dropping it permanently. Returns true if a
  /// replacement was activated, false if the entry simply shrank.
  bool replace_dead_path(NodeId sender, NodeId receiver, const Path& path);

  /// Recomputes nothing eagerly; drops everything so the next lookups
  /// recompute on the fresh topology (periodic refresh, §3.3).
  void clear();

  /// Installs (or clears) the open-edge mask: when set, lookup's Yen runs
  /// with closed edges weighted out (kEdgeBanned), so computed paths only
  /// use open channels. Borrowed; caller keeps it alive and current.
  void set_open_mask(const unsigned char* mask) noexcept { open_mask_ = mask; }

  /// Drops every entry holding a cached path (active or unconsumed spare)
  /// that traverses a masked-closed edge — the affected set of a channel
  /// close. Entries whose paths all stay open survive untouched; affected
  /// pairs re-Yen lazily on their next lookup. Returns entries dropped.
  /// Precondition: an open mask is installed.
  std::size_t invalidate_closed_paths();

  std::size_t size() const noexcept { return entries_.size(); }

  /// Total Yen invocations (path computations), an overhead metric.
  std::uint64_t computations() const noexcept { return computations_; }

  // --- Speculative undo journal (concurrent replay engine) ----------------
  //
  // The replay engine (sim/concurrent.cc) routes payments optimistically
  // and may need to un-route one whose ledger view turned out stale. While
  // the journal is armed (first undo_mark call), the two table mutations a
  // route can cause are recorded with enough context to restore the entry
  // map exactly: replace_dead_path (balance-dependent — WHICH path dies
  // depends on the ledger the route saw) and lookup's lazy Yen insert
  // (pure topology, but journaled so that an erase-then-reinsert pair
  // rolls back to the erased entry's exact prior state, not to a fresh
  // recompute). The lookup clock is deliberately NOT journaled: it is
  // unobservable while entry_timeout == 0, the only configuration the
  // speculative engine supports.

  /// Arms the journal and returns a token for the current state.
  std::uint64_t undo_mark();
  /// Restores the state captured at `mark` (undoes later mutations,
  /// newest first). Records above `mark` are consumed.
  void undo_rollback(std::uint64_t mark);
  /// Declares mutations before `mark` permanent, freeing their records.
  void undo_release(std::uint64_t mark);

 private:
  struct Entry {
    std::vector<Path> active;
    std::vector<Path> spares;       // next-shortest candidates, in order
    std::size_t next_spare = 0;     // first unconsumed spare (O(1) pop)
    std::uint64_t last_used = 0;    // lookup clock value
  };

  struct UndoRecord {
    enum class Kind : std::uint8_t {
      kInserted,   // lookup created the entry; undo erases it
      kActivated,  // replace_dead_path consumed a spare; undo un-consumes
      kShrunk,     // replace_dead_path erased an active path; undo reinserts
      kErased,     // exhaustion dropped the whole entry; undo re-creates it
    };
    Kind kind;
    std::uint64_t key;
    std::size_t active_pos = 0;       // kActivated/kShrunk: index in active
    std::size_t spare_pos = 0;        // kActivated: next_spare before
    std::size_t old_spare_count = 0;  // kActivated: spares.size() before
    Path dead_path;                   // the replaced/erased path
  };

  const Graph* graph_;
  RoutingTableConfig config_;
  const unsigned char* open_mask_ = nullptr;  // per directed edge; borrowed
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t clock_ = 0;
  std::uint64_t computations_ = 0;
  std::vector<UndoRecord> undo_log_;
  std::uint64_t undo_base_ = 0;  // marks count released prefix records
  bool undo_armed_ = false;

  void evict_stale();
};

}  // namespace flash

// Per-sender routing table for mice payments (paper §3.3).
//
// Each node keeps, per unique receiver, the top-m shortest paths computed
// with Yen's algorithm on the local topology. Recurrence (Fig. 4) makes
// this a table-lookup fast path for the vast majority of payments. Entries
// time out when unused; a path that turns out dead is replaced by the next
// shortest path. The table is rebuilt when the gossiped topology changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/scratch.h"
#include "graph/types.h"

namespace flash {

/// Tuning knobs for MiceRoutingTable. Plain value type.
struct RoutingTableConfig {
  /// Paths kept per receiver (the paper's m; default 4, §4.1).
  std::size_t paths_per_receiver = 4;
  /// Extra Yen paths computed and cached as spares for dead-path
  /// replacement, avoiding a full recomputation per replacement.
  std::size_t spare_paths = 4;
  /// Entries not used for this many lookups are evicted (the paper uses
  /// timeouts to bound table size). 0 disables eviction.
  std::uint64_t entry_timeout = 0;
  /// Dead-path replacement under churn: when an entry's last active path
  /// dies with the spares exhausted, drop the whole entry so the next
  /// lookup recomputes it (one extra Yen) instead of returning an empty
  /// path set forever. Off by default — recomputation changes the probe
  /// stream, and the static-simulation results are pinned bit-identical;
  /// the scenario engine enables it for its stale-view routers.
  bool recompute_on_exhaustion = false;
};

/// NOT thread-safe: lookup() mutates the entry cache and the eviction
/// clock. Each concurrently running FlashRouter owns its own table. The
/// Graph is borrowed and must outlive the table.
class MiceRoutingTable {
 public:
  MiceRoutingTable(const Graph& graph, RoutingTableConfig config);

  /// Active paths for (sender, receiver); computes and inserts them on
  /// first use. The returned reference is invalidated by any non-const
  /// call. `computed` (optional out) reports whether Yen ran.
  const std::vector<Path>& lookup(NodeId sender, NodeId receiver,
                                  bool* computed = nullptr);

  /// Hot-path variant: a cache miss runs Yen inside `scratch` instead of a
  /// thread-local one (FlashRouter passes its own). Same semantics.
  const std::vector<Path>& lookup(NodeId sender, NodeId receiver,
                                  GraphScratch& scratch,
                                  bool* computed = nullptr);

  /// Replaces `path` (one of the entry's active paths) with the next
  /// shortest spare, dropping it permanently. Returns true if a
  /// replacement was activated, false if the entry simply shrank.
  bool replace_dead_path(NodeId sender, NodeId receiver, const Path& path);

  /// Recomputes nothing eagerly; drops everything so the next lookups
  /// recompute on the fresh topology (periodic refresh, §3.3).
  void clear();

  /// Installs (or clears) the open-edge mask: when set, lookup's Yen runs
  /// with closed edges weighted out (kEdgeBanned), so computed paths only
  /// use open channels. Borrowed; caller keeps it alive and current.
  void set_open_mask(const unsigned char* mask) noexcept { open_mask_ = mask; }

  /// Drops every entry holding a cached path (active or unconsumed spare)
  /// that traverses a masked-closed edge — the affected set of a channel
  /// close. Entries whose paths all stay open survive untouched; affected
  /// pairs re-Yen lazily on their next lookup. Returns entries dropped.
  /// Precondition: an open mask is installed.
  std::size_t invalidate_closed_paths();

  std::size_t size() const noexcept { return entries_.size(); }

  /// Total Yen invocations (path computations), an overhead metric.
  std::uint64_t computations() const noexcept { return computations_; }

 private:
  struct Entry {
    std::vector<Path> active;
    std::vector<Path> spares;       // next-shortest candidates, in order
    std::size_t next_spare = 0;     // first unconsumed spare (O(1) pop)
    std::uint64_t last_used = 0;    // lookup clock value
  };

  const Graph* graph_;
  RoutingTableConfig config_;
  const unsigned char* open_mask_ = nullptr;  // per directed edge; borrowed
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t clock_ = 0;
  std::uint64_t computations_ = 0;

  void evict_stale();
};

}  // namespace flash

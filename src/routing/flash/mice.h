// Mice payment routing: routing table + trial-and-error loop (paper §3.3).
//
// The sender looks up its top-m shortest paths for the receiver and walks
// them in random order. On each path it first tries to send the full
// remaining amount *without probing*; only if that fails does it probe the
// path and send a partial payment equal to the path's effective capacity.
// Probing therefore happens only when necessary - the heart of Flash's
// overhead savings (Fig. 8). Paths with zero effective capacity are
// replaced by the next shortest path. If all m paths are exhausted with
// demand left, the payment fails and all partial holds are rolled back.
#pragma once

#include "graph/graph.h"
#include "graph/scratch.h"
#include "ledger/fee_policy.h"
#include "ledger/network_state.h"
#include "routing/flash/routing_table.h"
#include "routing/router.h"
#include "util/rng.h"

namespace flash {

/// Routes one mice payment. `table` is the sender-side routing table,
/// `rng` drives the random path order. Mutates `state`, `table` and `rng`:
/// concurrent calls must not share any of the three (one router — and so
/// one table/rng — per concurrent simulation).
RouteResult route_mice(const Graph& g, const Transaction& tx,
                       NetworkState& state, const FeeSchedule& fees,
                       MiceRoutingTable& table, Rng& rng);

/// Hot-path variant: the path-order buffer, probe balances and dead-path
/// staging all live in `scratch` (same thread-affinity contract as the
/// graph algorithms), so a table-hit payment allocates nothing in the
/// routing layer. FlashRouter::route uses this.
RouteResult route_mice(const Graph& g, const Transaction& tx,
                       NetworkState& state, const FeeSchedule& fees,
                       MiceRoutingTable& table, Rng& rng,
                       GraphScratch& scratch);

/// Extension (paper §6 future work: congestion-aware load balancing):
/// probe all table paths up front and split the payment by waterfilling,
/// like Spider does — paying probing overhead on every mice payment in
/// exchange for balance-aware path use. Exposed for the ablation bench
/// that quantifies this tradeoff against the paper's trial-and-error.
/// Same sharing rules as route_mice (minus the rng).
RouteResult route_mice_waterfill(const Graph& g, const Transaction& tx,
                                 NetworkState& state, const FeeSchedule& fees,
                                 MiceRoutingTable& table);

/// Scratch-threaded variant of route_mice_waterfill.
RouteResult route_mice_waterfill(const Graph& g, const Transaction& tx,
                                 NetworkState& state, const FeeSchedule& fees,
                                 MiceRoutingTable& table,
                                 GraphScratch& scratch);

}  // namespace flash

#include "routing/flash/routing_table.h"

#include <algorithm>

#include "graph/yen.h"

namespace flash {

// Entries are keyed by pair_key(sender, receiver) from graph/types.h (the
// shared checked NodeId-packing helper).

MiceRoutingTable::MiceRoutingTable(const Graph& graph,
                                   RoutingTableConfig config)
    : graph_(&graph), config_(config) {}

const std::vector<Path>& MiceRoutingTable::lookup(NodeId sender,
                                                  NodeId receiver,
                                                  bool* computed) {
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  return lookup(sender, receiver, scratch, computed);
}

const std::vector<Path>& MiceRoutingTable::lookup(NodeId sender,
                                                  NodeId receiver,
                                                  GraphScratch& scratch,
                                                  bool* computed) {
  ++clock_;
  if (config_.entry_timeout != 0 && (clock_ % 256) == 0) evict_stale();

  const auto key = pair_key(sender, receiver);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    auto& paths = scratch.path_list_buf;
    if (open_mask_) {
      // Masked topology: closed edges cost kEdgeBanned, which dijkstra_core
      // skips before pushing — the search behaves exactly as if the edge
      // were absent, so results match Yen on the open-channel subgraph.
      const unsigned char* mask = open_mask_;
      yen_core(
          *graph_, sender, receiver,
          config_.paths_per_receiver + config_.spare_paths, scratch,
          [mask](EdgeId e) { return mask[e] ? 1.0 : kEdgeBanned; }, paths);
    } else {
      yen_core(*graph_, sender, receiver,
               config_.paths_per_receiver + config_.spare_paths, scratch,
               UnitWeight{}, paths);
    }
    ++computations_;
    const std::size_t active =
        std::min(paths.size(), config_.paths_per_receiver);
    entry.active.assign(paths.begin(),
                        paths.begin() + static_cast<long>(active));
    entry.spares.assign(paths.begin() + static_cast<long>(active),
                        paths.end());
    it = entries_.emplace(key, std::move(entry)).first;
    if (computed) *computed = true;
  } else if (computed) {
    *computed = false;
  }
  it->second.last_used = clock_;
  return it->second.active;
}

bool MiceRoutingTable::replace_dead_path(NodeId sender, NodeId receiver,
                                         const Path& path) {
  const auto it = entries_.find(pair_key(sender, receiver));
  if (it == entries_.end()) return false;
  Entry& entry = it->second;
  const auto pos = std::find(entry.active.begin(), entry.active.end(), path);
  if (pos == entry.active.end()) return false;
  if (entry.next_spare < entry.spares.size()) {
    // O(1) pop-front: consume spares by index instead of erasing (the
    // spares vector is dropped wholesale once exhausted).
    *pos = std::move(entry.spares[entry.next_spare++]);
    if (entry.next_spare == entry.spares.size()) {
      entry.spares.clear();
      entry.next_spare = 0;
    }
    return true;
  }
  entry.active.erase(pos);
  if (config_.recompute_on_exhaustion && entry.active.empty()) {
    // Every path this entry ever knew is dead. Under churn the topology
    // that produced them is gone too, so forget the entry: the next lookup
    // re-runs Yen on the (refreshed) graph rather than failing forever.
    entries_.erase(it);
  }
  return false;
}

void MiceRoutingTable::clear() { entries_.clear(); }

std::size_t MiceRoutingTable::invalidate_closed_paths() {
  // Affected-set rule: an entry dies iff any path it could ever serve —
  // active paths and the unconsumed spare tail (replace_dead_path may
  // activate those later) — crosses a closed edge. One O(path length) mask
  // scan per cached path, no per-close graph work.
  const unsigned char* mask = open_mask_;
  auto path_closed = [mask](const Path& p) {
    for (const EdgeId e : p) {
      if (!mask[e]) return true;
    }
    return false;
  };
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& entry = it->second;
    bool dead = false;
    for (const Path& p : entry.active) {
      if (path_closed(p)) {
        dead = true;
        break;
      }
    }
    for (std::size_t i = entry.next_spare; !dead && i < entry.spares.size();
         ++i) {
      dead = path_closed(entry.spares[i]);
    }
    if (dead) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void MiceRoutingTable::evict_stale() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (clock_ - it->second.last_used > config_.entry_timeout) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace flash

#include "routing/flash/routing_table.h"

#include <algorithm>

#include "graph/yen.h"

namespace flash {

// Entries are keyed by pair_key(sender, receiver) from graph/types.h (the
// shared checked NodeId-packing helper).

MiceRoutingTable::MiceRoutingTable(const Graph& graph,
                                   RoutingTableConfig config)
    : graph_(&graph), config_(config) {}

const std::vector<Path>& MiceRoutingTable::lookup(NodeId sender,
                                                  NodeId receiver,
                                                  bool* computed) {
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  return lookup(sender, receiver, scratch, computed);
}

const std::vector<Path>& MiceRoutingTable::lookup(NodeId sender,
                                                  NodeId receiver,
                                                  GraphScratch& scratch,
                                                  bool* computed) {
  ++clock_;
  if (config_.entry_timeout != 0 && (clock_ % 256) == 0) evict_stale();

  const auto key = pair_key(sender, receiver);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    auto& paths = scratch.path_list_buf;
    if (open_mask_) {
      // Masked topology: closed edges cost kEdgeBanned, which dijkstra_core
      // skips before pushing — the search behaves exactly as if the edge
      // were absent, so results match Yen on the open-channel subgraph.
      const unsigned char* mask = open_mask_;
      yen_core(
          *graph_, sender, receiver,
          config_.paths_per_receiver + config_.spare_paths, scratch,
          [mask](EdgeId e) { return mask[e] ? 1.0 : kEdgeBanned; }, paths);
    } else {
      yen_core(*graph_, sender, receiver,
               config_.paths_per_receiver + config_.spare_paths, scratch,
               UnitWeight{}, paths);
    }
    ++computations_;
    if (config_.max_hops != 0) {
      // Yen emits paths in non-decreasing length, so the over-budget ones
      // form a suffix; dropping them keeps the top-m semantics intact.
      std::erase_if(paths, [this](const Path& p) {
        return p.size() > config_.max_hops;
      });
    }
    const std::size_t active =
        std::min(paths.size(), config_.paths_per_receiver);
    entry.active.assign(paths.begin(),
                        paths.begin() + static_cast<long>(active));
    entry.spares.assign(paths.begin() + static_cast<long>(active),
                        paths.end());
    it = entries_.emplace(key, std::move(entry)).first;
    if (undo_armed_) {
      undo_log_.push_back({UndoRecord::Kind::kInserted, key, 0, 0, 0, {}});
    }
    if (computed) *computed = true;
  } else if (computed) {
    *computed = false;
  }
  it->second.last_used = clock_;
  return it->second.active;
}

bool MiceRoutingTable::replace_dead_path(NodeId sender, NodeId receiver,
                                         const Path& path) {
  const auto key = pair_key(sender, receiver);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  Entry& entry = it->second;
  const auto pos = std::find(entry.active.begin(), entry.active.end(), path);
  if (pos == entry.active.end()) return false;
  const auto active_pos =
      static_cast<std::size_t>(pos - entry.active.begin());
  if (entry.next_spare < entry.spares.size()) {
    if (undo_armed_) {
      undo_log_.push_back({UndoRecord::Kind::kActivated, key, active_pos,
                           entry.next_spare, entry.spares.size(), *pos});
    }
    // O(1) pop-front: consume spares by index instead of erasing (the
    // spares vector is dropped wholesale once exhausted).
    *pos = std::move(entry.spares[entry.next_spare++]);
    if (entry.next_spare == entry.spares.size()) {
      entry.spares.clear();
      entry.next_spare = 0;
    }
    return true;
  }
  const bool erase_entry =
      config_.recompute_on_exhaustion && entry.active.size() == 1;
  if (undo_armed_) {
    undo_log_.push_back(
        {erase_entry ? UndoRecord::Kind::kErased : UndoRecord::Kind::kShrunk,
         key, active_pos, 0, 0, *pos});
  }
  entry.active.erase(pos);
  if (erase_entry) {
    // Every path this entry ever knew is dead. Under churn the topology
    // that produced them is gone too, so forget the entry: the next lookup
    // re-runs Yen on the (refreshed) graph rather than failing forever.
    entries_.erase(it);
  }
  return false;
}

std::uint64_t MiceRoutingTable::undo_mark() {
  undo_armed_ = true;
  return undo_base_ + undo_log_.size();
}

void MiceRoutingTable::undo_rollback(std::uint64_t mark) {
  while (undo_base_ + undo_log_.size() > mark) {
    UndoRecord rec = std::move(undo_log_.back());
    undo_log_.pop_back();
    switch (rec.kind) {
      case UndoRecord::Kind::kInserted:
        entries_.erase(rec.key);
        break;
      case UndoRecord::Kind::kActivated: {
        Entry& entry = entries_.at(rec.key);
        // If the activation exhausted (and cleared) the spares vector,
        // re-grow it: slots below spare_pos were consumed husks before the
        // clear and are never read again once next_spare is restored.
        if (entry.spares.size() < rec.old_spare_count) {
          entry.spares.resize(rec.old_spare_count);
        }
        entry.spares[rec.spare_pos] = std::move(entry.active[rec.active_pos]);
        entry.active[rec.active_pos] = std::move(rec.dead_path);
        entry.next_spare = rec.spare_pos;
        break;
      }
      case UndoRecord::Kind::kShrunk: {
        Entry& entry = entries_.at(rec.key);
        entry.active.insert(
            entry.active.begin() + static_cast<long>(rec.active_pos),
            std::move(rec.dead_path));
        break;
      }
      case UndoRecord::Kind::kErased: {
        Entry entry;
        entry.active.push_back(std::move(rec.dead_path));
        entry.last_used = clock_;  // unobservable: timeout disabled
        entries_.emplace(rec.key, std::move(entry));
        break;
      }
    }
  }
}

void MiceRoutingTable::undo_release(std::uint64_t mark) {
  if (mark <= undo_base_) return;
  const auto n = static_cast<std::size_t>(
      std::min<std::uint64_t>(undo_log_.size(), mark - undo_base_));
  undo_log_.erase(undo_log_.begin(), undo_log_.begin() + static_cast<long>(n));
  undo_base_ += n;
}

void MiceRoutingTable::clear() { entries_.clear(); }

std::size_t MiceRoutingTable::invalidate_closed_paths() {
  // Affected-set rule: an entry dies iff any path it could ever serve —
  // active paths and the unconsumed spare tail (replace_dead_path may
  // activate those later) — crosses a closed edge. One O(path length) mask
  // scan per cached path, no per-close graph work.
  const unsigned char* mask = open_mask_;
  auto path_closed = [mask](const Path& p) {
    for (const EdgeId e : p) {
      if (!mask[e]) return true;
    }
    return false;
  };
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& entry = it->second;
    bool dead = false;
    for (const Path& p : entry.active) {
      if (path_closed(p)) {
        dead = true;
        break;
      }
    }
    for (std::size_t i = entry.next_spare; !dead && i < entry.spares.size();
         ++i) {
      dead = path_closed(entry.spares[i]);
    }
    if (dead) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void MiceRoutingTable::evict_stale() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (clock_ - it->second.last_used > config_.entry_timeout) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace flash

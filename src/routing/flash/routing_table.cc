#include "routing/flash/routing_table.h"

#include <algorithm>

#include "graph/yen.h"

namespace flash {

// Entries are keyed by pair_key(sender, receiver) from graph/types.h (the
// shared checked NodeId-packing helper).

MiceRoutingTable::MiceRoutingTable(const Graph& graph,
                                   RoutingTableConfig config)
    : graph_(&graph), config_(config) {}

const std::vector<Path>& MiceRoutingTable::lookup(NodeId sender,
                                                  NodeId receiver,
                                                  bool* computed) {
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  return lookup(sender, receiver, scratch, computed);
}

const std::vector<Path>& MiceRoutingTable::lookup(NodeId sender,
                                                  NodeId receiver,
                                                  GraphScratch& scratch,
                                                  bool* computed) {
  ++clock_;
  if (config_.entry_timeout != 0 && (clock_ % 256) == 0) evict_stale();

  const auto key = pair_key(sender, receiver);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    auto& paths = scratch.path_list_buf;
    yen_core(*graph_, sender, receiver,
             config_.paths_per_receiver + config_.spare_paths, scratch,
             UnitWeight{}, paths);
    ++computations_;
    const std::size_t active =
        std::min(paths.size(), config_.paths_per_receiver);
    entry.active.assign(paths.begin(),
                        paths.begin() + static_cast<long>(active));
    entry.spares.assign(paths.begin() + static_cast<long>(active),
                        paths.end());
    it = entries_.emplace(key, std::move(entry)).first;
    if (computed) *computed = true;
  } else if (computed) {
    *computed = false;
  }
  it->second.last_used = clock_;
  return it->second.active;
}

bool MiceRoutingTable::replace_dead_path(NodeId sender, NodeId receiver,
                                         const Path& path) {
  const auto it = entries_.find(pair_key(sender, receiver));
  if (it == entries_.end()) return false;
  Entry& entry = it->second;
  const auto pos = std::find(entry.active.begin(), entry.active.end(), path);
  if (pos == entry.active.end()) return false;
  if (entry.next_spare < entry.spares.size()) {
    // O(1) pop-front: consume spares by index instead of erasing (the
    // spares vector is dropped wholesale once exhausted).
    *pos = std::move(entry.spares[entry.next_spare++]);
    if (entry.next_spare == entry.spares.size()) {
      entry.spares.clear();
      entry.next_spare = 0;
    }
    return true;
  }
  entry.active.erase(pos);
  if (config_.recompute_on_exhaustion && entry.active.empty()) {
    // Every path this entry ever knew is dead. Under churn the topology
    // that produced them is gone too, so forget the entry: the next lookup
    // re-runs Yen on the (refreshed) graph rather than failing forever.
    entries_.erase(it);
  }
  return false;
}

void MiceRoutingTable::clear() { entries_.clear(); }

void MiceRoutingTable::evict_stale() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (clock_ - it->second.last_used > config_.entry_timeout) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace flash

#include "routing/flash/mice.h"

#include <algorithm>
#include <numeric>

#include "ledger/htlc.h"
#include "routing/spider.h"

namespace flash {

namespace {
constexpr Amount kEps = 1e-9;
}

RouteResult route_mice(const Graph& g, const Transaction& tx,
                       NetworkState& state, const FeeSchedule& fees,
                       MiceRoutingTable& table, Rng& rng,
                       GraphScratch& scratch) {
  (void)g;
  RouteResult result;
  if (tx.amount <= 0 || tx.sender == tx.receiver) return result;

  const std::uint64_t msgs_before = state.probe_messages();

  // Table lookup (computes top-m shortest paths only for a new receiver).
  // The reference stays valid through the attempt loop: dead paths are
  // staged in the scratch pool and only swapped into the entry after the
  // loop, which also keeps the attempt set frozen at lookup time (a
  // replacement path never competes for the payment that discovered the
  // dead one — same behavior the old copy-the-entry implementation had).
  const std::vector<Path>& paths = table.lookup(tx.sender, tx.receiver,
                                                scratch);
  if (paths.empty()) return result;

  // Random order load-balances paths without knowing their capacities.
  auto& order = scratch.index_buf;
  order.resize(paths.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  const std::size_t dead_base = scratch.pool.size();
  std::size_t dead_count = 0;

  AtomicPayment payment(state);
  Amount remaining = tx.amount;
  Amount fee = 0;
  for (const std::size_t idx : order) {
    const Path& path = paths[idx];
    // Trial: send the remaining amount in full, no probe.
    if (payment.add_part(path, remaining)) {
      fee += fees.path_fee(path, remaining);
      ++result.paths_used;
      remaining = 0;
      break;
    }
    // Error: probe to learn the path's effective capacity, then send a
    // partial payment of exactly that volume.
    auto& balances = scratch.balance_buf;
    state.probe_path_into(path, balances);
    ++result.probes;
    const Amount cap =
        *std::min_element(balances.begin(), balances.end());
    if (cap <= kEps) {
      // Dead path: stage it for replacement with the next shortest one for
      // future payments (it stays out of this payment's attempt set).
      scratch.pool.alloc().assign(path.begin(), path.end());
      ++dead_count;
      continue;
    }
    const Amount part = std::min(cap, remaining);
    if (payment.add_part(path, part)) {
      fee += fees.path_fee(path, part);
      ++result.paths_used;
      remaining -= part;
      if (remaining <= kEps) break;
    }
  }

  // Apply the staged dead-path replacements (mutates the table entry, so
  // it must come after the loop finished reading `paths`).
  for (std::size_t i = 0; i < dead_count; ++i) {
    table.replace_dead_path(tx.sender, tx.receiver,
                            scratch.pool.at(dead_base + i));
  }
  for (std::size_t i = 0; i < dead_count; ++i) scratch.pool.pop();

  result.probe_messages = state.probe_messages() - msgs_before;
  if (remaining > kEps) {
    // m paths exhausted: declare failure; destructor aborts all holds.
    return result;
  }
  payment.commit();
  result.success = true;
  result.delivered = tx.amount;
  result.fee = fee;
  return result;
}

RouteResult route_mice(const Graph& g, const Transaction& tx,
                       NetworkState& state, const FeeSchedule& fees,
                       MiceRoutingTable& table, Rng& rng) {
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  return route_mice(g, tx, state, fees, table, rng, scratch);
}

RouteResult route_mice_waterfill(const Graph& g, const Transaction& tx,
                                 NetworkState& state, const FeeSchedule& fees,
                                 MiceRoutingTable& table,
                                 GraphScratch& scratch) {
  (void)g;
  RouteResult result;
  if (tx.amount <= 0 || tx.sender == tx.receiver) return result;

  const std::uint64_t msgs_before = state.probe_messages();
  // No non-const table call happens while `paths` is alive.
  const std::vector<Path>& paths = table.lookup(tx.sender, tx.receiver,
                                                scratch);
  if (paths.empty()) return result;

  // Probe every table path (the overhead this mode pays on each payment).
  auto& caps = scratch.amount_buf;
  caps.assign(paths.size(), 0);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    auto& balances = scratch.balance_buf;
    state.probe_path_into(paths[i], balances);
    caps[i] = *std::min_element(balances.begin(), balances.end());
    ++result.probes;
  }

  // Waterfill: level allocations toward the most available paths (same
  // allocation rule as Spider).
  const std::vector<Amount> alloc = SpiderRouter::waterfill(caps, tx.amount);
  const Amount placed =
      std::accumulate(alloc.begin(), alloc.end(), Amount{0});
  if (placed + kEps < tx.amount) {
    result.probe_messages = state.probe_messages() - msgs_before;
    return result;  // insufficient joint capacity
  }

  AtomicPayment payment(state);
  Amount fee = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (alloc[i] <= kEps) continue;
    if (!payment.add_part(paths[i], alloc[i])) {
      result.probe_messages = state.probe_messages() - msgs_before;
      return result;  // overlapping paths raced; atomic abort
    }
    fee += fees.path_fee(paths[i], alloc[i]);
    ++result.paths_used;
  }
  payment.commit();
  result.probe_messages = state.probe_messages() - msgs_before;
  result.success = true;
  result.delivered = tx.amount;
  result.fee = fee;
  return result;
}

RouteResult route_mice_waterfill(const Graph& g, const Transaction& tx,
                                 NetworkState& state, const FeeSchedule& fees,
                                 MiceRoutingTable& table) {
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  return route_mice_waterfill(g, tx, state, fees, table, scratch);
}

}  // namespace flash

#include "routing/flash/elephant.h"

#include <algorithm>
#include <cassert>

#include "graph/bfs.h"
#include "ledger/htlc.h"

namespace flash {

namespace {
constexpr Amount kEps = 1e-9;
}

void elephant_find_paths_into(const Graph& g, NodeId s, NodeId t,
                              Amount demand, std::size_t max_paths,
                              NetworkState& state, GraphScratch& scratch,
                              ElephantProbeResult& result) {
  result.feasible = false;
  result.bottlenecks.clear();
  // A FRESH map, not clear(): clear() keeps the grown bucket array, which
  // changes the map's iteration order versus a fresh map receiving the same
  // insertion sequence — and that order feeds the LP constraint order, so
  // it must match the legacy per-call map bit-for-bit.
  result.capacities = CapacityMap{};
  result.max_flow = 0;
  result.probes = 0;
  std::size_t num_paths = 0;
  auto finish = [&] {
    result.paths.resize(num_paths);
    result.feasible = result.max_flow + kEps >= demand;
  };
  if (s == t || demand <= 0) {
    // Not finish(): a degenerate request must stay infeasible, while
    // finish() would report feasible for demand <= 0 (0 + eps >= demand).
    result.paths.resize(0);
    return;
  }

  // Residual capacity matrix C' (line 5), flat and epoch-stamped: unknown
  // (unstamped) edges are treated as having capacity (= infinity) so BFS
  // may explore them; probed edges use their residual value.
  auto& residual = scratch.edge_amount;
  residual.reset(g.num_edges());
  auto residual_admits = [&residual](EdgeId e) {
    return !residual.contains(e) || residual.get(e) > kEps;
  };

  Path& p = scratch.pool.alloc();
  auto& balances = scratch.balance_buf;
  while (num_paths < max_paths) {
    // Line 7: BFS on G with residual filter.
    p.clear();
    if (!bfs_path_core(g, s, t, scratch, residual_admits, p) || p.empty()) {
      break;  // line 8-9
    }

    // Line 11: probe each channel on p. The probe returns the balances of
    // both directions of every channel on the path (the PROBE_ACK carries
    // the Capacity field both ways, §5.1 / Algorithm 1 lines 17-22).
    state.probe_path_into(p, balances);
    ++result.probes;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const EdgeId e = p[i];
      const EdgeId rev = g.reverse(e);
      if (!residual.contains(e)) {  // line 17: first time
        result.capacities.emplace(e, balances[i]);
        residual.set(e, balances[i]);
      }
      if (!residual.contains(rev)) {  // line 20
        const Amount rev_balance = state.balance(rev);
        result.capacities.emplace(rev, rev_balance);
        residual.set(rev, rev_balance);
      }
    }

    // Line 12: bottleneck over the *residual* capacities (fresh edges have
    // residual == probed balance; edges reused across paths keep their
    // reduced residual).
    Amount bottleneck = std::numeric_limits<Amount>::max();
    for (EdgeId e : p) bottleneck = std::min(bottleneck, residual.get(e));
    bottleneck = std::max<Amount>(bottleneck, 0);

    assign_path_slot(result.paths, num_paths++, p);
    result.bottlenecks.push_back(bottleneck);

    if (bottleneck > kEps) {
      result.max_flow += bottleneck;  // line 13
      for (EdgeId e : p) {
        residual.slot(e) -= bottleneck;               // line 23
        residual.slot(g.reverse(e)) += bottleneck;    // line 24
      }
    }
    // Note: no early exit when f >= d. Algorithm 1 checks the demand only
    // after the loop (lines 25-28), i.e. it always gathers up to k paths.
    // The surplus capacity is what gives program (1) room to shift flow
    // onto cheap paths (the ~40 % fee saving of Fig. 9).
  }
  scratch.pool.pop();
  finish();
}

ElephantProbeResult elephant_find_paths(const Graph& g, NodeId s, NodeId t,
                                        Amount demand, std::size_t max_paths,
                                        NetworkState& state) {
  ElephantProbeResult result;
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  elephant_find_paths_into(g, s, t, demand, max_paths, state, scratch,
                           result);
  return result;
}

RouteResult route_elephant(const Graph& g, const Transaction& tx,
                           NetworkState& state, const FeeSchedule& fees,
                           const ElephantConfig& config, GraphScratch& scratch,
                           ElephantProbeResult& probe_buf) {
  RouteResult result;
  result.elephant = true;
  if (tx.amount <= 0 || tx.sender == tx.receiver) return result;

  const std::uint64_t msgs_before = state.probe_messages();
  ElephantProbeResult& probe = probe_buf;
  elephant_find_paths_into(g, tx.sender, tx.receiver, tx.amount,
                           config.max_paths, state, scratch, probe);
  result.probes = probe.probes;
  result.probe_messages = state.probe_messages() - msgs_before;
  if (!probe.feasible) return result;  // Algorithm 1 returns empty set

  // Path selection: program (1), or the discovery-order fill ablation.
  SplitResult split =
      config.optimize_fees
          ? optimize_fee_split(g, probe.paths, tx.amount, probe.capacities,
                               fees)
          : sequential_split(g, probe.paths, tx.amount, probe.capacities,
                             fees);
  if (!split.feasible && config.optimize_fees) {
    // LP numerically degenerate (rare): fall back to the sequential fill,
    // which is feasible whenever Algorithm 1 reported f >= d.
    split = sequential_split(g, probe.paths, tx.amount, probe.capacities,
                             fees);
  }
  if (!split.feasible) return result;

  // Net the split into per-edge amounts: opposite directions offset
  // (program (1) allows it, and committing the net flow is what the
  // channel balances experience after all partial payments settle).
  auto& net = scratch.amount_buf;
  net.assign(g.num_edges(), 0);
  for (std::size_t i = 0; i < probe.paths.size(); ++i) {
    if (split.amounts[i] <= kEps) continue;
    ++result.paths_used;
    for (EdgeId e : probe.paths[i]) net[e] += split.amounts[i];
  }
  auto& flow = scratch.flow_buf;
  flow.clear();
  for (EdgeId e = 0; e < g.num_edges(); e += 2) {
    const EdgeId r = g.reverse(e);
    const Amount delta = net[e] - net[r];
    if (delta > kEps) {
      flow.emplace_back(e, delta);
    } else if (delta < -kEps) {
      flow.emplace_back(r, -delta);
    }
  }

  AtomicPayment payment(state);
  if (!payment.add_flow(flow, tx.amount)) {
    return result;  // balances changed since probing; atomic failure
  }
  payment.commit();
  result.success = true;
  result.delivered = tx.amount;
  result.fee = split.total_fee;
  return result;
}

RouteResult route_elephant(const Graph& g, const Transaction& tx,
                           NetworkState& state, const FeeSchedule& fees,
                           const ElephantConfig& config) {
  ElephantProbeResult probe_buf;
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  return route_elephant(g, tx, state, fees, config, scratch, probe_buf);
}

}  // namespace flash

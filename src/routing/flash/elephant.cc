#include "routing/flash/elephant.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "graph/bfs.h"

namespace flash {

namespace {
constexpr Amount kEps = 1e-9;
}

void elephant_find_paths_into(const Graph& g, NodeId s, NodeId t,
                              Amount demand, std::size_t max_paths,
                              NetworkState& state, GraphScratch& scratch,
                              ElephantProbeResult& result,
                              const unsigned char* open_mask,
                              std::size_t max_hops) {
  result.feasible = false;
  result.bottlenecks.clear();
  // O(1) epoch reset; entries accumulate in probe order, which is the fee
  // LP's canonical constraint order (identical across standard libraries,
  // unlike the unordered_map this replaced).
  result.capacities.reset(g.num_edges());
  result.max_flow = 0;
  result.probes = 0;
  std::size_t num_paths = 0;
  auto finish = [&] {
    result.paths.resize(num_paths);
    result.feasible = result.max_flow + kEps >= demand;
  };
  if (s == t || demand <= 0) {
    // Not finish(): a degenerate request must stay infeasible, while
    // finish() would report feasible for demand <= 0 (0 + eps >= demand).
    result.paths.resize(0);
    return;
  }

  // Residual capacity matrix C' (line 5), flat and epoch-stamped: unknown
  // (unstamped) edges are treated as having capacity (= infinity) so BFS
  // may explore them; probed edges use their residual value.
  auto& residual = scratch.edge_amount;
  residual.reset(g.num_edges());
  // Raw view (see StampedArray::View): keeps the epoch and array bases in
  // registers inside the BFS inner loop. Updates through `residual` stay
  // visible — the view aliases the same storage and the epoch does not
  // change until the next reset().
  const auto rview = residual.view();
  // The mask test stays ahead of the residual read: a masked-closed edge
  // must look absent (never probed, never entered in C'), exactly like an
  // edge the sender's compacted view graph would not contain.
  const unsigned char* mask = open_mask;
  auto residual_admits = [rview, mask](EdgeId e) {
    if (mask != nullptr && mask[e] == 0) return false;
    return rview.stamp[e] != rview.epoch || rview.vals[e] > kEps;
  };

  Path& p = scratch.pool.alloc();
  auto& balances = scratch.balance_buf;
  while (num_paths < max_paths) {
    // Line 7: BFS on G with residual filter.
    p.clear();
    if (!bfs_path_core(g, s, t, scratch, residual_admits, p) || p.empty()) {
      break;  // line 8-9
    }
    // Timelock budget: the residual BFS path is the shortest augmenting
    // path, so once it exceeds the hop cap probing stops (paths are never
    // probed, so the HTLC sender cannot lock funds it could not unwind
    // within its budget).
    if (max_hops != 0 && p.size() > max_hops) break;

    // Line 11: probe each channel on p. The probe returns the balances of
    // both directions of every channel on the path (the PROBE_ACK carries
    // the Capacity field both ways, §5.1 / Algorithm 1 lines 17-22).
    state.probe_path_into(p, balances);
    ++result.probes;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const EdgeId e = p[i];
      const EdgeId rev = g.reverse(e);
      if (!residual.contains(e)) {  // line 17: first time
        result.capacities.insert(e, balances[i]);
        residual.set(e, balances[i]);
      }
      if (!residual.contains(rev)) {  // line 20
        const Amount rev_balance = state.balance(rev);
        result.capacities.insert(rev, rev_balance);
        residual.set(rev, rev_balance);
      }
    }

    // Line 12: bottleneck over the *residual* capacities (fresh edges have
    // residual == probed balance; edges reused across paths keep their
    // reduced residual).
    Amount bottleneck = std::numeric_limits<Amount>::max();
    for (EdgeId e : p) bottleneck = std::min(bottleneck, residual.get(e));
    bottleneck = std::max<Amount>(bottleneck, 0);

    assign_path_slot(result.paths, num_paths++, p);
    result.bottlenecks.push_back(bottleneck);

    if (bottleneck > kEps) {
      result.max_flow += bottleneck;  // line 13
      for (EdgeId e : p) {
        residual.slot(e) -= bottleneck;               // line 23
        residual.slot(g.reverse(e)) += bottleneck;    // line 24
      }
    }
    // Note: no early exit when f >= d. Algorithm 1 checks the demand only
    // after the loop (lines 25-28), i.e. it always gathers up to k paths.
    // The surplus capacity is what gives program (1) room to shift flow
    // onto cheap paths (the ~40 % fee saving of Fig. 9).
  }
  scratch.pool.pop();
  finish();
}

ElephantProbeResult elephant_find_paths(const Graph& g, NodeId s, NodeId t,
                                        Amount demand, std::size_t max_paths,
                                        NetworkState& state) {
  ElephantProbeResult result;
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  elephant_find_paths_into(g, s, t, demand, max_paths, state, scratch,
                           result);
  return result;
}

RouteResult route_elephant(const Graph& g, const Transaction& tx,
                           NetworkState& state, const FeeSchedule& fees,
                           const ElephantConfig& config, GraphScratch& scratch,
                           ElephantProbeResult& probe_buf,
                           SplitWorkspace& split_ws) {
  RouteResult result;
  result.elephant = true;
  if (tx.amount <= 0 || tx.sender == tx.receiver) return result;

  const std::uint64_t msgs_before = state.probe_messages();
  ElephantProbeResult& probe = probe_buf;
  elephant_find_paths_into(g, tx.sender, tx.receiver, tx.amount,
                           config.max_paths, state, scratch, probe,
                           config.open_mask, config.max_hops);
  result.probes = probe.probes;
  result.probe_messages = state.probe_messages() - msgs_before;
  if (!probe.feasible) return result;  // Algorithm 1 returns empty set

  // Path selection: program (1), or the discovery-order fill ablation.
  SplitResult& split = split_ws.split_buf;
  if (config.optimize_fees) {
    optimize_fee_split_core(g, probe.paths, tx.amount, probe.capacities,
                            fees, split_ws, split);
    if (!split.feasible) {
      // LP numerically degenerate (rare): fall back to the sequential
      // fill, which is feasible whenever Algorithm 1 reported f >= d.
      sequential_split_core(g, probe.paths, tx.amount, probe.capacities,
                            fees, split_ws, split);
    }
  } else {
    sequential_split_core(g, probe.paths, tx.amount, probe.capacities, fees,
                          split_ws, split);
  }
  if (!split.feasible) return result;

  // Net the split into per-edge amounts: opposite directions offset
  // (program (1) allows it, and committing the net flow is what the
  // channel balances experience after all partial payments settle).
  // Sparse: only the channels the used paths touch are visited, not the
  // whole edge array; `channels` records them in first-touch order.
  auto& net = scratch.edge_amount;
  net.reset(g.num_edges());
  auto& channels = split_ws.net_channels;
  channels.clear();
  for (std::size_t i = 0; i < probe.paths.size(); ++i) {
    if (split.amounts[i] <= kEps) continue;
    ++result.paths_used;
    for (EdgeId e : probe.paths[i]) {
      const EdgeId fwd = e & ~1u;
      if (!net.contains(fwd) && !net.contains(g.reverse(fwd))) {
        channels.push_back(fwd);
      }
      net.slot(e) += split.amounts[i];
    }
  }
  auto& flow = scratch.flow_buf;
  flow.clear();
  for (const EdgeId e : channels) {
    const EdgeId r = g.reverse(e);
    const Amount delta = net.get_or(e, 0) - net.get_or(r, 0);
    if (delta > kEps) {
      flow.emplace_back(e, delta);
    } else if (delta < -kEps) {
      flow.emplace_back(r, -delta);
    }
  }

  // Single netted flow, held then committed (hold_flow aggregates and
  // checks feasibility atomically, so this is the AMP contract with one
  // part; nothing is held on failure).
  const auto hold = state.hold_flow(flow);
  if (!hold) {
    return result;  // balances changed since probing; atomic failure
  }
  state.commit(*hold);
  result.success = true;
  result.delivered = tx.amount;
  result.fee = split.total_fee;
  return result;
}

RouteResult route_elephant(const Graph& g, const Transaction& tx,
                           NetworkState& state, const FeeSchedule& fees,
                           const ElephantConfig& config) {
  ElephantProbeResult probe_buf;
  SplitWorkspace split_ws;
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  return route_elephant(g, tx, state, fees, config, scratch, probe_buf,
                        split_ws);
}

}  // namespace flash

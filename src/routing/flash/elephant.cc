#include "routing/flash/elephant.h"

#include <algorithm>
#include <cassert>

#include "graph/bfs.h"
#include "ledger/htlc.h"

namespace flash {

namespace {
constexpr Amount kEps = 1e-9;
}

ElephantProbeResult elephant_find_paths(const Graph& g, NodeId s, NodeId t,
                                        Amount demand, std::size_t max_paths,
                                        NetworkState& state) {
  ElephantProbeResult result;
  if (s == t || demand <= 0) return result;

  // Residual capacity matrix C' (line 5): unknown edges are treated as
  // having capacity (= infinity) so BFS may explore them; probed edges use
  // their residual value.
  CapacityMap residual;  // only probed edges appear
  auto residual_admits = [&](EdgeId e) {
    const auto it = residual.find(e);
    return it == residual.end() || it->second > kEps;
  };

  while (result.paths.size() < max_paths) {
    // Line 7: BFS on G with residual filter.
    const Path p = bfs_path(g, s, t, residual_admits);
    if (p.empty()) break;  // line 8-9

    // Line 11: probe each channel on p. The probe returns the balances of
    // both directions of every channel on the path (the PROBE_ACK carries
    // the Capacity field both ways, §5.1 / Algorithm 1 lines 17-22).
    const std::vector<Amount> balances = state.probe_path(p);
    ++result.probes;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const EdgeId e = p[i];
      const EdgeId rev = g.reverse(e);
      if (!result.capacities.count(e)) {  // line 17: first time
        result.capacities[e] = balances[i];
        residual[e] = balances[i];
      }
      if (!result.capacities.count(rev)) {  // line 20
        const Amount rev_balance = state.balance(rev);
        result.capacities[rev] = rev_balance;
        residual[rev] = rev_balance;
      }
    }

    // Line 12: bottleneck over the *residual* capacities (fresh edges have
    // residual == probed balance; edges reused across paths keep their
    // reduced residual).
    Amount bottleneck = std::numeric_limits<Amount>::max();
    for (EdgeId e : p) bottleneck = std::min(bottleneck, residual[e]);
    bottleneck = std::max<Amount>(bottleneck, 0);

    result.paths.push_back(p);
    result.bottlenecks.push_back(bottleneck);

    if (bottleneck > kEps) {
      result.max_flow += bottleneck;  // line 13
      for (EdgeId e : p) {
        residual[e] -= bottleneck;               // line 23
        residual[g.reverse(e)] += bottleneck;    // line 24
      }
    }
    // Note: no early exit when f >= d. Algorithm 1 checks the demand only
    // after the loop (lines 25-28), i.e. it always gathers up to k paths.
    // The surplus capacity is what gives program (1) room to shift flow
    // onto cheap paths (the ~40 % fee saving of Fig. 9).
  }

  result.feasible = result.max_flow + kEps >= demand;
  return result;
}

RouteResult route_elephant(const Graph& g, const Transaction& tx,
                           NetworkState& state, const FeeSchedule& fees,
                           const ElephantConfig& config) {
  RouteResult result;
  result.elephant = true;
  if (tx.amount <= 0 || tx.sender == tx.receiver) return result;

  const std::uint64_t msgs_before = state.probe_messages();
  ElephantProbeResult probe = elephant_find_paths(
      g, tx.sender, tx.receiver, tx.amount, config.max_paths, state);
  result.probes = probe.probes;
  result.probe_messages = state.probe_messages() - msgs_before;
  if (!probe.feasible) return result;  // Algorithm 1 returns empty set

  // Path selection: program (1), or the discovery-order fill ablation.
  SplitResult split =
      config.optimize_fees
          ? optimize_fee_split(g, probe.paths, tx.amount, probe.capacities,
                               fees)
          : sequential_split(g, probe.paths, tx.amount, probe.capacities,
                             fees);
  if (!split.feasible && config.optimize_fees) {
    // LP numerically degenerate (rare): fall back to the sequential fill,
    // which is feasible whenever Algorithm 1 reported f >= d.
    split = sequential_split(g, probe.paths, tx.amount, probe.capacities,
                             fees);
  }
  if (!split.feasible) return result;

  // Net the split into per-edge amounts: opposite directions offset
  // (program (1) allows it, and committing the net flow is what the
  // channel balances experience after all partial payments settle).
  std::vector<Amount> net(g.num_edges(), 0);
  for (std::size_t i = 0; i < probe.paths.size(); ++i) {
    if (split.amounts[i] <= kEps) continue;
    ++result.paths_used;
    for (EdgeId e : probe.paths[i]) net[e] += split.amounts[i];
  }
  std::vector<EdgeAmount> flow;
  for (EdgeId e = 0; e < g.num_edges(); e += 2) {
    const EdgeId r = g.reverse(e);
    const Amount delta = net[e] - net[r];
    if (delta > kEps) {
      flow.emplace_back(e, delta);
    } else if (delta < -kEps) {
      flow.emplace_back(r, -delta);
    }
  }

  AtomicPayment payment(state);
  if (!payment.add_flow(flow, tx.amount)) {
    return result;  // balances changed since probing; atomic failure
  }
  payment.commit();
  result.success = true;
  result.delivered = tx.amount;
  result.fee = split.total_fee;
  return result;
}

}  // namespace flash

// SpeedyMurmurs baseline [Roos et al., NDSS'18]: embedding-based routing.
//
// Nodes are assigned coordinates from spanning trees rooted at a few
// landmarks (paper §4.1 uses 3); a payment is split into one share per
// landmark tree and each share is forwarded greedily to the neighbour
// whose coordinate is closest to the receiver's — consulting only *local*
// channel balances, never probing remote ones. That makes SpeedyMurmurs a
// static (probe-free) scheme: cheap, but blind to remote depletion, which
// is why its success volume trails dynamic schemes in Figs. 6-7.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "ledger/fee_policy.h"
#include "routing/router.h"
#include "util/rng.h"

namespace flash {

struct SpeedyMurmursConfig {
  /// Number of landmarks / spanning trees (paper: 3, as [29] suggests).
  std::size_t num_landmarks = 3;
  /// Timelock budget as a hop cap (0 = unlimited): a share whose greedy
  /// walk exceeds it fails the payment (embedding routing cannot shorten a
  /// walk on demand).
  std::size_t max_hops = 0;
};

class SpeedyMurmursRouter : public Router {
 public:
  SpeedyMurmursRouter(const Graph& graph, const FeeSchedule& fees,
                      SpeedyMurmursConfig config = {});

  RouteResult route(const Transaction& tx, NetworkState& state) override;
  std::string name() const override { return "SpeedyMurmurs"; }
  void on_topology_update() override { build_embeddings(); }

  /// Tree distance between two nodes in embedding `tree` (hops up to the
  /// lowest common ancestor and back down). Exposed for tests.
  std::uint32_t tree_distance(std::size_t tree, NodeId a, NodeId b) const;

  const std::vector<NodeId>& landmarks() const noexcept { return landmarks_; }

 private:
  const Graph* graph_;
  const FeeSchedule* fees_;
  SpeedyMurmursConfig config_;
  std::vector<NodeId> landmarks_;
  /// coords_[tree][node] = path of node ids from the landmark (inclusive)
  /// to the node; prefix comparison yields the tree distance.
  std::vector<std::vector<std::vector<NodeId>>> coords_;

  void build_embeddings();

  /// Greedy walk of one share through embedding `tree`; returns the path
  /// or an empty path when stuck (no closer neighbour with balance).
  Path greedy_route(std::size_t tree, NodeId s, NodeId t, Amount share,
                    const NetworkState& state) const;
};

}  // namespace flash

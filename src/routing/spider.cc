#include "routing/spider.h"

#include <algorithm>
#include <numeric>

#include "graph/edge_disjoint.h"
#include "ledger/htlc.h"

namespace flash {

// Path-set cache keyed by pair_key(s, t) from graph/types.h.

SpiderRouter::SpiderRouter(const Graph& graph, const FeeSchedule& fees,
                           SpiderConfig config)
    : graph_(&graph), fees_(&fees), config_(config) {}

const std::vector<Path>& SpiderRouter::paths_for(NodeId s, NodeId t) {
  const auto key = pair_key(s, t);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    std::vector<Path> paths;
    if (open_mask_) {
      LegacyScratchLease lease;
      edge_disjoint_core(*graph_, s, t, config_.num_paths, lease.get(), paths,
                         open_mask_);
    } else {
      paths = edge_disjoint_shortest_paths(*graph_, s, t, config_.num_paths);
    }
    if (config_.max_hops != 0) {
      std::erase_if(paths, [this](const Path& p) {
        return p.size() > config_.max_hops;
      });
    }
    it = cache_.emplace(key, std::move(paths)).first;
  }
  return it->second;
}

std::size_t SpiderRouter::apply_topology_delta(std::span<const EdgeId> closed,
                                               std::span<const EdgeId> reopened,
                                               bool strict) {
  (void)reopened;
  if (strict) {
    const std::size_t n = cache_.size();
    cache_.clear();
    return n;
  }
  if (closed.empty()) return 0;
  std::size_t dropped = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    bool dead = false;
    for (const Path& p : it->second) {
      for (const EdgeId e : p) {
        if (!open_mask_[e]) {
          dead = true;
          break;
        }
      }
      if (dead) break;
    }
    if (dead) {
      it = cache_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::vector<Amount> SpiderRouter::waterfill(const std::vector<Amount>& caps,
                                            Amount demand) {
  // Find the water level L such that sum_i max(0, caps[i] - L) = demand;
  // allocation_i = max(0, caps[i] - L). If total capacity < demand, take
  // everything (L = 0).
  std::vector<Amount> alloc(caps.size(), 0);
  const Amount total = std::accumulate(caps.begin(), caps.end(), Amount{0});
  if (demand <= 0 || caps.empty()) return alloc;
  if (total <= demand) {
    for (std::size_t i = 0; i < caps.size(); ++i) {
      alloc[i] = std::max<Amount>(0, caps[i]);
    }
    return alloc;
  }
  std::vector<Amount> sorted(caps);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  // Lower the level step by step over the sorted capacities.
  Amount level = sorted.front();
  Amount poured = 0;
  std::size_t active = 1;
  for (std::size_t i = 1; i <= sorted.size(); ++i) {
    const Amount next_level = (i < sorted.size()) ? sorted[i] : Amount{0};
    const Amount step = (level - next_level) * static_cast<Amount>(active);
    if (poured + step >= demand) {
      level -= (demand - poured) / static_cast<Amount>(active);
      poured = demand;
      break;
    }
    poured += step;
    level = next_level;
    ++active;
  }
  for (std::size_t i = 0; i < caps.size(); ++i) {
    alloc[i] = std::max<Amount>(0, caps[i] - level);
  }
  return alloc;
}

RouteResult SpiderRouter::route(const Transaction& tx, NetworkState& state) {
  RouteResult result;
  if (tx.amount <= 0 || tx.sender == tx.receiver) return result;
  const std::uint64_t probes_before = state.probe_messages();
  const std::vector<Path>& paths = paths_for(tx.sender, tx.receiver);
  if (paths.empty()) return result;

  // Probe every path on every payment: waterfilling needs instantaneous
  // available capacities.
  std::vector<Amount> caps(paths.size(), 0);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto balances = state.probe_path(paths[i]);
    caps[i] = *std::min_element(balances.begin(), balances.end());
    ++result.probes;
  }

  const std::vector<Amount> alloc = waterfill(caps, tx.amount);
  const Amount placed = std::accumulate(alloc.begin(), alloc.end(), Amount{0});
  result.probe_messages = state.probe_messages() - probes_before;
  if (placed + 1e-9 < tx.amount) return result;  // insufficient capacity

  AtomicPayment payment(state);
  Amount fee = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (alloc[i] <= 0) continue;
    if (!payment.add_part(paths[i], alloc[i])) {
      return result;  // capacity changed under us; atomic abort
    }
    fee += fees_->path_fee(paths[i], alloc[i]);
    ++result.paths_used;
  }
  payment.commit();
  result.success = true;
  result.delivered = tx.amount;
  result.fee = fee;
  return result;
}

}  // namespace flash

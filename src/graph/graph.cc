#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace flash {

NodeId Graph::add_node() {
  if (compacted_) throw std::logic_error("add_node on a compacted graph");
  csr_valid_ = false;
  out_.emplace_back();
  ++num_nodes_;
  return static_cast<NodeId>(out_.size() - 1);
}

EdgeId Graph::add_channel(NodeId u, NodeId v) {
  if (compacted_) throw std::logic_error("add_channel on a compacted graph");
  if (u == v) throw std::invalid_argument("self-channel not allowed");
  if (u >= num_nodes() || v >= num_nodes()) {
    throw std::out_of_range("add_channel: node id out of range");
  }
  csr_valid_ = false;
  const auto fwd = static_cast<EdgeId>(from_.size());
  from_.push_back(u);
  to_.push_back(v);
  from_.push_back(v);
  to_.push_back(u);
  out_[u].push_back(fwd);
  out_[v].push_back(fwd + 1);
  return fwd;
}

void Graph::reserve_channels(std::size_t channels) {
  from_.reserve(2 * channels);
  to_.reserve(2 * channels);
}

void Graph::compact() {
  if (!finalized()) throw std::logic_error("compact() requires finalize()");
  std::vector<std::vector<EdgeId>>().swap(out_);
  compacted_ = true;
}

void Graph::finalize() {
  if (csr_valid_) return;
  csr_off_.assign(num_nodes() + 1, 0);
  csr_edges_.resize(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    csr_off_[u + 1] =
        csr_off_[u] + static_cast<std::uint32_t>(out_[u].size());
  }
  for (NodeId u = 0; u < num_nodes(); ++u) {
    std::copy(out_[u].begin(), out_[u].end(),
              csr_edges_.begin() + csr_off_[u]);
  }
  csr_arcs_.resize(num_edges());
  for (std::size_t i = 0; i < csr_edges_.size(); ++i) {
    csr_arcs_[i] = Arc{csr_edges_[i], to_[csr_edges_[i]]};
  }
  csr_valid_ = true;
}

bool Graph::is_valid_path(const Path& path, NodeId s) const {
  NodeId cur = s;
  if (cur >= num_nodes()) return false;
  for (EdgeId e : path) {
    if (e >= num_edges()) return false;
    if (from_[e] != cur) return false;
    cur = to_[e];
  }
  return true;
}

std::vector<NodeId> Graph::path_nodes(const Path& path, NodeId s) const {
  assert(is_valid_path(path, s));
  std::vector<NodeId> nodes;
  nodes.reserve(path.size() + 1);
  nodes.push_back(s);
  for (EdgeId e : path) nodes.push_back(to_[e]);
  return nodes;
}

std::string Graph::format_path(const Path& path, NodeId s) const {
  std::string out = std::to_string(s);
  NodeId cur = s;
  for (EdgeId e : path) {
    cur = to_[e];
    out += " -> ";
    out += std::to_string(cur);
  }
  return out;
}

}  // namespace flash

#include "graph/edge_disjoint.h"

namespace flash {

std::vector<Path> edge_disjoint_shortest_paths(const Graph& g, NodeId s,
                                               NodeId t, std::size_t k) {
  std::vector<Path> paths;
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  edge_disjoint_core(g, s, t, k, scratch, paths);
  return paths;
}

}  // namespace flash

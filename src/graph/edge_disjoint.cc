#include "graph/edge_disjoint.h"

#include <vector>

#include "graph/bfs.h"

namespace flash {

std::vector<Path> edge_disjoint_shortest_paths(const Graph& g, NodeId s,
                                               NodeId t, std::size_t k) {
  std::vector<Path> paths;
  if (s == t) return paths;
  std::vector<char> used(g.num_edges(), 0);
  const EdgeFilter admit = [&](EdgeId e) { return !used[e]; };
  while (paths.size() < k) {
    Path p = bfs_path(g, s, t, admit);
    if (p.empty()) break;
    for (EdgeId e : p) used[e] = 1;
    paths.push_back(std::move(p));
  }
  return paths;
}

}  // namespace flash

#include "graph/dijkstra.h"

#include <algorithm>

namespace flash {

namespace {

template <typename WeightFn>
DijkstraResult run_legacy(const Graph& g, NodeId s, NodeId t,
                          WeightFn&& weight,
                          const std::vector<char>& banned_nodes) {
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  const bool use_bans = !banned_nodes.empty();
  if (use_bans) {
    scratch.node_ban.reset(g.num_nodes());
    scratch.edge_ban.reset(g.num_edges());
    // The caller's vector may be sized for a different (larger) graph;
    // marks beyond this graph's nodes are meaningless, so clamp.
    const std::size_t n = std::min(banned_nodes.size(), g.num_nodes());
    for (std::size_t v = 0; v < n; ++v) {
      if (banned_nodes[v]) scratch.node_ban.set(v, 1);
    }
  }
  DijkstraResult result;
  const DijkstraCoreResult core = dijkstra_core(
      g, s, t, scratch, std::forward<WeightFn>(weight), use_bans,
      result.path);
  result.distance = core.distance;
  result.found = core.found;
  return result;
}

}  // namespace

DijkstraResult dijkstra(const Graph& g, NodeId s, NodeId t,
                        const EdgeWeight& weight,
                        const std::vector<char>& banned_nodes) {
  if (weight) {
    return run_legacy(g, s, t, LegacyCallable<EdgeWeight>{&weight},
                      banned_nodes);
  }
  return run_legacy(g, s, t, UnitWeight{}, banned_nodes);
}

std::vector<double> dijkstra_distances(const Graph& g, NodeId src,
                                       const EdgeWeight& weight) {
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  if (weight) {
    dijkstra_distances_core(g, src, scratch, LegacyCallable<EdgeWeight>{&weight});
  } else {
    dijkstra_distances_core(g, src, scratch, UnitWeight{});
  }
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_nodes(), inf);
  for (std::size_t v = 0; v < dist.size(); ++v) {
    dist[v] = scratch.dist.get_or(v, inf);
  }
  return dist;
}

}  // namespace flash

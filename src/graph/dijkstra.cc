#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>

namespace flash {

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& o) const { return dist > o.dist; }
};

}  // namespace

DijkstraResult dijkstra(const Graph& g, NodeId s, NodeId t,
                        const EdgeWeight& weight,
                        const std::vector<char>& banned_nodes) {
  DijkstraResult result;
  if (!banned_nodes.empty() &&
      (banned_nodes[s] || (t != kInvalidNode && banned_nodes[t]))) {
    return result;
  }
  if (s == t) {
    result.found = true;
    result.distance = 0.0;
    return result;
  }
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_nodes(), inf);
  std::vector<EdgeId> parent(g.num_nodes(), kInvalidEdge);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[s] = 0.0;
  pq.push({0.0, s});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;  // stale entry
    if (u == t) break;
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.to(e);
      if (!banned_nodes.empty() && banned_nodes[v]) continue;
      const double w = weight ? weight(e) : 1.0;
      if (w == kEdgeBanned) continue;
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        parent[v] = e;
        pq.push({nd, v});
      }
    }
  }
  if (dist[t] == inf) return result;
  result.found = true;
  result.distance = dist[t];
  NodeId cur = t;
  while (cur != s) {
    const EdgeId e = parent[cur];
    result.path.push_back(e);
    cur = g.from(e);
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

std::vector<double> dijkstra_distances(const Graph& g, NodeId src,
                                       const EdgeWeight& weight) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_nodes(), inf);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.to(e);
      const double w = weight ? weight(e) : 1.0;
      if (w == kEdgeBanned) continue;
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  return dist;
}

}  // namespace flash

// Directed multigraph representing a payment-channel network topology.
//
// A payment channel between u and v is bidirectional (funds can flow either
// way, with independent balances per direction, see paper §3.1), so each
// channel is stored as a pair of directed edges that know each other as
// `reverse`. The graph holds topology only; balances live in
// ledger::NetworkState, mirroring the paper's premise that nodes know the
// topology but not the (dynamic) channel balances.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"

namespace flash {

class Graph {
 public:
  Graph() = default;

  /// Creates a graph with n isolated nodes.
  explicit Graph(std::size_t n) : out_(n), num_nodes_(n) {}

  /// Appends a new node, returning its id.
  NodeId add_node();

  /// Adds a bidirectional payment channel between u and v.
  ///
  /// Returns the id of the directed edge u->v; the paired edge v->u is
  /// always `reverse(returned_id)`. Parallel channels are allowed.
  /// Precondition: u != v and both are valid node ids.
  EdgeId add_channel(NodeId u, NodeId v);

  std::size_t num_nodes() const noexcept { return num_nodes_; }

  /// Number of *directed* edges (= 2 x number of channels).
  std::size_t num_edges() const noexcept { return from_.size(); }

  std::size_t num_channels() const noexcept { return from_.size() / 2; }

  /// Builds the CSR (flat offsets + edge array) adjacency so out_edges()
  /// iterates contiguous memory instead of chasing per-node vectors.
  /// Idempotent; invalidated by add_node()/add_channel() (out_edges then
  /// falls back to the per-node vectors until finalize() runs again). The
  /// topology generators and loaders finalize before returning, so query
  /// code normally never sees the fallback. Per-node edge order is
  /// preserved exactly, so finalizing never changes any algorithm result.
  /// NOT thread-safe: finalize before sharing the graph across threads.
  void finalize();

  /// True when the CSR adjacency is current.
  bool finalized() const noexcept { return csr_valid_; }

  /// Pre-sizes the edge arrays for `channels` channels (2x directed edges),
  /// so building large (10k-100k node) topologies does not pay repeated
  /// geometric regrowth of four multi-megabyte vectors.
  void reserve_channels(std::size_t channels);

  /// Releases the per-node adjacency vectors, keeping only the CSR arrays:
  /// the construction-time representation costs ~heap-header + capacity
  /// slack per node, which at 100k nodes is several MB of pure overhead on
  /// top of the CSR mirror. Precondition: finalized(). The graph becomes
  /// immutable — add_node()/add_channel() throw std::logic_error after
  /// compaction. Queries (out_edges/out_arcs/out_degree) are unaffected:
  /// they already read the CSR arrays on a finalized graph.
  void compact();

  /// True once compact() ran (the graph is frozen).
  bool compacted() const noexcept { return compacted_; }

  NodeId from(EdgeId e) const { return from_[e]; }
  NodeId to(EdgeId e) const { return to_[e]; }

  /// The directed edge in the opposite direction of the same channel.
  EdgeId reverse(EdgeId e) const noexcept { return e ^ 1u; }

  /// Channel index of a directed edge (both directions map to the same).
  std::size_t channel_of(EdgeId e) const noexcept { return e >> 1; }

  /// Directed edge ids of channel c: (forward, backward).
  EdgeId channel_forward_edge(std::size_t c) const {
    return static_cast<EdgeId>(c << 1);
  }

  /// Outgoing directed edges of a node.
  std::span<const EdgeId> out_edges(NodeId u) const {
    if (csr_valid_) {
      return {csr_edges_.data() + csr_off_[u], csr_off_[u + 1] - csr_off_[u]};
    }
    return out_[u];
  }

  /// An outgoing edge together with its head node, packed so traversal
  /// loops read one sequential stream instead of chasing to(e) through a
  /// second array.
  struct Arc {
    EdgeId edge;
    NodeId head;  // == to(edge)
  };

  /// Outgoing arcs of a node, in the same order as out_edges().
  /// Precondition: finalized() — the search cores check once per query and
  /// fall back to out_edges()/to() on non-finalized graphs.
  std::span<const Arc> out_arcs(NodeId u) const {
    return {csr_arcs_.data() + csr_off_[u], csr_off_[u + 1] - csr_off_[u]};
  }

  std::size_t out_degree(NodeId u) const {
    // Same value either way; the CSR difference also works after compact().
    return csr_valid_ ? csr_off_[u + 1] - csr_off_[u] : out_[u].size();
  }

  /// True if a directed path's endpoints/adjacency are consistent with this
  /// graph and it starts at s. Used for validation in tests and debug builds.
  bool is_valid_path(const Path& path, NodeId s) const;

  /// Node sequence visited by `path` starting at s (s included).
  std::vector<NodeId> path_nodes(const Path& path, NodeId s) const;

  /// Human-readable "s -> a -> b -> t" rendering of a path.
  std::string format_path(const Path& path, NodeId s) const;

 private:
  // Memory layout (audited for 100k-node / ~2.9M-directed-edge graphs):
  // from_/to_ are 4 bytes per directed edge each, csr_off_ 4 bytes per
  // node, csr_edges_ 4 and csr_arcs_ 8 per directed edge — ~58 MB total at
  // the 100k-node Lightning density, all flat arrays. out_ is the only
  // pointer-chasing structure (construction convenience) and is released
  // by compact() on graphs that are done growing.
  std::vector<NodeId> from_;
  std::vector<NodeId> to_;
  std::vector<std::vector<EdgeId>> out_;
  std::size_t num_nodes_ = 0;  // survives compact() releasing out_
  // CSR adjacency mirror of out_: csr_off_[u]..csr_off_[u+1] indexes the
  // outgoing edges of u inside csr_edges_ (same per-node order as out_).
  // csr_arcs_ is the same sequence with the head node packed alongside.
  std::vector<std::uint32_t> csr_off_;
  std::vector<EdgeId> csr_edges_;
  std::vector<Arc> csr_arcs_;
  bool csr_valid_ = false;
  bool compacted_ = false;
};

}  // namespace flash

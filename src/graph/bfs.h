// Breadth-first search primitives.
//
// BFS over admissible edges is the path-discovery core of the paper's
// Algorithm 1 ("Breath-First-Search(G, C', s, t)"): Flash repeatedly finds a
// fewest-hops path whose residual capacity is non-zero.
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace flash {

/// Predicate deciding whether a directed edge may be traversed.
using EdgeFilter = std::function<bool(EdgeId)>;

/// Fewest-hops path from s to t using only edges accepted by `admit`
/// (all edges if `admit` is empty). Returns an empty path if t is
/// unreachable (note: s == t also yields an empty path, which is a valid
/// zero-length path in that case).
Path bfs_path(const Graph& g, NodeId s, NodeId t, const EdgeFilter& admit = {});

/// Hop distance from src to every node (kUnreachable if not reachable).
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src,
                                         const EdgeFilter& admit = {});

/// BFS spanning tree rooted at src: parent edge of each node
/// (kInvalidEdge for src and unreachable nodes). The parent edge of v is the
/// directed edge parent(v) -> v used when v was first discovered.
std::vector<EdgeId> bfs_tree(const Graph& g, NodeId src,
                             const EdgeFilter& admit = {});

/// True if t is reachable from s over admissible edges.
bool reachable(const Graph& g, NodeId s, NodeId t, const EdgeFilter& admit = {});

}  // namespace flash

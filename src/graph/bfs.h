// Breadth-first search primitives.
//
// BFS over admissible edges is the path-discovery core of the paper's
// Algorithm 1 ("Breath-First-Search(G, C', s, t)"): Flash repeatedly finds a
// fewest-hops path whose residual capacity is non-zero.
//
// Layered like dijkstra.h: templated allocation-free *_core functions run
// in a caller-provided GraphScratch; the original std::function API remains
// as thin wrappers over a thread-local scratch.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/scratch.h"
#include "graph/types.h"

namespace flash {

/// Predicate deciding whether a directed edge may be traversed.
using EdgeFilter = std::function<bool(EdgeId)>;

/// Admit-everything filter — the default when no filter is given.
struct AdmitAll {
  bool operator()(EdgeId) const { return true; }
};

/// Core BFS from src over edges accepted by `admit`, recording the
/// discovering edge of each reached node in scratch.parent (src itself is
/// stamped with kInvalidEdge; scratch.parent.contains(v) == "v reached").
/// Stops early once `stop_at` is discovered (kInvalidNode explores the full
/// reachable set). Hop counts land in scratch.hops only when kRecordHops is
/// set — path queries skip that store in the hottest loop (elephant
/// probing). No-op for out-of-range src.
template <bool kRecordHops = false, typename FilterFn>
void bfs_core(const Graph& g, NodeId src, NodeId stop_at,
              GraphScratch& scratch, FilterFn&& admit) {
  const std::size_t n = g.num_nodes();
  scratch.parent.reset(n);
  if constexpr (kRecordHops) scratch.hops.reset(n);
  if (src >= n) return;
  auto& queue = scratch.bfs_queue;
  scratch.parent.set(src, kInvalidEdge);
  if constexpr (kRecordHops) scratch.hops.set(src, 0);
  if (g.finalized()) {
    // Packed-arc fast path: identical traversal order, but (a) the head
    // node rides in the same sequential stream as the edge id (no random
    // to(e) load per visited edge), and (b) the stamped arrays and the
    // queue are driven through raw-pointer views so the epoch, array
    // bases and queue cursor live in registers across the whole search
    // (this loop is the probing hot path of Algorithm 1). Every node is
    // enqueued at most once, so sizing the buffer to num_nodes once (it
    // never shrinks) lets the queue be a plain cursor-driven array —
    // entries beyond `tail` are stale garbage from earlier queries, which
    // is fine for scratch-internal working state.
    if (queue.size() < n) queue.resize(n);
    NodeId* const q = queue.data();
    std::size_t tail = 0;
    const auto parent = scratch.parent.view();
    q[tail++] = src;
    for (std::size_t head = 0; head < tail; ++head) {
      const NodeId u = q[head];
      for (const Graph::Arc a : g.out_arcs(u)) {
        const NodeId v = a.head;
        if (parent.contains(v)) continue;
        if (!admit(a.edge)) continue;
        parent.set(v, a.edge);
        if constexpr (kRecordHops) {
          scratch.hops.set(v, scratch.hops.get(u) + 1);
        }
        if (v == stop_at) return;
        q[tail++] = v;
      }
    }
    return;
  }
  queue.clear();
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.to(e);
      if (scratch.parent.contains(v)) continue;
      if (!admit(e)) continue;
      scratch.parent.set(v, e);
      if constexpr (kRecordHops) {
        scratch.hops.set(v, scratch.hops.get(u) + 1);
      }
      if (v == stop_at) return;
      queue.push_back(v);
    }
  }
}

/// Core fewest-hops path: appends the s->t edge sequence found by bfs_core
/// to `path_out` (cleared by the caller if a fresh path is wanted). Returns
/// true when t was reached (s == t counts: valid zero-length path).
template <typename FilterFn>
bool bfs_path_core(const Graph& g, NodeId s, NodeId t, GraphScratch& scratch,
                   FilterFn&& admit, Path& path_out) {
  if (s >= g.num_nodes() || t >= g.num_nodes()) return false;
  if (s == t) return true;
  bfs_core(g, s, t, scratch, std::forward<FilterFn>(admit));
  if (!scratch.parent.contains(t)) return false;
  const std::size_t first = path_out.size();
  NodeId cur = t;
  while (cur != s) {
    const EdgeId e = scratch.parent.get(cur);
    path_out.push_back(e);
    cur = g.from(e);
  }
  std::reverse(path_out.begin() + static_cast<long>(first), path_out.end());
  return true;
}

/// Fewest-hops path from s to t using only edges accepted by `admit`
/// (all edges if `admit` is empty). Returns an empty path if t is
/// unreachable (note: s == t also yields an empty path, which is a valid
/// zero-length path in that case).
Path bfs_path(const Graph& g, NodeId s, NodeId t, const EdgeFilter& admit = {});

/// Hop distance from src to every node (kUnreachable if not reachable).
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src,
                                         const EdgeFilter& admit = {});

/// BFS spanning tree rooted at src: parent edge of each node
/// (kInvalidEdge for src and unreachable nodes). The parent edge of v is the
/// directed edge parent(v) -> v used when v was first discovered.
std::vector<EdgeId> bfs_tree(const Graph& g, NodeId src,
                             const EdgeFilter& admit = {});

/// True if t is reachable from s over admissible edges.
bool reachable(const Graph& g, NodeId s, NodeId t, const EdgeFilter& admit = {});

}  // namespace flash

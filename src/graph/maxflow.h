// Classical Edmonds-Karp max-flow on known capacities.
//
// The paper's Algorithm 1 is a *probing* variant of Edmonds-Karp that only
// learns capacities lazily; this module implements the classical algorithm
// with full capacity knowledge. It serves as (a) the ground-truth oracle the
// tests compare Algorithm 1 against, and (b) the omniscient upper bound in
// ablation benchmarks.
#pragma once

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"
#include "graph/scratch.h"
#include "graph/types.h"

namespace flash {

/// Capacity of a directed edge (>= 0).
using EdgeCapacity = std::function<Amount(EdgeId)>;

struct MaxFlowResult {
  Amount value = 0;                 // total s->t flow
  std::vector<Amount> edge_flow;    // net flow per directed edge (may be 0)
  std::vector<Path> paths;          // augmenting paths in discovery order
  std::vector<Amount> path_amounts; // bottleneck pushed along each path
};

/// Core Edmonds-Karp running in `scratch`, reusing `result`'s buffers
/// (allocation-free once both are warm). Residuals live in
/// scratch.amount_buf; the per-iteration BFS runs on the scratch queue and
/// epoch-stamped parent marks. Semantics identical to edmonds_karp below.
template <typename CapacityFn>
void edmonds_karp_core(const Graph& g, NodeId s, NodeId t,
                       CapacityFn&& capacity, Amount limit,
                       std::size_t max_paths, GraphScratch& scratch,
                       MaxFlowResult& result) {
  result.value = 0;
  result.edge_flow.assign(g.num_edges(), 0);
  result.path_amounts.clear();
  std::size_t num_paths = 0;
  auto finish = [&] { result.paths.resize(num_paths); };
  if (s == t || s >= g.num_nodes() || t >= g.num_nodes()) {
    finish();
    return;
  }

  // Residual capacity of edge e = capacity(e) - flow(e) + flow(reverse(e)):
  // pushing flow on the reverse direction frees capacity here. We track
  // residuals directly for O(1) updates.
  auto& residual = scratch.amount_buf;
  residual.resize(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) residual[e] = capacity(e);

  constexpr Amount kEps = 1e-12;
  Path& path = scratch.pool.alloc();
  while (max_paths == 0 || num_paths < max_paths) {
    if (limit >= 0 && result.value >= limit) break;
    // BFS over edges with positive residual.
    bfs_core(g, s, t, scratch,
             [&residual](EdgeId e) { return residual[e] > kEps; });
    if (!scratch.parent.contains(t)) break;

    // Extract the augmenting path and its bottleneck.
    path.clear();
    Amount bottleneck = std::numeric_limits<Amount>::max();
    for (NodeId cur = t; cur != s; cur = g.from(scratch.parent.get(cur))) {
      const EdgeId e = scratch.parent.get(cur);
      path.push_back(e);
      bottleneck = std::min(bottleneck, residual[e]);
    }
    std::reverse(path.begin(), path.end());
    if (limit >= 0) bottleneck = std::min(bottleneck, limit - result.value);
    assert(bottleneck > 0);

    for (EdgeId e : path) {
      residual[e] -= bottleneck;
      residual[g.reverse(e)] += bottleneck;
      result.edge_flow[e] += bottleneck;
    }
    result.value += bottleneck;
    assign_path_slot(result.paths, num_paths++, path);
    result.path_amounts.push_back(bottleneck);
  }
  scratch.pool.pop();

  // Report net flow per edge (cancel opposite directions).
  for (EdgeId e = 0; e < g.num_edges(); e += 2) {
    const EdgeId r = g.reverse(e);
    const Amount net = result.edge_flow[e] - result.edge_flow[r];
    result.edge_flow[e] = std::max<Amount>(net, 0);
    result.edge_flow[r] = std::max<Amount>(-net, 0);
  }
  finish();
}

/// Edmonds-Karp max flow from s to t.
///
/// `limit` optionally stops the search once the flow reaches `limit`
/// (useful when only "is there a flow of at least d" matters, as in
/// elephant routing feasibility checks). Pass a negative limit for the
/// full max flow. `max_paths` caps the number of augmenting iterations
/// (0 = unlimited), which yields the k-iteration variant the paper builds
/// Algorithm 1 from.
MaxFlowResult edmonds_karp(const Graph& g, NodeId s, NodeId t,
                           const EdgeCapacity& capacity, Amount limit = -1,
                           std::size_t max_paths = 0);

}  // namespace flash

// Classical Edmonds-Karp max-flow on known capacities.
//
// The paper's Algorithm 1 is a *probing* variant of Edmonds-Karp that only
// learns capacities lazily; this module implements the classical algorithm
// with full capacity knowledge. It serves as (a) the ground-truth oracle the
// tests compare Algorithm 1 against, and (b) the omniscient upper bound in
// ablation benchmarks.
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace flash {

/// Capacity of a directed edge (>= 0).
using EdgeCapacity = std::function<Amount(EdgeId)>;

struct MaxFlowResult {
  Amount value = 0;                 // total s->t flow
  std::vector<Amount> edge_flow;    // net flow per directed edge (may be 0)
  std::vector<Path> paths;          // augmenting paths in discovery order
  std::vector<Amount> path_amounts; // bottleneck pushed along each path
};

/// Edmonds-Karp max flow from s to t.
///
/// `limit` optionally stops the search once the flow reaches `limit`
/// (useful when only "is there a flow of at least d" matters, as in
/// elephant routing feasibility checks). Pass a negative limit for the
/// full max flow. `max_paths` caps the number of augmenting iterations
/// (0 = unlimited), which yields the k-iteration variant the paper builds
/// Algorithm 1 from.
MaxFlowResult edmonds_karp(const Graph& g, NodeId s, NodeId t,
                           const EdgeCapacity& capacity, Amount limit = -1,
                           std::size_t max_paths = 0);

}  // namespace flash

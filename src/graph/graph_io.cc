#include "graph/graph_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace flash {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "# flash edge list: one channel per line (u,v)\n";
  os << "nodes," << g.num_nodes() << "\n";
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    const EdgeId e = g.channel_forward_edge(c);
    os << g.from(e) << ',' << g.to(e) << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  std::vector<std::pair<NodeId, NodeId>> channels;
  std::size_t declared_nodes = 0;
  NodeId max_id = 0;
  bool any = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const auto fields = split(sv, ',');
    if (fields.size() == 2 && trim(fields[0]) == "nodes") {
      const auto n = parse_uint(fields[1]);
      if (!n) {
        throw std::runtime_error("edge list line " + std::to_string(lineno) +
                                 ": bad node count");
      }
      declared_nodes = *n;
      continue;
    }
    if (fields.size() < 2) {
      throw std::runtime_error("edge list line " + std::to_string(lineno) +
                               ": expected u,v");
    }
    const auto u = parse_uint(fields[0]);
    const auto v = parse_uint(fields[1]);
    if (!u || !v) {
      throw std::runtime_error("edge list line " + std::to_string(lineno) +
                               ": bad node id");
    }
    const auto un = static_cast<NodeId>(*u);
    const auto vn = static_cast<NodeId>(*v);
    channels.emplace_back(un, vn);
    max_id = std::max({max_id, un, vn});
    any = true;
  }
  const std::size_t n =
      std::max(declared_nodes, any ? static_cast<std::size_t>(max_id) + 1
                                   : declared_nodes);
  Graph g(n);
  for (auto [u, v] : channels) g.add_channel(u, v);
  g.finalize();
  return g;
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_edge_list(os, g);
  if (!os) throw std::runtime_error("write failed: " + path);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_edge_list(is);
}

}  // namespace flash

#include "graph/graph_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "util/strings.h"

namespace flash {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "# flash edge list: one channel per line (u,v)\n";
  os << "nodes," << g.num_nodes() << "\n";
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    const EdgeId e = g.channel_forward_edge(c);
    os << g.from(e) << ',' << g.to(e) << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  std::vector<std::pair<NodeId, NodeId>> channels;
  std::size_t declared_nodes = 0;
  NodeId max_id = 0;
  bool any = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const auto fields = split(sv, ',');
    if (fields.size() == 2 && trim(fields[0]) == "nodes") {
      const auto n = parse_uint(fields[1]);
      if (!n) {
        throw std::runtime_error("edge list line " + std::to_string(lineno) +
                                 ": bad node count");
      }
      declared_nodes = *n;
      continue;
    }
    if (fields.size() < 2) {
      throw std::runtime_error("edge list line " + std::to_string(lineno) +
                               ": expected u,v");
    }
    const auto u = parse_uint(fields[0]);
    const auto v = parse_uint(fields[1]);
    if (!u || !v) {
      throw std::runtime_error("edge list line " + std::to_string(lineno) +
                               ": bad node id");
    }
    const auto un = static_cast<NodeId>(*u);
    const auto vn = static_cast<NodeId>(*v);
    channels.emplace_back(un, vn);
    max_id = std::max({max_id, un, vn});
    any = true;
  }
  const std::size_t n =
      std::max(declared_nodes, any ? static_cast<std::size_t>(max_id) + 1
                                   : declared_nodes);
  Graph g(n);
  for (auto [u, v] : channels) g.add_channel(u, v);
  g.finalize();
  return g;
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_edge_list(os, g);
  if (!os) throw std::runtime_error("write failed: " + path);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_edge_list(is);
}

Graph LightningSnapshot::to_graph() const {
  Graph g(num_nodes);
  g.reserve_channels(channels.size());
  for (const auto& ch : channels) g.add_channel(ch.u, ch.v);
  g.finalize();
  return g;
}

void write_lightning_snapshot(std::ostream& os, const LightningSnapshot& s) {
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "# flash lightning snapshot\n";
  os << "# channel,u,v,bal_uv,bal_vu,base_uv,rate_uv,base_vu,rate_vu\n";
  os << "nodes," << s.num_nodes << "\n";
  for (const auto& ch : s.channels) {
    os << "channel," << ch.u << ',' << ch.v << ',' << ch.balance_uv << ','
       << ch.balance_vu << ',' << ch.base_uv << ',' << ch.rate_uv << ','
       << ch.base_vu << ',' << ch.rate_vu << '\n';
  }
  os.precision(old_precision);
}

namespace {

[[noreturn]] void snapshot_fail(std::size_t lineno, const std::string& what) {
  throw std::runtime_error("snapshot line " + std::to_string(lineno) + ": " +
                           what);
}

// Parses one non-negative finite money/rate field; rejects overflow, NaN,
// infinities, and negatives so a corrupt snapshot cannot mint capacity.
double parse_amount_field(std::string_view field, std::size_t lineno,
                         const char* name) {
  const auto x = parse_double(trim(field));
  if (!x || !std::isfinite(*x)) {
    snapshot_fail(lineno, std::string(name) + " overflows or is not a number");
  }
  if (*x < 0) snapshot_fail(lineno, std::string(name) + " is negative");
  return *x;
}

}  // namespace

LightningSnapshot read_lightning_snapshot(std::istream& is) {
  LightningSnapshot snap;
  std::unordered_set<std::uint64_t> seen;
  bool nodes_declared = false;
  NodeId max_id = 0;
  bool any = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    const auto fields = split(sv, ',');
    if (trim(fields[0]) == "nodes") {
      if (fields.size() != 2) snapshot_fail(lineno, "expected nodes,<n>");
      const auto n = parse_uint(trim(fields[1]));
      if (!n) snapshot_fail(lineno, "bad node count");
      snap.num_nodes = *n;
      nodes_declared = true;
      continue;
    }
    if (trim(fields[0]) != "channel") {
      snapshot_fail(lineno, "unknown record type (want nodes or channel)");
    }
    if (fields.size() != 9) {
      snapshot_fail(lineno,
                    "expected channel,u,v,bal_uv,bal_vu,base_uv,rate_uv,"
                    "base_vu,rate_vu");
    }
    const auto u = parse_uint(trim(fields[1]));
    const auto v = parse_uint(trim(fields[2]));
    if (!u || !v || *u > kInvalidNode - 1 || *v > kInvalidNode - 1) {
      snapshot_fail(lineno, "bad node id");
    }
    SnapshotChannel ch;
    ch.u = static_cast<NodeId>(*u);
    ch.v = static_cast<NodeId>(*v);
    if (ch.u == ch.v) snapshot_fail(lineno, "self channel");
    if (nodes_declared && (ch.u >= snap.num_nodes || ch.v >= snap.num_nodes)) {
      snapshot_fail(lineno, "node id exceeds declared node count");
    }
    const auto key = pair_key(std::min(ch.u, ch.v), std::max(ch.u, ch.v));
    if (!seen.insert(key).second) snapshot_fail(lineno, "duplicate channel");
    ch.balance_uv = parse_amount_field(fields[3], lineno, "bal_uv");
    ch.balance_vu = parse_amount_field(fields[4], lineno, "bal_vu");
    ch.base_uv = parse_amount_field(fields[5], lineno, "base_uv");
    ch.rate_uv = parse_amount_field(fields[6], lineno, "rate_uv");
    ch.base_vu = parse_amount_field(fields[7], lineno, "base_vu");
    ch.rate_vu = parse_amount_field(fields[8], lineno, "rate_vu");
    snap.channels.push_back(ch);
    max_id = std::max({max_id, ch.u, ch.v});
    any = true;
  }
  if (!nodes_declared && any) {
    snap.num_nodes = static_cast<std::size_t>(max_id) + 1;
  }
  return snap;
}

void save_lightning_snapshot(const std::string& path,
                             const LightningSnapshot& s) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_lightning_snapshot(os, s);
  if (!os) throw std::runtime_error("write failed: " + path);
}

LightningSnapshot load_lightning_snapshot(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_lightning_snapshot(is);
}

}  // namespace flash

// Weighted shortest path (Dijkstra) with pluggable edge weights.
//
// Used by Yen's k-shortest-paths and by routers that weight hops by fees.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace flash {

/// Non-negative weight of a directed edge. Return `kEdgeBanned` to exclude
/// an edge entirely.
using EdgeWeight = std::function<double(EdgeId)>;

inline constexpr double kEdgeBanned = std::numeric_limits<double>::infinity();

/// Result of a single-pair shortest path query.
struct DijkstraResult {
  Path path;          // empty when t unreachable (or s == t)
  double distance =   // +inf when unreachable; 0 when s == t
      std::numeric_limits<double>::infinity();
  bool found = false;
};

/// Shortest s->t path under `weight` (unit weights if empty).
/// Additional `banned_nodes[v] != 0` excludes v from interior use
/// (needed by Yen's spur computation); may be empty.
DijkstraResult dijkstra(const Graph& g, NodeId s, NodeId t,
                        const EdgeWeight& weight = {},
                        const std::vector<char>& banned_nodes = {});

/// Distances from src to all nodes (no target, no bans).
std::vector<double> dijkstra_distances(const Graph& g, NodeId src,
                                       const EdgeWeight& weight = {});

}  // namespace flash

// Weighted shortest path (Dijkstra) with pluggable edge weights.
//
// Used by Yen's k-shortest-paths and by routers that weight hops by fees.
// Two layers:
//  - dijkstra_core / dijkstra_distances_core: templated, allocation-free
//    hot path running in a caller-provided GraphScratch. Edge weights and
//    bans are compile-time callables, so the inner loop has no
//    std::function dispatch.
//  - dijkstra / dijkstra_distances: the original std::function API, kept as
//    thin wrappers over a thread-local scratch so no caller breaks.
#pragma once

#include <functional>
#include <limits>
#include <type_traits>
#include <vector>

#include "graph/graph.h"
#include "graph/scratch.h"
#include "graph/types.h"

namespace flash {

/// Non-negative weight of a directed edge. Return `kEdgeBanned` to exclude
/// an edge entirely.
using EdgeWeight = std::function<double(EdgeId)>;

inline constexpr double kEdgeBanned = std::numeric_limits<double>::infinity();

/// Unit edge weight (hop counting) — the default when no weight is given.
struct UnitWeight {
  double operator()(EdgeId) const { return 1.0; }
};

/// Result of a single-pair shortest path query.
struct DijkstraResult {
  Path path;          // empty when t unreachable (or s == t)
  double distance =   // +inf when unreachable; 0 when s == t
      std::numeric_limits<double>::infinity();
  bool found = false;
};

/// Core result without the path (the path is appended to a caller buffer).
struct DijkstraCoreResult {
  double distance = std::numeric_limits<double>::infinity();
  bool found = false;
};

/// Core Dijkstra: shortest s->t path under `weight`, running entirely in
/// `scratch` (allocation-free once the scratch is warm).
///
/// When `use_bans` is true, nodes marked in scratch.node_ban and edges
/// marked in scratch.edge_ban are excluded; the marks are set by the caller
/// before the call and survive it (they live on their own epochs), which is
/// what Yen's spur loop needs. On success the s->t edge sequence is
/// *appended* to `path_out` (existing content, e.g. Yen's root prefix, is
/// kept). Out-of-range or invalid s/t yields found == false.
///
/// Passing t == kInvalidNode switches to all-targets mode: the full
/// reachable set is settled (no early exit, no path reconstruction, found
/// stays false) and the distances/shortest-path tree remain in
/// scratch.dist/scratch.parent — see dijkstra_distances_core.
///
/// `cutoff` (default +inf) abandons the search once the tentative
/// frontier exceeds it: t is then reported unreachable unless
/// dist(t) <= cutoff. Settle order up to the cutoff is identical to the
/// unbounded search, so any path found is bit-identical to the unbounded
/// one — callers may prune with it whenever they would discard costlier
/// results anyway (Yen's candidate bound).
template <typename WeightFn>
DijkstraCoreResult dijkstra_core(
    const Graph& g, NodeId s, NodeId t, GraphScratch& scratch,
    WeightFn&& weight, bool use_bans, Path& path_out,
    double cutoff = std::numeric_limits<double>::infinity()) {
  DijkstraCoreResult result;
  const std::size_t n = g.num_nodes();
  const bool all_targets = t == kInvalidNode;
  // Reset before the early returns (like bfs_core) so scratch.dist/parent
  // never hold a previous query's state after this call.
  scratch.dist.reset(n);
  scratch.parent.reset(n);
  if (s >= n || (!all_targets && t >= n)) return result;
  if (use_bans && (scratch.node_ban.get_or(s, 0) ||
                   (!all_targets && scratch.node_ban.get_or(t, 0)))) {
    return result;
  }
  if (!all_targets && s == t) {
    result.found = true;
    result.distance = 0.0;
    return result;
  }
  const double inf = std::numeric_limits<double>::infinity();
  auto& heap = scratch.heap;
  heap.clear();
  scratch.dist.set(s, 0.0);
  heap.push_back({0.0, s});  // no push_heap needed for a single element
  // Raw views (see StampedArray::View): epochs and array bases stay in
  // registers across the whole search. The ban views are only indexed
  // when use_bans is set, in which case the caller (Yen / edge-disjoint)
  // has reset both ban arrays to this graph's size.
  const auto dist = scratch.dist.view();
  const auto parent = scratch.parent.view();
  const auto nban = scratch.node_ban.view();
  const auto eban = scratch.edge_ban.view();
  const bool finalized = g.finalized();
  // The search loop, stamped out once per ban mode so the per-edge ban
  // checks vanish entirely from the no-bans instantiation (the branch
  // would otherwise run for every relaxed edge).
  auto search = [&](auto bans) {
    while (!heap.empty()) {
      const auto [d, u] = heap.front();
      std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
      heap.pop_back();
      if (d > cutoff) break;  // everything still queued costs > cutoff
      if (d > dist.get_or(u, inf)) continue;  // stale entry
      if (u == t) break;  // never taken in all-targets mode
      auto relax = [&](EdgeId e, NodeId v) {
        if constexpr (bans.value) {
          if (nban.get_or(v, 0)) return;
          if (eban.get_or(e, 0)) return;
        }
        const double w = weight(e);
        if (w == kEdgeBanned) return;
        const double nd = d + w;
        if (nd < dist.get_or(v, inf)) {
          dist.set(v, nd);
          parent.set(v, e);
          heap.push_back({nd, v});
          std::push_heap(heap.begin(), heap.end(), std::greater<>{});
        }
      };
      if (finalized) {
        // Packed-arc loop: head node in the same sequential stream as the
        // edge id (see Graph::out_arcs); relaxation order is identical.
        for (const Graph::Arc a : g.out_arcs(u)) relax(a.edge, a.head);
      } else {
        for (EdgeId e : g.out_edges(u)) relax(e, g.to(e));
      }
    }
  };
  if (use_bans) {
    search(std::true_type{});
  } else {
    search(std::false_type{});
  }
  if (all_targets || !scratch.dist.contains(t)) return result;
  // Under a finite cutoff the loop can stop with t carrying a tentative
  // (unsettled, possibly non-optimal) label > cutoff; only a settled t —
  // which always has dist <= cutoff, else the u == t break could not have
  // run — counts as found.
  if (scratch.dist.get(t) > cutoff) return result;
  result.found = true;
  result.distance = scratch.dist.get(t);
  const std::size_t first = path_out.size();
  NodeId cur = t;
  while (cur != s) {
    const EdgeId e = scratch.parent.get(cur);
    path_out.push_back(e);
    cur = g.from(e);
  }
  std::reverse(path_out.begin() + static_cast<long>(first), path_out.end());
  return result;
}

/// Core all-targets Dijkstra: distances from src land in scratch.dist
/// (scratch.dist.get_or(v, inf) after the call; scratch.parent holds the
/// shortest-path tree). Out-of-range src leaves everything unreachable.
template <typename WeightFn>
void dijkstra_distances_core(const Graph& g, NodeId src, GraphScratch& scratch,
                             WeightFn&& weight) {
  Path unused;  // never written in all-targets mode
  dijkstra_core(g, src, kInvalidNode, scratch,
                std::forward<WeightFn>(weight), /*use_bans=*/false, unused);
}

/// Shortest s->t path under `weight` (unit weights if empty).
/// Additional `banned_nodes[v] != 0` excludes v from interior use
/// (needed by Yen's spur computation); may be empty.
DijkstraResult dijkstra(const Graph& g, NodeId s, NodeId t,
                        const EdgeWeight& weight = {},
                        const std::vector<char>& banned_nodes = {});

/// Distances from src to all nodes (no target, no bans).
std::vector<double> dijkstra_distances(const Graph& g, NodeId src,
                                       const EdgeWeight& weight = {});

}  // namespace flash

// Weighted shortest path (Dijkstra) with pluggable edge weights.
//
// Used by Yen's k-shortest-paths and by routers that weight hops by fees.
// Two layers:
//  - dijkstra_core / dijkstra_distances_core: templated, allocation-free
//    hot path running in a caller-provided GraphScratch. Edge weights and
//    bans are compile-time callables, so the inner loop has no
//    std::function dispatch.
//  - dijkstra / dijkstra_distances: the original std::function API, kept as
//    thin wrappers over a thread-local scratch so no caller breaks.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "graph/scratch.h"
#include "graph/types.h"

namespace flash {

/// Non-negative weight of a directed edge. Return `kEdgeBanned` to exclude
/// an edge entirely.
using EdgeWeight = std::function<double(EdgeId)>;

inline constexpr double kEdgeBanned = std::numeric_limits<double>::infinity();

/// Unit edge weight (hop counting) — the default when no weight is given.
struct UnitWeight {
  double operator()(EdgeId) const { return 1.0; }
};

/// Result of a single-pair shortest path query.
struct DijkstraResult {
  Path path;          // empty when t unreachable (or s == t)
  double distance =   // +inf when unreachable; 0 when s == t
      std::numeric_limits<double>::infinity();
  bool found = false;
};

/// Core result without the path (the path is appended to a caller buffer).
struct DijkstraCoreResult {
  double distance = std::numeric_limits<double>::infinity();
  bool found = false;
};

/// Core Dijkstra: shortest s->t path under `weight`, running entirely in
/// `scratch` (allocation-free once the scratch is warm).
///
/// When `use_bans` is true, nodes marked in scratch.node_ban and edges
/// marked in scratch.edge_ban are excluded; the marks are set by the caller
/// before the call and survive it (they live on their own epochs), which is
/// what Yen's spur loop needs. On success the s->t edge sequence is
/// *appended* to `path_out` (existing content, e.g. Yen's root prefix, is
/// kept). Out-of-range or invalid s/t yields found == false.
///
/// Passing t == kInvalidNode switches to all-targets mode: the full
/// reachable set is settled (no early exit, no path reconstruction, found
/// stays false) and the distances/shortest-path tree remain in
/// scratch.dist/scratch.parent — see dijkstra_distances_core.
template <typename WeightFn>
DijkstraCoreResult dijkstra_core(const Graph& g, NodeId s, NodeId t,
                                 GraphScratch& scratch, WeightFn&& weight,
                                 bool use_bans, Path& path_out) {
  DijkstraCoreResult result;
  const std::size_t n = g.num_nodes();
  const bool all_targets = t == kInvalidNode;
  // Reset before the early returns (like bfs_core) so scratch.dist/parent
  // never hold a previous query's state after this call.
  scratch.dist.reset(n);
  scratch.parent.reset(n);
  if (s >= n || (!all_targets && t >= n)) return result;
  if (use_bans && (scratch.node_ban.get_or(s, 0) ||
                   (!all_targets && scratch.node_ban.get_or(t, 0)))) {
    return result;
  }
  if (!all_targets && s == t) {
    result.found = true;
    result.distance = 0.0;
    return result;
  }
  const double inf = std::numeric_limits<double>::infinity();
  auto& heap = scratch.heap;
  heap.clear();
  scratch.dist.set(s, 0.0);
  heap.push_back({0.0, s});  // no push_heap needed for a single element
  while (!heap.empty()) {
    const auto [d, u] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    heap.pop_back();
    if (d > scratch.dist.get_or(u, inf)) continue;  // stale entry
    if (u == t) break;  // never taken in all-targets mode
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.to(e);
      if (use_bans && scratch.node_ban.get_or(v, 0)) continue;
      if (use_bans && scratch.edge_ban.get_or(e, 0)) continue;
      const double w = weight(e);
      if (w == kEdgeBanned) continue;
      const double nd = d + w;
      if (nd < scratch.dist.get_or(v, inf)) {
        scratch.dist.set(v, nd);
        scratch.parent.set(v, e);
        heap.push_back({nd, v});
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      }
    }
  }
  if (all_targets || !scratch.dist.contains(t)) return result;
  result.found = true;
  result.distance = scratch.dist.get(t);
  const std::size_t first = path_out.size();
  NodeId cur = t;
  while (cur != s) {
    const EdgeId e = scratch.parent.get(cur);
    path_out.push_back(e);
    cur = g.from(e);
  }
  std::reverse(path_out.begin() + static_cast<long>(first), path_out.end());
  return result;
}

/// Core all-targets Dijkstra: distances from src land in scratch.dist
/// (scratch.dist.get_or(v, inf) after the call; scratch.parent holds the
/// shortest-path tree). Out-of-range src leaves everything unreachable.
template <typename WeightFn>
void dijkstra_distances_core(const Graph& g, NodeId src, GraphScratch& scratch,
                             WeightFn&& weight) {
  Path unused;  // never written in all-targets mode
  dijkstra_core(g, src, kInvalidNode, scratch,
                std::forward<WeightFn>(weight), /*use_bans=*/false, unused);
}

/// Shortest s->t path under `weight` (unit weights if empty).
/// Additional `banned_nodes[v] != 0` excludes v from interior use
/// (needed by Yen's spur computation); may be empty.
DijkstraResult dijkstra(const Graph& g, NodeId s, NodeId t,
                        const EdgeWeight& weight = {},
                        const std::vector<char>& banned_nodes = {});

/// Distances from src to all nodes (no target, no bans).
std::vector<double> dijkstra_distances(const Graph& g, NodeId src,
                                       const EdgeWeight& weight = {});

}  // namespace flash

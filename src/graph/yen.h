// Yen's k shortest loopless paths.
//
// Flash's mice routing table stores the top-m shortest paths per receiver,
// computed with Yen's algorithm on the local topology (paper §3.3).
#pragma once

#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace flash {

/// Up to k loopless shortest paths from s to t ordered by increasing cost
/// (hop count when `weight` is empty; ties broken deterministically by the
/// candidate-generation order). Fewer than k paths are returned when the
/// graph does not contain k distinct loopless paths.
std::vector<Path> yen_k_shortest_paths(const Graph& g, NodeId s, NodeId t,
                                       std::size_t k,
                                       const EdgeWeight& weight = {});

}  // namespace flash

// Yen's k shortest loopless paths.
//
// Flash's mice routing table stores the top-m shortest paths per receiver,
// computed with Yen's algorithm on the local topology (paper §3.3). This is
// the hottest graph query of a simulation (one call per new mice receiver),
// so the core is written against GraphScratch: spur-path dijkstras reuse the
// scratch's epoch-stamped state, banned spur edges/root nodes are O(1)
// epoch-reset marks, known-path dedup is an open-addressing hash set over
// pooled paths (no std::set<Path> full-path tree), and candidates live in a
// binary min-heap ordered by (cost, path) — the exact extraction order the
// previous std::set implementation had, so results are bit-identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph.h"
#include "graph/scratch.h"
#include "graph/types.h"

namespace flash {

namespace yen_detail {

/// FNV-1a over the edge ids; deterministic across runs and platforms.
inline std::uint64_t path_hash(const Path& p) {
  std::uint64_t h = 1469598103934665603ull;
  for (EdgeId e : p) {
    h ^= e;
    h *= 1099511628211ull;
  }
  return h;
}

/// Prepares the known-path set for a new query in O(1): slots are live only
/// when their epoch stamp matches scratch.yen_epoch, so bumping the epoch
/// forgets everything (stamps get re-zeroed once per 2^32 queries on wrap).
inline void yen_known_reset(GraphScratch& s) {
  if (++s.yen_epoch == 0) {
    std::fill(s.yen_known_epoch.begin(), s.yen_known_epoch.end(), 0u);
    s.yen_epoch = 1;
  }
}

/// Inserts pool path `idx` (hash pre-stored in scratch.yen_hash) into the
/// open-addressing known-set. Returns false when an equal path is already
/// present. Table slots hold pool index + 1; grown by doubling,
/// steady-state reuse is allocation-free.
inline bool yen_known_insert(GraphScratch& s, std::uint32_t idx,
                             std::size_t known_count) {
  auto& table = s.yen_known;
  auto& epoch = s.yen_known_epoch;
  const std::uint32_t live = s.yen_epoch;
  if (table.size() < 2 * (known_count + 1)) {
    std::size_t cap = table.empty() ? 64 : table.size();
    while (cap < 2 * (known_count + 1)) cap *= 2;
    table.assign(cap, 0);
    epoch.assign(cap, 0);
    // Re-insert everything below idx: duplicates were popped from the
    // pool, so every live pool entry except `idx` is a known path.
    for (std::uint32_t i = 0; i < s.pool.size(); ++i) {
      if (i == idx) continue;
      std::size_t slot = s.yen_hash[i] & (cap - 1);
      while (epoch[slot] == live) slot = (slot + 1) & (cap - 1);
      table[slot] = i + 1;
      epoch[slot] = live;
    }
  }
  const std::size_t mask = table.size() - 1;
  std::size_t slot = s.yen_hash[idx] & mask;
  while (epoch[slot] == live) {
    const std::uint32_t other = table[slot] - 1;
    if (s.yen_hash[other] == s.yen_hash[idx] &&
        s.pool.at(other) == s.pool.at(idx)) {
      return false;
    }
    slot = (slot + 1) & mask;
  }
  table[slot] = idx + 1;
  epoch[slot] = live;
  return true;
}

}  // namespace yen_detail

/// Core Yen: up to k loopless shortest s->t paths under `weight`, written
/// into `out` (slot-reused, then resized to the number found; see
/// assign_path_slot). Ordering matches yen_k_shortest_paths exactly.
/// Runs entirely in `scratch`; allocation-free once warm.
template <typename WeightFn>
void yen_core(const Graph& g, NodeId s, NodeId t, std::size_t k,
              GraphScratch& scratch, WeightFn&& weight,
              std::vector<Path>& out) {
  using yen_detail::path_hash;
  using yen_detail::yen_known_insert;
  using yen_detail::yen_known_reset;

  auto path_cost = [&](const Path& p) {
    double c = 0.0;
    for (EdgeId e : p) c += weight(e);
    return c;
  };

  std::size_t found = 0;
  auto finish = [&] { out.resize(found); };
  if (k == 0 || s == t || s >= g.num_nodes() || t >= g.num_nodes()) {
    finish();
    return;
  }

  auto& pool = scratch.pool;
  auto& hashes = scratch.yen_hash;
  auto& result_idx = scratch.yen_result;
  auto& cand_heap = scratch.yen_heap;
  pool.reset();
  result_idx.clear();
  cand_heap.clear();
  yen_known_reset(scratch);
  std::size_t known_count = 0;

  // Min-heap on (cost, path): the same total order the previous
  // std::set<std::pair<double, Path>> extracted in. Candidates are unique
  // (the known-set dedups paths), so heap extraction is deterministic.
  auto cand_greater = [&pool](const GraphScratch::YenCandidate& a,
                              const GraphScratch::YenCandidate& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return pool.at(a.idx) > pool.at(b.idx);
  };

  auto& dev = scratch.yen_dev;
  auto record_hash = [&](std::uint32_t idx, std::uint32_t dev_index) {
    if (hashes.size() <= idx) hashes.resize(idx + 1);
    hashes[idx] = path_hash(pool.at(idx));
    if (dev.size() <= idx) dev.resize(idx + 1);
    dev[idx] = dev_index;
  };

  // First path: plain dijkstra, no bans.
  {
    Path& first = pool.alloc();
    const DijkstraCoreResult r =
        dijkstra_core(g, s, t, scratch, weight, /*use_bans=*/false, first);
    if (!r.found) {
      pool.pop();
      finish();
      return;
    }
    record_hash(0, 0);
    yen_known_insert(scratch, 0, known_count);
    ++known_count;
    result_idx.push_back(0);
    assign_path_slot(out, found++, first);
  }

  while (result_idx.size() < k) {
    const std::uint32_t prev_idx = result_idx.back();
    const Path& prev = pool.at(prev_idx);

    // Node sequence of the previous path (s included).
    auto& prev_nodes = scratch.node_buf;
    prev_nodes.clear();
    prev_nodes.push_back(s);
    for (EdgeId e : prev) prev_nodes.push_back(g.to(e));

    // Each node of the previous path except the last is a spur candidate —
    // starting at the previous path's own deviation index (Lawler's
    // optimization). A spur at an earlier index shares its root prefix
    // with the path prev deviated FROM, and prev's edge at that index
    // equals that parent's edge (they agree before the deviation point),
    // so the ban set — and therefore the spur dijkstra's result — is
    // identical to the one already computed at the parent's iteration.
    // Those re-runs can only produce candidates the known-set would
    // reject; skipping them changes nothing in the output sequence (the
    // equivalence suite pins this against the full-scan implementation).
    const std::size_t spur_begin = dev[prev_idx];
    double root_cost = 0.0;
    for (std::size_t j = 0; j < spur_begin; ++j) {
      root_cost += weight(prev[j]);
    }
    for (std::size_t i = spur_begin; i + 1 < prev_nodes.size(); ++i) {
      if (i > spur_begin) root_cost += weight(prev[i - 1]);
      const NodeId spur_node = prev_nodes[i];

      // Ban edges that would recreate an already-known path sharing this
      // root, and ban root nodes to keep paths loopless. Epoch reset: O(1).
      scratch.edge_ban.reset(g.num_edges());
      scratch.node_ban.reset(g.num_nodes());
      for (const std::uint32_t ridx : result_idx) {
        const Path& known_path = pool.at(ridx);
        if (known_path.size() > i &&
            std::equal(prev.begin(), prev.begin() + static_cast<long>(i),
                       known_path.begin())) {
          scratch.edge_ban.set(known_path[i], 1);
        }
      }
      for (std::size_t j = 0; j < i; ++j) {
        scratch.node_ban.set(prev_nodes[j], 1);
      }

      // Candidate-bound pruning: only `remaining` more paths will be
      // accepted, and each acceptance takes the heap minimum, so once the
      // heap holds >= remaining candidates, every future accepted cost is
      // <= the remaining-th smallest cost currently queued (later
      // candidates can only lower that). A spur path costlier than that
      // bound can never be emitted, so its dijkstra may stop there — in
      // particular capping the otherwise full-graph sweeps of spurs whose
      // best completion is expensive or unreachable. The 1e-9 slack keeps
      // floating-point borderline candidates: they are generated and
      // rejected by the normal acceptance logic instead of being pruned,
      // so the emitted sequence cannot shift by a rounding difference
      // between root_cost + distance and path_cost.
      const std::size_t remaining = k - result_idx.size();
      double cutoff = std::numeric_limits<double>::infinity();
      if (cand_heap.size() >= remaining) {
        auto& costs = scratch.yen_bound_buf;
        costs.clear();
        for (const auto& c : cand_heap) costs.push_back(c.cost);
        std::nth_element(costs.begin(),
                         costs.begin() + static_cast<long>(remaining - 1),
                         costs.end());
        cutoff = costs[remaining - 1] - root_cost + 1e-9;
      }

      // Root prefix + spur path, built in place in a pooled buffer.
      Path& total = pool.alloc();
      total.assign(prev.begin(), prev.begin() + static_cast<long>(i));
      const DijkstraCoreResult spur =
          dijkstra_core(g, spur_node, t, scratch, weight, /*use_bans=*/true,
                        total, cutoff);
      if (!spur.found) {
        pool.pop();
        continue;
      }

      const auto total_idx = static_cast<std::uint32_t>(pool.size() - 1);
      record_hash(total_idx, static_cast<std::uint32_t>(i));
      if (yen_known_insert(scratch, total_idx, known_count)) {
        ++known_count;
        cand_heap.push_back({path_cost(total), total_idx});
        std::push_heap(cand_heap.begin(), cand_heap.end(), cand_greater);
      } else {
        pool.pop();  // duplicate of a known path
      }
    }

    if (cand_heap.empty()) break;
    const std::uint32_t best = cand_heap.front().idx;
    std::pop_heap(cand_heap.begin(), cand_heap.end(), cand_greater);
    cand_heap.pop_back();
    result_idx.push_back(best);
    assign_path_slot(out, found++, pool.at(best));
  }
  finish();
}

/// Up to k loopless shortest paths from s to t ordered by increasing cost
/// (hop count when `weight` is empty; ties broken deterministically by the
/// candidate-generation order). Fewer than k paths are returned when the
/// graph does not contain k distinct loopless paths.
std::vector<Path> yen_k_shortest_paths(const Graph& g, NodeId s, NodeId t,
                                       std::size_t k,
                                       const EdgeWeight& weight = {});

}  // namespace flash

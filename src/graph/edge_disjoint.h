// k edge-disjoint shortest paths.
//
// Spider routes every payment over 4 edge-disjoint shortest paths
// (paper §4.1); the paths are found greedily: repeatedly take a fewest-hops
// path and remove its edges. Figure 5(b) of the paper discusses why
// edge-disjointness is not always ideal — which is exactly the behaviour
// this module lets the benchmarks demonstrate.
#pragma once

#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"
#include "graph/scratch.h"
#include "graph/types.h"

namespace flash {

/// Core variant: writes up to k pairwise edge-disjoint fewest-hops s->t
/// paths into `out` (slot-reused, then resized; see assign_path_slot).
/// Used edges are tracked as scratch.edge_ban marks; allocation-free once
/// the scratch is warm.
inline void edge_disjoint_core(const Graph& g, NodeId s, NodeId t,
                               std::size_t k, GraphScratch& scratch,
                               std::vector<Path>& out,
                               const unsigned char* open_mask = nullptr) {
  std::size_t found = 0;
  if (s != t && s < g.num_nodes() && t < g.num_nodes()) {
    scratch.edge_ban.reset(g.num_edges());
    // Optional open mask (incremental maintenance): masked-closed edges are
    // treated exactly like edges consumed by an earlier path — invisible.
    auto admit = [&scratch, open_mask](EdgeId e) {
      if (open_mask != nullptr && open_mask[e] == 0) return false;
      return !scratch.edge_ban.get_or(e, 0);
    };
    Path& p = scratch.pool.alloc();
    while (found < k) {
      p.clear();
      if (!bfs_path_core(g, s, t, scratch, admit, p) || p.empty()) break;
      for (EdgeId e : p) scratch.edge_ban.set(e, 1);
      assign_path_slot(out, found++, p);
    }
    scratch.pool.pop();
  }
  out.resize(found);
}

/// Up to k pairwise edge-disjoint s->t paths, each a fewest-hops path in the
/// graph remaining after removing the previously chosen paths' edges.
/// Only the traversed direction of a channel is removed; the reverse
/// direction stays available (channel directions have independent balances).
std::vector<Path> edge_disjoint_shortest_paths(const Graph& g, NodeId s,
                                               NodeId t, std::size_t k);

}  // namespace flash

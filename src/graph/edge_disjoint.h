// k edge-disjoint shortest paths.
//
// Spider routes every payment over 4 edge-disjoint shortest paths
// (paper §4.1); the paths are found greedily: repeatedly take a fewest-hops
// path and remove its edges. Figure 5(b) of the paper discusses why
// edge-disjointness is not always ideal — which is exactly the behaviour
// this module lets the benchmarks demonstrate.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace flash {

/// Up to k pairwise edge-disjoint s->t paths, each a fewest-hops path in the
/// graph remaining after removing the previously chosen paths' edges.
/// Only the traversed direction of a channel is removed; the reverse
/// direction stays available (channel directions have independent balances).
std::vector<Path> edge_disjoint_shortest_paths(const Graph& g, NodeId s,
                                               NodeId t, std::size_t k);

}  // namespace flash

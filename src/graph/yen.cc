#include "graph/yen.h"

namespace flash {

std::vector<Path> yen_k_shortest_paths(const Graph& g, NodeId s, NodeId t,
                                       std::size_t k,
                                       const EdgeWeight& weight) {
  std::vector<Path> out;
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  if (weight) {
    yen_core(g, s, t, k, scratch, LegacyCallable<EdgeWeight>{&weight}, out);
  } else {
    yen_core(g, s, t, k, scratch, UnitWeight{}, out);
  }
  return out;
}

}  // namespace flash

#include "graph/yen.h"

#include <algorithm>
#include <set>

namespace flash {

namespace {

double path_cost(const Path& p, const EdgeWeight& weight) {
  if (!weight) return static_cast<double>(p.size());
  double c = 0.0;
  for (EdgeId e : p) c += weight(e);
  return c;
}

}  // namespace

std::vector<Path> yen_k_shortest_paths(const Graph& g, NodeId s, NodeId t,
                                       std::size_t k,
                                       const EdgeWeight& weight) {
  std::vector<Path> result;
  if (k == 0 || s == t) return result;

  const DijkstraResult first = dijkstra(g, s, t, weight);
  if (!first.found) return result;
  result.push_back(first.path);

  // Candidate set ordered by (cost, path) for deterministic extraction.
  using Candidate = std::pair<double, Path>;
  std::set<Candidate> candidates;
  std::set<Path> known;  // paths already in result or candidates
  known.insert(first.path);

  while (result.size() < k) {
    const Path& prev = result.back();
    const std::vector<NodeId> prev_nodes = g.path_nodes(prev, s);

    // Each node of the previous path except the last is a spur candidate.
    for (std::size_t i = 0; i + 1 < prev_nodes.size(); ++i) {
      const NodeId spur_node = prev_nodes[i];
      const Path root(prev.begin(), prev.begin() + static_cast<long>(i));

      // Ban edges that would recreate an already-known path sharing this
      // root, and ban root nodes to keep paths loopless.
      std::set<EdgeId> banned_edges;
      for (const Path& known_path : result) {
        if (known_path.size() > i &&
            std::equal(root.begin(), root.end(), known_path.begin())) {
          banned_edges.insert(known_path[i]);
        }
      }
      std::vector<char> banned_nodes(g.num_nodes(), 0);
      for (std::size_t j = 0; j < i; ++j) banned_nodes[prev_nodes[j]] = 1;

      const EdgeWeight spur_weight = [&](EdgeId e) -> double {
        if (banned_edges.count(e)) return kEdgeBanned;
        return weight ? weight(e) : 1.0;
      };
      const DijkstraResult spur =
          dijkstra(g, spur_node, t, spur_weight, banned_nodes);
      if (!spur.found) continue;

      Path total = root;
      total.insert(total.end(), spur.path.begin(), spur.path.end());
      if (known.insert(total).second) {
        candidates.emplace(path_cost(total, weight), std::move(total));
      }
    }

    if (candidates.empty()) break;
    auto best = candidates.begin();
    result.push_back(best->second);
    candidates.erase(best);
  }
  return result;
}

}  // namespace flash
